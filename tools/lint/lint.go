package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"io/fs"
	"sort"
	"strings"
)

// Finding is one linter violation.
type Finding struct {
	Pos  token.Position
	Rule string // see AllRules
	Msg  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: [%s] %s", f.Pos, f.Rule, f.Msg)
}

// AllRules lists every rule the linter knows. The first three are the
// determinism rules; os-exit and signal-notify are the robustness rules
// that keep library code interruptible (os.Exit skips deferred journal
// flushes; bare signal.Notify hides signals from the scheduler's
// context).
var AllRules = []string{"map-range", "wall-clock", "global-rand", "os-exit", "signal-notify"}

// suppression is the trailing comment that exempts a map range the
// author has argued is order-insensitive; suppressionExit exempts an
// os.Exit the author has argued sits at a process boundary (the CLI
// helpers, nothing deeper).
const (
	suppression     = "lint:ordered"
	suppressionExit = "lint:exit"
)

// LintDir lints every non-test Go file in dir. With no explicit rules
// every rule runs; otherwise only the named ones do.
func LintDir(dir string, rules ...string) ([]Finding, error) {
	enabled := map[string]bool{}
	if len(rules) == 0 {
		rules = AllRules
	}
	for _, r := range rules {
		enabled[r] = true
	}
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi fs.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, err
	}

	var findings []Finding
	var pkgNames []string
	for name := range pkgs { //lint:ordered — sorted on the next line
		pkgNames = append(pkgNames, name)
	}
	sort.Strings(pkgNames)
	for _, name := range pkgNames {
		pkg := pkgs[name]
		var files []*ast.File
		var fileNames []string
		for fn := range pkg.Files { //lint:ordered — sorted on the next line
			fileNames = append(fileNames, fn)
		}
		sort.Strings(fileNames)
		for _, fn := range fileNames {
			files = append(files, pkg.Files[fn])
		}

		// Best-effort type check: the stub importer satisfies every
		// import with an empty package, so cross-package expressions
		// degrade to invalid types while locally declared maps, channels,
		// and import names still resolve — which is all the rules need.
		info := &types.Info{
			Types: map[ast.Expr]types.TypeAndValue{},
			Uses:  map[*ast.Ident]types.Object{},
			Defs:  map[*ast.Ident]types.Object{},
		}
		conf := types.Config{
			Importer: &stubImporter{pkgs: map[string]*types.Package{}},
			Error:    func(error) {}, // incomplete imports are expected
		}
		conf.Check(dir, fset, files, info) // error intentionally ignored

		for _, file := range files {
			findings = append(findings, lintFile(fset, file, info, enabled)...)
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i].Pos, findings[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		return a.Offset < b.Offset
	})
	return findings, nil
}

// stubImporter satisfies any import with an empty, complete package so
// go/types can resolve package names without compiled export data.
type stubImporter struct{ pkgs map[string]*types.Package }

func (im *stubImporter) Import(path string) (*types.Package, error) {
	if p, ok := im.pkgs[path]; ok {
		return p, nil
	}
	name := path
	if i := strings.LastIndex(path, "/"); i >= 0 {
		name = path[i+1:]
	}
	p := types.NewPackage(path, name)
	p.MarkComplete()
	im.pkgs[path] = p
	return p, nil
}

func lintFile(fset *token.FileSet, file *ast.File, info *types.Info, enabled map[string]bool) []Finding {
	var findings []Finding
	emit := func(f Finding) {
		if enabled[f.Rule] {
			findings = append(findings, f)
		}
	}

	// Lines carrying a suppression comment, per suppression kind.
	suppressed := map[int]bool{}
	exitOK := map[int]bool{}
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			line := fset.Position(c.Pos()).Line
			if strings.Contains(c.Text, suppression) {
				suppressed[line] = true
			}
			if strings.Contains(c.Text, suppressionExit) {
				exitOK[line] = true
			}
		}
	}

	ast.Inspect(file, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.RangeStmt:
			pos := fset.Position(n.Pos())
			if suppressed[pos.Line] {
				return true
			}
			if isMapType(info.TypeOf(n.X)) {
				emit(Finding{
					Pos:  pos,
					Rule: "map-range",
					Msg:  "map iteration order is nondeterministic; sort the keys (or mark the loop //lint:ordered if order cannot reach results or output)",
				})
			}
		case *ast.CallExpr:
			sel, ok := n.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			ident, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			path, ok := importPath(ident, file, info)
			if !ok {
				return true
			}
			pos := fset.Position(n.Pos())
			switch {
			case path == "time" && (sel.Sel.Name == "Now" || sel.Sel.Name == "Since" || sel.Sel.Name == "Until"):
				emit(Finding{
					Pos:  pos,
					Rule: "wall-clock",
					Msg:  fmt.Sprintf("time.%s makes results depend on the wall clock; thread timing through explicit parameters", sel.Sel.Name),
				})
			case path == "math/rand" && sel.Sel.Name != "New" && sel.Sel.Name != "NewSource":
				emit(Finding{
					Pos:  pos,
					Rule: "global-rand",
					Msg:  fmt.Sprintf("rand.%s uses the shared global source; use rand.New(rand.NewSource(seed)) for reproducible sampling", sel.Sel.Name),
				})
			case path == "os" && sel.Sel.Name == "Exit":
				if exitOK[pos.Line] {
					return true
				}
				emit(Finding{
					Pos:  pos,
					Rule: "os-exit",
					Msg:  "os.Exit inside internal/ skips deferred cleanup (journal flush, pool drain); return an error to the caller (or mark a genuine process boundary //lint:exit)",
				})
			case path == "os/signal" && sel.Sel.Name == "Notify":
				emit(Finding{
					Pos:  pos,
					Rule: "signal-notify",
					Msg:  "bare signal.Notify hides the signal from the study's context; use signal.NotifyContext so cancellation reaches the scheduler",
				})
			}
		}
		return true
	})
	return findings
}

// isMapType unwraps named types and reports whether t is a map.
func isMapType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// importPath resolves a selector base identifier to the import path of
// the package it names. Resolution prefers type information (which
// handles renamed imports); when the checker could not bind the
// identifier it falls back to matching the file's import declarations
// syntactically.
func importPath(ident *ast.Ident, file *ast.File, info *types.Info) (string, bool) {
	if obj, ok := info.Uses[ident]; ok {
		if pn, ok := obj.(*types.PkgName); ok {
			return pn.Imported().Path(), true
		}
		return "", false // a variable or type, not a package name
	}
	// Syntactic fallback: an import whose (declared or default) name
	// matches the identifier.
	for _, imp := range file.Imports {
		path := strings.Trim(imp.Path.Value, `"`)
		name := path
		if i := strings.LastIndex(path, "/"); i >= 0 {
			name = path[i+1:]
		}
		if imp.Name != nil {
			name = imp.Name.Name
		}
		if name == ident.Name {
			return path, true
		}
	}
	return "", false
}
