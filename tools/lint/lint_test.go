package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func lintSource(t *testing.T, src string) []Finding {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "x.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	findings, err := LintDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	return findings
}

func rules(fs []Finding) []string {
	var out []string
	for _, f := range fs {
		out = append(out, f.Rule)
	}
	return out
}

func TestMapRangeFlagged(t *testing.T) {
	fs := lintSource(t, `package p
func f(m map[string]int) int {
	s := 0
	for _, v := range m {
		s += v
	}
	return s
}
`)
	if len(fs) != 1 || fs[0].Rule != "map-range" {
		t.Fatalf("findings = %v", fs)
	}
	if fs[0].Pos.Line != 4 {
		t.Errorf("finding on line %d, want 4", fs[0].Pos.Line)
	}
}

func TestNamedMapTypeFlagged(t *testing.T) {
	fs := lintSource(t, `package p
type set map[int]bool
func f(s set) {
	for k := range s {
		_ = k
	}
}
`)
	if len(fs) != 1 || fs[0].Rule != "map-range" {
		t.Fatalf("findings = %v", fs)
	}
}

func TestSliceAndChannelRangesClean(t *testing.T) {
	fs := lintSource(t, `package p
func f(xs []int, ch chan func()) {
	for _, x := range xs {
		_ = x
	}
	for fn := range ch {
		fn()
	}
	for i := 0; i < 3; i++ {
	}
}
`)
	if len(fs) != 0 {
		t.Fatalf("findings = %v", fs)
	}
}

func TestSuppressionComment(t *testing.T) {
	fs := lintSource(t, `package p
func f(m map[string]int) {
	for k := range m { //lint:ordered — keys only feed a set
		delete(m, k)
	}
}
`)
	if len(fs) != 0 {
		t.Fatalf("suppressed range still flagged: %v", fs)
	}
}

func TestWallClockFlagged(t *testing.T) {
	fs := lintSource(t, `package p
import "time"
func f() time.Duration {
	start := time.Now()
	return time.Since(start)
}
`)
	got := rules(fs)
	if len(got) != 2 || got[0] != "wall-clock" || got[1] != "wall-clock" {
		t.Fatalf("findings = %v", fs)
	}
}

func TestGlobalRandFlagged(t *testing.T) {
	fs := lintSource(t, `package p
import "math/rand"
func f() int {
	rand.Seed(1)
	return rand.Intn(10)
}
`)
	got := rules(fs)
	if len(got) != 2 || got[0] != "global-rand" || got[1] != "global-rand" {
		t.Fatalf("findings = %v", fs)
	}
}

func TestLocalRandConstructionClean(t *testing.T) {
	fs := lintSource(t, `package p
import "math/rand"
func f(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(10)
}
`)
	if len(fs) != 0 {
		t.Fatalf("findings = %v", fs)
	}
}

func TestRenamedImportResolved(t *testing.T) {
	fs := lintSource(t, `package p
import clock "time"
func f() {
	_ = clock.Now()
}
`)
	if len(fs) != 1 || fs[0].Rule != "wall-clock" {
		t.Fatalf("renamed import not resolved: %v", fs)
	}
}

func TestShadowedPackageNameClean(t *testing.T) {
	// A local variable named rand must not trip the rule.
	fs := lintSource(t, `package p
type gen struct{}
func (gen) Intn(n int) int { return 0 }
func f() int {
	rand := gen{}
	return rand.Intn(10)
}
`)
	if len(fs) != 0 {
		t.Fatalf("shadowed name flagged: %v", fs)
	}
}

func TestTestFilesExempt(t *testing.T) {
	dir := t.TempDir()
	src := `package p
import "time"
func f() { _ = time.Now() }
`
	if err := os.WriteFile(filepath.Join(dir, "x_test.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	fs, err := LintDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(fs) != 0 {
		t.Fatalf("test file flagged: %v", fs)
	}
}

func TestOsExitFlagged(t *testing.T) {
	fs := lintSource(t, `package p
import "os"
func f() {
	os.Exit(1)
}
`)
	if len(fs) != 1 || fs[0].Rule != "os-exit" {
		t.Fatalf("findings = %v", fs)
	}
}

func TestOsExitSuppression(t *testing.T) {
	fs := lintSource(t, `package p
import "os"
func f() {
	os.Exit(1) //lint:exit process boundary
}
`)
	if len(fs) != 0 {
		t.Fatalf("suppressed os.Exit still flagged: %v", fs)
	}
}

func TestSignalNotifyFlagged(t *testing.T) {
	fs := lintSource(t, `package p
import (
	"os"
	"os/signal"
)
func f() {
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt)
}
`)
	if len(fs) != 1 || fs[0].Rule != "signal-notify" {
		t.Fatalf("findings = %v", fs)
	}
}

func TestSignalNotifyContextClean(t *testing.T) {
	fs := lintSource(t, `package p
import (
	"context"
	"os"
	"os/signal"
)
func f() (context.Context, context.CancelFunc) {
	return signal.NotifyContext(context.Background(), os.Interrupt)
}
`)
	if len(fs) != 0 {
		t.Fatalf("NotifyContext flagged: %v", fs)
	}
}

func TestRuleSelection(t *testing.T) {
	src := `package p
import (
	"os"
	"time"
)
func f() {
	_ = time.Now()
	os.Exit(1)
}
`
	fs := lintSource(t, src)
	if got := rules(fs); len(got) != 2 {
		t.Fatalf("all-rules findings = %v", fs)
	}
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "x.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	only, err := LintDir(dir, "os-exit")
	if err != nil {
		t.Fatal(err)
	}
	if len(only) != 1 || only[0].Rule != "os-exit" {
		t.Fatalf("restricted findings = %v", only)
	}
}

// TestDeterminismCriticalPackagesClean is the real gate: the packages
// that produce, aggregate, and render study results must stay free of
// nondeterminism sources (and of the robustness violations).
func TestDeterminismCriticalPackagesClean(t *testing.T) {
	for _, dir := range defaultDirs {
		fs, err := LintDir(filepath.Join("..", "..", dir))
		if err != nil {
			t.Fatalf("%s: %v", dir, err)
		}
		if len(fs) != 0 {
			var b strings.Builder
			for _, f := range fs {
				b.WriteString("\n  " + f.String())
			}
			t.Errorf("%s has determinism findings:%s", dir, b.String())
		}
	}
}

// TestAllInternalPackagesInterruptible enforces the robustness rules
// across every internal/ package: no os.Exit outside marked process
// boundaries, no bare signal.Notify.
func TestAllInternalPackagesInterruptible(t *testing.T) {
	dirs, err := internalDirs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	if len(dirs) == 0 {
		t.Fatal("no internal packages found")
	}
	for _, dir := range dirs {
		fs, err := LintDir(dir, robustnessRules...)
		if err != nil {
			t.Fatalf("%s: %v", dir, err)
		}
		if len(fs) != 0 {
			var b strings.Builder
			for _, f := range fs {
				b.WriteString("\n  " + f.String())
			}
			t.Errorf("%s has robustness findings:%s", dir, b.String())
		}
	}
}
