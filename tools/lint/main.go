// Command lint is sevsim's determinism and robustness linter. Study
// results must be byte-identical run to run and across parallelism
// settings (the scheduler's core guarantee), so the packages that
// produce or render results may not contain the three classic sources
// of nondeterminism:
//
//   - ranging over a map (iteration order is randomized by the runtime;
//     sort the keys first, or mark a genuinely order-insensitive loop
//     with a trailing //lint:ordered comment),
//   - time.Now / time.Since (wall-clock values leak into output),
//   - the global math/rand source (shared, unseeded state; construct a
//     local rand.New(rand.NewSource(seed)) instead).
//
// Additionally, every internal/ package must stay interruptible and
// crash-tolerant, so two robustness rules apply across all of them:
//
//   - os.Exit (skips deferred cleanup such as journal flushes and pool
//     drains; return an error instead, or mark a genuine process
//     boundary with a trailing //lint:exit comment),
//   - bare signal.Notify (hides signals from the study's context; use
//     signal.NotifyContext so cancellation reaches the scheduler).
//
// Test files are exempt. The linter is stdlib-only (go/parser +
// go/types with a stub importer), so it runs in offline environments
// where golang.org/x/tools is unavailable.
//
// Usage:
//
//	go run ./tools/lint                  # default sweep (see above)
//	go run ./tools/lint ./internal/core  # all rules on specific dirs
//
// Exits 1 when any finding is reported.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// defaultDirs are the determinism-critical packages: result
// production, aggregation, and rendering. They get every rule.
var defaultDirs = []string{"internal/core", "internal/campaign", "internal/report"}

// robustnessRules are enforced on every internal/ package, including
// ones where wall-clock or map-order use is legitimate.
var robustnessRules = []string{"os-exit", "signal-notify"}

// internalDirs lists the package directories under root/internal.
func internalDirs(root string) ([]string, error) {
	entries, err := os.ReadDir(filepath.Join(root, "internal"))
	if err != nil {
		return nil, err
	}
	var dirs []string
	for _, e := range entries {
		if e.IsDir() {
			dirs = append(dirs, filepath.Join(root, "internal", e.Name()))
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}

func main() {
	flag.Parse()

	lint := func(dir string, rules ...string) int {
		findings, err := LintDir(dir, rules...)
		if err != nil {
			fmt.Fprintln(os.Stderr, "lint:", err)
			os.Exit(2)
		}
		for _, f := range findings {
			fmt.Println(f)
		}
		return len(findings)
	}

	total := 0
	if dirs := flag.Args(); len(dirs) > 0 {
		for _, dir := range dirs {
			total += lint(dir)
		}
	} else {
		// Default sweep: all rules on the determinism-critical packages,
		// robustness rules on every other internal package.
		critical := map[string]bool{}
		for _, dir := range defaultDirs {
			critical[filepath.Clean(dir)] = true
			total += lint(dir)
		}
		all, err := internalDirs(".")
		if err != nil {
			fmt.Fprintln(os.Stderr, "lint:", err)
			os.Exit(2)
		}
		for _, dir := range all {
			if !critical[filepath.Clean(dir)] {
				total += lint(dir, robustnessRules...)
			}
		}
	}
	if total > 0 {
		fmt.Fprintf(os.Stderr, "lint: %d finding(s)\n", total)
		os.Exit(1)
	}
}
