// Command lint is sevsim's determinism linter. Study results must be
// byte-identical run to run and across parallelism settings (the
// scheduler's core guarantee), so the packages that produce or render
// results may not contain the three classic sources of nondeterminism:
//
//   - ranging over a map (iteration order is randomized by the runtime;
//     sort the keys first, or mark a genuinely order-insensitive loop
//     with a trailing //lint:ordered comment),
//   - time.Now / time.Since (wall-clock values leak into output),
//   - the global math/rand source (shared, unseeded state; construct a
//     local rand.New(rand.NewSource(seed)) instead).
//
// Test files are exempt. The linter is stdlib-only (go/parser +
// go/types with a stub importer), so it runs in offline environments
// where golang.org/x/tools is unavailable.
//
// Usage:
//
//	go run ./tools/lint                  # lint the default packages
//	go run ./tools/lint ./internal/core  # lint specific directories
//
// Exits 1 when any finding is reported.
package main

import (
	"flag"
	"fmt"
	"os"
)

// defaultDirs are the determinism-critical packages: result
// production, aggregation, and rendering.
var defaultDirs = []string{"internal/core", "internal/campaign", "internal/report"}

func main() {
	flag.Parse()
	dirs := flag.Args()
	if len(dirs) == 0 {
		dirs = defaultDirs
	}
	total := 0
	for _, dir := range dirs {
		findings, err := LintDir(dir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "lint:", err)
			os.Exit(2)
		}
		for _, f := range findings {
			fmt.Println(f)
		}
		total += len(findings)
	}
	if total > 0 {
		fmt.Fprintf(os.Stderr, "lint: %d finding(s)\n", total)
		os.Exit(1)
	}
}
