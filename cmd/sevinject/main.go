// Command sevinject runs one statistical fault-injection campaign: N
// single-bit faults into one hardware structure field while the chosen
// benchmark binary executes, with per-class outcome rates and the
// statistical error margin.
//
// Usage:
//
//	sevinject -bench qsort -O O2 -march a15 -target RF -faults 2000
//	sevinject -bench sha -O O0 -march a72 -target L1D.data -faults 500
//	sevinject -bench gsm -O O1 -march a15 -all -faults 200
package main

import (
	"flag"
	"fmt"
	"os"

	"sevsim/internal/binanalysis"
	"sevsim/internal/campaign"
	"sevsim/internal/cli"
	"sevsim/internal/compiler"
	"sevsim/internal/core"
	"sevsim/internal/faultinj"
	"sevsim/internal/stats"
)

func main() {
	bench := flag.String("bench", "", "benchmark name")
	srcFile := flag.String("src", "", "MiniC source file")
	size := flag.Int("size", 0, "benchmark scale (0 = default)")
	levelFlag := flag.String("O", "O2", "optimization level O0..O3")
	marchFlag := flag.String("march", "a15", "microarchitecture: a15 or a72")
	targetFlag := flag.String("target", "RF", "structure field (e.g. RF, L1D.data, ROB.pc)")
	all := flag.Bool("all", false, "inject into every structure field")
	faults := flag.Int("faults", 2000, "faults per campaign (paper: 2000)")
	seed := flag.Int64("seed", 2021, "sampling seed")
	par := flag.Int("parallel", 0, "concurrent injections (0 = GOMAXPROCS)")
	modelFlag := flag.String("model", "single", "fault model: single, double, quad (multi-bit upsets)")
	prune := flag.Bool("prune", false, "statically prune provably-masked RF injections (identical outcomes, less simulation)")
	ckpts := flag.Int("checkpoints", faultinj.DefaultCheckpoints, "golden checkpoints for injection fast-forward (0 disables); results are identical at any setting")
	fastExit := flag.Bool("fastexit", true, "classify Masked at the first provable state convergence with golden; results are identical either way")
	cacheDir := flag.String("cache", "", "prep-artifact cache directory; repeat runs skip the golden simulation (results are byte-identical either way)")
	cacheMax := flag.Int64("cache-max-mb", 0, "cache size bound in MB (0 = unbounded)")
	flag.Parse()

	cfg, err := cli.March(*marchFlag)
	if err != nil {
		cli.Fatal(err)
	}
	level, err := cli.Level(*levelFlag)
	if err != nil {
		cli.Fatal(err)
	}
	name, src, err := cli.LoadSource(*bench, *srcFile, *size)
	if err != nil {
		cli.Fatal(err)
	}
	prog, err := compiler.Compile(src, name, level, cli.Target(cfg))
	if err != nil {
		cli.Fatal(err)
	}
	cache, err := cli.Cache(*cacheDir, *cacheMax)
	if err != nil {
		cli.Fatal(err)
	}
	exp, err := core.CachedExperiment(cache, cfg, prog, faultinj.Options{
		Traced:      *prune,
		Checkpoints: cli.Checkpoints(*ckpts),
		NoFastExit:  !*fastExit,
	})
	if err != nil {
		cli.Fatal(err)
	}
	var pruner faultinj.Pruner
	if *prune {
		a, err := binanalysis.AnalyzeWords(prog.Code)
		if err != nil {
			cli.Fatal(err)
		}
		bp, err := binanalysis.NewDUEPruner(a, exp)
		if err != nil {
			cli.Fatal(err)
		}
		pruner = bp
		b := bp.Bound()
		fmt.Printf("static RF bound: Masked >= %.2f%% (register-granular %.2f%%), DUE >= %.2f%%, SDC <= %.2f%%\n",
			b.MaskedLB*100, b.RegMaskedLB*100, b.DueLB*100, b.SDCUpperBound*100)
	}
	model := faultinj.SingleBit
	switch *modelFlag {
	case "single":
	case "double":
		model = faultinj.DoubleAdjacent
	case "quad":
		model = faultinj.QuadAdjacent
	default:
		cli.Fatal(fmt.Errorf("unknown fault model %q", *modelFlag))
	}
	fmt.Printf("%s %s on %s: golden run %d cycles, %d outputs, %s faults\n",
		name, level, cfg.Name, exp.GoldenCycles, len(exp.GoldenOutput), model)

	var targets []faultinj.Target
	if *all {
		targets = faultinj.Targets()
	} else {
		t, ok := faultinj.TargetByName(*targetFlag)
		if !ok {
			cli.Fatal(fmt.Errorf("unknown target %q", *targetFlag))
		}
		targets = []faultinj.Target{t}
	}

	// One shared worker pool serves every target's campaign, so the
	// machine stays saturated across target boundaries. Ctrl-C drains
	// in-flight injections and reports the partial campaign.
	pool := campaign.NewPool(cli.Parallelism(*par))
	defer pool.Close()
	ctx, stop := cli.Interruptible()
	defer stop()

	interrupted := false
	fmt.Printf("\n%-10s %8s %8s  %7s %7s %7s %7s %7s\n",
		"target", "bits", "faults", "AVF", "SDC", "Crash", "Timeout", "Assert")
	for _, t := range targets {
		r := campaign.Run(exp, t, campaign.Options{
			Faults: *faults, Seed: *seed, Pool: pool, Model: model, Pruner: pruner,
			Context: ctx,
		})
		if r.Interrupted {
			interrupted = true
			fmt.Printf("%-10s %8d  interrupted after %d/%d injections\n",
				t.Name(), r.StructBits, r.Faults, *faults)
			continue
		}
		if r.Skipped != "" {
			fmt.Printf("%-10s %8d  skipped: %s\n", t.Name(), r.StructBits, r.Skipped)
			continue
		}
		fmt.Printf("%-10s %8d %8d  %6.2f%% %6.2f%% %6.2f%% %6.2f%% %6.2f%%\n",
			t.Name(), r.StructBits, r.Faults,
			r.AVF()*100,
			r.ClassRate(faultinj.SDC)*100,
			r.ClassRate(faultinj.Crash)*100,
			r.ClassRate(faultinj.Timeout)*100,
			r.ClassRate(faultinj.Assert)*100)
		if r.Counts.Pruned > 0 {
			fmt.Printf("  pruned: %d/%d proven statically (%d register-granular + %d bit-granular Masked, %d crash-certain DUE; never simulated)\n",
				r.Counts.Pruned, r.Faults, r.Counts.PrunedReg, r.Counts.PrunedBit, r.Counts.PrunedDUE)
		}
		if r.Counts.Unexpected > 0 {
			fmt.Printf("  WARNING: %d unexpected simulator panics\n", r.Counts.Unexpected)
		}
	}
	cli.CacheSummary(cache)
	margin := stats.ErrorMargin(*faults, 1<<40, 0.99)
	fmt.Printf("\nsampling error margin: ±%.2f%% at 99%% confidence\n", margin*100)
	if interrupted {
		fmt.Fprintln(os.Stderr, "interrupted: partial campaigns above cover only the completed injections")
		os.Exit(cli.ExitInterrupted) //lint:exit process boundary: interrupted-run exit after partial campaigns are printed
	}
}
