// Command sevlint is sevsim's static-analysis gate, built on the
// internal/statan framework. It enforces the invariants the
// reproduction's headline guarantees rest on — byte-identical
// study.json across parallelism, kill-and-resume, and checkpoint
// fast-forward — as machine-checked facts rather than DESIGN.md
// arguments:
//
//	determinism      no map ranges, wall-clock reads, or global
//	                 math/rand in result-producing code
//	robustness       no os.Exit outside marked process boundaries,
//	                 no bare signal.Notify, no http.Server without
//	                 ReadHeaderTimeout or served without Shutdown
//	                 wiring, no time.Sleep polling loops in dispatch
//	                 code (use the shared backoff policy)
//	snapshotcover    every field of a Snapshot/Restore struct is
//	                 checkpointed, or //snapshot:skip <reason>
//	equalitycover    every checkpointed field is compared by the
//	                 fastpath equality relation, or
//	                 //equality:dead <reason>; StateHash mixes only
//	                 compared fields
//	fingerprintcover every core.Spec field feeds the journal
//	                 fingerprint, or //journal:ephemeral <reason>
//	transfercover    every //bitflow:transfer function switches over
//	                 each isa.Op* constant, or documents the fallback
//	                 with //bitflow:conservative Op<X> <reason>
//
// The determinism and robustness rules apply to internal/ and cmd/
// (examples and fixtures are demo code); the coverage passes run
// everywhere their trigger shapes appear. Line suppressions
// ("//lint:<key> <reason>") and field annotations require a reason,
// and stale suppressions are themselves findings. Test files are
// exempt.
//
// Usage:
//
//	go run ./cmd/sevlint ./...              # whole-repo gate (CI)
//	go run ./cmd/sevlint ./internal/cpu     # one directory
//	go run ./cmd/sevlint -json ./...        # machine-readable output
//	go run ./cmd/sevlint -passes snapshotcover,equalitycover ./internal/...
//	go run ./cmd/sevlint -list              # describe the passes
//
// Exits 1 when any finding is reported, 2 on a load error.
package main

import (
	"flag"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"sevsim/internal/statan"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit diagnostics as a JSON array")
	passList := flag.String("passes", "", "comma-separated pass subset (default: all)")
	list := flag.Bool("list", false, "list the registered passes and exit")
	flag.Parse()

	if *list {
		for _, p := range statan.Passes() {
			fmt.Printf("%-17s %s\n", p.Name, p.Doc)
		}
		return
	}

	selected, all := selectPasses(*passList)

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	dirs, err := expand(patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sevlint:", err)
		os.Exit(2) //lint:exit process boundary: load failure in the lint CLI
	}

	var diags []statan.Diagnostic
	for _, dir := range dirs {
		pkgs, err := statan.LoadDir(dir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sevlint:", err)
			os.Exit(2) //lint:exit process boundary: load failure in the lint CLI
		}
		passes := scoped(selected, dir)
		if len(passes) == 0 {
			continue
		}
		for _, pkg := range pkgs {
			diags = append(diags, statan.Run(pkg, statan.RunOptions{
				Passes: passes,
				// Stale-suppression detection is only sound when every
				// rule a suppression could serve actually ran.
				CheckSuppressions: all && len(passes) == len(selected),
			})...)
		}
	}

	if *jsonOut {
		b, err := statan.MarshalDiagnostics(diags)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sevlint:", err)
			os.Exit(2) //lint:exit process boundary: encode failure in the lint CLI
		}
		fmt.Println(string(b))
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "sevlint: %d finding(s)\n", len(diags))
		os.Exit(1) //lint:exit process boundary: the lint gate's verdict
	}
}

// selectPasses resolves -passes; all reports whether the full set runs.
func selectPasses(spec string) (passes []*statan.Pass, all bool) {
	if spec == "" {
		return statan.Passes(), true
	}
	for _, name := range strings.Split(spec, ",") {
		name = strings.TrimSpace(name)
		p := statan.PassByName(name)
		if p == nil {
			fmt.Fprintf(os.Stderr, "sevlint: unknown pass %q (see -list)\n", name)
			os.Exit(2) //lint:exit process boundary: flag error in the lint CLI
		}
		passes = append(passes, p)
	}
	return passes, false
}

// scoped filters the pass set for one directory: the determinism and
// robustness rules gate internal/ and cmd/ only (examples, fixtures,
// and scratch dirs are not result-producing code), while the coverage
// passes run everywhere their trigger shapes appear.
func scoped(passes []*statan.Pass, dir string) []*statan.Pass {
	gated := hasSegment(dir, "internal") || hasSegment(dir, "cmd")
	var out []*statan.Pass
	for _, p := range passes {
		switch p.Name {
		case "determinism", "robustness":
			if gated {
				out = append(out, p)
			}
		default:
			out = append(out, p)
		}
	}
	return out
}

// hasSegment reports whether the cleaned path contains the named
// path segment.
func hasSegment(path, seg string) bool {
	for _, s := range strings.Split(filepath.ToSlash(filepath.Clean(path)), "/") {
		if s == seg {
			return true
		}
	}
	return false
}

// expand resolves argument patterns to package directories: a plain
// directory names itself; "dir/..." walks recursively, collecting
// every directory that holds at least one non-test Go file and
// skipping testdata, hidden, and VCS directories.
func expand(patterns []string) ([]string, error) {
	seen := map[string]bool{}
	var dirs []string
	add := func(dir string) {
		dir = filepath.Clean(dir)
		if !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, pat := range patterns {
		root, recursive := strings.CutSuffix(pat, "...")
		root = filepath.Clean(strings.TrimSuffix(root, "/"))
		if root == "" {
			root = "."
		}
		if !recursive {
			add(root)
			continue
		}
		err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if d.IsDir() {
				name := d.Name()
				if path != root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
					return filepath.SkipDir
				}
				return nil
			}
			if strings.HasSuffix(path, ".go") && !strings.HasSuffix(path, "_test.go") {
				add(filepath.Dir(path))
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}
