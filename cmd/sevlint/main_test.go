package main

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"sevsim/internal/statan"
)

func TestExpandSkipsFixtureAndHiddenDirs(t *testing.T) {
	root := t.TempDir()
	for _, dir := range []string{
		"a",
		filepath.Join("a", "testdata", "src"),
		filepath.Join("a", ".git"),
		filepath.Join("a", "_scratch"),
		"empty",
	} {
		if err := os.MkdirAll(filepath.Join(root, dir), 0o755); err != nil {
			t.Fatal(err)
		}
	}
	files := map[string]string{
		filepath.Join("a", "a.go"):                    "package a\n",
		filepath.Join("a", "a_test.go"):               "package a\n", // test-only does not qualify a dir
		filepath.Join("a", "testdata", "src", "x.go"): "package x\n",
		filepath.Join("a", ".git", "g.go"):            "package g\n",
		filepath.Join("a", "_scratch", "s.go"):        "package s\n",
		filepath.Join("empty", "README"):              "",
	}
	for name, body := range files {
		if err := os.WriteFile(filepath.Join(root, name), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	got, err := expand([]string{filepath.Join(root, "...")})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{filepath.Join(root, "a")}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("expand = %v, want %v", got, want)
	}

	// A plain (non-...) pattern names its directory unconditionally.
	got, err = expand([]string{filepath.Join(root, "empty")})
	if err != nil {
		t.Fatal(err)
	}
	want = []string{filepath.Join(root, "empty")}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("expand = %v, want %v", got, want)
	}
}

func TestScopedGatesDeterminismToHarnessCode(t *testing.T) {
	all := statan.Passes()
	names := func(ps []*statan.Pass) []string {
		var out []string
		for _, p := range ps {
			out = append(out, p.Name)
		}
		return out
	}

	harness := names(scoped(all, filepath.Join("internal", "cpu")))
	if !reflect.DeepEqual(harness, names(all)) {
		t.Errorf("internal/cpu runs %v, want the full set %v", harness, names(all))
	}
	cmds := names(scoped(all, filepath.Join("cmd", "sevrepro")))
	if !reflect.DeepEqual(cmds, names(all)) {
		t.Errorf("cmd/sevrepro runs %v, want the full set %v", cmds, names(all))
	}

	demo := names(scoped(all, filepath.Join("examples", "quickstart")))
	want := []string{"snapshotcover", "equalitycover", "fingerprintcover", "cachekeycover", "transfercover"}
	if !reflect.DeepEqual(demo, want) {
		t.Errorf("examples dir runs %v, want coverage passes only %v", demo, want)
	}
}
