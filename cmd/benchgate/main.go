// Command benchgate turns a benchmark run into a pass/fail regression
// gate. It reads `go test -bench` output on stdin, extracts the ns/op
// of one benchmark, and compares it against a number recorded in a
// bench trajectory file (BENCH_checkpoint.json / BENCH_cache.json),
// addressed by a dotted JSON path:
//
//	go test -run '^$' -bench 'BenchmarkInjectionCell' -benchtime=1x . |
//	    go run ./cmd/benchgate -baseline BENCH_checkpoint.json -max-regression 2
//
//	go test -run '^$' -bench 'BenchmarkCachedStudy' -benchtime=1x . |
//	    go run ./cmd/benchgate -baseline BENCH_cache.json \
//	        -bench 'BenchmarkCachedStudy/warm' -metric per_prep.warm.ns_per_op
//
// The gate fails (exit 1) when the measured time exceeds the baseline
// by more than the allowed factor. The factor is deliberately loose:
// CI runners are noisy and -benchtime=1x is a single iteration, so the
// gate is a tripwire for order-of-magnitude regressions (a lost fast
// path, an accidental full-copy restore, a cache miss where a hit
// belongs), not a microbenchmark judge.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

func main() {
	baseline := flag.String("baseline", "BENCH_checkpoint.json", "bench trajectory file holding the recorded ns/op")
	bench := flag.String("bench", "BenchmarkInjectionCell/fastpath", "benchmark name to gate on (prefix match on the output line)")
	metric := flag.String("metric", "per_injection.fastpath.ns_per_op", "dotted JSON path of the baseline ns/op inside the trajectory file")
	maxRegression := flag.Float64("max-regression", 2, "fail when measured ns/op exceeds baseline by more than this factor")
	flag.Parse()

	raw, err := os.ReadFile(*baseline)
	if err != nil {
		fatalf("read baseline: %v", err)
	}
	var doc any
	if err := json.Unmarshal(raw, &doc); err != nil {
		fatalf("parse %s: %v", *baseline, err)
	}
	base, err := metricValue(doc, *metric)
	if err != nil {
		fatalf("%s: %v", *baseline, err)
	}

	measured, err := scanNsPerOp(os.Stdin, *bench)
	if err != nil {
		fatalf("%v", err)
	}

	ratio := measured / base
	fmt.Printf("benchgate: %s measured %.0f ns/op, baseline %.0f ns/op (%s %s), ratio %.2fx (limit %.2fx)\n",
		*bench, measured, base, *baseline, *metric, ratio, *maxRegression)
	if ratio > *maxRegression {
		fatalf("regression: %.2fx exceeds the %.2fx limit", ratio, *maxRegression)
	}
}

// metricValue walks a decoded JSON document by a dotted path
// ("per_prep.warm.ns_per_op") and returns the positive number at the
// end of it.
func metricValue(doc any, path string) (float64, error) {
	cur := doc
	for _, part := range strings.Split(path, ".") {
		m, ok := cur.(map[string]any)
		if !ok {
			return 0, fmt.Errorf("metric %s: %q is not an object", path, part)
		}
		cur, ok = m[part]
		if !ok {
			return 0, fmt.Errorf("metric %s: no field %q", path, part)
		}
	}
	v, ok := cur.(float64)
	if !ok {
		return 0, fmt.Errorf("metric %s: not a number", path)
	}
	if v <= 0 {
		return 0, fmt.Errorf("metric %s: %v is not a positive ns/op", path, v)
	}
	return v, nil
}

// scanNsPerOp echoes stdin through (so the CI log keeps the full
// benchmark output) and returns the ns/op of the first line naming the
// benchmark. Benchmark output lines look like:
//
//	BenchmarkInjectionCell/fastpath-8    3594    577754 ns/op    8 B/op ...
func scanNsPerOp(r *os.File, bench string) (float64, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	found := -1.0
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line)
		if found >= 0 || !strings.HasPrefix(line, bench) {
			continue
		}
		fields := strings.Fields(line)
		for i := 2; i < len(fields); i++ {
			if fields[i] == "ns/op" {
				v, err := strconv.ParseFloat(fields[i-1], 64)
				if err != nil {
					return 0, fmt.Errorf("parse ns/op on %q: %v", line, err)
				}
				found = v
				break
			}
		}
	}
	if err := sc.Err(); err != nil {
		return 0, fmt.Errorf("read benchmark output: %v", err)
	}
	if found < 0 {
		return 0, fmt.Errorf("no %q ns/op line in benchmark output", bench)
	}
	return found, nil
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "benchgate: "+format+"\n", args...)
	os.Exit(1) //lint:exit CLI gate verdict; nothing is open to clean up
}
