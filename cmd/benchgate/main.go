// Command benchgate turns a benchmark run into a pass/fail regression
// gate. It reads `go test -bench` output on stdin, extracts the ns/op
// of one benchmark, and compares it against the number recorded in a
// bench trajectory file (BENCH_checkpoint.json / BENCH_layout.json):
//
//	go test -run '^$' -bench 'BenchmarkInjectionCell' -benchtime=1x . |
//	    go run ./cmd/benchgate -baseline BENCH_checkpoint.json -max-regression 2
//
// The gate fails (exit 1) when the measured time exceeds the baseline
// by more than the allowed factor. The factor is deliberately loose:
// CI runners are noisy and -benchtime=1x is a single iteration, so the
// gate is a tripwire for order-of-magnitude regressions (a lost fast
// path, an accidental full-copy restore), not a microbenchmark judge.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// trajectory mirrors the per-injection section of the BENCH_*.json
// files; unknown fields are ignored so the schema can grow.
type trajectory struct {
	Benchmark    string `json:"benchmark"`
	PerInjection struct {
		Fastpath struct {
			NsPerOp float64 `json:"ns_per_op"`
		} `json:"fastpath"`
	} `json:"per_injection"`
}

func main() {
	baseline := flag.String("baseline", "BENCH_checkpoint.json", "bench trajectory file holding the recorded ns/op")
	bench := flag.String("bench", "BenchmarkInjectionCell/fastpath", "benchmark name to gate on (prefix match on the output line)")
	maxRegression := flag.Float64("max-regression", 2, "fail when measured ns/op exceeds baseline by more than this factor")
	flag.Parse()

	raw, err := os.ReadFile(*baseline)
	if err != nil {
		fatalf("read baseline: %v", err)
	}
	var t trajectory
	if err := json.Unmarshal(raw, &t); err != nil {
		fatalf("parse %s: %v", *baseline, err)
	}
	base := t.PerInjection.Fastpath.NsPerOp
	if base <= 0 {
		fatalf("%s: no per_injection.fastpath.ns_per_op recorded", *baseline)
	}

	measured, err := scanNsPerOp(os.Stdin, *bench)
	if err != nil {
		fatalf("%v", err)
	}

	ratio := measured / base
	fmt.Printf("benchgate: %s measured %.0f ns/op, baseline %.0f ns/op (%s), ratio %.2fx (limit %.2fx)\n",
		*bench, measured, base, *baseline, ratio, *maxRegression)
	if ratio > *maxRegression {
		fatalf("regression: %.2fx exceeds the %.2fx limit", ratio, *maxRegression)
	}
}

// scanNsPerOp echoes stdin through (so the CI log keeps the full
// benchmark output) and returns the ns/op of the first line naming the
// benchmark. Benchmark output lines look like:
//
//	BenchmarkInjectionCell/fastpath-8    3594    577754 ns/op    8 B/op ...
func scanNsPerOp(r *os.File, bench string) (float64, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	found := -1.0
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line)
		if found >= 0 || !strings.HasPrefix(line, bench) {
			continue
		}
		fields := strings.Fields(line)
		for i := 2; i < len(fields); i++ {
			if fields[i] == "ns/op" {
				v, err := strconv.ParseFloat(fields[i-1], 64)
				if err != nil {
					return 0, fmt.Errorf("parse ns/op on %q: %v", line, err)
				}
				found = v
				break
			}
		}
	}
	if err := sc.Err(); err != nil {
		return 0, fmt.Errorf("read benchmark output: %v", err)
	}
	if found < 0 {
		return 0, fmt.Errorf("no %q ns/op line in benchmark output", bench)
	}
	return found, nil
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "benchgate: "+format+"\n", args...)
	os.Exit(1) //lint:exit CLI gate verdict; nothing is open to clean up
}
