// Command sevablate implements the paper's stated future work: it
// characterizes the impact of *individual* optimizations (rather than
// whole -O levels) on performance and on a hardware structure's
// vulnerability. Starting from a level's full pass set, it disables one
// optimization at a time and re-measures.
//
// Usage:
//
//	sevablate -bench gsm -O O2 -march a72
//	sevablate -bench qsort -O O3 -march a15 -target RF -faults 300
package main

import (
	"flag"
	"fmt"

	"sevsim/internal/campaign"
	"sevsim/internal/cli"
	"sevsim/internal/compiler"
	"sevsim/internal/faultinj"
	"sevsim/internal/machine"
)

func main() {
	bench := flag.String("bench", "gsm", "benchmark name")
	srcFile := flag.String("src", "", "MiniC source file")
	size := flag.Int("size", 0, "benchmark scale (0 = default)")
	levelFlag := flag.String("O", "O2", "baseline optimization level O0..O3")
	marchFlag := flag.String("march", "a72", "microarchitecture: a15 or a72")
	targetFlag := flag.String("target", "", "also measure this structure's AVF (e.g. RF)")
	faults := flag.Int("faults", 200, "faults per AVF measurement")
	seed := flag.Int64("seed", 2021, "sampling seed")
	flag.Parse()

	cfg, err := cli.March(*marchFlag)
	if err != nil {
		cli.Fatal(err)
	}
	level, err := cli.Level(*levelFlag)
	if err != nil {
		cli.Fatal(err)
	}
	name, src, err := cli.LoadSource(*bench, *srcFile, *size)
	if err != nil {
		cli.Fatal(err)
	}
	tgt := cli.Target(cfg)
	base := compiler.LevelPasses(level, tgt)

	var avfTarget *faultinj.Target
	if *targetFlag != "" {
		t, ok := faultinj.TargetByName(*targetFlag)
		if !ok {
			cli.Fatal(fmt.Errorf("unknown target %q", *targetFlag))
		}
		avfTarget = &t
	}

	type row struct {
		label  string
		ps     compiler.PassSet
		active bool
	}
	rows := []row{{label: "full " + level.String(), ps: base, active: true}}
	for _, pass := range compiler.PassNames() {
		reduced := base.Without(pass)
		if reduced == base {
			continue // pass not in this level's set
		}
		rows = append(rows, row{label: "  - " + pass, ps: reduced, active: true})
	}

	fmt.Printf("%s on %s, baseline %s\n\n", name, cfg.Name, level)
	fmt.Printf("%-16s %10s %8s %9s", "configuration", "cycles", "vs full", "code")
	if avfTarget != nil {
		fmt.Printf(" %12s", avfTarget.Name()+" AVF")
	}
	fmt.Println()

	var fullCycles uint64
	for _, r := range rows {
		prog, err := compiler.CompileWithPasses(src, name, r.ps, tgt)
		if err != nil {
			cli.Fatal(err)
		}
		res := machine.New(cfg, prog).Run(1 << 34)
		if res.Outcome != machine.OutcomeOK {
			cli.Fatal(fmt.Errorf("%s: %v %s", r.label, res.Outcome, res.Reason))
		}
		if fullCycles == 0 {
			fullCycles = res.Cycles
		}
		fmt.Printf("%-16s %10d %7.3fx %8dw", r.label, res.Cycles,
			float64(res.Cycles)/float64(fullCycles), len(prog.Code))
		if avfTarget != nil {
			exp, err := faultinj.NewExperiment(cfg, prog)
			if err != nil {
				cli.Fatal(err)
			}
			cr := campaign.Run(exp, *avfTarget, campaign.Options{Faults: *faults, Seed: *seed})
			fmt.Printf(" %11.2f%%", cr.AVF()*100)
		}
		fmt.Println()
	}
}
