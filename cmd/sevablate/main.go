// Command sevablate implements the paper's stated future work: it
// characterizes the impact of *individual* optimizations (rather than
// whole -O levels) on performance and on a hardware structure's
// vulnerability. Starting from a level's full pass set, it disables one
// optimization at a time and re-measures.
//
// Usage:
//
//	sevablate -bench gsm -O O2 -march a72
//	sevablate -bench qsort -O O3 -march a15 -target RF -faults 300
package main

import (
	"flag"
	"fmt"
	"os"
	"sync"

	"sevsim/internal/campaign"
	"sevsim/internal/cli"
	"sevsim/internal/compiler"
	"sevsim/internal/core"
	"sevsim/internal/faultinj"
	"sevsim/internal/machine"
)

func main() {
	bench := flag.String("bench", "gsm", "benchmark name")
	srcFile := flag.String("src", "", "MiniC source file")
	size := flag.Int("size", 0, "benchmark scale (0 = default)")
	levelFlag := flag.String("O", "O2", "baseline optimization level O0..O3")
	marchFlag := flag.String("march", "a72", "microarchitecture: a15 or a72")
	targetFlag := flag.String("target", "", "also measure this structure's AVF (e.g. RF)")
	faults := flag.Int("faults", 200, "faults per AVF measurement")
	seed := flag.Int64("seed", 2021, "sampling seed")
	par := flag.Int("parallel", 0, "concurrent measurements (0 = GOMAXPROCS)")
	ckpts := flag.Int("checkpoints", faultinj.DefaultCheckpoints, "golden checkpoints per row for injection fast-forward (0 disables); results are identical at any setting")
	fastExit := flag.Bool("fastexit", true, "classify Masked at the first provable state convergence with golden; results are identical either way")
	cacheDir := flag.String("cache", "", "prep-artifact cache directory; repeat sweeps skip golden simulations (results are byte-identical either way)")
	cacheMax := flag.Int64("cache-max-mb", 0, "cache size bound in MB (0 = unbounded)")
	flag.Parse()

	cfg, err := cli.March(*marchFlag)
	if err != nil {
		cli.Fatal(err)
	}
	level, err := cli.Level(*levelFlag)
	if err != nil {
		cli.Fatal(err)
	}
	name, src, err := cli.LoadSource(*bench, *srcFile, *size)
	if err != nil {
		cli.Fatal(err)
	}
	tgt := cli.Target(cfg)
	base := compiler.LevelPasses(level, tgt)
	cache, err := cli.Cache(*cacheDir, *cacheMax)
	if err != nil {
		cli.Fatal(err)
	}

	var avfTarget *faultinj.Target
	if *targetFlag != "" {
		t, ok := faultinj.TargetByName(*targetFlag)
		if !ok {
			cli.Fatal(fmt.Errorf("unknown target %q", *targetFlag))
		}
		avfTarget = &t
	}

	type row struct {
		label  string
		ps     compiler.PassSet
		active bool
	}
	rows := []row{{label: "full " + level.String(), ps: base, active: true}}
	for _, pass := range compiler.PassNames() {
		reduced := base.Without(pass)
		if reduced == base {
			continue // pass not in this level's set
		}
		rows = append(rows, row{label: "  - " + pass, ps: reduced, active: true})
	}

	fmt.Printf("%s on %s, baseline %s\n\n", name, cfg.Name, level)
	fmt.Printf("%-16s %10s %8s %9s", "configuration", "cycles", "vs full", "code")
	if avfTarget != nil {
		fmt.Printf(" %12s", avfTarget.Name()+" AVF")
	}
	fmt.Println()

	// Rows are measured concurrently: compiles and baseline runs are
	// gated by a semaphore sized to the worker count, and the AVF
	// campaigns of every row share one worker pool. Output stays in row
	// order.
	workers := cli.Parallelism(*par)
	pool := campaign.NewPool(workers)
	defer pool.Close()
	sem := make(chan struct{}, workers)
	ctx, stop := cli.Interruptible()
	defer stop()

	type measured struct {
		cycles uint64
		code   int
		avf    float64
		skip   string
		intr   bool
		err    error
	}
	out := make([]measured, len(rows))
	var wg sync.WaitGroup
	for i, r := range rows {
		wg.Add(1)
		go func(i int, r row) {
			defer wg.Done()
			sem <- struct{}{}
			prog, err := compiler.CompileWithPasses(src, name, r.ps, tgt)
			if err != nil {
				out[i].err = err
				<-sem
				return
			}
			res := machine.New(cfg, prog).Run(1 << 34)
			if res.Outcome != machine.OutcomeOK {
				out[i].err = fmt.Errorf("%s: %v %s", r.label, res.Outcome, res.Reason)
				<-sem
				return
			}
			out[i].cycles = res.Cycles
			out[i].code = len(prog.Code)
			if avfTarget == nil {
				<-sem
				return
			}
			exp, err := core.CachedExperiment(cache, cfg, prog, faultinj.Options{
				Checkpoints: cli.Checkpoints(*ckpts),
				NoFastExit:  !*fastExit,
			})
			// The campaign runs on the shared pool; this goroutine only
			// waits, so its semaphore slot is released first.
			<-sem
			if err != nil {
				out[i].err = err
				return
			}
			cr := campaign.Run(exp, *avfTarget, campaign.Options{
				Faults: *faults, Seed: *seed, Pool: pool, Context: ctx,
			})
			out[i].avf = cr.AVF()
			out[i].skip = cr.Skipped
			out[i].intr = cr.Interrupted
		}(i, r)
	}
	wg.Wait()

	fullCycles := out[0].cycles
	interrupted := false
	for i, r := range rows {
		m := out[i]
		if m.err != nil {
			cli.Fatal(m.err)
		}
		fmt.Printf("%-16s %10d %7.3fx %8dw", r.label, m.cycles,
			float64(m.cycles)/float64(fullCycles), m.code)
		if avfTarget != nil {
			switch {
			case m.intr:
				interrupted = true
				fmt.Printf("   interrupted")
			case m.skip != "":
				fmt.Printf("   skipped: %s", m.skip)
			default:
				fmt.Printf(" %11.2f%%", m.avf*100)
			}
		}
		fmt.Println()
	}
	cli.CacheSummary(cache)
	if interrupted {
		fmt.Fprintln(os.Stderr, "interrupted: AVF columns marked interrupted are incomplete")
		os.Exit(cli.ExitInterrupted) //lint:exit process boundary: interrupted-run exit after partial output is printed
	}
}
