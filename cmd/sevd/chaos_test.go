package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"sevsim/internal/dispatch"
)

// chaosWire is the chaos campaign: one machine, 12 cells, enough
// faults that the study takes tens of seconds serially — long enough
// for two worker kills and a coordinator kill to land mid-flight.
func chaosWire() dispatch.StudySpec {
	return dispatch.StudySpec{
		Machines: []string{"Cortex-A15-like"},
		Benches:  []string{"qsort", "gsm"},
		Sizes:    []int{64, 2},
		Levels:   []string{"O0", "O2"},
		Targets:  []string{"RF", "ROB.pc", "L1D.data"},
		Faults:   1200,
		Seed:     7,
	}
}

// TestChaosKillWorkersAndCoordinator is the end-to-end fault-tolerance
// acceptance, with real processes and real SIGKILL:
//
//   - a study runs under sevd with 3 sevworker processes
//   - one worker is SIGKILLed twice mid-campaign and restarted on its
//     workdir (exercising lease expiry, reassignment, local-journal
//     replay, and double-completion dedup)
//   - the coordinator is SIGKILLed once mid-campaign and restarted on
//     its state directory and port (exercising journal replay and
//     orphan-lease recovery)
//
// and the merged study.json must still be byte-identical to a clean
// single-process run: no cell lost, none double-counted.
func TestChaosKillWorkersAndCoordinator(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos test runs real processes for ~1 minute")
	}
	sevd, sevworker := buildBinaries(t)
	wire := chaosWire()
	want := localStudy(t, wire)

	state := t.TempDir()
	coord := startSevd(t, sevd, "127.0.0.1:0", state)
	base := "http://" + coord.addr

	var sub dispatch.SubmitResponse
	submitStudy(t, base, wire, &sub)
	t.Logf("submitted %s: %d cells", sub.ID, sub.Cells)

	workdirs := make([]string, 3)
	workers := make([]*proc, 3)
	for i := range workers {
		workdirs[i] = t.TempDir()
		workers[i] = startWorker(t, sevworker, base, fmt.Sprintf("w%d", i), workdirs[i])
	}

	status := func() (dispatch.StatusEvent, error) {
		return studyStatus(base, sub.ID)
	}
	waitDone := func(n int, what string) {
		deadline := time.Now().Add(3 * time.Minute)
		for time.Now().Before(deadline) {
			if ev, err := status(); err == nil && ev.Done >= n {
				t.Logf("%s at done=%d/%d", what, ev.Done, ev.Total)
				return
			}
			time.Sleep(100 * time.Millisecond)
		}
		t.Fatalf("timed out waiting for done >= %d before %s", n, what)
	}

	// First worker kill, early in the campaign.
	waitDone(1, "first worker kill")
	workers[0].kill(t)
	workers[0] = startWorker(t, sevworker, base, "w0", workdirs[0])

	// Coordinator kill and restart on the same state dir and port.
	waitDone(4, "coordinator kill")
	coord.kill(t)
	coord = startSevd(t, sevd, coord.addr, state)

	// Second worker kill, late in the campaign.
	waitDone(8, "second worker kill")
	workers[0].kill(t)
	workers[0] = startWorker(t, sevworker, base, "w0", workdirs[0])

	// The study must finish and match the single-process bytes.
	got := waitResult(t, base, sub.ID)
	if !bytes.Equal(got, want) {
		t.Fatalf("chaos-merged study differs from single-process run (%d vs %d bytes)", len(got), len(want))
	}
	ev, err := status()
	if err != nil {
		t.Fatal(err)
	}
	if ev.Quarantined != 0 {
		t.Fatalf("%d cells quarantined; the merge cannot be clean: %+v", ev.Quarantined, ev)
	}
	t.Logf("chaos run complete: %d cells, byte-identical", ev.Done)
}

// TestChaosSharedWarmCache is the distributed acceptance for the
// prep-artifact cache: three sevworker processes share one cache
// directory, one of them is SIGKILLed mid-campaign and restarted on
// the same workdir and cache, and after the first study lands a second
// study with identical prep units (same benchmarks, levels, machine —
// different sampling seed) must be served entirely from the warm cache
// (zero misses in the coordinator's aggregated counters). Both merged
// studies must be byte-identical to clean single-process runs — a
// cache hit is not allowed to change a single byte.
func TestChaosSharedWarmCache(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos test runs real processes for ~1 minute")
	}
	sevd, sevworker := buildBinaries(t)
	wireA := chaosWire()
	wireA.Faults = 600
	wireB := wireA
	wireB.Seed = wireA.Seed + 1 // new sampling, identical prep units
	wantA := localStudy(t, wireA)
	wantB := localStudy(t, wireB)

	state := t.TempDir()
	coord := startSevd(t, sevd, "127.0.0.1:0", state)
	base := "http://" + coord.addr

	cacheDir := t.TempDir()
	workdirs := make([]string, 3)
	workers := make([]*proc, 3)
	for i := range workers {
		workdirs[i] = t.TempDir()
		workers[i] = startCachedWorker(t, sevworker, base, fmt.Sprintf("w%d", i), workdirs[i], cacheDir)
	}

	var subA dispatch.SubmitResponse
	submitStudy(t, base, wireA, &subA)
	t.Logf("submitted %s (cold): %d cells", subA.ID, subA.Cells)

	// Kill one worker mid-campaign; its restart reuses the same workdir
	// and the same shared cache directory.
	deadline := time.Now().Add(3 * time.Minute)
	for time.Now().Before(deadline) {
		if ev, err := studyStatus(base, subA.ID); err == nil && ev.Done >= 2 {
			break
		}
		time.Sleep(100 * time.Millisecond)
	}
	workers[0].kill(t)
	workers[0] = startCachedWorker(t, sevworker, base, "w0", workdirs[0], cacheDir)

	gotA := waitResult(t, base, subA.ID)
	if !bytes.Equal(gotA, wantA) {
		t.Fatalf("cold cached study differs from single-process run (%d vs %d bytes)", len(gotA), len(wantA))
	}
	evA, err := studyStatus(base, subA.ID)
	if err != nil {
		t.Fatal(err)
	}
	if evA.Cache.Puts == 0 {
		t.Fatalf("cold study filled no cache entries: %+v", evA.Cache)
	}
	t.Logf("cold study complete: cache %+v by %d workers", evA.Cache, len(evA.CacheByWorker))

	var subB dispatch.SubmitResponse
	submitStudy(t, base, wireB, &subB)
	if subB.ID == subA.ID {
		t.Fatal("reseeded study mapped to the same ID")
	}
	gotB := waitResult(t, base, subB.ID)
	if !bytes.Equal(gotB, wantB) {
		t.Fatalf("warm cached study differs from single-process run (%d vs %d bytes)", len(gotB), len(wantB))
	}
	evB, err := studyStatus(base, subB.ID)
	if err != nil {
		t.Fatal(err)
	}
	if evB.Cache.Misses != 0 || evB.Cache.Hits == 0 {
		t.Fatalf("second study was not served warm: %+v", evB.Cache)
	}
	t.Logf("warm study complete: cache %+v, byte-identical", evB.Cache)
}

// localStudy computes the reference bytes in-process.
func localStudy(t *testing.T, wire dispatch.StudySpec) []byte {
	t.Helper()
	spec, err := wire.Spec()
	if err != nil {
		t.Fatal(err)
	}
	st, err := spec.Run()
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.MarshalIndent(st, "", " ")
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func buildBinaries(t *testing.T) (sevd, sevworker string) {
	t.Helper()
	dir := t.TempDir()
	sevd = filepath.Join(dir, "sevd")
	sevworker = filepath.Join(dir, "sevworker")
	for bin, pkg := range map[string]string{sevd: "sevsim/cmd/sevd", sevworker: "sevsim/cmd/sevworker"} {
		cmd := exec.Command("go", "build", "-o", bin, pkg)
		cmd.Stderr = os.Stderr
		if err := cmd.Run(); err != nil {
			t.Fatalf("build %s: %v", pkg, err)
		}
	}
	return sevd, sevworker
}

// proc is a child process whose stdout is logged and scanned.
type proc struct {
	name string
	cmd  *exec.Cmd
	addr string // sevd only: the resolved listen address
	done chan struct{}
}

func (p *proc) kill(t *testing.T) {
	t.Helper()
	t.Logf("SIGKILL %s (pid %d)", p.name, p.cmd.Process.Pid)
	if err := p.cmd.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatalf("kill %s: %v", p.name, err)
	}
	<-p.done
}

func start(t *testing.T, name, bin string, args ...string) *proc {
	t.Helper()
	p := &proc{name: name, cmd: exec.Command(bin, args...), done: make(chan struct{})}
	stdout, err := p.cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	p.cmd.Stderr = p.cmd.Stdout
	addrCh := make(chan string, 1)
	if err := p.cmd.Start(); err != nil {
		t.Fatal(err)
	}
	var logMu sync.Mutex
	go func() {
		defer close(p.done)
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			line := sc.Text()
			logMu.Lock()
			t.Logf("[%s] %s", name, line)
			logMu.Unlock()
			if rest, ok := strings.CutPrefix(line, "sevd: listening on "); ok {
				select {
				case addrCh <- rest:
				default:
				}
			}
		}
		p.cmd.Wait()
	}()
	t.Cleanup(func() {
		p.cmd.Process.Signal(syscall.SIGKILL)
		<-p.done
	})
	if strings.HasPrefix(name, "sevd") {
		select {
		case p.addr = <-addrCh:
		case <-time.After(10 * time.Second):
			t.Fatalf("%s did not print its listen address", name)
		case <-p.done:
			t.Fatalf("%s exited before listening", name)
		}
	}
	return p
}

func startSevd(t *testing.T, bin, listen, state string) *proc {
	// Short TTL and generous budgets: dead workers' cells must come
	// back quickly, and the kills must not quarantine anything (a
	// quarantine would change the study bytes by design).
	return start(t, "sevd", bin,
		"-listen", listen, "-state", state,
		"-lease-ttl", "5s", "-lease-cells", "2",
		"-max-attempts", "20", "-worker-budget", "50")
}

func startWorker(t *testing.T, bin, base, name, workdir string) *proc {
	return start(t, "sevworker/"+name, bin,
		"-coordinator", base, "-workdir", workdir, "-name", name, "-parallel", "2")
}

func startCachedWorker(t *testing.T, bin, base, name, workdir, cacheDir string) *proc {
	return start(t, "sevworker/"+name, bin,
		"-coordinator", base, "-workdir", workdir, "-name", name, "-parallel", "2",
		"-cache", cacheDir)
}

func submitStudy(t *testing.T, base string, wire dispatch.StudySpec, sub *dispatch.SubmitResponse) {
	t.Helper()
	body, err := json.Marshal(wire)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Post(base+"/studies", "application/json", bytes.NewReader(body))
		if err == nil {
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				msg, _ := io.ReadAll(resp.Body)
				t.Fatalf("submit: %s: %s", resp.Status, msg)
			}
			if err := json.NewDecoder(resp.Body).Decode(sub); err != nil {
				t.Fatal(err)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("submit: %v", err)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// studyStatus reads the first line of the progress stream — the
// snapshot — and closes it.
func studyStatus(base, id string) (dispatch.StatusEvent, error) {
	var ev dispatch.StatusEvent
	resp, err := http.Get(base + "/studies/" + id)
	if err != nil {
		return ev, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return ev, fmt.Errorf("status: %s", resp.Status)
	}
	sc := bufio.NewScanner(resp.Body)
	if !sc.Scan() {
		return ev, fmt.Errorf("empty progress stream")
	}
	return ev, json.Unmarshal(sc.Bytes(), &ev)
}

func waitResult(t *testing.T, base, id string) []byte {
	t.Helper()
	deadline := time.Now().Add(5 * time.Minute)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/studies/" + id + "/result")
		if err == nil {
			data, rerr := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK && rerr == nil {
				return data
			}
		}
		time.Sleep(250 * time.Millisecond)
	}
	t.Fatal("study never completed")
	return nil
}
