// Command sevd is the distributed-campaign coordinator: it accepts
// study submissions over HTTP, decomposes them into cell-granular work
// items, leases batches to sevworker processes with deadlines and
// heartbeats, reassigns the cells of dead or stalled workers, and
// merges the reported outcomes into a study.json byte-identical to a
// single-process run of the same spec.
//
// Every accepted result is journaled under -state before it is
// acknowledged, so sevd itself can be killed and restarted at any
// point without losing a completed cell: on restart the journal
// replays, outstanding leases expire, and their cells are re-leased.
//
// Usage:
//
//	sevd -state /var/lib/sevd            # listen on the default port
//	sevd -listen 127.0.0.1:0 -state d    # pick a free port (printed)
//
// Submit work and read results with plain HTTP:
//
//	curl -d '{"Machines":["Cortex-A15-like"],"Benches":["qsort"],"Levels":["O0","O2"],"Faults":200,"Seed":7}' \
//	    http://localhost:8750/studies
//	curl http://localhost:8750/studies/<id>          # progress stream
//	curl http://localhost:8750/studies/<id>/result   # final study.json
//
// SIGTERM or SIGINT drains gracefully: no new leases are granted,
// in-flight leases get -drain-timeout to report, then the server shuts
// down. A second signal kills the process immediately.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"time"

	"sevsim/internal/cli"
	"sevsim/internal/dispatch"
	"sevsim/internal/journal"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:8750", "address to listen on (use :0 for a free port)")
	state := flag.String("state", "", "durable state directory (required); the journal inside it makes sevd kill-and-resume safe")
	leaseTTL := flag.Duration("lease-ttl", 30*time.Second, "lease deadline without a heartbeat before cells are reassigned")
	leaseCells := flag.Int("lease-cells", 4, "default cells per lease grant")
	maxAttempts := flag.Int("max-attempts", 3, "lease grants per cell before it is quarantined into Study.Failed")
	workerBudget := flag.Int("worker-budget", 3, "per-worker error budget before it stops receiving leases")
	drainTimeout := flag.Duration("drain-timeout", time.Minute, "how long a SIGTERM drain waits for in-flight leases")
	quiet := flag.Bool("q", false, "suppress operational log output")
	flag.Parse()

	if *state == "" {
		cli.Fatal(fmt.Errorf("-state is required"))
	}
	if err := journal.MkdirAllSync(*state, 0o755); err != nil {
		cli.Fatal(err)
	}

	logf := func(format string, args ...any) {
		if !*quiet {
			fmt.Printf("sevd: "+format+"\n", args...)
		}
	}
	coord, err := dispatch.OpenCoordinator(dispatch.Options{
		Dir:          *state,
		LeaseTTL:     *leaseTTL,
		LeaseCells:   *leaseCells,
		MaxAttempts:  *maxAttempts,
		WorkerBudget: *workerBudget,
		Logf:         logf,
	})
	if err != nil {
		cli.Fatal(err)
	}

	srv := dispatch.NewServer(coord, *listen)
	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		cli.Fatal(err)
	}
	// The resolved address line is machine-read by tests and scripts
	// that start sevd on ":0"; keep its shape stable.
	fmt.Printf("sevd: listening on %s\n", ln.Addr())

	ctx, stop := cli.Interruptible()
	defer stop()

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	// Sweep expired leases on a fraction of the TTL so a dead worker's
	// cells come back well before a live worker runs out of queue.
	go func() {
		tick := time.NewTicker(*leaseTTL / 4)
		defer tick.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-tick.C:
				coord.Sweep()
			}
		}
	}()

	select {
	case err := <-serveErr:
		coord.Close()
		cli.Fatal(err)
	case <-ctx.Done():
	}

	logf("draining (up to %s)", *drainTimeout)
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	if err := coord.Drain(drainCtx); err != nil {
		logf("drain: %v", err)
	}
	cancel()

	shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil && err != http.ErrServerClosed {
		logf("shutdown: %v", err)
	}
	if err := coord.Close(); err != nil {
		cli.Fatal(err)
	}
	logf("bye")
}
