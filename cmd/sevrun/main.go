// Command sevrun compiles and executes a MiniC program on a simulated
// microarchitecture, printing the program output and pipeline/cache
// statistics. With -oracle it also cross-checks the output against the
// reference interpreter.
//
// Usage:
//
//	sevrun -bench dijkstra -O O2 -march a72
//	sevrun -src prog.mc -O O0 -march a15 -oracle
package main

import (
	"flag"
	"fmt"
	"os"

	"sevsim/internal/cli"
	"sevsim/internal/compiler"
	"sevsim/internal/interp"
	"sevsim/internal/isa"
	"sevsim/internal/machine"
)

func main() {
	bench := flag.String("bench", "", "benchmark name")
	srcFile := flag.String("src", "", "MiniC source file")
	asmFile := flag.String("asm", "", "SEV assembly file (bypasses the compiler)")
	size := flag.Int("size", 0, "benchmark scale (0 = default)")
	levelFlag := flag.String("O", "O2", "optimization level O0..O3")
	marchFlag := flag.String("march", "a15", "microarchitecture: a15 or a72")
	oracle := flag.Bool("oracle", false, "cross-check against the reference interpreter")
	maxCycles := flag.Uint64("max-cycles", 1<<34, "cycle budget")
	flag.Parse()

	cfg, err := cli.March(*marchFlag)
	if err != nil {
		cli.Fatal(err)
	}
	level, err := cli.Level(*levelFlag)
	if err != nil {
		cli.Fatal(err)
	}
	var prog *machine.Program
	var name, src string
	if *asmFile != "" {
		data, err := os.ReadFile(*asmFile)
		if err != nil {
			cli.Fatal(err)
		}
		ins, err := isa.Asm(string(data))
		if err != nil {
			cli.Fatal(err)
		}
		name = *asmFile
		prog = &machine.Program{
			Name: name, Code: isa.Assemble(ins),
			Entry: machine.CodeBase, GlobalSize: 1 << 16,
		}
	} else {
		var err error
		name, src, err = cli.LoadSource(*bench, *srcFile, *size)
		if err != nil {
			cli.Fatal(err)
		}
		prog, err = compiler.Compile(src, name, level, cli.Target(cfg))
		if err != nil {
			cli.Fatal(err)
		}
	}
	// The reference interpreter is independent of the simulation, so the
	// -oracle run executes concurrently with the machine instead of
	// serially after it.
	type oracleRun struct {
		out []uint64
		err error
	}
	var oracleCh chan oracleRun
	if *oracle && *asmFile == "" {
		parsed := cli.MustParse(src)
		oracleCh = make(chan oracleRun, 1)
		go func() {
			out, err := interp.Run(parsed, cfg.CPU.XLEN, 1<<40)
			oracleCh <- oracleRun{out: out, err: err}
		}()
	}
	res := machine.New(cfg, prog).Run(*maxCycles)

	fmt.Printf("%s %s on %s: %s", name, level, cfg.Name, res.Outcome)
	if res.Reason != "" {
		fmt.Printf(" (%s)", res.Reason)
	}
	fmt.Println()
	for i, v := range res.Output {
		fmt.Printf("out[%d] = %d (%#x)\n", i, v, v)
	}
	s := res.Stats
	fmt.Printf("\ncycles       %12d\ninstructions %12d\nIPC          %12.3f\n",
		s.Cycles, s.Committed, s.IPC())
	fmt.Printf("branches     %12d  mispredicted %d (%.2f%%)\n",
		s.Branches, s.Mispredicts, pct(s.Mispredicts, s.Branches))
	fmt.Printf("loads/stores %12d / %d\n", s.Loads, s.Stores)
	fmt.Printf("L1I  hits %10d  misses %8d\n", res.L1I.Hits, res.L1I.Misses)
	fmt.Printf("L1D  hits %10d  misses %8d  writebacks %d\n", res.L1D.Hits, res.L1D.Misses, res.L1D.Writebacks)
	fmt.Printf("L2   hits %10d  misses %8d\n", res.L2.Hits, res.L2.Misses)
	fmt.Printf("avg occupancy: ROB %.1f  IQ %.1f  LQ %.1f  SQ %.1f  live PRF %.1f\n",
		avg(s.ROBOccupancy, s.Cycles), avg(s.IQOccupancy, s.Cycles),
		avg(s.LQOccupancy, s.Cycles), avg(s.SQOccupancy, s.Cycles),
		avg(s.PRFLive, s.Cycles))

	if oracleCh != nil {
		o := <-oracleCh
		if o.err != nil {
			cli.Fatal(o.err)
		}
		want := o.out
		if len(want) != len(res.Output) {
			fmt.Printf("\nORACLE MISMATCH: %d outputs, interpreter has %d\n", len(res.Output), len(want))
			return
		}
		for i := range want {
			if want[i] != res.Output[i] {
				fmt.Printf("\nORACLE MISMATCH at %d: machine %#x, interpreter %#x\n",
					i, res.Output[i], want[i])
				return
			}
		}
		fmt.Println("\noracle: outputs match the reference interpreter")
	}
}

func pct(a, b uint64) float64 {
	if b == 0 {
		return 0
	}
	return 100 * float64(a) / float64(b)
}

func avg(sum, n uint64) float64 {
	if n == 0 {
		return 0
	}
	return float64(sum) / float64(n)
}
