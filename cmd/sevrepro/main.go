// Command sevrepro regenerates every table and figure of the paper:
// it runs the full characterization study (both microarchitectures, all
// eight benchmarks, four optimization levels, all fifteen structure
// fields) and writes the results as text figures, CSV, and JSON.
//
// The paper's full scale is -faults 2000 with large inputs; the default
// here is a laptop-scale run that preserves the comparative shape.
//
// Usage:
//
//	sevrepro -faults 150 -out results
//	sevrepro -faults 2000 -scale 2 -out results-full   # closer to paper scale
//	sevrepro -load results/study.json -out results     # re-render only
//
// Runs are journaled by default (<out>/journal.jsonl): Ctrl-C drains
// gracefully, and re-running the same command resumes from the last
// completed cell, producing the same study.json an uninterrupted run
// would have.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"sevsim/internal/cli"
	"sevsim/internal/core"
	"sevsim/internal/faultinj"
	"sevsim/internal/journal"
	"sevsim/internal/report"
	"sevsim/internal/workloads"
)

func main() {
	faults := flag.Int("faults", 150, "faults per campaign cell (paper: 2000)")
	seed := flag.Int64("seed", 2021, "master sampling seed")
	outDir := flag.String("out", "results", "output directory")
	scale := flag.Float64("scale", 1.0, "benchmark size multiplier")
	load := flag.String("load", "", "re-render figures from a saved study.json instead of running")
	par := flag.Int("parallel", 0, "study-wide worker pool size (0 = GOMAXPROCS); results are identical at any setting")
	prune := flag.Bool("prune", false, "statically prune provably-masked RF injections (identical outcomes, less simulation)")
	jpath := flag.String("journal", "", "durable journal path for kill-and-resume (default <out>/journal.jsonl; \"off\" disables)")
	keepGoing := flag.Bool("keep-going", false, "quarantine failed units/cells into the study instead of aborting on the first error")
	retries := flag.Int("retries", 0, "extra preparation attempts per unit before quarantining (with -keep-going)")
	cellTimeout := flag.Duration("cell-timeout", 0, "per-cell wall-clock watchdog (0 = off); stuck cells are recorded and skipped")
	ckpts := flag.Int("checkpoints", faultinj.DefaultCheckpoints, "golden checkpoints per cell for injection fast-forward (0 disables); results are identical at any setting")
	fastExit := flag.Bool("fastexit", true, "classify Masked at the first provable state convergence with golden; results are identical either way")
	cacheDir := flag.String("cache", "", "prep-artifact cache directory; repeat runs skip compiles and golden simulations (results are byte-identical either way)")
	cacheMax := flag.Int64("cache-max-mb", 0, "cache size bound in MB (0 = unbounded); least-recently-used entries are evicted")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file at exit")
	quiet := flag.Bool("q", false, "suppress progress output")
	flag.Parse()

	// The output directory must itself be durable before the journal and
	// study files inside it are: a crash that loses the dentry loses
	// everything written under it, fsynced or not.
	if err := journal.MkdirAllSync(*outDir, 0o755); err != nil {
		fatal(err)
	}

	stopProfiles, err := cli.StartProfiles(*cpuProfile, *memProfile)
	if err != nil {
		fatal(err)
	}
	defer stopProfiles()

	var st *core.Study
	if *load != "" {
		var err error
		st, err = core.Load(*load)
		if err != nil {
			fatal(err)
		}
	} else {
		spec := core.DefaultSpec(*faults)
		spec.Seed = *seed
		spec.Parallelism = cli.Parallelism(*par)
		spec.Prune = *prune
		spec.KeepGoing = *keepGoing
		spec.Retries = *retries
		spec.CellTimeout = *cellTimeout
		spec.Checkpoints = cli.Checkpoints(*ckpts)
		spec.NoFastExit = !*fastExit
		spec.Cache, err = cli.Cache(*cacheDir, *cacheMax)
		if err != nil {
			fatal(err)
		}
		switch *jpath {
		case "off":
		case "":
			spec.Journal = filepath.Join(*outDir, "journal.jsonl")
		default:
			spec.Journal = *jpath
		}
		if *scale != 1.0 {
			spec.Size = func(b workloads.Benchmark) int {
				s := int(float64(b.DefaultSize) * *scale)
				if s < 1 {
					s = 1
				}
				return s
			}
		}
		spec.Progress = cli.Progress(*quiet)

		ctx, stop := cli.Interruptible()
		start := time.Now() //lint:clock progress display only; elapsed time never reaches study.json
		var err error
		st, err = spec.RunContext(ctx)
		stop()
		if err != nil {
			if errors.Is(err, context.Canceled) && spec.Journal != "" {
				fmt.Fprintf(os.Stderr, "\ninterrupted: completed cells are journaled in %s\n", spec.Journal)
				fmt.Fprintln(os.Stderr, "re-run the same command to resume from where it stopped")
				stopProfiles()
				os.Exit(cli.ExitInterrupted) //lint:exit process boundary: interrupted-study exit after the journal is flushed
			}
			fatal(err)
		}
		fmt.Printf("\nstudy complete: %d campaign cells, %d injections, %s\n",
			len(st.Results), len(st.Results)*(*faults),
			time.Since(start).Round(time.Second)) //lint:clock progress display only; elapsed time never reaches study.json
		if err := st.Save(filepath.Join(*outDir, "study.json")); err != nil {
			fatal(err)
		}
		// The study is durably saved; the journal has served its purpose.
		if spec.Journal != "" {
			if err := journal.Remove(spec.Journal); err != nil {
				fmt.Fprintln(os.Stderr, "warning: could not remove journal:", err)
			}
		}
		if len(st.Failed) > 0 {
			fmt.Printf("note: %d units/cells quarantined; see the failures table in figures.txt\n", len(st.Failed))
		}
		cli.CacheSummary(spec.Cache)
		if spec.Cache != nil {
			// Per-study cache effectiveness as CSV, next to campaigns.csv,
			// for sweep dashboards.
			cc, err := os.Create(filepath.Join(*outDir, "cache.csv"))
			if err != nil {
				fatal(err)
			}
			cs := spec.Cache.Stats()
			report.CSV(cc,
				[]string{"cache_hits", "cache_misses", "cache_puts", "cache_evictions", "cache_corrupt"},
				[][]string{{fmt.Sprint(cs.Hits), fmt.Sprint(cs.Misses), fmt.Sprint(cs.Puts),
					fmt.Sprint(cs.Evictions), fmt.Sprint(cs.Corrupt)}})
			if err := cc.Close(); err != nil {
				fatal(err)
			}
		}
	}

	// Render the full figure set.
	figPath := filepath.Join(*outDir, "figures.txt")
	f, err := os.Create(figPath)
	if err != nil {
		fatal(err)
	}
	report.Everything(f, st)
	if err := f.Close(); err != nil {
		fatal(err)
	}

	// Raw campaign data as CSV for downstream plotting.
	csvPath := filepath.Join(*outDir, "campaigns.csv")
	c, err := os.Create(csvPath)
	if err != nil {
		fatal(err)
	}
	headers := []string{"march", "bench", "level", "target", "faults",
		"masked", "sdc", "crash", "timeout", "assert",
		"pruned", "pruned_reg", "pruned_bit", "pruned_due", "unexpected",
		"golden_cycles", "struct_bits"}
	rows := make([][]string, 0, len(st.Results))
	for _, r := range st.Results {
		rows = append(rows, []string{
			r.March, r.Bench, r.Level, r.Target,
			fmt.Sprint(r.Faults), fmt.Sprint(r.Counts.Masked), fmt.Sprint(r.Counts.SDC),
			fmt.Sprint(r.Counts.Crash), fmt.Sprint(r.Counts.Timeout), fmt.Sprint(r.Counts.Assert),
			fmt.Sprint(r.Counts.Pruned), fmt.Sprint(r.Counts.PrunedReg), fmt.Sprint(r.Counts.PrunedBit),
			fmt.Sprint(r.Counts.PrunedDUE), fmt.Sprint(r.Counts.Unexpected),
			fmt.Sprint(r.GoldenCycles), fmt.Sprint(r.StructBits),
		})
	}
	report.CSV(c, headers, rows)
	if err := c.Close(); err != nil {
		fatal(err)
	}

	// Pruner hit rates: how much simulation the static analyses saved,
	// split by the granularity/class that proved each injection.
	if *prune {
		var total, pruned, preg, pbit, pdue int
		for _, r := range st.Results {
			if r.Target != "RF" {
				continue
			}
			total += r.Faults
			pruned += r.Counts.Pruned
			preg += r.Counts.PrunedReg
			pbit += r.Counts.PrunedBit
			pdue += r.Counts.PrunedDUE
		}
		if total > 0 {
			fmt.Printf("pruner: %d/%d RF injections proven statically (%.1f%%): %d register-granular + %d bit-granular Masked, %d crash-certain DUE\n",
				pruned, total, 100*float64(pruned)/float64(total), preg, pbit, pdue)
		}
	}

	fmt.Printf("wrote %s and %s\n", figPath, csvPath)

	// Unexpected simulator panics mean the harness itself misbehaved for
	// some injections; surface that as a failing exit so CI and scripted
	// sweeps notice.
	unexpected := 0
	for _, r := range st.Results {
		unexpected += r.Counts.Unexpected
	}
	if unexpected > 0 {
		fmt.Fprintf(os.Stderr, "error: %d injections hit unexpected simulator panics (see the anomalies table in figures.txt)\n", unexpected)
		stopProfiles()
		os.Exit(1) //lint:exit process boundary: non-zero verdict for unexpected simulator panics
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "error:", err)
	os.Exit(1) //lint:exit process boundary: the CLI's fatal-error helper
}
