// Command sevrepro regenerates every table and figure of the paper:
// it runs the full characterization study (both microarchitectures, all
// eight benchmarks, four optimization levels, all fifteen structure
// fields) and writes the results as text figures, CSV, and JSON.
//
// The paper's full scale is -faults 2000 with large inputs; the default
// here is a laptop-scale run that preserves the comparative shape.
//
// Usage:
//
//	sevrepro -faults 150 -out results
//	sevrepro -faults 2000 -scale 2 -out results-full   # closer to paper scale
//	sevrepro -load results/study.json -out results     # re-render only
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"sevsim/internal/cli"
	"sevsim/internal/core"
	"sevsim/internal/report"
	"sevsim/internal/workloads"
)

func main() {
	faults := flag.Int("faults", 150, "faults per campaign cell (paper: 2000)")
	seed := flag.Int64("seed", 2021, "master sampling seed")
	outDir := flag.String("out", "results", "output directory")
	scale := flag.Float64("scale", 1.0, "benchmark size multiplier")
	load := flag.String("load", "", "re-render figures from a saved study.json instead of running")
	par := flag.Int("parallel", 0, "study-wide worker pool size (0 = GOMAXPROCS); results are identical at any setting")
	prune := flag.Bool("prune", false, "statically prune provably-masked RF injections (identical outcomes, less simulation)")
	quiet := flag.Bool("q", false, "suppress progress output")
	flag.Parse()

	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		fatal(err)
	}

	var st *core.Study
	if *load != "" {
		var err error
		st, err = core.Load(*load)
		if err != nil {
			fatal(err)
		}
	} else {
		spec := core.DefaultSpec(*faults)
		spec.Seed = *seed
		spec.Parallelism = cli.Parallelism(*par)
		spec.Prune = *prune
		if *scale != 1.0 {
			spec.Size = func(b workloads.Benchmark) int {
				s := int(float64(b.DefaultSize) * *scale)
				if s < 1 {
					s = 1
				}
				return s
			}
		}
		spec.Progress = cli.Progress(*quiet)
		start := time.Now()
		var err error
		st, err = spec.Run()
		if err != nil {
			fatal(err)
		}
		fmt.Printf("\nstudy complete: %d campaign cells, %d injections, %s\n",
			len(st.Results), len(st.Results)*(*faults), time.Since(start).Round(time.Second))
		if err := st.Save(filepath.Join(*outDir, "study.json")); err != nil {
			fatal(err)
		}
	}

	// Render the full figure set.
	figPath := filepath.Join(*outDir, "figures.txt")
	f, err := os.Create(figPath)
	if err != nil {
		fatal(err)
	}
	report.Everything(f, st)
	if err := f.Close(); err != nil {
		fatal(err)
	}

	// Raw campaign data as CSV for downstream plotting.
	csvPath := filepath.Join(*outDir, "campaigns.csv")
	c, err := os.Create(csvPath)
	if err != nil {
		fatal(err)
	}
	headers := []string{"march", "bench", "level", "target", "faults",
		"masked", "sdc", "crash", "timeout", "assert", "pruned", "golden_cycles", "struct_bits"}
	rows := make([][]string, 0, len(st.Results))
	for _, r := range st.Results {
		rows = append(rows, []string{
			r.March, r.Bench, r.Level, r.Target,
			fmt.Sprint(r.Faults), fmt.Sprint(r.Counts.Masked), fmt.Sprint(r.Counts.SDC),
			fmt.Sprint(r.Counts.Crash), fmt.Sprint(r.Counts.Timeout), fmt.Sprint(r.Counts.Assert),
			fmt.Sprint(r.Counts.Pruned),
			fmt.Sprint(r.GoldenCycles), fmt.Sprint(r.StructBits),
		})
	}
	report.CSV(c, headers, rows)
	if err := c.Close(); err != nil {
		fatal(err)
	}

	fmt.Printf("wrote %s and %s\n", figPath, csvPath)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "error:", err)
	os.Exit(1)
}
