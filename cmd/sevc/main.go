// Command sevc compiles MiniC to SEV machine code and prints the
// disassembly, per-level code-size statistics, or the intermediate
// representation.
//
// Usage:
//
//	sevc -bench qsort -O O2 -march a15          # disassemble a benchmark
//	sevc -src prog.mc -O O3 -march a72 -ir      # dump optimized IR
//	sevc -bench sha -sizes                      # code size at every level
package main

import (
	"flag"
	"fmt"

	"sevsim/internal/cli"
	"sevsim/internal/compiler"
	"sevsim/internal/isa"
	"sevsim/internal/machine"
)

func main() {
	bench := flag.String("bench", "", "benchmark name (qsort, dijkstra, fft, sha, blowfish, gsm, patricia, rijndael)")
	srcFile := flag.String("src", "", "MiniC source file")
	size := flag.Int("size", 0, "benchmark scale (0 = default)")
	levelFlag := flag.String("O", "O2", "optimization level O0..O3")
	marchFlag := flag.String("march", "a15", "microarchitecture: a15 or a72")
	dumpIR := flag.Bool("ir", false, "dump optimized IR instead of machine code")
	sizes := flag.Bool("sizes", false, "print code size at every optimization level")
	flag.Parse()

	cfg, err := cli.March(*marchFlag)
	if err != nil {
		cli.Fatal(err)
	}
	name, src, err := cli.LoadSource(*bench, *srcFile, *size)
	if err != nil {
		cli.Fatal(err)
	}
	tgt := cli.Target(cfg)

	if *sizes {
		fmt.Printf("%s on %s:\n", name, cfg.Name)
		for _, level := range compiler.Levels {
			prog, err := compiler.Compile(src, name, level, tgt)
			if err != nil {
				cli.Fatal(err)
			}
			fmt.Printf("  %s: %5d instructions (%d bytes)\n", level, len(prog.Code), len(prog.Code)*4)
		}
		return
	}

	level, err := cli.Level(*levelFlag)
	if err != nil {
		cli.Fatal(err)
	}

	if *dumpIR {
		mod, err := compiler.Lower(cli.MustParse(src), tgt.WordSize())
		if err != nil {
			cli.Fatal(err)
		}
		compiler.Optimize(mod, level, tgt)
		for _, f := range mod.Funcs {
			fmt.Println(f.String())
		}
		return
	}

	prog, err := compiler.Compile(src, name, level, tgt)
	if err != nil {
		cli.Fatal(err)
	}
	fmt.Printf("// %s %s %s: %d instructions, %d bytes of globals\n",
		name, level, cfg.Name, len(prog.Code), prog.GlobalSize)
	for i, w := range prog.Code {
		in := isa.Decode(w)
		fmt.Printf("%6x: %08x  %s\n", machine.CodeBase+uint64(i*4), w, in.String())
	}
}
