// Command sevworker executes campaign cells on behalf of a sevd
// coordinator: it polls for leases, computes each batch with the same
// journaled engine the local tools use, and reports the outcomes.
//
// The -workdir journal makes the worker itself crash-safe: a worker
// SIGKILLed mid-lease and restarted on the same workdir replays its
// finished cells instead of recomputing them, then reports them —
// whether or not the coordinator still remembers the lease, since
// completions are merged by cell identity.
//
// Usage:
//
//	sevworker -coordinator http://localhost:8750 -workdir /tmp/w1
//	sevworker -coordinator http://host:8750 -workdir d -name rack3 -parallel 8
//
// SIGTERM or SIGINT stops the worker after at most one in-flight
// report; abandoned leases expire at the coordinator and reassign.
package main

import (
	"flag"
	"fmt"
	"os"

	"sevsim/internal/cli"
	"sevsim/internal/dispatch"
	"sevsim/internal/journal"
)

func main() {
	coordinator := flag.String("coordinator", "http://127.0.0.1:8750", "coordinator base URL")
	workdir := flag.String("workdir", "", "local journal directory (required); reuse it across restarts to resume partial leases")
	name := flag.String("name", "", "worker name for leases and error budgets (default host.pid)")
	cells := flag.Int("cells", 0, "cells to request per lease (0 = coordinator default)")
	parallel := flag.Int("parallel", 0, "campaign parallelism per cell (0 = GOMAXPROCS); results are identical at any setting")
	cacheDir := flag.String("cache", "", "prep-artifact cache directory, kept across leases and studies; re-leased cells skip compiles and golden simulations (results are byte-identical either way)")
	cacheMax := flag.Int64("cache-max-mb", 0, "cache size bound in MB (0 = adopt the study's advice, else unbounded)")
	quiet := flag.Bool("q", false, "suppress log output")
	flag.Parse()

	if *workdir == "" {
		cli.Fatal(fmt.Errorf("-workdir is required"))
	}
	if err := journal.MkdirAllSync(*workdir, 0o755); err != nil {
		cli.Fatal(err)
	}
	if *name == "" {
		host, err := os.Hostname()
		if err != nil {
			host = "worker"
		}
		*name = fmt.Sprintf("%s.%d", host, os.Getpid())
	}

	w, err := dispatch.NewWorker(dispatch.WorkerOptions{
		Coordinator: *coordinator,
		Name:        *name,
		Workdir:     *workdir,
		MaxCells:    *cells,
		Parallelism: *parallel,
		CacheDir:    *cacheDir,
		CacheMaxMB:  *cacheMax,
		Logf: func(format string, args ...any) {
			if !*quiet {
				fmt.Printf("sevworker %s: "+format+"\n", append([]any{*name}, args...)...)
			}
		},
	})
	if err != nil {
		cli.Fatal(err)
	}

	ctx, stop := cli.Interruptible()
	defer stop()
	if err := w.Run(ctx); err != nil {
		cli.Fatal(err)
	}
	cli.CacheSummary(w.Cache())
}
