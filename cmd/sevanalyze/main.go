// Command sevanalyze runs the binary-level ACE/liveness analyzer over
// study binaries: it reconstructs each binary's control-flow graph,
// computes per-instruction register liveness and value lifetimes,
// checks binary invariants, and (with -bounds) runs the fault-free
// simulation to derive the static lower bound on the Masked rate /
// upper bound on the AVF of the physical register file — the numbers a
// -prune injection campaign realizes without simulating.
//
// Usage:
//
//	sevanalyze                                  # all 32 a15 binaries: invariants + bounds
//	sevanalyze -march a72 -bounds=false         # static-only pass, no simulation
//	sevanalyze -bench qsort -O O2 -dump cfg     # CFG of one binary
//	sevanalyze -bench sha -O O3 -dump live      # per-instruction liveness
//	sevanalyze -bench fft -O O1 -dump lifetimes # value-lifetime histogram
package main

import (
	"flag"
	"fmt"
	"os"
	"sync"

	"sevsim/internal/binanalysis"
	"sevsim/internal/cli"
	"sevsim/internal/compiler"
	"sevsim/internal/faultinj"
	"sevsim/internal/isa"
	"sevsim/internal/machine"
	"sevsim/internal/report"
	"sevsim/internal/workloads"
)

func main() {
	marchFlag := flag.String("march", "a15", "microarchitecture: a15 or a72")
	benchFlag := flag.String("bench", "", "benchmark name (default: all)")
	levelFlag := flag.String("O", "", "optimization level O0..O3 (default: all)")
	size := flag.Int("size", 0, "benchmark scale (0 = default)")
	bounds := flag.Bool("bounds", true, "run golden simulations and report static Masked/AVF bounds")
	dump := flag.String("dump", "", "detail dump for a single -bench/-O binary: cfg, live, lifetimes")
	par := flag.Int("parallel", 0, "concurrent golden runs (0 = GOMAXPROCS)")
	flag.Parse()

	cfg, err := cli.March(*marchFlag)
	if err != nil {
		cli.Fatal(err)
	}

	var benches []workloads.Benchmark
	if *benchFlag == "" {
		benches = workloads.All()
	} else {
		b, err := workloads.ByName(*benchFlag)
		if err != nil {
			cli.Fatal(err)
		}
		benches = []workloads.Benchmark{b}
	}
	levels := compiler.Levels
	if *levelFlag != "" {
		l, err := cli.Level(*levelFlag)
		if err != nil {
			cli.Fatal(err)
		}
		levels = []compiler.OptLevel{l}
	}

	if *dump != "" {
		if len(benches) != 1 || len(levels) != 1 {
			cli.Fatal(fmt.Errorf("-dump needs a single binary: give both -bench and -O"))
		}
		prog, a := analyzeOne(cfg, benches[0], levels[0], *size)
		switch *dump {
		case "cfg":
			dumpCFG(prog.Name, a)
		case "live":
			dumpLiveness(a, cfg.CPU.NumArchRegs)
		case "lifetimes":
			dumpLifetimes(a)
		default:
			cli.Fatal(fmt.Errorf("unknown -dump %q (use cfg, live, lifetimes)", *dump))
		}
		return
	}

	type unit struct {
		bench workloads.Benchmark
		level compiler.OptLevel

		words      int
		blocks     int
		funcs      int
		deadWrites int
		violations []binanalysis.Violation
		bound      binanalysis.RFBound
		cycles     uint64
		err        error
	}
	var units []*unit
	for _, b := range benches {
		for _, l := range levels {
			units = append(units, &unit{bench: b, level: l})
		}
	}

	// Bounded fan-out: compiles are cheap but each -bounds unit runs a
	// full golden simulation.
	sem := make(chan struct{}, cli.Parallelism(*par))
	var wg sync.WaitGroup
	for _, u := range units {
		wg.Add(1)
		go func(u *unit) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			sz := u.bench.DefaultSize
			if *size > 0 {
				sz = *size
			}
			prog, err := compiler.Compile(u.bench.Source(sz), u.bench.Name, u.level, cli.Target(cfg))
			if err != nil {
				u.err = err
				return
			}
			a, err := binanalysis.AnalyzeWords(prog.Code)
			if err != nil {
				u.err = err
				return
			}
			u.words = len(prog.Code)
			u.blocks = len(a.CFG.Blocks)
			u.funcs = len(a.CFG.FuncEntries)
			for _, lt := range a.Lifetimes {
				if lt.Uses == 0 {
					u.deadWrites++
				}
			}
			u.violations = binanalysis.CheckInvariants(a)
			if *bounds {
				exp, err := faultinj.NewTracedExperiment(cfg, prog)
				if err != nil {
					u.err = err
					return
				}
				pr, err := binanalysis.NewRFPruner(a, exp)
				if err != nil {
					u.err = err
					return
				}
				u.bound = pr.Bound()
				u.cycles = exp.GoldenCycles
			}
		}(u)
	}
	wg.Wait()

	headers := []string{"benchmark", "level", "words", "blocks", "funcs", "dead-writes", "invariants"}
	if *bounds {
		headers = append(headers, "cycles", "static Masked>=", "static AVF<=")
	}
	rows := [][]string{}
	failed := false
	for _, u := range units {
		if u.err != nil {
			failed = true
			fmt.Fprintf(os.Stderr, "error: %s %s: %v\n", u.bench.Name, u.level, u.err)
			continue
		}
		inv := "ok"
		if len(u.violations) > 0 {
			inv = fmt.Sprintf("%d violations", len(u.violations))
		}
		row := []string{u.bench.Name, u.level.String(),
			fmt.Sprint(u.words), fmt.Sprint(u.blocks), fmt.Sprint(u.funcs),
			fmt.Sprint(u.deadWrites), inv}
		if *bounds {
			row = append(row, fmt.Sprint(u.cycles),
				report.Pct(u.bound.MaskedLB), report.Pct(u.bound.AVFUpperBound))
		}
		rows = append(rows, row)
	}
	fmt.Printf("Static ACE analysis: %d binaries on %s\n", len(rows), cfg.Name)
	report.Table(os.Stdout, headers, rows)
	for _, u := range units {
		for _, v := range u.violations {
			fmt.Printf("%s %s: %s\n", u.bench.Name, u.level, v)
		}
	}
	if failed {
		os.Exit(1) //lint:exit process boundary: non-zero verdict when invariant checks fail
	}
}

func analyzeOne(cfg machine.Config, b workloads.Benchmark, l compiler.OptLevel, size int) (*machine.Program, *binanalysis.Analysis) {
	if size <= 0 {
		size = b.DefaultSize
	}
	prog, err := compiler.Compile(b.Source(size), b.Name, l, cli.Target(cfg))
	if err != nil {
		cli.Fatal(err)
	}
	a, err := binanalysis.AnalyzeWords(prog.Code)
	if err != nil {
		cli.Fatal(err)
	}
	return prog, a
}

func dumpCFG(name string, a *binanalysis.Analysis) {
	g := a.CFG
	fmt.Printf("%s: %d instructions, %d blocks, %d function entries, %d return points\n",
		name, len(g.Code), len(g.Blocks), len(g.FuncEntries), len(g.RetPoints))
	for bi, b := range g.Blocks {
		attr := ""
		if b.IsRet {
			attr = " (return)"
		}
		if b.Unknown {
			attr = " (indirect: successors unknown)"
		}
		fmt.Printf("\nblock %d [%d,%d) -> %v%s\n", bi, b.Start, b.End, b.Succs, attr)
		for i := b.Start; i < b.End; i++ {
			fmt.Printf("  %4d  %s\n", i, g.Code[i])
		}
	}
}

func dumpLiveness(a *binanalysis.Analysis, nregs int) {
	for i, in := range a.CFG.Code {
		fmt.Printf("%4d  %-28s live-out %-30s dead %s\n",
			i, in.String(), a.LiveOut[i], a.DeadOut(i, nregs))
	}
}

func dumpLifetimes(a *binanalysis.Analysis) {
	bounds, counts := binanalysis.LifetimeHistogram(a.Lifetimes)
	fmt.Printf("%d definition sites\n", len(a.Lifetimes))
	fmt.Println("def->furthest-use distance histogram (instructions over CFG edges):")
	for k := range bounds {
		label := fmt.Sprintf("= %d", bounds[k])
		if k >= 2 {
			label = fmt.Sprintf("<= %d", bounds[k])
		}
		if k == 0 {
			label = "dead"
		}
		fmt.Printf("  %-8s %6d\n", label, counts[k])
	}
	var longest binanalysis.Lifetime
	for _, lt := range a.Lifetimes {
		if lt.Dist > longest.Dist {
			longest = lt
		}
	}
	if longest.Dist > 0 {
		fmt.Printf("longest-lived value: %s defined at %d, furthest use %d instructions away (%d uses)\n",
			isa.RegName(longest.Reg), longest.DefIdx, longest.Dist, longest.Uses)
	}
}
