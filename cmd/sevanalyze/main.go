// Command sevanalyze runs the binary-level ACE/liveness analyzer over
// study binaries: it reconstructs each binary's control-flow graph,
// computes per-instruction register liveness and value lifetimes,
// checks binary invariants, and (with -bounds) runs the fault-free
// simulation to derive the static lower bound on the Masked rate /
// upper bound on the AVF of the physical register file — the numbers a
// -prune injection campaign realizes without simulating.
//
// Usage:
//
//	sevanalyze                                  # all 32 a15 binaries: invariants + bounds
//	sevanalyze -march a72 -bounds=false         # static-only pass, no simulation
//	sevanalyze -bench qsort -O O2 -dump cfg     # CFG of one binary
//	sevanalyze -bench sha -O O3 -dump live      # per-instruction liveness
//	sevanalyze -bench sha -O O3 -dump bits      # bit-granular dead masks
//	sevanalyze -bench fft -O O1 -dump lifetimes # value-lifetime histogram
//	sevanalyze -quick -golden cmd/sevanalyze/testdata/bounds_a15.golden
//	                                            # regression-check static bounds
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"sync"

	"sevsim/internal/artcache"
	"sevsim/internal/binanalysis"
	"sevsim/internal/cli"
	"sevsim/internal/compiler"
	"sevsim/internal/core"
	"sevsim/internal/faultinj"
	"sevsim/internal/isa"
	"sevsim/internal/journal"
	"sevsim/internal/machine"
	"sevsim/internal/report"
	"sevsim/internal/workloads"
)

func main() {
	marchFlag := flag.String("march", "a15", "microarchitecture: a15 or a72")
	benchFlag := flag.String("bench", "", "benchmark name (default: all)")
	levelFlag := flag.String("O", "", "optimization level O0..O3 (default: all)")
	size := flag.Int("size", 0, "benchmark scale (0 = default)")
	quick := flag.Bool("quick", false, "use each benchmark's reduced test scale (fast golden runs, e.g. for -golden in CI)")
	bounds := flag.Bool("bounds", true, "run golden simulations and report static Masked/AVF bounds")
	dump := flag.String("dump", "", "detail dump for a single -bench/-O binary: cfg, live, bits, lifetimes")
	goldenPath := flag.String("golden", "", "compare the static bounds against this golden file and fail on drift")
	update := flag.Bool("update", false, "rewrite the -golden file with the current bounds instead of comparing")
	par := flag.Int("parallel", 0, "concurrent golden runs (0 = GOMAXPROCS)")
	cacheDir := flag.String("cache", "", "prep-artifact cache directory; repeat runs skip golden simulations (bounds are identical either way)")
	cacheMax := flag.Int64("cache-max-mb", 0, "cache size bound in MB (0 = unbounded)")
	flag.Parse()

	cfg, err := cli.March(*marchFlag)
	if err != nil {
		cli.Fatal(err)
	}

	var benches []workloads.Benchmark
	if *benchFlag == "" {
		benches = workloads.All()
	} else {
		b, err := workloads.ByName(*benchFlag)
		if err != nil {
			cli.Fatal(err)
		}
		benches = []workloads.Benchmark{b}
	}
	levels := compiler.Levels
	if *levelFlag != "" {
		l, err := cli.Level(*levelFlag)
		if err != nil {
			cli.Fatal(err)
		}
		levels = []compiler.OptLevel{l}
	}

	if *dump != "" {
		if len(benches) != 1 || len(levels) != 1 {
			cli.Fatal(fmt.Errorf("-dump needs a single binary: give both -bench and -O"))
		}
		prog, a := analyzeOne(cfg, benches[0], levels[0], *size)
		switch *dump {
		case "cfg":
			dumpCFG(prog.Name, a)
		case "live":
			dumpLiveness(a, cfg.CPU.NumArchRegs)
		case "bits":
			dumpBits(a, cfg.CPU.XLEN, cfg.CPU.NumArchRegs)
		case "lifetimes":
			dumpLifetimes(a)
		default:
			cli.Fatal(fmt.Errorf("unknown -dump %q (use cfg, live, bits, lifetimes)", *dump))
		}
		return
	}

	cache, err := cli.Cache(*cacheDir, *cacheMax)
	if err != nil {
		cli.Fatal(err)
	}
	units := analyzeSuite(cfg, benches, levels, suiteOptions{
		Size: *size, Quick: *quick, Bounds: *bounds, Parallel: cli.Parallelism(*par),
		Cache: cache,
	})

	headers := []string{"benchmark", "level", "words", "blocks", "funcs", "dead-writes", "invariants"}
	if *bounds {
		headers = append(headers, "cycles", "reg Masked>=", "bit Masked>=", "DUE>=", "SDC<=", "static AVF<=")
	}
	rows := [][]string{}
	failed := false
	for _, u := range units {
		if u.err != nil {
			failed = true
			fmt.Fprintf(os.Stderr, "error: %s %s: %v\n", u.bench.Name, u.level, u.err)
			continue
		}
		inv := "ok"
		if len(u.violations) > 0 {
			inv = fmt.Sprintf("%d violations", len(u.violations))
		}
		row := []string{u.bench.Name, u.level.String(),
			fmt.Sprint(u.words), fmt.Sprint(u.blocks), fmt.Sprint(u.funcs),
			fmt.Sprint(u.deadWrites), inv}
		if *bounds {
			row = append(row, fmt.Sprint(u.cycles),
				report.Pct(u.bound.RegMaskedLB), report.Pct(u.bound.MaskedLB),
				report.Pct(u.bound.DueLB), report.Pct(u.bound.SDCUpperBound),
				report.Pct(u.bound.AVFUpperBound))
		}
		rows = append(rows, row)
	}
	fmt.Printf("Static ACE analysis: %d binaries on %s\n", len(rows), cfg.Name)
	report.Table(os.Stdout, headers, rows)
	for _, u := range units {
		for _, v := range u.violations {
			fmt.Printf("%s %s: %s\n", u.bench.Name, u.level, v)
		}
	}
	if failed {
		os.Exit(1) //lint:exit process boundary: non-zero verdict when invariant checks fail
	}

	if *goldenPath != "" {
		if !*bounds {
			cli.Fatal(fmt.Errorf("-golden needs -bounds"))
		}
		text := boundsText(cfg.Name, units)
		if *update {
			if err := journal.AtomicWriteFile(*goldenPath, []byte(text)); err != nil {
				cli.Fatal(err)
			}
			fmt.Printf("updated %s\n", *goldenPath)
			return
		}
		want, err := os.ReadFile(*goldenPath)
		if err != nil {
			cli.Fatal(fmt.Errorf("reading golden (run with -update to create it): %w", err))
		}
		if diff := diffLines(string(want), text); diff != "" {
			fmt.Fprintf(os.Stderr, "static bounds drifted from %s:\n%s", *goldenPath, diff)
			fmt.Fprintln(os.Stderr, "if the change is intended and sound, refresh with -update")
			os.Exit(1) //lint:exit process boundary: non-zero verdict on golden-bounds drift
		}
		fmt.Printf("static bounds match %s\n", *goldenPath)
	}
}

// unit is one (bench, level) analysis result.
type unit struct {
	bench workloads.Benchmark
	level compiler.OptLevel

	words      int
	blocks     int
	funcs      int
	deadWrites int
	violations []binanalysis.Violation
	bound      binanalysis.RFBound
	cycles     uint64
	err        error
}

type suiteOptions struct {
	Size     int  // explicit scale override (0 = benchmark default)
	Quick    bool // use each benchmark's TestSize
	Bounds   bool // run golden simulations for static bounds
	Parallel int
	Cache    *artcache.Cache // nil: golden runs are not memoized
}

// analyzeSuite compiles and analyzes every (bench, level) pair with
// bounded fan-out: compiles are cheap but each Bounds unit runs a full
// golden simulation.
func analyzeSuite(cfg machine.Config, benches []workloads.Benchmark, levels []compiler.OptLevel, opts suiteOptions) []*unit {
	var units []*unit
	for _, b := range benches {
		for _, l := range levels {
			units = append(units, &unit{bench: b, level: l})
		}
	}
	sem := make(chan struct{}, opts.Parallel)
	var wg sync.WaitGroup
	for _, u := range units {
		wg.Add(1)
		go func(u *unit) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			sz := u.bench.DefaultSize
			if opts.Quick {
				sz = u.bench.TestSize
			}
			if opts.Size > 0 {
				sz = opts.Size
			}
			prog, err := compiler.Compile(u.bench.Source(sz), u.bench.Name, u.level, cli.Target(cfg))
			if err != nil {
				u.err = err
				return
			}
			a, err := binanalysis.AnalyzeWords(prog.Code)
			if err != nil {
				u.err = err
				return
			}
			u.words = len(prog.Code)
			u.blocks = len(a.CFG.Blocks)
			u.funcs = len(a.CFG.FuncEntries)
			for _, lt := range a.Lifetimes {
				if lt.Uses == 0 {
					u.deadWrites++
				}
			}
			u.violations = binanalysis.CheckInvariants(a)
			if opts.Bounds {
				exp, err := core.CachedExperiment(opts.Cache, cfg, prog, faultinj.Options{Traced: true})
				if err != nil {
					u.err = err
					return
				}
				pr, err := binanalysis.NewDUEPruner(a, exp)
				if err != nil {
					u.err = err
					return
				}
				u.bound = pr.Bound()
				u.cycles = exp.GoldenCycles
			}
		}(u)
	}
	wg.Wait()
	return units
}

// boundsText renders the static bounds in the canonical golden-file
// format: one line per unit, fully deterministic (fixed order, fixed
// precision), so any transfer-function change that moves a bound —
// loosening precision or unsoundly tightening it — shows up as a
// byte-level diff.
func boundsText(march string, units []*unit) string {
	var b strings.Builder
	for _, u := range units {
		if u.err != nil {
			continue
		}
		fmt.Fprintf(&b, "%s %s %s cycles=%d reg_masked_lb=%.9f bit_masked_lb=%.9f due_lb=%.9f sdc_ub=%.9f reg_prunable=%d bit_prunable=%d due_prunable=%d space=%d\n",
			march, u.bench.Name, u.level,
			u.cycles, u.bound.RegMaskedLB, u.bound.MaskedLB,
			u.bound.DueLB, u.bound.SDCUpperBound,
			u.bound.RegPrunableBits, u.bound.PrunableBits, u.bound.DuePrunableBits, u.bound.SpaceBits)
	}
	return b.String()
}

// diffLines reports the first divergent lines between two texts, or ""
// when identical.
func diffLines(want, got string) string {
	if want == got {
		return ""
	}
	wl := strings.Split(want, "\n")
	gl := strings.Split(got, "\n")
	var b strings.Builder
	n := len(wl)
	if len(gl) > n {
		n = len(gl)
	}
	shown := 0
	for i := 0; i < n && shown < 8; i++ {
		var w, g string
		if i < len(wl) {
			w = wl[i]
		}
		if i < len(gl) {
			g = gl[i]
		}
		if w != g {
			fmt.Fprintf(&b, "  line %d:\n    golden: %s\n    got:    %s\n", i+1, w, g)
			shown++
		}
	}
	return b.String()
}

func analyzeOne(cfg machine.Config, b workloads.Benchmark, l compiler.OptLevel, size int) (*machine.Program, *binanalysis.Analysis) {
	if size <= 0 {
		size = b.DefaultSize
	}
	prog, err := compiler.Compile(b.Source(size), b.Name, l, cli.Target(cfg))
	if err != nil {
		cli.Fatal(err)
	}
	a, err := binanalysis.AnalyzeWords(prog.Code)
	if err != nil {
		cli.Fatal(err)
	}
	return prog, a
}

func dumpCFG(name string, a *binanalysis.Analysis) {
	g := a.CFG
	fmt.Printf("%s: %d instructions, %d blocks, %d function entries, %d return points\n",
		name, len(g.Code), len(g.Blocks), len(g.FuncEntries), len(g.RetPoints))
	for bi, b := range g.Blocks {
		attr := ""
		if b.IsRet {
			attr = " (return)"
		}
		if b.Unknown {
			attr = " (indirect: successors unknown)"
		}
		fmt.Printf("\nblock %d [%d,%d) -> %v%s\n", bi, b.Start, b.End, b.Succs, attr)
		for i := b.Start; i < b.End; i++ {
			fmt.Printf("  %4d  %s\n", i, g.Code[i])
		}
	}
}

func dumpLiveness(a *binanalysis.Analysis, nregs int) {
	for i, in := range a.CFG.Code {
		fmt.Printf("%4d  %-28s live-out %-30s dead %s\n",
			i, in.String(), a.LiveOut[i], a.DeadOut(i, nregs))
	}
}

// dumpBits prints the bit-granular dead masks: for each instruction,
// the fully dead registers (as in -dump live) plus every live register
// that still has individually dead bits, with the dead-bit mask in
// hex. These masks are exactly what BitPruner consults per injection.
func dumpBits(a *binanalysis.Analysis, xlen, nregs int) {
	b := a.Bits(xlen)
	hexDigits := (xlen + 3) / 4
	for i, in := range a.CFG.Code {
		var parts []string
		for r := uint8(1); int(r) < nregs; r++ {
			if !a.LiveOut[i].Has(r) {
				continue // whole register dead; shown in the dead set
			}
			if db := b.DeadOutBits(i, r); db != 0 {
				parts = append(parts, fmt.Sprintf("%s:%0*x", isa.RegName(r), hexDigits, db))
			}
		}
		fmt.Printf("%4d  %-28s dead %-24s dead-bits %s\n",
			i, in.String(), a.DeadOut(i, nregs), strings.Join(parts, " "))
	}
}

func dumpLifetimes(a *binanalysis.Analysis) {
	bounds, counts := binanalysis.LifetimeHistogram(a.Lifetimes)
	fmt.Printf("%d definition sites\n", len(a.Lifetimes))
	fmt.Println("def->furthest-use distance histogram (instructions over CFG edges):")
	for k := range bounds {
		label := fmt.Sprintf("= %d", bounds[k])
		if k >= 2 {
			label = fmt.Sprintf("<= %d", bounds[k])
		}
		if k == 0 {
			label = "dead"
		}
		fmt.Printf("  %-8s %6d\n", label, counts[k])
	}
	var longest binanalysis.Lifetime
	for _, lt := range a.Lifetimes {
		if lt.Dist > longest.Dist {
			longest = lt
		}
	}
	if longest.Dist > 0 {
		fmt.Printf("longest-lived value: %s defined at %d, furthest use %d instructions away (%d uses)\n",
			isa.RegName(longest.Reg), longest.DefIdx, longest.Dist, longest.Uses)
	}
}
