package main

import (
	"os"
	"path/filepath"
	"runtime"
	"testing"

	"sevsim/internal/cli"
	"sevsim/internal/compiler"
	"sevsim/internal/workloads"
)

// TestStaticBoundsMatchGolden is the regression gate on the static
// analysis itself: the quick-scale bounds for every (bench, level) cell
// on both microarchitectures must match the checked-in golden files
// byte for byte. A transfer-function change that loosens precision
// (bounds drop) or unsoundly tightens it (bounds rise without a
// corresponding cross-validation run) shows up as a diff here before
// any injection campaign does. Refresh after intentional changes with:
//
//	go run ./cmd/sevanalyze -quick -march a15 -golden cmd/sevanalyze/testdata/bounds_a15.golden -update
//	go run ./cmd/sevanalyze -quick -march a72 -golden cmd/sevanalyze/testdata/bounds_a72.golden -update
func TestStaticBoundsMatchGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("runs 64 quick golden simulations; skipped in -short")
	}
	for _, march := range []string{"a15", "a72"} {
		march := march
		t.Run(march, func(t *testing.T) {
			t.Parallel()
			cfg, err := cli.March(march)
			if err != nil {
				t.Fatal(err)
			}
			units := analyzeSuite(cfg, workloads.All(), compiler.Levels, suiteOptions{
				Quick: true, Bounds: true, Parallel: runtime.GOMAXPROCS(0),
			})
			for _, u := range units {
				if u.err != nil {
					t.Fatalf("%s %s: %v", u.bench.Name, u.level, u.err)
				}
			}
			got := boundsText(cfg.Name, units)
			golden := filepath.Join("testdata", "bounds_"+march+".golden")
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("reading golden (regenerate with sevanalyze -update): %v", err)
			}
			if diff := diffLines(string(want), got); diff != "" {
				t.Errorf("static bounds drifted from %s:\n%s\nif the change is intended and sound, refresh with -update", golden, diff)
			}
		})
	}
}
