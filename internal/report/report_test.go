package report

import (
	"bytes"
	"strings"
	"testing"

	"sevsim/internal/campaign"
	"sevsim/internal/core"
)

// fakeStudy builds a synthetic study with plausible numbers so the
// renderers can be exercised without running campaigns.
func fakeStudy() *core.Study {
	st := &core.Study{
		MachineNames: []string{"Cortex-A15-like", "Cortex-A72-like"},
		BenchNames:   []string{"qsort", "gsm"},
		LevelNames:   []string{"O0", "O2"},
		TargetNames:  []string{"L1D.data", "RF", "ROB.pc"},
		Faults:       100,
	}
	cyclesFor := func(level string) uint64 {
		if level == "O0" {
			return 100000
		}
		return 60000
	}
	for _, m := range st.MachineNames {
		for _, b := range st.BenchNames {
			for _, l := range st.LevelNames {
				st.Goldens = append(st.Goldens, core.Golden{
					March: m, Bench: b, Level: l,
					Cycles: cyclesFor(l), CodeWords: 500, IPC: 1.3,
				})
				for i, target := range st.TargetNames {
					st.Results = append(st.Results, campaign.Result{
						March: m, Bench: b, Level: l, Target: target,
						Faults: 100,
						Counts: campaign.Counts{
							Masked: 80 - i*10, SDC: 5, Crash: 5, Timeout: 5, Assert: 5 + i*10,
						},
						GoldenCycles: cyclesFor(l),
						StructBits:   uint64(1000 * (i + 1)),
					})
				}
			}
		}
	}
	return st
}

func TestTableAlignment(t *testing.T) {
	var buf bytes.Buffer
	Table(&buf, []string{"a", "bbbb"}, [][]string{{"xxxxx", "y"}, {"z", "w"}})
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d lines", len(lines))
	}
	if !strings.HasPrefix(lines[0], "a    ") {
		t.Errorf("header misaligned: %q", lines[0])
	}
}

func TestCSVEscaping(t *testing.T) {
	var buf bytes.Buffer
	CSV(&buf, []string{"x", "y"}, [][]string{{`va"l`, "a,b"}})
	want := "x,y\n\"va\"\"l\",\"a,b\"\n"
	if buf.String() != want {
		t.Errorf("CSV = %q, want %q", buf.String(), want)
	}
}

func TestEverythingRenders(t *testing.T) {
	st := fakeStudy()
	var buf bytes.Buffer
	Everything(&buf, st)
	out := buf.String()
	for _, want := range []string{
		"Table I", "Figure 1", "Figure 2", "Figure 5", "Figure 9",
		"Figure 10", "Figure 11", "Figure 12",
		"Cortex-A15-like", "Cortex-A72-like",
		"wAVF", "ECC on L1D+L2", "ECC on L2 only",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
}

func TestFig1SpeedupValues(t *testing.T) {
	st := fakeStudy()
	var buf bytes.Buffer
	Fig1Performance(&buf, st)
	// 100000/60000 = 1.67x speedup at O2.
	if !strings.Contains(buf.String(), "1.67x") {
		t.Errorf("expected 1.67x speedup in:\n%s", buf.String())
	}
	if !strings.Contains(buf.String(), "1.00x") {
		t.Error("expected 1.00x baseline for O0")
	}
}

func TestFig12ECCReducesFIT(t *testing.T) {
	st := fakeStudy()
	var buf bytes.Buffer
	Fig12ECC(&buf, st)
	if !strings.Contains(buf.String(), "no ECC") {
		t.Fatalf("missing scheme rows:\n%s", buf.String())
	}
}

func TestFailuresTable(t *testing.T) {
	st := fakeStudy()
	var buf bytes.Buffer
	Failures(&buf, st)
	if buf.Len() != 0 {
		t.Fatalf("clean study rendered a failures table:\n%s", buf.String())
	}

	st.Failed = []core.Failure{
		{March: "Cortex-A15-like", Bench: "gsm", Level: "O2",
			Stage: "compile", Err: "boom", Retries: 2},
		{March: "Cortex-A72-like", Bench: "qsort", Level: "O0", Target: "RF",
			Stage: "cell", Err: "exceeded per-cell wall-clock deadline", Stuck: true},
	}
	Failures(&buf, st)
	out := buf.String()
	for _, want := range []string{"Harness failures", "(unit)", "compile", "boom", "RF", "yes"} {
		if !strings.Contains(out, want) {
			t.Errorf("failures table missing %q:\n%s", want, out)
		}
	}

	// Everything includes the table only when failures exist.
	var all bytes.Buffer
	Everything(&all, st)
	if !strings.Contains(all.String(), "Harness failures") {
		t.Error("Everything omitted the failures table")
	}
}

func TestAnomaliesTable(t *testing.T) {
	st := fakeStudy()
	var buf bytes.Buffer
	Anomalies(&buf, st)
	if buf.Len() != 0 {
		t.Fatalf("clean study rendered an anomalies table:\n%s", buf.String())
	}

	st.Results[3].Counts.Unexpected = 2
	Anomalies(&buf, st)
	out := buf.String()
	bad := st.Results[3]
	for _, want := range []string{"Anomalies", bad.March, bad.Target, "2"} {
		if !strings.Contains(out, want) {
			t.Errorf("anomalies table missing %q:\n%s", want, out)
		}
	}

	var all bytes.Buffer
	Everything(&all, st)
	if !strings.Contains(all.String(), "Anomalies") {
		t.Error("Everything omitted the anomalies table")
	}
}

func TestNumAndPct(t *testing.T) {
	if Pct(0.1234) != "12.34%" {
		t.Errorf("Pct = %s", Pct(0.1234))
	}
	if Num(0) != "0" {
		t.Errorf("Num(0) = %s", Num(0))
	}
	if !strings.Contains(Num(1e-9), "e") {
		t.Errorf("tiny Num should be scientific: %s", Num(1e-9))
	}
}
