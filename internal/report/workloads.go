package report

import (
	"fmt"
	"io"

	"sevsim/internal/core"
)

// WorkloadCharacteristics prints a workload-characterization table in
// the IISWC tradition: per benchmark and level, the execution profile
// that drives the vulnerability differences (dynamic instructions, IPC,
// branch mispredictions, L1D miss rate, and the average occupancy of
// the injected structures).
func WorkloadCharacteristics(w io.Writer, st *core.Study) {
	fmt.Fprintln(w, "Workload characteristics (golden runs)")
	for _, march := range st.MachineNames {
		fmt.Fprintf(w, "\n[%s]\n", march)
		headers := []string{"benchmark", "level", "cycles", "instrs", "IPC",
			"code(w)", "L1D miss", "mispred", "PRF live", "ROB occ", "IQ occ", "LQ occ"}
		rows := [][]string{}
		for _, bench := range st.BenchNames {
			for _, level := range st.LevelNames {
				g, ok := st.Golden(march, bench, level)
				if !ok {
					continue
				}
				rows = append(rows, []string{
					bench, level,
					fmt.Sprint(g.Cycles),
					fmt.Sprint(g.Committed),
					fmt.Sprintf("%.2f", g.IPC),
					fmt.Sprint(g.CodeWords),
					Pct(g.L1DMissRate),
					fmt.Sprint(g.Mispredicts),
					fmt.Sprintf("%.1f", g.AvgPRFLive),
					fmt.Sprintf("%.1f", g.AvgROBOcc),
					fmt.Sprintf("%.1f", g.AvgIQOcc),
					fmt.Sprintf("%.1f", g.AvgLQOcc),
				})
			}
		}
		Table(w, headers, rows)
	}
	fmt.Fprintln(w, "\nUtilization is the AVF mechanism: optimization raises live-register")
	fmt.Fprintln(w, "counts (RF exposure) while shrinking run time and queue residency.")
}
