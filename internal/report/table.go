// Package report renders the study's tables and figures as aligned text
// (the "same rows/series the paper reports") and CSV.
package report

import (
	"fmt"
	"io"
	"strings"
)

// Table writes an aligned text table.
func Table(w io.Writer, headers []string, rows [][]string) {
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = fmt.Sprintf("%-*s", widths[i], c)
			} else {
				parts[i] = c
			}
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(headers)
	sep := make([]string, len(headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range rows {
		line(row)
	}
}

// CSV writes the same data as comma-separated values.
func CSV(w io.Writer, headers []string, rows [][]string) {
	esc := func(s string) string {
		if strings.ContainsAny(s, ",\"\n") {
			return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
		}
		return s
	}
	cells := make([]string, 0, len(headers))
	for _, h := range headers {
		cells = append(cells, esc(h))
	}
	fmt.Fprintln(w, strings.Join(cells, ","))
	for _, row := range rows {
		cells = cells[:0]
		for _, c := range row {
			cells = append(cells, esc(c))
		}
		fmt.Fprintln(w, strings.Join(cells, ","))
	}
}

// Pct formats a fraction as a percentage.
func Pct(v float64) string { return fmt.Sprintf("%.2f%%", v*100) }

// Num formats a float compactly.
func Num(v float64) string {
	switch {
	case v == 0:
		return "0"
	case v < 0.001 || v >= 1e6:
		return fmt.Sprintf("%.3e", v)
	default:
		return fmt.Sprintf("%.4f", v)
	}
}
