package report

import (
	"fmt"
	"io"

	"sevsim/internal/avf"
	"sevsim/internal/core"
	"sevsim/internal/faultinj"
	"sevsim/internal/fit"
	"sevsim/internal/stats"
)

// classColumns is the presentation order of the non-masked classes in
// the AVF figures.
var classColumns = []faultinj.Outcome{faultinj.SDC, faultinj.Crash, faultinj.Timeout, faultinj.Assert}

// TableI prints the microprocessor configuration table.
func TableI(w io.Writer) {
	rows := [][]string{}
	add := func(param, a15, a72 string) { rows = append(rows, []string{param, a15, a72}) }
	a15, _ := core.MachineConfig("Cortex-A15-like")
	a72, _ := core.MachineConfig("Cortex-A72-like")
	add("ISA width", fmt.Sprintf("%d-bit", a15.CPU.XLEN), fmt.Sprintf("%d-bit", a72.CPU.XLEN))
	add("Pipeline", "Out-of-Order", "Out-of-Order")
	add("L1 Data Cache", cacheDesc(a15.L1D.Size, a15.L1D.Ways), cacheDesc(a72.L1D.Size, a72.L1D.Ways))
	add("L1 Instruction Cache", cacheDesc(a15.L1I.Size, a15.L1I.Ways), cacheDesc(a72.L1I.Size, a72.L1I.Ways))
	add("L2 Cache", cacheDesc(a15.L2.Size, a15.L2.Ways), cacheDesc(a72.L2.Size, a72.L2.Ways))
	add("Physical Register File", fmt.Sprint(a15.CPU.NumPhysRegs, " registers"), fmt.Sprint(a72.CPU.NumPhysRegs, " registers"))
	add("Issue Queue", fmt.Sprint(a15.CPU.IQSize, " entries"), fmt.Sprint(a72.CPU.IQSize, " entries"))
	add("Load / Store Queue", fmt.Sprintf("%d / %d entries", a15.CPU.LQSize, a15.CPU.SQSize),
		fmt.Sprintf("%d / %d entries", a72.CPU.LQSize, a72.CPU.SQSize))
	add("Reorder Buffer", fmt.Sprint(a15.CPU.ROBSize, " entries"), fmt.Sprint(a72.CPU.ROBSize, " entries"))
	add("Fetch width", fmt.Sprint(a15.CPU.FetchWidth), fmt.Sprint(a72.CPU.FetchWidth))
	add("Execute width", fmt.Sprint(a15.CPU.IssueWidth), fmt.Sprint(a72.CPU.IssueWidth))
	add("Writeback width", fmt.Sprint(a15.CPU.WBWidth), fmt.Sprint(a72.CPU.WBWidth))
	add("Raw FIT/bit", fmt.Sprintf("%.2e", a15.RawFITPerBit), fmt.Sprintf("%.2e", a72.RawFITPerBit))
	fmt.Fprintln(w, "Table I: microprocessor configurations")
	Table(w, []string{"Parameter", "Cortex-A15-like", "Cortex-A72-like"}, rows)
}

func cacheDesc(size, ways int) string {
	return fmt.Sprintf("%d KB (%d-way)", size/1024, ways)
}

// Fig1Performance prints relative performance (speedup over O0, higher
// is better) per benchmark, level, and microarchitecture.
func Fig1Performance(w io.Writer, st *core.Study) {
	fmt.Fprintln(w, "Figure 1: relative performance among optimization levels (speedup vs O0)")
	for _, march := range st.MachineNames {
		fmt.Fprintf(w, "\n[%s]\n", march)
		rows := [][]string{}
		for _, bench := range st.BenchNames {
			base, ok := st.Golden(march, bench, "O0")
			if !ok {
				continue
			}
			row := []string{bench}
			for _, level := range st.LevelNames {
				g, ok := st.Golden(march, bench, level)
				if !ok {
					row = append(row, "-")
					continue
				}
				row = append(row, fmt.Sprintf("%.2fx", float64(base.Cycles)/float64(g.Cycles)))
			}
			rows = append(rows, row)
		}
		Table(w, append([]string{"benchmark"}, st.LevelNames...), rows)
	}
}

// FigAVF prints one structure field's AVF figure: per benchmark and
// level, the AVF with its class breakdown, plus the weighted-AVF
// aggregate row (the rightmost bars of the paper's figures).
func FigAVF(w io.Writer, st *core.Study, caption, target string) {
	fmt.Fprintln(w, caption)
	for _, march := range st.MachineNames {
		fmt.Fprintf(w, "\n[%s] %s\n", march, target)
		headers := []string{"benchmark", "level", "AVF", "SDC", "Crash", "Timeout", "Assert"}
		rows := [][]string{}
		for _, bench := range st.BenchNames {
			for _, level := range st.LevelNames {
				r, ok := st.Result(march, bench, level, target)
				if !ok {
					continue
				}
				rates := avf.Rates(r)
				row := []string{bench, level, Pct(rates.AVF())}
				for _, o := range classColumns {
					row = append(row, Pct(rates[o]))
				}
				rows = append(rows, row)
			}
		}
		// Weighted aggregate (wAVF) rows.
		for _, level := range st.LevelNames {
			agg := avf.Weighted(st.AcrossBenches(march, level, target))
			row := []string{"wAVF", level, Pct(agg.AVF())}
			for _, o := range classColumns {
				row = append(row, Pct(agg[o]))
			}
			rows = append(rows, row)
		}
		Table(w, headers, rows)
	}
}

// Fig9Delta prints the weighted-AVF difference of each optimization
// level relative to O0, per structure field and microarchitecture.
func Fig9Delta(w io.Writer, st *core.Study) {
	fmt.Fprintln(w, "Figure 9: weighted AVF difference vs O0 (percentage points; positive = more vulnerable)")
	for _, march := range st.MachineNames {
		fmt.Fprintf(w, "\n[%s]\n", march)
		headers := []string{"structure"}
		var optLevels []string
		for _, l := range st.LevelNames {
			if l != "O0" {
				optLevels = append(optLevels, l)
				headers = append(headers, l+"-O0")
			}
		}
		rows := [][]string{}
		for _, target := range st.TargetNames {
			base := st.AcrossBenches(march, "O0", target)
			row := []string{target}
			for _, level := range optLevels {
				d := avf.Delta(st.AcrossBenches(march, level, target), base)
				row = append(row, fmt.Sprintf("%+.2f", d*100))
			}
			rows = append(rows, row)
		}
		Table(w, headers, rows)
	}
}

// Fig10FIT prints the whole-CPU FIT rate per benchmark and level,
// split into SDC and crash-class (AppCrash/Timeout/Assert) shares.
func Fig10FIT(w io.Writer, st *core.Study) {
	fmt.Fprintln(w, "Figure 10: whole-CPU FIT rates per benchmark and level (no ECC)")
	for _, march := range st.MachineNames {
		cfg, _ := core.MachineConfig(march)
		fmt.Fprintf(w, "\n[%s] raw FIT/bit = %.2e\n", march, cfg.RawFITPerBit)
		headers := []string{"benchmark", "level", "FIT", "FIT(SDC)", "FIT(crash-class)"}
		rows := [][]string{}
		for _, bench := range st.BenchNames {
			for _, level := range st.LevelNames {
				results := st.CellStructures(march, bench, level)
				if len(results) == 0 {
					continue
				}
				total := fit.CPU(results, cfg.RawFITPerBit, fit.ECCNone)
				byClass := fit.CPUByClass(results, cfg.RawFITPerBit, fit.ECCNone)
				crashClass := byClass[faultinj.Crash] + byClass[faultinj.Timeout] + byClass[faultinj.Assert]
				rows = append(rows, []string{bench, level,
					Num(total), Num(byClass[faultinj.SDC]), Num(crashClass)})
			}
		}
		Table(w, headers, rows)
	}
}

// Fig11FPE prints failures-per-execution normalized to O0 (lower is a
// better reliability/performance tradeoff).
func Fig11FPE(w io.Writer, st *core.Study) {
	fmt.Fprintln(w, "Figure 11: failures per execution (FPE), normalized to O0")
	for _, march := range st.MachineNames {
		cfg, _ := core.MachineConfig(march)
		fmt.Fprintf(w, "\n[%s]\n", march)
		rows := [][]string{}
		for _, bench := range st.BenchNames {
			row := []string{bench}
			var baseFPE float64
			for _, level := range st.LevelNames {
				results := st.CellStructures(march, bench, level)
				g, ok := st.Golden(march, bench, level)
				if !ok || len(results) == 0 {
					row = append(row, "-")
					continue
				}
				cpuFIT := fit.CPU(results, cfg.RawFITPerBit, fit.ECCNone)
				fpe := fit.FPE(cpuFIT, g.Cycles, cfg.ClockHz)
				if level == "O0" {
					baseFPE = fpe
				}
				if baseFPE > 0 {
					row = append(row, fmt.Sprintf("%.3f", fpe/baseFPE))
				} else {
					row = append(row, "-")
				}
			}
			rows = append(rows, row)
		}
		Table(w, append([]string{"benchmark"}, st.LevelNames...), rows)
	}
}

// Fig12ECC prints the whole-CPU FIT per level for the three protection
// scenarios, computed from the weighted AVF across all benchmarks (all
// workloads jointly considered, as in the paper's Section VII).
func Fig12ECC(w io.Writer, st *core.Study) {
	fmt.Fprintln(w, "Figure 12: whole-CPU FIT per level under ECC scenarios (weighted across all benchmarks)")
	for _, march := range st.MachineNames {
		cfg, _ := core.MachineConfig(march)
		fmt.Fprintf(w, "\n[%s]\n", march)
		headers := append([]string{"scheme"}, st.LevelNames...)
		rows := [][]string{}
		for _, scheme := range fit.Schemes() {
			row := []string{scheme.String()}
			for _, level := range st.LevelNames {
				total := 0.0
				for _, target := range st.TargetNames {
					if scheme.Protected(componentOf(target)) {
						continue
					}
					results := st.AcrossBenches(march, level, target)
					if len(results) == 0 {
						continue
					}
					agg := avf.Weighted(results)
					total += fit.Structure(cfg.RawFITPerBit, results[0].StructBits, agg.AVF())
				}
				row = append(row, Num(total))
			}
			rows = append(rows, row)
		}
		Table(w, headers, rows)
	}
}

// StaticVsDynamic prints the static ACE bounds for the register file
// next to the injected RF AVF: the static AVF upper bound must sit at
// or above the measured AVF on every cell (soundness), and the gap
// shows how much of the masking only the dynamic campaign can see
// (speculative state, timing, values masked by arithmetic). Both
// granularities of the Masked bound are shown — the register-level
// dead-set bound and the bit-level known-bits + bit-liveness bound
// (always at least as tight) — alongside the fault-propagation
// analysis's DUE lower bound and SDC upper bound (DUE>= must sit at or
// below the measured crash rate, SDC<= at or above the measured SDC
// rate), and the pruned column splits the statically proven injections
// by proof class: register-dead, bit-dead, crash-certain.
func StaticVsDynamic(w io.Writer, st *core.Study) {
	if len(st.Static) == 0 {
		return
	}
	fmt.Fprintln(w, "Static vs dynamic RF vulnerability (static ACE bounds against injected AVF)")
	for _, march := range st.MachineNames {
		fmt.Fprintf(w, "\n[%s]\n", march)
		headers := []string{"benchmark", "level",
			"reg Masked>=", "bit Masked>=", "DUE>=", "SDC<=", "static AVF<=",
			"injected AVF", "pruned(reg+bit+due)"}
		rows := [][]string{}
		for _, bench := range st.BenchNames {
			for _, level := range st.LevelNames {
				s, ok := st.StaticFor(march, bench, level)
				if !ok {
					continue
				}
				row := []string{bench, level,
					Pct(s.RegMaskedLB), Pct(s.MaskedLB),
					Pct(s.DueLB), Pct(s.SDCUpperBound), Pct(s.AVFUpperBound)}
				if r, ok := st.Result(march, bench, level, "RF"); ok && r.Faults > 0 {
					row = append(row, Pct(r.AVF()),
						fmt.Sprintf("%d/%d (%d+%d+%d)", r.Counts.Pruned, r.Faults,
							r.Counts.PrunedReg, r.Counts.PrunedBit, r.Counts.PrunedDUE))
				} else {
					row = append(row, "-", "-")
				}
				rows = append(rows, row)
			}
		}
		Table(w, headers, rows)
	}
}

// Failures prints the units and cells quarantined by a keep-going run
// or flagged stuck by the cell watchdog. Prints nothing for a clean
// study, so historical figure output is unchanged.
func Failures(w io.Writer, st *core.Study) {
	if len(st.Failed) == 0 {
		return
	}
	fmt.Fprintln(w, "Harness failures: units/cells quarantined instead of aborting the study")
	headers := []string{"march", "benchmark", "level", "target", "stage", "retries", "stuck", "error"}
	rows := make([][]string, 0, len(st.Failed))
	for _, f := range st.Failed {
		target := f.Target
		if target == "" {
			target = "(unit)"
		}
		stuck := ""
		if f.Stuck {
			stuck = "yes"
		}
		rows = append(rows, []string{
			f.March, f.Bench, f.Level, target, f.Stage,
			fmt.Sprint(f.Retries), stuck, f.Err,
		})
	}
	Table(w, headers, rows)
}

// Anomalies prints the cells whose campaigns recorded unexpected
// simulator panics (injections classified Crash by recovery rather than
// by a modeled exception). A nonzero row here means the harness itself
// misbehaved and the cell's rates deserve suspicion. Prints nothing
// when every cell is clean.
func Anomalies(w io.Writer, st *core.Study) {
	headers := []string{"march", "benchmark", "level", "target", "unexpected", "faults"}
	rows := [][]string{}
	for _, r := range st.Results {
		if r.Counts.Unexpected == 0 {
			continue
		}
		rows = append(rows, []string{
			r.March, r.Bench, r.Level, r.Target,
			fmt.Sprint(r.Counts.Unexpected), fmt.Sprint(r.Faults),
		})
	}
	if len(rows) == 0 {
		return
	}
	fmt.Fprintln(w, "Anomalies: cells with unexpected simulator panics (rates suspect)")
	Table(w, headers, rows)
}

func componentOf(target string) string {
	for i := 0; i < len(target); i++ {
		if target[i] == '.' {
			return target[:i]
		}
	}
	return target
}

// Margin prints the statistical error margin implied by the study's
// fault count per cell (the paper's 2,000 faults give 2.88% at 99%).
func Margin(w io.Writer, st *core.Study) {
	if len(st.Results) == 0 {
		return
	}
	var maxBits uint64
	for _, r := range st.Results {
		if r.StructBits > maxBits {
			maxBits = r.StructBits
		}
	}
	m := stats.ErrorMargin(st.Faults, maxBits*1_000_000, 0.99)
	fmt.Fprintf(w, "Statistical sampling: %d faults per cell -> ±%.2f%% error margin at 99%% confidence\n",
		st.Faults, m*100)
}

// Everything writes every table and figure to w.
func Everything(w io.Writer, st *core.Study) {
	TableI(w)
	fmt.Fprintln(w)
	Margin(w, st)
	fmt.Fprintln(w)
	WorkloadCharacteristics(w, st)
	fmt.Fprintln(w)
	Fig1Performance(w, st)
	fmt.Fprintln(w)
	FigAVF(w, st, "Figure 2: AVF of the L1 instruction cache (data field)", "L1I.data")
	FigAVF(w, st, "Figure 2 (cont.): AVF of the L1 instruction cache (tag field)", "L1I.tag")
	fmt.Fprintln(w)
	FigAVF(w, st, "Figure 3: AVF of the L1 data cache (data field)", "L1D.data")
	FigAVF(w, st, "Figure 3 (cont.): AVF of the L1 data cache (tag field)", "L1D.tag")
	fmt.Fprintln(w)
	FigAVF(w, st, "Figure 4: AVF of the L2 cache (data field)", "L2.data")
	FigAVF(w, st, "Figure 4 (cont.): AVF of the L2 cache (tag field)", "L2.tag")
	fmt.Fprintln(w)
	FigAVF(w, st, "Figure 5: AVF of the physical register file", "RF")
	fmt.Fprintln(w)
	FigAVF(w, st, "Figure 6: AVF of the load queue", "LQ")
	FigAVF(w, st, "Figure 6 (cont.): AVF of the store queue", "SQ")
	fmt.Fprintln(w)
	FigAVF(w, st, "Figure 7: AVF of the issue queue (source field)", "IQ.src")
	FigAVF(w, st, "Figure 7 (cont.): AVF of the issue queue (destination field)", "IQ.dst")
	fmt.Fprintln(w)
	FigAVF(w, st, "Figure 8: AVF of the reorder buffer (PC field)", "ROB.pc")
	FigAVF(w, st, "Figure 8 (cont.): AVF of the reorder buffer (dest field)", "ROB.dest")
	FigAVF(w, st, "Figure 8 (cont.): AVF of the reorder buffer (old-mapping field)", "ROB.old")
	FigAVF(w, st, "Figure 8 (cont.): AVF of the reorder buffer (control field)", "ROB.ctrl")
	fmt.Fprintln(w)
	Fig9Delta(w, st)
	fmt.Fprintln(w)
	Fig10FIT(w, st)
	fmt.Fprintln(w)
	Fig11FPE(w, st)
	fmt.Fprintln(w)
	Fig12ECC(w, st)
	if len(st.Static) > 0 {
		fmt.Fprintln(w)
		StaticVsDynamic(w, st)
	}
	if len(st.Failed) > 0 {
		fmt.Fprintln(w)
		Failures(w, st)
	}
	for _, r := range st.Results {
		if r.Counts.Unexpected > 0 {
			fmt.Fprintln(w)
			Anomalies(w, st)
			break
		}
	}
}
