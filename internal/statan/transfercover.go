package statan

// transfercover enforces opcode-universe completeness for the
// bit-granular transfer functions in internal/binanalysis: a function
// whose doc comment carries the "bitflow:transfer" marker must switch
// over every isa.Op* constant — each opcode either appears in a case
// clause or carries an in-function "//bitflow:conservative Op<X>
// <reason>" annotation documenting the deliberately conservative
// fallback. Without this, adding an opcode to the ISA would let it
// fall through to whatever default the transfer switch has, silently
// giving the new instruction unsound bit semantics; with it, the
// omission is a lint error at the function that needs the new case.
//
// The opcode universe is resolved syntactically, not through the type
// checker: the stub importer satisfies cross-package imports with
// empty packages, so isa.OpAdd never resolves to a constant object.
// Instead the pass reads the Op* constant declarations straight from
// the analyzed package itself when it declares any (the isa package
// and self-contained fixtures), and otherwise from the module's
// internal/isa directory, found by walking up from the analyzed
// package to go.mod.

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"unicode"
)

// MarkerTransfer is the doc-comment marker naming a function whose
// switch must cover the opcode universe.
const MarkerTransfer = "bitflow:transfer"

// AnnConservative is the in-function annotation exempting one opcode
// from a transfer switch with a mandatory reason.
const AnnConservative = "bitflow:conservative"

func transferCoverPass() *Pass {
	return &Pass{
		Name: "transfercover",
		Doc:  "every //" + MarkerTransfer + " switch handles each isa.Op* constant or annotates //" + AnnConservative + " Op<X> <reason>",
		Run: func(pkg *Package, r *Reporter) {
			marked := markedTransferFuncs(pkg)
			if len(marked) == 0 {
				return
			}
			universe := opcodeUniverse(pkg)
			for _, fn := range marked {
				if len(universe) == 0 {
					r.Report(fn.decl.Name.Pos(), "no-universe",
						fmt.Sprintf("function %s is marked //%s but no isa.Op* constant universe could be resolved (no local Op* consts and no <module>/internal/isa)",
							fn.decl.Name.Name, MarkerTransfer))
					continue
				}
				checkTransferFunc(r, fn, universe)
			}
		},
	}
}

// transferFunc is one marked function plus the file holding it (needed
// to scan its comment span for annotations).
type transferFunc struct {
	decl *ast.FuncDecl
	file *ast.File
}

// markedTransferFuncs returns the functions whose doc comments carry
// the transfer marker.
func markedTransferFuncs(pkg *Package) []*transferFunc {
	var out []*transferFunc
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Doc == nil || fn.Body == nil {
				continue
			}
			for _, c := range fn.Doc.List {
				if strings.Contains(c.Text, MarkerTransfer) {
					out = append(out, &transferFunc{decl: fn, file: file})
					break
				}
			}
		}
	}
	return out
}

// isOpcodeName reports whether a name follows the isa opcode constant
// convention: "Op" followed by an exported mnemonic (OpAdd, OpSltiu).
// This excludes the Opcode type name itself ("code" is lowercase).
func isOpcodeName(name string) bool {
	return len(name) > 2 && strings.HasPrefix(name, "Op") &&
		unicode.IsUpper(rune(name[2]))
}

// opcodeUniverse resolves the set of opcode constant names the
// transfer switches must cover. Preference order: constants declared
// in the analyzed package itself, then the module's internal/isa
// package. Returns nil when neither yields any.
func opcodeUniverse(pkg *Package) map[string]bool {
	if u := constOpNames(pkg.Files); len(u) > 0 {
		return u
	}
	root, ok := moduleRoot(pkg.Dir)
	if !ok {
		return nil
	}
	isaDir := filepath.Join(root, "internal", "isa")
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, isaDir, func(fi fs.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, 0)
	if err != nil {
		return nil
	}
	var files []*ast.File
	for _, p := range pkgs {
		var names []string
		for name := range p.Files { //lint:ordered sorted on the next line
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			files = append(files, p.Files[name])
		}
	}
	return constOpNames(files)
}

// constOpNames collects top-level Op* constant names from files.
func constOpNames(files []*ast.File) map[string]bool {
	u := make(map[string]bool)
	for _, file := range files {
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.CONST {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, name := range vs.Names {
					if isOpcodeName(name.Name) {
						u[name.Name] = true
					}
				}
			}
		}
	}
	if len(u) == 0 {
		return nil
	}
	return u
}

// moduleRoot walks up from dir to the directory holding go.mod.
func moduleRoot(dir string) (string, bool) {
	d, err := filepath.Abs(dir)
	if err != nil {
		return "", false
	}
	for {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d, true
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", false
		}
		d = parent
	}
}

// conservativeAnn is one //bitflow:conservative annotation.
type conservativeAnn struct {
	op     string
	reason string
	pos    token.Pos
}

// transferAnnotations collects the conservative annotations lexically
// inside the function (body span or doc comment).
func transferAnnotations(fn *transferFunc) []conservativeAnn {
	var out []conservativeAnn
	lo, hi := fn.decl.Pos(), fn.decl.End()
	if fn.decl.Doc != nil {
		lo = fn.decl.Doc.Pos()
	}
	for _, cg := range fn.file.Comments {
		if cg.End() < lo || cg.Pos() > hi {
			continue
		}
		for _, c := range cg.List {
			text := strings.TrimPrefix(c.Text, "//")
			text = strings.TrimSpace(text)
			if !strings.HasPrefix(text, AnnConservative) {
				continue
			}
			rest := strings.TrimSpace(strings.TrimPrefix(text, AnnConservative))
			op, reason, _ := strings.Cut(rest, " ")
			out = append(out, conservativeAnn{
				op: op, reason: strings.TrimSpace(reason), pos: c.Pos(),
			})
		}
	}
	return out
}

// caseOpNames collects the opcode identifiers appearing in case
// clauses of switch statements in the function body — bare (OpAdd,
// inside the isa package itself) or selector-qualified (isa.OpAdd).
func caseOpNames(fn *ast.FuncDecl) map[string]bool {
	handled := make(map[string]bool)
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		cc, ok := n.(*ast.CaseClause)
		if !ok {
			return true
		}
		for _, e := range cc.List {
			switch e := e.(type) {
			case *ast.Ident:
				if isOpcodeName(e.Name) {
					handled[e.Name] = true
				}
			case *ast.SelectorExpr:
				if isOpcodeName(e.Sel.Name) {
					handled[e.Sel.Name] = true
				}
			}
		}
		return true
	})
	return handled
}

// checkTransferFunc reports coverage violations for one marked
// function against the opcode universe.
func checkTransferFunc(r *Reporter, fn *transferFunc, universe map[string]bool) {
	handled := caseOpNames(fn.decl)
	anns := transferAnnotations(fn)
	annotated := make(map[string]bool)
	for _, a := range anns {
		switch {
		case a.op == "" || !isOpcodeName(a.op):
			r.Report(a.pos, "annotation-op",
				fmt.Sprintf("//%s needs an opcode (//%s Op<X> <reason>)", AnnConservative, AnnConservative))
			continue
		case !universe[a.op]:
			r.Report(a.pos, "unknown-op",
				fmt.Sprintf("//%s names %s, which is not an isa opcode constant", AnnConservative, a.op))
			continue
		case a.reason == "":
			r.Report(a.pos, "annotation-reason",
				fmt.Sprintf("//%s %s needs a reason (<why the conservative fallback is sound>)", AnnConservative, a.op))
		}
		if handled[a.op] {
			r.Report(a.pos, "stale-annotation",
				fmt.Sprintf("%s is annotated //%s but %s handles it in a case clause; delete the annotation",
					a.op, AnnConservative, fn.decl.Name.Name))
		}
		annotated[a.op] = true
	}

	var missing []string
	for op := range universe { //lint:ordered sorted on the next line
		if !handled[op] && !annotated[op] {
			missing = append(missing, op)
		}
	}
	sort.Strings(missing)
	for _, op := range missing {
		r.Report(fn.decl.Name.Pos(), "missing-op",
			fmt.Sprintf("transfer function %s handles no case for %s and has no //%s %s annotation; the opcode would silently get the default's (possibly unsound) bit semantics",
				fn.decl.Name.Name, op, AnnConservative, op))
	}
}
