package statan

import (
	"fmt"
	"go/ast"
	"go/token"
	"regexp"
	"strings"
)

// Line-suppression grammar. A comment anywhere on a line of the form
//
//	//lint:<key> <reason>
//
// exempts that line from the rule owning <key>. The reason is
// mandatory: sevlint reports a reasonless suppression, and the hygiene
// check reports suppressions whose key no rule recognizes or that no
// finding consulted (stale — the code they exempted is gone).
//
// suppressionKeys maps each key to the rule it suppresses, for the
// hygiene check's error messages.
var suppressionKeys = map[string]string{
	"ordered":  "map-range",
	"clock":    "wall-clock",
	"rand":     "global-rand",
	"exit":     "os-exit",
	"signal":   "signal-notify",
	"http":     "http-server",
	"shutdown": "http-shutdown",
	"sleep":    "sleep-poll",
}

// Anchored at the start of the comment token: prose that merely
// mentions a suppression (like this file's own documentation) is not
// itself a suppression.
var suppressionRe = regexp.MustCompile(`^//\s?lint:([a-z-]+)\b(.*)$`)

// SuppEntry is one parsed //lint: suppression comment.
type SuppEntry struct {
	Key    string
	Reason string
	Pos    token.Position

	used           bool // some finding consulted and matched it
	reasonReported bool // missing-reason diagnostic already emitted
}

type lineKey struct {
	file string
	line int
}

type suppressions struct {
	byLine map[lineKey][]*SuppEntry
	all    []*SuppEntry // in scan order (file order, then position)
}

// scanSuppressions collects every //lint: comment in the files.
func scanSuppressions(fset *token.FileSet, files []*ast.File) *suppressions {
	s := &suppressions{byLine: map[lineKey][]*SuppEntry{}}
	for _, file := range files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				m := suppressionRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				e := &SuppEntry{
					Key:    m[1],
					Reason: trimReason(m[2]),
					Pos:    pos,
				}
				k := lineKey{pos.Filename, pos.Line}
				s.byLine[k] = append(s.byLine[k], e)
				s.all = append(s.all, e)
			}
		}
	}
	return s
}

// trimReason strips the separators people naturally write between the
// key and the reason ("—", "-", ":") so all of "//lint:exit reason",
// "//lint:exit — reason", and "//lint:exit: reason" parse identically.
func trimReason(rest string) string {
	rest = strings.TrimSpace(rest)
	rest = strings.TrimLeft(rest, "—–-: ")
	return strings.TrimSpace(rest)
}

func (s *suppressions) lookup(file string, line int, key string) *SuppEntry {
	for _, e := range s.byLine[lineKey{file, line}] {
		if e.Key == key {
			return e
		}
	}
	return nil
}

// reportSuppressionHygiene flags suppression comments that are
// themselves defects: unknown keys (typos silently disable nothing)
// and entries no finding consulted (the exempted code is gone; the
// comment is stale and must be deleted, per the suppression audit).
func reportSuppressionHygiene(pkg *Package, out *[]Diagnostic) {
	for _, e := range pkg.sup.all {
		rule, known := suppressionKeys[e.Key]
		switch {
		case !known:
			*out = append(*out, Diagnostic{
				Pos: e.Pos, File: e.Pos.Filename, Line: e.Pos.Line, Col: e.Pos.Column,
				Pass: "suppress", Rule: "unknown-key",
				Msg: fmt.Sprintf("unknown suppression key %q; known keys: ordered, clock, rand, exit, signal, http, shutdown, sleep", e.Key),
			})
		case !e.used:
			*out = append(*out, Diagnostic{
				Pos: e.Pos, File: e.Pos.Filename, Line: e.Pos.Line, Col: e.Pos.Column,
				Pass: "suppress", Rule: "stale",
				Msg: fmt.Sprintf("stale suppression: no %s finding on this line; delete the //lint:%s comment", rule, e.Key),
			})
		}
	}
}

// Field-annotation grammar. A comment in a struct field's doc block or
// on its line of the form
//
//	//<domain>:<verb> <reason>
//
// (e.g. //snapshot:skip, //equality:dead, //journal:ephemeral)
// declares the field deliberately outside one coverage relation. The
// coverage passes require the reason and flag stale annotations
// (fields the relation actually covers).
type annotation struct {
	Reason string
	Pos    token.Position
}

// fieldAnnotation scans the field's doc and trailing comments for
// //name (name like "snapshot:skip") and returns the parsed annotation.
func fieldAnnotation(fset *token.FileSet, f *ast.Field, name string) *annotation {
	for _, cg := range []*ast.CommentGroup{f.Doc, f.Comment} {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			text, ok := strings.CutPrefix(c.Text, "//")
			if !ok {
				continue // /* */ comments don't carry annotations
			}
			text = strings.TrimSpace(text)
			rest, ok := strings.CutPrefix(text, name)
			if !ok || (rest != "" && rest[0] != ' ' && rest[0] != '\t') {
				continue
			}
			return &annotation{Reason: trimReason(rest), Pos: fset.Position(c.Pos())}
		}
	}
	return nil
}
