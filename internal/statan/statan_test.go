package statan

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden diagnostic files from current output")

// fixtures pairs each testdata/src package with the passes it
// exercises. Golden files live in testdata/golden/<name>.golden, one
// diagnostic per line with the fixture directory stripped from
// positions; regenerate with `go test ./internal/statan -run Fixtures -update`.
var fixtures = []struct {
	name      string
	passes    []string
	checkSupp bool
}{
	{name: "determinism", passes: []string{"determinism"}},
	{name: "robustness", passes: []string{"robustness"}},
	{name: "dispatch", passes: []string{"robustness"}},
	{name: "snapcover", passes: []string{"snapshotcover"}},
	{name: "eqcover", passes: []string{"equalitycover"}},
	{name: "fpcover", passes: []string{"fingerprintcover"}},
	{name: "ckcover", passes: []string{"cachekeycover"}},
	{name: "transfercover", passes: []string{"transfercover"}},
	{name: "suppress", passes: nil, checkSupp: true}, // all passes + hygiene
}

func TestFixtures(t *testing.T) {
	for _, fx := range fixtures {
		t.Run(fx.name, func(t *testing.T) {
			dir := filepath.Join("testdata", "src", fx.name)
			got := runFixture(t, dir, fx.passes, fx.checkSupp)
			golden := filepath.Join("testdata", "golden", fx.name+".golden")
			if *update {
				if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("missing golden file (run with -update to create): %v", err)
			}
			if got != string(want) {
				t.Errorf("diagnostics differ from %s\n--- got ---\n%s--- want ---\n%s", golden, got, want)
			}
		})
	}
}

// runFixture loads dir, runs the named passes (nil = all), and renders
// the diagnostics one per line with dir stripped from positions so the
// golden files are location-independent.
func runFixture(t *testing.T, dir string, passNames []string, checkSupp bool) string {
	t.Helper()
	pkgs, err := LoadDir(dir)
	if err != nil {
		t.Fatalf("LoadDir(%s): %v", dir, err)
	}
	var passes []*Pass
	for _, name := range passNames {
		p := PassByName(name)
		if p == nil {
			t.Fatalf("unknown pass %q", name)
		}
		passes = append(passes, p)
	}
	var b strings.Builder
	for _, pkg := range pkgs {
		for _, d := range Run(pkg, RunOptions{Passes: passes, CheckSuppressions: checkSupp}) {
			line := d.String()
			line = strings.ReplaceAll(line, dir+string(filepath.Separator), "")
			b.WriteString(line)
			b.WriteString("\n")
		}
	}
	return b.String()
}
