package statan

import "fmt"

// AnnCacheEphemeral marks a prep-config field deliberately excluded
// from the artifact-cache key: a knob that shapes how cached artifacts
// are *consumed* (e.g. the fast-exit toggle), never what they contain,
// so two runs differing only in it may safely share an entry. The
// mandatory reason records why the artifacts provably cannot depend on
// the field.
const AnnCacheEphemeral = "cache:ephemeral"

// cacheKeyCoverPass enforces key completeness for every struct with a
// method named "cacheKey" (core.prepConfig): each field either feeds
// the key — referenced by cacheKey or by a sibling method it calls on
// its receiver — or is annotated "//cache:ephemeral <reason>". Without
// this, adding an artifact-shaping knob and forgetting to key it would
// let a warm cache serve artifacts built under different semantics —
// the one failure mode a content-addressed cache cannot detect,
// because the stored bytes are perfectly intact.
func cacheKeyCoverPass() *Pass {
	return &Pass{
		Name: "cachekeycover",
		Doc:  "every field of a struct with a cacheKey method feeds the key or is annotated //cache:ephemeral <reason>",
		Run: func(pkg *Package, r *Reporter) {
			for _, sd := range packageStructs(pkg) {
				if sd.Methods["cacheKey"] == nil {
					continue
				}
				refs := sd.methodFieldRefs("cacheKey")
				for _, field := range sd.Struct.Fields.List {
					ann := fieldAnnotation(pkg.Fset, field, AnnCacheEphemeral)
					if ann != nil && ann.Reason == "" {
						r.Report(field.Pos(), "annotation-reason",
							fmt.Sprintf("//%s annotation needs a reason (//%s <why the artifacts cannot depend on this field>)", AnnCacheEphemeral, AnnCacheEphemeral))
					}
					for _, name := range fieldNames(field) {
						switch {
						case ann == nil && !refs[name.Name]:
							r.Report(name.Pos(), "missing-field", fmt.Sprintf(
								"field %s.%s does not feed the artifact cache key; a warm cache could serve artifacts built under a different %s — key it, or annotate //%s <reason>",
								sd.Name, name.Name, name.Name, AnnCacheEphemeral))
						case ann != nil && refs[name.Name]:
							r.Report(name.Pos(), "stale-annotation", fmt.Sprintf(
								"field %s.%s is annotated //%s but feeds the cache key; delete the annotation",
								sd.Name, name.Name, AnnCacheEphemeral))
						}
					}
				}
			}
		},
	}
}
