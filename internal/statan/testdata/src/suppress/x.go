// Package suppress is a sevlint fixture for suppression hygiene:
// a used suppression with a reason (silent), a stale suppression on a
// line with no finding, an unknown key, and a reasonless suppression.
package suppress

import "os"

func f(m map[int]int) int {
	s := 0
	for k := range m { //lint:ordered keys feed a commutative sum
		s += k
	}
	x := 1             //lint:ordered stale: no map range on this line
	y := 2             //lint:wat unknown suppression key
	os.Exit(s + x + y) //lint:exit
	return 0
}
