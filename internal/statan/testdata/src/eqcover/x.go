// Package eqcover is a sevlint fixture for the equalitycover pass: a
// struct with Snapshot, Restore, StateEquals, and StateHash whose
// fields exercise every diagnostic (authoritative state missing from
// the equality relation, clean and stale //equality:dead annotations,
// an annotation on non-authoritative state, and a StateHash that mixes
// a field the relation does not compare).
package eqcover

type Core struct {
	x     int
	y     int // snapshotted but not compared, unannotated: flagged
	stats int //equality:dead fixture counters, never fed back into execution
	z     int //equality:dead stale: StateEquals compares it
	//snapshot:skip fixture wiring, not state
	//equality:dead stale: q is not snapshot-authoritative, so the annotation is meaningless
	q int
	h int // hashed but not compared: flagged twice (missing + hash-not-subset)
}

type State struct {
	X, Y, Stats, Z, H int
}

func (c *Core) Snapshot() *State {
	return &State{X: c.x, Y: c.y, Stats: c.stats, Z: c.z, H: c.h}
}

func (c *Core) Restore(s *State) {
	c.x, c.y, c.stats, c.z, c.h = s.X, s.Y, s.Stats, s.Z, s.H
}

func (c *Core) StateEquals(s *State) bool {
	return c.x == s.X && c.z == s.Z
}

func (c *Core) StateHash() uint64 {
	return uint64(c.x ^ c.h)
}

// Flat exercises the equality rules for //snapshot:flat views promoted
// from an embedded slab: a view is checkpoint-authoritative when its
// backing is captured, so an uncompared view is flagged even though
// Snapshot never names it, and hashing one breaks the subset rule.
type slab struct {
	u64   []uint64
	live  []uint64 //snapshot:flat u64
	ghost []uint64 //snapshot:flat u64  authoritative via u64 but never compared: flagged
}

type Flat struct {
	slab
	w int
}

type FlatState struct {
	U64 []uint64
	W   int
}

func (f *Flat) Snapshot() *FlatState {
	return &FlatState{U64: f.u64, W: f.w}
}

func (f *Flat) Restore(s *FlatState) {
	f.u64 = append(f.u64[:0], s.U64...)
	f.w = s.W
}

func (f *Flat) StateEquals(s *FlatState) bool {
	if len(f.u64) != len(s.U64) {
		return false
	}
	for i := range f.live {
		if f.live[i] != s.U64[i] {
			return false
		}
	}
	return f.w == s.W
}

func (f *Flat) StateHash() uint64 {
	h := uint64(len(f.u64))
	for _, v := range f.ghost {
		h ^= v
	}
	return h
}
