// Package dispatch is a sevlint fixture for the sleep-poll rule: the
// directory name carries the "dispatch" segment that scopes the rule.
package dispatch

import (
	"context"
	"time"
)

func pollLoop(done func() bool) {
	for !done() {
		time.Sleep(100 * time.Millisecond) // flagged: sleep-poll
	}
}

func rangePoll(items []int) {
	for range items {
		time.Sleep(time.Millisecond) // flagged: sleep-poll
	}
}

func settleOnce() {
	time.Sleep(time.Millisecond) // clean: not a loop
}

func suppressedPoll(done func() bool) {
	for !done() {
		time.Sleep(time.Second) //lint:sleep fixture: paced by an external rate limit
	}
}

func tickerPoll(ctx context.Context, done func() bool) {
	t := time.NewTicker(100 * time.Millisecond) // clean: cancellable pacing
	defer t.Stop()
	for !done() {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
	}
}
