// Package robustness is a sevlint fixture for the os-exit,
// signal-notify, http-server, and http-shutdown rules.
package robustness

import (
	"context"
	"net"
	"net/http"
	"os"
	"os/signal"
	"time"
)

func exits() {
	os.Exit(1) // flagged: os-exit
}

func boundary() {
	os.Exit(0) //lint:exit fixture process boundary
}

func notify() {
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt) // flagged: signal-notify
}

func notifyContext() (context.Context, context.CancelFunc) {
	return signal.NotifyContext(context.Background(), os.Interrupt) // clean
}

func bareServer() *http.Server {
	return &http.Server{Addr: ":0"} // flagged: http-server (no ReadHeaderTimeout)
}

func guardedServer() *http.Server {
	return &http.Server{Addr: ":0", ReadHeaderTimeout: 10 * time.Second} // clean
}

func suppressedServer() *http.Server {
	return &http.Server{Addr: ":0"} //lint:http fixture: unix-socket server, no slow clients
}

func helperServe() error {
	return http.ListenAndServe(":0", nil) // flagged: http-server (no Shutdown handle)
}

func serveWithoutShutdown(ln net.Listener) error {
	srv := guardedServer()
	return srv.Serve(ln) // flagged: http-shutdown (package never calls Shutdown)
}
