// Package robustness is a sevlint fixture for the os-exit and
// signal-notify rules.
package robustness

import (
	"context"
	"os"
	"os/signal"
)

func exits() {
	os.Exit(1) // flagged: os-exit
}

func boundary() {
	os.Exit(0) //lint:exit fixture process boundary
}

func notify() {
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt) // flagged: signal-notify
}

func notifyContext() (context.Context, context.CancelFunc) {
	return signal.NotifyContext(context.Background(), os.Interrupt) // clean
}
