// Package snapcover is a sevlint fixture for the snapshotcover pass:
// a struct with a Snapshot/Restore pair whose fields exercise every
// diagnostic (missing from one or both methods, clean annotation,
// stale annotation, annotation without a reason).
package snapcover

type Machine struct {
	a   int
	b   int // read by Snapshot, not written by Restore: flagged
	c   int // in neither: flagged
	cfg int //snapshot:skip fixture configuration, never mutated
	d   int //snapshot:skip stale: both methods copy it
	e   int //snapshot:skip
}

type State struct {
	A, B, D int
}

func (m *Machine) Snapshot() *State {
	return &State{A: m.a, B: m.b, D: m.d}
}

func (m *Machine) Restore(s *State) {
	m.a = s.A
	m.d = s.D
}
