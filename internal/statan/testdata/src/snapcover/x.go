// Package snapcover is a sevlint fixture for the snapshotcover pass:
// a struct with a Snapshot/Restore pair whose fields exercise every
// diagnostic (missing from one or both methods, clean annotation,
// stale annotation, annotation without a reason).
package snapcover

type Machine struct {
	a   int
	b   int // read by Snapshot, not written by Restore: flagged
	c   int // in neither: flagged
	cfg int //snapshot:skip fixture configuration, never mutated
	d   int //snapshot:skip stale: both methods copy it
	e   int //snapshot:skip
}

type State struct {
	A, B, D int
}

func (m *Machine) Snapshot() *State {
	return &State{A: m.a, B: m.b, D: m.d}
}

func (m *Machine) Restore(s *State) {
	m.a = s.A
	m.d = s.D
}

// Flat exercises the //snapshot:flat view rules over an embedded
// struct-of-arrays slab: a clean view riding a covered backing, a view
// whose backing Restore drops, a view naming a nonexistent backing,
// and a view naming no backing at all.
type slab struct {
	u64     []uint64
	u16     []uint16 // read by Snapshot, not written by Restore: flagged
	good    []uint64 //snapshot:flat u64
	dropped []uint16 //snapshot:flat u16  rides a half-copied backing: flagged
	orphan  []uint64 //snapshot:flat nosuch
	unnamed []uint64 //snapshot:flat
}

type Flat struct {
	slab
	scalar int
}

type FlatState struct {
	U64    []uint64
	U16    []uint16
	Scalar int
}

func (f *Flat) Snapshot() *FlatState {
	return &FlatState{U64: f.u64, U16: f.u16, Scalar: f.scalar}
}

func (f *Flat) Restore(s *FlatState) {
	f.u64 = append(f.u64[:0], s.U64...)
	f.scalar = s.Scalar
}
