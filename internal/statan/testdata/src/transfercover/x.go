// Package transfercover exercises the transfercover pass with a local
// opcode universe that mirrors internal/isa's naming convention, so
// the fixture stays stable when the real ISA grows.
package transfercover

type Opcode uint8

const (
	OpAdd Opcode = iota + 1
	OpSub
	OpDiv
	OpSra
	OpNop
)

// evalGood covers the whole universe: four opcodes in case clauses and
// one documented conservative fallback.
//
//bitflow:transfer
func evalGood(op Opcode) int {
	//bitflow:conservative OpSra arithmetic shift falls back to top
	switch op {
	case OpAdd, OpSub:
		return 1
	case OpDiv:
		return 2
	case OpNop:
		return 0
	}
	return 0
}

// evalBad misses OpNop, annotates the handled OpDiv, gives OpSra no
// reason, and names an opcode that does not exist.
//
//bitflow:transfer
func evalBad(op Opcode) int {
	//bitflow:conservative OpDiv division is handled below
	//bitflow:conservative OpSra
	//bitflow:conservative OpBogus not a real opcode
	switch op {
	case OpAdd, OpSub, OpDiv:
		return 1
	}
	return 0
}

// ignored has an incomplete switch but no marker, so the pass leaves
// it alone.
func ignored(op Opcode) int {
	switch op {
	case OpAdd:
		return 1
	}
	return 0
}

// evalMask mirrors the fault-propagation crash-mask shape: the ops
// with interesting results in leading cases and the rest of the
// universe enumerated in one explicit zero case before the fallback.
//
//bitflow:transfer
func evalMask(op Opcode) int {
	switch op {
	case OpDiv:
		return 3
	case OpAdd, OpSub, OpSra, OpNop:
		return 0
	}
	return 0
}

// evalMaskBad drops OpSub from the enumerated zero case — the exact
// mistake of adding an opcode without classifying its crash mask.
//
//bitflow:transfer
func evalMaskBad(op Opcode) int {
	switch op {
	case OpDiv:
		return 3
	case OpAdd, OpSra, OpNop:
		return 0
	}
	return 0
}
