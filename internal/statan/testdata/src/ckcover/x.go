// Package ckcover is a sevlint fixture for the cachekeycover pass: a
// prepConfig-shaped struct with a cacheKey method whose fields
// exercise every diagnostic (un-keyed knob, transitive reference
// through a sibling method, clean and stale //cache:ephemeral
// annotations, annotation without a reason).
package ckcover

type prepConfig struct {
	Version int
	Source  string // referenced via the sourceKey helper: clean
	Knob    int    // neither keyed nor annotated: flagged
	FastOff bool   //cache:ephemeral fixture consumption knob; artifacts identical either way
	Stale   int    //cache:ephemeral stale: cacheKey references it
	Bare    int    //cache:ephemeral
}

func (pc prepConfig) cacheKey() string {
	return string(rune(pc.Version)) + pc.sourceKey() + string(rune(pc.Stale))
}

func (pc prepConfig) sourceKey() string { return pc.Source }
