// Package determinism is a sevlint fixture: every construct the
// determinism pass must flag, suppress, or leave alone, with the
// expected diagnostics in testdata/golden/determinism.golden.
package determinism

import (
	"math/rand"
	"time"
)

func mapRanges(m map[string]int) int {
	s := 0
	for _, v := range m { // flagged: map-range
		s += v
	}
	for k := range m { //lint:ordered keys feed a commutative sum
		s += len(k)
	}
	for k := range m { //lint:ordered
		_ = k // suppressed, but the bare suppression is its own finding
	}
	return s
}

type set map[int]bool

func namedMapType(s set) {
	for k := range s { // flagged: named map type unwraps to a map
		_ = k
	}
}

func clean(xs []int, ch chan int) {
	for range xs {
	}
	for range ch {
	}
}

func clocks() time.Duration {
	start := time.Now() // flagged: wall-clock
	return time.Since(start)
}

func dice(seed int64) int {
	r := rand.New(rand.NewSource(seed)) // clean: local source
	_ = r.Intn(6)
	return rand.Intn(6) // flagged: global source
}

func shadowed() int {
	type gen struct{}
	_ = gen{}
	rand := struct{ Intn func(int) int }{Intn: func(n int) int { return 0 }}
	return rand.Intn(10) // clean: local variable shadows the package name
}
