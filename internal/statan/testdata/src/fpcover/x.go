// Package fpcover is a sevlint fixture for the fingerprintcover pass:
// a Spec-shaped struct with a fingerprint method whose fields exercise
// every diagnostic (un-fingerprinted knob, transitive reference
// through a sibling method, clean and stale //journal:ephemeral
// annotations, annotation without a reason).
package fpcover

type Spec struct {
	Seed   int64
	Faults int // referenced via the faultCount helper: clean
	Knob   int // neither fingerprinted nor annotated: flagged
	Par    int //journal:ephemeral fixture execution shape; results identical at every value
	Stale  int //journal:ephemeral stale: fingerprint references it
	Bare   int //journal:ephemeral
}

type meta struct {
	Seed          int64
	Faults, Stale int
}

func (s Spec) fingerprint() meta {
	return meta{Seed: s.Seed, Faults: s.faultCount(), Stale: s.Stale}
}

func (s Spec) faultCount() int { return s.Faults }
