package statan

import "fmt"

// AnnJournalEphemeral marks a spec field deliberately excluded from
// the journal's meta-record fingerprint: an execution-shape knob
// (parallelism, checkpoint budget, fast-exit toggle, failure policy)
// that provably cannot change any classification, so a journaled study
// may be resumed under a different value. The mandatory reason records
// why resuming under a different value is safe.
const AnnJournalEphemeral = "journal:ephemeral"

// fingerprintCoverPass enforces fingerprint completeness for every
// struct with a method named "fingerprint" (core.Spec): each field
// either feeds the fingerprint — referenced by fingerprint or by a
// sibling method it calls on its receiver, like resolveSizes — or is
// annotated "//journal:ephemeral <reason>". Without this, adding a
// classification-affecting Spec knob and forgetting to fingerprint it
// would let a stale journal replay results recorded under different
// semantics; with it, the omission is a lint error, and PR 4's
// deliberate non-fingerprinting of the checkpoint/fastexit knobs is
// explicit and machine-checked.
func fingerprintCoverPass() *Pass {
	return &Pass{
		Name: "fingerprintcover",
		Doc:  "every field of a struct with a fingerprint method feeds the fingerprint or is annotated //journal:ephemeral <reason>",
		Run: func(pkg *Package, r *Reporter) {
			for _, sd := range packageStructs(pkg) {
				if sd.Methods["fingerprint"] == nil {
					continue
				}
				refs := sd.methodFieldRefs("fingerprint")
				for _, field := range sd.Struct.Fields.List {
					ann := fieldAnnotation(pkg.Fset, field, AnnJournalEphemeral)
					if ann != nil && ann.Reason == "" {
						r.Report(field.Pos(), "annotation-reason",
							fmt.Sprintf("//%s annotation needs a reason (//%s <why a resume may change this knob>)", AnnJournalEphemeral, AnnJournalEphemeral))
					}
					for _, name := range fieldNames(field) {
						switch {
						case ann == nil && !refs[name.Name]:
							r.Report(name.Pos(), "missing-field", fmt.Sprintf(
								"field %s.%s does not feed the journal fingerprint; a stale journal could replay results recorded under a different %s — fingerprint it, or annotate //%s <reason>",
								sd.Name, name.Name, name.Name, AnnJournalEphemeral))
						case ann != nil && refs[name.Name]:
							r.Report(name.Pos(), "stale-annotation", fmt.Sprintf(
								"field %s.%s is annotated //%s but feeds the fingerprint; delete the annotation",
								sd.Name, name.Name, AnnJournalEphemeral))
						}
					}
				}
			}
		},
	}
}
