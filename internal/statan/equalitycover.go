package statan

import "fmt"

// AnnEqualityDead marks a checkpoint-authoritative struct field
// deliberately excluded from the behavioral-equality relation
// (StateEquals / Converged) that powers the early-convergence Masked
// exit. Every exclusion must be dead state — overwritten before it can
// be read on every path, or never fed back into execution or
// classification — and the mandatory reason records that argument at
// the field, mirroring the DESIGN.md §10 exclusion table so the doc
// and the code cannot drift.
const AnnEqualityDead = "equality:dead"

// equalityCoverPass enforces the soundness shape of the fastpath
// equality relation, for every struct with both Snapshot and a
// behavioral-equality method (StateEquals, or Converged at machine
// level):
//
//   - completeness: every field Snapshot captures (checkpoint-
//     authoritative state) is either compared by the equality method
//     or annotated "//equality:dead <reason>" — a new field cannot
//     silently escape the relation, which would let the Masked exit
//     declare convergence on states that still differ;
//   - hash subset: every field the StateHash prefilter mixes must be
//     part of the equality relation — hashing excluded state (e.g.
//     Stats) would make the hash miss on truly converged states and
//     silently disable the early exit (a correctness-preserving but
//     real performance bug), while the converse (hashing a field the
//     relation ignores) is checked here because it breaks the "hash
//     inequality proves state inequality" soundness argument;
//   - hygiene: annotations without reasons, and stale annotations on
//     fields the relation actually compares, are themselves errors.
func equalityCoverPass() *Pass {
	return &Pass{
		Name: "equalitycover",
		Doc:  "snapshot-authoritative fields are compared by StateEquals/Converged or annotated //equality:dead <reason>; StateHash mixes only compared fields",
		Run: func(pkg *Package, r *Reporter) {
			sds := packageStructs(pkg)
			byName := structsByName(sds)
			for _, sd := range sds {
				if sd.Methods["Snapshot"] == nil {
					continue
				}
				eqName := ""
				for _, cand := range []string{"StateEquals", "Converged"} {
					if sd.Methods[cand] != nil {
						eqName = cand
						break
					}
				}
				if eqName == "" {
					continue
				}
				snap := sd.methodFieldRefs("Snapshot")
				eq := sd.methodFieldRefs(eqName)
				var hash map[string]bool
				if sd.Methods["StateHash"] != nil {
					hash = sd.methodFieldRefs("StateHash")
				}
				for _, field := range expandFields(sd, byName) {
					skip := fieldAnnotation(pkg.Fset, field, AnnSnapshotSkip)
					flat := fieldAnnotation(pkg.Fset, field, AnnSnapshotFlat)
					dead := fieldAnnotation(pkg.Fset, field, AnnEqualityDead)
					if dead != nil && dead.Reason == "" {
						r.Report(field.Pos(), "annotation-reason",
							fmt.Sprintf("//%s annotation needs a reason (//%s <why this state is dead>)", AnnEqualityDead, AnnEqualityDead))
					}
					for _, name := range fieldNames(field) {
						// A //snapshot:flat view is checkpoint-authoritative
						// exactly when its backing slab is captured.
						authoritative := (snap[name.Name] || snap[flatBacking(flat)]) && skip == nil
						compared := eq[name.Name]
						switch {
						case authoritative && !compared && dead == nil:
							r.Report(name.Pos(), "missing-field", fmt.Sprintf(
								"field %s.%s is captured by Snapshot but not compared by %s; the Masked fast exit would ignore it — compare it, or argue it dead with //%s <reason>",
								sd.Name, name.Name, eqName, AnnEqualityDead))
						case dead != nil && compared:
							r.Report(name.Pos(), "stale-annotation", fmt.Sprintf(
								"field %s.%s is annotated //%s but %s compares it; delete the annotation",
								sd.Name, name.Name, AnnEqualityDead, eqName))
						case dead != nil && !authoritative:
							r.Report(name.Pos(), "stale-annotation", fmt.Sprintf(
								"field %s.%s is annotated //%s but is not snapshot-authoritative state; the annotation is meaningless here",
								sd.Name, name.Name, AnnEqualityDead))
						}
						if hash[name.Name] && !compared {
							r.Report(name.Pos(), "hash-not-subset", fmt.Sprintf(
								"StateHash mixes field %s.%s which %s does not compare; the prefilter would miss converged states (hash must cover a subset of the equality relation)",
								sd.Name, name.Name, eqName))
						}
					}
				}
			}
		},
	}
}
