package statan

// Shared machinery for the coverage passes (snapshotcover,
// equalitycover, fingerprintcover). All three analyze the same shape:
// a package-level struct type whose methods define a coverage relation
// over its fields — "read by Snapshot and written by Restore",
// "compared by StateEquals", "folded into the journal fingerprint" —
// and a field annotation that documents a deliberate exclusion.
//
// Field reference collection is receiver-based and syntactic: a field
// F of struct T counts as referenced by method M when M's body (or the
// body of another T-method M transitively calls on its receiver)
// contains a selector recv.F on M's receiver identifier. That covers
// every idiom the snapshot layer uses — struct literals
// (PRF: slices.Clone(c.prf)), copy(c.prf, s.PRF),
// append(c.fetchQ[:0], ...), nested access (c.rob.head), and reads
// inside closures — without needing whole-program type information.
// Shadowing the receiver name inside a method would over-count; the
// codebase's style (short receivers, no shadowing) makes that a
// non-issue in practice, and over-counting errs toward silence, never
// toward a false diagnostic... for coverage. Staleness checks can
// under-fire, never mis-fire a covered field.

import (
	"go/ast"
)

// structDecl is one package-level struct type with its methods.
type structDecl struct {
	Name    string
	Spec    *ast.TypeSpec
	Struct  *ast.StructType
	Methods map[string]*ast.FuncDecl
}

// fieldNames returns the declared name(s) of a struct field (several
// for "a, b int"; the type name for an embedded field).
func fieldNames(f *ast.Field) []*ast.Ident {
	if len(f.Names) > 0 {
		return f.Names
	}
	// Embedded field: the implicit name is the (possibly pointered)
	// type's base identifier.
	t := f.Type
	if st, ok := t.(*ast.StarExpr); ok {
		t = st.X
	}
	switch t := t.(type) {
	case *ast.Ident:
		return []*ast.Ident{t}
	case *ast.SelectorExpr:
		return []*ast.Ident{t.Sel}
	}
	return nil
}

// receiverBaseName unwraps a method receiver type (*T, T, *T[X]) to
// the base type name T.
func receiverBaseName(recv *ast.FieldList) (string, bool) {
	if recv == nil || len(recv.List) != 1 {
		return "", false
	}
	t := recv.List[0].Type
	if st, ok := t.(*ast.StarExpr); ok {
		t = st.X
	}
	if ix, ok := t.(*ast.IndexExpr); ok {
		t = ix.X
	}
	if ixl, ok := t.(*ast.IndexListExpr); ok {
		t = ixl.X
	}
	id, ok := t.(*ast.Ident)
	if !ok {
		return "", false
	}
	return id.Name, true
}

// packageStructs collects every package-level struct declaration and
// attaches the methods declared on it (by receiver base type name),
// across all files of the package, in deterministic file order.
func packageStructs(pkg *Package) []*structDecl {
	byName := map[string]*structDecl{}
	var order []*structDecl
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				sd := &structDecl{
					Name:    ts.Name.Name,
					Spec:    ts,
					Struct:  st,
					Methods: map[string]*ast.FuncDecl{},
				}
				byName[sd.Name] = sd
				order = append(order, sd)
			}
		}
	}
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil {
				continue
			}
			base, ok := receiverBaseName(fd.Recv)
			if !ok {
				continue
			}
			if sd, ok := byName[base]; ok {
				sd.Methods[fd.Name.Name] = fd
			}
		}
	}
	return order
}

// structsByName indexes a packageStructs result for embedded-struct
// expansion.
func structsByName(sds []*structDecl) map[string]*structDecl {
	byName := make(map[string]*structDecl, len(sds))
	for _, sd := range sds {
		byName[sd.Name] = sd
	}
	return byName
}

// expandFields returns the struct's effective field list with embedded
// same-package struct fields expanded in place (promotion-aware
// coverage): an embedded struct like cpu.Core's soa contributes its
// own fields — with their own annotations — instead of appearing as a
// single opaque field, because methods reference the promoted names
// (c.u64, c.prf), never the embedded field itself. Only plain embedded
// same-package structs expand; named fields, pointers, and external
// types stay as declared. Cyclic embedding (impossible for value
// embedding, which Go rejects) is guarded anyway.
func expandFields(sd *structDecl, byName map[string]*structDecl) []*ast.Field {
	var out []*ast.Field
	seen := map[string]bool{sd.Name: true}
	var expand func(st *ast.StructType)
	expand = func(st *ast.StructType) {
		for _, field := range st.Fields.List {
			if len(field.Names) == 0 {
				if id, ok := field.Type.(*ast.Ident); ok {
					if inner, ok := byName[id.Name]; ok && !seen[id.Name] {
						seen[id.Name] = true
						expand(inner.Struct)
						continue
					}
				}
			}
			out = append(out, field)
		}
	}
	expand(sd.Struct)
	return out
}

// receiverName returns the declared receiver identifier of a method
// ("" for an anonymous receiver, which can reference no field).
func receiverName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) != 1 || len(fd.Recv.List[0].Names) != 1 {
		return ""
	}
	return fd.Recv.List[0].Names[0].Name
}

// fieldRefs returns the set of receiver field names the method's body
// references, and the set of sibling methods it calls on its receiver
// (for transitive closure).
func fieldRefs(fd *ast.FuncDecl, methods map[string]*ast.FuncDecl) (fields, calls map[string]bool) {
	fields, calls = map[string]bool{}, map[string]bool{}
	recv := receiverName(fd)
	if recv == "" || fd.Body == nil {
		return fields, calls
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		se, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		id, ok := se.X.(*ast.Ident)
		if !ok || id.Name != recv {
			return true
		}
		if _, isMethod := methods[se.Sel.Name]; isMethod {
			calls[se.Sel.Name] = true
		} else {
			fields[se.Sel.Name] = true
		}
		return true
	})
	return fields, calls
}

// methodFieldRefs returns every receiver field referenced by the named
// method or, transitively, by sibling methods it calls on its receiver
// (e.g. Spec.fingerprint calling s.resolveSizes()).
func (sd *structDecl) methodFieldRefs(name string) map[string]bool {
	refs := map[string]bool{}
	visited := map[string]bool{}
	var walk func(string)
	walk = func(m string) {
		if visited[m] {
			return
		}
		visited[m] = true
		fd, ok := sd.Methods[m]
		if !ok {
			return
		}
		fields, calls := fieldRefs(fd, sd.Methods)
		for f := range fields { //lint:ordered set union into a set; order cannot reach the result
			refs[f] = true
		}
		var next []string
		for c := range calls { //lint:ordered collected into a set; traversal order cannot change the resulting union
			next = append(next, c)
		}
		for _, c := range next {
			walk(c)
		}
	}
	walk(name)
	return refs
}
