package statan

import (
	"fmt"
	"strings"
)

// AnnSnapshotSkip marks a struct field deliberately outside the
// Snapshot/Restore relation: configuration fixed at construction,
// wiring to structures snapshotted elsewhere, scratch buffers dead
// across cycles, or observer hooks. The reason is mandatory.
const AnnSnapshotSkip = "snapshot:skip"

// AnnSnapshotFlat marks a struct field as a view over a flat backing
// slab that Snapshot/Restore copy wholesale (the struct-of-arrays
// layout in cpu's soa): the field aliases a sub-range of the named
// backing field, so copying the backing carries the view. The
// annotation argument names the backing field; the view counts as
// covered exactly when the backing is covered by both Snapshot and
// Restore, and naming a nonexistent backing field is itself an error.
const AnnSnapshotFlat = "snapshot:flat"

// flatBacking extracts the backing field name from a //snapshot:flat
// annotation: the first word of the argument, so views can carry
// trailing commentary ("//snapshot:flat u64  int64 immediate ...").
func flatBacking(ann *annotation) string {
	if ann == nil {
		return ""
	}
	fields := strings.Fields(ann.Reason)
	if len(fields) == 0 {
		return ""
	}
	return fields[0]
}

// snapshotCoverPass enforces checkpoint completeness, the invariant
// behind the byte-identical resume guarantee (DESIGN.md §9/§10): for
// every struct with a Snapshot/Restore method pair (cpu.Core,
// mem.Cache, mem.Memory, machine.Machine), every field — including
// fields promoted from embedded same-package structs — is either
// referenced by BOTH Snapshot and Restore (i.e. actually carried
// through a checkpoint round-trip), a "//snapshot:flat <backing>" view
// whose backing slab is carried by both, or carries an explicit
// "//snapshot:skip <reason>" annotation. Adding a struct field without
// extending the snapshot layer used to silently break checkpoint
// fast-forward, kill-and-resume, and the equality fast path at once;
// now it is a lint error at the field's declaration.
func snapshotCoverPass() *Pass {
	return &Pass{
		Name: "snapshotcover",
		Doc:  "every field of a struct with Snapshot/Restore is copied by both (directly or via its //snapshot:flat backing slab), or annotated //snapshot:skip <reason>",
		Run: func(pkg *Package, r *Reporter) {
			sds := packageStructs(pkg)
			byName := structsByName(sds)
			for _, sd := range sds {
				if sd.Methods["Snapshot"] == nil || sd.Methods["Restore"] == nil {
					continue
				}
				snap := sd.methodFieldRefs("Snapshot")
				rest := sd.methodFieldRefs("Restore")
				fields := expandFields(sd, byName)
				declared := map[string]bool{}
				for _, field := range fields {
					for _, name := range fieldNames(field) {
						declared[name.Name] = true
					}
				}
				for _, field := range fields {
					ann := fieldAnnotation(pkg.Fset, field, AnnSnapshotSkip)
					flat := fieldAnnotation(pkg.Fset, field, AnnSnapshotFlat)
					if ann != nil && ann.Reason == "" {
						r.Report(field.Pos(), "annotation-reason",
							fmt.Sprintf("//%s annotation needs a reason (//%s <why this field needs no checkpointing>)", AnnSnapshotSkip, AnnSnapshotSkip))
					}
					backing := flatBacking(flat)
					if flat != nil {
						switch {
						case backing == "":
							r.Report(field.Pos(), "annotation-reason",
								fmt.Sprintf("//%s annotation must name its backing field (//%s <backing slab>)", AnnSnapshotFlat, AnnSnapshotFlat))
						case !declared[backing]:
							r.Report(field.Pos(), "stale-annotation", fmt.Sprintf(
								"//%s names backing field %q which %s does not declare; the view covers nothing",
								AnnSnapshotFlat, backing, sd.Name))
						}
					}
					for _, name := range fieldNames(field) {
						covered := snap[name.Name] && rest[name.Name]
						if flat != nil && declared[backing] {
							// A flat view rides its backing slab through the
							// checkpoint; it is covered iff the backing is.
							backed := snap[backing] && rest[backing]
							if !backed {
								r.Report(name.Pos(), "missing-field", fmt.Sprintf(
									"field %s.%s is a //%s view over %s, which is not %s; a checkpoint would silently drop it",
									sd.Name, name.Name, AnnSnapshotFlat, backing,
									missingHalf(snap[backing], rest[backing])))
							}
							continue
						}
						switch {
						case ann == nil && flat == nil && !covered:
							r.Report(name.Pos(), "missing-field", fmt.Sprintf(
								"field %s.%s is not %s; a checkpoint would silently drop it — copy it in both, or annotate //%s <reason>",
								sd.Name, name.Name, missingHalf(snap[name.Name], rest[name.Name]), AnnSnapshotSkip))
						case ann != nil && covered:
							r.Report(name.Pos(), "stale-annotation", fmt.Sprintf(
								"field %s.%s is annotated //%s but Snapshot and Restore both copy it; delete the annotation",
								sd.Name, name.Name, AnnSnapshotSkip))
						}
					}
				}
			}
		},
	}
}

func missingHalf(inSnap, inRest bool) string {
	switch {
	case !inSnap && !inRest:
		return "read by Snapshot or written by Restore"
	case !inSnap:
		return "read by Snapshot"
	default:
		return "written by Restore"
	}
}
