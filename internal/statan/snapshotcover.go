package statan

import "fmt"

// AnnSnapshotSkip marks a struct field deliberately outside the
// Snapshot/Restore relation: configuration fixed at construction,
// wiring to structures snapshotted elsewhere, scratch buffers dead
// across cycles, or observer hooks. The reason is mandatory.
const AnnSnapshotSkip = "snapshot:skip"

// snapshotCoverPass enforces checkpoint completeness, the invariant
// behind the byte-identical resume guarantee (DESIGN.md §9/§10): for
// every struct with a Snapshot/Restore method pair (cpu.Core,
// mem.Cache, mem.Memory, machine.Machine), every field is either
// referenced by BOTH Snapshot and Restore — i.e. actually carried
// through a checkpoint round-trip — or carries an explicit
// "//snapshot:skip <reason>" annotation. Adding a struct field without
// extending the snapshot layer used to silently break checkpoint
// fast-forward, kill-and-resume, and the equality fast path at once;
// now it is a lint error at the field's declaration.
func snapshotCoverPass() *Pass {
	return &Pass{
		Name: "snapshotcover",
		Doc:  "every field of a struct with Snapshot/Restore is copied by both, or annotated //snapshot:skip <reason>",
		Run: func(pkg *Package, r *Reporter) {
			for _, sd := range packageStructs(pkg) {
				if sd.Methods["Snapshot"] == nil || sd.Methods["Restore"] == nil {
					continue
				}
				snap := sd.methodFieldRefs("Snapshot")
				rest := sd.methodFieldRefs("Restore")
				for _, field := range sd.Struct.Fields.List {
					ann := fieldAnnotation(pkg.Fset, field, AnnSnapshotSkip)
					if ann != nil && ann.Reason == "" {
						r.Report(field.Pos(), "annotation-reason",
							fmt.Sprintf("//%s annotation needs a reason (//%s <why this field needs no checkpointing>)", AnnSnapshotSkip, AnnSnapshotSkip))
					}
					for _, name := range fieldNames(field) {
						covered := snap[name.Name] && rest[name.Name]
						switch {
						case ann == nil && !covered:
							r.Report(name.Pos(), "missing-field", fmt.Sprintf(
								"field %s.%s is not %s; a checkpoint would silently drop it — copy it in both, or annotate //%s <reason>",
								sd.Name, name.Name, missingHalf(snap[name.Name], rest[name.Name]), AnnSnapshotSkip))
						case ann != nil && covered:
							r.Report(name.Pos(), "stale-annotation", fmt.Sprintf(
								"field %s.%s is annotated //%s but Snapshot and Restore both copy it; delete the annotation",
								sd.Name, name.Name, AnnSnapshotSkip))
						}
					}
				}
			}
		},
	}
}

func missingHalf(inSnap, inRest bool) string {
	switch {
	case !inSnap && !inRest:
		return "read by Snapshot or written by Restore"
	case !inSnap:
		return "read by Snapshot"
	default:
		return "written by Restore"
	}
}
