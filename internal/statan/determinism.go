package statan

import (
	"fmt"
	"go/ast"
)

// determinismPass bans the three classic sources of run-to-run
// nondeterminism from result-producing code. Study results must be
// byte-identical run to run and across parallelism settings (the
// scheduler's core guarantee), so:
//
//   - ranging over a map (iteration order is randomized by the
//     runtime) — sort the keys first, or mark a genuinely
//     order-insensitive loop "//lint:ordered <reason>";
//   - time.Now / time.Since / time.Until (wall-clock values leak into
//     output) — thread timing through explicit parameters, or mark a
//     display-only read "//lint:clock <reason>";
//   - the global math/rand source (shared, unseeded state) — construct
//     a local rand.New(rand.NewSource(seed)); "//lint:rand <reason>"
//     suppresses.
func determinismPass() *Pass {
	return &Pass{
		Name: "determinism",
		Doc:  "bans map ranges, wall-clock reads, and the global math/rand source from result-producing code",
		Run: func(pkg *Package, r *Reporter) {
			for _, file := range pkg.Files {
				f := file
				ast.Inspect(file, func(n ast.Node) bool {
					switch n := n.(type) {
					case *ast.RangeStmt:
						t := pkg.Info.TypeOf(n.X)
						switch {
						case isMapType(t):
							r.ReportSuppressible(n.Pos(), "map-range", "ordered",
								"map iteration order is nondeterministic; sort the keys (or mark the loop //lint:ordered <reason> if order cannot reach results or output)")
						case unknownType(t):
							// The stub importer cannot type cross-package
							// expressions; an author-suppressed loop over
							// one must not read as stale.
							r.Consult(n.Pos(), "ordered")
						}
					case *ast.CallExpr:
						path, sel, ok := pkgSelector(n, f, pkg.Info)
						if !ok {
							return true
						}
						switch {
						case path == "time" && (sel == "Now" || sel == "Since" || sel == "Until"):
							r.ReportSuppressible(n.Pos(), "wall-clock", "clock",
								fmt.Sprintf("time.%s makes results depend on the wall clock; thread timing through explicit parameters (or mark a display-only read //lint:clock <reason>)", sel))
						case path == "math/rand" && sel != "New" && sel != "NewSource":
							r.ReportSuppressible(n.Pos(), "global-rand", "rand",
								fmt.Sprintf("rand.%s uses the shared global source; use rand.New(rand.NewSource(seed)) for reproducible sampling", sel))
						}
					}
					return true
				})
			}
		},
	}
}
