package statan

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// The mutation tests prove the coverage passes catch real regressions:
// each one copies a real harness package into a temp dir, verifies the
// copy analyzes clean, seeds the exact defect the pass exists to catch
// (deleting one field copy, dropping one comparison, dropping one
// fingerprint reference), and asserts the expected diagnostic appears.

// coverPasses returns just the three coverage passes — the mutation
// copies live outside internal/, where the driver would not run the
// determinism/robustness rules either.
func coverPasses(t *testing.T) []*Pass {
	t.Helper()
	var ps []*Pass
	for _, name := range []string{"snapshotcover", "equalitycover", "fingerprintcover", "cachekeycover"} {
		p := PassByName(name)
		if p == nil {
			t.Fatalf("unknown pass %q", name)
		}
		ps = append(ps, p)
	}
	return ps
}

// copyPackage copies every non-test .go file of srcDir into a fresh
// temp dir and returns it.
func copyPackage(t *testing.T, srcDir string) string {
	t.Helper()
	dst := t.TempDir()
	entries, err := os.ReadDir(srcDir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(srcDir, name))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, name), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dst
}

// mutate rewrites one occurrence of old to new in dir/file, failing if
// the fragment is absent (the real source drifted and the test with it).
func mutate(t *testing.T, dir, file, old, new string) {
	t.Helper()
	path := filepath.Join(dir, file)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), old) {
		t.Fatalf("%s no longer contains %q; update the mutation test", file, old)
	}
	out := strings.Replace(string(data), old, new, 1)
	if err := os.WriteFile(path, []byte(out), 0o644); err != nil {
		t.Fatal(err)
	}
}

// analyze runs the coverage passes over every package in dir.
func analyze(t *testing.T, dir string) []Diagnostic {
	t.Helper()
	pkgs, err := LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var ds []Diagnostic
	for _, pkg := range pkgs {
		ds = append(ds, Run(pkg, RunOptions{Passes: coverPasses(t)})...)
	}
	return ds
}

func requireClean(t *testing.T, dir string) {
	t.Helper()
	if ds := analyze(t, dir); len(ds) != 0 {
		t.Fatalf("unmutated copy is not clean:\n%s", renderAll(ds))
	}
}

func requireFinding(t *testing.T, ds []Diagnostic, pass, rule, substr string) {
	t.Helper()
	for _, d := range ds {
		if d.Pass == pass && d.Rule == rule && strings.Contains(d.Msg, substr) {
			return
		}
	}
	t.Fatalf("no [%s/%s] diagnostic mentioning %q in:\n%s", pass, rule, substr, renderAll(ds))
}

func renderAll(ds []Diagnostic) string {
	var b strings.Builder
	for _, d := range ds {
		b.WriteString(d.String())
		b.WriteString("\n")
	}
	if b.Len() == 0 {
		return "(no diagnostics)\n"
	}
	return b.String()
}

// TestSnapshotCoverCatchesDroppedSnapshotCopy deletes the line that
// copies core.fetchStall into the snapshot and asserts snapshotcover
// reports the field — the silent-checkpoint-drop bug the pass exists
// to prevent.
func TestSnapshotCoverCatchesDroppedSnapshotCopy(t *testing.T) {
	dir := copyPackage(t, filepath.Join("..", "cpu"))
	requireClean(t, dir)
	mutate(t, dir, "snapshot.go", "s.FetchStall = c.fetchStall", "")
	requireFinding(t, analyze(t, dir), "snapshotcover", "missing-field", "fetchStall")
}

// TestSnapshotCoverCatchesDroppedRestoreCopy deletes the restore side
// of the same field.
func TestSnapshotCoverCatchesDroppedRestoreCopy(t *testing.T) {
	dir := copyPackage(t, filepath.Join("..", "cpu"))
	requireClean(t, dir)
	mutate(t, dir, "snapshot.go", "c.fetchStall = s.FetchStall", "")
	ds := analyze(t, dir)
	requireFinding(t, ds, "snapshotcover", "missing-field", "fetchStall")
	requireFinding(t, ds, "snapshotcover", "missing-field", "not written by Restore")
}

// TestEqualityCoverCatchesDroppedComparison replaces the fetchStall
// comparison in StateEquals with a duplicate of another clause, so the
// field is still snapshotted and hashed but no longer compared — the
// pass must report both the coverage hole and the broken hash-subset
// invariant.
func TestEqualityCoverCatchesDroppedComparison(t *testing.T) {
	dir := copyPackage(t, filepath.Join("..", "cpu"))
	requireClean(t, dir)
	mutate(t, dir, "snapshot.go", "c.fetchStall != s.FetchStall", "c.fetchPC != s.FetchPC")
	ds := analyze(t, dir)
	requireFinding(t, ds, "equalitycover", "missing-field", "fetchStall")
	requireFinding(t, ds, "equalitycover", "hash-not-subset", "fetchStall")
}

// TestFingerprintCoverCatchesDroppedSpecField deletes the journal
// fingerprint's Prune reference, so a resumed campaign could replay
// results recorded under a different pruning mode — fingerprintcover
// must report the field.
func TestFingerprintCoverCatchesDroppedSpecField(t *testing.T) {
	dir := copyPackage(t, filepath.Join("..", "core"))
	requireClean(t, dir)
	mutate(t, dir, "journal.go", "Prune:  s.Prune,", "")
	requireFinding(t, analyze(t, dir), "fingerprintcover", "missing-field", "Prune")
}

// TestCacheKeyCoverCatchesDroppedField replaces the cache key's
// Traced reference with a constant, so traced and untraced preps would
// share an entry and a pruning study could load artifacts with no
// commit trace — cachekeycover must report the field.
func TestCacheKeyCoverCatchesDroppedField(t *testing.T) {
	dir := copyPackage(t, filepath.Join("..", "core"))
	requireClean(t, dir)
	mutate(t, dir, "prepcache.go", "pc.Traced,", "false,")
	requireFinding(t, analyze(t, dir), "cachekeycover", "missing-field", "Traced")
}

// copyModuleTree replicates the module layout transfercover's universe
// resolution needs: a go.mod root with internal/isa and
// internal/binanalysis copied from the real repo, so the pass resolves
// the opcode universe exactly as it does in CI.
func copyModuleTree(t *testing.T) (root, binDir string) {
	t.Helper()
	root = t.TempDir()
	if err := os.WriteFile(filepath.Join(root, "go.mod"), []byte("module sevsim\n\ngo 1.22\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	for _, sub := range []string{"isa", "binanalysis"} {
		dst := filepath.Join(root, "internal", sub)
		if err := os.MkdirAll(dst, 0o755); err != nil {
			t.Fatal(err)
		}
		src := filepath.Join("..", sub)
		entries, err := os.ReadDir(src)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range entries {
			name := e.Name()
			if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
				continue
			}
			data, err := os.ReadFile(filepath.Join(src, name))
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(filepath.Join(dst, name), data, 0o644); err != nil {
				t.Fatal(err)
			}
		}
	}
	return root, filepath.Join(root, "internal", "binanalysis")
}

// analyzeTransfer runs just the transfercover pass over dir.
func analyzeTransfer(t *testing.T, dir string) []Diagnostic {
	t.Helper()
	pkgs, err := LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	p := PassByName("transfercover")
	if p == nil {
		t.Fatal("transfercover pass missing")
	}
	var ds []Diagnostic
	for _, pkg := range pkgs {
		ds = append(ds, Run(pkg, RunOptions{Passes: []*Pass{p}})...)
	}
	return ds
}

// TestTransferCoverCatchesDeletedCase removes one opcode from the
// known-bits transfer switch — exactly what forgetting to extend the
// transfers for a new instruction looks like — and asserts the pass
// reports the uncovered opcode against the real binanalysis sources.
func TestTransferCoverCatchesDeletedCase(t *testing.T) {
	_, binDir := copyModuleTree(t)
	if ds := analyzeTransfer(t, binDir); len(ds) != 0 {
		t.Fatalf("unmutated copy is not clean:\n%s", renderAll(ds))
	}
	mutate(t, binDir, "knownbits.go",
		"isa.OpSrli, isa.OpSrai, isa.OpSlti", "isa.OpSrli, isa.OpSlti")
	requireFinding(t, analyzeTransfer(t, binDir), "transfercover", "missing-op", "OpSrai")
}

// TestTransferCoverCatchesDeletedDemandCase does the same for the
// backward bit-liveness demand switch.
func TestTransferCoverCatchesDeletedDemandCase(t *testing.T) {
	_, binDir := copyModuleTree(t)
	mutate(t, binDir, "bitlive.go",
		"case isa.OpXor, isa.OpXori:", "case isa.OpXor:")
	requireFinding(t, analyzeTransfer(t, binDir), "transfercover", "missing-op", "OpXori")
}

// TestTransferCoverCatchesDeletedCrashMaskCase does the same for the
// fault-propagation crash-certain mask switch: dropping a store opcode
// from its case is exactly how an unclassified instruction would
// silently inherit a zero crash mask.
func TestTransferCoverCatchesDeletedCrashMaskCase(t *testing.T) {
	_, binDir := copyModuleTree(t)
	mutate(t, binDir, "propagate.go",
		"case isa.OpLw, isa.OpSw:", "case isa.OpLw:")
	requireFinding(t, analyzeTransfer(t, binDir), "transfercover", "missing-op", "OpSw")
}
