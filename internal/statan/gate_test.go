package statan

import (
	"io/fs"
	"path/filepath"
	"strings"
	"testing"
)

// TestRepoIsClean is the in-tree mirror of the CI gate
// (`go run ./cmd/sevlint ./...`): every package under internal/ and
// cmd/ must pass the full pass set with suppression hygiene, so `go
// test` alone catches a violation without the separate lint step.
// Fixture packages under testdata/ are excluded — they exist to
// contain violations.
func TestRepoIsClean(t *testing.T) {
	var dirs []string
	roots := []string{filepath.Join("..", "..", "internal"), filepath.Join("..", "..", "cmd")}
	for _, root := range roots {
		err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if d.IsDir() {
				name := d.Name()
				if name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
					return filepath.SkipDir
				}
				return nil
			}
			if strings.HasSuffix(d.Name(), ".go") && !strings.HasSuffix(d.Name(), "_test.go") {
				dir := filepath.Dir(path)
				if len(dirs) == 0 || dirs[len(dirs)-1] != dir {
					dirs = append(dirs, dir)
				}
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	if len(dirs) < 10 {
		t.Fatalf("found only %d package directories under internal/ and cmd/; the walk is broken", len(dirs))
	}

	var bad []string
	for _, dir := range dirs {
		pkgs, err := LoadDir(dir)
		if err != nil {
			t.Errorf("LoadDir(%s): %v", dir, err)
			continue
		}
		for _, pkg := range pkgs {
			for _, d := range Run(pkg, RunOptions{CheckSuppressions: true}) {
				bad = append(bad, d.String())
			}
		}
	}
	if len(bad) != 0 {
		t.Errorf("sevlint findings in the repo (the CI gate would fail):\n%s", strings.Join(bad, "\n"))
	}
}
