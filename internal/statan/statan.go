// Package statan is sevsim's typed static-analysis framework: the
// machinery behind cmd/sevlint. It loads Go packages with go/parser +
// go/types (stdlib only — a stub importer satisfies cross-package
// imports, so it runs in offline environments without compiled export
// data or golang.org/x/tools), runs registered passes over them, and
// collects position-accurate diagnostics with per-rule suppression
// comments, machine (JSON) and human output, and fixture-driven
// self-tests.
//
// Two kinds of source annotation feed the framework:
//
//   - line suppressions ("//lint:<key> <reason>") exempt one statement
//     from one rule; every suppression must carry a reason, and a
//     suppression that no finding consulted is itself reported stale;
//   - field annotations ("//snapshot:skip <reason>",
//     "//equality:dead <reason>", "//journal:ephemeral <reason>")
//     document why a struct field is deliberately outside a coverage
//     relation (see the snapshotcover, equalitycover, and
//     fingerprintcover passes).
//
// The passes themselves live in sibling files; Passes lists them all.
package statan

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"io/fs"
	"sort"
	"strings"
)

// Diagnostic is one finding, anchored to a source position.
type Diagnostic struct {
	Pos  token.Position `json:"-"`
	File string         `json:"file"`
	Line int            `json:"line"`
	Col  int            `json:"col"`
	Pass string         `json:"pass"`
	Rule string         `json:"rule"`
	Msg  string         `json:"msg"`
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s/%s] %s", d.Pos, d.Pass, d.Rule, d.Msg)
}

// MarshalDiagnostics renders diagnostics as a JSON array (never null,
// so consumers can range without a nil check).
func MarshalDiagnostics(ds []Diagnostic) ([]byte, error) {
	if ds == nil {
		ds = []Diagnostic{}
	}
	return json.MarshalIndent(ds, "", "  ")
}

// Package is one loaded package: parsed files in deterministic order
// plus best-effort type information. The stub importer satisfies every
// import with an empty package, so cross-package expressions degrade to
// invalid types while locally declared maps, channels, import names,
// and method receivers still resolve — which is all the passes need.
type Package struct {
	Dir   string
	Name  string
	Fset  *token.FileSet
	Files []*ast.File
	Info  *types.Info

	sup *suppressions
}

// Pass is one analysis. Run inspects a loaded package and reports
// findings through the Reporter.
type Pass struct {
	Name string
	Doc  string
	Run  func(pkg *Package, r *Reporter)
}

// Passes lists every pass the framework knows, in the order they run.
func Passes() []*Pass {
	return []*Pass{
		determinismPass(),
		robustnessPass(),
		snapshotCoverPass(),
		equalityCoverPass(),
		fingerprintCoverPass(),
		cacheKeyCoverPass(),
		transferCoverPass(),
	}
}

// PassByName returns the named pass, or nil.
func PassByName(name string) *Pass {
	for _, p := range Passes() {
		if p.Name == name {
			return p
		}
	}
	return nil
}

// LoadDir parses and type-checks every non-test Go file in dir.
// Multiple packages in one directory (rare outside fixtures) load as
// separate Packages, sorted by package name.
func LoadDir(dir string) ([]*Package, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi fs.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, err
	}

	var names []string
	for name := range pkgs { //lint:ordered sorted on the next line
		names = append(names, name)
	}
	sort.Strings(names)

	var out []*Package
	for _, name := range names {
		pkg := pkgs[name]
		var fileNames []string
		for fn := range pkg.Files { //lint:ordered sorted on the next line
			fileNames = append(fileNames, fn)
		}
		sort.Strings(fileNames)
		var files []*ast.File
		for _, fn := range fileNames {
			files = append(files, pkg.Files[fn])
		}

		info := &types.Info{
			Types: map[ast.Expr]types.TypeAndValue{},
			Uses:  map[*ast.Ident]types.Object{},
			Defs:  map[*ast.Ident]types.Object{},
		}
		conf := types.Config{
			Importer: &stubImporter{pkgs: map[string]*types.Package{}},
			Error:    func(error) {}, // incomplete imports are expected
		}
		conf.Check(dir, fset, files, info) // error intentionally ignored

		p := &Package{Dir: dir, Name: name, Fset: fset, Files: files, Info: info}
		p.sup = scanSuppressions(fset, files)
		out = append(out, p)
	}
	return out, nil
}

// RunOptions configures a Run over one package.
type RunOptions struct {
	// Passes to run; nil means all.
	Passes []*Pass

	// CheckSuppressions additionally reports suppression hygiene:
	// unknown //lint: keys and suppressions no finding consulted
	// (stale). Enable it only when the full pass set runs, otherwise a
	// suppression for a disabled rule would be falsely stale.
	CheckSuppressions bool
}

// Run executes the passes over the package and returns diagnostics
// sorted by position.
func Run(pkg *Package, opts RunOptions) []Diagnostic {
	passes := opts.Passes
	if passes == nil {
		passes = Passes()
	}
	var ds []Diagnostic
	for _, p := range passes {
		r := &Reporter{pkg: pkg, pass: p.Name, out: &ds}
		p.Run(pkg, r)
	}
	if opts.CheckSuppressions {
		reportSuppressionHygiene(pkg, &ds)
	}
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i].Pos, ds[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Offset != b.Offset {
			return a.Offset < b.Offset
		}
		return ds[i].Rule < ds[j].Rule
	})
	return ds
}

// Reporter delivers diagnostics for one pass over one package.
type Reporter struct {
	pkg  *Package
	pass string
	out  *[]Diagnostic
}

// Report emits an unconditional diagnostic.
func (r *Reporter) Report(pos token.Pos, rule, msg string) {
	r.reportAt(r.pkg.Fset.Position(pos), rule, msg)
}

func (r *Reporter) reportAt(p token.Position, rule, msg string) {
	*r.out = append(*r.out, Diagnostic{
		Pos:  p,
		File: p.Filename,
		Line: p.Line,
		Col:  p.Column,
		Pass: r.pass,
		Rule: rule,
		Msg:  msg,
	})
}

// ReportSuppressible emits the diagnostic unless the line carries a
// matching "//lint:<key>" suppression. A consulted suppression is
// marked used (so the hygiene check can flag stale ones); a consulted
// suppression without a reason string is reported once in its own
// right, because an unexplained exemption is exactly the drift these
// rules exist to prevent.
func (r *Reporter) ReportSuppressible(pos token.Pos, rule, key, msg string) {
	if r.Consult(pos, key) {
		return
	}
	r.Report(pos, rule, msg)
}

// Consult marks a matching suppression on the line used without
// reporting anything (beyond the missing-reason check). Rules call it
// when they cannot decide a line — e.g. a range over a cross-package
// expression the stub importer cannot type — so an author-suppressed
// line never reads as stale just because the checker lacked evidence.
func (r *Reporter) Consult(pos token.Pos, key string) bool {
	p := r.pkg.Fset.Position(pos)
	e := r.pkg.sup.lookup(p.Filename, p.Line, key)
	if e == nil {
		return false
	}
	e.used = true
	if e.Reason == "" && !e.reasonReported {
		e.reasonReported = true
		r.reportAt(e.Pos, "suppression-reason",
			fmt.Sprintf("suppression //lint:%s needs a reason (//lint:%s <why this line is exempt>)", key, key))
	}
	return true
}

// stubImporter satisfies any import with an empty, complete package so
// go/types can resolve package names without compiled export data.
type stubImporter struct{ pkgs map[string]*types.Package }

func (im *stubImporter) Import(path string) (*types.Package, error) {
	if p, ok := im.pkgs[path]; ok {
		return p, nil
	}
	name := path
	if i := strings.LastIndex(path, "/"); i >= 0 {
		name = path[i+1:]
	}
	p := types.NewPackage(path, name)
	p.MarkComplete()
	im.pkgs[path] = p
	return p, nil
}

// importPath resolves a selector base identifier to the import path of
// the package it names. Resolution prefers type information (which
// handles renamed imports); when the checker could not bind the
// identifier it falls back to matching the file's import declarations
// syntactically.
func importPath(ident *ast.Ident, file *ast.File, info *types.Info) (string, bool) {
	if obj, ok := info.Uses[ident]; ok {
		if pn, ok := obj.(*types.PkgName); ok {
			return pn.Imported().Path(), true
		}
		return "", false // a variable or type, not a package name
	}
	// Syntactic fallback: an import whose (declared or default) name
	// matches the identifier.
	for _, imp := range file.Imports {
		path := strings.Trim(imp.Path.Value, `"`)
		name := path
		if i := strings.LastIndex(path, "/"); i >= 0 {
			name = path[i+1:]
		}
		if imp.Name != nil {
			name = imp.Name.Name
		}
		if name == ident.Name {
			return path, true
		}
	}
	return "", false
}
