package statan

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"strings"
)

// robustnessPass keeps library code interruptible and crash-tolerant:
//
//   - os.Exit skips deferred cleanup (journal flush, pool drain);
//     return an error to the caller, or mark a genuine process
//     boundary "//lint:exit <reason>" (the CLI mains, nothing deeper);
//   - bare signal.Notify hides signals from the study's context; use
//     signal.NotifyContext so cancellation reaches the scheduler
//     ("//lint:signal <reason>" suppresses);
//   - an http.Server literal without ReadHeaderTimeout lets one slow
//     client pin a connection forever (slowloris), and the package
//     http.ListenAndServe helpers give back no handle to Shutdown at
//     all ("//lint:http <reason>" suppresses);
//   - a package that serves an http.Server but never calls Shutdown
//     cannot drain in-flight leases on SIGTERM ("//lint:shutdown
//     <reason>" suppresses);
//   - in dispatch code (any package under a "dispatch" path segment),
//     a time.Sleep inside a loop is a blind polling spin: it ignores
//     context cancellation and fixed-rate-hammers the coordinator.
//     Use the shared backoff policy (backoff.Policy.Sleep/Wait) or a
//     time.Ticker in a select ("//lint:sleep <reason>" suppresses).
func robustnessPass() *Pass {
	return &Pass{
		Name: "robustness",
		Doc:  "bans os.Exit outside process boundaries, bare signal.Notify, unguarded http.Server wiring, and sleep-polling in dispatch code",
		Run: func(pkg *Package, r *Reporter) {
			dispatchDir := dirHasSegment(pkg.Dir, "dispatch")
			var serveCalls []token.Pos // srv.Serve / srv.ListenAndServe method calls
			shutdownWired := false     // some .Shutdown selector appears in the package
			for _, file := range pkg.Files {
				f := file
				loopDepth := 0
				var stack []ast.Node
				ast.Inspect(file, func(n ast.Node) bool {
					if n == nil {
						top := stack[len(stack)-1]
						stack = stack[:len(stack)-1]
						switch top.(type) {
						case *ast.ForStmt, *ast.RangeStmt:
							loopDepth--
						}
						return true
					}
					stack = append(stack, n)
					switch n := n.(type) {
					case *ast.ForStmt, *ast.RangeStmt:
						loopDepth++
					case *ast.CompositeLit:
						if isHTTPServerLit(n, f, pkg.Info) && !hasField(n, "ReadHeaderTimeout") {
							r.ReportSuppressible(n.Pos(), "http-server", "http",
								"http.Server without ReadHeaderTimeout lets one slow client hold a connection open forever; set ReadHeaderTimeout (or mark a non-network server //lint:http <reason>)")
						}
					case *ast.SelectorExpr:
						if n.Sel.Name == "Shutdown" {
							shutdownWired = true
						}
					case *ast.CallExpr:
						se, isSel := n.Fun.(*ast.SelectorExpr)
						path, sel, isPkg := pkgSelector(n, f, pkg.Info)
						switch {
						case isPkg && path == "os" && sel == "Exit":
							r.ReportSuppressible(n.Pos(), "os-exit", "exit",
								"os.Exit skips deferred cleanup (journal flush, pool drain); return an error to the caller (or mark a genuine process boundary //lint:exit <reason>)")
						case isPkg && path == "os/signal" && sel == "Notify":
							r.ReportSuppressible(n.Pos(), "signal-notify", "signal",
								"bare signal.Notify hides the signal from the study's context; use signal.NotifyContext so cancellation reaches the scheduler")
						case isPkg && path == "net/http" && (sel == "ListenAndServe" || sel == "ListenAndServeTLS"):
							r.ReportSuppressible(n.Pos(), "http-server", "http",
								fmt.Sprintf("http.%s gives no handle for Shutdown and no ReadHeaderTimeout; construct an http.Server and wire graceful shutdown", sel))
						case isPkg && path == "time" && sel == "Sleep" && dispatchDir && loopDepth > 0:
							r.ReportSuppressible(n.Pos(), "sleep-poll", "sleep",
								"time.Sleep in a dispatch loop ignores cancellation and polls at a fixed rate; use the shared backoff policy or a time.Ticker in a select (or mark //lint:sleep <reason>)")
						case !isPkg && isSel:
							// A method call: srv.Serve and friends need Shutdown
							// wired somewhere in the same package.
							switch se.Sel.Name {
							case "Serve", "ListenAndServe", "ListenAndServeTLS":
								serveCalls = append(serveCalls, n.Pos())
							}
						}
					}
					return true
				})
			}
			if !shutdownWired {
				for _, pos := range serveCalls {
					r.ReportSuppressible(pos, "http-shutdown", "shutdown",
						"this package serves an http.Server but never calls Shutdown; wire graceful shutdown so in-flight work drains on SIGTERM (or mark //lint:shutdown <reason>)")
				}
			}
		},
	}
}

// isHTTPServerLit reports whether the composite literal constructs a
// net/http Server (http.Server{...}; the enclosing & of &http.Server{}
// does not change the literal node).
func isHTTPServerLit(lit *ast.CompositeLit, file *ast.File, info *types.Info) bool {
	se, ok := lit.Type.(*ast.SelectorExpr)
	if !ok || se.Sel.Name != "Server" {
		return false
	}
	ident, ok := se.X.(*ast.Ident)
	if !ok {
		return false
	}
	path, ok := importPath(ident, file, info)
	return ok && path == "net/http"
}

// hasField reports whether the keyed composite literal sets the named
// field.
func hasField(lit *ast.CompositeLit, name string) bool {
	for _, elt := range lit.Elts {
		kv, ok := elt.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		if ident, ok := kv.Key.(*ast.Ident); ok && ident.Name == name {
			return true
		}
	}
	return false
}

// dirHasSegment reports whether the cleaned slash path contains the
// named path segment ("internal/dispatch/backoff" has "dispatch").
func dirHasSegment(dir, seg string) bool {
	for _, s := range strings.Split(filepath.ToSlash(filepath.Clean(dir)), "/") {
		if s == seg {
			return true
		}
	}
	return false
}

// pkgSelector decomposes a call of the form pkgname.Func(...) into the
// import path of pkgname and the selected name.
func pkgSelector(call *ast.CallExpr, file *ast.File, info *types.Info) (path, sel string, ok bool) {
	se, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", "", false
	}
	ident, ok := se.X.(*ast.Ident)
	if !ok {
		return "", "", false
	}
	path, ok = importPath(ident, file, info)
	if !ok {
		return "", "", false
	}
	return path, se.Sel.Name, true
}

// isMapType unwraps named types and reports whether t is a map.
func isMapType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// unknownType reports whether the best-effort checker failed to type
// the expression (nil or invalid), which happens for values flowing
// out of stub-imported packages.
func unknownType(t types.Type) bool {
	if t == nil {
		return true
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Kind() == types.Invalid
}
