package statan

import (
	"go/ast"
	"go/types"
)

// robustnessPass keeps library code interruptible and crash-tolerant:
//
//   - os.Exit skips deferred cleanup (journal flush, pool drain);
//     return an error to the caller, or mark a genuine process
//     boundary "//lint:exit <reason>" (the CLI mains, nothing deeper);
//   - bare signal.Notify hides signals from the study's context; use
//     signal.NotifyContext so cancellation reaches the scheduler
//     ("//lint:signal <reason>" suppresses).
func robustnessPass() *Pass {
	return &Pass{
		Name: "robustness",
		Doc:  "bans os.Exit outside marked process boundaries and bare signal.Notify",
		Run: func(pkg *Package, r *Reporter) {
			for _, file := range pkg.Files {
				f := file
				ast.Inspect(file, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					path, sel, ok := pkgSelector(call, f, pkg.Info)
					if !ok {
						return true
					}
					switch {
					case path == "os" && sel == "Exit":
						r.ReportSuppressible(call.Pos(), "os-exit", "exit",
							"os.Exit skips deferred cleanup (journal flush, pool drain); return an error to the caller (or mark a genuine process boundary //lint:exit <reason>)")
					case path == "os/signal" && sel == "Notify":
						r.ReportSuppressible(call.Pos(), "signal-notify", "signal",
							"bare signal.Notify hides the signal from the study's context; use signal.NotifyContext so cancellation reaches the scheduler")
					}
					return true
				})
			}
		},
	}
}

// pkgSelector decomposes a call of the form pkgname.Func(...) into the
// import path of pkgname and the selected name.
func pkgSelector(call *ast.CallExpr, file *ast.File, info *types.Info) (path, sel string, ok bool) {
	se, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", "", false
	}
	ident, ok := se.X.(*ast.Ident)
	if !ok {
		return "", "", false
	}
	path, ok = importPath(ident, file, info)
	if !ok {
		return "", "", false
	}
	return path, se.Sel.Name, true
}

// isMapType unwraps named types and reports whether t is a map.
func isMapType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// unknownType reports whether the best-effort checker failed to type
// the expression (nil or invalid), which happens for values flowing
// out of stub-imported packages.
func unknownType(t types.Type) bool {
	if t == nil {
		return true
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Kind() == types.Invalid
}
