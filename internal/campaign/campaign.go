// Package campaign drives statistical fault-injection campaigns: for a
// (microarchitecture, benchmark, optimization level, structure field)
// cell it runs N independent end-to-end injections in parallel and
// aggregates the outcome counts. Campaigns can share one bounded Pool
// so a whole study saturates the machine with a single worker set
// instead of nested per-cell pools.
package campaign

import (
	"context"
	"runtime"
	"sync"

	"sevsim/internal/faultinj"
)

// Pool is a bounded worker pool for injection-sized tasks. One pool is
// shared across every campaign cell of a study: workers pull tasks from
// a single queue, so cores never idle while any cell still has work.
type Pool struct {
	tasks chan func()
	wg    sync.WaitGroup
}

// NewPool starts a pool with the given number of workers (<= 0:
// GOMAXPROCS). Close must be called to release the workers.
func NewPool(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	p := &Pool{tasks: make(chan func(), 4*workers)}
	for w := 0; w < workers; w++ {
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			for fn := range p.tasks {
				fn()
			}
		}()
	}
	return p
}

// Submit enqueues one task, blocking while the queue is full. Tasks
// must not Submit to or wait on the same pool, or workers can deadlock.
func (p *Pool) Submit(fn func()) { p.tasks <- fn }

// TrySubmit enqueues one task unless ctx is cancelled first; it reports
// whether the task was enqueued. Cancellation is checked before
// blocking, so a cancelled context never enqueues more work.
func (p *Pool) TrySubmit(ctx context.Context, fn func()) bool {
	if ctx.Err() != nil {
		return false
	}
	select {
	case p.tasks <- fn:
		return true
	case <-ctx.Done():
		return false
	}
}

// Close drains the queue and stops the workers after all submitted
// tasks have run. No Submit may follow or race with Close.
func (p *Pool) Close() {
	close(p.tasks)
	p.wg.Wait()
}

// Counts aggregates outcomes of one campaign.
type Counts struct {
	Masked  int
	SDC     int
	Crash   int
	Timeout int
	Assert  int
	// Unexpected counts asserts that came from recovered simulator
	// panics rather than modelled invariant checks (should stay zero).
	Unexpected int
	// Pruned counts the outcomes that were proven statically and never
	// simulated. PrunedReg and PrunedBit split the provably-Masked
	// proofs by granularity — whole-register deadness vs bit-level
	// deadness of a live register — and are subsets of Masked;
	// PrunedDUE counts injections the propagation analysis proved
	// crash-certain, a subset of Crash. PrunedReg + PrunedBit +
	// PrunedDUE == Pruned when the pruner reports kinds; a plain
	// Pruner's proofs count as register-granular Masked.
	Pruned    int
	PrunedReg int
	PrunedBit int
	PrunedDUE int
}

// Total returns the number of injections behind the counts.
func (c Counts) Total() int {
	return c.Masked + c.SDC + c.Crash + c.Timeout + c.Assert
}

// Add accumulates one classified outcome.
func (c *Counts) Add(r faultinj.InjectResult) {
	switch r.Outcome {
	case faultinj.Masked:
		c.Masked++
	case faultinj.SDC:
		c.SDC++
	case faultinj.Crash:
		c.Crash++
	case faultinj.Timeout:
		c.Timeout++
	default:
		c.Assert++
	}
	if r.Unexpected {
		c.Unexpected++
	}
	if r.Pruned {
		c.Pruned++
		switch r.PruneKind {
		case faultinj.PruneBit:
			c.PrunedBit++
		case faultinj.PruneDUE:
			c.PrunedDUE++
		default:
			c.PrunedReg++
		}
	}
}

// consultPruner asks the pruner about one injection, preferring the
// granularity-aware interface; a plain Pruner's proofs count as
// register-granular (the only granularity that existed before kinds).
func consultPruner(p faultinj.Pruner, t faultinj.Target, inj faultinj.Injection) (faultinj.PruneKind, string) {
	if kp, ok := p.(faultinj.KindPruner); ok {
		return kp.PrunableKind(t, inj)
	}
	ok, reason := p.Prunable(t, inj)
	if ok {
		return faultinj.PruneReg, reason
	}
	return faultinj.PruneNone, reason
}

// Of returns the count of one outcome class.
func (c Counts) Of(o faultinj.Outcome) int {
	switch o {
	case faultinj.Masked:
		return c.Masked
	case faultinj.SDC:
		return c.SDC
	case faultinj.Crash:
		return c.Crash
	case faultinj.Timeout:
		return c.Timeout
	default:
		return c.Assert
	}
}

// Result is one campaign cell's outcome.
type Result struct {
	March  string
	Bench  string
	Level  string
	Target string

	Faults       int
	Counts       Counts
	GoldenCycles uint64
	StructBits   uint64

	// Skipped carries the reason when the cell could not be sampled
	// (e.g. a target with zero injectable bits); such cells report zero
	// faults instead of aborting the study.
	Skipped string `json:",omitempty"`

	// Interrupted is set when the campaign's context was cancelled
	// before every injection ran: Faults and Counts then cover only the
	// injections that completed. Interrupted cells are partial data and
	// are never journaled or saved by the study engine.
	Interrupted bool `json:",omitempty"`
}

// AVF returns the architectural vulnerability factor measured by the
// campaign: the probability that an injected fault was not masked.
func (r Result) AVF() float64 {
	if r.Faults == 0 {
		return 0
	}
	return float64(r.Faults-r.Counts.Masked) / float64(r.Faults)
}

// ClassRate returns the per-class vulnerability contribution (class
// count over total injections), so that the rates of the four
// non-masked classes sum to the AVF.
func (r Result) ClassRate(o faultinj.Outcome) float64 {
	if r.Faults == 0 {
		return 0
	}
	return float64(r.Counts.Of(o)) / float64(r.Faults)
}

// Options tunes a campaign run.
type Options struct {
	Faults      int
	Seed        int64
	Parallelism int // <= 0: GOMAXPROCS; ignored when Pool is set
	// Pool, when non-nil, is the shared worker pool the injections run
	// on; the cell then borrows study-wide workers instead of spawning
	// its own. When nil, Run uses a transient pool of Parallelism
	// workers, preserving the standalone behavior.
	Pool *Pool
	// Model selects the fault multiplicity (default single-bit).
	Model faultinj.Model
	// Pruner, when non-nil, is consulted before each injection: a fault
	// it proves masked is recorded as Masked (with Counts.Pruned
	// incremented) without running the simulation. Only single-bit
	// campaigns are pruned — the static argument covers one bit in one
	// physical register, so any wider Model bypasses the pruner.
	Pruner faultinj.Pruner
	// Context, when non-nil, makes the campaign cancellable: once it is
	// done, no further injections are dispatched, in-flight injections
	// finish, and the Result comes back with Interrupted set and counts
	// covering only the completed injections. A nil Context never
	// cancels, preserving the historical behavior.
	Context context.Context
}

// Run executes one campaign cell: Faults injections into target, in
// parallel, deterministically derived from Seed. Outcome counts are
// independent of worker count and scheduling order: injection i of a
// cell is fully determined by (Seed, i). When Options.Context is
// cancelled mid-campaign, dispatch stops, in-flight injections drain,
// and the partial Result is marked Interrupted.
func Run(exp *faultinj.Experiment, target faultinj.Target, opts Options) Result {
	ctx := opts.Context
	if ctx == nil {
		ctx = context.Background()
	}
	pool := opts.Pool
	if pool == nil {
		pool = NewPool(opts.Parallelism)
		defer pool.Close()
	}
	res := Result{
		Target:       target.Name(),
		GoldenCycles: exp.GoldenCycles,
		StructBits:   exp.TargetBits(target),
	}
	injections, err := exp.Sample(target, opts.Faults, opts.Seed)
	if err != nil {
		res.Skipped = err.Error()
		return res
	}
	outcomes := make([]faultinj.InjectResult, len(injections))
	ran := make([]bool, len(injections)) // outcome i was actually computed

	// Injections are dispatched in chunks of same-checkpoint faults:
	// each chunk runs on one batch (one held scratch machine), so every
	// restore after the chunk's first is a cache delta restore. Chunks
	// stay small enough that all workers get work even when one
	// checkpoint dominates the sample. Outcome i is still fully
	// determined by (Seed, i) — restores are bit-exact, so grouping and
	// scheduling cannot change any classification.
	const chunkSize = 32
	var wg sync.WaitGroup
dispatch:
	for _, group := range exp.BatchByCheckpoint(injections) {
		for start := 0; start < len(group); start += chunkSize {
			if ctx.Err() != nil {
				break dispatch
			}
			chunk := group[start:min(start+chunkSize, len(group))]
			wg.Add(1)
			ok := pool.TrySubmit(ctx, func() {
				defer wg.Done()
				// Queued-but-not-started chunks drain without running
				// once cancellation hits; a chunk already executing
				// finishes its current injection, then stops.
				b := exp.NewBatch()
				defer b.Close()
				for _, i := range chunk {
					if ctx.Err() != nil {
						return
					}
					if opts.Pruner != nil && opts.Model.Width() <= 1 {
						kind, reason := consultPruner(opts.Pruner, target, injections[i])
						if kind != faultinj.PruneNone {
							// The proof class decides the synthetic
							// outcome: dead-value proofs are Masked,
							// crash-certain proofs are Crash.
							out := faultinj.Masked
							if kind == faultinj.PruneDUE {
								out = faultinj.Crash
							}
							outcomes[i] = faultinj.InjectResult{
								Outcome:   out,
								Reason:    "pruned: " + reason,
								Pruned:    true,
								PruneKind: kind,
							}
							ran[i] = true
							continue
						}
					}
					outcomes[i] = b.InjectModel(target, injections[i], opts.Model)
					ran[i] = true
				}
			})
			if !ok {
				wg.Done()
				break dispatch
			}
		}
	}
	wg.Wait()

	completed := 0
	for i := range outcomes {
		if ran[i] {
			res.Counts.Add(outcomes[i])
			completed++
		}
	}
	res.Faults = completed
	res.Interrupted = completed < len(injections)
	return res
}
