// Package campaign drives statistical fault-injection campaigns: for a
// (microarchitecture, benchmark, optimization level, structure field)
// cell it runs N independent end-to-end injections in parallel and
// aggregates the outcome counts.
package campaign

import (
	"runtime"
	"sync"

	"sevsim/internal/faultinj"
)

// Counts aggregates outcomes of one campaign.
type Counts struct {
	Masked  int
	SDC     int
	Crash   int
	Timeout int
	Assert  int
	// Unexpected counts asserts that came from recovered simulator
	// panics rather than modelled invariant checks (should stay zero).
	Unexpected int
}

// Total returns the number of injections behind the counts.
func (c Counts) Total() int {
	return c.Masked + c.SDC + c.Crash + c.Timeout + c.Assert
}

// Add accumulates one classified outcome.
func (c *Counts) Add(r faultinj.InjectResult) {
	switch r.Outcome {
	case faultinj.Masked:
		c.Masked++
	case faultinj.SDC:
		c.SDC++
	case faultinj.Crash:
		c.Crash++
	case faultinj.Timeout:
		c.Timeout++
	default:
		c.Assert++
	}
	if r.Unexpected {
		c.Unexpected++
	}
}

// Of returns the count of one outcome class.
func (c Counts) Of(o faultinj.Outcome) int {
	switch o {
	case faultinj.Masked:
		return c.Masked
	case faultinj.SDC:
		return c.SDC
	case faultinj.Crash:
		return c.Crash
	case faultinj.Timeout:
		return c.Timeout
	default:
		return c.Assert
	}
}

// Result is one campaign cell's outcome.
type Result struct {
	March  string
	Bench  string
	Level  string
	Target string

	Faults       int
	Counts       Counts
	GoldenCycles uint64
	StructBits   uint64
}

// AVF returns the architectural vulnerability factor measured by the
// campaign: the probability that an injected fault was not masked.
func (r Result) AVF() float64 {
	if r.Faults == 0 {
		return 0
	}
	return float64(r.Faults-r.Counts.Masked) / float64(r.Faults)
}

// ClassRate returns the per-class vulnerability contribution (class
// count over total injections), so that the rates of the four
// non-masked classes sum to the AVF.
func (r Result) ClassRate(o faultinj.Outcome) float64 {
	if r.Faults == 0 {
		return 0
	}
	return float64(r.Counts.Of(o)) / float64(r.Faults)
}

// Options tunes a campaign run.
type Options struct {
	Faults      int
	Seed        int64
	Parallelism int // <= 0: GOMAXPROCS
	// Model selects the fault multiplicity (default single-bit).
	Model faultinj.Model
}

// Run executes one campaign cell: Faults injections into target, in
// parallel, deterministically derived from Seed.
func Run(exp *faultinj.Experiment, target faultinj.Target, opts Options) Result {
	par := opts.Parallelism
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}
	injections := exp.Sample(target, opts.Faults, opts.Seed)
	outcomes := make([]faultinj.InjectResult, len(injections))
	var wg sync.WaitGroup
	next := make(chan int, len(injections))
	for i := range injections {
		next <- i
	}
	close(next)
	for w := 0; w < par; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				outcomes[i] = exp.InjectModel(target, injections[i], opts.Model)
			}
		}()
	}
	wg.Wait()

	res := Result{
		Target:       target.Name(),
		Faults:       len(injections),
		GoldenCycles: exp.GoldenCycles,
		StructBits:   exp.TargetBits(target),
	}
	for _, o := range outcomes {
		res.Counts.Add(o)
	}
	return res
}
