package campaign

import (
	"context"
	"testing"

	"sevsim/internal/compiler"
	"sevsim/internal/faultinj"
	"sevsim/internal/machine"
)

const testSrc = `
global int acc;
func main() {
	var int i;
	acc = 0;
	for (i = 0; i < 400; i = i + 1) {
		acc = (acc * 13 + i) & 2147483647;
	}
	out(acc);
}`

func testExp(t *testing.T) *faultinj.Experiment {
	t.Helper()
	prog, err := compiler.Compile(testSrc, "t", compiler.O1,
		compiler.Target{XLEN: 32, NumArchRegs: 16})
	if err != nil {
		t.Fatal(err)
	}
	exp, err := faultinj.NewExperiment(machine.CortexA15Like(), prog)
	if err != nil {
		t.Fatal(err)
	}
	return exp
}

func TestCountsAccounting(t *testing.T) {
	var c Counts
	c.Add(faultinj.InjectResult{Outcome: faultinj.Masked})
	c.Add(faultinj.InjectResult{Outcome: faultinj.SDC})
	c.Add(faultinj.InjectResult{Outcome: faultinj.Crash, Unexpected: true})
	c.Add(faultinj.InjectResult{Outcome: faultinj.Timeout})
	c.Add(faultinj.InjectResult{Outcome: faultinj.Assert})
	if c.Total() != 5 {
		t.Errorf("total = %d", c.Total())
	}
	if c.Unexpected != 1 {
		t.Errorf("unexpected = %d", c.Unexpected)
	}
	for o := faultinj.Masked; o < faultinj.NumOutcomes; o++ {
		if c.Of(o) != 1 {
			t.Errorf("Of(%v) = %d", o, c.Of(o))
		}
	}
}

func TestResultAVFAndClassRates(t *testing.T) {
	r := Result{
		Faults: 10,
		Counts: Counts{Masked: 6, SDC: 1, Crash: 1, Timeout: 1, Assert: 1},
	}
	if r.AVF() != 0.4 {
		t.Errorf("AVF = %f", r.AVF())
	}
	sum := 0.0
	for o := faultinj.SDC; o < faultinj.NumOutcomes; o++ {
		sum += r.ClassRate(o)
	}
	if sum != r.AVF() {
		t.Errorf("class rates sum %f != AVF %f", sum, r.AVF())
	}
	empty := Result{}
	if empty.AVF() != 0 || empty.ClassRate(faultinj.SDC) != 0 {
		t.Error("empty result rates should be 0")
	}
}

func TestRunAggregates(t *testing.T) {
	exp := testExp(t)
	rf, _ := faultinj.TargetByName("RF")
	res := Run(exp, rf, Options{Faults: 60, Seed: 5})
	if res.Faults != 60 || res.Counts.Total() != 60 {
		t.Fatalf("faults %d, counted %d", res.Faults, res.Counts.Total())
	}
	if res.StructBits != 128*32 {
		t.Errorf("struct bits = %d", res.StructBits)
	}
	if res.GoldenCycles != exp.GoldenCycles {
		t.Errorf("golden cycles = %d", res.GoldenCycles)
	}
	if res.Counts.Unexpected != 0 {
		t.Errorf("unexpected panics: %d", res.Counts.Unexpected)
	}
}

func TestRunDeterministicAcrossParallelism(t *testing.T) {
	exp := testExp(t)
	iq, _ := faultinj.TargetByName("IQ.src")
	serial := Run(exp, iq, Options{Faults: 40, Seed: 11, Parallelism: 1})
	parallel := Run(exp, iq, Options{Faults: 40, Seed: 11, Parallelism: 8})
	if serial.Counts != parallel.Counts {
		t.Fatalf("parallelism changed outcome counts: %+v vs %+v", serial.Counts, parallel.Counts)
	}
}

// TestRunOnSharedPool checks that cells running on one shared pool —
// including concurrently, as the study scheduler does — reproduce the
// standalone results.
func TestRunOnSharedPool(t *testing.T) {
	exp := testExp(t)
	rf, _ := faultinj.TargetByName("RF")
	iq, _ := faultinj.TargetByName("IQ.src")
	wantRF := Run(exp, rf, Options{Faults: 30, Seed: 3})
	wantIQ := Run(exp, iq, Options{Faults: 30, Seed: 4})

	pool := NewPool(4)
	defer pool.Close()
	var gotRF, gotIQ Result
	done := make(chan struct{})
	go func() {
		defer close(done)
		gotRF = Run(exp, rf, Options{Faults: 30, Seed: 3, Pool: pool})
	}()
	gotIQ = Run(exp, iq, Options{Faults: 30, Seed: 4, Pool: pool})
	<-done
	if gotRF != wantRF {
		t.Errorf("RF on shared pool: %+v, want %+v", gotRF, wantRF)
	}
	if gotIQ != wantIQ {
		t.Errorf("IQ on shared pool: %+v, want %+v", gotIQ, wantIQ)
	}
}

// TestRunUncancelledContextIdentical: passing a live context must not
// change any outcome relative to the historical nil-context path.
func TestRunUncancelledContextIdentical(t *testing.T) {
	exp := testExp(t)
	rf, _ := faultinj.TargetByName("RF")
	want := Run(exp, rf, Options{Faults: 40, Seed: 9})
	got := Run(exp, rf, Options{Faults: 40, Seed: 9, Context: context.Background()})
	if got != want {
		t.Fatalf("context-carrying run differs: %+v vs %+v", got, want)
	}
	if got.Interrupted {
		t.Error("uncancelled run marked Interrupted")
	}
}

// TestRunCancellation cancels mid-campaign: the run must come back
// Interrupted with counts covering only completed injections, and an
// already-cancelled context must complete zero injections.
func TestRunCancellation(t *testing.T) {
	exp := testExp(t)
	rf, _ := faultinj.TargetByName("RF")

	pre, cancel := context.WithCancel(context.Background())
	cancel()
	r := Run(exp, rf, Options{Faults: 50, Seed: 2, Context: pre})
	if !r.Interrupted {
		t.Fatal("pre-cancelled run not marked Interrupted")
	}
	if r.Faults != 0 || r.Counts.Total() != 0 {
		t.Fatalf("pre-cancelled run completed %d injections", r.Faults)
	}

	// Cancel after the first injection finishes: the drain must keep
	// counts consistent (Total == Faults <= requested).
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	fired := make(chan struct{}, 1)
	probe := faultinj.NewTarget("PROBE", "",
		func(m *machine.Machine) uint64 { return 1024 },
		func(m *machine.Machine, b uint64) {
			select {
			case fired <- struct{}{}:
				cancel()
			default:
			}
		})
	r = Run(exp, probe, Options{Faults: 200, Seed: 2, Parallelism: 2, Context: ctx})
	if r.Counts.Total() != r.Faults {
		t.Fatalf("counts %d != faults %d", r.Counts.Total(), r.Faults)
	}
	if r.Faults == 200 && r.Interrupted {
		t.Error("fully completed run marked Interrupted")
	}
	if r.Faults < 200 && !r.Interrupted {
		t.Errorf("partial run (%d/200) not marked Interrupted", r.Faults)
	}
}

// TestRunSkipsUnsampleableCell is the regression test for the zero-bit
// Sample crash: the cell must come back marked skipped with zero
// faults instead of panicking the study.
func TestRunSkipsUnsampleableCell(t *testing.T) {
	exp := testExp(t)
	empty := faultinj.NewTarget("NULL", "",
		func(*machine.Machine) uint64 { return 0 },
		func(*machine.Machine, uint64) {})
	r := Run(exp, empty, Options{Faults: 25, Seed: 1})
	if r.Skipped == "" {
		t.Fatal("expected a skip reason for a zero-bit target")
	}
	if r.Faults != 0 || r.Counts.Total() != 0 {
		t.Errorf("skipped cell recorded faults: %+v", r)
	}
	if r.AVF() != 0 {
		t.Errorf("skipped cell AVF = %f, want 0", r.AVF())
	}
}
