// Study journaling: the adapter between the generic durable record log
// (internal/journal) and the study engine. Each completed prep-unit
// golden and campaign cell is appended as it finishes; a resumed run
// replays the records, skips the finished work, and lands every
// replayed value at exactly the slice index a clean run would use, so
// the final study.json is byte-identical either way.
package core

import (
	"encoding/json"
	"fmt"
	"strings"
	"sync"

	"sevsim/internal/campaign"
	"sevsim/internal/journal"
)

// Journal record kinds. The meta record is always first and pins the
// spec; golden and cell records carry completed results; failure
// records carry keep-going quarantines so a resume reproduces them
// instead of retrying forever.
const (
	kindMeta    = "meta"
	kindGolden  = "golden"
	kindCell    = "cell"
	kindFailure = "failure"
)

// metaRecord fingerprints the spec a journal belongs to. Everything
// that can change a result is included; execution knobs that cannot
// (Parallelism, Progress, KeepGoing, Retries, CellTimeout) are not, so
// a study may be resumed with different ones.
type metaRecord struct {
	Machines []string
	Benches  []string
	Sizes    []int
	Levels   []string
	Targets  []string
	Faults   int
	Seed     int64
	Prune    bool
}

// goldenRecord is one completed unit preparation.
type goldenRecord struct {
	Golden Golden
	Static *StaticRF `json:",omitempty"`
}

// replayState is a journal decoded into keyed lookups.
type replayState struct {
	goldens  map[cellKey]goldenRecord
	cells    map[cellKey]campaign.Result
	failures map[cellKey]Failure // Target "" keys unit-level failures
}

func (rs *replayState) empty() bool {
	return rs == nil || (len(rs.goldens) == 0 && len(rs.cells) == 0 && len(rs.failures) == 0)
}

// studyJournal wraps the writer with spec-level record helpers. A nil
// *studyJournal is a valid no-op, so call sites need no journal guards.
// The first append error cancels the study (the run must not outlive
// its durability guarantee) and is reported after the drain.
type studyJournal struct {
	w      *journal.Writer
	cancel func()

	mu  sync.Mutex
	err error
}

func (j *studyJournal) append(kind string, v any) {
	if j == nil {
		return
	}
	if err := j.w.Append(kind, v); err != nil {
		j.mu.Lock()
		if j.err == nil {
			j.err = fmt.Errorf("study journal: %w", err)
			j.cancel()
		}
		j.mu.Unlock()
	}
}

func (j *studyJournal) appendGolden(g Golden, static *StaticRF) {
	j.append(kindGolden, goldenRecord{Golden: g, Static: static})
}

func (j *studyJournal) appendCell(r campaign.Result) { j.append(kindCell, r) }

func (j *studyJournal) appendFailure(f Failure) { j.append(kindFailure, f) }

func (j *studyJournal) firstErr() error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

func (j *studyJournal) close() {
	if j != nil {
		j.w.Close()
	}
}

// fingerprint derives the meta record from the spec. Everything that
// can change a result must be reachable from here — the
// fingerprintcover pass of cmd/sevlint checks that every Spec field is
// either referenced by fingerprint (directly or via resolveSizes) or
// annotated //journal:ephemeral with the argument for why a resume may
// change it.
func (s Spec) fingerprint() metaRecord {
	m := metaRecord{
		Sizes:  s.resolveSizes(),
		Faults: s.Faults,
		Seed:   s.Seed,
		Prune:  s.Prune,
	}
	for _, cfg := range s.Machines {
		m.Machines = append(m.Machines, cfg.Name)
	}
	for _, b := range s.Benchmarks {
		m.Benches = append(m.Benches, b.Name)
	}
	for _, l := range s.Levels {
		m.Levels = append(m.Levels, l.String())
	}
	for _, t := range s.Targets {
		m.Targets = append(m.Targets, t.Name())
	}
	return m
}

// resolveSizes returns the effective size of each benchmark.
func (s Spec) resolveSizes() []int {
	sizes := make([]int, len(s.Benchmarks))
	for i, b := range s.Benchmarks {
		sizes[i] = b.DefaultSize
		if s.Size != nil {
			sizes[i] = s.Size(b)
		}
	}
	return sizes
}

// openStudyJournal opens (or creates) the journal at path, validates
// the meta record against the spec, and decodes the replayable state.
// cancel is invoked on the first append failure so the scheduler drains
// instead of running ahead of a dead journal.
func openStudyJournal(path string, meta metaRecord, cancel func()) (*studyJournal, *replayState, error) {
	w, recs, err := journal.Open(path, journal.Options{})
	if err != nil {
		return nil, nil, err
	}
	rs := &replayState{
		goldens:  map[cellKey]goldenRecord{},
		cells:    map[cellKey]campaign.Result{},
		failures: map[cellKey]Failure{},
	}
	if len(recs) == 0 {
		// Fresh journal: pin the spec before any result record.
		j := &studyJournal{w: w, cancel: cancel}
		if err := w.Append(kindMeta, meta); err != nil {
			w.Close()
			return nil, nil, fmt.Errorf("study journal: %w", err)
		}
		return j, rs, nil
	}
	if recs[0].Kind != kindMeta {
		w.Close()
		return nil, nil, fmt.Errorf("study journal %s: first record is %q, not %q", path, recs[0].Kind, kindMeta)
	}
	var got metaRecord
	if err := json.Unmarshal(recs[0].Data, &got); err != nil {
		w.Close()
		return nil, nil, fmt.Errorf("study journal %s: meta record: %w", path, err)
	}
	if diff := diffMeta(got, meta); len(diff) > 0 {
		w.Close()
		return nil, nil, fmt.Errorf("study journal %s was recorded under a different spec:\n  %s\nremove the journal, or pass a different -journal path, or restore the knobs above",
			path, strings.Join(diff, "\n  "))
	}
	for _, r := range recs[1:] {
		switch r.Kind {
		case kindGolden:
			var g goldenRecord
			if err := json.Unmarshal(r.Data, &g); err != nil {
				w.Close()
				return nil, nil, fmt.Errorf("study journal %s: golden record: %w", path, err)
			}
			rs.goldens[cellKey{g.Golden.March, g.Golden.Bench, g.Golden.Level, ""}] = g
		case kindCell:
			var c campaign.Result
			if err := json.Unmarshal(r.Data, &c); err != nil {
				w.Close()
				return nil, nil, fmt.Errorf("study journal %s: cell record: %w", path, err)
			}
			rs.cells[cellKey{c.March, c.Bench, c.Level, c.Target}] = c
		case kindFailure:
			var f Failure
			if err := json.Unmarshal(r.Data, &f); err != nil {
				w.Close()
				return nil, nil, fmt.Errorf("study journal %s: failure record: %w", path, err)
			}
			rs.failures[cellKey{f.March, f.Bench, f.Level, f.Target}] = f
		default:
			w.Close()
			return nil, nil, fmt.Errorf("study journal %s: unknown record kind %q", path, r.Kind)
		}
	}
	return &studyJournal{w: w, cancel: cancel}, rs, nil
}

// diffMeta renders a field-level diff of a journal's stored spec
// fingerprint against the current one, one line per differing knob, so
// a rejected resume says exactly which knob changed instead of an
// opaque "fingerprint mismatch". Empty when the fingerprints match.
func diffMeta(stored, current metaRecord) []string {
	var out []string
	scalar := func(field string, s, c any) {
		if s != c {
			out = append(out, fmt.Sprintf("%s: journal has %v, current spec has %v", field, s, c))
		}
	}
	list := func(field string, s, c []string) {
		if len(s) != len(c) {
			out = append(out, fmt.Sprintf("%s: journal has %d entries [%s], current spec has %d [%s]",
				field, len(s), strings.Join(s, " "), len(c), strings.Join(c, " ")))
			return
		}
		for i := range s {
			if s[i] != c[i] {
				out = append(out, fmt.Sprintf("%s[%d]: journal has %q, current spec has %q", field, i, s[i], c[i]))
			}
		}
	}
	list("Machines", stored.Machines, current.Machines)
	list("Benches", stored.Benches, current.Benches)
	if len(stored.Sizes) != len(current.Sizes) {
		out = append(out, fmt.Sprintf("Sizes: journal has %d entries %v, current spec has %d %v",
			len(stored.Sizes), stored.Sizes, len(current.Sizes), current.Sizes))
	} else {
		for i := range stored.Sizes {
			if stored.Sizes[i] != current.Sizes[i] {
				bench := fmt.Sprintf("Sizes[%d]", i)
				if i < len(current.Benches) {
					bench = fmt.Sprintf("Sizes[%d] (%s)", i, current.Benches[i])
				}
				scalar(bench, stored.Sizes[i], current.Sizes[i])
			}
		}
	}
	list("Levels", stored.Levels, current.Levels)
	list("Targets", stored.Targets, current.Targets)
	scalar("Faults", stored.Faults, current.Faults)
	scalar("Seed", stored.Seed, current.Seed)
	scalar("Prune", stored.Prune, current.Prune)
	return out
}
