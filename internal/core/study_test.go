package core

import (
	"bytes"
	"encoding/json"
	"fmt"
	"path/filepath"
	"testing"

	"sevsim/internal/compiler"
	"sevsim/internal/faultinj"
	"sevsim/internal/machine"
	"sevsim/internal/workloads"
)

// tinySpec builds a fast study for tests: both machines, two
// benchmarks at test scale, two levels, three structure fields.
func tinySpec(t *testing.T) Spec {
	t.Helper()
	qsort, err := workloads.ByName("qsort")
	if err != nil {
		t.Fatal(err)
	}
	gsm, err := workloads.ByName("gsm")
	if err != nil {
		t.Fatal(err)
	}
	rf, _ := faultinj.TargetByName("RF")
	robPC, _ := faultinj.TargetByName("ROB.pc")
	l1d, _ := faultinj.TargetByName("L1D.data")
	return Spec{
		Machines:   machine.Configs(),
		Benchmarks: []workloads.Benchmark{qsort, gsm},
		Levels:     []compiler.OptLevel{compiler.O0, compiler.O2},
		Targets:    []faultinj.Target{rf, robPC, l1d},
		Faults:     24,
		Seed:       7,
		Size:       func(b workloads.Benchmark) int { return b.TestSize },
	}
}

func TestStudyEndToEnd(t *testing.T) {
	st, err := tinySpec(t).Run()
	if err != nil {
		t.Fatal(err)
	}
	// 2 machines x 2 benches x 2 levels x 3 targets cells.
	if len(st.Results) != 2*2*2*3 {
		t.Fatalf("got %d results, want 24", len(st.Results))
	}
	if len(st.Goldens) != 2*2*2 {
		t.Fatalf("got %d goldens, want 8", len(st.Goldens))
	}
	for _, r := range st.Results {
		if r.Faults != 24 {
			t.Errorf("cell %s/%s/%s/%s has %d faults", r.March, r.Bench, r.Level, r.Target, r.Faults)
		}
		if r.Counts.Total() != r.Faults {
			t.Errorf("cell %s counts %d != faults %d", r.Target, r.Counts.Total(), r.Faults)
		}
		if r.Counts.Unexpected != 0 {
			t.Errorf("cell %s/%s/%s/%s had %d unexpected panics",
				r.March, r.Bench, r.Level, r.Target, r.Counts.Unexpected)
		}
		if r.StructBits == 0 {
			t.Errorf("cell %s has zero structure bits", r.Target)
		}
	}
	// O2 must be faster than O0 in the golden runs.
	for _, march := range st.MachineNames {
		for _, bench := range st.BenchNames {
			g0, ok0 := st.Golden(march, bench, "O0")
			g2, ok2 := st.Golden(march, bench, "O2")
			if !ok0 || !ok2 {
				t.Fatalf("missing goldens for %s/%s", march, bench)
			}
			if g2.Cycles >= g0.Cycles {
				t.Errorf("%s/%s: O2 (%d) not faster than O0 (%d)", march, bench, g2.Cycles, g0.Cycles)
			}
			if g0.AvgPRFLive <= 0 || g0.AvgROBOcc <= 0 {
				t.Errorf("%s/%s: occupancy stats empty", march, bench)
			}
		}
	}
}

func TestStudyDeterminism(t *testing.T) {
	spec := tinySpec(t)
	spec.Benchmarks = spec.Benchmarks[:1]
	spec.Machines = spec.Machines[:1]
	a, err := spec.Run()
	if err != nil {
		t.Fatal(err)
	}
	b, err := spec.Run()
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Results {
		if a.Results[i] != b.Results[i] {
			t.Fatalf("result %d differs between runs:\n%+v\n%+v", i, a.Results[i], b.Results[i])
		}
	}
}

// TestSchedulerDeterminismAcrossParallelism asserts the parallel
// scheduler's core guarantee: any Parallelism setting produces the
// exact result set of the serial (Parallelism: 1) run — same goldens,
// same per-cell counts, same order — so saved studies are
// byte-identical.
func TestSchedulerDeterminismAcrossParallelism(t *testing.T) {
	spec := tinySpec(t)
	spec.Machines = spec.Machines[:1]
	spec.Benchmarks = spec.Benchmarks[:1]
	spec.Parallelism = 1
	base, err := spec.Run()
	if err != nil {
		t.Fatal(err)
	}
	baseJSON, err := json.Marshal(base)
	if err != nil {
		t.Fatal(err)
	}
	for _, par := range []int{8} {
		par := par
		t.Run(fmt.Sprintf("parallelism-%d", par), func(t *testing.T) {
			spec := spec
			spec.Parallelism = par
			st, err := spec.Run()
			if err != nil {
				t.Fatal(err)
			}
			if len(st.Results) != len(base.Results) {
				t.Fatalf("got %d results, want %d", len(st.Results), len(base.Results))
			}
			for i := range base.Results {
				if st.Results[i] != base.Results[i] {
					t.Errorf("result %d differs from serial run:\n%+v\n%+v",
						i, st.Results[i], base.Results[i])
				}
			}
			for i := range base.Goldens {
				if st.Goldens[i] != base.Goldens[i] {
					t.Errorf("golden %d differs from serial run", i)
				}
			}
			j, err := json.Marshal(st)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(j, baseJSON) {
				t.Error("saved study JSON not byte-identical to serial run")
			}
		})
	}
}

func TestStudySaveLoad(t *testing.T) {
	spec := tinySpec(t)
	spec.Machines = spec.Machines[:1]
	spec.Benchmarks = spec.Benchmarks[:1]
	st, err := spec.Run()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "study.json")
	if err := st.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded.Results) != len(st.Results) {
		t.Fatalf("loaded %d results, want %d", len(loaded.Results), len(st.Results))
	}
	if loaded.Results[0] != st.Results[0] {
		t.Error("loaded result differs")
	}
	if _, ok := loaded.Golden(st.MachineNames[0], st.BenchNames[0], "O0"); !ok {
		t.Error("loaded golden missing")
	}
}

func TestAccessors(t *testing.T) {
	spec := tinySpec(t)
	st, err := spec.Run()
	if err != nil {
		t.Fatal(err)
	}
	across := st.AcrossBenches(st.MachineNames[0], "O0", "RF")
	if len(across) != len(st.BenchNames) {
		t.Errorf("AcrossBenches returned %d, want %d", len(across), len(st.BenchNames))
	}
	cell := st.CellStructures(st.MachineNames[0], st.BenchNames[0], "O2")
	if len(cell) != len(st.TargetNames) {
		t.Errorf("CellStructures returned %d, want %d", len(cell), len(st.TargetNames))
	}
	if _, ok := st.Result("nope", "x", "y", "z"); ok {
		t.Error("bogus cell resolved")
	}
	if _, ok := MachineConfig("Cortex-A15-like"); !ok {
		t.Error("machine config lookup failed")
	}
}

func TestDefaultSpecShape(t *testing.T) {
	spec := DefaultSpec(2000)
	if len(spec.Machines) != 2 || len(spec.Benchmarks) != 8 ||
		len(spec.Levels) != 4 || len(spec.Targets) != 15 {
		t.Fatalf("default spec shape: %d machines %d benches %d levels %d targets",
			len(spec.Machines), len(spec.Benchmarks), len(spec.Levels), len(spec.Targets))
	}
	if spec.Faults != 2000 {
		t.Errorf("faults = %d", spec.Faults)
	}
	// The paper's full campaign: 2 marchs x 8 benches x 4 levels x 15
	// fields x 2000 faults = 1,920,000 injections.
	total := len(spec.Machines) * len(spec.Benchmarks) * len(spec.Levels) * len(spec.Targets) * spec.Faults
	if total != 1_920_000 {
		t.Errorf("full campaign = %d injections, want 1,920,000", total)
	}
}

func TestProgressCallback(t *testing.T) {
	spec := tinySpec(t)
	spec.Machines = spec.Machines[:1]
	spec.Benchmarks = spec.Benchmarks[:1]
	spec.Levels = spec.Levels[:1]
	spec.Targets = spec.Targets[:1]
	var buf bytes.Buffer
	spec.Progress = func(format string, args ...any) {
		buf.WriteString(format)
	}
	if _, err := spec.Run(); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Error("no progress reported")
	}
}
