package core

import (
	"bytes"
	"fmt"
	"path/filepath"
	"testing"
)

// TestCheckpointEquivalence is the study-level soundness acceptance for
// the injection fast path: with checkpoint fast-forward and the
// early-convergence exit fully disabled, the study must produce a
// byte-identical study.json to the default configuration (both on), at
// any parallelism.
func TestCheckpointEquivalence(t *testing.T) {
	ref := resumeSpec(t)
	ref.Checkpoints = -1
	ref.NoFastExit = true
	baseline, err := ref.Run()
	if err != nil {
		t.Fatal(err)
	}
	want := saveBytes(t, baseline)

	for _, par := range []int{1, 8} {
		par := par
		t.Run(fmt.Sprintf("parallelism-%d", par), func(t *testing.T) {
			spec := resumeSpec(t) // defaults: checkpointing and fast exit on
			spec.Parallelism = par
			st, err := spec.Run()
			if err != nil {
				t.Fatal(err)
			}
			got := saveBytes(t, st)
			if !bytes.Equal(got, want) {
				t.Errorf("fast-path study.json differs from reference (%d vs %d bytes)",
					len(got), len(want))
			}
		})
	}
}

// TestKillAndResumeNoCheckpoints guards the interaction between the
// fast path and the crash-tolerance engine: with checkpointing disabled
// (the -checkpoints 0 CLI setting) a journaled study killed at random
// points still resumes to a byte-identical study.json — and because the
// journal does not fingerprint the fast-path knobs, the reference for
// comparison is a default (checkpointing on) uninterrupted run.
func TestKillAndResumeNoCheckpoints(t *testing.T) {
	baseline, err := resumeSpec(t).Run()
	if err != nil {
		t.Fatal(err)
	}
	want := saveBytes(t, baseline)

	spec := resumeSpec(t)
	spec.Checkpoints = -1
	spec.NoFastExit = true
	spec.Parallelism = 4
	spec.Journal = filepath.Join(t.TempDir(), "journal.jsonl")
	st, interrupts := runWithRandomKills(t, spec, 1337)
	if interrupts == 0 {
		t.Log("note: no attempt was interrupted; cancellation points never fired")
	}
	if got := saveBytes(t, st); !bytes.Equal(got, want) {
		t.Errorf("no-checkpoint resumed study.json differs from default run (%d interrupts)", interrupts)
	}
}
