package core

import (
	"reflect"
	"testing"
	"time"

	"sevsim/internal/dispatch/backoff"
	"sevsim/internal/workloads"
)

// TestFingerprintIgnoresEphemeralKnobs pins the journal compatibility
// contract: every //journal:ephemeral execution knob may change
// between the run that wrote a journal and the run that resumes it,
// so none of them may reach the meta fingerprint — while everything
// that can change a result must.
func TestFingerprintIgnoresEphemeralKnobs(t *testing.T) {
	base := DefaultSpec(100)
	want := base.fingerprint()

	knobs := base
	knobs.Parallelism = 7
	knobs.Progress = func(string, ...any) {}
	knobs.Checkpoints = -1
	knobs.NoFastExit = true
	knobs.Journal = "elsewhere.jsonl"
	knobs.KeepGoing = true
	knobs.Retries = 3
	knobs.RetryBackoff = &backoff.Policy{Base: time.Second, Max: time.Minute}
	knobs.CellTimeout = time.Minute
	if got := knobs.fingerprint(); !reflect.DeepEqual(got, want) {
		t.Errorf("fingerprint changed by ephemeral knobs:\n got %+v\nwant %+v", got, want)
	}

	// And the converse: result-affecting fields must change it.
	seed := base
	seed.Seed++
	if reflect.DeepEqual(seed.fingerprint(), want) {
		t.Error("fingerprint ignores Seed")
	}
	faults := base
	faults.Faults++
	if reflect.DeepEqual(faults.fingerprint(), want) {
		t.Error("fingerprint ignores Faults")
	}
	prune := base
	prune.Prune = !prune.Prune
	if reflect.DeepEqual(prune.fingerprint(), want) {
		t.Error("fingerprint ignores Prune")
	}
	size := base
	size.Size = func(workloads.Benchmark) int { return 1 }
	if reflect.DeepEqual(size.fingerprint(), want) {
		t.Error("fingerprint ignores the resolved benchmark sizes")
	}
}
