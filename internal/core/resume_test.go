package core

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"sevsim/internal/compiler"
	"sevsim/internal/dispatch/backoff"
	"sevsim/internal/machine"
	"sevsim/internal/workloads"
)

// resumeSpec is tinySpec narrowed to one machine: 4 prep units and 12
// campaign cells, small enough to re-run repeatedly.
func resumeSpec(t *testing.T) Spec {
	t.Helper()
	spec := tinySpec(t)
	spec.Machines = spec.Machines[:1]
	return spec
}

func saveBytes(t *testing.T, st *Study) []byte {
	t.Helper()
	path := filepath.Join(t.TempDir(), "study.json")
	if err := st.Save(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// runWithRandomKills drives spec.RunContext to completion, cancelling
// at pseudo-random progress points (deterministic seed) and resuming
// from the journal until the study completes.
func runWithRandomKills(t *testing.T, spec Spec, seed int64) (*Study, int) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	interrupts := 0
	for attempt := 0; attempt < 100; attempt++ {
		ctx, cancel := context.WithCancel(context.Background())
		// Cancel after a random number of progress lines; large limits
		// let some attempts finish whole units or the study itself.
		limit := int32(rng.Intn(9))
		var lines int32
		spec.Progress = func(format string, args ...any) {
			if atomic.AddInt32(&lines, 1) > limit {
				cancel()
			}
		}
		st, err := spec.RunContext(ctx)
		cancel()
		if err == nil {
			return st, interrupts
		}
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("attempt %d: unexpected error: %v", attempt, err)
		}
		interrupts++
	}
	t.Fatal("study did not complete within 100 resume attempts")
	return nil, 0
}

// TestKillAndResumeByteIdentical is the engine's crash-tolerance
// guarantee: a journaled study killed at arbitrary points and resumed
// produces a byte-identical study.json to an uninterrupted run, at any
// parallelism.
func TestKillAndResumeByteIdentical(t *testing.T) {
	base := resumeSpec(t)
	baseline, err := base.Run()
	if err != nil {
		t.Fatal(err)
	}
	want := saveBytes(t, baseline)

	for _, par := range []int{1, 8} {
		par := par
		t.Run(fmt.Sprintf("parallelism-%d", par), func(t *testing.T) {
			spec := resumeSpec(t)
			spec.Parallelism = par
			spec.Journal = filepath.Join(t.TempDir(), "journal.jsonl")
			st, interrupts := runWithRandomKills(t, spec, 42+int64(par))
			if interrupts == 0 {
				t.Log("note: no attempt was interrupted; cancellation points never fired")
			}
			got := saveBytes(t, st)
			if !bytes.Equal(got, want) {
				t.Errorf("resumed study.json differs from uninterrupted run (%d interrupts, %d vs %d bytes)",
					interrupts, len(got), len(want))
			}
		})
	}
}

// TestJournaledUninterruptedRunIdentical: merely enabling the journal
// must not change a single byte of the output.
func TestJournaledUninterruptedRunIdentical(t *testing.T) {
	base := resumeSpec(t)
	baseline, err := base.Run()
	if err != nil {
		t.Fatal(err)
	}
	spec := resumeSpec(t)
	spec.Journal = filepath.Join(t.TempDir(), "journal.jsonl")
	st, err := spec.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(saveBytes(t, st), saveBytes(t, baseline)) {
		t.Error("journaled run not byte-identical to plain run")
	}

	// A second run over the complete journal replays everything without
	// re-simulating and still matches.
	again, err := spec.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(saveBytes(t, again), saveBytes(t, baseline)) {
		t.Error("fully-replayed run not byte-identical")
	}
}

// TestJournalSpecMismatchRejected: a journal recorded under one spec
// must refuse to drive a different one.
func TestJournalSpecMismatchRejected(t *testing.T) {
	spec := resumeSpec(t)
	spec.Benchmarks = spec.Benchmarks[:1]
	spec.Levels = spec.Levels[:1]
	spec.Journal = filepath.Join(t.TempDir(), "journal.jsonl")
	if _, err := spec.Run(); err != nil {
		t.Fatal(err)
	}
	spec.Seed++
	if _, err := spec.Run(); err == nil || !strings.Contains(err.Error(), "different spec") {
		t.Fatalf("seed change not rejected: %v", err)
	}
}

// withCompileFailure injects a failure into compileUnit for the given
// (bench, level) unit during the test.
func withCompileFailure(t *testing.T, bench string, level compiler.OptLevel, failures int) {
	t.Helper()
	orig := compileUnit
	t.Cleanup(func() { compileUnit = orig })
	var mu sync.Mutex
	failed := 0
	compileUnit = func(src, name string, l compiler.OptLevel, tgt compiler.Target) (*machine.Program, error) {
		if name == bench && l == level {
			mu.Lock()
			defer mu.Unlock()
			if failed < failures {
				failed++
				return nil, fmt.Errorf("injected compile failure %d", failed)
			}
		}
		return orig(src, name, l, tgt)
	}
}

// TestKeepGoingIsolatesCompileFailure is the error-isolation
// acceptance: a compile failure in one unit quarantines that unit and
// leaves every other cell identical to a clean run.
func TestKeepGoingIsolatesCompileFailure(t *testing.T) {
	clean, err := resumeSpec(t).Run()
	if err != nil {
		t.Fatal(err)
	}

	withCompileFailure(t, "gsm", compiler.O2, 1<<30)
	spec := resumeSpec(t)
	spec.KeepGoing = true
	st, err := spec.Run()
	if err != nil {
		t.Fatalf("keep-going run aborted: %v", err)
	}

	if len(st.Failed) != 1 {
		t.Fatalf("Failed = %+v, want exactly one record", st.Failed)
	}
	f := st.Failed[0]
	if f.Bench != "gsm" || f.Level != "O2" || f.Stage != "compile" || f.Stuck {
		t.Errorf("failure record = %+v", f)
	}
	if !strings.Contains(f.Err, "injected compile failure") {
		t.Errorf("failure error = %q", f.Err)
	}

	if len(st.Results) != len(clean.Results) {
		t.Fatalf("result count changed: %d vs %d", len(st.Results), len(clean.Results))
	}
	for i, r := range st.Results {
		want := clean.Results[i]
		if r.Bench == "gsm" && r.Level == "O2" {
			if r.Skipped == "" || r.Faults != 0 {
				t.Errorf("quarantined cell %d not skipped: %+v", i, r)
			}
			continue
		}
		if r != want {
			t.Errorf("cell %d differs from clean run:\n%+v\n%+v", i, r, want)
		}
	}
	for i, g := range st.Goldens {
		if g.Bench == "gsm" && g.Level == "O2" {
			if g.Cycles != 0 {
				t.Errorf("quarantined golden has cycles: %+v", g)
			}
			continue
		}
		if g != clean.Goldens[i] {
			t.Errorf("golden %d differs from clean run", i)
		}
	}
}

// TestAbortModeStillFailsFast: without KeepGoing a unit failure aborts
// the study with that unit's error, as before.
func TestAbortModeStillFailsFast(t *testing.T) {
	withCompileFailure(t, "qsort", compiler.O0, 1<<30)
	spec := resumeSpec(t)
	st, err := spec.Run()
	if err == nil || st != nil {
		t.Fatalf("expected abort, got st=%v err=%v", st, err)
	}
	if !strings.Contains(err.Error(), "injected compile failure") {
		t.Errorf("error = %v", err)
	}
}

// TestRetriesRideOutTransientFailure: a unit that fails once and then
// succeeds completes cleanly when Retries covers the transient.
func TestRetriesRideOutTransientFailure(t *testing.T) {
	clean, err := resumeSpec(t).Run()
	if err != nil {
		t.Fatal(err)
	}

	withCompileFailure(t, "gsm", compiler.O0, 1)
	spec := resumeSpec(t)
	spec.KeepGoing = true
	spec.Retries = 2
	st, err := spec.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Failed) != 0 {
		t.Fatalf("transient failure not retried away: %+v", st.Failed)
	}
	for i, r := range st.Results {
		if r != clean.Results[i] {
			t.Errorf("cell %d differs after retry: %+v vs %+v", i, r, clean.Results[i])
		}
	}
}

// TestRetriesBoundedAndRecorded: a persistent failure is quarantined
// after exactly Retries extra attempts, and the count is recorded.
func TestRetriesBoundedAndRecorded(t *testing.T) {
	withCompileFailure(t, "gsm", compiler.O0, 1<<30)
	spec := resumeSpec(t)
	spec.KeepGoing = true
	spec.Retries = 2
	st, err := spec.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Failed) != 1 {
		t.Fatalf("Failed = %+v", st.Failed)
	}
	if st.Failed[0].Retries != 2 {
		t.Errorf("recorded retries = %d, want 2", st.Failed[0].Retries)
	}
}

// TestKeepGoingFailureReplaysFromJournal: a journaled keep-going run
// with a quarantined unit replays byte-identically.
func TestKeepGoingFailureReplaysFromJournal(t *testing.T) {
	withCompileFailure(t, "gsm", compiler.O2, 1<<30)
	spec := resumeSpec(t)
	spec.KeepGoing = true
	spec.Journal = filepath.Join(t.TempDir(), "journal.jsonl")
	first, err := spec.Run()
	if err != nil {
		t.Fatal(err)
	}
	second, err := spec.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(saveBytes(t, first), saveBytes(t, second)) {
		t.Error("replayed keep-going study not byte-identical")
	}
	if len(second.Failed) != 1 || second.Failed[0].Stage != "compile" {
		t.Errorf("replayed failure record = %+v", second.Failed)
	}
}

// TestCellWatchdogRecordsStuck: an unreachably small cell deadline
// must quarantine cells as stuck instead of hanging or aborting.
func TestCellWatchdogRecordsStuck(t *testing.T) {
	spec := resumeSpec(t)
	spec.Benchmarks = spec.Benchmarks[:1]
	spec.Levels = spec.Levels[:1]
	spec.Targets = spec.Targets[:1]
	spec.CellTimeout = time.Nanosecond
	st, err := spec.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Failed) != 1 {
		t.Fatalf("Failed = %+v, want one stuck record", st.Failed)
	}
	if !st.Failed[0].Stuck || st.Failed[0].Stage != "cell" {
		t.Errorf("failure record = %+v", st.Failed[0])
	}
	if !strings.Contains(st.Results[0].Skipped, "stuck") {
		t.Errorf("stuck cell result = %+v", st.Results[0])
	}
}

// TestLoadTornStudyFile is the torn-write regression test: a
// study.json cut short mid-record must load with a clear error, not a
// bare JSON parse failure.
func TestLoadTornStudyFile(t *testing.T) {
	spec := resumeSpec(t)
	spec.Benchmarks = spec.Benchmarks[:1]
	spec.Levels = spec.Levels[:1]
	spec.Targets = spec.Targets[:1]
	st, err := spec.Run()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "study.json")
	if err := st.Save(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:2*len(data)/3], 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = Load(path)
	if err == nil {
		t.Fatal("torn study.json loaded without error")
	}
	if !strings.Contains(err.Error(), "corrupt or truncated") {
		t.Errorf("torn-file error not clearly diagnosed: %v", err)
	}

	// A zero-byte file — what a crash between create and write leaves
	// behind on some filesystems — must get the same diagnosis.
	if err := os.WriteFile(path, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = Load(path)
	if err == nil {
		t.Fatal("zero-byte study.json loaded without error")
	}
	if !strings.Contains(err.Error(), "corrupt or truncated") {
		t.Errorf("zero-byte-file error not clearly diagnosed: %v", err)
	}

	// Restore the good bytes: a full file written by Save round-trips.
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err != nil {
		t.Fatalf("intact study.json failed to load: %v", err)
	}

	// Save leaves no temp litter next to the target.
	dir := filepath.Dir(path)
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.Name() != "study.json" {
			t.Errorf("unexpected file %s left by Save", e.Name())
		}
	}
}

// TestRunContextPreCancelled: an already-cancelled context runs
// nothing and reports interruption.
func TestRunContextPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	spec := resumeSpec(t)
	if _, err := spec.RunContext(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestRetryBackoffPacingPreservesResults: the retry backoff policy is
// an ephemeral execution knob — cranking it to near-zero (so tests
// stay fast) or leaving the default must produce identical studies.
func TestRetryBackoffPacingPreservesResults(t *testing.T) {
	clean, err := resumeSpec(t).Run()
	if err != nil {
		t.Fatal(err)
	}
	withCompileFailure(t, "gsm", compiler.O0, 2)
	spec := resumeSpec(t)
	spec.KeepGoing = true
	spec.Retries = 3
	spec.RetryBackoff = &backoff.Policy{Base: time.Microsecond, Max: 10 * time.Microsecond}
	st, err := spec.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Failed) != 0 {
		t.Fatalf("transient failure not retried away under custom backoff: %+v", st.Failed)
	}
	if !bytes.Equal(saveBytes(t, clean), saveBytes(t, st)) {
		t.Error("retry backoff changed study bytes")
	}
}

// TestJournalMismatchExplainsDiff pins the shape of the
// fingerprint-mismatch error: it must name each differing knob with
// the stored and current values, not just say "different spec".
func TestJournalMismatchExplainsDiff(t *testing.T) {
	spec := resumeSpec(t)
	spec.Benchmarks = spec.Benchmarks[:1]
	spec.Levels = spec.Levels[:1]
	spec.Journal = filepath.Join(t.TempDir(), "journal.jsonl")
	if _, err := spec.Run(); err != nil {
		t.Fatal(err)
	}

	changed := spec
	changed.Seed += 35
	changed.Faults++
	changed.Prune = !changed.Prune
	_, err := changed.Run()
	if err == nil {
		t.Fatal("changed spec not rejected")
	}
	msg := err.Error()
	for _, want := range []string{
		fmt.Sprintf("Seed: journal has %d, current spec has %d", spec.Seed, changed.Seed),
		fmt.Sprintf("Faults: journal has %d, current spec has %d", spec.Faults, changed.Faults),
		fmt.Sprintf("Prune: journal has %v, current spec has %v", spec.Prune, changed.Prune),
	} {
		if !strings.Contains(msg, want) {
			t.Errorf("error missing %q:\n%s", want, msg)
		}
	}
	if strings.Contains(msg, "Machines:") {
		t.Errorf("error diffs an unchanged knob:\n%s", msg)
	}

	// Structural changes diff by entry, with the benchmark named on a
	// size change.
	resized := spec
	resized.Size = func(b workloads.Benchmark) int { return b.TestSize + 1 }
	_, err = resized.Run()
	if err == nil || !strings.Contains(err.Error(), "Sizes[0] (qsort): journal has") {
		t.Errorf("size change not diffed by benchmark: %v", err)
	}
	relevel := spec
	relevel.Levels = []compiler.OptLevel{compiler.O2}
	_, err = relevel.Run()
	if err == nil || !strings.Contains(err.Error(), `Levels[0]: journal has "O0", current spec has "O2"`) {
		t.Errorf("level change not diffed per entry: %v", err)
	}
	wider := spec
	wider.Levels = []compiler.OptLevel{compiler.O0, compiler.O2}
	_, err = wider.Run()
	if err == nil || !strings.Contains(err.Error(), "Levels: journal has 1 entries [O0], current spec has 2 [O0 O2]") {
		t.Errorf("level list growth not diffed: %v", err)
	}
}
