// Study-level parallel execution engine. Run pipelines the compile +
// golden-run preparation of every (march, bench, level) unit and
// dispatches every cell's injections onto one shared bounded worker
// pool, so cores stay busy across cell boundaries.
//
// Determinism: every result lands at the slice index the serial loop
// would have used, and every cell samples with the same cellSeed, so a
// saved study is byte-identical to a serial run regardless of
// Parallelism.
//
// Crash tolerance: with Spec.Journal set, every finished golden and
// cell is durably appended as it completes and replayed on restart, so
// a study killed at any point resumes where it left off and still
// saves byte-identical output. RunContext makes the whole engine
// cancellable (SIGINT flows in as context cancellation: dispatch
// stops, in-flight injections drain, the journal is flushed), and
// Spec.KeepGoing quarantines failed units into Study.Failed instead of
// aborting the run.
package core

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"

	"sevsim/internal/artcache"
	"sevsim/internal/binanalysis"
	"sevsim/internal/campaign"
	"sevsim/internal/compiler"
	"sevsim/internal/dispatch/backoff"
	"sevsim/internal/faultinj"
	"sevsim/internal/machine"
	"sevsim/internal/workloads"
)

// compileUnit is the compile entry point, indirected so fault-tolerance
// tests can inject compile failures into chosen units.
var compileUnit = compiler.Compile

// reporter serializes progress lines so concurrent cells never
// interleave partial output.
type reporter struct {
	mu sync.Mutex
	fn func(format string, args ...any)
}

func (r *reporter) printf(format string, args ...any) {
	if r.fn == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.fn(format, args...)
}

// prepUnit is one (march, bench, level) triple: a compile plus a golden
// run that gates the unit's campaign cells.
type prepUnit struct {
	cfg         machine.Config
	bench       workloads.Benchmark
	size        int
	level       compiler.OptLevel
	prune       bool
	retries     int
	checkpoints int
	noFastExit  bool
	analyses    *analysisCache  // shared across the study's prune units
	cache       *artcache.Cache // nil: prep directly, nothing persisted

	// want selects the unit's targets to campaign (parallel to the
	// spec's Targets); RunContext wants everything, RunCells only the
	// requested subset.
	want []bool

	// Retry pacing between failed preparation attempts: the shared
	// exponential-backoff policy, jittered from a deterministic
	// per-unit seed so retry schedules reproduce run to run.
	backoff backoff.Policy
	jitter  *backoff.Source

	exp      *faultinj.Experiment
	golden   Golden
	pruner   faultinj.Pruner // non-nil only for prune units
	static   StaticRF
	err      error
	stage    string // failing stage: "compile", "golden", "analyze"
	attempts int
	ready    chan struct{} // closed once exp/golden/err are final

	// Resume / quarantine bookkeeping.
	skip          bool               // fully satisfied by the journal; no prep, no cells
	goldenFromLog bool               // golden replayed; do not re-append it
	replayed      []*campaign.Result // per-target journaled cells (nil = must run)
	failure       *Failure           // unit-level quarantine (replayed or new)
	cellFailures  []*Failure         // per-target quarantines (stuck cells, panics)
}

// run prepares the unit with up to retries extra attempts; a cancelled
// context short-circuits pending units. Attempts after the first wait
// out an exponential backoff with jitter (the shared
// internal/dispatch/backoff policy), so a transiently failing compile
// — a briefly full disk, an overloaded host — gets time to clear
// instead of burning every retry back to back.
func (u *prepUnit) run(ctx context.Context) {
	defer close(u.ready)
	for attempt := 0; ; attempt++ {
		u.attempts = attempt + 1
		if err := ctx.Err(); err != nil {
			u.err, u.stage = err, "cancelled"
			return
		}
		u.prepOnce()
		if u.err == nil || attempt >= u.retries {
			return
		}
		if err := u.backoff.Sleep(ctx, attempt, u.jitter); err != nil {
			u.err, u.stage = err, "cancelled"
			return
		}
	}
}

// prepOnce performs one compile + golden-run + (for prune units)
// analysis attempt, consulting the artifact cache when the study has
// one. Panics from any stage are recovered into errors so one bad unit
// cannot take down the study.
func (u *prepUnit) prepOnce() {
	u.err, u.exp, u.pruner = nil, nil, nil
	u.stage = "compile"
	defer func() {
		if r := recover(); r != nil {
			u.err = fmt.Errorf("%s %s %v for %s: panic: %v", u.stage, u.bench.Name, u.level, u.cfg.Name, r)
		}
	}()
	if u.cache == nil {
		u.prepDirect()
		return
	}
	u.prepCached()
}

// prepDirect is the uncached prep path: compile, golden passes, and
// analysis run in-process with nothing persisted.
func (u *prepUnit) prepDirect() {
	tgt := compilerTarget(u.cfg)
	prog, err := compileUnit(u.bench.Source(u.size), u.bench.Name, u.level, tgt)
	if err != nil {
		u.err = fmt.Errorf("compile %s %v for %s: %w", u.bench.Name, u.level, u.cfg.Name, err)
		return
	}
	u.stage = "golden"
	exp, err := faultinj.NewExperimentOptions(u.cfg, prog, faultinj.Options{
		Traced:      u.prune,
		Checkpoints: u.checkpoints,
		NoFastExit:  u.noFastExit,
	})
	if err != nil {
		u.err = fmt.Errorf("golden %s %v on %s: %w", u.bench.Name, u.level, u.cfg.Name, err)
		return
	}
	u.finishPrep(prog, exp, nil)
}

// prepCached preps through the artifact cache: one unit per key builds
// the bundle (concurrent requesters share it via single-flight), and
// *both* hit and fill paths decode the serialized bundle, so a warm
// study runs its campaign from exactly the same decoded state a cold
// one does. A bundle that passed the cache's checksum but fails
// semantic validation here (stale layout, mismatched geometry) is
// dropped and rebuilt once before giving up.
func (u *prepUnit) prepCached() {
	src := u.bench.Source(u.size)
	key := u.cacheConfig(src).cacheKey()
	for attempt := 0; ; attempt++ {
		blob, err := u.cache.GetOrFill(key, func() ([]byte, error) {
			return u.buildBundle(src)
		})
		if err != nil {
			u.err = err
			return
		}
		u.stage = "golden"
		prog, art, static, err := decodePrepBundle(blob, u.cfg)
		if err == nil {
			var exp *faultinj.Experiment
			exp, err = faultinj.NewExperimentFromArtifacts(u.cfg, prog, art, faultinj.Options{NoFastExit: u.noFastExit})
			if err == nil {
				u.finishPrep(prog, exp, static)
				return
			}
		}
		u.cache.Drop(key)
		if attempt > 0 {
			u.err = fmt.Errorf("golden %s %v on %s: cached prep bundle unusable after rebuild: %w",
				u.bench.Name, u.level, u.cfg.Name, err)
			return
		}
	}
}

// buildBundle is the cache fill: it runs the full prep (compile,
// golden passes, analysis) and serializes the products. The experiment
// built here is closed — the caller decodes the bundle and rebuilds
// its own, keeping warm and cold paths structurally identical.
func (u *prepUnit) buildBundle(src string) ([]byte, error) {
	u.stage = "compile"
	tgt := compilerTarget(u.cfg)
	prog, err := compileUnit(src, u.bench.Name, u.level, tgt)
	if err != nil {
		return nil, fmt.Errorf("compile %s %v for %s: %w", u.bench.Name, u.level, u.cfg.Name, err)
	}
	u.stage = "golden"
	exp, err := faultinj.NewExperimentOptions(u.cfg, prog, faultinj.Options{
		Traced:      u.prune,
		Checkpoints: u.checkpoints,
		NoFastExit:  u.noFastExit,
	})
	if err != nil {
		return nil, fmt.Errorf("golden %s %v on %s: %w", u.bench.Name, u.level, u.cfg.Name, err)
	}
	defer exp.Close()
	var static *StaticRF
	if u.prune {
		u.stage = "analyze"
		pr, err := u.buildPruner(prog, exp)
		if err != nil {
			return nil, err
		}
		s := staticOf(u.cfg, u.bench.Name, u.level, pr)
		static = &s
	}
	return encodePrepBundle(prog, exp.Artifacts(), static), nil
}

// finishPrep installs a prepared experiment and derives the unit's
// golden record, pruner, and static bound. static, when non-nil, is
// the cached bound (bit-identical to a fresh computation — the pruner
// bound is deterministic — so either source yields the same study).
func (u *prepUnit) finishPrep(prog *machine.Program, exp *faultinj.Experiment, static *StaticRF) {
	u.exp = exp
	u.golden = goldenOf(u.cfg, u.bench.Name, u.level, prog, exp)
	if !u.prune {
		return
	}
	u.stage = "analyze"
	pr, err := u.buildPruner(prog, exp)
	if err != nil {
		u.err = err
		return
	}
	u.pruner = pr
	if static != nil {
		u.static = *static
	} else {
		u.static = staticOf(u.cfg, u.bench.Name, u.level, pr)
	}
}

// buildPruner runs (or reuses, via the shared analysis cache) the
// binary ACE analysis and wraps it in the unit's three-way pruner.
func (u *prepUnit) buildPruner(prog *machine.Program, exp *faultinj.Experiment) (*binanalysis.DUEPruner, error) {
	tgt := compilerTarget(u.cfg)
	a, err := u.analyses.get(analysisKey{
		bench: u.bench.Name, size: u.size, level: u.level,
		xlen: tgt.XLEN, nregs: tgt.NumArchRegs,
	}, prog.Code)
	if err != nil {
		return nil, fmt.Errorf("analyze %s %v for %s: %w", u.bench.Name, u.level, u.cfg.Name, err)
	}
	pr, err := binanalysis.NewDUEPruner(a, exp)
	if err != nil {
		return nil, fmt.Errorf("pruner %s %v for %s: %w", u.bench.Name, u.level, u.cfg.Name, err)
	}
	return pr, nil
}

// staticOf renders a pruner's bound as the study's static RF record.
func staticOf(cfg machine.Config, bench string, level compiler.OptLevel, pr *binanalysis.DUEPruner) StaticRF {
	b := pr.Bound()
	return StaticRF{
		March: cfg.Name, Bench: bench, Level: level.String(),
		MaskedLB: b.MaskedLB, AVFUpperBound: b.AVFUpperBound,
		PrunableBits: b.PrunableBits, SpaceBits: b.SpaceBits,
		RegMaskedLB: b.RegMaskedLB, RegAVFUpperBound: 1 - b.RegMaskedLB,
		RegPrunableBits: b.RegPrunableBits,
		DueLB:           b.DueLB,
		SDCUpperBound:   b.SDCUpperBound,
		DuePrunableBits: b.DuePrunableBits,
	}
}

// analysisKey identifies one compiled binary: the compiler is
// deterministic, so units sharing (bench, size, level, target) share
// code and can share one static analysis. Two marches with the same
// XLEN and register count (or repeated preps after quarantine retries)
// hit the cache instead of re-running the CFG + fixpoints.
type analysisKey struct {
	bench string
	size  int
	level compiler.OptLevel
	xlen  int
	nregs int
}

// analysisCache deduplicates binanalysis.AnalyzeWords calls across the
// prep units of one study. Safe for concurrent use; each entry is
// computed exactly once even when two units race for it.
type analysisCache struct {
	mu sync.Mutex
	m  map[analysisKey]*analysisEntry
}

type analysisEntry struct {
	once sync.Once
	a    *binanalysis.Analysis
	err  error
}

func (c *analysisCache) get(key analysisKey, words []uint32) (*binanalysis.Analysis, error) {
	c.mu.Lock()
	if c.m == nil {
		c.m = make(map[analysisKey]*analysisEntry)
	}
	e := c.m[key]
	if e == nil {
		e = &analysisEntry{}
		c.m[key] = e
	}
	c.mu.Unlock()
	e.once.Do(func() { e.a, e.err = binanalysis.AnalyzeWords(words) })
	return e.a, e.err
}

// isCancel reports whether err is context cancellation rather than a
// real failure.
func isCancel(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// skippedCell is the deterministic placeholder recorded for every cell
// of a quarantined unit. It is derived (not journaled), so an initial
// run and a resumed run produce identical bytes.
func skippedCell(f Failure, target string) campaign.Result {
	return campaign.Result{
		March: f.March, Bench: f.Bench, Level: f.Level, Target: target,
		Skipped: "unit " + f.Stage + " failed: " + f.Err,
	}
}

// quarantineUnit fills a failed unit's golden and cell slots with
// deterministic placeholders.
func quarantineUnit(st *Study, targets []faultinj.Target, ui int, f Failure) {
	st.Goldens[ui] = Golden{March: f.March, Bench: f.Bench, Level: f.Level}
	if st.Static != nil {
		st.Static[ui] = StaticRF{March: f.March, Bench: f.Bench, Level: f.Level}
	}
	nt := len(targets)
	for ti, t := range targets {
		st.Results[ui*nt+ti] = skippedCell(f, t.Name())
	}
}

// replayInto fills study slots from the journal's replay state and
// marks fully-satisfied units for skipping. Returns how many cells
// were replayed.
func (s Spec) replayInto(st *Study, units []*prepUnit, rs *replayState) int {
	if rs.empty() {
		return 0
	}
	nt := len(s.Targets)
	replayed := 0
	for ui, u := range units {
		if u.skip {
			continue // no selected targets; nothing to replay into
		}
		ukey := cellKey{u.cfg.Name, u.bench.Name, u.level.String(), ""}
		if f, ok := rs.failures[ukey]; ok {
			f := f
			u.failure = &f
			u.skip = true
			quarantineUnit(st, s.Targets, ui, f)
			replayed += nt
			continue
		}
		complete := true
		for ti, t := range s.Targets {
			ckey := cellKey{u.cfg.Name, u.bench.Name, u.level.String(), t.Name()}
			c, ok := rs.cells[ckey]
			if !ok {
				if u.want[ti] {
					complete = false
				}
				continue
			}
			u.replayed[ti] = &c
			st.Results[ui*nt+ti] = c
			replayed++
			if cf, ok := rs.failures[ckey]; ok { // e.g. a stuck cell
				cf := cf
				u.cellFailures[ti] = &cf
			}
		}
		if g, ok := rs.goldens[ukey]; ok {
			u.goldenFromLog = true
			u.golden = g.Golden
			st.Goldens[ui] = g.Golden
			if g.Static != nil {
				u.static = *g.Static
				if st.Static != nil {
					st.Static[ui] = *g.Static
				}
			}
			if complete {
				u.skip = true
			}
		}
	}
	return replayed
}

// Run executes the study on a shared worker pool of Spec.Parallelism
// workers (<= 0: GOMAXPROCS). Compile and golden runs are pipelined
// with the injection campaigns: each unit's cells are dispatched the
// moment its golden run finishes, while other units are still
// preparing. Results are deterministic and identical to a serial
// (Parallelism: 1) run.
func (s Spec) Run() (*Study, error) { return s.RunContext(context.Background()) }

// RunContext is Run with cancellation and crash tolerance: cancelling
// ctx stops dispatching new work, drains in-flight injections, flushes
// the journal (Spec.Journal), and returns the context's error. A
// subsequent run with the same spec and journal resumes from the last
// durable record.
func (s Spec) RunContext(ctx context.Context) (*Study, error) {
	st, _, err := s.run(ctx, nil)
	return st, err
}

// selection picks a subset of a spec's campaign cells (keyed with an
// empty Target field never set). nil selects everything — the
// historical full-study behavior.
type selection map[cellKey]bool

// run is the engine shared by RunContext (sel nil: the whole study)
// and RunCells (sel restricts the work to the requested cells' units
// and targets). The returned Study always has the full canonical
// layout — unit i owns Goldens[i] and Results[i*nt ... (i+1)*nt) — so
// a partial run's outcomes land at the exact indices a full run would
// use; unselected slots are left zero. The returned units expose
// per-unit failure and replay bookkeeping for outcome extraction.
func (s Spec) run(ctx context.Context, sel selection) (*Study, []*prepUnit, error) {
	st := &Study{Faults: s.Faults}
	for _, m := range s.Machines {
		st.MachineNames = append(st.MachineNames, m.Name)
	}
	for _, b := range s.Benchmarks {
		st.BenchNames = append(st.BenchNames, b.Name)
	}
	for _, l := range s.Levels {
		st.LevelNames = append(st.LevelNames, l.String())
	}
	for _, t := range s.Targets {
		st.TargetNames = append(st.TargetNames, t.Name())
	}

	// Enumerate prep units in the serial loop's order; unit i owns
	// Goldens[i] and Results[i*len(Targets) ... (i+1)*len(Targets)).
	// A unit none of whose targets are selected is skipped outright.
	sizes := s.resolveSizes()
	analyses := &analysisCache{}
	var units []*prepUnit
	for _, cfg := range s.Machines {
		for bi, bench := range s.Benchmarks {
			for _, level := range s.Levels {
				u := &prepUnit{
					cfg: cfg, bench: bench, size: sizes[bi], level: level,
					prune: s.Prune, retries: s.Retries, analyses: analyses,
					checkpoints: s.Checkpoints, noFastExit: s.NoFastExit,
					cache:        s.Cache,
					backoff:      s.retryBackoff(),
					jitter:       backoff.NewSource(cellSeed(s.Seed, cfg.Name, bench.Name, level.String(), "retry-jitter")),
					ready:        make(chan struct{}),
					want:         make([]bool, len(s.Targets)),
					replayed:     make([]*campaign.Result, len(s.Targets)),
					cellFailures: make([]*Failure, len(s.Targets)),
				}
				any := false
				for ti, t := range s.Targets {
					u.want[ti] = sel == nil || sel[cellKey{cfg.Name, bench.Name, level.String(), t.Name()}]
					any = any || u.want[ti]
				}
				u.skip = !any
				units = append(units, u)
			}
		}
	}
	if len(units) == 0 {
		return st, units, nil
	}
	nt := len(s.Targets)
	st.Goldens = make([]Golden, len(units))
	st.Results = make([]campaign.Result, len(units)*nt)
	if s.Prune {
		st.Static = make([]StaticRF, len(units))
	}

	// runCtx cancels the whole engine: external interruption, the first
	// failure in abort (non-KeepGoing) mode, or a journal write error.
	runCtx, cancelRun := context.WithCancel(ctx)
	defer cancelRun()

	rep := &reporter{fn: s.Progress}
	var jn *studyJournal
	if s.Journal != "" {
		var rs *replayState
		var err error
		jn, rs, err = openStudyJournal(s.Journal, s.fingerprint(), cancelRun)
		if err != nil {
			return nil, nil, err
		}
		defer jn.close()
		if n := s.replayInto(st, units, rs); n > 0 {
			rep.printf("resume: %d/%d cells replayed from journal %s", n, len(units)*nt, s.Journal)
		}
	}

	workers := s.Parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	pool := campaign.NewPool(workers)
	defer pool.Close()

	// cellPanics collects recovered per-cell panics for abort mode, at
	// deterministic indices so the first one in enumeration order wins.
	cellPanics := make([]error, len(units)*nt)

	// Feed the preparation work through the same pool as the
	// injections: compiles and golden runs for later units overlap with
	// the campaigns of earlier ones. The feeder is its own goroutine
	// because Submit blocks when the queue is full. Tasks are always
	// enqueued (never dropped on cancellation) so every unit's ready
	// channel is guaranteed to close.
	go func() {
		for _, u := range units {
			if u.skip {
				continue
			}
			u := u
			pool.Submit(func() { u.run(runCtx) })
		}
	}()

	// One lightweight orchestrator per unit waits for its prep, then
	// fans the unit's cells out onto the pool. Orchestrators and cell
	// goroutines only wait and aggregate; all heavy work (simulation
	// runs) happens on pool workers, bounding CPU use at `workers`.
	var wg sync.WaitGroup
	for ui, u := range units {
		if u.skip {
			continue
		}
		wg.Add(1)
		go func(ui int, u *prepUnit) {
			defer wg.Done()
			<-u.ready
			if u.err != nil {
				if isCancel(u.err) {
					return
				}
				if !s.KeepGoing {
					cancelRun()
					return
				}
				f := Failure{
					March: u.cfg.Name, Bench: u.bench.Name, Level: u.level.String(),
					Stage: u.stage, Err: u.err.Error(), Retries: u.attempts - 1,
				}
				u.failure = &f
				jn.appendFailure(f)
				quarantineUnit(st, s.Targets, ui, f)
				rep.printf("FAILED %-16s %-9s %s: %s (quarantined after %d attempt(s))",
					u.cfg.Name, u.bench.Name, u.level, u.err, u.attempts)
				return
			}
			st.Goldens[ui] = u.golden
			if s.Prune {
				st.Static[ui] = u.static
			}
			if !u.goldenFromLog {
				var static *StaticRF
				if s.Prune {
					sc := u.static
					static = &sc
				}
				jn.appendGolden(u.golden, static)
			}
			rep.printf("golden %-16s %-9s %s: %d cycles (IPC %.2f)",
				u.cfg.Name, u.bench.Name, u.level, u.exp.GoldenCycles, u.exp.GoldenStats.Stats.IPC())
			var cells sync.WaitGroup
			for ti, target := range s.Targets {
				if !u.want[ti] {
					continue // not selected by this run
				}
				if u.replayed[ti] != nil {
					continue // landed in st.Results during replay
				}
				cells.Add(1)
				go func(ti int, target faultinj.Target) {
					defer cells.Done()
					defer func() {
						if p := recover(); p != nil {
							err := fmt.Errorf("cell %s/%s/%s/%s: panic: %v",
								u.cfg.Name, u.bench.Name, u.level, target.Name(), p)
							if !s.KeepGoing {
								cellPanics[ui*nt+ti] = err
								cancelRun()
								return
							}
							f := Failure{
								March: u.cfg.Name, Bench: u.bench.Name, Level: u.level.String(),
								Target: target.Name(), Stage: "cell", Err: err.Error(),
							}
							u.cellFailures[ti] = &f
							cell := campaign.Result{
								March: f.March, Bench: f.Bench, Level: f.Level, Target: f.Target,
								Skipped: "cell failed: " + err.Error(),
							}
							st.Results[ui*nt+ti] = cell
							jn.appendFailure(f)
							jn.appendCell(cell)
						}
					}()
					// The watchdog: a per-cell deadline layered on the
					// study context. When it fires, the campaign drains
					// and reports Interrupted while the study is alive.
					cellCtx := runCtx
					cancelCell := func() {}
					if s.CellTimeout > 0 {
						cellCtx, cancelCell = context.WithTimeout(runCtx, s.CellTimeout)
					}
					defer cancelCell()
					r := campaign.Run(u.exp, target, campaign.Options{
						Faults:  s.Faults,
						Seed:    cellSeed(s.Seed, u.cfg.Name, u.bench.Name, u.level.String(), target.Name()),
						Pool:    pool,
						Pruner:  u.pruner,
						Context: cellCtx,
					})
					r.March = u.cfg.Name
					r.Bench = u.bench.Name
					r.Level = u.level.String()
					if r.Interrupted {
						if runCtx.Err() != nil {
							return // study-wide cancellation: drop the partial cell
						}
						// Watchdog expiry: quarantine the cell as stuck.
						f := Failure{
							March: r.March, Bench: r.Bench, Level: r.Level, Target: r.Target,
							Stage: "cell", Err: "exceeded per-cell wall-clock deadline", Stuck: true,
						}
						stuck := campaign.Result{
							March: r.March, Bench: r.Bench, Level: r.Level, Target: r.Target,
							Skipped: "stuck: exceeded per-cell wall-clock deadline",
						}
						u.cellFailures[ti] = &f
						st.Results[ui*nt+ti] = stuck
						jn.appendFailure(f)
						jn.appendCell(stuck)
						rep.printf("  %-16s %-9s %-2s %-9s STUCK after %d/%d injections (watchdog)",
							r.March, r.Bench, r.Level, r.Target, r.Faults, s.Faults)
						return
					}
					st.Results[ui*nt+ti] = r
					jn.appendCell(r)
					rep.printf("  %-16s %-9s %-2s %-9s AVF %5.1f%%  (SDC %d, crash %d, timeout %d, assert %d)",
						r.March, r.Bench, r.Level, r.Target, r.AVF()*100, r.Counts.SDC, r.Counts.Crash,
						r.Counts.Timeout, r.Counts.Assert)
				}(ti, target)
			}
			cells.Wait()
			// Every cell of this unit is done: hand the unit's golden
			// checkpoint snapshots back to the buffer pools so the next
			// unit's checkpoints reuse them instead of allocating.
			u.exp.Close()
		}(ui, u)
	}
	wg.Wait()

	// A journal that stopped persisting invalidates the run's
	// durability guarantee; surface it over everything else.
	if err := jn.firstErr(); err != nil {
		return nil, nil, err
	}
	// Abort mode: the first failing unit or cell in enumeration order
	// determines the returned error, matching the serial loop.
	if !s.KeepGoing {
		for ui, u := range units {
			if u.err != nil && !isCancel(u.err) {
				return nil, nil, u.err
			}
			for ti := 0; ti < nt; ti++ {
				if err := cellPanics[ui*nt+ti]; err != nil {
					return nil, nil, err
				}
			}
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, nil, fmt.Errorf("study interrupted (completed cells are journaled; rerun with the same spec and journal to resume): %w", err)
	}
	// Assemble quarantine records in deterministic unit order.
	for _, u := range units {
		if u.failure != nil {
			st.Failed = append(st.Failed, *u.failure)
		}
		for _, cf := range u.cellFailures {
			if cf != nil {
				st.Failed = append(st.Failed, *cf)
			}
		}
	}
	return st, units, nil
}

// retryBackoff resolves the preparation-retry pacing policy:
// Spec.RetryBackoff when set, else the shared default.
func (s Spec) retryBackoff() backoff.Policy {
	if s.RetryBackoff != nil {
		return *s.RetryBackoff
	}
	return backoff.Default
}
