// Study-level parallel execution engine. The serial predecessor walked
// the 960 campaign cells of the full study one at a time, so the
// machine idled whenever a cell's tail drained. Run now (1) pipelines
// the compile + golden-run preparation of every (march, bench, level)
// unit and (2) dispatches every cell's injections onto one shared
// bounded worker pool, so cores stay busy across cell boundaries.
//
// Determinism: every result lands at the slice index the serial loop
// would have used, and every cell samples with the same cellSeed, so a
// saved study is byte-identical to a serial run regardless of
// Parallelism.
package core

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"sevsim/internal/binanalysis"
	"sevsim/internal/campaign"
	"sevsim/internal/compiler"
	"sevsim/internal/faultinj"
	"sevsim/internal/machine"
	"sevsim/internal/workloads"
)

// reporter serializes progress lines so concurrent cells never
// interleave partial output.
type reporter struct {
	mu sync.Mutex
	fn func(format string, args ...any)
}

func (r *reporter) printf(format string, args ...any) {
	if r.fn == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.fn(format, args...)
}

// prepUnit is one (march, bench, level) triple: a compile plus a golden
// run that gates the unit's campaign cells.
type prepUnit struct {
	cfg   machine.Config
	bench workloads.Benchmark
	size  int
	level compiler.OptLevel
	prune bool

	exp    *faultinj.Experiment
	golden Golden
	pruner faultinj.Pruner // non-nil only for prune units
	static StaticRF
	err    error
	ready  chan struct{} // closed once exp/golden/err are final
}

// run prepares the unit; stop short-circuits pending units once any
// unit has failed, mirroring the serial loop's early abort.
func (u *prepUnit) run(stop *atomic.Bool) {
	defer close(u.ready)
	if stop.Load() {
		return
	}
	tgt := compilerTarget(u.cfg)
	prog, err := compiler.Compile(u.bench.Source(u.size), u.bench.Name, u.level, tgt)
	if err != nil {
		u.err = fmt.Errorf("compile %s %v for %s: %w", u.bench.Name, u.level, u.cfg.Name, err)
		stop.Store(true)
		return
	}
	newExp := faultinj.NewExperiment
	if u.prune {
		newExp = faultinj.NewTracedExperiment
	}
	exp, err := newExp(u.cfg, prog)
	if err != nil {
		u.err = fmt.Errorf("golden %s %v on %s: %w", u.bench.Name, u.level, u.cfg.Name, err)
		stop.Store(true)
		return
	}
	u.exp = exp
	u.golden = goldenOf(u.cfg, u.bench.Name, u.level, prog, exp)
	if u.prune {
		a, err := binanalysis.AnalyzeWords(prog.Code)
		if err != nil {
			u.err = fmt.Errorf("analyze %s %v for %s: %w", u.bench.Name, u.level, u.cfg.Name, err)
			stop.Store(true)
			return
		}
		pr, err := binanalysis.NewRFPruner(a, exp)
		if err != nil {
			u.err = fmt.Errorf("pruner %s %v for %s: %w", u.bench.Name, u.level, u.cfg.Name, err)
			stop.Store(true)
			return
		}
		u.pruner = pr
		b := pr.Bound()
		u.static = StaticRF{
			March: u.cfg.Name, Bench: u.bench.Name, Level: u.level.String(),
			MaskedLB: b.MaskedLB, AVFUpperBound: b.AVFUpperBound,
			PrunableBits: b.PrunableBits, SpaceBits: b.SpaceBits,
		}
	}
}

// Run executes the study on a shared worker pool of Spec.Parallelism
// workers (<= 0: GOMAXPROCS). Compile and golden runs are pipelined
// with the injection campaigns: each unit's cells are dispatched the
// moment its golden run finishes, while other units are still
// preparing. Results are deterministic and identical to a serial
// (Parallelism: 1) run.
func (s Spec) Run() (*Study, error) {
	st := &Study{Faults: s.Faults}
	for _, m := range s.Machines {
		st.MachineNames = append(st.MachineNames, m.Name)
	}
	for _, b := range s.Benchmarks {
		st.BenchNames = append(st.BenchNames, b.Name)
	}
	for _, l := range s.Levels {
		st.LevelNames = append(st.LevelNames, l.String())
	}
	for _, t := range s.Targets {
		st.TargetNames = append(st.TargetNames, t.Name())
	}

	// Enumerate prep units in the serial loop's order; unit i owns
	// Goldens[i] and Results[i*len(Targets) ... (i+1)*len(Targets)).
	var units []*prepUnit
	for _, cfg := range s.Machines {
		for _, bench := range s.Benchmarks {
			size := bench.DefaultSize
			if s.Size != nil {
				size = s.Size(bench)
			}
			for _, level := range s.Levels {
				units = append(units, &prepUnit{
					cfg: cfg, bench: bench, size: size, level: level,
					prune: s.Prune,
					ready: make(chan struct{}),
				})
			}
		}
	}
	if len(units) == 0 {
		return st, nil
	}
	nt := len(s.Targets)
	st.Goldens = make([]Golden, len(units))
	st.Results = make([]campaign.Result, len(units)*nt)
	if s.Prune {
		st.Static = make([]StaticRF, len(units))
	}

	workers := s.Parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	pool := campaign.NewPool(workers)
	defer pool.Close()
	rep := &reporter{fn: s.Progress}

	// Feed the preparation work through the same pool as the
	// injections: compiles and golden runs for later units overlap with
	// the campaigns of earlier ones. The feeder is its own goroutine
	// because Submit blocks when the queue is full.
	var stop atomic.Bool
	go func() {
		for _, u := range units {
			u := u
			pool.Submit(func() { u.run(&stop) })
		}
	}()

	// One lightweight orchestrator per unit waits for its prep, then
	// fans the unit's cells out onto the pool. Orchestrators and cell
	// goroutines only wait and aggregate; all heavy work (simulation
	// runs) happens on pool workers, bounding CPU use at `workers`.
	var wg sync.WaitGroup
	for ui, u := range units {
		wg.Add(1)
		go func(ui int, u *prepUnit) {
			defer wg.Done()
			<-u.ready
			if u.err != nil || u.exp == nil {
				return
			}
			st.Goldens[ui] = u.golden
			if s.Prune {
				st.Static[ui] = u.static
			}
			rep.printf("golden %-16s %-9s %s: %d cycles (IPC %.2f)",
				u.cfg.Name, u.bench.Name, u.level, u.exp.GoldenCycles, u.exp.GoldenStats.Stats.IPC())
			var cells sync.WaitGroup
			for ti, target := range s.Targets {
				cells.Add(1)
				go func(ti int, target faultinj.Target) {
					defer cells.Done()
					r := campaign.Run(u.exp, target, campaign.Options{
						Faults: s.Faults,
						Seed:   cellSeed(s.Seed, u.cfg.Name, u.bench.Name, u.level.String(), target.Name()),
						Pool:   pool,
						Pruner: u.pruner,
					})
					r.March = u.cfg.Name
					r.Bench = u.bench.Name
					r.Level = u.level.String()
					st.Results[ui*nt+ti] = r
					rep.printf("  %-16s %-9s %-2s %-9s AVF %5.1f%%  (SDC %d, crash %d, timeout %d, assert %d)",
						r.March, r.Bench, r.Level, r.Target, r.AVF()*100, r.Counts.SDC, r.Counts.Crash,
						r.Counts.Timeout, r.Counts.Assert)
				}(ti, target)
			}
			cells.Wait()
		}(ui, u)
	}
	wg.Wait()

	// Match the serial loop's abort semantics: the first failing unit in
	// enumeration order determines the returned error.
	for _, u := range units {
		if u.err != nil {
			return nil, u.err
		}
	}
	return st, nil
}
