// Cell-granular work items: the interface the study engine exposes to
// distributed execution. A Spec decomposes into CellRefs (the exact
// cells Run would compute, in Run's deterministic order); RunCells
// executes any subset of them — preparing only the units those cells
// need — and returns self-contained CellOutcomes; and an Assembler
// merges outcomes arriving from any mix of workers, leases, and
// journal replays, in any completion order, back into a Study whose
// saved bytes are identical to a clean single-process Run of the same
// spec. The local scheduler and the remote coordinator/worker pair
// (internal/dispatch) both speak this interface.
package core

import (
	"context"
	"fmt"
	"strings"

	"sevsim/internal/campaign"
)

// CellRef addresses one campaign cell of a spec by name. It is the
// work-item key of the distributed engine: cell identity — not lease
// identity — is what completion is deduplicated on, so a cell computed
// twice by racing workers merges to one deterministic result.
type CellRef struct {
	March  string
	Bench  string
	Level  string
	Target string
}

// Key renders the ref as a stable "march/bench/level/target" string.
func (r CellRef) Key() string {
	return r.March + "/" + r.Bench + "/" + r.Level + "/" + r.Target
}

func (r CellRef) String() string { return r.Key() }

// unit returns the ref's (march, bench, level) unit key.
func (r CellRef) unit() cellKey {
	return cellKey{r.March, r.Bench, r.Level, ""}
}

func (r CellRef) cell() cellKey {
	return cellKey{r.March, r.Bench, r.Level, r.Target}
}

// Cells enumerates every campaign cell of the spec in the
// deterministic order Run computes them: machines, then benchmarks,
// then levels, then targets. Slicing this list is how a coordinator
// decomposes a study into lease-able work items.
func (s Spec) Cells() []CellRef {
	out := make([]CellRef, 0, len(s.Machines)*len(s.Benchmarks)*len(s.Levels)*len(s.Targets))
	for _, cfg := range s.Machines {
		for _, bench := range s.Benchmarks {
			for _, level := range s.Levels {
				for _, t := range s.Targets {
					out = append(out, CellRef{
						March: cfg.Name, Bench: bench.Name,
						Level: level.String(), Target: t.Name(),
					})
				}
			}
		}
	}
	return out
}

// CellOutcome is one completed work item: the cell's campaign result
// plus, on the first outcome of each (march, bench, level) unit in a
// RunCells call, the unit's golden record (and static bound, for prune
// studies) so the receiver can reassemble the full Study without
// re-running anything. Failures ride along instead of results when the
// spec runs keep-going: UnitFailure for a quarantined preparation
// (Result is then the deterministic skipped placeholder), CellFailure
// for a stuck or panicking cell.
type CellOutcome struct {
	Cell   CellRef
	Result campaign.Result

	Golden *Golden   `json:",omitempty"`
	Static *StaticRF `json:",omitempty"`

	UnitFailure *Failure `json:",omitempty"`
	CellFailure *Failure `json:",omitempty"`
}

// RunCells executes just the requested cells of the spec (in any
// order, duplicates rejected) and returns one outcome per request, in
// the spec's deterministic enumeration order. Only the units the cells
// touch are compiled and golden-run; every knob of the spec —
// parallelism, journaling with replay, keep-going quarantine, pruning,
// checkpoints — applies exactly as in Run, and each outcome is
// byte-identical to the corresponding slice of a full Run. A worker
// process given a lease of cells calls this with a local journal path,
// so a worker killed mid-lease resumes its own partial work on
// restart.
func (s Spec) RunCells(ctx context.Context, cells []CellRef) ([]CellOutcome, error) {
	if len(cells) == 0 {
		return nil, nil
	}
	valid := make(map[cellKey]bool, len(s.Machines)*len(s.Benchmarks)*len(s.Levels)*len(s.Targets))
	for _, ref := range s.Cells() {
		valid[ref.cell()] = true
	}
	sel := make(selection, len(cells))
	for _, ref := range cells {
		k := ref.cell()
		if !valid[k] {
			return nil, fmt.Errorf("core: cell %s is not in the spec", ref)
		}
		if sel[k] {
			return nil, fmt.Errorf("core: cell %s requested twice", ref)
		}
		sel[k] = true
	}

	st, units, err := s.run(ctx, sel)
	if err != nil {
		return nil, err
	}

	nt := len(s.Targets)
	out := make([]CellOutcome, 0, len(cells))
	for ui, u := range units {
		goldenAttached := false
		for ti, t := range s.Targets {
			if !u.want[ti] {
				continue
			}
			o := CellOutcome{
				Cell: CellRef{
					March: u.cfg.Name, Bench: u.bench.Name,
					Level: u.level.String(), Target: t.Name(),
				},
				Result: st.Results[ui*nt+ti],
			}
			switch {
			case u.failure != nil:
				o.UnitFailure = u.failure
			case !goldenAttached:
				g := st.Goldens[ui]
				o.Golden = &g
				if st.Static != nil {
					sc := st.Static[ui]
					o.Static = &sc
				}
				goldenAttached = true
			}
			if cf := u.cellFailures[ti]; cf != nil {
				o.CellFailure = cf
			}
			out = append(out, o)
		}
	}
	return out, nil
}

// goldenKind tracks what filled a unit's golden slot during assembly.
type goldenKind int

const (
	goldenNone        goldenKind = iota
	goldenPlaceholder            // quarantine placeholder (names only)
	goldenReal                   // a worker-computed golden record
)

// Assembler merges CellOutcomes back into a Study. Outcomes may arrive
// in any order, from any number of workers, and more than once (a
// lease-expiry race can make two workers compute the same cell): the
// first outcome per cell wins and later ones are reported as
// duplicates, so no cell is ever double-counted. When every cell of
// the spec is accounted for, Study returns a result whose saved bytes
// are identical to a clean single-process Run — the merge-determinism
// guarantee the distributed service rests on (values land at canonical
// slice indices, quarantines assemble in unit-enumeration order, and
// every value is itself deterministic given the spec).
type Assembler struct {
	spec Spec
	nt   int
	st   *Study

	cellIdx map[cellKey]int // cell -> flat result index
	unitIdx map[cellKey]int // unit -> unit index

	have        []bool // per flat index: outcome or quarantine recorded
	remaining   int
	haveGolden  []goldenKind
	unitFailure []*Failure
	cellFailure [][]*Failure
}

// NewAssembler prepares an empty assembly for the spec's full study.
func NewAssembler(spec Spec) *Assembler {
	st := &Study{Faults: spec.Faults}
	for _, m := range spec.Machines {
		st.MachineNames = append(st.MachineNames, m.Name)
	}
	for _, b := range spec.Benchmarks {
		st.BenchNames = append(st.BenchNames, b.Name)
	}
	for _, l := range spec.Levels {
		st.LevelNames = append(st.LevelNames, l.String())
	}
	for _, t := range spec.Targets {
		st.TargetNames = append(st.TargetNames, t.Name())
	}
	nt := len(spec.Targets)
	a := &Assembler{
		spec:    spec,
		nt:      nt,
		st:      st,
		cellIdx: map[cellKey]int{},
		unitIdx: map[cellKey]int{},
	}
	cells := spec.Cells()
	units := 0
	for i, ref := range cells {
		a.cellIdx[ref.cell()] = i
		if _, ok := a.unitIdx[ref.unit()]; !ok {
			a.unitIdx[ref.unit()] = units
			units++
		}
	}
	st.Goldens = make([]Golden, units)
	st.Results = make([]campaign.Result, len(cells))
	if spec.Prune {
		st.Static = make([]StaticRF, units)
	}
	a.have = make([]bool, len(cells))
	a.remaining = len(cells)
	a.haveGolden = make([]goldenKind, units)
	a.unitFailure = make([]*Failure, units)
	a.cellFailure = make([][]*Failure, units)
	for i := range a.cellFailure {
		a.cellFailure[i] = make([]*Failure, nt)
	}
	return a
}

// resolve maps an outcome/quarantine cell to its indices.
func (a *Assembler) resolve(ref CellRef) (idx, ui, ti int, err error) {
	idx, ok := a.cellIdx[ref.cell()]
	if !ok {
		return 0, 0, 0, fmt.Errorf("core: cell %s is not in the spec", ref)
	}
	ui, ok = a.unitIdx[ref.unit()]
	if !ok {
		return 0, 0, 0, fmt.Errorf("core: unit of cell %s is not in the spec", ref)
	}
	return idx, ui, idx % a.nt, nil
}

// Add merges one outcome. It reports whether the outcome was accepted:
// false with a nil error means the cell was already complete (the
// deduplicated double-completion of a lease-expiry race) and the new
// outcome was discarded.
func (a *Assembler) Add(o CellOutcome) (accepted bool, err error) {
	idx, ui, ti, err := a.resolve(o.Cell)
	if err != nil {
		return false, err
	}
	if a.have[idx] {
		return false, nil
	}
	a.have[idx] = true
	a.remaining--

	if f := o.UnitFailure; f != nil {
		// A quarantined preparation: this cell contributes the unit's
		// failure record (once) and the deterministic placeholder a
		// keep-going Run would record.
		if a.unitFailure[ui] == nil {
			a.unitFailure[ui] = f
		}
		a.st.Results[idx] = skippedCell(*f, o.Cell.Target)
		if a.haveGolden[ui] == goldenNone {
			a.st.Goldens[ui] = Golden{March: f.March, Bench: f.Bench, Level: f.Level}
			if a.st.Static != nil {
				a.st.Static[ui] = StaticRF{March: f.March, Bench: f.Bench, Level: f.Level}
			}
			a.haveGolden[ui] = goldenPlaceholder
		}
		return true, nil
	}

	a.st.Results[idx] = o.Result
	if o.Golden != nil && a.haveGolden[ui] != goldenReal {
		a.st.Goldens[ui] = *o.Golden
		if a.st.Static != nil && o.Static != nil {
			a.st.Static[ui] = *o.Static
		}
		a.haveGolden[ui] = goldenReal
	}
	if o.CellFailure != nil {
		a.cellFailure[ui][ti] = o.CellFailure
	}
	return true, nil
}

// Quarantine records a cell that will never complete — its leases
// expired or failed past the retry budget — with the failure that
// removed it from the study. Like Add it is first-wins idempotent, so
// a late completion racing a quarantine (or vice versa) resolves
// deterministically to whichever was recorded first.
func (a *Assembler) Quarantine(ref CellRef, f Failure) (accepted bool, err error) {
	idx, ui, ti, err := a.resolve(ref)
	if err != nil {
		return false, err
	}
	if a.have[idx] {
		return false, nil
	}
	a.have[idx] = true
	a.remaining--
	if f.Target == "" {
		// A unit-level failure quarantining this cell: record it once
		// and fill the unit placeholders, as a keep-going Run would.
		if a.unitFailure[ui] == nil {
			a.unitFailure[ui] = &f
		}
		a.st.Results[idx] = skippedCell(f, ref.Target)
		if a.haveGolden[ui] == goldenNone {
			a.st.Goldens[ui] = Golden{March: f.March, Bench: f.Bench, Level: f.Level}
			if a.st.Static != nil {
				a.st.Static[ui] = StaticRF{March: f.March, Bench: f.Bench, Level: f.Level}
			}
			a.haveGolden[ui] = goldenPlaceholder
		}
		return true, nil
	}
	a.cellFailure[ui][ti] = &f
	a.st.Results[idx] = campaign.Result{
		March: ref.March, Bench: ref.Bench, Level: ref.Level, Target: ref.Target,
		Skipped: "cell failed: " + f.Err,
	}
	return true, nil
}

// Done returns how many of the spec's cells are accounted for.
func (a *Assembler) Done() int { return len(a.have) - a.remaining }

// Total returns the spec's cell count.
func (a *Assembler) Total() int { return len(a.have) }

// Complete reports whether every cell is accounted for.
func (a *Assembler) Complete() bool { return a.remaining == 0 }

// Missing lists the cells not yet accounted for, in enumeration order.
func (a *Assembler) Missing() []CellRef {
	var out []CellRef
	for i, ref := range a.spec.Cells() {
		if !a.have[i] {
			out = append(out, ref)
		}
	}
	return out
}

// Study finalizes the assembly. It fails if any cell is still missing:
// a partial study must never masquerade as a complete one.
func (a *Assembler) Study() (*Study, error) {
	if a.remaining > 0 {
		missing := a.Missing()
		keys := make([]string, 0, min(len(missing), 5))
		for i, ref := range missing {
			if i == 5 {
				break
			}
			keys = append(keys, ref.Key())
		}
		return nil, fmt.Errorf("core: assembly incomplete: %d of %d cells missing (first: %s)",
			a.remaining, len(a.have), strings.Join(keys, ", "))
	}
	// Quarantine records assemble in unit-enumeration order, unit
	// failure first then per-target cell failures — exactly the order
	// the scheduler's final pass uses.
	st := a.st
	st.Failed = nil
	for _, ref := range a.spec.Cells() {
		if ref.Target != a.spec.Targets[0].Name() {
			continue // walk units once, via their first target
		}
		ui := a.unitIdx[ref.unit()]
		if f := a.unitFailure[ui]; f != nil {
			st.Failed = append(st.Failed, *f)
		}
		for _, cf := range a.cellFailure[ui] {
			if cf != nil {
				st.Failed = append(st.Failed, *cf)
			}
		}
	}
	return st, nil
}
