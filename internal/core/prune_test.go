package core

import (
	"bytes"
	"encoding/json"
	"testing"

	"sevsim/internal/compiler"
	"sevsim/internal/faultinj"
	"sevsim/internal/machine"
	"sevsim/internal/workloads"
)

// pruneSpec: one machine, two benchmarks, all four levels, RF only —
// the cells the static pruner can act on.
func pruneSpec(t *testing.T) Spec {
	t.Helper()
	qsort, err := workloads.ByName("qsort")
	if err != nil {
		t.Fatal(err)
	}
	gsm, err := workloads.ByName("gsm")
	if err != nil {
		t.Fatal(err)
	}
	rf, _ := faultinj.TargetByName("RF")
	return Spec{
		Machines:   []machine.Config{machine.CortexA15Like()},
		Benchmarks: []workloads.Benchmark{qsort, gsm},
		Levels:     compiler.Levels,
		Targets:    []faultinj.Target{rf},
		Faults:     80,
		Seed:       11,
		Size:       func(b workloads.Benchmark) int { return b.TestSize },
	}
}

// TestPruneEquivalence asserts the pruner's contract: a -prune study
// classifies every injection exactly as the unpruned study does (same
// seeds), while skipping a nonzero fraction of the simulations, and
// the recorded static AVF upper bound dominates the injected AVF on
// every cell.
func TestPruneEquivalence(t *testing.T) {
	spec := pruneSpec(t)
	base, err := spec.Run()
	if err != nil {
		t.Fatal(err)
	}
	spec.Prune = true
	pruned, err := spec.Run()
	if err != nil {
		t.Fatal(err)
	}

	if len(pruned.Results) != len(base.Results) {
		t.Fatalf("result count %d != %d", len(pruned.Results), len(base.Results))
	}
	totalPruned := 0
	for i := range base.Results {
		b, p := base.Results[i], pruned.Results[i]
		bc, pc := b.Counts, p.Counts
		if pc.PrunedReg+pc.PrunedBit+pc.PrunedDUE != pc.Pruned {
			t.Errorf("cell %s/%s/%s: pruned split %d+%d+%d != total %d",
				p.Bench, p.Level, p.Target, pc.PrunedReg, pc.PrunedBit, pc.PrunedDUE, pc.Pruned)
		}
		// the only fields allowed to differ from the unpruned run
		pc.Pruned, pc.PrunedReg, pc.PrunedBit, pc.PrunedDUE = 0, 0, 0, 0
		if bc != pc {
			t.Errorf("cell %s/%s/%s/%s classification changed: %+v -> %+v",
				b.March, b.Bench, b.Level, b.Target, b.Counts, p.Counts)
		}
		totalPruned += p.Counts.Pruned
		if m := p.Counts.PrunedReg + p.Counts.PrunedBit; m > p.Counts.Masked {
			t.Errorf("cell %s/%s/%s: masked-pruned %d exceeds masked %d",
				p.Bench, p.Level, p.Target, m, p.Counts.Masked)
		}
		if p.Counts.PrunedDUE > p.Counts.Crash {
			t.Errorf("cell %s/%s/%s: DUE-pruned %d exceeds crashes %d",
				p.Bench, p.Level, p.Target, p.Counts.PrunedDUE, p.Counts.Crash)
		}
	}
	if totalPruned == 0 {
		t.Error("pruner skipped zero injections across the whole study")
	}

	if len(pruned.Static) != len(pruned.Goldens) {
		t.Fatalf("static records %d != units %d", len(pruned.Static), len(pruned.Goldens))
	}
	if len(base.Static) != 0 {
		t.Errorf("unpruned study has %d static records, want none", len(base.Static))
	}
	for _, r := range pruned.Results {
		s, ok := pruned.StaticFor(r.March, r.Bench, r.Level)
		if !ok {
			t.Fatalf("missing static bound for %s/%s/%s", r.March, r.Bench, r.Level)
		}
		if s.MaskedLB <= 0 || s.MaskedLB >= 1 {
			t.Errorf("%s/%s: MaskedLB %v out of (0,1)", s.Bench, s.Level, s.MaskedLB)
		}
		if s.PrunableBits == 0 || s.PrunableBits > s.SpaceBits {
			t.Errorf("%s/%s: prunable bits %d / space %d", s.Bench, s.Level, s.PrunableBits, s.SpaceBits)
		}
		// Soundness: the static upper bound must dominate the injected AVF.
		if avf := r.AVF(); s.AVFUpperBound < avf {
			t.Errorf("%s/%s: static AVF bound %.4f below injected AVF %.4f",
				s.Bench, s.Level, s.AVFUpperBound, avf)
		}
		// The three-way bound must partition the space; the DUE slice
		// records only when the propagation analysis recorded anything.
		if sum := s.MaskedLB + s.DueLB + s.SDCUpperBound; sum < 0.999999 || sum > 1.000001 {
			t.Errorf("%s/%s: three-way bound does not partition: %.9f", s.Bench, s.Level, sum)
		}
		if s.DueLB < 0 || s.DuePrunableBits > s.SpaceBits {
			t.Errorf("%s/%s: implausible DUE bound %+v", s.Bench, s.Level, s)
		}
	}
}

// TestPruneDeterminismAcrossParallelism: a pruned study's saved JSON —
// including the static-bound records and the reg/bit pruned splits the
// shared analysis cache feeds — is byte-identical between the serial
// run and a parallel one.
func TestPruneDeterminismAcrossParallelism(t *testing.T) {
	spec := pruneSpec(t)
	spec.Benchmarks = spec.Benchmarks[:1]
	spec.Prune = true
	spec.Parallelism = 1
	base, err := spec.Run()
	if err != nil {
		t.Fatal(err)
	}
	baseJSON, err := json.Marshal(base)
	if err != nil {
		t.Fatal(err)
	}
	spec.Parallelism = 8
	st, err := spec.Run()
	if err != nil {
		t.Fatal(err)
	}
	j, err := json.Marshal(st)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(j, baseJSON) {
		t.Error("pruned study JSON not byte-identical between parallelism 1 and 8")
	}
}

// TestPruneDeterminism: a pruned study is reproducible run to run.
func TestPruneDeterminism(t *testing.T) {
	spec := pruneSpec(t)
	spec.Benchmarks = spec.Benchmarks[:1]
	spec.Levels = spec.Levels[:2]
	spec.Prune = true
	a, err := spec.Run()
	if err != nil {
		t.Fatal(err)
	}
	b, err := spec.Run()
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Results {
		if a.Results[i] != b.Results[i] {
			t.Fatalf("result %d differs:\n%+v\n%+v", i, a.Results[i], b.Results[i])
		}
	}
	for i := range a.Static {
		if a.Static[i] != b.Static[i] {
			t.Fatalf("static %d differs:\n%+v\n%+v", i, a.Static[i], b.Static[i])
		}
	}
}
