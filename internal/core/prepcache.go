package core

// Prep-artifact caching: a prepared unit (compiled binary, golden
// result, commit trace, checkpoint stream, static RF bound) is a pure
// function of the prep configuration, so it can be memoized on disk
// (internal/artcache) across studies, processes, and worker leases.
//
// The contract has two halves:
//
//   - The key (prepConfig.cacheKey) folds in *everything* that
//     determines the artifacts — full source text, machine config,
//     compiler target, optimization level, tracing, the checkpoint
//     budget, and the format/analysis versions. The cachekeycover lint
//     pass enforces completeness: every prepConfig field either feeds
//     cacheKey or carries a //cache:ephemeral annotation explaining
//     why the artifacts provably cannot depend on it.
//
//   - The bundle (encode/decodePrepBundle) round-trips bit-exactly:
//     a decoded checkpoint is strictly Equal to the recorded one, so
//     warm, cold, and disabled runs produce byte-identical studies.
//     To make that structural rather than hoped-for, the cold path
//     also decodes the bundle it just built — both paths run the
//     campaign from decoded state.

import (
	"encoding/json"
	"fmt"
	"math"

	"sevsim/internal/artcache"
	"sevsim/internal/binio"
	"sevsim/internal/faultinj"
	"sevsim/internal/machine"
)

// prepBundleVersion is folded into every cache key. Bump it whenever
// the serialized layout of any component changes (machine.Snap,
// cpu.CoreState, mem slabs, the bundle itself) so stale entries miss
// instead of decoding garbage.
const prepBundleVersion = 1

// analysisVersion versions the binanalysis semantics behind the cached
// static RF bound. Bump it when the ACE analysis or the pruner bound
// computation changes.
//
// Version 2: fault-propagation (must-DUE) analysis added the DueLB /
// SDCUpperBound / DuePrunableBits bound fields, the static memory
// model refined store-data liveness, and the entry known-bits state
// anchors the stack pointer — all of which change the serialized
// static bound, so version-1 bundles must miss.
const analysisVersion = 2

// prepConfig is everything that determines one prep unit's artifacts.
// Every field must feed cacheKey or be annotated //cache:ephemeral
// with a reason (enforced by the cachekeycover lint pass).
type prepConfig struct {
	Version  int            // prepBundleVersion: serialized-format generation
	Analysis int            // analysisVersion: static-bound semantics generation
	Machine  machine.Config // full microarchitecture: golden run and checkpoints depend on all of it
	Bench    string
	Size     int
	Source   string // full source text, not just (bench, size): survives workload generator changes
	Level    string
	XLEN     int // compiler target, explicit even though derived from Machine:
	NumRegs  int // the compile contract is (source, level, XLEN, NumArchRegs)
	Traced   bool
	// Checkpoints is the resolved budget (DefaultCheckpoints applied,
	// negatives normalized), so spellings of the same budget share an
	// entry.
	Checkpoints int

	// NoFastExit shapes how injections *use* the checkpoint stream,
	// not what the stream contains: the golden passes and the recorded
	// artifacts are identical either way.
	//
	//cache:ephemeral fast-exit consumes artifacts, it does not shape them; both modes decode the same bundle
	NoFastExit bool
}

// cacheKey renders the canonical key string. The artifact cache hashes
// keys itself and echoes the full key inside each entry, so the key
// only needs to be canonical, not compact: JSON of a fixed field list
// is deterministic (no maps anywhere in machine.Config).
func (pc prepConfig) cacheKey() string {
	b, err := json.Marshal(struct {
		Version     int
		Analysis    int
		Machine     machine.Config
		Bench       string
		Size        int
		Source      string
		Level       string
		XLEN        int
		NumRegs     int
		Traced      bool
		Checkpoints int
	}{
		pc.Version, pc.Analysis, pc.Machine, pc.Bench, pc.Size,
		pc.Source, pc.Level, pc.XLEN, pc.NumRegs, pc.Traced, pc.Checkpoints,
	})
	if err != nil {
		// Plain structs of scalars, strings, and slices cannot fail to
		// marshal; a failure here is a programming error.
		panic(fmt.Sprintf("core: prep cache key: %v", err))
	}
	return "prep\x00" + string(b)
}

// cacheConfig assembles the unit's prep configuration.
func (u *prepUnit) cacheConfig(src string) prepConfig {
	k := resolveCheckpoints(u.checkpoints)
	tgt := compilerTarget(u.cfg)
	return prepConfig{
		Version:     prepBundleVersion,
		Analysis:    analysisVersion,
		Machine:     u.cfg,
		Bench:       u.bench.Name,
		Size:        u.size,
		Source:      src,
		Level:       u.level.String(),
		XLEN:        tgt.XLEN,
		NumRegs:     tgt.NumArchRegs,
		Traced:      u.prune,
		Checkpoints: k,
		NoFastExit:  u.noFastExit,
	}
}

// expConfig keys a prepared experiment by the exact binary rather than
// by (source, level): the CLI entry points that compile outside the
// standard pipeline (custom pass sets in sevablate, ad-hoc sources)
// still get golden-run and checkpoint caching this way. The full code
// is in the key — not a digest of it — so the cache's key echo turns
// even a hash collision into a miss.
type expConfig struct {
	Version     int
	Machine     machine.Config
	Name        string
	Code        []uint32
	Entry       uint64
	GlobalSize  uint64
	Traced      bool
	Checkpoints int

	// NoFastExit shapes artifact consumption, not content; see
	// prepConfig.
	//
	//cache:ephemeral fast-exit consumes artifacts, it does not shape them; both modes decode the same bundle
	NoFastExit bool
}

// cacheKey renders the canonical key string (see prepConfig.cacheKey).
func (ec expConfig) cacheKey() string {
	b, err := json.Marshal(struct {
		Version     int
		Machine     machine.Config
		Name        string
		Code        []uint32
		Entry       uint64
		GlobalSize  uint64
		Traced      bool
		Checkpoints int
	}{
		ec.Version, ec.Machine, ec.Name, ec.Code, ec.Entry,
		ec.GlobalSize, ec.Traced, ec.Checkpoints,
	})
	if err != nil {
		panic(fmt.Sprintf("core: experiment cache key: %v", err))
	}
	return "exp\x00" + string(b)
}

// resolveCheckpoints normalizes a checkpoint budget the way the
// experiment constructor does, so spellings of the same budget share a
// cache entry.
func resolveCheckpoints(k int) int {
	switch {
	case k == 0:
		return faultinj.DefaultCheckpoints
	case k < 0:
		return -1
	}
	return k
}

// CachedExperiment builds a prepared experiment for an
// already-compiled program, consulting cache when non-nil: a hit skips
// the golden simulation and the checkpoint recording pass. Cached and
// fresh experiments drive byte-identical campaigns. A nil cache simply
// constructs the experiment.
func CachedExperiment(cache *artcache.Cache, cfg machine.Config, prog *machine.Program, opts faultinj.Options) (*faultinj.Experiment, error) {
	if cache == nil {
		return faultinj.NewExperimentOptions(cfg, prog, opts)
	}
	key := expConfig{
		Version:     prepBundleVersion,
		Machine:     cfg,
		Name:        prog.Name,
		Code:        prog.Code,
		Entry:       prog.Entry,
		GlobalSize:  prog.GlobalSize,
		Traced:      opts.Traced,
		Checkpoints: resolveCheckpoints(opts.Checkpoints),
		NoFastExit:  opts.NoFastExit,
	}.cacheKey()
	for attempt := 0; ; attempt++ {
		blob, err := cache.GetOrFill(key, func() ([]byte, error) {
			exp, err := faultinj.NewExperimentOptions(cfg, prog, opts)
			if err != nil {
				return nil, err
			}
			defer exp.Close()
			return encodePrepBundle(prog, exp.Artifacts(), nil), nil
		})
		if err != nil {
			return nil, err
		}
		dprog, art, _, derr := decodePrepBundle(blob, cfg)
		if derr == nil {
			exp, aerr := faultinj.NewExperimentFromArtifacts(cfg, dprog, art, opts)
			if aerr == nil {
				return exp, nil
			}
			derr = aerr
		}
		cache.Drop(key)
		if attempt > 0 {
			return nil, fmt.Errorf("core: cached experiment unusable after rebuild: %w", derr)
		}
	}
}

const prepBundleMagic = "SEVPREP1"

// encodePrepBundle serializes a prepared unit's products: the program,
// the optional static RF bound, and the golden-run artifacts.
func encodePrepBundle(prog *machine.Program, art faultinj.Artifacts, static *StaticRF) []byte {
	var w binio.Writer
	w.Raw([]byte(prepBundleMagic))

	w.String(prog.Name)
	w.U64(prog.Entry)
	w.U64(prog.GlobalSize)
	w.Uvarint(uint64(len(prog.Code)))
	w.Grow(4 * len(prog.Code))
	for _, word := range prog.Code {
		w.U32(word)
	}

	w.Bool(static != nil)
	if static != nil {
		w.String(static.March)
		w.String(static.Bench)
		w.String(static.Level)
		w.U64(math.Float64bits(static.MaskedLB))
		w.U64(math.Float64bits(static.AVFUpperBound))
		w.U64(static.PrunableBits)
		w.U64(static.SpaceBits)
		w.U64(math.Float64bits(static.RegMaskedLB))
		w.U64(math.Float64bits(static.RegAVFUpperBound))
		w.U64(static.RegPrunableBits)
		w.U64(math.Float64bits(static.DueLB))
		w.U64(math.Float64bits(static.SDCUpperBound))
		w.U64(static.DuePrunableBits)
	}

	art.EncodeTo(&w)
	return w.Bytes()
}

// decodePrepBundle reads a bundle written by encodePrepBundle,
// validating every component against cfg. On success the caller owns
// the artifacts' checkpoint stream (NewExperimentFromArtifacts takes
// it over).
func decodePrepBundle(blob []byte, cfg machine.Config) (*machine.Program, faultinj.Artifacts, *StaticRF, error) {
	fail := func(err error) (*machine.Program, faultinj.Artifacts, *StaticRF, error) {
		return nil, faultinj.Artifacts{}, nil, err
	}
	r := binio.NewReader(blob)
	if string(r.Raw(len(prepBundleMagic))) != prepBundleMagic {
		return fail(fmt.Errorf("core: prep bundle: bad magic"))
	}

	prog := &machine.Program{}
	prog.Name = r.String()
	prog.Entry = r.U64()
	prog.GlobalSize = r.U64()
	n := int(r.Uvarint())
	if n < 0 || n > r.Len()/4 {
		return fail(fmt.Errorf("core: prep bundle: code length %d exceeds remaining input", n))
	}
	prog.Code = make([]uint32, n)
	for i := range prog.Code {
		prog.Code[i] = r.U32()
	}
	if err := r.Err(); err != nil {
		return fail(fmt.Errorf("core: prep bundle program: %w", err))
	}

	var static *StaticRF
	if r.Bool() {
		static = &StaticRF{
			March:            r.String(),
			Bench:            r.String(),
			Level:            r.String(),
			MaskedLB:         math.Float64frombits(r.U64()),
			AVFUpperBound:    math.Float64frombits(r.U64()),
			PrunableBits:     r.U64(),
			SpaceBits:        r.U64(),
			RegMaskedLB:      math.Float64frombits(r.U64()),
			RegAVFUpperBound: math.Float64frombits(r.U64()),
			RegPrunableBits:  r.U64(),
			DueLB:            math.Float64frombits(r.U64()),
			SDCUpperBound:    math.Float64frombits(r.U64()),
			DuePrunableBits:  r.U64(),
		}
	}
	if err := r.Err(); err != nil {
		return fail(fmt.Errorf("core: prep bundle static: %w", err))
	}

	art, err := faultinj.DecodeArtifacts(r, cfg)
	if err != nil {
		return fail(fmt.Errorf("core: prep bundle: %w", err))
	}
	if r.Len() != 0 {
		if art.Stream != nil {
			art.Stream.Release()
		}
		return fail(fmt.Errorf("core: prep bundle: %d trailing bytes", r.Len()))
	}
	return prog, art, static, nil
}
