package core

import (
	"bytes"
	"context"
	"errors"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"sevsim/internal/compiler"
	"sevsim/internal/machine"
)

func TestCellsEnumerationMatchesRunOrder(t *testing.T) {
	spec := tinySpec(t)
	cells := spec.Cells()
	st, err := spec.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != len(st.Results) {
		t.Fatalf("Cells() has %d entries, Run produced %d results", len(cells), len(st.Results))
	}
	for i, ref := range cells {
		r := st.Results[i]
		got := CellRef{March: r.March, Bench: r.Bench, Level: r.Level, Target: r.Target}
		if got != ref {
			t.Fatalf("cell %d: Cells() says %s, Run produced %s", i, ref, got)
		}
	}
}

// TestRunCellsSubsetMatchesFullRun is the distribution correctness
// anchor: any subset of cells, computed in isolation, must be
// element-identical to the corresponding slice of a full run — that is
// what lets a coordinator scatter cells across workers and still merge
// a byte-identical study.
func TestRunCellsSubsetMatchesFullRun(t *testing.T) {
	spec := tinySpec(t)
	full, err := spec.Run()
	if err != nil {
		t.Fatal(err)
	}
	cells := spec.Cells()
	// A deliberately awkward subset: one full unit, one cell of
	// another unit, and a lone cell from the last unit.
	subset := []CellRef{cells[0], cells[1], cells[2], cells[4], cells[len(cells)-2]}
	outcomes, err := spec.RunCells(context.Background(), subset)
	if err != nil {
		t.Fatal(err)
	}
	if len(outcomes) != len(subset) {
		t.Fatalf("got %d outcomes for %d cells", len(outcomes), len(subset))
	}
	idx := map[CellRef]int{}
	for i, ref := range cells {
		idx[ref] = i
	}
	seenGolden := map[cellKey]bool{}
	for _, o := range outcomes {
		i, ok := idx[o.Cell]
		if !ok {
			t.Fatalf("outcome for unrequested cell %s", o.Cell)
		}
		if !reflect.DeepEqual(o.Result, full.Results[i]) {
			t.Errorf("cell %s differs from full run:\n got %+v\nwant %+v", o.Cell, o.Result, full.Results[i])
		}
		if o.Golden != nil {
			if seenGolden[o.Cell.unit()] {
				t.Errorf("unit of %s attached its golden twice", o.Cell)
			}
			seenGolden[o.Cell.unit()] = true
			ui := i / len(spec.Targets)
			if !reflect.DeepEqual(*o.Golden, full.Goldens[ui]) {
				t.Errorf("golden of %s differs from full run", o.Cell)
			}
		}
	}
	if len(seenGolden) != 3 {
		t.Errorf("goldens attached for %d units, want 3", len(seenGolden))
	}
}

func TestRunCellsRejectsBadRefs(t *testing.T) {
	spec := tinySpec(t)
	cells := spec.Cells()
	if _, err := spec.RunCells(context.Background(), []CellRef{{March: "nope"}}); err == nil {
		t.Error("unknown cell not rejected")
	}
	if _, err := spec.RunCells(context.Background(), []CellRef{cells[0], cells[0]}); err == nil {
		t.Error("duplicate cell not rejected")
	}
	out, err := spec.RunCells(context.Background(), nil)
	if err != nil || out != nil {
		t.Errorf("empty request: got %v, %v", out, err)
	}
}

// TestAssemblerRebuildsByteIdenticalStudy is the merge-determinism
// guarantee end to end: cells computed in scattered batches, merged in
// a hostile order with duplicates, must reassemble to the exact bytes
// a clean single-process run saves.
func TestAssemblerRebuildsByteIdenticalStudy(t *testing.T) {
	spec := tinySpec(t)
	full, err := spec.Run()
	if err != nil {
		t.Fatal(err)
	}
	want := saveBytes(t, full)

	cells := spec.Cells()
	// Three "workers": interleaved cell assignment, so every worker
	// touches most units and goldens arrive from multiple sources.
	var batches [3][]CellRef
	for i, ref := range cells {
		batches[i%3] = append(batches[i%3], ref)
	}
	var outcomes []CellOutcome
	for _, batch := range batches {
		out, err := spec.RunCells(context.Background(), batch)
		if err != nil {
			t.Fatal(err)
		}
		outcomes = append(outcomes, out...)
	}

	asm := NewAssembler(spec)
	if asm.Total() != len(cells) {
		t.Fatalf("assembler total %d, want %d", asm.Total(), len(cells))
	}
	// Merge in reverse order, replaying every fourth outcome as the
	// duplicate a lease-expiry race would produce.
	for i := len(outcomes) - 1; i >= 0; i-- {
		accepted, err := asm.Add(outcomes[i])
		if err != nil {
			t.Fatal(err)
		}
		if !accepted {
			t.Fatalf("outcome %s rejected as duplicate on first add", outcomes[i].Cell)
		}
		if i%4 == 0 {
			accepted, err := asm.Add(outcomes[i])
			if err != nil {
				t.Fatal(err)
			}
			if accepted {
				t.Fatalf("duplicate of %s accepted", outcomes[i].Cell)
			}
		}
	}
	if !asm.Complete() {
		t.Fatalf("assembler incomplete: missing %v", asm.Missing())
	}
	st, err := asm.Study()
	if err != nil {
		t.Fatal(err)
	}
	got := saveBytes(t, st)
	if !bytes.Equal(got, want) {
		t.Fatalf("assembled study differs from single-process run (%d vs %d bytes)", len(got), len(want))
	}
}

// TestAssemblerKeepGoingQuarantine checks that unit failures carried
// by outcomes assemble to the same bytes a keep-going single-process
// run records for them.
func TestAssemblerKeepGoingQuarantine(t *testing.T) {
	spec := tinySpec(t)
	spec.KeepGoing = true
	// A stateless injected failure (unlike withCompileFailure's
	// counter) so the baseline run and the RunCells run quarantine
	// with identical error text.
	orig := compileUnit
	t.Cleanup(func() { compileUnit = orig })
	compileUnit = func(src, name string, l compiler.OptLevel, tgt compiler.Target) (*machine.Program, error) {
		if name == "gsm" && l == compiler.O2 {
			return nil, errors.New("injected compile failure")
		}
		return orig(src, name, l, tgt)
	}

	full, err := spec.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(full.Failed) == 0 {
		t.Fatal("injected failure did not quarantine anything")
	}
	want := saveBytes(t, full)

	outcomes, err := spec.RunCells(context.Background(), spec.Cells())
	if err != nil {
		t.Fatal(err)
	}
	asm := NewAssembler(spec)
	for _, o := range outcomes {
		if _, err := asm.Add(o); err != nil {
			t.Fatal(err)
		}
	}
	st, err := asm.Study()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(saveBytes(t, st), want) {
		t.Fatal("assembled keep-going study differs from single-process run")
	}
}

func TestAssemblerRefusesPartialStudy(t *testing.T) {
	spec := tinySpec(t)
	asm := NewAssembler(spec)
	if _, err := asm.Study(); err == nil || !strings.Contains(err.Error(), "incomplete") {
		t.Fatalf("partial assembly not refused: %v", err)
	}
	if got := len(asm.Missing()); got != asm.Total() {
		t.Fatalf("missing %d, want %d", got, asm.Total())
	}
}

// TestAssemblerQuarantineVsCompletionRace pins the first-wins contract
// between Quarantine and a late completion: whichever lands first is
// the cell's fate, deterministically.
func TestAssemblerQuarantineVsCompletionRace(t *testing.T) {
	spec := tinySpec(t)
	cells := spec.Cells()
	outcomes, err := spec.RunCells(context.Background(), cells[:1])
	if err != nil {
		t.Fatal(err)
	}

	// Quarantine first, then the late completion arrives: dropped.
	asm := NewAssembler(spec)
	f := Failure{March: cells[0].March, Bench: cells[0].Bench, Level: cells[0].Level,
		Target: cells[0].Target, Stage: "dispatch", Err: "lease expired"}
	if ok, err := asm.Quarantine(cells[0], f); err != nil || !ok {
		t.Fatalf("quarantine: %v %v", ok, err)
	}
	if ok, err := asm.Add(outcomes[0]); err != nil || ok {
		t.Fatalf("late completion after quarantine: accepted=%v err=%v", ok, err)
	}

	// Completion first, then the quarantine arrives: dropped.
	asm = NewAssembler(spec)
	if ok, err := asm.Add(outcomes[0]); err != nil || !ok {
		t.Fatalf("completion: %v %v", ok, err)
	}
	if ok, err := asm.Quarantine(cells[0], f); err != nil || ok {
		t.Fatalf("late quarantine after completion: accepted=%v err=%v", ok, err)
	}
}

// TestRunCellsJournalReplay is the worker-death recovery contract: a
// worker's local journal makes a re-run of the same lease replay its
// finished cells (identical outcomes, no recompute), and a wider lease
// replays the overlap while computing only the new cells.
func TestRunCellsJournalReplay(t *testing.T) {
	spec := tinySpec(t)
	spec.Machines = spec.Machines[:1]
	spec.Journal = filepath.Join(t.TempDir(), "worker.journal")
	cells := spec.Cells()

	first, err := spec.RunCells(context.Background(), cells[:4])
	if err != nil {
		t.Fatal(err)
	}

	// Same lease again — the restarted worker: everything replays.
	again, err := spec.RunCells(context.Background(), cells[:4])
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first, again) {
		t.Fatal("replayed lease outcomes differ from the original run")
	}

	// A wider lease: the overlap replays, the rest computes fresh, and
	// everything matches a journal-free run of the same cells.
	wide, err := spec.RunCells(context.Background(), cells[:6])
	if err != nil {
		t.Fatal(err)
	}
	fresh := spec
	fresh.Journal = ""
	want, err := fresh.RunCells(context.Background(), cells[:6])
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(wide, want) {
		t.Fatal("journaled wide lease differs from a journal-free run")
	}
}
