package core

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"sevsim/internal/artcache"
	"sevsim/internal/machine"
)

// cacheSpec is tinySpec shrunk to one machine so the cache tests stay
// fast while still exercising prune analysis and every prep product.
func cacheSpec(t *testing.T) Spec {
	t.Helper()
	spec := tinySpec(t)
	spec.Machines = spec.Machines[:1]
	spec.Prune = true
	return spec
}

func openCache(t *testing.T, dir string) *artcache.Cache {
	t.Helper()
	c, err := artcache.Open(dir, artcache.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestCacheEquivalenceByteIdentical is the cache's core correctness
// claim: disabled, cold, and warm runs — at serial and high
// parallelism — produce byte-identical study.json.
func TestCacheEquivalenceByteIdentical(t *testing.T) {
	spec := cacheSpec(t)
	baseline, err := spec.Run()
	if err != nil {
		t.Fatal(err)
	}
	want := saveBytes(t, baseline)

	dir := t.TempDir()
	for _, par := range []int{1, 8} {
		for _, label := range []string{"cold", "warm"} {
			if label == "cold" {
				os.RemoveAll(dir)
			}
			s := spec
			s.Parallelism = par
			s.Cache = openCache(t, dir)
			st, err := s.Run()
			if err != nil {
				t.Fatalf("parallel %d %s: %v", par, label, err)
			}
			if !bytes.Equal(saveBytes(t, st), want) {
				t.Fatalf("parallel %d %s cache run differs from uncached baseline", par, label)
			}
			stats := s.Cache.Stats()
			units := len(spec.Machines) * len(spec.Benchmarks) * len(spec.Levels)
			if label == "cold" && stats.Puts != uint64(units) {
				t.Fatalf("cold run stored %d bundles, want %d", stats.Puts, units)
			}
			if label == "warm" && (stats.Hits != uint64(units) || stats.Misses != 0) {
				t.Fatalf("warm run: %s, want %d pure hits", stats, units)
			}
		}
	}
}

// TestCacheCorruptEntriesRebuilt damages every cached bundle — bit
// flips in one, truncation in another, all of them on the second pass
// — and asserts the study is still byte-identical: damaged entries are
// detected, discarded, and transparently rebuilt.
func TestCacheCorruptEntriesRebuilt(t *testing.T) {
	spec := cacheSpec(t)
	baseline, err := spec.Run()
	if err != nil {
		t.Fatal(err)
	}
	want := saveBytes(t, baseline)

	dir := t.TempDir()
	s := spec
	s.Cache = openCache(t, dir)
	if _, err := s.Run(); err != nil {
		t.Fatal(err)
	}

	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	damaged := 0
	for i, e := range entries {
		if !strings.HasSuffix(e.Name(), ".art") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if i%2 == 0 {
			raw[len(raw)/2] ^= 0x41 // payload bit flip
		} else {
			raw = raw[:len(raw)-7] // torn write
		}
		if err := os.WriteFile(path, raw, 0o644); err != nil {
			t.Fatal(err)
		}
		damaged++
	}
	if damaged == 0 {
		t.Fatal("no cache entries to damage")
	}

	s = spec
	s.Parallelism = 8
	s.Cache = openCache(t, dir)
	st, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(saveBytes(t, st), want) {
		t.Fatal("run over damaged cache differs from baseline")
	}
	if stats := s.Cache.Stats(); stats.Corrupt != uint64(damaged) {
		t.Fatalf("discarded %d corrupt entries, want %d (%s)", stats.Corrupt, damaged, stats)
	}
}

// TestCacheEvictionMidStudy bounds the cache far below one bundle, so
// every Put immediately evicts its predecessors; the study must still
// match the baseline and never error.
func TestCacheEvictionMidStudy(t *testing.T) {
	spec := cacheSpec(t)
	baseline, err := spec.Run()
	if err != nil {
		t.Fatal(err)
	}
	want := saveBytes(t, baseline)

	dir := t.TempDir()
	c, err := artcache.Open(dir, artcache.Options{MaxBytes: 1}) // nothing survives
	if err != nil {
		t.Fatal(err)
	}
	s := spec
	s.Parallelism = 4
	s.Cache = c
	st, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(saveBytes(t, st), want) {
		t.Fatal("eviction-pressured run differs from baseline")
	}
	if stats := c.Stats(); stats.Evictions == 0 {
		t.Fatalf("expected evictions under a 1-byte bound, got %s", stats)
	}
	// A second run over the starved cache still works (all misses).
	st2, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(saveBytes(t, st2), want) {
		t.Fatal("second eviction-pressured run differs from baseline")
	}
}

// TestCacheMissesStaleAnalysisVersion proves a warm cache written
// under the previous analysis version is never served: the version is
// part of the prep cache key, so bundles carrying pre-propagation
// static bounds (no DUE/SDC fields) miss instead of leaking stale
// bounds into a new study.
func TestCacheMissesStaleAnalysisVersion(t *testing.T) {
	if analysisVersion < 2 {
		t.Fatalf("analysisVersion = %d, want >= 2 (fault-propagation bound fields)", analysisVersion)
	}
	pc := prepConfig{
		Version:     prepBundleVersion,
		Analysis:    analysisVersion,
		Machine:     machine.CortexA15Like(),
		Bench:       "matmul",
		Size:        8,
		Source:      "int main() { return 0; }",
		Level:       "O2",
		XLEN:        64,
		NumRegs:     32,
		Traced:      true,
		Checkpoints: 4,
	}
	old := pc
	old.Analysis = analysisVersion - 1
	if pc.cacheKey() == old.cacheKey() {
		t.Fatal("analysis version does not feed the prep cache key")
	}

	// A cache warmed exclusively under the old version's key must miss
	// for the current key (and still hit for its own, proving the
	// version is the only discriminator here).
	c := openCache(t, t.TempDir())
	if err := c.Put(old.cacheKey(), []byte("stale version-1 bundle")); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get(pc.cacheKey()); ok {
		t.Fatal("current analysis version was served a stale bundle")
	}
	if _, ok := c.Get(old.cacheKey()); !ok {
		t.Fatal("old-version entry should still hit its own key")
	}
	if stats := c.Stats(); stats.Misses != 1 || stats.Hits != 1 {
		t.Fatalf("stats = %s, want exactly 1 miss (new key) and 1 hit (old key)", stats)
	}
}

// TestCacheSharedAcrossResume checks the satellite bugfix: a journaled
// study killed after its goldens are recorded used to re-run the full
// prep (compile + two golden passes) for every unit with pending
// cells. With a cache the re-prep is a pure artifact load.
func TestCacheSharedAcrossResume(t *testing.T) {
	spec := cacheSpec(t)
	baseline, err := spec.Run()
	if err != nil {
		t.Fatal(err)
	}
	want := saveBytes(t, baseline)

	dir := t.TempDir()
	s := spec
	s.Journal = filepath.Join(t.TempDir(), "journal.jsonl")
	s.Cache = openCache(t, dir)
	units := len(spec.Machines) * len(spec.Benchmarks) * len(spec.Levels)

	// The shared helper kills and resumes the journaled study until it
	// completes. Every resume re-preps units whose cells are pending —
	// the path that used to re-run the full prep — so with the cache,
	// each unit's bundle must have been *built* exactly once across all
	// attempts, no matter where the kills landed.
	st, _ := runWithRandomKills(t, s, 3)
	if !bytes.Equal(saveBytes(t, st), want) {
		t.Fatal("killed-and-resumed cached study differs from baseline")
	}
	if stats := s.Cache.Stats(); stats.Puts != uint64(units) {
		t.Fatalf("units re-prepped despite warm cache: %s (want %d puts)", stats, units)
	}
}
