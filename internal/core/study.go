// Package core orchestrates the paper's characterization study end to
// end: it compiles every benchmark at every optimization level for each
// microarchitecture, runs the fault-free golden simulations, executes
// the statistical fault-injection campaigns for every hardware
// structure field, and exposes the aggregations behind each figure
// (AVF, weighted AVF, FIT, FPE, ECC scenarios).
package core

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"os"
	"sync"
	"time"

	"sevsim/internal/artcache"
	"sevsim/internal/campaign"
	"sevsim/internal/compiler"
	"sevsim/internal/dispatch/backoff"
	"sevsim/internal/faultinj"
	"sevsim/internal/journal"
	"sevsim/internal/machine"
	"sevsim/internal/workloads"
)

// Spec configures a study.
type Spec struct {
	Machines   []machine.Config
	Benchmarks []workloads.Benchmark
	Levels     []compiler.OptLevel
	Targets    []faultinj.Target

	// Faults per campaign cell. The paper uses 2,000 (2.88% margin at
	// 99% confidence); scaled-down studies report the wider margin.
	Faults int
	Seed   int64

	// Size overrides the benchmark scale; nil uses DefaultSize. The
	// journal fingerprints the *resolved* sizes (see Spec.fingerprint
	// calling resolveSizes), so two specs whose Size funcs differ but
	// resolve identically share a journal.
	Size func(workloads.Benchmark) int

	// Parallelism sizes the study-wide worker pool that all compiles,
	// golden runs, and injections share (<=0: GOMAXPROCS). Results are
	// identical at every setting; see Run.
	//
	//journal:ephemeral execution shape only; results are byte-identical at every parallelism
	Parallelism int

	// Progress, when non-nil, receives human-readable progress lines.
	// Lines are serialized, but arrive in completion order, which under
	// Parallelism > 1 differs from the deterministic result order.
	//
	//journal:ephemeral progress observer; never reaches results
	Progress func(format string, args ...any)

	// Prune enables the static ACE pruner: golden runs record commit
	// traces, each unit gets a binary-level liveness analysis, and RF
	// injections that provably land in dead registers are classified
	// Masked without simulation (campaign.Counts.Pruned counts them).
	// The study additionally records per-unit static RF bounds
	// (Study.Static). Outcome classifications are identical with and
	// without pruning; only the work to obtain them changes.
	Prune bool

	// Checkpoints is the per-cell golden checkpoint budget for injection
	// fast-forward (see faultinj.Options.Checkpoints): 0 uses
	// faultinj.DefaultCheckpoints, a negative value disables
	// checkpointing so every injection simulates from cycle 0.
	// Classifications are byte-identical at every setting, so the
	// journal does not fingerprint it and a study may be resumed under a
	// different value.
	//
	//journal:ephemeral classifications are byte-identical at any checkpoint budget (TestCheckpointEquivalence), so a resume may change it
	Checkpoints int

	// NoFastExit disables the early-convergence Masked exit while
	// keeping checkpoint fast-forward. Like Checkpoints, it changes only
	// the work done, never the results.
	//
	//journal:ephemeral work-shaping only; the Masked fast exit synthesizes the result the full run would produce
	NoFastExit bool

	// Journal, when non-empty, is the path of a durable JSONL journal:
	// every completed prep-unit golden and campaign cell is appended
	// (checksummed, fsync'd) as it finishes, and a later run with the
	// same spec replays the journal to skip already-finished work. A
	// study killed at any point and resumed this way produces a
	// byte-identical study.json to an uninterrupted run. A journal
	// recorded under a different spec is rejected.
	//
	//journal:ephemeral the journal's own path; where results are logged, not what they are
	Journal string

	// KeepGoing quarantines failures instead of aborting the study: a
	// unit whose compile, golden run, or analysis fails (after Retries
	// bounded retries) is recorded in Study.Failed, its cells are marked
	// skipped, and every other cell completes exactly as in a clean
	// run. Without KeepGoing the first failure cancels the study, which
	// is the historical behavior.
	//
	//journal:ephemeral failure-handling policy; cells that complete are byte-identical either way, and quarantined failures are journaled as such
	KeepGoing bool

	// Retries is the number of additional preparation attempts after a
	// unit's first failure, for riding out transient faults (0: fail on
	// the first error). The attempt count is recorded in the Failure.
	// Attempts after the first wait out the shared exponential backoff
	// with jitter (RetryBackoff), so a transient fault gets time to
	// clear instead of burning every retry back to back.
	//
	//journal:ephemeral retry budget for transient host faults; successful results are independent of it
	Retries int

	// RetryBackoff overrides the pacing between preparation retries
	// (nil: backoff.Default). The jitter is sampled from a
	// deterministic per-unit seed, so retry schedules — like results —
	// reproduce run to run.
	//
	//journal:ephemeral retry pacing only; it shapes when attempts happen, never what they produce
	RetryBackoff *backoff.Policy

	// CellTimeout, when positive, arms a per-cell watchdog: a campaign
	// cell that exceeds this wall-clock budget is abandoned (in-flight
	// injections drain), recorded in Study.Failed as stuck, and marked
	// skipped — instead of hanging the whole pool. Stuck classification
	// depends on the wall clock, so enable it only for unattended runs
	// where liveness beats strict reproducibility.
	//
	//journal:ephemeral wall-clock watchdog for unattended runs; deliberately outside the reproducibility contract
	CellTimeout time.Duration

	// Cache, when non-nil, memoizes prep artifacts on disk (compiled
	// binary, golden result, commit trace, checkpoint stream, static RF
	// bound) keyed by everything that determines them — see
	// prepConfig.cacheKey. A warm unit skips its compile and both
	// golden passes. Cold, warm, and disabled runs produce byte-
	// identical studies: a hit decodes to state strictly equal to a
	// fresh prep, and corrupt or stale entries are discarded and
	// rebuilt (TestCacheEquivalenceByteIdentical).
	//
	//journal:ephemeral artifact source only; a cache hit decodes to state bit-identical to a fresh prep, so no classification can depend on it
	Cache *artcache.Cache
}

// DefaultSpec returns the full study of the paper at a configurable
// fault count: both microarchitectures, all eight benchmarks, four
// levels, and all fifteen structure fields.
func DefaultSpec(faults int) Spec {
	return Spec{
		Machines:   machine.Configs(),
		Benchmarks: workloads.All(),
		Levels:     compiler.Levels,
		Targets:    faultinj.Targets(),
		Faults:     faults,
		Seed:       2021, // the paper's publication year; any value works
	}
}

// Golden records one fault-free run.
type Golden struct {
	March string
	Bench string
	Level string

	Cycles      uint64
	CodeWords   int
	Committed   uint64
	IPC         float64
	Mispredicts uint64
	L1DMissRate float64
	AvgPRFLive  float64
	AvgROBOcc   float64
	AvgIQOcc    float64
	AvgLQOcc    float64
	AvgSQOcc    float64
}

// Study is the complete result set.
type Study struct {
	MachineNames []string
	BenchNames   []string
	LevelNames   []string
	TargetNames  []string
	Faults       int

	Goldens []Golden
	Results []campaign.Result

	// Static holds one static RF vulnerability bound per (march, bench,
	// level) unit, parallel to Goldens. Populated only by Prune studies;
	// empty otherwise (and omitted from saved JSON).
	Static []StaticRF `json:",omitempty"`

	// Failed records the units and cells quarantined by a keep-going
	// run (Spec.KeepGoing) or flagged stuck by the cell watchdog, in
	// unit-enumeration order. Empty for clean or aborting studies, and
	// omitted from saved JSON so historical files are byte-stable.
	Failed []Failure `json:",omitempty"`

	// Lazily built lookup indexes; the aggregation accessors are called
	// per cell by every figure, and a linear scan over the full study's
	// 960 results per lookup made them O(n²).
	indexOnce sync.Once
	resultIdx map[cellKey]int
	goldenIdx map[cellKey]int
}

// StaticRF is the static three-way outcome bound for one unit's
// register file: the provably-masked fraction of the (cycle x bit)
// space lower-bounds the Masked rate, the provably-crash-certain
// fraction lower-bounds the DUE rate, and what neither proof class
// covers upper-bounds the SDC rate (MaskedLB + DueLB + SDCUpperBound
// == 1). The Masked complement upper-bounds the injected RF AVF.
type StaticRF struct {
	March string
	Bench string
	Level string

	// Headline (bit-granular) bound: known-bits + bit-level liveness.
	MaskedLB      float64
	AVFUpperBound float64
	PrunableBits  uint64
	SpaceBits     uint64

	// Register-granular bound from the same dead-register analysis the
	// original RFPruner used; MaskedLB >= RegMaskedLB on every unit by
	// construction, and the gap measures what bit granularity bought.
	RegMaskedLB      float64
	RegAVFUpperBound float64
	RegPrunableBits  uint64

	// Three-way refinement from the fault-propagation (must-DUE)
	// analysis: DueLB lower-bounds the crash-certain fraction and
	// SDCUpperBound caps what remains for SDC once both proof classes
	// are subtracted. Zero on records written before the propagation
	// analysis existed.
	DueLB           float64
	SDCUpperBound   float64
	DuePrunableBits uint64
}

// Failure is one quarantined unit or cell: the error that removed it
// from the study without aborting the rest.
type Failure struct {
	March string
	Bench string
	Level string
	// Target is empty for unit-level (compile/golden/analysis) failures
	// and names the structure field for per-cell failures.
	Target string `json:",omitempty"`

	// Stage is where the failure happened: "compile", "golden",
	// "analyze", or "cell".
	Stage string
	Err   string
	// Retries is how many extra attempts were made before quarantining
	// (bounded by Spec.Retries).
	Retries int `json:",omitempty"`
	// Stuck marks a cell abandoned by the watchdog for exceeding
	// Spec.CellTimeout rather than failing outright.
	Stuck bool `json:",omitempty"`
}

// FailuresFor returns the quarantined failures recorded for one unit.
func (st *Study) FailuresFor(march, bench, level string) []Failure {
	var out []Failure
	for _, f := range st.Failed {
		if f.March == march && f.Bench == bench && f.Level == level {
			out = append(out, f)
		}
	}
	return out
}

// StaticFor returns the static RF bound for a cell, when recorded.
func (st *Study) StaticFor(march, bench, level string) (StaticRF, bool) {
	for _, s := range st.Static {
		if s.March == march && s.Bench == bench && s.Level == level {
			return s, true
		}
	}
	return StaticRF{}, false
}

// cellKey addresses one campaign cell (Target empty for goldens).
type cellKey struct {
	March, Bench, Level, Target string
}

// compilerTarget derives the backend target from a machine config.
func compilerTarget(cfg machine.Config) compiler.Target {
	return compiler.Target{XLEN: cfg.CPU.XLEN, NumArchRegs: cfg.CPU.NumArchRegs}
}

// cellSeed derives a deterministic per-cell seed.
func cellSeed(master int64, parts ...string) int64 {
	h := fnv.New64a()
	for _, p := range parts {
		h.Write([]byte(p))
		h.Write([]byte{0})
	}
	return master ^ int64(h.Sum64()&0x7fffffffffffffff)
}

func goldenOf(cfg machine.Config, bench string, level compiler.OptLevel,
	prog *machine.Program, exp *faultinj.Experiment) Golden {
	stats := exp.GoldenStats.Stats
	cyc := float64(stats.Cycles)
	l1d := exp.GoldenStats.L1D
	missRate := 0.0
	if l1d.Hits+l1d.Misses > 0 {
		missRate = float64(l1d.Misses) / float64(l1d.Hits+l1d.Misses)
	}
	return Golden{
		March:       cfg.Name,
		Bench:       bench,
		Level:       level.String(),
		Cycles:      stats.Cycles,
		CodeWords:   len(prog.Code),
		Committed:   stats.Committed,
		IPC:         stats.IPC(),
		Mispredicts: stats.Mispredicts,
		L1DMissRate: missRate,
		AvgPRFLive:  float64(stats.PRFLive) / cyc,
		AvgROBOcc:   float64(stats.ROBOccupancy) / cyc,
		AvgIQOcc:    float64(stats.IQOccupancy) / cyc,
		AvgLQOcc:    float64(stats.LQOccupancy) / cyc,
		AvgSQOcc:    float64(stats.SQOccupancy) / cyc,
	}
}

// --- accessors --------------------------------------------------------------

// buildIndex keys every golden and campaign result by cell once, so
// lookups are O(1) instead of rescanning the whole result slice. It is
// built lazily because a Study may come from Run or from Load.
func (st *Study) buildIndex() {
	st.indexOnce.Do(func() {
		st.goldenIdx = make(map[cellKey]int, len(st.Goldens))
		for i, g := range st.Goldens {
			st.goldenIdx[cellKey{g.March, g.Bench, g.Level, ""}] = i
		}
		st.resultIdx = make(map[cellKey]int, len(st.Results))
		for i, r := range st.Results {
			st.resultIdx[cellKey{r.March, r.Bench, r.Level, r.Target}] = i
		}
	})
}

// Golden returns the fault-free record for a cell.
func (st *Study) Golden(march, bench, level string) (Golden, bool) {
	st.buildIndex()
	if i, ok := st.goldenIdx[cellKey{march, bench, level, ""}]; ok {
		return st.Goldens[i], true
	}
	return Golden{}, false
}

// Result returns one campaign cell.
func (st *Study) Result(march, bench, level, target string) (campaign.Result, bool) {
	st.buildIndex()
	if i, ok := st.resultIdx[cellKey{march, bench, level, target}]; ok {
		return st.Results[i], true
	}
	return campaign.Result{}, false
}

// AcrossBenches returns one result per benchmark for a fixed (march,
// level, target) — the input to the weighted AVF of Equation 1.
func (st *Study) AcrossBenches(march, level, target string) []campaign.Result {
	var out []campaign.Result
	for _, bench := range st.BenchNames {
		if r, ok := st.Result(march, bench, level, target); ok {
			out = append(out, r)
		}
	}
	return out
}

// CellStructures returns one result per structure field for a fixed
// (march, bench, level) — the input to whole-CPU FIT.
func (st *Study) CellStructures(march, bench, level string) []campaign.Result {
	var out []campaign.Result
	for _, target := range st.TargetNames {
		if r, ok := st.Result(march, bench, level, target); ok {
			out = append(out, r)
		}
	}
	return out
}

// MachineConfig resolves a stored machine name back to its config.
func MachineConfig(name string) (machine.Config, bool) {
	for _, cfg := range machine.Configs() {
		if cfg.Name == name {
			return cfg, true
		}
	}
	return machine.Config{}, false
}

// --- persistence -------------------------------------------------------------

// Save writes the study as JSON, crash-safely: the bytes go to a temp
// file in the destination directory, are fsync'd, and are renamed over
// the target, so a crash mid-save leaves either the old file or the new
// one — never a torn mixture.
func (st *Study) Save(path string) error {
	data, err := json.MarshalIndent(st, "", " ")
	if err != nil {
		return err
	}
	return journal.AtomicWriteFile(path, data)
}

// Load reads a study saved with Save. A file cut short by a crash of a
// pre-atomic-save writer (or by disk corruption) is reported as such
// rather than as a bare JSON parse error.
func Load(path string) (*Study, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	st := &Study{}
	if err := json.Unmarshal(data, st); err != nil {
		return nil, fmt.Errorf("core: study file %s is corrupt or truncated (re-run or resume the study to regenerate it): %w", path, err)
	}
	return st, nil
}
