package compiler

import (
	"fmt"
	"testing"

	"sevsim/internal/interp"
	"sevsim/internal/lang"
	"sevsim/internal/machine"
)

// targets returns the two backend targets with their machine configs.
func targets() []struct {
	tgt Target
	cfg machine.Config
} {
	return []struct {
		tgt Target
		cfg machine.Config
	}{
		{Target{XLEN: 32, NumArchRegs: 16}, machine.CortexA15Like()},
		{Target{XLEN: 64, NumArchRegs: 32}, machine.CortexA72Like()},
	}
}

// runDifferential compiles src at every optimization level for both
// targets, executes each binary on the cycle-level machine, and checks
// the output stream against the reference interpreter.
func runDifferential(t *testing.T, name, src string) {
	t.Helper()
	for _, tc := range targets() {
		want, err := interp.Run(mustParse(t, src), tc.tgt.XLEN, 50_000_000)
		if err != nil {
			t.Fatalf("%s xlen=%d: interp: %v", name, tc.tgt.XLEN, err)
		}
		for _, level := range Levels {
			prog, err := Compile(src, name, level, tc.tgt)
			if err != nil {
				t.Fatalf("%s %v xlen=%d: compile: %v", name, level, tc.tgt.XLEN, err)
			}
			m := machine.New(tc.cfg, prog)
			res := m.Run(200_000_000)
			if res.Outcome != machine.OutcomeOK {
				t.Fatalf("%s %v %s: outcome %v (%s) after %d cycles",
					name, level, tc.cfg.Name, res.Outcome, res.Reason, res.Cycles)
			}
			if len(res.Output) != len(want) {
				t.Fatalf("%s %v %s: %d outputs, want %d\n got %v\nwant %v",
					name, level, tc.cfg.Name, len(res.Output), len(want), trim(res.Output), trim(want))
			}
			for i := range want {
				if res.Output[i] != want[i] {
					t.Fatalf("%s %v %s: output[%d] = %#x, want %#x",
						name, level, tc.cfg.Name, i, res.Output[i], want[i])
				}
			}
		}
	}
}

func trim(v []uint64) []uint64 {
	if len(v) > 16 {
		return v[:16]
	}
	return v
}

func mustParse(t *testing.T, src string) *lang.Program {
	t.Helper()
	p, err := lang.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestArithmeticProgram(t *testing.T) {
	runDifferential(t, "arith", `
func main() {
	var int a = 12345;
	var int b = 678;
	out(a + b);
	out(a - b);
	out(a * b);
	out(a / b);
	out(a % b);
	out(a & b);
	out(a | b);
	out(a ^ b);
	out(a << 3);
	out(a >> 2);
	out(-a);
	out(~a);
	out(!a);
	out(!0);
	out(a < b);
	out(a > b);
	out(a <= b);
	out(a >= b);
	out(a == b);
	out(a != b);
	out(a / 0);
	out(a % 0);
}`)
}

func TestNegativeDivision(t *testing.T) {
	runDifferential(t, "negdiv", `
func main() {
	var int a = 0 - 7;
	out(a / 2);     // -3 (truncating)
	out(a % 2);     // -1
	out(a / 4);
	out((0-100) / 8);
	out((0-100) % 8);
	out(a >> 1);    // arithmetic: -4
}`)
}

func TestGlobalsAndArrays(t *testing.T) {
	runDifferential(t, "globals", `
global int counter;
global int table[32];

func bump(int by) int {
	counter = counter + by;
	return counter;
}

func main() {
	var int i;
	for (i = 0; i < 32; i = i + 1) {
		table[i] = i * i;
	}
	var int sum = 0;
	for (i = 0; i < 32; i = i + 1) {
		sum = sum + table[i];
	}
	out(sum);
	out(bump(5));
	out(bump(7));
	out(counter);
}`)
}

func TestLocalArraysAndArrayParams(t *testing.T) {
	runDifferential(t, "localarr", `
func fill(int buf[], int n, int seed) {
	var int i;
	for (i = 0; i < n; i = i + 1) {
		seed = (seed * 1103515245 + 12345) & 2147483647;
		buf[i] = seed % 1000;
	}
}

func sum(int buf[], int n) int {
	var int s = 0;
	var int i;
	for (i = 0; i < n; i = i + 1) {
		s = s + buf[i];
	}
	return s;
}

func main() {
	var int a[64];
	var int b[16];
	fill(a, 64, 1);
	fill(b, 16, 99);
	out(sum(a, 64));
	out(sum(b, 16));
	out(sum(a, 64) + sum(b, 16));
}`)
}

func TestControlFlow(t *testing.T) {
	runDifferential(t, "control", `
func classify(int x) int {
	if (x < 0) {
		return 0 - 1;
	} else if (x == 0) {
		return 0;
	} else if (x < 10 || x == 42) {
		return 1;
	} else if (x >= 100 && x < 200) {
		return 2;
	}
	return 3;
}

func main() {
	var int i;
	for (i = 0 - 5; i < 250; i = i + 7) {
		out(classify(i));
	}
	var int n = 0;
	while (1) {
		n = n + 1;
		if (n == 13) { break; }
	}
	out(n);
	var int s = 0;
	for (i = 0; i < 20; i = i + 1) {
		if (i % 3 == 0) { continue; }
		s = s + i;
	}
	out(s);
}`)
}

func TestRecursion(t *testing.T) {
	runDifferential(t, "recursion", `
func fib(int n) int {
	if (n < 2) { return n; }
	return fib(n - 1) + fib(n - 2);
}

func ack(int m, int n) int {
	if (m == 0) { return n + 1; }
	if (n == 0) { return ack(m - 1, 1); }
	return ack(m - 1, ack(m, n - 1));
}

func main() {
	out(fib(15));
	out(ack(2, 3));
}`)
}

func TestManyArguments(t *testing.T) {
	runDifferential(t, "manyargs", `
func combine(int a, int b, int c, int d, int e, int f, int g) int {
	return a + b*2 + c*3 + d*4 + e*5 + f*6 + g*7;
}

func main() {
	out(combine(1, 2, 3, 4, 5, 6, 7));
	out(combine(7, 6, 5, 4, 3, 2, 1));
}`)
}

func TestShortCircuitSideEffects(t *testing.T) {
	runDifferential(t, "shortcircuit", `
global int calls;

func probe(int v) int {
	calls = calls + 1;
	return v;
}

func main() {
	calls = 0;
	if (probe(0) && probe(1)) { out(999); }
	out(calls); // 1: rhs not evaluated
	calls = 0;
	if (probe(1) || probe(1)) { out(7); }
	out(calls); // 1
	var int x = probe(0) || probe(2);
	out(x);     // 1 (normalized boolean)
	out(calls); // 3
}`)
}

func TestRegisterPressure(t *testing.T) {
	// More simultaneously live values than allocatable registers on the
	// 16-register target forces spilling.
	runDifferential(t, "pressure", `
func main() {
	var int a = 1; var int b = 2; var int c = 3; var int d = 4;
	var int e = 5; var int f = 6; var int g = 7; var int h = 8;
	var int i = 9; var int j = 10; var int k = 11; var int l = 12;
	var int m = 13; var int n = 14; var int o = 15; var int p = 16;
	var int q = a + b; var int r = c + d; var int s = e + f;
	var int t = g + h; var int u = i + j; var int v = k + l;
	var int w = m + n; var int x = o + p;
	out(a+b+c+d+e+f+g+h+i+j+k+l+m+n+o+p);
	out(q*r + s*t + u*v + w*x);
	out((a|b|c|d) ^ (e&f&g&h) + (q<<2) - (r>>1));
}`)
}

func TestLoopNest(t *testing.T) {
	runDifferential(t, "loopnest", `
global int grid[256];

func main() {
	var int i; var int j;
	for (i = 0; i < 16; i = i + 1) {
		for (j = 0; j < 16; j = j + 1) {
			grid[i*16 + j] = (i + 1) * (j + 2);
		}
	}
	var int trace = 0;
	for (i = 0; i < 16; i = i + 1) {
		trace = trace + grid[i*16 + i];
	}
	out(trace);
	// Loop-invariant expressions to exercise LICM.
	var int base = 3;
	var int acc = 0;
	for (i = 0; i < 100; i = i + 1) {
		acc = acc + base * 17 + (base << 4) - (base / 2);
	}
	out(acc);
}`)
}

func TestOverflowWrapping(t *testing.T) {
	runDifferential(t, "overflow", `
func main() {
	var int big = 2000000000;
	out(big + big);         // wraps on 32-bit, not on 64-bit
	out(big * 3);
	var int x = 1;
	var int i;
	for (i = 0; i < 40; i = i + 1) {
		x = x * 2;
	}
	out(x); // 2^40: zero on 32-bit
}`)
}

func TestCompileErrorsSurface(t *testing.T) {
	_, err := Compile("func main() { x = 1; }", "bad", O0, Target{XLEN: 32, NumArchRegs: 16})
	if err == nil {
		t.Fatal("expected compile error")
	}
}

func TestCodeSizeGrowsAtO3(t *testing.T) {
	src := `
func helper(int x) int { return x * 3 + 1; }
func main() {
	var int i; var int s = 0;
	for (i = 0; i < 50; i = i + 1) {
		s = s + helper(i);
	}
	out(s);
}`
	tgt := Target{XLEN: 32, NumArchRegs: 16}
	sizes := map[OptLevel]int{}
	for _, level := range Levels {
		p, err := Compile(src, "size", level, tgt)
		if err != nil {
			t.Fatal(err)
		}
		sizes[level] = len(p.Code)
	}
	if sizes[O1] >= sizes[O0] {
		t.Errorf("O1 code (%d) should be smaller than O0 (%d)", sizes[O1], sizes[O0])
	}
	if sizes[O3] <= sizes[O2] {
		t.Errorf("O3 code (%d words) should exceed O2 (%d words): unrolling+inlining grow text", sizes[O3], sizes[O2])
	}
}

func TestOptimizedCodeIsFaster(t *testing.T) {
	src := `
global int data[512];
func main() {
	var int i;
	for (i = 0; i < 512; i = i + 1) {
		data[i] = (i * 7 + 3) % 256;
	}
	var int s = 0;
	var int rounds = 0;
	for (rounds = 0; rounds < 10; rounds = rounds + 1) {
		for (i = 0; i < 512; i = i + 1) {
			s = s + data[i] * 2 + rounds;
		}
	}
	out(s);
}`
	for _, tc := range targets() {
		var cycles [4]uint64
		for _, level := range Levels {
			p, err := Compile(src, "perf", level, tc.tgt)
			if err != nil {
				t.Fatal(err)
			}
			res := machine.New(tc.cfg, p).Run(100_000_000)
			if res.Outcome != machine.OutcomeOK {
				t.Fatalf("%v: %v %s", level, res.Outcome, res.Reason)
			}
			cycles[level] = res.Cycles
		}
		if cycles[O1] >= cycles[O0] {
			t.Errorf("%s: O1 (%d cycles) not faster than O0 (%d)", tc.cfg.Name, cycles[O1], cycles[O0])
		}
		if float64(cycles[O0])/float64(cycles[O2]) < 1.5 {
			t.Errorf("%s: O2 speedup over O0 only %.2fx", tc.cfg.Name, float64(cycles[O0])/float64(cycles[O2]))
		}
		t.Logf("%s cycles: O0=%d O1=%d O2=%d O3=%d", tc.cfg.Name, cycles[0], cycles[1], cycles[2], cycles[3])
	}
}

func TestIRStringRendering(t *testing.T) {
	prog := mustParse(t, `func main() { var int x = 1; out(x + 2); }`)
	mod, err := Lower(prog, 4)
	if err != nil {
		t.Fatal(err)
	}
	s := mod.ByName["main"].String()
	if s == "" {
		t.Fatal("empty IR dump")
	}
	for _, want := range []string{"func main", "const 1", "out"} {
		if !contains(s, want) {
			t.Errorf("IR dump missing %q:\n%s", want, s)
		}
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(sub) == 0 ||
		func() bool {
			for i := 0; i+len(sub) <= len(s); i++ {
				if s[i:i+len(sub)] == sub {
					return true
				}
			}
			return false
		}())
}

// TestRandomExpressionPrograms cross-checks compiler+CPU against the
// interpreter on generated straight-line expression programs.
func TestRandomExpressionPrograms(t *testing.T) {
	ops := []string{"+", "-", "*", "/", "%", "&", "|", "^", "<<", ">>", "<", ">", "==", "!="}
	seed := int64(12345)
	next := func() int64 {
		seed = seed*6364136223846793005 + 1442695040888963407
		return (seed >> 33) & 0xffff
	}
	for round := 0; round < 8; round++ {
		src := "func main() {\n"
		src += fmt.Sprintf("  var int a = %d;\n  var int b = %d;\n  var int c = %d;\n",
			next(), next()+1, next())
		expr := "a"
		for i := 0; i < 12; i++ {
			v := []string{"a", "b", "c", fmt.Sprint(next() % 64)}[next()%4]
			op := ops[next()%int64(len(ops))]
			if op == "<<" || op == ">>" {
				v = fmt.Sprint(next() % 8)
			}
			expr = "(" + expr + " " + op + " " + v + ")"
		}
		src += "  out(" + expr + ");\n}\n"
		runDifferential(t, fmt.Sprintf("random%d", round), src)
	}
}
