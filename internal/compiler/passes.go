package compiler

import (
	"fmt"

	"sevsim/internal/arith"
	"sevsim/internal/lang"
)

// The O1 pass set: constant folding, copy propagation, local value
// numbering (CSE), dead-code elimination, and CFG cleanup (jump
// threading, block merging, unreachable-code removal).

// ConstFold folds operations on single-def constants, applies algebraic
// identities, and resolves conditional branches on constants. xlen
// parameterizes wrap-around semantics. Returns true on change.
func ConstFold(f *Func, xlen int) bool {
	changed := false
	consts := ConstDefs(f)
	cv := func(v Value) (int64, bool) {
		if v == NoValue {
			return 0, false
		}
		in, ok := consts[v]
		return in.Const, ok
	}
	for _, b := range f.Blocks {
		for i := range b.Instrs {
			in := &b.Instrs[i]
			if in.Op == IRCondBr {
				if c, ok := cv(in.A); ok {
					t := in.Targets[0]
					if c == 0 {
						t = in.Targets[1]
					}
					*in = Instr{Op: IRBr, Targets: [2]*Block{t}}
					changed = true
				}
				continue
			}
			if in.Op != IRBin {
				continue
			}
			a, aok := cv(in.A)
			bb, bok := cv(in.B)
			if aok && bok {
				*in = Instr{Op: IRConst, Dst: in.Dst, Const: arith.Bin(xlen, in.Kind, a, bb)}
				changed = true
				continue
			}
			// Algebraic identities with a constant on one side.
			copyOf := func(src Value) {
				*in = Instr{Op: IRCopy, Dst: in.Dst, A: src}
				changed = true
			}
			constOf := func(c int64) {
				*in = Instr{Op: IRConst, Dst: in.Dst, Const: c}
				changed = true
			}
			switch {
			case bok && bb == 0:
				switch in.Kind {
				case lang.OpAdd, lang.OpSub, lang.OpOr, lang.OpXor, lang.OpShl, lang.OpShr:
					copyOf(in.A)
				case lang.OpMul, lang.OpAnd:
					constOf(0)
				}
			case bok && bb == 1:
				switch in.Kind {
				case lang.OpMul, lang.OpDiv:
					copyOf(in.A)
				case lang.OpRem:
					constOf(0)
				}
			case aok && a == 0:
				switch in.Kind {
				case lang.OpAdd, lang.OpOr, lang.OpXor:
					copyOf(in.B)
				case lang.OpMul, lang.OpAnd:
					constOf(0)
				}
			case aok && a == 1 && in.Kind == lang.OpMul:
				copyOf(in.B)
			case in.A == in.B:
				switch in.Kind {
				case lang.OpSub, lang.OpXor:
					constOf(0)
				case lang.OpAnd, lang.OpOr:
					copyOf(in.A)
				}
			}
		}
	}
	return changed
}

// CopyProp propagates copies and constants. Within a block it tracks
// aliases with kill-on-redefinition; across blocks it uses the safe
// single-def rule (v = copy of a where both are defined exactly once).
func CopyProp(f *Func) bool {
	changed := false
	defs := DefCounts(f)

	// Global single-def copy propagation.
	alias := map[Value]Value{}
	for _, b := range f.Blocks {
		for i := range b.Instrs {
			in := &b.Instrs[i]
			if in.Op == IRCopy && in.A != NoValue &&
				defs[in.Dst] == 1 && defs[in.A] == 1 {
				alias[in.Dst] = in.A
			}
		}
	}
	resolve := func(v Value) Value {
		for {
			a, ok := alias[v]
			if !ok {
				return v
			}
			v = a
		}
	}
	if len(alias) > 0 {
		for _, b := range f.Blocks {
			for i := range b.Instrs {
				changed = rewriteUses(&b.Instrs[i], resolve) || changed
			}
		}
	}

	// Local propagation with kills.
	for _, b := range f.Blocks {
		local := map[Value]Value{}
		res := func(v Value) Value {
			for {
				a, ok := local[v]
				if !ok {
					return v
				}
				v = a
			}
		}
		for i := range b.Instrs {
			in := &b.Instrs[i]
			changed = rewriteUses(in, res) || changed
			if d := in.Def(); d != NoValue {
				delete(local, d)
				for k, v := range local { //lint:ordered deletes every entry whose value matches; order cannot change the surviving set
					if v == d {
						delete(local, k)
					}
				}
				if in.Op == IRCopy && in.A != d {
					local[d] = in.A
				}
			}
		}
	}
	return changed
}

func rewriteUses(in *Instr, res func(Value) Value) bool {
	changed := false
	rw := func(v *Value) {
		if *v == NoValue {
			return
		}
		if n := res(*v); n != *v {
			*v = n
			changed = true
		}
	}
	switch in.Op {
	case IRCopy, IRLoad, IROut, IRRet, IRCondBr:
		rw(&in.A)
	case IRBin, IRStore:
		rw(&in.A)
		rw(&in.B)
	case IRCall:
		for i := range in.Args {
			rw(&in.Args[i])
		}
	}
	return changed
}

// LVN performs local value numbering per block: pure expressions and
// loads (between memory writes) that recompute an available value are
// replaced by copies.
func LVN(f *Func) bool {
	changed := false
	for _, b := range f.Blocks {
		vn := map[Value]int{}
		next := 1
		vnOf := func(v Value) int {
			if n, ok := vn[v]; ok {
				return n
			}
			vn[v] = next
			next++
			return vn[v]
		}
		type entry struct {
			holder   Value
			holderVN int
		}
		avail := map[string]entry{}
		exprVN := map[string]int{}
		memEpoch := 0
		for i := range b.Instrs {
			in := &b.Instrs[i]
			var key string
			switch in.Op {
			case IRConst:
				key = fmt.Sprintf("c%d", in.Const)
			case IRBin:
				a, bb := vnOf(in.A), vnOf(in.B)
				if commutative(in.Kind) && a > bb {
					a, bb = bb, a
				}
				key = fmt.Sprintf("b%d,%d,%d", in.Kind, a, bb)
			case IRAddrG:
				key = "g" + in.Sym.Name
			case IRAddrL:
				key = "l" + in.Sym.Name
			case IRLoad:
				key = fmt.Sprintf("m%d,%d,%d", vnOf(in.A), in.Off, memEpoch)
			case IRCopy:
				// A copy redefines Dst: it now carries A's value number.
				vn[in.Dst] = vnOf(in.A)
				continue
			case IRCall:
				memEpoch++
				if in.Dst != NoValue {
					vn[in.Dst] = next
					next++
				}
				continue
			case IRStore:
				memEpoch++
				continue
			default:
				continue
			}
			if e, ok := avail[key]; ok && vn[e.holder] == e.holderVN {
				*in = Instr{Op: IRCopy, Dst: in.Dst, A: e.holder}
				vn[in.Dst] = e.holderVN
				changed = true
				continue
			}
			n, ok := exprVN[key]
			if !ok {
				n = next
				next++
				exprVN[key] = n
			}
			vn[in.Dst] = n
			avail[key] = entry{holder: in.Dst, holderVN: n}
		}
	}
	return changed
}

func commutative(op lang.BinOp) bool {
	switch op {
	case lang.OpAdd, lang.OpMul, lang.OpAnd, lang.OpOr, lang.OpXor, lang.OpEq, lang.OpNe:
		return true
	}
	return false
}

// DCE removes side-effect-free instructions whose results are unused,
// iterating to a fixed point.
func DCE(f *Func) bool {
	changed := false
	for {
		uses := UseCounts(f)
		removed := false
		for _, b := range f.Blocks {
			kept := b.Instrs[:0]
			for i := range b.Instrs {
				in := b.Instrs[i]
				dead := (in.Pure() || in.Op == IRLoad) &&
					(in.Dst == NoValue || uses[in.Dst] == 0)
				if dead {
					removed = true
					continue
				}
				kept = append(kept, in)
			}
			b.Instrs = kept
		}
		if !removed {
			return changed
		}
		changed = true
	}
}

// Cleanup simplifies the CFG: unreachable-block removal, jump threading
// through empty blocks, merging single-predecessor chains, and
// degenerate conditional branches.
func Cleanup(f *Func) bool {
	changed := false
	for {
		iter := RemoveUnreachable(f)

		// CondBr with identical targets becomes Br.
		for _, b := range f.Blocks {
			if n := len(b.Instrs); n > 0 {
				t := &b.Instrs[n-1]
				if t.Op == IRCondBr && t.Targets[0] == t.Targets[1] {
					*t = Instr{Op: IRBr, Targets: [2]*Block{t.Targets[0]}}
					iter = true
				}
			}
		}

		// Jump threading: redirect edges that point at an empty
		// forwarding block (a single Br) to its target.
		forward := map[*Block]*Block{}
		for _, b := range f.Blocks {
			if len(b.Instrs) == 1 && b.Instrs[0].Op == IRBr && b.Instrs[0].Targets[0] != b {
				forward[b] = b.Instrs[0].Targets[0]
			}
		}
		thread := func(t *Block) *Block {
			seen := map[*Block]bool{}
			for forward[t] != nil && !seen[t] {
				seen[t] = true
				t = forward[t]
			}
			return t
		}
		if len(forward) > 0 {
			for _, b := range f.Blocks {
				if n := len(b.Instrs); n > 0 {
					t := &b.Instrs[n-1]
					for k := range t.Targets[:2] {
						if t.Targets[k] != nil {
							if nt := thread(t.Targets[k]); nt != t.Targets[k] {
								t.Targets[k] = nt
								iter = true
							}
						}
					}
				}
			}
			if f.Entry != nil {
				if nt := thread(f.Entry); nt != f.Entry {
					f.Entry = nt
					iter = true
				}
			}
		}

		// Merge b -> c when c's only predecessor is b and b ends with an
		// unconditional branch to c.
		ComputePreds(f)
		for _, b := range f.Blocks {
			for {
				n := len(b.Instrs)
				if n == 0 {
					break
				}
				t := &b.Instrs[n-1]
				if t.Op != IRBr {
					break
				}
				c := t.Targets[0]
				if c == b || c == f.Entry || len(c.Preds) != 1 {
					break
				}
				b.Instrs = append(b.Instrs[:n-1], c.Instrs...)
				c.Instrs = nil // becomes unreachable
				iter = true
				ComputePreds(f)
			}
		}
		iter = RemoveUnreachable(f) || iter

		if !iter {
			return changed
		}
		changed = true
	}
}

// RunO1 applies the O1 pass set to a fixed point (bounded).
func RunO1(f *Func, xlen int) {
	for i := 0; i < 8; i++ {
		changed := ConstFold(f, xlen)
		changed = CopyProp(f) || changed
		changed = LVN(f) || changed
		changed = DCE(f) || changed
		changed = Cleanup(f) || changed
		if !changed {
			return
		}
	}
}
