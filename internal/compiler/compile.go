package compiler

import (
	"fmt"

	"sevsim/internal/lang"
	"sevsim/internal/machine"
)

// OptLevel selects the optimization pipeline, mirroring GCC's -O flags.
type OptLevel int

const (
	O0 OptLevel = iota
	O1
	O2
	O3
)

// Levels lists all optimization levels in presentation order.
var Levels = []OptLevel{O0, O1, O2, O3}

func (o OptLevel) String() string { return fmt.Sprintf("O%d", int(o)) }

// Compile parses, checks, optimizes, and assembles MiniC source into a
// loadable program for the given target.
func Compile(src, name string, level OptLevel, tgt Target) (*machine.Program, error) {
	prog, err := lang.Parse(src)
	if err != nil {
		return nil, err
	}
	return CompileAST(prog, name, level, tgt)
}

// CompileAST compiles an already-parsed program. Note that lowering
// mutates symbol layout fields, so a parsed AST must not be compiled
// concurrently from multiple goroutines.
func CompileAST(prog *lang.Program, name string, level OptLevel, tgt Target) (*machine.Program, error) {
	mod, err := Lower(prog, tgt.WordSize())
	if err != nil {
		return nil, err
	}
	Optimize(mod, level, tgt)
	p, err := Generate(mod, tgt, level == O0)
	if err != nil {
		return nil, err
	}
	p.Name = name
	return p, nil
}

// Optimize runs the pass pipeline for the chosen level on every
// function of the module. Loop unrolling (O3) runs after the O2 set so
// invariant hoisting does not double up across the unrolled copies, and
// invariant hoisting is bounded by the target's register budget.
func Optimize(mod *Module, level OptLevel, tgt Target) {
	hoistCap := 6
	schedule := false
	if tgt.NumArchRegs >= 32 {
		hoistCap = 14
		// List scheduling lengthens live ranges; on the 16-register
		// target the spill cost outweighs the latency hiding, so the
		// scheduler (like pressure-aware schedulers in real compilers)
		// only runs when registers are plentiful.
		schedule = true
	}
	if level >= O3 {
		InlineCalls(mod)
	}
	for _, f := range mod.Funcs {
		switch level {
		case O0:
			RemoveUnreachable(f)
		case O1:
			RunO1(f, tgt.XLEN)
		case O2:
			RunO1(f, tgt.XLEN)
			RunO2(f, tgt.XLEN, hoistCap)
			if schedule {
				Schedule(f)
			}
		case O3:
			RunO1(f, tgt.XLEN)
			RunO2(f, tgt.XLEN, hoistCap)
			UnrollLoops(f)
			RunO1(f, tgt.XLEN)
			if schedule {
				Schedule(f)
			}
		}
	}
}
