package compiler

import (
	"fmt"

	"sevsim/internal/isa"
	"sevsim/internal/lang"
	"sevsim/internal/machine"
)

// Code generation: IR -> SEV machine code. Instruction selection folds
// single-def constants into immediate forms and fuses comparisons into
// conditional branches at every optimization level (that is selection,
// not optimization); register allocation quality is what differs by
// level.

type branchFix struct {
	pos    int
	target *Block
}

type callFix struct {
	pos    int
	callee string
}

type genFunc struct {
	name  string
	code  []isa.Instr
	calls []callFix
}

type frameInfo struct {
	outArgs   int64 // bytes for outgoing stack arguments
	spillBase int64
	arrayBase int64
	saveBase  int64
	raOff     int64 // -1 when ra is not saved
	size      int64
	hasCalls  bool
}

type codegen struct {
	mod    *Module
	tgt    Target
	o0     bool
	f      *Func
	alloc  *Alloc
	layout []*Block

	consts   map[Value]Instr
	skipped  map[Value]bool // const defs fully folded into immediates
	fusedCmp map[*Block]int // block -> index of compare fused into its CondBr
	uses     []int

	code     []isa.Instr
	blockPos map[*Block]int
	fixes    []branchFix
	calls    []callFix
	frame    frameInfo
}

func wordBytes(t Target) int64 { return int64(t.XLEN / 8) }

func fitsImm16(v int64) bool  { return v >= -32768 && v <= 32767 }
func fitsUimm16(v int64) bool { return v >= 0 && v <= 65535 }

// loadOp / storeOp are the word-sized memory opcodes for the target.
func loadOp(t Target) isa.Opcode {
	if t.XLEN == 64 {
		return isa.OpLd
	}
	return isa.OpLw
}

func storeOp(t Target) isa.Opcode {
	if t.XLEN == 64 {
		return isa.OpSd
	}
	return isa.OpSw
}

// genFunction compiles one function's IR to machine code with
// function-local branch fixups resolved and call fixups recorded.
func genFunction(mod *Module, f *Func, tgt Target, o0 bool) (*genFunc, error) {
	g := &codegen{
		mod:      mod,
		tgt:      tgt,
		o0:       o0,
		f:        f,
		layout:   RPO(f),
		consts:   ConstDefs(f),
		skipped:  map[Value]bool{},
		fusedCmp: map[*Block]int{},
		blockPos: map[*Block]int{},
	}
	g.uses = UseCounts(f)
	g.alloc = Allocate(f, g.layout, tgt, o0)
	g.planFusion()
	g.planSkippedConsts()
	g.computeFrame()
	g.prologue()
	for _, b := range g.layout {
		g.blockPos[b] = len(g.code)
		if err := g.genBlock(b); err != nil {
			return nil, err
		}
	}
	// Patch intra-function branches.
	for _, fx := range g.fixes {
		tpos, ok := g.blockPos[fx.target]
		if !ok {
			return nil, fmt.Errorf("compiler: %s: branch to unlaid block b%d", f.Name, fx.target.ID)
		}
		off := int32(tpos - (fx.pos + 1))
		g.code[fx.pos].Imm = off
	}
	return &genFunc{name: f.Name, code: g.code, calls: g.calls}, nil
}

// planFusion records, per block, a trailing comparison that can be fused
// into the block's conditional branch.
func (g *codegen) planFusion() {
	for _, b := range g.f.Blocks {
		n := len(b.Instrs)
		if n < 2 {
			continue
		}
		br := &b.Instrs[n-1]
		cmp := &b.Instrs[n-2]
		if br.Op != IRCondBr || cmp.Op != IRBin || cmp.Dst != br.A {
			continue
		}
		if g.uses[cmp.Dst] != 1 {
			continue
		}
		switch cmp.Kind {
		case lang.OpLt, lang.OpLe, lang.OpGt, lang.OpGe, lang.OpEq, lang.OpNe:
			g.fusedCmp[b] = n - 2
		}
	}
}

// planSkippedConsts marks constant definitions all of whose uses fold
// into immediate operands, so the materializing instruction need not be
// emitted.
func (g *codegen) planSkippedConsts() {
	foldableUses := make([]int, g.f.NumVals)
	for _, b := range g.f.Blocks {
		for i := range b.Instrs {
			in := &b.Instrs[i]
			if in.Op != IRBin {
				continue
			}
			if idx, ok := g.fusedCmp[b]; ok && i == idx {
				continue // fused compares need register operands
			}
			if v, _, ok := g.immOperand(in); ok {
				foldableUses[v]++
			}
		}
	}
	for v := range g.consts { //lint:ordered per-key membership test filling a set; order cannot reach the emitted code
		if g.uses[v] > 0 && foldableUses[v] == g.uses[v] {
			g.skipped[v] = true
		}
	}
}

// immOperand decides whether instruction in can take one of its operands
// as an immediate; it returns that operand's value and constant.
func (g *codegen) immOperand(in *Instr) (Value, int64, bool) {
	cOf := func(v Value) (int64, bool) {
		if v == NoValue {
			return 0, false
		}
		d, ok := g.consts[v]
		return d.Const, ok
	}
	b, bok := cOf(in.B)
	a, aok := cOf(in.A)
	switch in.Kind {
	case lang.OpAdd:
		if bok && fitsImm16(b) {
			return in.B, b, true
		}
		if aok && fitsImm16(a) {
			return in.A, a, true
		}
	case lang.OpSub:
		if bok && fitsImm16(-b) {
			return in.B, b, true
		}
	case lang.OpAnd, lang.OpOr, lang.OpXor:
		if bok && fitsUimm16(b) {
			return in.B, b, true
		}
		if aok && fitsUimm16(a) {
			return in.A, a, true
		}
	case lang.OpShl, lang.OpShr:
		if bok && b >= 0 && b < int64(g.tgt.XLEN) {
			return in.B, b, true
		}
	case lang.OpLt:
		if bok && fitsImm16(b) {
			return in.B, b, true
		}
	}
	return NoValue, 0, false
}

func (g *codegen) computeFrame() {
	w := wordBytes(g.tgt)
	var maxStack int64
	for _, b := range g.f.Blocks {
		for i := range b.Instrs {
			in := &b.Instrs[i]
			if in.Op == IRCall {
				g.frame.hasCalls = true
				if extra := int64(len(in.Args) - isa.NumArgRegs); extra > 0 {
					if extra*w > maxStack {
						maxStack = extra * w
					}
				}
			}
		}
	}
	fr := &g.frame
	fr.outArgs = maxStack
	fr.spillBase = fr.outArgs
	fr.arrayBase = fr.spillBase + int64(g.alloc.NumSlots)*w
	fr.saveBase = fr.arrayBase + g.f.ArrayBytes
	sz := fr.saveBase + int64(len(g.alloc.UsedCalleeSaved))*w
	fr.raOff = -1
	if fr.hasCalls {
		fr.raOff = sz
		sz += w
	}
	fr.size = (sz + 15) &^ 15
}

func (g *codegen) emit(in isa.Instr) int {
	g.code = append(g.code, in)
	return len(g.code) - 1
}

// loadConst materializes an arbitrary constant into rd. scratch is used
// only for values outside the 32-bit range.
func (g *codegen) loadConst(rd uint8, v int64, scratch uint8) {
	switch {
	case fitsImm16(v):
		g.emit(isa.I(isa.OpAddi, rd, isa.RegZero, int32(v)))
	case v >= -1<<31 && v < 1<<31:
		hi := int32(uint16(uint64(v) >> 16))
		lo := int32(uint16(uint64(v)))
		g.emit(isa.I(isa.OpLui, rd, 0, hi))
		if lo != 0 {
			g.emit(isa.I(isa.OpOri, rd, rd, lo))
		}
	default:
		// Full 64-bit build: high half in scratch, low half (as
		// unsigned 32-bit) in rd, then combine.
		g.loadConst(scratch, v>>32, scratch)
		g.emit(isa.I(isa.OpSlli, scratch, scratch, 32))
		lo := int64(int32(uint32(uint64(v))))
		g.loadConst(rd, lo, rd)
		if lo < 0 {
			// Clear the sign-extended upper half.
			g.emit(isa.I(isa.OpSlli, rd, rd, 32))
			g.emit(isa.I(isa.OpSrli, rd, rd, 32))
		}
		g.emit(isa.R(isa.OpOr, rd, rd, scratch))
	}
}

// spOffsetOp emits a load or store at sp+off, handling offsets beyond
// the immediate range via scratchC.
func (g *codegen) spOffsetOp(op isa.Opcode, reg uint8, off int64) {
	if fitsImm16(off) {
		if op.IsStore() {
			g.emit(isa.Store(op, reg, isa.RegSP, int32(off)))
		} else {
			g.emit(isa.Load(op, reg, isa.RegSP, int32(off)))
		}
		return
	}
	g.loadConst(scratchC, off, scratchC)
	g.emit(isa.R(isa.OpAdd, scratchC, isa.RegSP, scratchC))
	if op.IsStore() {
		g.emit(isa.Store(op, reg, scratchC, 0))
	} else {
		g.emit(isa.Load(op, reg, scratchC, 0))
	}
}

func (g *codegen) slotOffset(v Value) int64 {
	return g.frame.spillBase + int64(g.alloc.Slot[v])*wordBytes(g.tgt)
}

// valReg returns a register holding value v, loading from its slot or
// materializing a skipped constant into scratch when needed.
func (g *codegen) valReg(v Value, scratch uint8) uint8 {
	if r := g.alloc.Reg[v]; r != NoReg {
		return r
	}
	if g.alloc.Slot[v] >= 0 {
		g.spOffsetOp(loadOp(g.tgt), scratch, g.slotOffset(v))
		return scratch
	}
	if d, ok := g.consts[v]; ok && g.skipped[v] {
		g.loadConst(scratch, d.Const, scratch)
		return scratch
	}
	// A value with neither register nor slot can only be a dead def.
	g.loadConst(scratch, 0, scratch)
	return scratch
}

// destReg returns the register an instruction should compute into.
func (g *codegen) destReg(v Value) uint8 {
	if r := g.alloc.Reg[v]; r != NoReg {
		return r
	}
	return scratchA
}

// finishDest stores the computed value to v's slot when v is spilled.
func (g *codegen) finishDest(v Value, reg uint8) {
	if g.alloc.Reg[v] == NoReg && g.alloc.Slot[v] >= 0 {
		g.spOffsetOp(storeOp(g.tgt), reg, g.slotOffset(v))
	}
}

func (g *codegen) prologue() {
	fr := &g.frame
	w := wordBytes(g.tgt)
	if fr.size > 0 {
		if fitsImm16(-fr.size) {
			g.emit(isa.I(isa.OpAddi, isa.RegSP, isa.RegSP, int32(-fr.size)))
		} else {
			g.loadConst(scratchA, fr.size, scratchB)
			g.emit(isa.R(isa.OpSub, isa.RegSP, isa.RegSP, scratchA))
		}
	}
	if fr.raOff >= 0 {
		g.spOffsetOp(storeOp(g.tgt), isa.RegRA, fr.raOff)
	}
	for i, r := range g.alloc.UsedCalleeSaved {
		g.spOffsetOp(storeOp(g.tgt), r, fr.saveBase+int64(i)*w)
	}
	// Move incoming parameters to their allocated homes.
	var moves []pmove
	for i, p := range g.f.Params {
		if i < isa.NumArgRegs {
			src := uint8(isa.RegA0 + i)
			switch {
			case g.alloc.Reg[p] != NoReg:
				if g.alloc.Reg[p] != src {
					moves = append(moves, pmove{srcReg: src, dstReg: g.alloc.Reg[p]})
				}
			case g.alloc.Slot[p] >= 0:
				g.spOffsetOp(storeOp(g.tgt), src, g.slotOffset(p))
			}
			continue
		}
		// Stack parameter: caller stored it just above our frame.
		off := fr.size + int64(i-isa.NumArgRegs)*w
		g.spOffsetOp(loadOp(g.tgt), scratchA, off)
		if g.alloc.Reg[p] != NoReg {
			g.emit(isa.R(isa.OpAdd, g.alloc.Reg[p], scratchA, isa.RegZero))
		} else if g.alloc.Slot[p] >= 0 {
			g.spOffsetOp(storeOp(g.tgt), scratchA, g.slotOffset(p))
		}
	}
	g.parallelMove(moves)
}

func (g *codegen) epilogue() {
	fr := &g.frame
	w := wordBytes(g.tgt)
	for i, r := range g.alloc.UsedCalleeSaved {
		g.spOffsetOp(loadOp(g.tgt), r, fr.saveBase+int64(i)*w)
	}
	if fr.raOff >= 0 {
		g.spOffsetOp(loadOp(g.tgt), isa.RegRA, fr.raOff)
	}
	if fr.size > 0 {
		if fitsImm16(fr.size) {
			g.emit(isa.I(isa.OpAddi, isa.RegSP, isa.RegSP, int32(fr.size)))
		} else {
			g.loadConst(scratchA, fr.size, scratchB)
			g.emit(isa.R(isa.OpAdd, isa.RegSP, isa.RegSP, scratchA))
		}
	}
	g.emit(isa.Jalr(isa.RegZero, isa.RegRA, 0))
}

// pmove is one pending register move for parallelMove.
type pmove struct {
	srcReg uint8
	dstReg uint8
}

// parallelMove emits register-to-register moves that may permute values,
// breaking cycles through scratchC.
func (g *codegen) parallelMove(moves []pmove) {
	pending := append([]pmove(nil), moves...)
	for len(pending) > 0 {
		emitted := false
		for i, m := range pending {
			blocked := false
			for j, other := range pending {
				if j != i && other.srcReg == m.dstReg {
					blocked = true
					break
				}
			}
			if !blocked {
				if m.srcReg != m.dstReg {
					g.emit(isa.R(isa.OpAdd, m.dstReg, m.srcReg, isa.RegZero))
				}
				pending = append(pending[:i], pending[i+1:]...)
				emitted = true
				break
			}
		}
		if emitted {
			continue
		}
		// Cycle: route the first source through scratch.
		m := pending[0]
		g.emit(isa.R(isa.OpAdd, scratchC, m.srcReg, isa.RegZero))
		for i := range pending {
			if pending[i].srcReg == m.srcReg {
				pending[i].srcReg = scratchC
			}
		}
	}
}

func (g *codegen) genBlock(b *Block) error {
	fusedIdx, hasFused := g.fusedCmp[b]
	for i := range b.Instrs {
		if hasFused && i == fusedIdx {
			continue // emitted as part of the branch
		}
		in := &b.Instrs[i]
		if err := g.genInstr(b, i, in); err != nil {
			return err
		}
	}
	return nil
}

func (g *codegen) genInstr(b *Block, idx int, in *Instr) error {
	switch in.Op {
	case IRConst:
		if g.skipped[in.Dst] || g.uses[in.Dst] == 0 && g.alloc.Reg[in.Dst] == NoReg && g.alloc.Slot[in.Dst] < 0 {
			return nil
		}
		rd := g.destReg(in.Dst)
		g.loadConst(rd, in.Const, scratchB)
		g.finishDest(in.Dst, rd)
	case IRCopy:
		src := g.valReg(in.A, scratchA)
		rd := g.destReg(in.Dst)
		if rd != src {
			g.emit(isa.R(isa.OpAdd, rd, src, isa.RegZero))
		}
		g.finishDest(in.Dst, rd)
	case IRBin:
		g.genBin(in)
	case IRAddrG:
		rd := g.destReg(in.Dst)
		g.loadConst(rd, int64(machine.GlobalBase)+in.Sym.Offset, scratchB)
		g.finishDest(in.Dst, rd)
	case IRAddrL:
		rd := g.destReg(in.Dst)
		off := g.frame.arrayBase + in.Sym.Offset
		if fitsImm16(off) {
			g.emit(isa.I(isa.OpAddi, rd, isa.RegSP, int32(off)))
		} else {
			g.loadConst(rd, off, scratchB)
			g.emit(isa.R(isa.OpAdd, rd, isa.RegSP, rd))
		}
		g.finishDest(in.Dst, rd)
	case IRLoad:
		base := g.valReg(in.A, scratchA)
		rd := g.destReg(in.Dst)
		if fitsImm16(in.Off) {
			g.emit(isa.Load(loadOp(g.tgt), rd, base, int32(in.Off)))
		} else {
			g.loadConst(scratchB, in.Off, scratchB)
			g.emit(isa.R(isa.OpAdd, scratchB, base, scratchB))
			g.emit(isa.Load(loadOp(g.tgt), rd, scratchB, 0))
		}
		g.finishDest(in.Dst, rd)
	case IRStore:
		base := g.valReg(in.A, scratchA)
		val := g.valReg(in.B, scratchB)
		if fitsImm16(in.Off) {
			g.emit(isa.Store(storeOp(g.tgt), val, base, int32(in.Off)))
		} else {
			g.loadConst(scratchC, in.Off, scratchC)
			g.emit(isa.R(isa.OpAdd, scratchC, base, scratchC))
			g.emit(isa.Store(storeOp(g.tgt), val, scratchC, 0))
		}
	case IRCall:
		g.genCall(in)
	case IROut:
		src := g.valReg(in.A, scratchA)
		g.emit(isa.Out(src))
	case IRRet:
		if in.A != NoValue {
			src := g.valReg(in.A, scratchA)
			if src != isa.RegA0 {
				g.emit(isa.R(isa.OpAdd, isa.RegA0, src, isa.RegZero))
			}
		}
		g.epilogue()
	case IRBr:
		g.genBr(b, in.Targets[0])
	case IRCondBr:
		g.genCondBr(b, idx, in)
	default:
		return fmt.Errorf("compiler: unknown IR op %d", in.Op)
	}
	return nil
}

// genBin emits an ALU operation, preferring immediate forms.
func (g *codegen) genBin(in *Instr) {
	rd := g.destReg(in.Dst)
	if v, c, ok := g.immOperand(in); ok {
		other := in.A
		if v == in.A {
			other = in.B
		}
		ra := g.valReg(other, scratchA)
		switch in.Kind {
		case lang.OpAdd:
			g.emit(isa.I(isa.OpAddi, rd, ra, int32(c)))
		case lang.OpSub: // rd = ra - c
			g.emit(isa.I(isa.OpAddi, rd, ra, int32(-c)))
		case lang.OpAnd:
			g.emit(isa.I(isa.OpAndi, rd, ra, int32(c)))
		case lang.OpOr:
			g.emit(isa.I(isa.OpOri, rd, ra, int32(c)))
		case lang.OpXor:
			g.emit(isa.I(isa.OpXori, rd, ra, int32(c)))
		case lang.OpShl:
			g.emit(isa.I(isa.OpSlli, rd, ra, int32(c)))
		case lang.OpShr:
			g.emit(isa.I(isa.OpSrai, rd, ra, int32(c)))
		case lang.OpLt:
			g.emit(isa.I(isa.OpSlti, rd, ra, int32(c)))
		default:
			panic("compiler: immOperand allowed unexpected kind")
		}
		g.finishDest(in.Dst, rd)
		return
	}
	ra := g.valReg(in.A, scratchA)
	rb := g.valReg(in.B, scratchB)
	switch in.Kind {
	case lang.OpAdd:
		g.emit(isa.R(isa.OpAdd, rd, ra, rb))
	case lang.OpSub:
		g.emit(isa.R(isa.OpSub, rd, ra, rb))
	case lang.OpMul:
		g.emit(isa.R(isa.OpMul, rd, ra, rb))
	case lang.OpDiv:
		g.emit(isa.R(isa.OpDiv, rd, ra, rb))
	case lang.OpRem:
		g.emit(isa.R(isa.OpRem, rd, ra, rb))
	case lang.OpAnd:
		g.emit(isa.R(isa.OpAnd, rd, ra, rb))
	case lang.OpOr:
		g.emit(isa.R(isa.OpOr, rd, ra, rb))
	case lang.OpXor:
		g.emit(isa.R(isa.OpXor, rd, ra, rb))
	case lang.OpShl:
		g.emit(isa.R(isa.OpSll, rd, ra, rb))
	case lang.OpShr:
		g.emit(isa.R(isa.OpSra, rd, ra, rb))
	case lang.OpLt:
		g.emit(isa.R(isa.OpSlt, rd, ra, rb))
	case lang.OpGt:
		g.emit(isa.R(isa.OpSlt, rd, rb, ra))
	case lang.OpLe:
		g.emit(isa.R(isa.OpSlt, rd, rb, ra))
		g.emit(isa.I(isa.OpXori, rd, rd, 1))
	case lang.OpGe:
		g.emit(isa.R(isa.OpSlt, rd, ra, rb))
		g.emit(isa.I(isa.OpXori, rd, rd, 1))
	case lang.OpEq:
		g.emit(isa.R(isa.OpXor, rd, ra, rb))
		g.emit(isa.I(isa.OpSltiu, rd, rd, 1))
	case lang.OpNe:
		g.emit(isa.R(isa.OpXor, rd, ra, rb))
		g.emit(isa.R(isa.OpSltu, rd, isa.RegZero, rd))
	default:
		panic("compiler: unsupported binop " + in.Kind.String())
	}
	g.finishDest(in.Dst, rd)
}

func (g *codegen) genCall(in *Instr) {
	w := wordBytes(g.tgt)
	// Stack arguments first (they cannot clobber registers).
	for i := isa.NumArgRegs; i < len(in.Args); i++ {
		src := g.valReg(in.Args[i], scratchA)
		g.spOffsetOp(storeOp(g.tgt), src, int64(i-isa.NumArgRegs)*w)
	}
	// Register arguments: register sources form a parallel move that
	// must complete before slot/const sources overwrite any argument
	// register that might still be a move source.
	var moves []pmove
	type lateLoad struct {
		dst uint8
		v   Value
	}
	var late []lateLoad
	n := min(len(in.Args), isa.NumArgRegs)
	for i := 0; i < n; i++ {
		v := in.Args[i]
		dst := uint8(isa.RegA0 + i)
		if r := g.alloc.Reg[v]; r != NoReg {
			if r != dst {
				moves = append(moves, pmove{srcReg: r, dstReg: dst})
			}
			continue
		}
		late = append(late, lateLoad{dst, v})
	}
	g.parallelMove(moves)
	for _, ll := range late {
		switch {
		case g.alloc.Slot[ll.v] >= 0:
			g.spOffsetOp(loadOp(g.tgt), ll.dst, g.slotOffset(ll.v))
		default:
			if d, ok := g.consts[ll.v]; ok {
				g.loadConst(ll.dst, d.Const, scratchB)
			} else {
				g.loadConst(ll.dst, 0, scratchB)
			}
		}
	}
	pos := g.emit(isa.Jal(isa.RegRA, 0))
	g.calls = append(g.calls, callFix{pos: pos, callee: in.Callee.Name})
	if in.Dst != NoValue {
		rd := g.destReg(in.Dst)
		if rd != isa.RegA0 {
			g.emit(isa.R(isa.OpAdd, rd, isa.RegA0, isa.RegZero))
		}
		g.finishDest(in.Dst, rd)
	}
}

// nextBlock returns the block laid out after b, or nil.
func (g *codegen) nextBlock(b *Block) *Block {
	for i, x := range g.layout {
		if x == b && i+1 < len(g.layout) {
			return g.layout[i+1]
		}
	}
	return nil
}

func (g *codegen) genBr(b *Block, target *Block) {
	if g.nextBlock(b) == target {
		return // fallthrough
	}
	pos := g.emit(isa.Jal(isa.RegZero, 0))
	g.fixes = append(g.fixes, branchFix{pos: pos, target: target})
}

// branchFor maps a comparison kind to (opcode, swap-operands).
func branchFor(kind lang.BinOp) (isa.Opcode, bool) {
	switch kind {
	case lang.OpLt:
		return isa.OpBlt, false
	case lang.OpLe:
		return isa.OpBge, true
	case lang.OpGt:
		return isa.OpBlt, true
	case lang.OpGe:
		return isa.OpBge, false
	case lang.OpEq:
		return isa.OpBeq, false
	default: // OpNe
		return isa.OpBne, false
	}
}

// negate returns the comparison with inverted truth value.
func negate(kind lang.BinOp) lang.BinOp {
	switch kind {
	case lang.OpLt:
		return lang.OpGe
	case lang.OpLe:
		return lang.OpGt
	case lang.OpGt:
		return lang.OpLe
	case lang.OpGe:
		return lang.OpLt
	case lang.OpEq:
		return lang.OpNe
	default:
		return lang.OpEq
	}
}

func (g *codegen) genCondBr(b *Block, idx int, in *Instr) {
	tTrue, tFalse := in.Targets[0], in.Targets[1]
	next := g.nextBlock(b)

	var kind lang.BinOp
	var ra, rb uint8
	if ci, ok := g.fusedCmp[b]; ok && ci == idx-1 {
		cmp := &b.Instrs[ci]
		kind = cmp.Kind
		ra = g.valReg(cmp.A, scratchA)
		rb = g.valReg(cmp.B, scratchB)
	} else {
		// Branch on value != 0.
		kind = lang.OpNe
		ra = g.valReg(in.A, scratchA)
		rb = isa.RegZero
	}

	emitBranch := func(k lang.BinOp, target *Block) {
		op, swap := branchFor(k)
		r1, r2 := ra, rb
		if swap {
			r1, r2 = rb, ra
		}
		pos := g.emit(isa.Branch(op, r1, r2, 0))
		g.fixes = append(g.fixes, branchFix{pos: pos, target: target})
	}

	if tTrue == next {
		emitBranch(negate(kind), tFalse)
		return
	}
	emitBranch(kind, tTrue)
	if tFalse != next {
		pos := g.emit(isa.Jal(isa.RegZero, 0))
		g.fixes = append(g.fixes, branchFix{pos: pos, target: tFalse})
	}
}

// Generate assembles the whole module into a loadable program: a startup
// stub (call main, halt) followed by every function.
func Generate(mod *Module, tgt Target, o0 bool) (*machine.Program, error) {
	var fns []*genFunc
	for _, f := range mod.Funcs {
		gf, err := genFunction(mod, f, tgt, o0)
		if err != nil {
			return nil, err
		}
		fns = append(fns, gf)
	}
	// Startup stub occupies the first two words.
	code := []isa.Instr{isa.Jal(isa.RegRA, 0), isa.Halt()}
	base := map[string]int{}
	for _, fn := range fns {
		base[fn.name] = len(code)
		code = append(code, fn.code...)
	}
	// Patch calls (including the stub's call to main).
	code[0].Imm = int32(base["main"] - 1)
	offset := 2
	for _, fn := range fns {
		for _, c := range fn.calls {
			abs := offset + c.pos
			code[abs].Imm = int32(base[c.callee] - (abs + 1))
		}
		offset += len(fn.code)
	}
	globalSize := mod.GlobalSize
	if globalSize == 0 {
		globalSize = 8
	}
	return &machine.Program{
		Code:       isa.Assemble(code),
		Entry:      machine.CodeBase,
		GlobalSize: uint64(globalSize),
	}, nil
}
