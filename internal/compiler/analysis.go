package compiler

// CFG and dataflow analyses shared by the optimization passes and the
// register allocator.

// ComputePreds rebuilds predecessor lists from successor edges.
func ComputePreds(f *Func) {
	for _, b := range f.Blocks {
		b.Preds = b.Preds[:0]
	}
	for _, b := range f.Blocks {
		for _, s := range b.Succs() {
			s.Preds = append(s.Preds, b)
		}
	}
}

// RemoveUnreachable drops blocks not reachable from the entry and
// renumbers the remainder. It returns true when anything was removed.
func RemoveUnreachable(f *Func) bool {
	seen := map[*Block]bool{f.Entry: true}
	work := []*Block{f.Entry}
	for len(work) > 0 {
		b := work[len(work)-1]
		work = work[:len(work)-1]
		for _, s := range b.Succs() {
			if !seen[s] {
				seen[s] = true
				work = append(work, s)
			}
		}
	}
	if len(seen) == len(f.Blocks) {
		ComputePreds(f)
		return false
	}
	kept := f.Blocks[:0]
	for _, b := range f.Blocks {
		if seen[b] {
			kept = append(kept, b)
		}
	}
	f.Blocks = kept
	for i, b := range f.Blocks {
		b.ID = i
	}
	f.nextBlock = len(f.Blocks)
	ComputePreds(f)
	return true
}

// RPO returns the blocks in reverse postorder from the entry.
func RPO(f *Func) []*Block {
	seen := map[*Block]bool{}
	var post []*Block
	var walk func(*Block)
	walk = func(b *Block) {
		seen[b] = true
		for _, s := range b.Succs() {
			if !seen[s] {
				walk(s)
			}
		}
		post = append(post, b)
	}
	walk(f.Entry)
	for i, j := 0, len(post)-1; i < j; i, j = i+1, j-1 {
		post[i], post[j] = post[j], post[i]
	}
	return post
}

// Dominators computes the immediate-dominator map with the classic
// iterative algorithm over reverse postorder.
func Dominators(f *Func) map[*Block]*Block {
	order := RPO(f)
	index := map[*Block]int{}
	for i, b := range order {
		index[b] = i
	}
	idom := map[*Block]*Block{f.Entry: f.Entry}
	intersect := func(a, b *Block) *Block {
		for a != b {
			for index[a] > index[b] {
				a = idom[a]
			}
			for index[b] > index[a] {
				b = idom[b]
			}
		}
		return a
	}
	for changed := true; changed; {
		changed = false
		for _, b := range order[1:] {
			var newIdom *Block
			for _, p := range b.Preds {
				if idom[p] == nil {
					continue
				}
				if newIdom == nil {
					newIdom = p
				} else {
					newIdom = intersect(newIdom, p)
				}
			}
			if newIdom != nil && idom[b] != newIdom {
				idom[b] = newIdom
				changed = true
			}
		}
	}
	return idom
}

// Dominates reports whether a dominates b under the idom map.
func Dominates(idom map[*Block]*Block, a, b *Block) bool {
	for {
		if a == b {
			return true
		}
		next := idom[b]
		if next == nil || next == b {
			return false
		}
		b = next
	}
}

// Loop is one natural loop.
type Loop struct {
	Header *Block
	Blocks map[*Block]bool
	// Latches are the in-loop predecessors of the header.
	Latches []*Block
}

// NaturalLoops finds the natural loops of f (one per header; multiple
// back edges to the same header are merged).
func NaturalLoops(f *Func) []*Loop {
	ComputePreds(f)
	idom := Dominators(f)
	byHeader := map[*Block]*Loop{}
	var loops []*Loop
	for _, b := range f.Blocks {
		for _, s := range b.Succs() {
			if !Dominates(idom, s, b) {
				continue // not a back edge
			}
			lp := byHeader[s]
			if lp == nil {
				lp = &Loop{Header: s, Blocks: map[*Block]bool{s: true}}
				byHeader[s] = lp
				loops = append(loops, lp)
			}
			lp.Latches = append(lp.Latches, b)
			// Collect body: walk predecessors from the latch up to the
			// header.
			work := []*Block{b}
			for len(work) > 0 {
				x := work[len(work)-1]
				work = work[:len(work)-1]
				if lp.Blocks[x] {
					continue
				}
				lp.Blocks[x] = true
				for _, p := range x.Preds {
					work = append(work, p)
				}
			}
		}
	}
	return loops
}

// UseCounts returns per-value use counts across the function.
func UseCounts(f *Func) []int {
	counts := make([]int, f.NumVals)
	var buf []Value
	for _, b := range f.Blocks {
		for i := range b.Instrs {
			buf = b.Instrs[i].Uses(buf[:0])
			for _, v := range buf {
				counts[v]++
			}
		}
	}
	return counts
}

// DefCounts returns per-value definition counts. Function parameters
// count as a definition at entry: treating them as undefined would let
// the single-def copy-propagation rule alias a parameter to a value
// assigned later in the body.
func DefCounts(f *Func) []int {
	counts := make([]int, f.NumVals)
	for _, p := range f.Params {
		counts[p]++
	}
	for _, b := range f.Blocks {
		for i := range b.Instrs {
			if d := b.Instrs[i].Def(); d != NoValue {
				counts[d]++
			}
		}
	}
	return counts
}

// ConstDefs maps each value defined exactly once by an IRConst to that
// defining instruction. Instruction selection and folding consult it to
// recognize immediate operands.
func ConstDefs(f *Func) map[Value]Instr {
	defs := DefCounts(f)
	out := map[Value]Instr{}
	for _, b := range f.Blocks {
		for i := range b.Instrs {
			in := &b.Instrs[i]
			if in.Op == IRConst && defs[in.Dst] == 1 {
				out[in.Dst] = *in
			}
		}
	}
	return out
}

// Liveness computes conservative live intervals over a block layout.
// Positions number instructions consecutively in layout order.
type Interval struct {
	Start, End int
	CrossCall  bool
}

// LiveIntervals returns an interval per value (zero-valued when unused)
// plus the positions of call instructions.
func LiveIntervals(f *Func, layout []*Block) []Interval {
	ComputePreds(f)
	// Per-block use/def and iterative liveness.
	liveIn := map[*Block]map[Value]bool{}
	liveOut := map[*Block]map[Value]bool{}
	use := map[*Block]map[Value]bool{}
	def := map[*Block]map[Value]bool{}
	var buf []Value
	for _, b := range f.Blocks {
		u, d := map[Value]bool{}, map[Value]bool{}
		for i := range b.Instrs {
			in := &b.Instrs[i]
			buf = in.Uses(buf[:0])
			for _, v := range buf {
				if !d[v] {
					u[v] = true
				}
			}
			if dd := in.Def(); dd != NoValue {
				d[dd] = true
			}
		}
		use[b], def[b] = u, d
		liveIn[b], liveOut[b] = map[Value]bool{}, map[Value]bool{}
	}
	for changed := true; changed; {
		changed = false
		for i := len(layout) - 1; i >= 0; i-- {
			b := layout[i]
			out := liveOut[b]
			for _, s := range b.Succs() {
				for v := range liveIn[s] { //lint:ordered monotone set union to fixpoint; order cannot change the fixpoint
					if !out[v] {
						out[v] = true
						changed = true
					}
				}
			}
			in := liveIn[b]
			for v := range use[b] { //lint:ordered monotone set union to fixpoint; order cannot change the fixpoint
				if !in[v] {
					in[v] = true
					changed = true
				}
			}
			for v := range out { //lint:ordered monotone set union to fixpoint; order cannot change the fixpoint
				if !def[b][v] && !in[v] {
					in[v] = true
					changed = true
				}
			}
		}
	}
	// Assign positions and build intervals.
	iv := make([]Interval, f.NumVals)
	started := make([]bool, f.NumVals)
	touch := func(v Value, pos int) {
		if !started[v] {
			iv[v] = Interval{Start: pos, End: pos}
			started[v] = true
			return
		}
		if pos < iv[v].Start {
			iv[v].Start = pos
		}
		if pos > iv[v].End {
			iv[v].End = pos
		}
	}
	pos := 0
	var callPositions []int
	for _, b := range layout {
		blockStart := pos
		for i := range b.Instrs {
			in := &b.Instrs[i]
			buf = in.Uses(buf[:0])
			for _, v := range buf {
				touch(v, pos)
			}
			if d := in.Def(); d != NoValue {
				touch(d, pos)
			}
			if in.Op == IRCall {
				callPositions = append(callPositions, pos)
			}
			pos++
		}
		blockEnd := pos - 1
		for v := range liveIn[b] { //lint:ordered touch widens interval min/max; commutative
			touch(v, blockStart)
		}
		for v := range liveOut[b] { //lint:ordered touch widens interval min/max; commutative
			touch(v, blockEnd)
		}
	}
	// Function parameters are defined at entry.
	for _, p := range f.Params {
		touch(p, 0)
	}
	for v := range iv {
		if !started[v] {
			continue
		}
		for _, cp := range callPositions {
			if iv[v].Start < cp && cp < iv[v].End {
				iv[v].CrossCall = true
				break
			}
		}
	}
	return iv
}
