package compiler

import (
	"fmt"
	"sort"

	"sevsim/internal/lang"
)

// The O2 pass set: loop-invariant code motion, strength reduction,
// address-offset folding, cross-jumping, and list instruction
// scheduling.

// RunO2 applies the O2-only passes (after RunO1) and re-cleans.
// hoistCap bounds loop-invariant hoisting per loop: hoisted temporaries
// live across the whole loop, so unbounded hoisting trades recomputation
// for spills on register-poor targets (a pressure-aware LICM, as real
// compilers implement).
func RunO2(f *Func, xlen, hoistCap int) {
	for i := 0; i < 4; i++ {
		changed := AddrFold(f)
		changed = LICM(f, hoistCap) || changed
		changed = StrengthReduce(f, xlen) || changed
		changed = CrossJump(f) || changed
		RunO1(f, xlen)
		if !changed {
			break
		}
	}
}

// AddrFold folds constant address arithmetic into load/store offsets:
// a load from (x + c) becomes a load from x with offset c.
func AddrFold(f *Func) bool {
	changed := false
	defs := DefCounts(f)
	consts := ConstDefs(f)
	// Map single-def adds of (value, const).
	type baseOff struct {
		base Value
		off  int64
	}
	adds := map[Value]baseOff{}
	for _, b := range f.Blocks {
		for i := range b.Instrs {
			in := &b.Instrs[i]
			if in.Op != IRBin || in.Kind != lang.OpAdd || defs[in.Dst] != 1 {
				continue
			}
			if c, ok := consts[in.B]; ok {
				adds[in.Dst] = baseOff{in.A, c.Const}
			} else if c, ok := consts[in.A]; ok {
				adds[in.Dst] = baseOff{in.B, c.Const}
			}
		}
	}
	if len(adds) == 0 {
		return false
	}
	for _, b := range f.Blocks {
		for i := range b.Instrs {
			in := &b.Instrs[i]
			if in.Op != IRLoad && in.Op != IRStore {
				continue
			}
			if bo, ok := adds[in.A]; ok && fitsImm16(in.Off+bo.off) && defs[bo.base] == 1 {
				in.A = bo.base
				in.Off += bo.off
				changed = true
			}
		}
	}
	return changed
}

// LICM hoists loop-invariant pure computations (and loads out of
// write-free loops) into a preheader. Only function-wide single-def
// temporaries are hoisted, which is always safe in the mutable-register
// TAC: their value cannot differ between iterations.
func LICM(f *Func, hoistCap int) bool {
	changed := false
	loops := NaturalLoops(f)
	if len(loops) == 0 {
		return false
	}
	defs := DefCounts(f)
	for _, lp := range loops {
		changed = hoistLoop(f, lp, defs, hoistCap) || changed
	}
	if changed {
		RemoveUnreachable(f)
	}
	return changed
}

func hoistLoop(f *Func, lp *Loop, defs []int, hoistCap int) bool {
	// Deterministic block order: map iteration order would make the
	// hoist order (and hence generated code) vary run to run.
	blocks := make([]*Block, 0, len(lp.Blocks))
	for b := range lp.Blocks { //lint:ordered collected into a slice and sorted by block ID on the next lines
		blocks = append(blocks, b)
	}
	sort.Slice(blocks, func(i, j int) bool { return blocks[i].ID < blocks[j].ID })
	// Values defined anywhere inside the loop.
	definedIn := map[Value]bool{}
	memWrite := false
	for _, b := range blocks {
		for i := range b.Instrs {
			in := &b.Instrs[i]
			if d := in.Def(); d != NoValue {
				definedIn[d] = true
			}
			if in.Op == IRStore || in.Op == IRCall {
				memWrite = true
			}
		}
	}
	// Collect hoistable instructions to a fixed point (chains of
	// invariant temps).
	hoisted := map[Value]bool{}
	var moves []Instr
	var buf []Value
	for again := true; again; {
		again = false
		for _, b := range blocks {
			kept := b.Instrs[:0]
			for i := range b.Instrs {
				in := b.Instrs[i]
				ok := false
				switch {
				case in.Pure() && in.Dst != NoValue && defs[in.Dst] == 1:
					ok = true
				case in.Op == IRLoad && !memWrite && defs[in.Dst] == 1:
					ok = true
				}
				if ok && len(moves) >= hoistCap {
					ok = false
				}
				if ok {
					buf = in.Uses(buf[:0])
					for _, u := range buf {
						if definedIn[u] && !hoisted[u] {
							ok = false
							break
						}
					}
				}
				if ok {
					hoisted[in.Dst] = true
					moves = append(moves, in)
					again = true
					continue
				}
				kept = append(kept, in)
			}
			b.Instrs = kept
		}
	}
	if len(moves) == 0 {
		return false
	}
	pre := makePreheader(f, lp)
	// Insert before the preheader's terminator.
	term := pre.Instrs[len(pre.Instrs)-1]
	pre.Instrs = append(pre.Instrs[:len(pre.Instrs)-1], moves...)
	pre.Instrs = append(pre.Instrs, term)
	return true
}

// makePreheader ensures the loop header has a unique out-of-loop
// predecessor ending in an unconditional branch, creating one if needed.
func makePreheader(f *Func, lp *Loop) *Block {
	ComputePreds(f)
	var outside []*Block
	for _, p := range lp.Header.Preds {
		if !lp.Blocks[p] {
			outside = append(outside, p)
		}
	}
	if len(outside) == 1 {
		p := outside[0]
		if n := len(p.Instrs); n > 0 && p.Instrs[n-1].Op == IRBr {
			return p
		}
	}
	pre := f.NewBlock()
	pre.Instrs = []Instr{{Op: IRBr, Targets: [2]*Block{lp.Header}}}
	for _, p := range outside {
		t := &p.Instrs[len(p.Instrs)-1]
		for k := range t.Targets {
			if t.Targets[k] == lp.Header {
				t.Targets[k] = pre
			}
		}
	}
	if f.Entry == lp.Header {
		f.Entry = pre
	}
	ComputePreds(f)
	return pre
}

// StrengthReduce rewrites multiplications and divisions by suitable
// constants into shift/add sequences.
func StrengthReduce(f *Func, xlen int) bool {
	changed := false
	consts := ConstDefs(f)
	isPow2 := func(c int64) (int64, bool) {
		if c > 0 && c&(c-1) == 0 {
			k := int64(0)
			for 1<<k < c {
				k++
			}
			return k, true
		}
		return 0, false
	}
	for _, b := range f.Blocks {
		var out []Instr
		rewrote := false
		newConst := func(c int64) Value {
			v := f.NewValue()
			out = append(out, Instr{Op: IRConst, Dst: v, Const: c})
			return v
		}
		newBin := func(kind lang.BinOp, a, bb Value) Value {
			v := f.NewValue()
			out = append(out, Instr{Op: IRBin, Kind: kind, Dst: v, A: a, B: bb})
			return v
		}
		for i := range b.Instrs {
			in := b.Instrs[i]
			if in.Op == IRBin {
				var x Value = NoValue
				var c int64
				if d, ok := consts[in.B]; ok {
					x, c = in.A, d.Const
				} else if d, ok := consts[in.A]; ok && in.Kind == lang.OpMul {
					x, c = in.B, d.Const
				}
				if x != NoValue {
					switch in.Kind {
					case lang.OpMul:
						if k, ok := isPow2(c); ok && k > 0 {
							sh := newConst(k)
							out = append(out, Instr{Op: IRBin, Kind: lang.OpShl, Dst: in.Dst, A: x, B: sh})
							rewrote = true
							continue
						}
						// x*3, x*5, x*9 -> (x<<k) + x
						if c == 3 || c == 5 || c == 9 {
							k := map[int64]int64{3: 1, 5: 2, 9: 3}[c]
							sh := newConst(k)
							t := newBin(lang.OpShl, x, sh)
							out = append(out, Instr{Op: IRBin, Kind: lang.OpAdd, Dst: in.Dst, A: t, B: x})
							rewrote = true
							continue
						}
					case lang.OpDiv:
						if k, ok := isPow2(c); ok && k > 0 && in.B != NoValue && x == in.A {
							// Round-toward-zero signed division:
							// d = (x + ((x >> (xlen-1)) & (c-1))) >> k
							s1 := newConst(int64(xlen - 1))
							t1 := newBin(lang.OpShr, x, s1)
							m := newConst(c - 1)
							t2 := newBin(lang.OpAnd, t1, m)
							t3 := newBin(lang.OpAdd, x, t2)
							sk := newConst(k)
							out = append(out, Instr{Op: IRBin, Kind: lang.OpShr, Dst: in.Dst, A: t3, B: sk})
							rewrote = true
							continue
						}
					}
				}
			}
			out = append(out, in)
		}
		if rewrote {
			b.Instrs = out
			changed = true
		}
	}
	return changed
}

// CrossJump merges blocks with identical contents and identical
// successors, the classic tail-merging optimization GCC performs at O2.
func CrossJump(f *Func) bool {
	changed := false
	for {
		byKey := map[string]*Block{}
		replaced := map[*Block]*Block{}
		for _, b := range f.Blocks {
			key := blockKey(b)
			if key == "" {
				continue
			}
			if canon, ok := byKey[key]; ok && canon != b {
				replaced[b] = canon
			} else {
				byKey[key] = b
			}
		}
		if len(replaced) == 0 {
			return changed
		}
		for _, b := range f.Blocks {
			if n := len(b.Instrs); n > 0 {
				t := &b.Instrs[n-1]
				for k := range t.Targets {
					if r, ok := replaced[t.Targets[k]]; ok {
						t.Targets[k] = r
					}
				}
			}
		}
		if r, ok := replaced[f.Entry]; ok {
			f.Entry = r
		}
		RemoveUnreachable(f)
		changed = true
	}
}

// blockKey renders a block's contents for structural comparison; blocks
// that branch to themselves are excluded.
func blockKey(b *Block) string {
	key := ""
	for i := range b.Instrs {
		in := &b.Instrs[i]
		for _, t := range in.Targets {
			if t == b {
				return ""
			}
		}
		key += fmt.Sprintf("%d,%d,%d,%d,%d,%d,%d,%p,%p;",
			in.Op, in.Kind, in.Dst, in.A, in.B, in.Const, in.Off, in.Sym, in.Callee)
		for _, t := range in.Targets {
			key += fmt.Sprintf("%p,", t)
		}
		for _, a := range in.Args {
			key += fmt.Sprintf("a%d,", a)
		}
	}
	return key
}

// Schedule list-schedules each block to separate loads from their uses
// and shorten critical paths, respecting register and memory
// dependences. The block terminator (and a comparison fused into it)
// stays in place.
func Schedule(f *Func) {
	for _, b := range f.Blocks {
		scheduleBlock(b)
	}
}

func scheduleBlock(b *Block) {
	n := len(b.Instrs)
	if n < 3 {
		return
	}
	end := n - 1 // exclude terminator
	// Keep a compare that feeds the terminating CondBr adjacent to it.
	var pinned []Instr
	term := b.Instrs[n-1]
	if term.Op == IRCondBr && end >= 1 {
		cmp := &b.Instrs[end-1]
		if cmp.Op == IRBin && cmp.Dst == term.A {
			pinned = append(pinned, *cmp)
			end--
		}
	}
	body := b.Instrs[:end]
	if len(body) < 2 {
		return
	}

	// Dependence DAG.
	type node struct {
		succs  []int
		npred  int
		height int
		weight int
	}
	nodes := make([]node, len(body))
	lastDef := map[Value]int{}
	lastUses := map[Value][]int{}
	lastMemWrite := -1
	var lastMemReads []int
	lastOut := -1
	addEdge := func(from, to int) {
		if from >= 0 && from != to {
			nodes[from].succs = append(nodes[from].succs, to)
			nodes[to].npred++
		}
	}
	var buf []Value
	for i := range body {
		in := &body[i]
		nodes[i].weight = 1
		if in.Op == IRLoad {
			nodes[i].weight = 3
		}
		buf = in.Uses(buf[:0])
		for _, u := range buf {
			if d, ok := lastDef[u]; ok {
				addEdge(d, i) // RAW
			}
			lastUses[u] = append(lastUses[u], i)
		}
		if dd := in.Def(); dd != NoValue {
			if d, ok := lastDef[dd]; ok {
				addEdge(d, i) // WAW
			}
			for _, u := range lastUses[dd] {
				addEdge(u, i) // WAR
			}
			lastDef[dd] = i
			lastUses[dd] = nil
		}
		switch in.Op {
		case IRLoad:
			addEdge(lastMemWrite, i)
			lastMemReads = append(lastMemReads, i)
		case IRStore:
			addEdge(lastMemWrite, i)
			for _, r := range lastMemReads {
				addEdge(r, i)
			}
			lastMemWrite = i
			lastMemReads = nil
		case IRCall:
			addEdge(lastMemWrite, i)
			for _, r := range lastMemReads {
				addEdge(r, i)
			}
			addEdge(lastOut, i)
			lastMemWrite = i
			lastMemReads = nil
			lastOut = i
		case IROut:
			addEdge(lastOut, i)
			addEdge(lastMemWrite, i) // calls emit output too
			lastOut = i
		}
	}
	// Heights by reverse scan (DAG edges always go forward).
	for i := len(body) - 1; i >= 0; i-- {
		h := 0
		for _, s := range nodes[i].succs {
			if nodes[s].height > h {
				h = nodes[s].height
			}
		}
		nodes[i].height = h + nodes[i].weight
	}
	// List scheduling: repeatedly pick the ready node with max height.
	ready := []int{}
	npred := make([]int, len(body))
	for i := range nodes {
		npred[i] = nodes[i].npred
		if npred[i] == 0 {
			ready = append(ready, i)
		}
	}
	sched := make([]Instr, 0, len(body))
	for len(ready) > 0 {
		sort.Slice(ready, func(a, b int) bool {
			if nodes[ready[a]].height != nodes[ready[b]].height {
				return nodes[ready[a]].height > nodes[ready[b]].height
			}
			return ready[a] < ready[b]
		})
		pick := ready[0]
		ready = ready[1:]
		sched = append(sched, body[pick])
		for _, s := range nodes[pick].succs {
			npred[s]--
			if npred[s] == 0 {
				ready = append(ready, s)
			}
		}
	}
	if len(sched) != len(body) {
		return // cycle would indicate a bug; keep original order
	}
	out := append(sched, pinned...)
	out = append(out, term)
	copy(b.Instrs, out)
}
