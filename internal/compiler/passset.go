package compiler

import (
	"sevsim/internal/lang"
	"sevsim/internal/machine"
)

// PassSet selects individual optimizations, decoupled from the -O
// levels. The paper's stated future work is to "characterize the impact
// of specific optimizations of each compiler optimization level";
// OptimizeWith makes that experiment expressible: compile with one pass
// removed (or added) and re-measure the vulnerability.
type PassSet struct {
	// Basic is the O1 bundle: constant folding, copy propagation, local
	// CSE, dead-code elimination, CFG cleanup.
	Basic bool
	// UserVarsInMemory pins named variables to stack slots (the O0
	// storage model). Implies worse code regardless of other passes.
	UserVarsInMemory bool

	// O2 features.
	LICM       bool
	Strength   bool
	CrossJump  bool
	Scheduling bool

	// O3 features.
	Inline bool
	Unroll bool
}

// LevelPasses returns the PassSet equivalent to an -O level for the
// given target (scheduling engages only on the register-rich target, as
// in Optimize).
func LevelPasses(level OptLevel, tgt Target) PassSet {
	ps := PassSet{}
	switch level {
	case O0:
		ps.UserVarsInMemory = true
	case O1:
		ps.Basic = true
	case O2:
		ps.Basic = true
		ps.LICM = true
		ps.Strength = true
		ps.CrossJump = true
		ps.Scheduling = tgt.NumArchRegs >= 32
	case O3:
		ps.Basic = true
		ps.LICM = true
		ps.Strength = true
		ps.CrossJump = true
		ps.Scheduling = tgt.NumArchRegs >= 32
		ps.Inline = true
		ps.Unroll = true
	}
	return ps
}

// Without returns a copy of the set with one named pass disabled. Valid
// names: basic, licm, strength, crossjump, scheduling, inline, unroll.
func (ps PassSet) Without(name string) PassSet {
	switch name {
	case "basic":
		ps.Basic = false
	case "licm":
		ps.LICM = false
	case "strength":
		ps.Strength = false
	case "crossjump":
		ps.CrossJump = false
	case "scheduling":
		ps.Scheduling = false
	case "inline":
		ps.Inline = false
	case "unroll":
		ps.Unroll = false
	}
	return ps
}

// PassNames lists the toggleable optimization names in pipeline order.
func PassNames() []string {
	return []string{"basic", "licm", "strength", "crossjump", "scheduling", "inline", "unroll"}
}

// hoistCapFor returns the register-pressure-aware LICM bound.
func hoistCapFor(tgt Target) int {
	if tgt.NumArchRegs >= 32 {
		return 14
	}
	return 6
}

// OptimizeWith runs exactly the selected passes on the module.
func OptimizeWith(mod *Module, ps PassSet, tgt Target) {
	if ps.Inline {
		InlineCalls(mod)
	}
	cap := hoistCapFor(tgt)
	for _, f := range mod.Funcs {
		if !ps.Basic {
			RemoveUnreachable(f)
		} else {
			RunO1(f, tgt.XLEN)
		}
		if ps.LICM || ps.Strength || ps.CrossJump {
			for i := 0; i < 4; i++ {
				changed := false
				if ps.LICM {
					changed = AddrFold(f) || changed
					changed = LICM(f, cap) || changed
				}
				if ps.Strength {
					changed = StrengthReduce(f, tgt.XLEN) || changed
				}
				if ps.CrossJump {
					changed = CrossJump(f) || changed
				}
				if ps.Basic {
					RunO1(f, tgt.XLEN)
				} else {
					Cleanup(f)
				}
				if !changed {
					break
				}
			}
		}
		if ps.Unroll {
			UnrollLoops(f)
			if ps.Basic {
				RunO1(f, tgt.XLEN)
			} else {
				Cleanup(f)
			}
		}
		if ps.Scheduling {
			Schedule(f)
		}
	}
}

// CompileWithPasses compiles MiniC with an explicit pass selection.
func CompileWithPasses(src, name string, ps PassSet, tgt Target) (*machine.Program, error) {
	prog, err := lang.Parse(src)
	if err != nil {
		return nil, err
	}
	mod, err := Lower(prog, tgt.WordSize())
	if err != nil {
		return nil, err
	}
	OptimizeWith(mod, ps, tgt)
	p, err := Generate(mod, tgt, ps.UserVarsInMemory)
	if err != nil {
		return nil, err
	}
	p.Name = name
	return p, nil
}
