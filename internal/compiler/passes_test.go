package compiler

import (
	"strings"
	"testing"

	"sevsim/internal/lang"
)

// lowerSrc parses and lowers a program for pass-level inspection.
func lowerSrc(t *testing.T, src string, wordSize int) *Module {
	t.Helper()
	prog, err := lang.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	mod, err := Lower(prog, wordSize)
	if err != nil {
		t.Fatal(err)
	}
	return mod
}

func countOps(f *Func, op Op) int {
	n := 0
	for _, b := range f.Blocks {
		for i := range b.Instrs {
			if b.Instrs[i].Op == op {
				n++
			}
		}
	}
	return n
}

func countBin(f *Func, kind lang.BinOp) int {
	n := 0
	for _, b := range f.Blocks {
		for i := range b.Instrs {
			if b.Instrs[i].Op == IRBin && b.Instrs[i].Kind == kind {
				n++
			}
		}
	}
	return n
}

func TestConstFoldCollapsesExpressions(t *testing.T) {
	mod := lowerSrc(t, `func main() { out(2 * 3 + 4); }`, 4)
	f := mod.ByName["main"]
	RunO1(f, 32)
	if n := countOps(f, IRBin); n != 0 {
		t.Errorf("constant expression left %d binops:\n%s", n, f.String())
	}
	if !strings.Contains(f.String(), "const 10") {
		t.Errorf("folded constant missing:\n%s", f.String())
	}
}

func TestConstFoldWrapsAtTargetWidth(t *testing.T) {
	src := `func main() { var int big = 2000000000; out(big * 3); }`
	mod32 := lowerSrc(t, src, 4)
	RunO1(mod32.ByName["main"], 32)
	if !strings.Contains(mod32.ByName["main"].String(), "const 1705032704") {
		t.Errorf("32-bit fold wrong:\n%s", mod32.ByName["main"].String())
	}
	mod64 := lowerSrc(t, src, 8)
	RunO1(mod64.ByName["main"], 64)
	if !strings.Contains(mod64.ByName["main"].String(), "const 6000000000") {
		t.Errorf("64-bit fold wrong:\n%s", mod64.ByName["main"].String())
	}
}

func TestLVNRemovesRedundantLoads(t *testing.T) {
	src := `
global int g;
func main() {
	var int a = g + g; // one load suffices
	out(a);
}`
	mod := lowerSrc(t, src, 4)
	f := mod.ByName["main"]
	before := countOps(f, IRLoad)
	RunO1(f, 32)
	after := countOps(f, IRLoad)
	if before != 2 || after != 1 {
		t.Errorf("loads before=%d after=%d (want 2 -> 1)\n%s", before, after, f.String())
	}
}

func TestLVNRespectsStores(t *testing.T) {
	src := `
global int g;
func main() {
	var int a = g;
	g = a + 1;
	var int b = g; // must reload after the store
	out(a + b);
}`
	mod := lowerSrc(t, src, 4)
	f := mod.ByName["main"]
	RunO1(f, 32)
	if n := countOps(f, IRLoad); n != 2 {
		t.Errorf("loads after O1 = %d, want 2 (store invalidates):\n%s", n, f.String())
	}
}

func TestDCERemovesDeadCode(t *testing.T) {
	src := `func main() { var int unused = 3 * 7; out(1); }`
	mod := lowerSrc(t, src, 4)
	f := mod.ByName["main"]
	RunO1(f, 32)
	// Only the out's constant should remain.
	total := 0
	for _, b := range f.Blocks {
		total += len(b.Instrs)
	}
	if total > 3 { // const 1, out, ret
		t.Errorf("dead code survived (%d instrs):\n%s", total, f.String())
	}
}

func TestCleanupMergesStraightLine(t *testing.T) {
	src := `func main() { var int x = 1; if (1) { x = 2; } out(x); }`
	mod := lowerSrc(t, src, 4)
	f := mod.ByName["main"]
	RunO1(f, 32)
	if len(f.Blocks) != 1 {
		t.Errorf("constant branch not collapsed to one block:\n%s", f.String())
	}
}

func TestLICMHoistsInvariant(t *testing.T) {
	src := `
global int out1[64];
func main() {
	var int a = 5;
	var int b = 7;
	var int i;
	for (i = 0; i < 64; i = i + 1) {
		out1[i] = a * b + i; // a*b is invariant but not constant-foldable? it is; use params
	}
	out(out1[3]);
}`
	// a*b folds to a constant here, so use a version with an opaque value.
	src = `
global int data[64];
func run(int a, int b) {
	var int i;
	for (i = 0; i < 64; i = i + 1) {
		data[i] = a * b + i;
	}
}
func main() { run(3, 9); out(data[5]); }`
	mod := lowerSrc(t, src, 4)
	f := mod.ByName["run"]
	RunO1(f, 32)
	RunO2(f, 32, 8)
	// The multiply must have left every loop: find the loop and check.
	loops := NaturalLoops(f)
	if len(loops) == 0 {
		t.Fatalf("loop disappeared:\n%s", f.String())
	}
	for _, lp := range loops {
		for b := range lp.Blocks {
			for i := range b.Instrs {
				in := &b.Instrs[i]
				if in.Op == IRBin && in.Kind == lang.OpMul {
					t.Errorf("invariant multiply still in loop:\n%s", f.String())
				}
			}
		}
	}
}

func TestStrengthReductionPow2(t *testing.T) {
	src := `func run(int x) int { return x * 8 + x / 4; }
func main() { out(run(40)); }`
	mod := lowerSrc(t, src, 4)
	f := mod.ByName["run"]
	RunO1(f, 32)
	StrengthReduce(f, 32)
	if n := countBin(f, lang.OpMul); n != 0 {
		t.Errorf("mul by 8 not reduced:\n%s", f.String())
	}
	if n := countBin(f, lang.OpDiv); n != 0 {
		t.Errorf("div by 4 not reduced:\n%s", f.String())
	}
	if n := countBin(f, lang.OpShl); n == 0 {
		t.Errorf("expected shifts after reduction:\n%s", f.String())
	}
}

func TestStrengthReductionMulByThree(t *testing.T) {
	src := `func run(int x) int { return x * 3; }
func main() { out(run(5)); }`
	mod := lowerSrc(t, src, 4)
	f := mod.ByName["run"]
	RunO1(f, 32)
	StrengthReduce(f, 32)
	if countBin(f, lang.OpMul) != 0 || countBin(f, lang.OpShl) == 0 || countBin(f, lang.OpAdd) == 0 {
		t.Errorf("x*3 should become shift+add:\n%s", f.String())
	}
}

func TestInlineLeafFunction(t *testing.T) {
	src := `
func tiny(int x) int { return x * 2 + 1; }
func main() { out(tiny(10) + tiny(20)); }`
	mod := lowerSrc(t, src, 4)
	InlineCalls(mod)
	f := mod.ByName["main"]
	if n := countOps(f, IRCall); n != 0 {
		t.Errorf("%d calls remain after inlining:\n%s", n, f.String())
	}
}

func TestInlineSkipsRecursionAndArrays(t *testing.T) {
	src := `
func fib(int n) int { if (n < 2) { return n; } return fib(n-1) + fib(n-2); }
func arr() int { var int a[4]; a[0] = 1; return a[0]; }
func main() { out(fib(5) + arr()); }`
	mod := lowerSrc(t, src, 4)
	InlineCalls(mod)
	f := mod.ByName["main"]
	if n := countOps(f, IRCall); n != 2 {
		t.Errorf("recursive/array callees should not inline, %d calls remain:\n%s", n, f.String())
	}
}

func TestUnrollDuplicatesLoop(t *testing.T) {
	src := `
global int data[32];
func main() {
	var int i;
	for (i = 0; i < 32; i = i + 1) {
		data[i] = i * 2;
	}
	out(data[7]);
}`
	mod := lowerSrc(t, src, 4)
	f := mod.ByName["main"]
	RunO1(f, 32)
	before := 0
	for _, b := range f.Blocks {
		before += len(b.Instrs)
	}
	UnrollLoops(f)
	RunO1(f, 32)
	after := 0
	for _, b := range f.Blocks {
		after += len(b.Instrs)
	}
	if after <= before {
		t.Errorf("unroll did not grow code: %d -> %d", before, after)
	}
	// Unrolled temps must remain single-def so immediate selection works.
	defs := DefCounts(f)
	consts := ConstDefs(f)
	if len(consts) == 0 {
		t.Errorf("no single-def constants after unroll (defs=%v)", defs)
	}
}

func TestScheduleKeepsSemantics(t *testing.T) {
	src := `
global int a[16];
func main() {
	var int i;
	for (i = 0; i < 16; i = i + 1) { a[i] = i; }
	var int x = a[3];
	a[4] = x + 1;
	var int y = a[4];
	out(x + y);
}`
	mod := lowerSrc(t, src, 4)
	f := mod.ByName["main"]
	RunO1(f, 32)
	Schedule(f)
	// Memory order within blocks must be preserved: the load of a[4]
	// must still follow the store. We verify behaviourally via the
	// whole-program differential tests; here just check structure sanity.
	for _, b := range f.Blocks {
		if len(b.Instrs) == 0 {
			t.Error("schedule produced empty block")
		}
		if !b.Instrs[len(b.Instrs)-1].IsTerm() {
			t.Error("schedule lost block terminator")
		}
	}
}

func TestCrossJumpMergesIdenticalBlocks(t *testing.T) {
	// CrossJump merges structurally identical blocks (same instructions,
	// same values, same successors). Build such a CFG directly: a
	// diamond whose arms are exact copies.
	f := &Func{Name: "x", UserVals: map[Value]bool{}}
	entry := f.NewBlock()
	armA := f.NewBlock()
	armB := f.NewBlock()
	join := f.NewBlock()
	f.Entry = entry
	cond := f.NewValue()
	v := f.NewValue()
	entry.Instrs = []Instr{
		{Op: IRConst, Dst: cond, Const: 0},
		{Op: IRCondBr, A: cond, Targets: [2]*Block{armA, armB}},
	}
	arm := []Instr{
		{Op: IRConst, Dst: v, Const: 5},
		{Op: IRBr, Targets: [2]*Block{join}},
	}
	armA.Instrs = append([]Instr(nil), arm...)
	armB.Instrs = append([]Instr(nil), arm...)
	join.Instrs = []Instr{{Op: IROut, A: v}, {Op: IRRet, A: NoValue}}
	f.NumVals = 2

	if !CrossJump(f) {
		t.Fatalf("identical arms not merged:\n%s", f.String())
	}
	if len(f.Blocks) != 3 {
		t.Errorf("blocks after merge = %d, want 3:\n%s", len(f.Blocks), f.String())
	}
}

func TestDominatorsAndLoops(t *testing.T) {
	src := `
func main() {
	var int i; var int s = 0;
	for (i = 0; i < 8; i = i + 1) {
		var int j;
		for (j = 0; j < 8; j = j + 1) {
			s = s + j;
		}
	}
	out(s);
}`
	mod := lowerSrc(t, src, 4)
	f := mod.ByName["main"]
	RunO1(f, 32)
	loops := NaturalLoops(f)
	if len(loops) != 2 {
		t.Fatalf("expected 2 natural loops, got %d", len(loops))
	}
	idom := Dominators(f)
	for _, lp := range loops {
		if !Dominates(idom, f.Entry, lp.Header) {
			t.Error("entry must dominate loop headers")
		}
	}
}
