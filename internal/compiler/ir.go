// Package compiler translates MiniC to SEV machine code through a
// three-address-code IR, with an optimization pipeline organized into
// the levels O0–O3 the paper studies:
//
//	O0: direct translation; every user variable lives in its stack slot.
//	O1: + register allocation, constant folding, copy propagation,
//	    local common-subexpression elimination, dead-code elimination,
//	    jump threading and CFG cleanup.
//	O2: + loop-invariant code motion, strength reduction, cross-jumping
//	    (identical-block merging), and list instruction scheduling.
//	O3: + function inlining and loop unrolling.
package compiler

import (
	"fmt"
	"strings"

	"sevsim/internal/lang"
)

// Value is a virtual register. Negative means "none".
type Value int32

// NoValue marks an absent operand or result.
const NoValue Value = -1

// Op enumerates IR operations.
type Op uint8

const (
	IRConst  Op = iota // Dst = Const
	IRCopy             // Dst = A
	IRBin              // Dst = A Kind B
	IRAddrG            // Dst = address of global Sym
	IRAddrL            // Dst = frame address of local array Sym
	IRLoad             // Dst = mem[A + Off] (word-sized)
	IRStore            // mem[A + Off] = B
	IRCall             // Dst = Callee(Args...)  (Dst may be NoValue)
	IROut              // out A
	IRRet              // return A (A may be NoValue)
	IRBr               // goto Targets[0]
	IRCondBr           // if A != 0 goto Targets[0] else Targets[1]
)

// Instr is one IR instruction.
type Instr struct {
	Op      Op
	Kind    lang.BinOp // for IRBin
	Dst     Value
	A, B    Value
	Const   int64
	Off     int64        // addressing offset for IRLoad/IRStore
	Sym     *lang.Symbol // for IRAddrG/IRAddrL
	Callee  *Func
	Args    []Value
	Targets [2]*Block
}

// IsTerm reports whether the instruction ends a block.
func (in *Instr) IsTerm() bool { return in.Op == IRBr || in.Op == IRCondBr || in.Op == IRRet }

// Def returns the value the instruction defines, or NoValue. Only
// operations that produce a result have a meaningful Dst field;
// instructions built without one carry the zero Value and must not be
// treated as defining v0.
func (in *Instr) Def() Value {
	switch in.Op {
	case IRConst, IRCopy, IRBin, IRAddrG, IRAddrL, IRLoad, IRCall:
		return in.Dst
	}
	return NoValue
}

// Pure reports whether the instruction has no side effects and its
// result depends only on its operands (safe to CSE, hoist, or remove
// when dead). Loads are handled separately because memory may change.
func (in *Instr) Pure() bool {
	switch in.Op {
	case IRConst, IRCopy, IRBin, IRAddrG, IRAddrL:
		return true
	}
	return false
}

// Uses appends the values the instruction reads to dst.
func (in *Instr) Uses(dst []Value) []Value {
	add := func(v Value) {
		if v != NoValue {
			dst = append(dst, v)
		}
	}
	switch in.Op {
	case IRCopy:
		add(in.A)
	case IRBin:
		add(in.A)
		add(in.B)
	case IRLoad:
		add(in.A)
	case IRStore:
		add(in.A)
		add(in.B)
	case IRCall:
		for _, a := range in.Args {
			add(a)
		}
	case IROut, IRRet, IRCondBr:
		add(in.A)
	}
	return dst
}

// Block is a basic block.
type Block struct {
	ID     int
	Instrs []Instr
	Preds  []*Block
}

// Succs returns the successor blocks.
func (b *Block) Succs() []*Block {
	if len(b.Instrs) == 0 {
		return nil
	}
	t := &b.Instrs[len(b.Instrs)-1]
	switch t.Op {
	case IRBr:
		return []*Block{t.Targets[0]}
	case IRCondBr:
		return []*Block{t.Targets[0], t.Targets[1]}
	}
	return nil
}

// Func is one function's IR.
type Func struct {
	Name   string
	Decl   *lang.FuncDecl
	Params []Value // one vreg per parameter (arrays: the base address)
	Entry  *Block
	Blocks []*Block

	NumVals int

	// UserVals marks vregs that correspond to named user variables; O0
	// pins them to stack slots.
	UserVals map[Value]bool

	// LocalArrays lists local array symbols needing frame storage;
	// ArrayBytes is their total size. Symbol offsets are relative to the
	// function's array area.
	LocalArrays []*lang.Symbol
	ArrayBytes  int64

	nextBlock int
}

// NewValue allocates a fresh virtual register.
func (f *Func) NewValue() Value {
	v := Value(f.NumVals)
	f.NumVals++
	return v
}

// NewBlock allocates an empty block.
func (f *Func) NewBlock() *Block {
	b := &Block{ID: f.nextBlock}
	f.nextBlock++
	f.Blocks = append(f.Blocks, b)
	return b
}

// Module is a compiled compilation unit's IR.
type Module struct {
	Prog     *lang.Program
	Funcs    []*Func
	ByName   map[string]*Func
	WordSize int // bytes per int: XLEN/8

	// GlobalSize is the byte size of the global segment; symbol offsets
	// are assigned during lowering.
	GlobalSize int64
}

// String renders the IR for debugging and golden tests.
func (f *Func) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "func %s(", f.Name)
	for i, p := range f.Params {
		if i > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "v%d", p)
	}
	sb.WriteString(")\n")
	for _, b := range f.Blocks {
		fmt.Fprintf(&sb, "b%d:\n", b.ID)
		for i := range b.Instrs {
			fmt.Fprintf(&sb, "  %s\n", b.Instrs[i].String())
		}
	}
	return sb.String()
}

func (in *Instr) String() string {
	v := func(x Value) string {
		if x == NoValue {
			return "_"
		}
		return fmt.Sprintf("v%d", x)
	}
	switch in.Op {
	case IRConst:
		return fmt.Sprintf("%s = const %d", v(in.Dst), in.Const)
	case IRCopy:
		return fmt.Sprintf("%s = %s", v(in.Dst), v(in.A))
	case IRBin:
		return fmt.Sprintf("%s = %s %s %s", v(in.Dst), v(in.A), in.Kind, v(in.B))
	case IRAddrG:
		return fmt.Sprintf("%s = &%s", v(in.Dst), in.Sym.Name)
	case IRAddrL:
		return fmt.Sprintf("%s = &local %s", v(in.Dst), in.Sym.Name)
	case IRLoad:
		return fmt.Sprintf("%s = load [%s+%d]", v(in.Dst), v(in.A), in.Off)
	case IRStore:
		return fmt.Sprintf("store [%s+%d] = %s", v(in.A), in.Off, v(in.B))
	case IRCall:
		args := make([]string, len(in.Args))
		for i, a := range in.Args {
			args[i] = v(a)
		}
		return fmt.Sprintf("%s = call %s(%s)", v(in.Dst), in.Callee.Name, strings.Join(args, ", "))
	case IROut:
		return fmt.Sprintf("out %s", v(in.A))
	case IRRet:
		return fmt.Sprintf("ret %s", v(in.A))
	case IRBr:
		return fmt.Sprintf("br b%d", in.Targets[0].ID)
	case IRCondBr:
		return fmt.Sprintf("condbr %s, b%d, b%d", v(in.A), in.Targets[0].ID, in.Targets[1].ID)
	}
	return "?"
}
