package compiler

import (
	"sort"

	"sevsim/internal/isa"
)

// Target describes the machine the backend generates code for.
type Target struct {
	XLEN        int // 32 or 64
	NumArchRegs int // 16 or 32
}

// WordSize returns the byte width of an int on this target.
func (t Target) WordSize() int { return t.XLEN / 8 }

// NoReg marks an unallocated (spilled) value.
const NoReg uint8 = 0xff

// Scratch registers reserved for spill reloads, materialized constants,
// and cycle breaking in call argument moves. Never allocated.
const (
	scratchA = isa.RegT0
	scratchB = isa.RegT1
	scratchC = isa.RegT2
)

// Alloc is the result of register allocation for one function.
type Alloc struct {
	Reg      []uint8 // per value; NoReg = stack slot
	Slot     []int   // per value; -1 = none
	NumSlots int
	// UsedCalleeSaved lists the callee-saved registers the allocation
	// touched; the prologue must save them.
	UsedCalleeSaved []uint8
}

// callerPool returns the allocatable caller-saved registers (safe only
// for intervals that do not span a call).
func callerPool() []uint8 {
	return []uint8{isa.RegA0, isa.RegA1, isa.RegA2, isa.RegA3}
}

// calleePool returns the allocatable callee-saved registers for the
// target (s0 and up).
func calleePool(t Target) []uint8 {
	var regs []uint8
	for r := uint8(isa.RegS0); r < uint8(t.NumArchRegs); r++ {
		regs = append(regs, r)
	}
	return regs
}

// Allocate runs linear-scan register allocation over the block layout.
// When forceSlotUserVars is set (O0), every named user variable is
// pinned to a stack slot; compiler temporaries may still use registers,
// which mirrors how an unoptimizing compiler evaluates expressions in
// registers while keeping variables in memory.
func Allocate(f *Func, layout []*Block, t Target, forceSlotUserVars bool) *Alloc {
	intervals := LiveIntervals(f, layout)
	a := &Alloc{
		Reg:  make([]uint8, f.NumVals),
		Slot: make([]int, f.NumVals),
	}
	for i := range a.Reg {
		a.Reg[i] = NoReg
		a.Slot[i] = -1
	}
	newSlot := func(v Value) {
		if a.Slot[v] == -1 {
			a.Slot[v] = a.NumSlots
			a.NumSlots++
		}
	}

	uses := UseCounts(f)
	defs := DefCounts(f)
	isParam := make([]bool, f.NumVals)
	for _, p := range f.Params {
		isParam[p] = true
	}
	type cand struct {
		v  Value
		iv Interval
	}
	var order []cand
	for v := range intervals {
		iv := intervals[v]
		if iv.Start == 0 && iv.End == 0 &&
			uses[v] == 0 && defs[v] == 0 && !isParam[v] {
			continue
		}
		if forceSlotUserVars && f.UserVals[Value(v)] {
			newSlot(Value(v))
			continue
		}
		order = append(order, cand{Value(v), iv})
	}
	sort.Slice(order, func(i, j int) bool {
		if order[i].iv.Start != order[j].iv.Start {
			return order[i].iv.Start < order[j].iv.Start
		}
		return order[i].v < order[j].v
	})

	caller := callerPool()
	callee := calleePool(t)
	inUse := map[uint8]Value{}
	usedCallee := map[uint8]bool{}
	var active []cand

	expire := func(pos int) {
		kept := active[:0]
		for _, c := range active {
			if c.iv.End < pos {
				delete(inUse, a.Reg[c.v])
			} else {
				kept = append(kept, c)
			}
		}
		active = kept
	}
	tryPool := func(pool []uint8) (uint8, bool) {
		for _, r := range pool {
			if _, busy := inUse[r]; !busy {
				return r, true
			}
		}
		return NoReg, false
	}

	for _, c := range order {
		expire(c.iv.Start)
		var reg uint8
		ok := false
		if c.iv.CrossCall {
			reg, ok = tryPool(callee)
		} else {
			if reg, ok = tryPool(caller); !ok {
				reg, ok = tryPool(callee)
			}
		}
		if !ok {
			// Steal from the active interval ending furthest away, if it
			// ends after the current one and its register is legal here.
			victimIdx := -1
			for i, act := range active {
				r := a.Reg[act.v]
				if c.iv.CrossCall && !isa.CalleeSaved(r) {
					continue
				}
				if act.iv.End > c.iv.End && (victimIdx == -1 || act.iv.End > active[victimIdx].iv.End) {
					victimIdx = i
				}
			}
			if victimIdx == -1 {
				newSlot(c.v)
				continue
			}
			victim := active[victimIdx]
			reg = a.Reg[victim.v]
			a.Reg[victim.v] = NoReg
			newSlot(victim.v)
			active = append(active[:victimIdx], active[victimIdx+1:]...)
		}
		a.Reg[c.v] = reg
		inUse[reg] = c.v
		if isa.CalleeSaved(reg) {
			usedCallee[reg] = true
		}
		active = append(active, c)
	}

	for r := range usedCallee { //lint:ordered collected into a slice and sorted on the next lines
		a.UsedCalleeSaved = append(a.UsedCalleeSaved, r)
	}
	sort.Slice(a.UsedCalleeSaved, func(i, j int) bool {
		return a.UsedCalleeSaved[i] < a.UsedCalleeSaved[j]
	})
	return a
}
