package compiler

import (
	"testing"

	"sevsim/internal/interp"
	"sevsim/internal/lang"
	"sevsim/internal/machine"
)

const passSetSrc = `
global int acc[32];
func mix(int a, int b) int { return (a * 13 + b) % 971; }
func main() {
	var int i;
	for (i = 0; i < 32; i = i + 1) {
		acc[i] = mix(i, i * i);
	}
	var int s = 0;
	for (i = 0; i < 32; i = i + 1) {
		s = (s + acc[i] * 4) & 2147483647;
	}
	out(s);
}`

// TestLevelPassesMatchesOptimize: compiling via LevelPasses must produce
// exactly the same machine code as the -O pipeline.
func TestLevelPassesMatchesOptimize(t *testing.T) {
	for _, tgt := range []Target{{XLEN: 32, NumArchRegs: 16}, {XLEN: 64, NumArchRegs: 32}} {
		for _, level := range Levels {
			viaLevel, err := Compile(passSetSrc, "p", level, tgt)
			if err != nil {
				t.Fatal(err)
			}
			viaSet, err := CompileWithPasses(passSetSrc, "p", LevelPasses(level, tgt), tgt)
			if err != nil {
				t.Fatal(err)
			}
			if len(viaLevel.Code) != len(viaSet.Code) {
				t.Fatalf("xlen=%d %v: %d vs %d instructions", tgt.XLEN, level,
					len(viaLevel.Code), len(viaSet.Code))
			}
			for i := range viaLevel.Code {
				if viaLevel.Code[i] != viaSet.Code[i] {
					t.Fatalf("xlen=%d %v: code differs at word %d", tgt.XLEN, level, i)
				}
			}
		}
	}
}

// TestEveryAblationIsCorrect: removing any single pass must never change
// program semantics, only performance.
func TestEveryAblationIsCorrect(t *testing.T) {
	prog, err := lang.Parse(passSetSrc)
	if err != nil {
		t.Fatal(err)
	}
	want, err := interp.Run(prog, 64, 50_000_000)
	if err != nil {
		t.Fatal(err)
	}
	tgt := Target{XLEN: 64, NumArchRegs: 32}
	cfg := machine.CortexA72Like()
	base := LevelPasses(O3, tgt)
	sets := []PassSet{base}
	for _, name := range PassNames() {
		sets = append(sets, base.Without(name))
	}
	for i, ps := range sets {
		bin, err := CompileWithPasses(passSetSrc, "p", ps, tgt)
		if err != nil {
			t.Fatalf("set %d: %v", i, err)
		}
		res := machine.New(cfg, bin).Run(1 << 30)
		if res.Outcome != machine.OutcomeOK {
			t.Fatalf("set %d: %v %s", i, res.Outcome, res.Reason)
		}
		if len(res.Output) != len(want) || res.Output[0] != want[0] {
			t.Fatalf("set %d: output %v, want %v", i, res.Output, want)
		}
	}
}

func TestWithoutUnknownNameIsNoop(t *testing.T) {
	tgt := Target{XLEN: 64, NumArchRegs: 32}
	base := LevelPasses(O2, tgt)
	if base.Without("bogus") != base {
		t.Error("unknown pass name should not change the set")
	}
}

func TestLevelPassesShape(t *testing.T) {
	tgt16 := Target{XLEN: 32, NumArchRegs: 16}
	tgt32 := Target{XLEN: 64, NumArchRegs: 32}
	if !LevelPasses(O0, tgt16).UserVarsInMemory {
		t.Error("O0 must pin user variables to memory")
	}
	if LevelPasses(O1, tgt16).LICM {
		t.Error("O1 must not include LICM")
	}
	if !LevelPasses(O2, tgt32).Scheduling {
		t.Error("O2 on the 32-register target includes scheduling")
	}
	if LevelPasses(O2, tgt16).Scheduling {
		t.Error("O2 on the 16-register target skips scheduling (pressure)")
	}
	o3 := LevelPasses(O3, tgt32)
	if !o3.Inline || !o3.Unroll || !o3.LICM {
		t.Error("O3 includes inline, unroll, and the O2 set")
	}
}
