package compiler

import (
	"fmt"

	"sevsim/internal/arith"
	"sevsim/internal/lang"
)

// Lower translates a checked MiniC program into module IR for the given
// machine word size (4 or 8 bytes).
func Lower(prog *lang.Program, wordSize int) (*Module, error) {
	mod := &Module{Prog: prog, ByName: map[string]*Func{}, WordSize: wordSize}
	// Assign global segment offsets.
	var off int64
	for _, g := range prog.Globals {
		g.Sym.Offset = off
		n := g.Sym.ArraySize
		if n == 0 {
			n = 1
		}
		off += n * int64(wordSize)
	}
	mod.GlobalSize = off
	// Create function shells first so calls can resolve.
	for _, fd := range prog.Funcs {
		f := &Func{Name: fd.Name, Decl: fd, UserVals: map[Value]bool{}}
		mod.Funcs = append(mod.Funcs, f)
		mod.ByName[fd.Name] = f
	}
	for _, f := range mod.Funcs {
		l := &lowerer{mod: mod, f: f, vals: map[*lang.Symbol]Value{}}
		if err := l.run(); err != nil {
			return nil, err
		}
	}
	return mod, nil
}

type lowerer struct {
	mod  *Module
	f    *Func
	vals map[*lang.Symbol]Value // scalar vars and array-param addresses

	cur        *Block
	breakTgts  []*Block
	contTgts   []*Block
	arrayFrame int64 // running frame offset for local arrays
}

func (l *lowerer) wordShift() int64 {
	if l.mod.WordSize == 8 {
		return 3
	}
	return 2
}

func (l *lowerer) emit(in Instr) Value {
	l.cur.Instrs = append(l.cur.Instrs, in)
	return in.Dst
}

func (l *lowerer) terminated() bool {
	n := len(l.cur.Instrs)
	return n > 0 && l.cur.Instrs[n-1].IsTerm()
}

func (l *lowerer) branchTo(b *Block) {
	if !l.terminated() {
		l.emit(Instr{Op: IRBr, Targets: [2]*Block{b}})
	}
}

func (l *lowerer) konst(v int64) Value {
	dst := l.f.NewValue()
	// Literals wrap to the machine word width, matching the interpreter.
	l.emit(Instr{Op: IRConst, Dst: dst, Const: arith.Wrap(l.mod.WordSize*8, v)})
	return dst
}

func (l *lowerer) bin(kind lang.BinOp, a, b Value) Value {
	dst := l.f.NewValue()
	l.emit(Instr{Op: IRBin, Kind: kind, Dst: dst, A: a, B: b})
	return dst
}

func (l *lowerer) run() error {
	fd := l.f.Decl
	l.cur = l.f.NewBlock()
	l.f.Entry = l.cur
	for _, p := range fd.Params {
		v := l.f.NewValue()
		l.f.Params = append(l.f.Params, v)
		l.vals[p.Sym] = v
		l.f.UserVals[v] = true
	}
	if err := l.block(fd.Body); err != nil {
		return err
	}
	l.f.ArrayBytes = l.arrayFrame
	if !l.terminated() {
		ret := NoValue
		if fd.ReturnsInt {
			ret = l.konst(0) // fall-off-the-end of an int function returns 0
		}
		l.emit(Instr{Op: IRRet, A: ret})
	}
	return nil
}

func (l *lowerer) block(b *lang.BlockStmt) error {
	for _, s := range b.Stmts {
		if err := l.stmt(s); err != nil {
			return err
		}
	}
	return nil
}

func (l *lowerer) stmt(s lang.Stmt) error {
	// Statements after a terminator are unreachable; keep lowering into a
	// detached block so the IR stays well-formed (cleanup removes it).
	if l.terminated() {
		l.cur = l.f.NewBlock()
	}
	switch s := s.(type) {
	case *lang.BlockStmt:
		return l.block(s)
	case *lang.DeclStmt:
		d := s.Decl
		if d.Sym.Kind == lang.SymLocalArray {
			l.f.LocalArrays = append(l.f.LocalArrays, d.Sym)
			d.Sym.Offset = l.arrayFrame
			l.arrayFrame += d.Sym.ArraySize * int64(l.mod.WordSize)
			return nil
		}
		v := l.f.NewValue()
		l.vals[d.Sym] = v
		l.f.UserVals[v] = true
		init := Value(NoValue)
		if d.Init != nil {
			iv, err := l.expr(d.Init)
			if err != nil {
				return err
			}
			init = iv
		} else {
			init = l.konst(0)
		}
		l.emit(Instr{Op: IRCopy, Dst: v, A: init})
		return nil
	case *lang.AssignStmt:
		val, err := l.expr(s.Value)
		if err != nil {
			return err
		}
		if s.Index == nil {
			switch s.Target.Kind {
			case lang.SymGlobal:
				addr := l.addrOfGlobal(s.Target)
				l.emit(Instr{Op: IRStore, A: addr, B: val})
			default:
				l.emit(Instr{Op: IRCopy, Dst: l.vals[s.Target], A: val})
			}
			return nil
		}
		addr, err := l.elemAddr(s.Target, s.Index)
		if err != nil {
			return err
		}
		l.emit(Instr{Op: IRStore, A: addr, B: val})
		return nil
	case *lang.IfStmt:
		thenB := l.f.NewBlock()
		var elseB *Block
		join := l.f.NewBlock()
		if s.Else != nil {
			elseB = l.f.NewBlock()
		} else {
			elseB = join
		}
		if err := l.cond(s.Cond, thenB, elseB); err != nil {
			return err
		}
		l.cur = thenB
		if err := l.block(s.Then); err != nil {
			return err
		}
		l.branchTo(join)
		if s.Else != nil {
			l.cur = elseB
			if err := l.stmt(s.Else); err != nil {
				return err
			}
			l.branchTo(join)
		}
		l.cur = join
		return nil
	case *lang.WhileStmt:
		head := l.f.NewBlock()
		body := l.f.NewBlock()
		exit := l.f.NewBlock()
		l.branchTo(head)
		l.cur = head
		if err := l.cond(s.Cond, body, exit); err != nil {
			return err
		}
		l.breakTgts = append(l.breakTgts, exit)
		l.contTgts = append(l.contTgts, head)
		l.cur = body
		if err := l.block(s.Body); err != nil {
			return err
		}
		l.branchTo(head)
		l.breakTgts = l.breakTgts[:len(l.breakTgts)-1]
		l.contTgts = l.contTgts[:len(l.contTgts)-1]
		l.cur = exit
		return nil
	case *lang.ForStmt:
		if s.Init != nil {
			if err := l.stmt(s.Init); err != nil {
				return err
			}
		}
		head := l.f.NewBlock()
		body := l.f.NewBlock()
		post := l.f.NewBlock()
		exit := l.f.NewBlock()
		l.branchTo(head)
		l.cur = head
		if s.Cond != nil {
			if err := l.cond(s.Cond, body, exit); err != nil {
				return err
			}
		} else {
			l.branchTo(body)
		}
		l.breakTgts = append(l.breakTgts, exit)
		l.contTgts = append(l.contTgts, post)
		l.cur = body
		if err := l.block(s.Body); err != nil {
			return err
		}
		l.branchTo(post)
		l.cur = post
		if s.Post != nil {
			if err := l.stmt(s.Post); err != nil {
				return err
			}
		}
		l.branchTo(head)
		l.breakTgts = l.breakTgts[:len(l.breakTgts)-1]
		l.contTgts = l.contTgts[:len(l.contTgts)-1]
		l.cur = exit
		return nil
	case *lang.ReturnStmt:
		ret := NoValue
		if s.Value != nil {
			v, err := l.expr(s.Value)
			if err != nil {
				return err
			}
			ret = v
		}
		l.emit(Instr{Op: IRRet, A: ret})
		return nil
	case *lang.BreakStmt:
		l.branchTo(l.breakTgts[len(l.breakTgts)-1])
		return nil
	case *lang.ContinueStmt:
		l.branchTo(l.contTgts[len(l.contTgts)-1])
		return nil
	case *lang.OutStmt:
		v, err := l.expr(s.Value)
		if err != nil {
			return err
		}
		l.emit(Instr{Op: IROut, A: v})
		return nil
	case *lang.ExprStmt:
		_, err := l.expr(s.X)
		return err
	}
	return fmt.Errorf("compiler: unknown statement %T", s)
}

// cond lowers a boolean expression directly into control flow, expanding
// the short-circuit operators into branches.
func (l *lowerer) cond(e lang.Expr, t, f *Block) error {
	switch e := e.(type) {
	case *lang.BinExpr:
		switch e.Op {
		case lang.OpLAnd:
			mid := l.f.NewBlock()
			if err := l.cond(e.L, mid, f); err != nil {
				return err
			}
			l.cur = mid
			return l.cond(e.R, t, f)
		case lang.OpLOr:
			mid := l.f.NewBlock()
			if err := l.cond(e.L, t, mid); err != nil {
				return err
			}
			l.cur = mid
			return l.cond(e.R, t, f)
		}
	case *lang.UnExpr:
		if e.Op == lang.OpLNot {
			return l.cond(e.X, f, t)
		}
	}
	v, err := l.expr(e)
	if err != nil {
		return err
	}
	l.emit(Instr{Op: IRCondBr, A: v, Targets: [2]*Block{t, f}})
	return nil
}

func (l *lowerer) addrOfGlobal(sym *lang.Symbol) Value {
	dst := l.f.NewValue()
	l.emit(Instr{Op: IRAddrG, Dst: dst, Sym: sym})
	return dst
}

// elemAddr computes the address of arr[idx].
func (l *lowerer) elemAddr(sym *lang.Symbol, idx lang.Expr) (Value, error) {
	var base Value
	switch sym.Kind {
	case lang.SymGlobalArray:
		base = l.addrOfGlobal(sym)
	case lang.SymLocalArray:
		base = l.f.NewValue()
		l.emit(Instr{Op: IRAddrL, Dst: base, Sym: sym})
	default: // array parameter
		base = l.vals[sym]
	}
	iv, err := l.expr(idx)
	if err != nil {
		return NoValue, err
	}
	sh := l.konst(l.wordShift())
	off := l.bin(lang.OpShl, iv, sh)
	return l.bin(lang.OpAdd, base, off), nil
}

func (l *lowerer) expr(e lang.Expr) (Value, error) {
	switch e := e.(type) {
	case *lang.NumExpr:
		return l.konst(e.Value), nil
	case *lang.VarExpr:
		switch e.Sym.Kind {
		case lang.SymGlobal:
			addr := l.addrOfGlobal(e.Sym)
			dst := l.f.NewValue()
			l.emit(Instr{Op: IRLoad, Dst: dst, A: addr})
			return dst, nil
		default:
			return l.vals[e.Sym], nil
		}
	case *lang.IndexExpr:
		addr, err := l.elemAddr(e.Sym, e.Index)
		if err != nil {
			return NoValue, err
		}
		dst := l.f.NewValue()
		l.emit(Instr{Op: IRLoad, Dst: dst, A: addr})
		return dst, nil
	case *lang.UnExpr:
		x, err := l.expr(e.X)
		if err != nil {
			return NoValue, err
		}
		switch e.Op {
		case lang.OpNeg:
			return l.bin(lang.OpSub, l.konst(0), x), nil
		case lang.OpNot:
			return l.bin(lang.OpXor, x, l.konst(-1)), nil
		default: // logical not
			return l.bin(lang.OpEq, x, l.konst(0)), nil
		}
	case *lang.BinExpr:
		if e.Op == lang.OpLAnd || e.Op == lang.OpLOr {
			return l.shortCircuit(e)
		}
		a, err := l.expr(e.L)
		if err != nil {
			return NoValue, err
		}
		b, err := l.expr(e.R)
		if err != nil {
			return NoValue, err
		}
		return l.bin(e.Op, a, b), nil
	case *lang.CallExpr:
		callee := l.mod.ByName[e.Name]
		args := make([]Value, len(e.Args))
		for i, ax := range e.Args {
			if e.Func.Params[i].IsArray {
				vx := ax.(*lang.VarExpr)
				switch vx.Sym.Kind {
				case lang.SymGlobalArray:
					args[i] = l.addrOfGlobal(vx.Sym)
				case lang.SymLocalArray:
					v := l.f.NewValue()
					l.emit(Instr{Op: IRAddrL, Dst: v, Sym: vx.Sym})
					args[i] = v
				default:
					args[i] = l.vals[vx.Sym]
				}
				continue
			}
			v, err := l.expr(ax)
			if err != nil {
				return NoValue, err
			}
			args[i] = v
		}
		dst := NoValue
		if e.Func.ReturnsInt {
			dst = l.f.NewValue()
		}
		l.emit(Instr{Op: IRCall, Dst: dst, Callee: callee, Args: args})
		return dst, nil
	}
	return NoValue, fmt.Errorf("compiler: unknown expression %T", e)
}

// shortCircuit lowers && and || in value context via a merged temp.
func (l *lowerer) shortCircuit(e *lang.BinExpr) (Value, error) {
	t := l.f.NewValue()
	trueB := l.f.NewBlock()
	falseB := l.f.NewBlock()
	join := l.f.NewBlock()
	if err := l.cond(e, trueB, falseB); err != nil {
		return NoValue, err
	}
	l.cur = trueB
	one := l.konst(1)
	l.emit(Instr{Op: IRCopy, Dst: t, A: one})
	l.branchTo(join)
	l.cur = falseB
	zero := l.konst(0)
	l.emit(Instr{Op: IRCopy, Dst: t, A: zero})
	l.branchTo(join)
	l.cur = join
	return t, nil
}
