package compiler

import (
	"fmt"
	"testing"

	"sevsim/internal/isa"
	"sevsim/internal/lang"
)

// verifyAllocation checks the fundamental register-allocation invariant
// over a function: at every instruction, two values that are both live
// and both assigned registers never share one, and no value is assigned
// a reserved or out-of-range register.
func verifyAllocation(t *testing.T, f *Func, tgt Target, o0 bool) {
	t.Helper()
	layout := RPO(f)
	alloc := Allocate(f, layout, tgt, o0)
	intervals := LiveIntervals(f, layout)

	for v := 0; v < f.NumVals; v++ {
		r := alloc.Reg[v]
		if r == NoReg {
			continue
		}
		if r >= uint8(tgt.NumArchRegs) {
			t.Errorf("v%d allocated out-of-range register %d", v, r)
		}
		switch r {
		case isa.RegZero, isa.RegSP, isa.RegRA, scratchA, scratchB, scratchC:
			t.Errorf("v%d allocated reserved register %s", v, isa.RegName(r))
		}
		if o0 && f.UserVals[Value(v)] {
			t.Errorf("user value v%d got a register at O0", v)
		}
	}

	// Pairwise interference: overlapping intervals must not share a
	// register.
	for a := 0; a < f.NumVals; a++ {
		if alloc.Reg[a] == NoReg {
			continue
		}
		for b := a + 1; b < f.NumVals; b++ {
			if alloc.Reg[b] != alloc.Reg[a] {
				continue
			}
			ia, ib := intervals[a], intervals[b]
			if ia.Start == 0 && ia.End == 0 || ib.Start == 0 && ib.End == 0 {
				continue
			}
			if ia.Start < ib.End && ib.Start < ia.End {
				t.Errorf("v%d and v%d share %s with overlapping intervals [%d,%d] [%d,%d]",
					a, b, isa.RegName(alloc.Reg[a]), ia.Start, ia.End, ib.Start, ib.End)
			}
		}
	}

	// Values living across calls must not sit in caller-saved registers.
	for v := 0; v < f.NumVals; v++ {
		r := alloc.Reg[v]
		if r == NoReg || !intervals[v].CrossCall {
			continue
		}
		if isa.CallerSaved(r) {
			t.Errorf("v%d lives across a call in caller-saved %s", v, isa.RegName(r))
		}
	}
}

// allocPrograms is a set of programs stressing different allocation
// shapes: high pressure, calls, loops, and spilled user variables.
var allocPrograms = []string{
	`func main() {
		var int a = 1; var int b = 2; var int c = 3; var int d = 4;
		var int e = 5; var int f = 6; var int g = 7; var int h = 8;
		var int i = 9; var int j = 10; var int k = 11; var int l = 12;
		out(a+b+c+d+e+f+g+h+i+j+k+l);
		out(a*l + b*k + c*j + d*i + e*h + f*g);
	}`,
	`func leaf(int x) int { return x + 1; }
	func main() {
		var int acc = 0;
		var int i;
		for (i = 0; i < 10; i = i + 1) {
			acc = acc + leaf(i) * leaf(acc);
		}
		out(acc);
	}`,
	`global int data[64];
	func main() {
		var int i; var int j;
		for (i = 0; i < 8; i = i + 1) {
			for (j = 0; j < 8; j = j + 1) {
				data[i*8+j] = i*j + i - j;
			}
		}
		out(data[37]);
	}`,
	`func many(int a, int b, int c, int d, int e, int f) int {
		return a + b*2 + c*3 + d*4 + e*5 + f*6;
	}
	func main() { out(many(1, 2, 3, 4, 5, 6)); }`,
}

func TestAllocationInvariants(t *testing.T) {
	targets := []Target{
		{XLEN: 32, NumArchRegs: 16},
		{XLEN: 64, NumArchRegs: 32},
	}
	for pi, src := range allocPrograms {
		for _, tgt := range targets {
			for _, level := range Levels {
				name := fmt.Sprintf("prog%d/x%d/%v", pi, tgt.XLEN, level)
				t.Run(name, func(t *testing.T) {
					prog, err := lang.Parse(src)
					if err != nil {
						t.Fatal(err)
					}
					mod, err := Lower(prog, tgt.WordSize())
					if err != nil {
						t.Fatal(err)
					}
					Optimize(mod, level, tgt)
					for _, f := range mod.Funcs {
						verifyAllocation(t, f, tgt, level == O0)
					}
				})
			}
		}
	}
}

// TestAllocationOnWorkloadShapes runs the verifier over every function
// of a recursion-heavy and a lookup-heavy program at O2 on the
// register-poor target — the configurations most likely to expose
// interference bugs.
func TestAllocationOnWorkloadShapes(t *testing.T) {
	src := `
global int pool[128];
global int top;

func push(int v) { pool[top] = v; top = top + 1; }
func pop() int { top = top - 1; return pool[top]; }

func hanoi(int n, int from, int to, int via) int {
	if (n == 0) { return 0; }
	var int moves = hanoi(n - 1, from, via, to);
	push(from * 10 + to);
	return moves + 1 + hanoi(n - 1, via, to, from);
}

func main() {
	out(hanoi(5, 1, 3, 2));
	out(top);
	out(pop());
}`
	tgt := Target{XLEN: 32, NumArchRegs: 16}
	prog, err := lang.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	mod, err := Lower(prog, 4)
	if err != nil {
		t.Fatal(err)
	}
	Optimize(mod, O2, tgt)
	for _, f := range mod.Funcs {
		verifyAllocation(t, f, tgt, false)
	}
}
