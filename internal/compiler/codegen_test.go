package compiler

import (
	"fmt"
	"testing"

	"sevsim/internal/interp"
	"sevsim/internal/lang"
	"sevsim/internal/machine"
)

// runOn compiles and executes on one machine, returning outputs.
func runOn(t *testing.T, src string, level OptLevel, cfg machine.Config) []uint64 {
	t.Helper()
	tgt := Target{XLEN: cfg.CPU.XLEN, NumArchRegs: cfg.CPU.NumArchRegs}
	prog, err := Compile(src, "t", level, tgt)
	if err != nil {
		t.Fatal(err)
	}
	res := machine.New(cfg, prog).Run(1 << 32)
	if res.Outcome != machine.OutcomeOK {
		t.Fatalf("%v: %v %s", level, res.Outcome, res.Reason)
	}
	return res.Output
}

// TestConstantMaterialization exercises loadConst across the immediate,
// 32-bit, and 64-bit ranges on both targets.
func TestConstantMaterialization(t *testing.T) {
	values := []int64{
		0, 1, -1, 42, 32767, -32768, 32768, -32769,
		65535, 65536, 0x12345678, -0x12345678,
		0x7fffffff, -0x80000000, 0x10000, 0xabcd0000,
	}
	for _, v := range values {
		src := fmt.Sprintf("func main() { var int x = %d; out(x + 0); }", v)
		for _, cfg := range machine.Configs() {
			want, err := interp.Run(mustParse(t, src), cfg.CPU.XLEN, 1000)
			if err != nil {
				t.Fatal(err)
			}
			for _, level := range []OptLevel{O0, O2} {
				got := runOn(t, src, level, cfg)
				if got[0] != want[0] {
					t.Errorf("const %d, %s, %v: got %#x want %#x", v, cfg.Name, level, got[0], want[0])
				}
			}
		}
	}
}

// TestSixtyFourBitConstants builds >32-bit constants via shifts at
// runtime and via folding at compile time; both must agree on the
// 64-bit target.
func TestSixtyFourBitConstants(t *testing.T) {
	src := `func main() {
		var int lo = 0x89abcdef;
		var int hi = 0x01234567;
		var int x = (hi << 32) | (lo & 0xffffffff);
		out(x);
		out(x >> 16);
		out(1 << 62);
	}`
	cfg := machine.CortexA72Like()
	want, err := interp.Run(mustParse(t, src), 64, 10000)
	if err != nil {
		t.Fatal(err)
	}
	for _, level := range Levels {
		got := runOn(t, src, level, cfg)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%v out[%d] = %#x, want %#x", level, i, got[i], want[i])
			}
		}
	}
}

// TestParallelMoveCycles forces argument permutation cycles at call
// sites (a0<->a1 swaps and three-way rotations).
func TestParallelMoveCycles(t *testing.T) {
	src := `
func swap2(int a, int b) int { return a * 1000 + b; }
func rot3(int a, int b, int c) int { return a * 10000 + b * 100 + c; }

func main() {
	var int x = 1;
	var int y = 2;
	var int z = 3;
	// Arguments arrive in registers and must be permuted.
	out(swap2(y, x));
	out(rot3(y, z, x));
	out(rot3(z, x, y));
	out(swap2(swap2(x, y), swap2(y, x)));
}`
	for _, cfg := range machine.Configs() {
		want, err := interp.Run(mustParse(t, src), cfg.CPU.XLEN, 100000)
		if err != nil {
			t.Fatal(err)
		}
		for _, level := range Levels {
			got := runOn(t, src, level, cfg)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("%s %v out[%d] = %d, want %d", cfg.Name, level, i, got[i], want[i])
				}
			}
		}
	}
}

// TestDeepStackFrames verifies spill-slot addressing and stack
// discipline with deep recursion plus live locals per frame.
func TestDeepStackFrames(t *testing.T) {
	src := `
func weave(int n, int acc) int {
	if (n == 0) { return acc; }
	var int a = n * 3;
	var int b = a + acc;
	var int c = weave(n - 1, b % 10007);
	return (a + b + c) % 10007;
}
func main() { out(weave(200, 1)); }`
	for _, cfg := range machine.Configs() {
		want, err := interp.Run(mustParse(t, src), cfg.CPU.XLEN, 10_000_000)
		if err != nil {
			t.Fatal(err)
		}
		for _, level := range Levels {
			got := runOn(t, src, level, cfg)
			if got[0] != want[0] {
				t.Fatalf("%s %v: %d want %d", cfg.Name, level, got[0], want[0])
			}
		}
	}
}

// TestLargeLocalArrayFrame exercises frame offsets beyond small
// immediates.
func TestLargeLocalArrayFrame(t *testing.T) {
	src := `
func main() {
	var int big[3000];
	var int i;
	for (i = 0; i < 3000; i = i + 1) {
		big[i] = i ^ (i << 3);
	}
	var int s = 0;
	for (i = 0; i < 3000; i = i + 7) {
		s = (s + big[i]) & 2147483647;
	}
	out(s);
	out(big[2999]);
}`
	for _, cfg := range machine.Configs() {
		want, err := interp.Run(mustParse(t, src), cfg.CPU.XLEN, 10_000_000)
		if err != nil {
			t.Fatal(err)
		}
		got := runOn(t, src, O2, cfg)
		if got[0] != want[0] || got[1] != want[1] {
			t.Fatalf("%s: %v want %v", cfg.Name, got, want)
		}
	}
}

// TestBranchFusionNegation covers every comparison kind in fused
// branches, with both fallthrough polarities.
func TestBranchFusionNegation(t *testing.T) {
	src := `
func pick(int a, int b) int {
	var int r = 0;
	if (a < b)  { r = r + 1; }
	if (a <= b) { r = r + 10; }
	if (a > b)  { r = r + 100; }
	if (a >= b) { r = r + 1000; }
	if (a == b) { r = r + 10000; }
	if (a != b) { r = r + 100000; }
	return r;
}
func main() {
	out(pick(1, 2));
	out(pick(2, 1));
	out(pick(3, 3));
	out(pick(0 - 5, 4));
}`
	for _, cfg := range machine.Configs() {
		want, err := interp.Run(mustParse(t, src), cfg.CPU.XLEN, 100000)
		if err != nil {
			t.Fatal(err)
		}
		for _, level := range Levels {
			got := runOn(t, src, level, cfg)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("%s %v out[%d] = %d, want %d", cfg.Name, level, i, got[i], want[i])
				}
			}
		}
	}
}

// TestGlobalScalarRoundTrip covers global loads/stores under every
// level (address materialization + LVN interactions).
func TestGlobalScalarRoundTrip(t *testing.T) {
	src := `
global int a;
global int b;
global int c;
func main() {
	a = 11;
	b = a * 2;
	c = a + b;
	a = c - b;
	out(a); out(b); out(c);
}`
	for _, cfg := range machine.Configs() {
		for _, level := range Levels {
			got := runOn(t, src, level, cfg)
			if got[0] != 11 || got[1] != 22 || got[2] != 33 {
				t.Fatalf("%s %v: %v", cfg.Name, level, got)
			}
		}
	}
}

func mustParseLang(t *testing.T, src string) *lang.Program { return mustParse(t, src) }
