package compiler

import "sort"

// The O3 pass set: function inlining and loop unrolling. Both mirror
// GCC's O3 signature the paper describes: faster or comparable code at
// the cost of larger text (more L1I pressure).

// inlineLimit is the maximum callee size (IR instructions) considered
// for inlining.
const inlineLimit = 40

// unrollInstrLimit bounds the loop body size eligible for unrolling.
const unrollInstrLimit = 48

// unrollBlockLimit bounds the loop shape eligible for unrolling.
const unrollBlockLimit = 6

// InlineCalls inlines calls to small leaf functions (no calls, no local
// arrays) across the module. Two rounds let a function that became a
// leaf by inlining be inlined itself.
func InlineCalls(mod *Module) {
	for round := 0; round < 2; round++ {
		inlinable := map[*Func]bool{}
		for _, f := range mod.Funcs {
			if f.Name == "main" {
				// main is never a callee; no need to consider it.
				continue
			}
			if len(f.LocalArrays) > 0 {
				continue
			}
			size := 0
			leaf := true
			for _, b := range f.Blocks {
				size += len(b.Instrs)
				for i := range b.Instrs {
					if b.Instrs[i].Op == IRCall {
						leaf = false
					}
				}
			}
			if leaf && size <= inlineLimit {
				inlinable[f] = true
			}
		}
		changed := false
		for _, f := range mod.Funcs {
			changed = inlineInto(f, inlinable) || changed
		}
		if !changed {
			return
		}
	}
}

// inlineInto splices inlinable callees into f.
func inlineInto(f *Func, inlinable map[*Func]bool) bool {
	changed := false
	// Iterate over a snapshot: inlining appends blocks.
	for bi := 0; bi < len(f.Blocks); bi++ {
		b := f.Blocks[bi]
		for i := 0; i < len(b.Instrs); i++ {
			in := &b.Instrs[i]
			if in.Op != IRCall || !inlinable[in.Callee] || in.Callee == f {
				continue
			}
			spliceCall(f, b, i)
			changed = true
			break // b's tail moved to a new block; rescan later blocks
		}
	}
	return changed
}

// spliceCall replaces the call at b.Instrs[idx] with the callee's body.
func spliceCall(f *Func, b *Block, idx int) {
	call := b.Instrs[idx]
	callee := call.Callee

	// Remap callee values into fresh caller values.
	base := Value(f.NumVals)
	f.NumVals += callee.NumVals
	remap := func(v Value) Value {
		if v == NoValue {
			return NoValue
		}
		return base + v
	}

	// Continuation block receives the instructions after the call.
	cont := f.NewBlock()
	cont.Instrs = append(cont.Instrs, b.Instrs[idx+1:]...)

	// Clone callee blocks.
	clones := map[*Block]*Block{}
	for _, cb := range callee.Blocks {
		clones[cb] = f.NewBlock()
	}
	for _, cb := range callee.Blocks {
		nb := clones[cb]
		for j := range cb.Instrs {
			ci := cb.Instrs[j]
			ci.Dst = remap(ci.Dst)
			ci.A = remap(ci.A)
			ci.B = remap(ci.B)
			if len(ci.Args) > 0 {
				args := make([]Value, len(ci.Args))
				for k, a := range ci.Args {
					args[k] = remap(a)
				}
				ci.Args = args
			}
			for k, t := range ci.Targets {
				if t != nil {
					ci.Targets[k] = clones[t]
				}
			}
			if ci.Op == IRRet {
				// Return becomes result copy + jump to continuation.
				if call.Dst != NoValue && ci.A != NoValue {
					nb.Instrs = append(nb.Instrs, Instr{Op: IRCopy, Dst: call.Dst, A: ci.A})
				}
				nb.Instrs = append(nb.Instrs, Instr{Op: IRBr, Targets: [2]*Block{cont}})
				continue
			}
			nb.Instrs = append(nb.Instrs, ci)
		}
	}

	// Rewrite the call site: bind arguments, jump into the clone.
	b.Instrs = b.Instrs[:idx]
	for k, p := range callee.Params {
		b.Instrs = append(b.Instrs, Instr{Op: IRCopy, Dst: remap(p), A: call.Args[k]})
	}
	b.Instrs = append(b.Instrs, Instr{Op: IRBr, Targets: [2]*Block{clones[callee.Entry]}})
}

// UnrollLoops duplicates small loop bodies (factor 2) so that
// consecutive iterations alternate between two copies. Dynamic work per
// iteration is unchanged but straight-line regions double, reproducing
// the code-growth signature of -O3.
func UnrollLoops(f *Func) {
	loops := NaturalLoops(f)
	for _, lp := range loops {
		if len(lp.Blocks) > unrollBlockLimit {
			continue
		}
		size := 0
		nested := false
		for b := range lp.Blocks { //lint:ordered accumulates a sum and a boolean; both order-insensitive
			size += len(b.Instrs)
			if b != lp.Header {
				// Skip loops containing inner loop headers.
				for _, other := range loops {
					if other != lp && other.Header == b {
						nested = true
					}
				}
			}
		}
		if nested || size > unrollInstrLimit {
			continue
		}
		unrollLoop(f, lp)
	}
	RemoveUnreachable(f)
}

func unrollLoop(f *Func, lp *Loop) {
	clones := map[*Block]*Block{}
	members := make([]*Block, 0, len(lp.Blocks))
	for b := range lp.Blocks { //lint:ordered collected into a slice and sorted by block ID just below
		members = append(members, b)
	}
	// Deterministic order for reproducible code.
	for i := 0; i < len(members); i++ {
		for j := i + 1; j < len(members); j++ {
			if members[j].ID < members[i].ID {
				members[i], members[j] = members[j], members[i]
			}
		}
	}

	// Loop-carried or escaping values must keep their virtual registers
	// across both copies; loop-local single-def temporaries get fresh
	// registers in the clone so they stay single-def (otherwise constant
	// and addressing temps lose their immediate-operand eligibility and
	// the unrolled code bloats).
	defs := DefCounts(f)
	definedIn := map[Value]bool{}
	for _, b := range members {
		for i := range b.Instrs {
			if d := b.Instrs[i].Def(); d != NoValue {
				definedIn[d] = true
			}
		}
	}
	usedOutside := map[Value]bool{}
	var buf []Value
	for _, b := range f.Blocks {
		if lp.Blocks[b] {
			continue
		}
		for i := range b.Instrs {
			buf = b.Instrs[i].Uses(buf[:0])
			for _, u := range buf {
				usedOutside[u] = true
			}
		}
	}
	// Sorted order: NewValue hands out sequential IDs, so iterating the
	// definedIn map here would number the clone's fresh registers
	// differently run to run and the unrolled code would not be
	// reproducible.
	renamed := make([]Value, 0, len(definedIn))
	for v := range definedIn { //lint:ordered collected into a slice and sorted before any ID is assigned
		if defs[v] == 1 && !usedOutside[v] {
			renamed = append(renamed, v)
		}
	}
	sort.Slice(renamed, func(i, j int) bool { return renamed[i] < renamed[j] })
	rename := map[Value]Value{}
	for _, v := range renamed {
		rename[v] = f.NewValue()
	}
	remap := func(v Value) Value {
		if nv, ok := rename[v]; ok {
			return nv
		}
		return v
	}

	for _, b := range members {
		clones[b] = f.NewBlock()
	}
	for _, b := range members {
		nb := clones[b]
		nb.Instrs = append(nb.Instrs, b.Instrs...)
		// Fix edges and remap loop-local temps; exits stay shared.
		for j := range nb.Instrs {
			in := &nb.Instrs[j]
			if in.Def() != NoValue {
				in.Dst = remap(in.Dst)
			}
			if in.A != NoValue {
				in.A = remap(in.A)
			}
			if in.B != NoValue {
				in.B = remap(in.B)
			}
			if len(in.Args) > 0 {
				args := make([]Value, len(in.Args))
				for k, a := range in.Args {
					args[k] = remap(a)
				}
				in.Args = args
			}
			for k, t := range in.Targets {
				if t == nil {
					continue
				}
				if t == lp.Header {
					// Clone's back edge returns to the original header.
					continue
				}
				if c, ok := clones[t]; ok {
					in.Targets[k] = c
				}
			}
		}
	}
	// Original latches now jump to the cloned header instead.
	for _, latch := range lp.Latches {
		t := &latch.Instrs[len(latch.Instrs)-1]
		for k := range t.Targets {
			if t.Targets[k] == lp.Header {
				t.Targets[k] = clones[lp.Header]
			}
		}
	}
	ComputePreds(f)
}
