package lang

// Program is a parsed and semantically checked MiniC compilation unit.
type Program struct {
	Globals []*VarDecl
	Funcs   []*FuncDecl
	// ByName indexes functions after semantic analysis.
	ByName map[string]*FuncDecl
}

// VarDecl declares a global or local variable. ArraySize > 0 makes it a
// fixed-size int array; ArraySize == 0 is a scalar int.
type VarDecl struct {
	Name      string
	ArraySize int64
	Init      Expr // optional, scalars only
	Line      int

	// Set by semantic analysis.
	Sym *Symbol
}

// FuncDecl is a function definition.
type FuncDecl struct {
	Name       string
	Params     []*Param
	ReturnsInt bool
	Body       *BlockStmt
	Line       int

	// Set by semantic analysis.
	Syms []*Symbol // all locals and params, in declaration order
}

// Param is a function parameter: scalar int or int[] (array reference).
type Param struct {
	Name    string
	IsArray bool
	Sym     *Symbol
}

// SymKind classifies a resolved name.
type SymKind int

const (
	SymGlobal SymKind = iota
	SymGlobalArray
	SymLocal
	SymLocalArray
	SymParam
	SymParamArray
	SymFunc
)

// Symbol is a resolved variable or function.
type Symbol struct {
	Name      string
	Kind      SymKind
	ArraySize int64 // elements, for array kinds

	// Layout, filled by the compiler backend: byte offset within the
	// global segment for globals, frame index for locals/params.
	Offset int64
	Index  int // local ordinal within the function
}

// IsArray reports whether the symbol is an array or array reference.
func (s *Symbol) IsArray() bool {
	return s.Kind == SymGlobalArray || s.Kind == SymLocalArray || s.Kind == SymParamArray
}

// --- statements -----------------------------------------------------------

// Stmt is a statement node.
type Stmt interface{ stmt() }

// BlockStmt is a brace-delimited statement list.
type BlockStmt struct{ Stmts []Stmt }

// DeclStmt declares a local variable.
type DeclStmt struct{ Decl *VarDecl }

// AssignStmt assigns to a scalar variable or an array element.
type AssignStmt struct {
	Name   string
	Target *Symbol // resolved from Name by sema
	Index  Expr    // nil for scalar assignment
	Value  Expr
	Line   int
}

// IfStmt is if/else.
type IfStmt struct {
	Cond Expr
	Then *BlockStmt
	Else Stmt // *BlockStmt, *IfStmt, or nil
}

// WhileStmt is a while loop.
type WhileStmt struct {
	Cond Expr
	Body *BlockStmt
}

// ForStmt is for(init; cond; post). Init and Post may be nil.
type ForStmt struct {
	Init *AssignStmt
	Cond Expr // nil = always true
	Post *AssignStmt
	Body *BlockStmt
}

// ReturnStmt returns from the enclosing function.
type ReturnStmt struct {
	Value Expr // nil for bare return
	Line  int
}

// BreakStmt exits the innermost loop.
type BreakStmt struct{ Line int }

// ContinueStmt restarts the innermost loop.
type ContinueStmt struct{ Line int }

// OutStmt emits a value to the program output stream.
type OutStmt struct{ Value Expr }

// ExprStmt evaluates an expression (a call) for its side effects.
type ExprStmt struct{ X Expr }

func (*BlockStmt) stmt()    {}
func (*DeclStmt) stmt()     {}
func (*AssignStmt) stmt()   {}
func (*IfStmt) stmt()       {}
func (*WhileStmt) stmt()    {}
func (*ForStmt) stmt()      {}
func (*ReturnStmt) stmt()   {}
func (*BreakStmt) stmt()    {}
func (*ContinueStmt) stmt() {}
func (*OutStmt) stmt()      {}
func (*ExprStmt) stmt()     {}

// --- expressions -----------------------------------------------------------

// Expr is an expression node.
type Expr interface{ expr() }

// NumExpr is an integer literal.
type NumExpr struct{ Value int64 }

// VarExpr references a scalar variable, or an array used as a base
// address value.
type VarExpr struct {
	Name string
	Sym  *Symbol // resolved by sema
	Line int
}

// IndexExpr is arr[idx].
type IndexExpr struct {
	Name  string
	Sym   *Symbol // resolved by sema
	Index Expr
	Line  int
}

// BinOp enumerates binary operators (short-circuit forms included; the
// lowering pass expands them to control flow).
type BinOp int

const (
	OpAdd BinOp = iota
	OpSub
	OpMul
	OpDiv
	OpRem
	OpAnd
	OpOr
	OpXor
	OpShl
	OpShr
	OpLt
	OpLe
	OpGt
	OpGe
	OpEq
	OpNe
	OpLAnd
	OpLOr
)

var binOpNames = [...]string{"+", "-", "*", "/", "%", "&", "|", "^", "<<", ">>",
	"<", "<=", ">", ">=", "==", "!=", "&&", "||"}

func (op BinOp) String() string { return binOpNames[op] }

// BinExpr is a binary operation.
type BinExpr struct {
	Op   BinOp
	L, R Expr
	Line int
}

// UnOp enumerates unary operators.
type UnOp int

const (
	OpNeg  UnOp = iota // -x
	OpNot              // ~x
	OpLNot             // !x
)

// UnExpr is a unary operation.
type UnExpr struct {
	Op UnOp
	X  Expr
}

// CallExpr calls a function.
type CallExpr struct {
	Func *FuncDecl
	Name string
	Args []Expr
	Line int
}

func (*NumExpr) expr()   {}
func (*VarExpr) expr()   {}
func (*IndexExpr) expr() {}
func (*BinExpr) expr()   {}
func (*UnExpr) expr()    {}
func (*CallExpr) expr()  {}
