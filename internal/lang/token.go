// Package lang implements the MiniC language front end: lexer, parser,
// abstract syntax tree, and semantic analysis. MiniC is the small C-like
// language the sevsim benchmarks are written in; it compiles to the SEV
// ISA through internal/compiler at optimization levels O0–O3.
package lang

import "fmt"

// Kind enumerates token kinds.
type Kind int

const (
	TokEOF Kind = iota
	TokIdent
	TokNumber

	// Keywords.
	TokGlobal
	TokFunc
	TokVar
	TokInt
	TokIf
	TokElse
	TokWhile
	TokFor
	TokReturn
	TokBreak
	TokContinue
	TokOut

	// Punctuation.
	TokLParen
	TokRParen
	TokLBrace
	TokRBrace
	TokLBracket
	TokRBracket
	TokComma
	TokSemi

	// Operators.
	TokAssign // =
	TokPlus
	TokMinus
	TokStar
	TokSlash
	TokPercent
	TokAmp
	TokPipe
	TokCaret
	TokTilde
	TokBang
	TokShl
	TokShr
	TokLt
	TokLe
	TokGt
	TokGe
	TokEq
	TokNe
	TokAndAnd
	TokOrOr
)

var kindNames = map[Kind]string{
	TokEOF: "end of file", TokIdent: "identifier", TokNumber: "number",
	TokGlobal: "'global'", TokFunc: "'func'", TokVar: "'var'", TokInt: "'int'",
	TokIf: "'if'", TokElse: "'else'", TokWhile: "'while'", TokFor: "'for'",
	TokReturn: "'return'", TokBreak: "'break'", TokContinue: "'continue'", TokOut: "'out'",
	TokLParen: "'('", TokRParen: "')'", TokLBrace: "'{'", TokRBrace: "'}'",
	TokLBracket: "'['", TokRBracket: "']'", TokComma: "','", TokSemi: "';'",
	TokAssign: "'='", TokPlus: "'+'", TokMinus: "'-'", TokStar: "'*'",
	TokSlash: "'/'", TokPercent: "'%'", TokAmp: "'&'", TokPipe: "'|'",
	TokCaret: "'^'", TokTilde: "'~'", TokBang: "'!'", TokShl: "'<<'",
	TokShr: "'>>'", TokLt: "'<'", TokLe: "'<='", TokGt: "'>'", TokGe: "'>='",
	TokEq: "'=='", TokNe: "'!='", TokAndAnd: "'&&'", TokOrOr: "'||'",
}

func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("token(%d)", int(k))
}

var keywords = map[string]Kind{
	"global": TokGlobal, "func": TokFunc, "var": TokVar, "int": TokInt,
	"if": TokIf, "else": TokElse, "while": TokWhile, "for": TokFor,
	"return": TokReturn, "break": TokBreak, "continue": TokContinue, "out": TokOut,
}

// Token is one lexical unit.
type Token struct {
	Kind Kind
	Text string
	Num  int64
	Line int
	Col  int
}

// Error is a front-end diagnostic with source position.
type Error struct {
	Line, Col int
	Msg       string
}

func (e *Error) Error() string { return fmt.Sprintf("%d:%d: %s", e.Line, e.Col, e.Msg) }

func errAt(line, col int, format string, args ...any) error {
	return &Error{Line: line, Col: col, Msg: fmt.Sprintf(format, args...)}
}
