package lang

// analyze resolves names, checks types (scalar int vs int array), and
// validates structural rules (break inside loops, return shapes, main's
// signature). MiniC scoping is two-level: one global namespace and one
// flat per-function namespace; locals shadow globals.
func analyze(prog *Program) error {
	globals := map[string]*Symbol{}
	for _, g := range prog.Globals {
		if _, dup := globals[g.Name]; dup {
			return errAt(g.Line, 1, "duplicate global %q", g.Name)
		}
		kind := SymGlobal
		if g.ArraySize > 0 {
			kind = SymGlobalArray
		}
		if g.Init != nil {
			return errAt(g.Line, 1, "globals cannot have initializers (zero-initialized)")
		}
		g.Sym = &Symbol{Name: g.Name, Kind: kind, ArraySize: g.ArraySize}
		globals[g.Name] = g.Sym
	}
	for _, f := range prog.Funcs {
		if _, dup := prog.ByName[f.Name]; dup {
			return errAt(f.Line, 1, "duplicate function %q", f.Name)
		}
		if _, dup := globals[f.Name]; dup {
			return errAt(f.Line, 1, "function %q collides with a global", f.Name)
		}
		prog.ByName[f.Name] = f
	}
	mainFn, ok := prog.ByName["main"]
	if !ok {
		return errAt(1, 1, "program has no main function")
	}
	if len(mainFn.Params) != 0 {
		return errAt(mainFn.Line, 1, "main must take no parameters")
	}
	for _, f := range prog.Funcs {
		a := &funcAnalyzer{prog: prog, globals: globals, fn: f, locals: map[string]*Symbol{}}
		if err := a.run(); err != nil {
			return err
		}
	}
	return nil
}

type funcAnalyzer struct {
	prog    *Program
	globals map[string]*Symbol
	fn      *FuncDecl
	locals  map[string]*Symbol
	loops   int
}

func (a *funcAnalyzer) run() error {
	for _, p := range a.fn.Params {
		if _, dup := a.locals[p.Name]; dup {
			return errAt(a.fn.Line, 1, "duplicate parameter %q", p.Name)
		}
		kind := SymParam
		if p.IsArray {
			kind = SymParamArray
		}
		p.Sym = &Symbol{Name: p.Name, Kind: kind, Index: len(a.fn.Syms)}
		a.locals[p.Name] = p.Sym
		a.fn.Syms = append(a.fn.Syms, p.Sym)
	}
	return a.block(a.fn.Body)
}

func (a *funcAnalyzer) lookup(name string, line int) (*Symbol, error) {
	if s, ok := a.locals[name]; ok {
		return s, nil
	}
	if s, ok := a.globals[name]; ok {
		return s, nil
	}
	return nil, errAt(line, 1, "undefined variable %q", name)
}

func (a *funcAnalyzer) block(b *BlockStmt) error {
	for _, s := range b.Stmts {
		if err := a.stmt(s); err != nil {
			return err
		}
	}
	return nil
}

func (a *funcAnalyzer) stmt(s Stmt) error {
	switch s := s.(type) {
	case *BlockStmt:
		return a.block(s)
	case *DeclStmt:
		d := s.Decl
		if _, dup := a.locals[d.Name]; dup {
			return errAt(d.Line, 1, "duplicate local %q", d.Name)
		}
		kind := SymLocal
		if d.ArraySize > 0 {
			kind = SymLocalArray
		}
		d.Sym = &Symbol{Name: d.Name, Kind: kind, ArraySize: d.ArraySize, Index: len(a.fn.Syms)}
		a.locals[d.Name] = d.Sym
		a.fn.Syms = append(a.fn.Syms, d.Sym)
		if d.Init != nil {
			return a.expr(d.Init)
		}
		return nil
	case *AssignStmt:
		sym, err := a.lookup(s.Name, s.Line)
		if err != nil {
			return err
		}
		s.Target = sym
		if s.Index != nil {
			if !sym.IsArray() {
				return errAt(s.Line, 1, "%q is not an array", s.Name)
			}
			if err := a.expr(s.Index); err != nil {
				return err
			}
		} else if sym.IsArray() {
			return errAt(s.Line, 1, "cannot assign to array %q", s.Name)
		}
		return a.expr(s.Value)
	case *IfStmt:
		if err := a.expr(s.Cond); err != nil {
			return err
		}
		if err := a.block(s.Then); err != nil {
			return err
		}
		if s.Else != nil {
			return a.stmt(s.Else)
		}
		return nil
	case *WhileStmt:
		if err := a.expr(s.Cond); err != nil {
			return err
		}
		a.loops++
		defer func() { a.loops-- }()
		return a.block(s.Body)
	case *ForStmt:
		if s.Init != nil {
			if err := a.stmt(s.Init); err != nil {
				return err
			}
		}
		if s.Cond != nil {
			if err := a.expr(s.Cond); err != nil {
				return err
			}
		}
		if s.Post != nil {
			if err := a.stmt(s.Post); err != nil {
				return err
			}
		}
		a.loops++
		defer func() { a.loops-- }()
		return a.block(s.Body)
	case *ReturnStmt:
		if a.fn.ReturnsInt && s.Value == nil {
			return errAt(s.Line, 1, "%q must return a value", a.fn.Name)
		}
		if !a.fn.ReturnsInt && s.Value != nil {
			return errAt(s.Line, 1, "%q returns no value", a.fn.Name)
		}
		if s.Value != nil {
			return a.expr(s.Value)
		}
		return nil
	case *BreakStmt:
		if a.loops == 0 {
			return errAt(s.Line, 1, "break outside loop")
		}
		return nil
	case *ContinueStmt:
		if a.loops == 0 {
			return errAt(s.Line, 1, "continue outside loop")
		}
		return nil
	case *OutStmt:
		return a.expr(s.Value)
	case *ExprStmt:
		return a.expr(s.X)
	}
	return errAt(0, 0, "internal: unknown statement %T", s)
}

func (a *funcAnalyzer) expr(e Expr) error {
	switch e := e.(type) {
	case *NumExpr:
		return nil
	case *VarExpr:
		sym, err := a.lookup(e.Name, e.Line)
		if err != nil {
			return err
		}
		if sym.IsArray() {
			return errAt(e.Line, 1, "array %q used as a value (arrays may only be indexed or passed to array parameters)", e.Name)
		}
		e.Sym = sym
		return nil
	case *IndexExpr:
		sym, err := a.lookup(e.Name, e.Line)
		if err != nil {
			return err
		}
		if !sym.IsArray() {
			return errAt(e.Line, 1, "%q is not an array", e.Name)
		}
		e.Sym = sym
		return a.expr(e.Index)
	case *BinExpr:
		if err := a.expr(e.L); err != nil {
			return err
		}
		return a.expr(e.R)
	case *UnExpr:
		return a.expr(e.X)
	case *CallExpr:
		fn, ok := a.prog.ByName[e.Name]
		if !ok {
			return errAt(e.Line, 1, "undefined function %q", e.Name)
		}
		if len(e.Args) != len(fn.Params) {
			return errAt(e.Line, 1, "%q expects %d arguments, got %d", e.Name, len(fn.Params), len(e.Args))
		}
		e.Func = fn
		for i, arg := range e.Args {
			if fn.Params[i].IsArray {
				v, ok := arg.(*VarExpr)
				if !ok {
					return errAt(e.Line, 1, "argument %d of %q must be an array name", i+1, e.Name)
				}
				sym, err := a.lookup(v.Name, v.Line)
				if err != nil {
					return err
				}
				if !sym.IsArray() {
					return errAt(v.Line, 1, "argument %d of %q must be an array, %q is scalar", i+1, e.Name, v.Name)
				}
				v.Sym = sym
				continue
			}
			if err := a.expr(arg); err != nil {
				return err
			}
		}
		return nil
	}
	return errAt(0, 0, "internal: unknown expression %T", e)
}
