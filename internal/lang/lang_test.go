package lang

import (
	"strings"
	"testing"
)

func TestLexBasics(t *testing.T) {
	toks, err := Lex("func main() { out(0x1F + 42); } // comment")
	if err != nil {
		t.Fatal(err)
	}
	kinds := []Kind{TokFunc, TokIdent, TokLParen, TokRParen, TokLBrace,
		TokOut, TokLParen, TokNumber, TokPlus, TokNumber, TokRParen, TokSemi,
		TokRBrace, TokEOF}
	if len(toks) != len(kinds) {
		t.Fatalf("got %d tokens, want %d", len(toks), len(kinds))
	}
	for i, k := range kinds {
		if toks[i].Kind != k {
			t.Errorf("token %d = %v, want %v", i, toks[i].Kind, k)
		}
	}
	if toks[7].Num != 0x1f || toks[9].Num != 42 {
		t.Errorf("numbers lexed wrong: %d %d", toks[7].Num, toks[9].Num)
	}
}

func TestLexTwoCharOperators(t *testing.T) {
	toks, err := Lex("<< >> <= >= == != && || < >")
	if err != nil {
		t.Fatal(err)
	}
	want := []Kind{TokShl, TokShr, TokLe, TokGe, TokEq, TokNe, TokAndAnd, TokOrOr, TokLt, TokGt, TokEOF}
	for i, k := range want {
		if toks[i].Kind != k {
			t.Errorf("token %d = %v, want %v", i, toks[i].Kind, k)
		}
	}
}

func TestLexBadCharacter(t *testing.T) {
	if _, err := Lex("func $"); err == nil {
		t.Fatal("expected error for '$'")
	}
}

func TestParseValidProgram(t *testing.T) {
	src := `
global int n;
global int data[64];

func add(int a, int b) int {
	return a + b;
}

func fill(int buf[], int len) {
	var int i;
	for (i = 0; i < len; i = i + 1) {
		buf[i] = i * 2;
	}
}

func main() {
	var int x = add(2, 3);
	n = x;
	fill(data, 64);
	if (data[10] == 20 && n == 5) {
		out(1);
	} else {
		out(0);
	}
	while (x > 0) {
		x = x - 1;
		if (x == 2) { break; }
		if (x == 4) { continue; }
	}
	out(x);
}
`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Globals) != 2 || len(prog.Funcs) != 3 {
		t.Fatalf("globals=%d funcs=%d", len(prog.Globals), len(prog.Funcs))
	}
	if prog.ByName["add"] == nil || !prog.ByName["add"].ReturnsInt {
		t.Error("add not resolved as int function")
	}
	if prog.ByName["fill"].ReturnsInt {
		t.Error("fill should be void")
	}
	if !prog.Globals[1].Sym.IsArray() || prog.Globals[1].Sym.ArraySize != 64 {
		t.Error("data array symbol wrong")
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"no main":             `func f() {}`,
		"undefined variable":  `func main() { x = 1; }`,
		"undefined function":  `func main() { f(); }`,
		"duplicate global":    "global int a;\nglobal int a;\nfunc main() {}",
		"duplicate function":  "func f() {}\nfunc f() {}\nfunc main() {}",
		"duplicate local":     `func main() { var int a; var int a; }`,
		"arg count":           "func f(int a) {}\nfunc main() { f(); }",
		"break outside loop":  `func main() { break; }`,
		"continue outside":    `func main() { continue; }`,
		"index scalar":        `func main() { var int a; a[0] = 1; }`,
		"assign array":        `global int a[4]; func main() { a = 1; }`,
		"array as value":      `global int a[4]; func main() { out(a); }`,
		"void returns value":  `func f() { return 1; } func main() {}`,
		"int returns nothing": `func f() int { return; } func main() {}`,
		"main with params":    `func main(int a) {}`,
		"scalar to array arg": "func f(int a[]) {}\nfunc main() { var int x; f(x); }",
		"expr statement":      `func main() { 1 + 2; }`,
		"global initializer":  `global int a; func main() { }  global int b[0];`,
	}
	for name, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("%s: expected parse/sema error", name)
		}
	}
}

func TestPrecedence(t *testing.T) {
	// 2 + 3 * 4 must parse as 2 + (3 * 4).
	prog, err := Parse(`func main() { out(2 + 3 * 4); }`)
	if err != nil {
		t.Fatal(err)
	}
	outStmt := prog.ByName["main"].Body.Stmts[0].(*OutStmt)
	top := outStmt.Value.(*BinExpr)
	if top.Op != OpAdd {
		t.Fatalf("top op = %v, want +", top.Op)
	}
	if r, ok := top.R.(*BinExpr); !ok || r.Op != OpMul {
		t.Fatal("right operand should be the multiplication")
	}
}

func TestElseIfChain(t *testing.T) {
	src := `func main() { var int x = 3;
		if (x == 1) { out(1); } else if (x == 2) { out(2); } else { out(3); } }`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	ifs := prog.ByName["main"].Body.Stmts[1].(*IfStmt)
	if _, ok := ifs.Else.(*IfStmt); !ok {
		t.Error("else-if did not chain")
	}
}

func TestErrorPositions(t *testing.T) {
	_, err := Parse("func main() {\n  x = 1;\n}")
	if err == nil {
		t.Fatal("expected error")
	}
	if !strings.Contains(err.Error(), "2:") {
		t.Errorf("error %q should carry line 2", err.Error())
	}
}
