package lang

// parser is a recursive-descent parser with precedence climbing for
// expressions. Name resolution happens in a separate pass (sema.go); the
// parser leaves Sym fields nil and records identifier text in rawIdent
// maps owned by the semantic pass.
type parser struct {
	toks []Token
	pos  int
}

func (p *parser) cur() Token  { return p.toks[p.pos] }
func (p *parser) next() Token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) expect(k Kind) (Token, error) {
	t := p.cur()
	if t.Kind != k {
		return t, errAt(t.Line, t.Col, "expected %v, found %v", k, t.Kind)
	}
	p.pos++
	return t, nil
}

func (p *parser) accept(k Kind) bool {
	if p.cur().Kind == k {
		p.pos++
		return true
	}
	return false
}

// Parse lexes, parses, and semantically checks a MiniC source file.
func Parse(src string) (*Program, error) {
	toks, err := Lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	prog := &Program{ByName: map[string]*FuncDecl{}}
	for p.cur().Kind != TokEOF {
		switch p.cur().Kind {
		case TokGlobal:
			d, err := p.globalDecl()
			if err != nil {
				return nil, err
			}
			prog.Globals = append(prog.Globals, d)
		case TokFunc:
			f, err := p.funcDecl()
			if err != nil {
				return nil, err
			}
			prog.Funcs = append(prog.Funcs, f)
		default:
			t := p.cur()
			return nil, errAt(t.Line, t.Col, "expected 'global' or 'func', found %v", t.Kind)
		}
	}
	if err := analyze(prog); err != nil {
		return nil, err
	}
	return prog, nil
}

func (p *parser) globalDecl() (*VarDecl, error) {
	line := p.cur().Line
	p.next() // global
	if _, err := p.expect(TokInt); err != nil {
		return nil, err
	}
	name, err := p.expect(TokIdent)
	if err != nil {
		return nil, err
	}
	d := &VarDecl{Name: name.Text, Line: line}
	if p.accept(TokLBracket) {
		n, err := p.expect(TokNumber)
		if err != nil {
			return nil, err
		}
		if n.Num <= 0 {
			return nil, errAt(n.Line, n.Col, "array size must be positive")
		}
		d.ArraySize = n.Num
		if _, err := p.expect(TokRBracket); err != nil {
			return nil, err
		}
	}
	if _, err := p.expect(TokSemi); err != nil {
		return nil, err
	}
	return d, nil
}

func (p *parser) funcDecl() (*FuncDecl, error) {
	line := p.cur().Line
	p.next() // func
	name, err := p.expect(TokIdent)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	f := &FuncDecl{Name: name.Text, Line: line}
	for p.cur().Kind != TokRParen {
		if len(f.Params) > 0 {
			if _, err := p.expect(TokComma); err != nil {
				return nil, err
			}
		}
		if _, err := p.expect(TokInt); err != nil {
			return nil, err
		}
		pn, err := p.expect(TokIdent)
		if err != nil {
			return nil, err
		}
		prm := &Param{Name: pn.Text}
		if p.accept(TokLBracket) {
			if _, err := p.expect(TokRBracket); err != nil {
				return nil, err
			}
			prm.IsArray = true
		}
		f.Params = append(f.Params, prm)
	}
	p.next() // )
	f.ReturnsInt = p.accept(TokInt)
	body, err := p.block()
	if err != nil {
		return nil, err
	}
	f.Body = body
	return f, nil
}

func (p *parser) block() (*BlockStmt, error) {
	if _, err := p.expect(TokLBrace); err != nil {
		return nil, err
	}
	b := &BlockStmt{}
	for p.cur().Kind != TokRBrace {
		if p.cur().Kind == TokEOF {
			t := p.cur()
			return nil, errAt(t.Line, t.Col, "unterminated block")
		}
		s, err := p.stmt()
		if err != nil {
			return nil, err
		}
		b.Stmts = append(b.Stmts, s)
	}
	p.next() // }
	return b, nil
}

func (p *parser) stmt() (Stmt, error) {
	switch p.cur().Kind {
	case TokVar:
		return p.declStmt()
	case TokIf:
		return p.ifStmt()
	case TokWhile:
		return p.whileStmt()
	case TokFor:
		return p.forStmt()
	case TokReturn:
		line := p.next().Line
		var val Expr
		if p.cur().Kind != TokSemi {
			var err error
			val, err = p.expr()
			if err != nil {
				return nil, err
			}
		}
		if _, err := p.expect(TokSemi); err != nil {
			return nil, err
		}
		return &ReturnStmt{Value: val, Line: line}, nil
	case TokBreak:
		line := p.next().Line
		if _, err := p.expect(TokSemi); err != nil {
			return nil, err
		}
		return &BreakStmt{Line: line}, nil
	case TokContinue:
		line := p.next().Line
		if _, err := p.expect(TokSemi); err != nil {
			return nil, err
		}
		return &ContinueStmt{Line: line}, nil
	case TokOut:
		p.next()
		if _, err := p.expect(TokLParen); err != nil {
			return nil, err
		}
		val, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokRParen); err != nil {
			return nil, err
		}
		if _, err := p.expect(TokSemi); err != nil {
			return nil, err
		}
		return &OutStmt{Value: val}, nil
	case TokLBrace:
		return p.block()
	default:
		s, err := p.simpleStmt()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokSemi); err != nil {
			return nil, err
		}
		return s, nil
	}
}

func (p *parser) declStmt() (Stmt, error) {
	line := p.next().Line // var
	if _, err := p.expect(TokInt); err != nil {
		return nil, err
	}
	name, err := p.expect(TokIdent)
	if err != nil {
		return nil, err
	}
	d := &VarDecl{Name: name.Text, Line: line}
	if p.accept(TokLBracket) {
		n, err := p.expect(TokNumber)
		if err != nil {
			return nil, err
		}
		if n.Num <= 0 {
			return nil, errAt(n.Line, n.Col, "array size must be positive")
		}
		d.ArraySize = n.Num
		if _, err := p.expect(TokRBracket); err != nil {
			return nil, err
		}
	} else if p.accept(TokAssign) {
		init, err := p.expr()
		if err != nil {
			return nil, err
		}
		d.Init = init
	}
	if _, err := p.expect(TokSemi); err != nil {
		return nil, err
	}
	return &DeclStmt{Decl: d}, nil
}

// simpleStmt parses an assignment or a call expression statement
// (the only statement forms legal in for-headers).
func (p *parser) simpleStmt() (Stmt, error) {
	t := p.cur()
	if t.Kind == TokIdent {
		// Lookahead distinguishes `x = ...`, `x[i] = ...` from a call.
		if p.toks[p.pos+1].Kind == TokAssign {
			p.next()
			p.next()
			val, err := p.expr()
			if err != nil {
				return nil, err
			}
			return &AssignStmt{Name: t.Text, Value: val, Line: t.Line}, nil
		}
		if p.toks[p.pos+1].Kind == TokLBracket {
			// Could be arr[i] = v; parse the index then check for '='.
			save := p.pos
			p.next()
			p.next()
			idx, err := p.expr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(TokRBracket); err != nil {
				return nil, err
			}
			if p.accept(TokAssign) {
				val, err := p.expr()
				if err != nil {
					return nil, err
				}
				return &AssignStmt{Name: t.Text, Index: idx, Value: val, Line: t.Line}, nil
			}
			// Not an assignment: re-parse as an expression statement.
			p.pos = save
		}
	}
	x, err := p.expr()
	if err != nil {
		return nil, err
	}
	if _, ok := x.(*CallExpr); !ok {
		return nil, errAt(t.Line, t.Col, "expression statement must be a call")
	}
	return &ExprStmt{X: x}, nil
}

func (p *parser) ifStmt() (Stmt, error) {
	p.next() // if
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	cond, err := p.expr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokRParen); err != nil {
		return nil, err
	}
	then, err := p.block()
	if err != nil {
		return nil, err
	}
	s := &IfStmt{Cond: cond, Then: then}
	if p.accept(TokElse) {
		if p.cur().Kind == TokIf {
			els, err := p.ifStmt()
			if err != nil {
				return nil, err
			}
			s.Else = els
		} else {
			els, err := p.block()
			if err != nil {
				return nil, err
			}
			s.Else = els
		}
	}
	return s, nil
}

func (p *parser) whileStmt() (Stmt, error) {
	p.next() // while
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	cond, err := p.expr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokRParen); err != nil {
		return nil, err
	}
	body, err := p.block()
	if err != nil {
		return nil, err
	}
	return &WhileStmt{Cond: cond, Body: body}, nil
}

func (p *parser) forStmt() (Stmt, error) {
	p.next() // for
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	s := &ForStmt{}
	if p.cur().Kind != TokSemi {
		init, err := p.simpleStmt()
		if err != nil {
			return nil, err
		}
		asg, ok := init.(*AssignStmt)
		if !ok {
			t := p.cur()
			return nil, errAt(t.Line, t.Col, "for-init must be an assignment")
		}
		s.Init = asg
	}
	if _, err := p.expect(TokSemi); err != nil {
		return nil, err
	}
	if p.cur().Kind != TokSemi {
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		s.Cond = cond
	}
	if _, err := p.expect(TokSemi); err != nil {
		return nil, err
	}
	if p.cur().Kind != TokRParen {
		post, err := p.simpleStmt()
		if err != nil {
			return nil, err
		}
		asg, ok := post.(*AssignStmt)
		if !ok {
			t := p.cur()
			return nil, errAt(t.Line, t.Col, "for-post must be an assignment")
		}
		s.Post = asg
	}
	if _, err := p.expect(TokRParen); err != nil {
		return nil, err
	}
	body, err := p.block()
	if err != nil {
		return nil, err
	}
	s.Body = body
	return s, nil
}

// --- expressions, precedence climbing ---------------------------------------

type opLevel struct {
	kinds []Kind
	ops   []BinOp
}

// Precedence from lowest to highest, C-like.
var levels = []opLevel{
	{[]Kind{TokOrOr}, []BinOp{OpLOr}},
	{[]Kind{TokAndAnd}, []BinOp{OpLAnd}},
	{[]Kind{TokPipe}, []BinOp{OpOr}},
	{[]Kind{TokCaret}, []BinOp{OpXor}},
	{[]Kind{TokAmp}, []BinOp{OpAnd}},
	{[]Kind{TokEq, TokNe}, []BinOp{OpEq, OpNe}},
	{[]Kind{TokLt, TokLe, TokGt, TokGe}, []BinOp{OpLt, OpLe, OpGt, OpGe}},
	{[]Kind{TokShl, TokShr}, []BinOp{OpShl, OpShr}},
	{[]Kind{TokPlus, TokMinus}, []BinOp{OpAdd, OpSub}},
	{[]Kind{TokStar, TokSlash, TokPercent}, []BinOp{OpMul, OpDiv, OpRem}},
}

func (p *parser) expr() (Expr, error) { return p.binExpr(0) }

func (p *parser) binExpr(level int) (Expr, error) {
	if level == len(levels) {
		return p.unary()
	}
	lhs, err := p.binExpr(level + 1)
	if err != nil {
		return nil, err
	}
	for {
		matched := false
		for i, k := range levels[level].kinds {
			if p.cur().Kind == k {
				line := p.next().Line
				rhs, err := p.binExpr(level + 1)
				if err != nil {
					return nil, err
				}
				lhs = &BinExpr{Op: levels[level].ops[i], L: lhs, R: rhs, Line: line}
				matched = true
				break
			}
		}
		if !matched {
			return lhs, nil
		}
	}
}

func (p *parser) unary() (Expr, error) {
	switch p.cur().Kind {
	case TokMinus:
		p.next()
		x, err := p.unary()
		if err != nil {
			return nil, err
		}
		return &UnExpr{Op: OpNeg, X: x}, nil
	case TokTilde:
		p.next()
		x, err := p.unary()
		if err != nil {
			return nil, err
		}
		return &UnExpr{Op: OpNot, X: x}, nil
	case TokBang:
		p.next()
		x, err := p.unary()
		if err != nil {
			return nil, err
		}
		return &UnExpr{Op: OpLNot, X: x}, nil
	}
	return p.postfix()
}

func (p *parser) postfix() (Expr, error) {
	t := p.cur()
	switch t.Kind {
	case TokNumber:
		p.next()
		return &NumExpr{Value: t.Num}, nil
	case TokLParen:
		p.next()
		x, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokRParen); err != nil {
			return nil, err
		}
		return x, nil
	case TokIdent:
		p.next()
		switch p.cur().Kind {
		case TokLParen:
			p.next()
			call := &CallExpr{Name: t.Text, Line: t.Line}
			for p.cur().Kind != TokRParen {
				if len(call.Args) > 0 {
					if _, err := p.expect(TokComma); err != nil {
						return nil, err
					}
				}
				a, err := p.expr()
				if err != nil {
					return nil, err
				}
				call.Args = append(call.Args, a)
			}
			p.next() // )
			return call, nil
		case TokLBracket:
			p.next()
			idx, err := p.expr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(TokRBracket); err != nil {
				return nil, err
			}
			return &IndexExpr{Name: t.Text, Index: idx, Line: t.Line}, nil
		default:
			return &VarExpr{Name: t.Text, Line: t.Line}, nil
		}
	}
	return nil, errAt(t.Line, t.Col, "expected expression, found %v", t.Kind)
}
