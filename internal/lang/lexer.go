package lang

// Lex tokenizes MiniC source. Comments run from // to end of line.
// Numbers are decimal or 0x-prefixed hexadecimal.
func Lex(src string) ([]Token, error) {
	var toks []Token
	line, col := 1, 1
	i := 0
	adv := func(n int) {
		for k := 0; k < n; k++ {
			if src[i] == '\n' {
				line++
				col = 1
			} else {
				col++
			}
			i++
		}
	}
	emit := func(k Kind, text string, num int64, startCol int) {
		toks = append(toks, Token{Kind: k, Text: text, Num: num, Line: line, Col: startCol})
	}
	for i < len(src) {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			adv(1)
		case c == '/' && i+1 < len(src) && src[i+1] == '/':
			for i < len(src) && src[i] != '\n' {
				adv(1)
			}
		case isAlpha(c):
			start, startCol := i, col
			for i < len(src) && (isAlpha(src[i]) || isDigit(src[i])) {
				adv(1)
			}
			word := src[start:i]
			if k, ok := keywords[word]; ok {
				emit(k, word, 0, startCol)
			} else {
				emit(TokIdent, word, 0, startCol)
			}
		case isDigit(c):
			start, startCol := i, col
			base := int64(10)
			if c == '0' && i+1 < len(src) && (src[i+1] == 'x' || src[i+1] == 'X') {
				base = 16
				adv(2)
				start = i
				for i < len(src) && isHex(src[i]) {
					adv(1)
				}
			} else {
				for i < len(src) && isDigit(src[i]) {
					adv(1)
				}
			}
			text := src[start:i]
			if text == "" {
				return nil, errAt(line, startCol, "malformed number")
			}
			var n int64
			for _, ch := range []byte(text) {
				n = n*base + int64(hexVal(ch))
			}
			emit(TokNumber, text, n, startCol)
		default:
			startCol := col
			two := ""
			if i+1 < len(src) {
				two = src[i : i+2]
			}
			switch two {
			case "<<":
				emit(TokShl, two, 0, startCol)
				adv(2)
				continue
			case ">>":
				emit(TokShr, two, 0, startCol)
				adv(2)
				continue
			case "<=":
				emit(TokLe, two, 0, startCol)
				adv(2)
				continue
			case ">=":
				emit(TokGe, two, 0, startCol)
				adv(2)
				continue
			case "==":
				emit(TokEq, two, 0, startCol)
				adv(2)
				continue
			case "!=":
				emit(TokNe, two, 0, startCol)
				adv(2)
				continue
			case "&&":
				emit(TokAndAnd, two, 0, startCol)
				adv(2)
				continue
			case "||":
				emit(TokOrOr, two, 0, startCol)
				adv(2)
				continue
			}
			var k Kind
			switch c {
			case '(':
				k = TokLParen
			case ')':
				k = TokRParen
			case '{':
				k = TokLBrace
			case '}':
				k = TokRBrace
			case '[':
				k = TokLBracket
			case ']':
				k = TokRBracket
			case ',':
				k = TokComma
			case ';':
				k = TokSemi
			case '=':
				k = TokAssign
			case '+':
				k = TokPlus
			case '-':
				k = TokMinus
			case '*':
				k = TokStar
			case '/':
				k = TokSlash
			case '%':
				k = TokPercent
			case '&':
				k = TokAmp
			case '|':
				k = TokPipe
			case '^':
				k = TokCaret
			case '~':
				k = TokTilde
			case '!':
				k = TokBang
			case '<':
				k = TokLt
			case '>':
				k = TokGt
			default:
				return nil, errAt(line, col, "unexpected character %q", string(c))
			}
			emit(k, string(c), 0, startCol)
			adv(1)
		}
	}
	toks = append(toks, Token{Kind: TokEOF, Line: line, Col: col})
	return toks, nil
}

func isAlpha(c byte) bool { return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') }
func isDigit(c byte) bool { return c >= '0' && c <= '9' }
func isHex(c byte) bool {
	return isDigit(c) || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
}
func hexVal(c byte) int {
	switch {
	case c <= '9':
		return int(c - '0')
	case c >= 'a':
		return int(c-'a') + 10
	default:
		return int(c-'A') + 10
	}
}
