package artcache

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func openTest(t *testing.T, opt Options) *Cache {
	t.Helper()
	c, err := Open(filepath.Join(t.TempDir(), "cache"), opt)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestPutGetRoundTrip(t *testing.T) {
	c := openTest(t, Options{})
	payload := []byte("golden artifact bytes \x00\xff binary ok")
	if err := c.Put("unit/a15/qsort/O2", payload); err != nil {
		t.Fatal(err)
	}
	got, ok := c.Get("unit/a15/qsort/O2")
	if !ok || !bytes.Equal(got, payload) {
		t.Fatalf("Get = %q, %v; want stored payload", got, ok)
	}
	if _, ok := c.Get("unit/a15/qsort/O3"); ok {
		t.Fatal("Get of unstored key hit")
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Puts != 1 || st.Corrupt != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

// entryFile returns the single .art file in the cache dir.
func entryFile(t *testing.T, c *Cache) string {
	t.Helper()
	ents, err := os.ReadDir(c.Dir())
	if err != nil {
		t.Fatal(err)
	}
	var files []string
	for _, e := range ents {
		if filepath.Ext(e.Name()) == entrySuffix {
			files = append(files, filepath.Join(c.Dir(), e.Name()))
		}
	}
	if len(files) != 1 {
		t.Fatalf("want exactly 1 entry file, got %d", len(files))
	}
	return files[0]
}

// TestFlippedBitDetected flips every byte of a stored entry in turn
// (header and payload) and asserts each corruption is detected,
// reported as a miss, and the entry discarded — never returned.
func TestFlippedBitDetected(t *testing.T) {
	c := openTest(t, Options{})
	payload := []byte("checkpoint stream payload, long enough to matter")
	if err := c.Put("k", payload); err != nil {
		t.Fatal(err)
	}
	path := entryFile(t, c)
	pristine, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := range pristine {
		damaged := bytes.Clone(pristine)
		damaged[i] ^= 0x40
		if err := os.WriteFile(path, damaged, 0o644); err != nil {
			t.Fatal(err)
		}
		if got, ok := c.Get("k"); ok {
			t.Fatalf("byte %d flipped: Get returned %q, want corrupt miss", i, got)
		}
		if _, err := os.Stat(path); !os.IsNotExist(err) {
			t.Fatalf("byte %d flipped: corrupt entry not discarded", i)
		}
		// Rebuild transparently, as a filler would.
		if err := c.Put("k", payload); err != nil {
			t.Fatal(err)
		}
	}
	if st := c.Stats(); st.Corrupt != uint64(len(pristine)) {
		t.Fatalf("corrupt count = %d, want %d", st.Corrupt, len(pristine))
	}
	if got, ok := c.Get("k"); !ok || !bytes.Equal(got, payload) {
		t.Fatal("rebuilt entry unreadable")
	}
}

// TestTruncationDetected truncates a stored entry at every length and
// asserts detection; a truncated entry must never decode.
func TestTruncationDetected(t *testing.T) {
	c := openTest(t, Options{})
	payload := []byte("short payload")
	if err := c.Put("k", payload); err != nil {
		t.Fatal(err)
	}
	path := entryFile(t, c)
	pristine, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n < len(pristine); n++ {
		if err := os.WriteFile(path, pristine[:n], 0o644); err != nil {
			t.Fatal(err)
		}
		if got, ok := c.Get("k"); ok {
			t.Fatalf("truncated to %d bytes: Get returned %q", n, got)
		}
		if err := c.Put("k", payload); err != nil {
			t.Fatal(err)
		}
	}
}

// TestGetOrFillSingleFlight launches many goroutines missing on one
// key and asserts fill ran exactly once and everyone saw its bytes.
// Run with -race this also checks the flight table's locking.
func TestGetOrFillSingleFlight(t *testing.T) {
	c := openTest(t, Options{})
	var fills atomic.Int32
	var started sync.WaitGroup
	release := make(chan struct{})
	fill := func() ([]byte, error) {
		fills.Add(1)
		<-release // hold the flight open so every goroutine piles up
		return []byte("built once"), nil
	}
	const n = 16
	results := make([][]byte, n)
	errs := make([]error, n)
	var done sync.WaitGroup
	for i := 0; i < n; i++ {
		started.Add(1)
		done.Add(1)
		go func(i int) {
			defer done.Done()
			started.Done()
			results[i], errs[i] = c.GetOrFill("shared", fill)
		}(i)
	}
	started.Wait()
	time.Sleep(10 * time.Millisecond) // let the stragglers reach the flight table
	close(release)
	done.Wait()
	if got := fills.Load(); got != 1 {
		t.Fatalf("fill ran %d times, want 1", got)
	}
	for i := 0; i < n; i++ {
		if errs[i] != nil || string(results[i]) != "built once" {
			t.Fatalf("goroutine %d: %q, %v", i, results[i], errs[i])
		}
	}
	// A later call hits disk, not fill.
	got, err := c.GetOrFill("shared", func() ([]byte, error) {
		t.Error("fill ran on warm cache")
		return nil, nil
	})
	if err != nil || string(got) != "built once" {
		t.Fatalf("warm GetOrFill = %q, %v", got, err)
	}
}

// TestGetOrFillErrorShared asserts a failed fill propagates to every
// waiter and stores nothing, and that a retry can succeed.
func TestGetOrFillErrorShared(t *testing.T) {
	c := openTest(t, Options{})
	boom := fmt.Errorf("compile failed")
	if _, err := c.GetOrFill("k", func() ([]byte, error) { return nil, boom }); err != boom {
		t.Fatalf("err = %v, want fill error", err)
	}
	if _, ok := c.Get("k"); ok {
		t.Fatal("failed fill left an entry behind")
	}
	got, err := c.GetOrFill("k", func() ([]byte, error) { return []byte("ok"), nil })
	if err != nil || string(got) != "ok" {
		t.Fatalf("retry = %q, %v", got, err)
	}
}

// TestEvictionUnderSizePressure fills past MaxBytes and asserts the
// oldest entries go first, the newest stays, and evicted keys rebuild
// cleanly.
func TestEvictionUnderSizePressure(t *testing.T) {
	payload := bytes.Repeat([]byte{0xAB}, 1024)
	// Each entry file is ~1KB + header; allow about three.
	c := openTest(t, Options{MaxBytes: 3600})
	for i := 0; i < 6; i++ {
		key := fmt.Sprintf("entry-%d", i)
		if err := c.Put(key, payload); err != nil {
			t.Fatal(err)
		}
		// Distinct mtimes so LRU order is unambiguous on coarse
		// filesystem timestamp granularity.
		path := c.entryPath(key)
		old := time.Unix(1700000000+int64(i)*10, 0)
		if err := os.Chtimes(path, old, old); err != nil {
			t.Fatal(err)
		}
	}
	// Force one more Put to apply eviction against the backdated set.
	if err := c.Put("entry-final", payload); err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.Evictions == 0 {
		t.Fatalf("no evictions under size pressure: %+v", st)
	}
	if _, ok := c.Get("entry-final"); !ok {
		t.Fatal("just-written entry was evicted")
	}
	if _, ok := c.Get("entry-0"); ok {
		t.Fatal("oldest entry survived eviction")
	}
	// Rebuild an evicted key as the scheduler would.
	got, err := c.GetOrFill("entry-0", func() ([]byte, error) { return payload, nil })
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("rebuild after eviction = %v", err)
	}
}

// TestEvictionNeverRemovesJustWritten puts one payload larger than
// MaxBytes and asserts it remains readable: the bound trims history,
// not the entry the caller is about to use.
func TestEvictionNeverRemovesJustWritten(t *testing.T) {
	c := openTest(t, Options{MaxBytes: 64})
	payload := bytes.Repeat([]byte{1}, 4096)
	if err := c.Put("big", payload); err != nil {
		t.Fatal(err)
	}
	if got, ok := c.Get("big"); !ok || !bytes.Equal(got, payload) {
		t.Fatal("oversized entry evicted before use")
	}
}

// TestNilCacheDisabled: a nil *Cache is the documented "caching off"
// state — every operation degrades to a no-op or a direct fill.
func TestNilCacheDisabled(t *testing.T) {
	var c *Cache
	if _, ok := c.Get("k"); ok {
		t.Fatal("nil cache hit")
	}
	if err := c.Put("k", []byte("x")); err != nil {
		t.Fatal(err)
	}
	got, err := c.GetOrFill("k", func() ([]byte, error) { return []byte("direct"), nil })
	if err != nil || string(got) != "direct" {
		t.Fatalf("nil GetOrFill = %q, %v", got, err)
	}
	if !c.Stats().Empty() {
		t.Fatal("nil cache stats non-empty")
	}
	if c.Dir() != "" {
		t.Fatal("nil cache dir")
	}
}

// TestKeyCollisionMismatchIsMiss writes an entry, then renames it to
// the path of a different key to simulate a filename collision; the
// key echo must reject it.
func TestKeyCollisionMismatchIsMiss(t *testing.T) {
	c := openTest(t, Options{})
	if err := c.Put("original", []byte("payload")); err != nil {
		t.Fatal(err)
	}
	if err := os.Rename(c.entryPath("original"), c.entryPath("imposter")); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get("imposter"); ok {
		t.Fatal("entry for a different key was returned")
	}
	if c.Stats().Corrupt != 1 {
		t.Fatalf("stats = %+v, want 1 corrupt", c.Stats())
	}
}

func TestStatsAdd(t *testing.T) {
	var total Stats
	total.Add(Stats{Hits: 1, Misses: 2, Puts: 3, Evictions: 4, Corrupt: 5})
	total.Add(Stats{Hits: 10, Misses: 20, Puts: 30, Evictions: 40, Corrupt: 50})
	want := Stats{Hits: 11, Misses: 22, Puts: 33, Evictions: 44, Corrupt: 55}
	if total != want {
		t.Fatalf("Add = %+v, want %+v", total, want)
	}
	if total.Empty() {
		t.Fatal("non-zero stats Empty")
	}
}
