// Package artcache is a content-addressed, on-disk artifact cache for
// prep-unit products: compiled binaries, golden run results,
// serialized checkpoint streams, and static-analysis bounds. Entries
// are keyed by a canonical fingerprint string of everything that
// determines the artifact bytes; the cache never interprets the key
// beyond hashing it, so any layer (core scheduler, CLIs, distributed
// workers) can share one directory.
//
// Guarantees:
//
//   - Crash-safe writes: every entry lands via temp+fsync+rename
//     (journal.AtomicWriteFile), so a SIGKILL mid-Put leaves either
//     the old state or the complete new entry, never a torn file.
//   - Integrity on load: each entry carries a header with a magic,
//     the full key, and a SHA-256 of the payload. A flipped bit, a
//     truncation, or a hash-collision key mismatch is detected on
//     Get, the entry is deleted, and the caller sees a plain miss —
//     corrupted cache state is never trusted, only rebuilt.
//   - Single-flight fills: GetOrFill deduplicates concurrent misses
//     on the same key within a process, so parallel cells sharing a
//     prep unit build it exactly once.
//   - Bounded size: when Options.MaxBytes is set, Put evicts
//     least-recently-used entries (by file mtime, touched on hit)
//     until the directory fits. Eviction can only cost time, never
//     correctness: a rebuilt entry is byte-identical by construction.
//
// The zero value of *Cache (nil) is a valid disabled cache: Get
// always misses, Put discards, and GetOrFill calls fill directly.
package artcache

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"sevsim/internal/journal"
)

// entryMagic begins every cache entry file. The version digit guards
// against reading entries written by an incompatible layout.
const entryMagic = "SEVART1\n"

// entrySuffix names cache entry files; eviction and sizing only ever
// consider files with this suffix, so foreign files in the directory
// are left alone.
const entrySuffix = ".art"

// Options configures a cache directory.
type Options struct {
	// MaxBytes bounds the total size of entry files in the cache
	// directory; 0 means unbounded. Put evicts least-recently-used
	// entries (never the one just written) until under the bound.
	MaxBytes int64
}

// Stats is a snapshot of cache effectiveness counters. The zero value
// is empty; Add accumulates snapshots (used by the distributed layer
// to aggregate per-worker stats).
type Stats struct {
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Puts      uint64 `json:"puts"`
	Evictions uint64 `json:"evictions"`
	Corrupt   uint64 `json:"corrupt"`
}

// Add accumulates other into s.
func (s *Stats) Add(other Stats) {
	s.Hits += other.Hits
	s.Misses += other.Misses
	s.Puts += other.Puts
	s.Evictions += other.Evictions
	s.Corrupt += other.Corrupt
}

// Minus returns the counter deltas since an earlier snapshot of the
// same cache (used by workers reporting per-lease activity).
func (s Stats) Minus(earlier Stats) Stats {
	return Stats{
		Hits:      s.Hits - earlier.Hits,
		Misses:    s.Misses - earlier.Misses,
		Puts:      s.Puts - earlier.Puts,
		Evictions: s.Evictions - earlier.Evictions,
		Corrupt:   s.Corrupt - earlier.Corrupt,
	}
}

// Empty reports whether no counter has fired.
func (s Stats) Empty() bool {
	return s == Stats{}
}

// String renders the counters in the compact form used by CLI
// summaries.
func (s Stats) String() string {
	return fmt.Sprintf("%d hits, %d misses, %d evictions, %d corrupt discarded", s.Hits, s.Misses, s.Evictions, s.Corrupt)
}

// Cache is a content-addressed artifact store rooted at one
// directory. All methods are safe for concurrent use; a nil *Cache is
// a valid disabled cache.
type Cache struct {
	dir string
	max atomic.Int64

	hits      atomic.Uint64
	misses    atomic.Uint64
	puts      atomic.Uint64
	evictions atomic.Uint64
	corrupt   atomic.Uint64

	mu     sync.Mutex
	flight map[string]*flightCall
}

type flightCall struct {
	done chan struct{}
	data []byte
	err  error
}

// Open creates (if needed) and returns the cache rooted at dir. The
// directory is created crash-safely so entries written immediately
// after survive a power cut.
func Open(dir string, opt Options) (*Cache, error) {
	if dir == "" {
		return nil, errors.New("artcache: empty directory")
	}
	if err := journal.MkdirAllSync(dir, 0o755); err != nil {
		return nil, fmt.Errorf("artcache: %w", err)
	}
	c := &Cache{
		dir:    dir,
		flight: make(map[string]*flightCall),
	}
	c.max.Store(opt.MaxBytes)
	return c, nil
}

// Dir returns the cache directory, or "" for a disabled cache.
func (c *Cache) Dir() string {
	if c == nil {
		return ""
	}
	return c.dir
}

// Stats returns a snapshot of the effectiveness counters.
func (c *Cache) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	return Stats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Puts:      c.puts.Load(),
		Evictions: c.evictions.Load(),
		Corrupt:   c.corrupt.Load(),
	}
}

// entryPath maps a key to its file: the SHA-256 of the key in hex.
// The full key is echoed inside the entry header and verified on Get,
// so even a hash collision degrades to a miss, not a wrong artifact.
func (c *Cache) entryPath(key string) string {
	sum := sha256.Sum256([]byte(key))
	return filepath.Join(c.dir, fmt.Sprintf("%x%s", sum, entrySuffix))
}

// Get returns the payload stored under key, or (nil, false) on a
// miss. A corrupted, truncated, or mismatched entry is deleted and
// reported as a miss.
func (c *Cache) Get(key string) ([]byte, bool) {
	if c == nil {
		return nil, false
	}
	data, ok := c.load(key)
	if ok {
		c.hits.Add(1)
	} else {
		c.misses.Add(1)
	}
	return data, ok
}

func (c *Cache) load(key string) ([]byte, bool) {
	path := c.entryPath(key)
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, false // missing or unreadable: plain miss
	}
	payload, err := decodeEntry(raw, key)
	if err != nil {
		// Never trust a damaged entry: discard it so the next fill
		// rebuilds, and count the discard so operators can see disk
		// trouble.
		c.corrupt.Add(1)
		os.Remove(path)
		return nil, false
	}
	c.touch(path)
	return payload, true
}

// touch refreshes the entry's mtime so LRU eviction sees the hit.
func (c *Cache) touch(path string) {
	now := time.Now() //lint:clock eviction recency only; cannot reach study results
	os.Chtimes(path, now, now)
}

// Put stores payload under key, crash-safely, then enforces the size
// bound. Overwriting an existing entry is allowed and atomic.
func (c *Cache) Put(key string, payload []byte) error {
	if c == nil {
		return nil
	}
	path := c.entryPath(key)
	if err := journal.AtomicWriteFile(path, encodeEntry(key, payload)); err != nil {
		return fmt.Errorf("artcache: put: %w", err)
	}
	c.puts.Add(1)
	return c.evict(filepath.Base(path))
}

// LimitBytes replaces the size bound at runtime (0 lifts it); the
// distributed layer applies a coordinator-pushed cache policy to a
// long-lived worker cache this way. The bound takes effect at the next
// Put.
func (c *Cache) LimitBytes(n int64) {
	if c == nil {
		return
	}
	c.max.Store(n)
}

// Drop removes the entry for key and counts it as a corrupt discard.
// Callers use it when a payload passed the cache's checksum but failed
// semantic validation downstream (e.g. a stale or damaged bundle), so
// the next fill rebuilds from scratch.
func (c *Cache) Drop(key string) {
	if c == nil {
		return
	}
	if os.Remove(c.entryPath(key)) == nil {
		c.corrupt.Add(1)
	}
}

// GetOrFill returns the payload for key, building and storing it with
// fill on a miss. Concurrent calls for the same key are deduplicated:
// one caller runs fill, the rest block and share its result (a
// fill error is shared too, and nothing is stored). On a disabled
// (nil) cache it simply runs fill.
func (c *Cache) GetOrFill(key string, fill func() ([]byte, error)) ([]byte, error) {
	if c == nil {
		return fill()
	}
	for {
		c.mu.Lock()
		if fc, ok := c.flight[key]; ok {
			c.mu.Unlock()
			<-fc.done
			if fc.err != nil {
				return nil, fc.err
			}
			// The leader stored the entry; count the dedup as a hit —
			// this caller skipped a rebuild.
			c.hits.Add(1)
			return fc.data, nil
		}
		fc := &flightCall{done: make(chan struct{})}
		c.flight[key] = fc
		c.mu.Unlock()

		data, ok := c.Get(key)
		if ok {
			fc.data = data
			c.finish(key, fc)
			return data, nil
		}
		data, err := fill()
		if err == nil {
			err = c.Put(key, data)
		}
		fc.data, fc.err = data, err
		c.finish(key, fc)
		return data, err
	}
}

func (c *Cache) finish(key string, fc *flightCall) {
	c.mu.Lock()
	delete(c.flight, key)
	c.mu.Unlock()
	close(fc.done)
}

// evict removes least-recently-used entries until the directory's
// entry files fit MaxBytes. The just-written file (keep) is never
// evicted, so a Put always leaves its own entry readable even when
// the payload alone exceeds the bound.
func (c *Cache) evict(keep string) error {
	max := c.max.Load()
	if max <= 0 {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()

	ents, err := os.ReadDir(c.dir)
	if err != nil {
		return fmt.Errorf("artcache: evict: %w", err)
	}
	type entry struct {
		name  string
		size  int64
		mtime time.Time
	}
	var (
		files []entry
		total int64
	)
	for _, e := range ents {
		if e.IsDir() || filepath.Ext(e.Name()) != entrySuffix {
			continue
		}
		info, err := e.Info()
		if err != nil {
			continue // raced with another eviction
		}
		files = append(files, entry{e.Name(), info.Size(), info.ModTime()})
		total += info.Size()
	}
	sort.Slice(files, func(i, j int) bool {
		if !files[i].mtime.Equal(files[j].mtime) {
			return files[i].mtime.Before(files[j].mtime)
		}
		return files[i].name < files[j].name // stable order for equal mtimes
	})
	for _, f := range files {
		if total <= max {
			break
		}
		if f.name == keep {
			continue
		}
		if err := os.Remove(filepath.Join(c.dir, f.name)); err == nil {
			total -= f.size
			c.evictions.Add(1)
		}
	}
	return nil
}

// encodeEntry frames a payload for disk:
//
//	magic(8) | keyLen u32 | key | payloadLen u64 | sha256(payload) | payload
//
// The key echo turns a (vanishingly unlikely) filename-hash collision
// into a detectable mismatch; the checksum catches bit rot and the
// length catches truncation even when the tail happens to checksum.
func encodeEntry(key string, payload []byte) []byte {
	out := make([]byte, 0, len(entryMagic)+4+len(key)+8+sha256.Size+len(payload))
	out = append(out, entryMagic...)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(key)))
	out = append(out, key...)
	out = binary.LittleEndian.AppendUint64(out, uint64(len(payload)))
	sum := sha256.Sum256(payload)
	out = append(out, sum[:]...)
	out = append(out, payload...)
	return out
}

var errCorrupt = errors.New("artcache: corrupt entry")

func decodeEntry(raw []byte, key string) ([]byte, error) {
	if len(raw) < len(entryMagic)+4 || string(raw[:len(entryMagic)]) != entryMagic {
		return nil, errCorrupt
	}
	raw = raw[len(entryMagic):]
	keyLen := binary.LittleEndian.Uint32(raw[:4])
	raw = raw[4:]
	if uint64(len(raw)) < uint64(keyLen)+8+sha256.Size {
		return nil, errCorrupt
	}
	if string(raw[:keyLen]) != key {
		return nil, errCorrupt // filename hash collision or renamed entry
	}
	raw = raw[keyLen:]
	payloadLen := binary.LittleEndian.Uint64(raw[:8])
	raw = raw[8:]
	var sum [sha256.Size]byte
	copy(sum[:], raw[:sha256.Size])
	payload := raw[sha256.Size:]
	if uint64(len(payload)) != payloadLen {
		return nil, errCorrupt // truncated or trailing garbage
	}
	if sha256.Sum256(payload) != sum {
		return nil, errCorrupt // bit rot
	}
	return payload, nil
}
