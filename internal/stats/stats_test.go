package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPaperSampleSize(t *testing.T) {
	// The paper cites 2,000 faults per component for a 2.88% margin at
	// 99% confidence; for any large population the Leveugle formula
	// should reproduce roughly that pairing.
	n := SampleSize(1<<30, 0.0288, 0.99)
	if n < 1900 || n > 2100 {
		t.Errorf("sample size for 2.88%%@99%% = %d, expected ~2000", n)
	}
	m := ErrorMargin(2000, 1<<30, 0.99)
	if math.Abs(m-0.0288) > 0.002 {
		t.Errorf("margin for 2000 samples = %.4f, expected ~0.0288", m)
	}
}

func TestSampleSizeSmallPopulation(t *testing.T) {
	// Sampling most of a small population needs almost all of it.
	if n := SampleSize(100, 0.01, 0.99); n < 95 || n > 100 {
		t.Errorf("small-population sample size = %d", n)
	}
	if n := SampleSize(0, 0.01, 0.99); n != 0 {
		t.Errorf("empty population sample size = %d", n)
	}
}

func TestErrorMarginEdges(t *testing.T) {
	if m := ErrorMargin(0, 1000, 0.99); m != 1 {
		t.Errorf("zero samples margin = %f", m)
	}
	if m := ErrorMargin(1000, 1000, 0.99); m != 0 {
		t.Errorf("census margin = %f", m)
	}
}

func TestMarginMonotonicInSamples(t *testing.T) {
	prop := func(seed int64) bool {
		n1 := int(seed%1000) + 10
		n2 := n1 * 2
		pop := uint64(1 << 24)
		return ErrorMargin(n2, pop, 0.99) <= ErrorMargin(n1, pop, 0.99)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestConfidenceOrdering(t *testing.T) {
	// Higher confidence -> wider margin for the same sample.
	m95 := ErrorMargin(500, 1<<24, 0.95)
	m99 := ErrorMargin(500, 1<<24, 0.99)
	if m99 <= m95 {
		t.Errorf("99%% margin %.4f should exceed 95%% margin %.4f", m99, m95)
	}
}

func TestWilsonInterval(t *testing.T) {
	p := WilsonInterval(50, 100, 0.95)
	if p.Estimate != 0.5 {
		t.Errorf("estimate = %f", p.Estimate)
	}
	if p.Lo >= 0.5 || p.Hi <= 0.5 {
		t.Errorf("interval [%f,%f] should bracket 0.5", p.Lo, p.Hi)
	}
	if p.Hi-p.Lo > 0.25 {
		t.Errorf("interval too wide: %f", p.Hi-p.Lo)
	}
	zero := WilsonInterval(0, 100, 0.95)
	if zero.Lo != 0 || zero.Estimate != 0 {
		t.Errorf("zero-successes interval: %+v", zero)
	}
	if zero.Hi <= 0 || zero.Hi > 0.1 {
		t.Errorf("zero-successes upper bound: %f", zero.Hi)
	}
	empty := WilsonInterval(0, 0, 0.95)
	if empty.Estimate != 0 || empty.Lo != 0 || empty.Hi != 0 {
		t.Errorf("empty interval: %+v", empty)
	}
}

func TestWilsonBoundsProperty(t *testing.T) {
	prop := func(seed int64) bool {
		if seed < 0 {
			seed = -seed
		}
		n := int(seed%500) + 1
		k := int(seed % int64(n+1))
		p := WilsonInterval(k, n, 0.99)
		return p.Lo >= 0 && p.Hi <= 1 && p.Lo <= p.Estimate && p.Estimate <= p.Hi
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
