// Package stats implements the statistical-fault-injection sample-size
// mathematics of Leveugle et al. (DATE 2009), which the paper uses to
// justify 2,000 faults per cell (2.88% error margin at 99% confidence).
package stats

import "math"

// zFor returns the standard normal quantile for common confidence
// levels (two-sided).
func zFor(confidence float64) float64 {
	switch {
	case confidence >= 0.999:
		return 3.2905
	case confidence >= 0.99:
		return 2.5758
	case confidence >= 0.95:
		return 1.9600
	case confidence >= 0.90:
		return 1.6449
	default:
		return 1.2816
	}
}

// SampleSize returns the number of faults to inject into a population
// of N fault sites for the desired error margin e (e.g. 0.0288) at the
// given confidence, assuming worst-case p = 0.5:
//
//	n = N / (1 + e^2 (N-1) / (z^2 p(1-p)))
func SampleSize(population uint64, margin, confidence float64) int {
	if population == 0 {
		return 0
	}
	z := zFor(confidence)
	nf := float64(population)
	p := 0.5
	n := nf / (1 + margin*margin*(nf-1)/(z*z*p*(1-p)))
	return int(math.Ceil(n))
}

// ErrorMargin inverts SampleSize: the margin achieved by n samples from
// a population of N at the given confidence (worst-case p = 0.5).
func ErrorMargin(samples int, population uint64, confidence float64) float64 {
	if samples <= 0 || population == 0 {
		return 1
	}
	z := zFor(confidence)
	nf := float64(population)
	n := float64(samples)
	if n >= nf {
		return 0
	}
	p := 0.5
	return z * math.Sqrt(p*(1-p)/n*(nf-n)/(nf-1))
}

// Proportion is an estimated rate with a confidence interval.
type Proportion struct {
	Estimate float64
	Lo, Hi   float64
}

// WilsonInterval returns the Wilson score interval for k successes out
// of n trials at the given confidence.
func WilsonInterval(k, n int, confidence float64) Proportion {
	if n == 0 {
		return Proportion{}
	}
	z := zFor(confidence)
	p := float64(k) / float64(n)
	nf := float64(n)
	denom := 1 + z*z/nf
	center := (p + z*z/(2*nf)) / denom
	half := z * math.Sqrt(p*(1-p)/nf+z*z/(4*nf*nf)) / denom
	return Proportion{
		Estimate: p,
		Lo:       math.Max(0, center-half),
		Hi:       math.Min(1, center+half),
	}
}
