package checkpoint

// Binary serialization of a checkpoint stream for the prep-artifact
// cache. A decoded stream is functionally identical to one produced by
// Record: the snapshots are pooled states in ascending cycle order,
// and the convergence watches are rebuilt from the decoded snapshots
// exactly the way Record builds them from live ones — a watch is just
// a closure over its snapshot.

import (
	"fmt"

	"sevsim/internal/binio"
	"sevsim/internal/machine"
)

// EncodeTo appends the stream's checkpoints to w. Watches carry no
// state of their own (each is a closure over its snapshot), so only
// the snapshots are serialized.
func (s *Stream) EncodeTo(w *binio.Writer) {
	w.Uvarint(uint64(len(s.snaps)))
	for _, sn := range s.snaps {
		sn.EncodeTo(w)
	}
}

// DecodeStream reads a stream written by EncodeTo, validating each
// snapshot against cfg and rebuilding the convergence watches. The
// caller owns the stream and must Release it.
func DecodeStream(r *binio.Reader, cfg machine.Config) (*Stream, error) {
	n := int(r.Uvarint())
	if err := r.Err(); err != nil {
		return nil, err
	}
	// A serialized snapshot is far larger than this floor; the bound
	// only rejects a nonsensical count before allocation.
	if n < 0 || n > r.Len()/16+1 {
		r.Fail(fmt.Errorf("checkpoint: decode: snapshot count %d exceeds remaining input", n))
		return nil, r.Err()
	}
	s := &Stream{
		snaps:   make([]*machine.Snap, 0, n),
		watches: make([]machine.Watch, 0, n),
	}
	var lastCycle uint64
	for i := 0; i < n; i++ {
		sn, err := machine.DecodeSnap(r, cfg)
		if err != nil {
			s.Release()
			return nil, err
		}
		if i > 0 && sn.Cycle <= lastCycle {
			sn.Release()
			s.Release()
			return nil, fmt.Errorf("checkpoint: decode: snapshot cycles not ascending (%d after %d)", sn.Cycle, lastCycle)
		}
		lastCycle = sn.Cycle
		s.snaps = append(s.snaps, sn)
		s.watches = append(s.watches, machine.Watch{
			At: sn.Cycle,
			Fn: func(live *machine.Machine) bool { return live.Converged(sn) },
		})
	}
	return s, nil
}
