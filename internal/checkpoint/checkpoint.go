// Package checkpoint records and serves full-machine snapshots of a
// golden (fault-free) run, the mechanism behind the injection engine's
// two biggest wall-clock levers:
//
//   - fast-forward: an injection at cycle c restores the latest
//     checkpoint at-or-before c instead of re-simulating the fault-free
//     prefix from cycle 0 — with injection cycles uniform over the
//     golden run, K evenly spaced checkpoints remove ~(1 − 1/2K) of all
//     pre-injection simulation;
//
//   - early convergence: checkpoints after the injection cycle double
//     as reference points for the Masked fast exit — if the faulty
//     machine's behavioral state equals the golden state at the same
//     cycle, the rest of the run provably replays golden and the
//     injection is Masked without simulating the tail.
//
// A Stream is immutable after Record and safe to share read-only across
// every worker of a campaign cell: machine.Restore copies out of a
// snapshot, never into it, and memory pages are copy-on-write.
package checkpoint

import (
	"sort"

	"sevsim/internal/machine"
)

// Stream is the ordered checkpoint sequence of one golden run.
type Stream struct {
	snaps   []*machine.Snap
	watches []machine.Watch // convergence probe per snapshot, same order
}

// Cycles returns up to k evenly spaced checkpoint cycles for a golden
// run of the given length: 0, step, 2·step, … with step = goldenCycles/k,
// all strictly below goldenCycles (a hook at the halt cycle would never
// fire — the run ends there). Cycle 0 is always included so every
// injection has a checkpoint at-or-before it. Returns nil when k ≤ 0 or
// the golden run is empty.
func Cycles(goldenCycles uint64, k int) []uint64 {
	if k <= 0 || goldenCycles == 0 {
		return nil
	}
	if uint64(k) > goldenCycles {
		k = int(goldenCycles)
	}
	step := goldenCycles / uint64(k)
	out := make([]uint64, k)
	for i := range out {
		out[i] = uint64(i) * step
	}
	return out
}

// Record replays a golden run on m (a freshly built machine), taking a
// snapshot at the start of each listed cycle, and returns the stream
// plus the run's result. cycles must be ascending and below the halt
// cycle. The caller is expected to verify the result matches its first
// golden run — simulation is deterministic, so a mismatch means a
// simulator bug, not a recording artifact.
func Record(m *machine.Machine, maxCycles uint64, cycles []uint64) (*Stream, machine.Result) {
	s := &Stream{
		snaps:   make([]*machine.Snap, 0, len(cycles)),
		watches: make([]machine.Watch, 0, len(cycles)),
	}
	hooks := make([]machine.Hook, len(cycles))
	for i, c := range cycles {
		hooks[i] = machine.Hook{At: c, Fn: func(mm *machine.Machine) {
			sn := mm.Snapshot()
			s.snaps = append(s.snaps, sn)
			s.watches = append(s.watches, machine.Watch{
				At: sn.Cycle,
				Fn: func(live *machine.Machine) bool { return live.Converged(sn) },
			})
		}}
	}
	res := m.Run(maxCycles, hooks...)
	return s, res
}

// Len returns the number of recorded checkpoints.
func (s *Stream) Len() int { return len(s.snaps) }

// Snaps returns the checkpoints in ascending cycle order. The slice and
// the snapshots are shared — treat both as read-only.
func (s *Stream) Snaps() []*machine.Snap { return s.snaps }

// LatestIndex returns the index of the latest checkpoint at-or-before
// cycle, or -1 when none exists (only possible if cycle 0 was not
// recorded). Callers batching injections per checkpoint key on this
// index so every run of a batch restores the same snapshot.
func (s *Stream) LatestIndex(cycle uint64) int {
	return sort.Search(len(s.snaps), func(i int) bool { return s.snaps[i].Cycle > cycle }) - 1
}

// Latest returns the latest checkpoint at-or-before cycle, or nil when
// none exists (only possible if cycle 0 was not recorded).
func (s *Stream) Latest(cycle uint64) *machine.Snap {
	if i := s.LatestIndex(cycle); i >= 0 {
		return s.snaps[i]
	}
	return nil
}

// Release returns every snapshot's pooled buffers (core and cache
// states) to their pools and empties the stream. The caller must be
// the stream's last user: no restore, watch, or Latest call may follow.
func (s *Stream) Release() {
	for _, sn := range s.snaps {
		sn.Release()
	}
	s.snaps = nil
	s.watches = nil
}

// WatchesAfter returns the convergence watches for every checkpoint
// strictly after cycle, ready to pass to machine.RunWatched. A watch at
// the injection cycle itself would be sound (hooks fire before watches,
// so it would observe post-flip state) but the strict bound keeps an
// injection from being classified by the very checkpoint it restored
// from. The returned slice aliases the stream — zero allocation per
// injection — and must not be modified.
func (s *Stream) WatchesAfter(cycle uint64) []machine.Watch {
	i := sort.Search(len(s.watches), func(i int) bool { return s.watches[i].At > cycle })
	return s.watches[i:]
}
