package checkpoint

import (
	"testing"

	"sevsim/internal/isa"
	"sevsim/internal/machine"
)

// testProgram is a small loop workload (sum 1..100 plus a store/load
// pair) long enough to place several checkpoints apart.
func testProgram() *machine.Program {
	const a0, a1, a2 = isa.RegA0, isa.RegA1, isa.RegA2
	ins := []isa.Instr{
		/*0*/ isa.I(isa.OpLui, a2, 0, int32(machine.GlobalBase>>16)),
		/*1*/ isa.I(isa.OpAddi, a0, isa.RegZero, 0), // sum
		/*2*/ isa.I(isa.OpAddi, a1, isa.RegZero, 1), // i
		// loop:
		/*3*/ isa.R(isa.OpAdd, a0, a0, a1),
		/*4*/ isa.Store(isa.OpSw, a0, a2, 0),
		/*5*/ isa.I(isa.OpAddi, a1, a1, 1),
		/*6*/ isa.I(isa.OpAddi, isa.RegT0, a1, -101),
		/*7*/ isa.Branch(isa.OpBne, isa.RegT0, isa.RegZero, int32(3-7-1)),
		/*8*/ isa.Load(isa.OpLw, a0, a2, 0),
		/*9*/ isa.Out(a0), // 5050
		/*10*/ isa.Halt(),
	}
	return &machine.Program{Name: "ckpt", Code: isa.Assemble(ins), Entry: machine.CodeBase, GlobalSize: 4096}
}

func TestCyclesProperties(t *testing.T) {
	cases := []struct {
		golden uint64
		k      int
		want   []uint64
	}{
		{0, 8, nil},
		{100, 0, nil},
		{100, -3, nil},
		{100, 4, []uint64{0, 25, 50, 75}},
		{7, 3, []uint64{0, 2, 4}},
		{1, 5, []uint64{0}},
		{3, 8, []uint64{0, 1, 2}}, // k capped at the golden length
	}
	for _, c := range cases {
		got := Cycles(c.golden, c.k)
		if len(got) != len(c.want) {
			t.Errorf("Cycles(%d, %d) = %v, want %v", c.golden, c.k, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("Cycles(%d, %d) = %v, want %v", c.golden, c.k, got, c.want)
				break
			}
		}
	}
	// General invariants on a larger sweep: starts at 0, strictly
	// ascending, strictly below the golden length, at most k entries.
	for golden := uint64(1); golden < 200; golden += 13 {
		for k := 1; k <= 16; k++ {
			cs := Cycles(golden, k)
			if len(cs) == 0 || cs[0] != 0 {
				t.Fatalf("Cycles(%d, %d): first entry not 0: %v", golden, k, cs)
			}
			if len(cs) > k {
				t.Fatalf("Cycles(%d, %d): %d entries", golden, k, len(cs))
			}
			for i, c := range cs {
				if c >= golden {
					t.Fatalf("Cycles(%d, %d): entry %d at or past halt", golden, k, c)
				}
				if i > 0 && c <= cs[i-1] {
					t.Fatalf("Cycles(%d, %d): not strictly ascending: %v", golden, k, cs)
				}
			}
		}
	}
}

func mustGolden(t *testing.T, cfg machine.Config) machine.Result {
	t.Helper()
	res := machine.New(cfg, testProgram()).Run(1 << 30)
	if res.Outcome != machine.OutcomeOK {
		t.Fatalf("golden run %v %s", res.Outcome, res.Reason)
	}
	return res
}

func TestRecordLatestAndWatches(t *testing.T) {
	cfg := machine.Configs()[0]
	golden := mustGolden(t, cfg)
	cycles := Cycles(golden.Cycles, 4)

	stream, rec := Record(machine.New(cfg, testProgram()), 1<<30, cycles)
	if rec.Outcome != golden.Outcome || rec.Cycles != golden.Cycles {
		t.Fatalf("recording pass %v after %d cycles, golden %v after %d",
			rec.Outcome, rec.Cycles, golden.Outcome, golden.Cycles)
	}
	if stream.Len() != len(cycles) {
		t.Fatalf("recorded %d checkpoints, want %d", stream.Len(), len(cycles))
	}
	snaps := stream.Snaps()
	for i, sn := range snaps {
		if sn.Cycle != cycles[i] {
			t.Errorf("checkpoint %d at cycle %d, want %d", i, sn.Cycle, cycles[i])
		}
	}

	// Latest: exact hits, in-between cycles, and past-the-end cycles.
	if got := stream.Latest(0); got != snaps[0] {
		t.Error("Latest(0) is not the first checkpoint")
	}
	if got := stream.Latest(cycles[1]); got != snaps[1] {
		t.Error("Latest at an exact checkpoint cycle must return that checkpoint")
	}
	if got := stream.Latest(cycles[1] - 1); got != snaps[0] {
		t.Error("Latest just before a checkpoint must return the previous one")
	}
	if got := stream.Latest(golden.Cycles + 1000); got != snaps[len(snaps)-1] {
		t.Error("Latest past the end must return the last checkpoint")
	}
	empty := &Stream{}
	if empty.Latest(5) != nil {
		t.Error("Latest on an empty stream must be nil")
	}

	// WatchesAfter is strictly-after: the checkpoint an injection
	// restored from must never classify it.
	if got := stream.WatchesAfter(0); len(got) != len(cycles)-1 {
		t.Errorf("WatchesAfter(0) has %d watches, want %d", len(got), len(cycles)-1)
	}
	if got := stream.WatchesAfter(cycles[1]); len(got) != len(cycles)-2 {
		t.Errorf("WatchesAfter(%d) has %d watches, want %d", cycles[1], len(got), len(cycles)-2)
	}
	if got := stream.WatchesAfter(golden.Cycles); len(got) != 0 {
		t.Errorf("WatchesAfter past the last checkpoint has %d watches", len(got))
	}
}

// TestRestoreFromEachCheckpointReplaysGolden is the fast-forward
// guarantee: starting a fresh machine from any recorded checkpoint
// finishes with exactly the golden outcome, cycle count, and output.
func TestRestoreFromEachCheckpointReplaysGolden(t *testing.T) {
	for _, cfg := range machine.Configs() {
		golden := mustGolden(t, cfg)
		stream, _ := Record(machine.New(cfg, testProgram()), 1<<30, Cycles(golden.Cycles, 5))
		for i, sn := range stream.Snaps() {
			m := machine.New(cfg, testProgram())
			m.Restore(sn)
			res := m.Run(1 << 30)
			if res.Outcome != golden.Outcome || res.Cycles != golden.Cycles {
				t.Errorf("%s checkpoint %d (cycle %d): %v after %d cycles, golden %v after %d",
					cfg.Name, i, sn.Cycle, res.Outcome, res.Cycles, golden.Outcome, golden.Cycles)
			}
			if len(res.Output) != len(golden.Output) {
				t.Errorf("%s checkpoint %d: output %v, golden %v", cfg.Name, i, res.Output, golden.Output)
				continue
			}
			for j := range res.Output {
				if res.Output[j] != golden.Output[j] {
					t.Errorf("%s checkpoint %d: output %v, golden %v", cfg.Name, i, res.Output, golden.Output)
					break
				}
			}
		}
	}
}

// TestWatchesDetectGoldenReplay: an undisturbed replay from a
// checkpoint converges at the very next watch — the positive case of
// the early-exit machinery (faults that mask later are a superset).
func TestWatchesDetectGoldenReplay(t *testing.T) {
	cfg := machine.Configs()[0]
	golden := mustGolden(t, cfg)
	stream, _ := Record(machine.New(cfg, testProgram()), 1<<30, Cycles(golden.Cycles, 4))
	snaps := stream.Snaps()

	m := machine.New(cfg, testProgram())
	m.Restore(snaps[0])
	res, stopped := m.RunWatched(1<<30, stream.WatchesAfter(snaps[0].Cycle))
	if !stopped {
		t.Fatal("golden replay never matched a later checkpoint")
	}
	if res.Cycles != snaps[1].Cycle {
		t.Errorf("converged at cycle %d, want the next checkpoint at %d", res.Cycles, snaps[1].Cycle)
	}
}
