package checkpoint

import (
	"testing"

	"sevsim/internal/binio"
	"sevsim/internal/machine"
)

// TestStreamEncodeRoundTrip records a real stream mid-run on both
// machine configurations, serializes it, decodes it, and asserts
// every checkpoint is strictly bit-for-bit Equal — the property the
// prep-artifact cache's correctness rests on.
func TestStreamEncodeRoundTrip(t *testing.T) {
	for _, cfg := range machine.Configs() {
		t.Run(cfg.Name, func(t *testing.T) {
			golden := machine.New(cfg, testProgram()).Run(1 << 30)
			stream, _ := Record(machine.New(cfg, testProgram()), 1<<30, Cycles(golden.Cycles, 5))
			defer stream.Release()

			var w binio.Writer
			stream.EncodeTo(&w)
			blob := w.Bytes()

			r := binio.NewReader(blob)
			got, err := DecodeStream(r, cfg)
			if err != nil {
				t.Fatal(err)
			}
			defer got.Release()
			if r.Len() != 0 {
				t.Fatalf("%d bytes left over after decode", r.Len())
			}
			if got.Len() != stream.Len() {
				t.Fatalf("decoded %d snaps, want %d", got.Len(), stream.Len())
			}
			for i, sn := range stream.Snaps() {
				if !got.Snaps()[i].Equal(sn) {
					t.Fatalf("snap %d not strictly equal after round trip", i)
				}
			}

			// The decoded stream must *work*: restoring its snapshots
			// and running to completion reproduces the golden result,
			// and its rebuilt convergence watches recognize the golden
			// machine at the watch cycle.
			for i, sn := range got.Snaps() {
				m := machine.New(cfg, testProgram())
				m.Restore(sn)
				if !m.Converged(sn) {
					t.Fatalf("snap %d: restored machine does not converge to its own snapshot", i)
				}
				res := m.Run(1 << 30)
				if res.Outcome != golden.Outcome || res.Cycles != golden.Cycles {
					t.Fatalf("snap %d: run from decoded checkpoint ended %v at cycle %d, want %v at %d",
						i, res.Outcome, res.Cycles, golden.Outcome, golden.Cycles)
				}
			}
		})
	}
}

// TestDecodeStreamRejectsDamage truncates and corrupts a serialized
// stream and asserts DecodeStream returns an error instead of a
// usable-looking stream.
func TestDecodeStreamRejectsDamage(t *testing.T) {
	cfg := machine.Configs()[0]
	golden := machine.New(cfg, testProgram()).Run(1 << 30)
	stream, _ := Record(machine.New(cfg, testProgram()), 1<<30, Cycles(golden.Cycles, 3))
	defer stream.Release()
	var w binio.Writer
	stream.EncodeTo(&w)
	blob := w.Bytes()

	for _, n := range []int{0, 1, len(blob) / 2, len(blob) - 1} {
		if _, err := DecodeStream(binio.NewReader(blob[:n]), cfg); err == nil {
			t.Fatalf("truncation to %d bytes decoded without error", n)
		}
	}

	// Decoding against the wrong machine configuration must fail the
	// geometry validation, not fabricate a stream.
	other := machine.Configs()[1]
	if _, err := DecodeStream(binio.NewReader(blob), other); err == nil {
		t.Fatal("decode under mismatched config succeeded")
	}
}
