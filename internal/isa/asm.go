package isa

import (
	"fmt"
	"strconv"
	"strings"
)

// AsmError is an assembler diagnostic with a line number.
type AsmError struct {
	Line int
	Msg  string
}

func (e *AsmError) Error() string { return fmt.Sprintf("asm:%d: %s", e.Line, e.Msg) }

func asmErr(line int, format string, args ...any) error {
	return &AsmError{Line: line, Msg: fmt.Sprintf(format, args...)}
}

// Asm assembles SEV assembly text into instructions. Supported syntax
// (one instruction or label per line; ';' and '//' start comments):
//
//	loop:                    ; label
//	  addi a0, zr, 42        ; I-type ALU
//	  lw   t0, 8(sp)         ; loads/stores use offset(base)
//	  beq  a0, zr, done      ; branches take a label (or numeric offset)
//	  jal  ra, loop          ; jumps take a label
//	  jalr zr, 0(ra)
//	  out  a0
//	  halt
//
// Registers are written by convention name (zr, sp, ra, a0-a3, t0-t2,
// s0-s21) or as rN.
func Asm(src string) ([]Instr, error) {
	type pending struct {
		instrIdx int
		label    string
		line     int
	}
	var (
		instrs  []Instr
		lines   []int // source line of each instruction, for diagnostics
		labels  = map[string]int{}
		fixups  []pending
		lineNum int
	)
	for _, raw := range strings.Split(src, "\n") {
		lineNum++
		line := raw
		if i := strings.IndexAny(line, ";"); i >= 0 {
			line = line[:i]
		}
		if i := strings.Index(line, "//"); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		// Labels (possibly followed by an instruction on the same line).
		for {
			if i := strings.Index(line, ":"); i >= 0 && !strings.ContainsAny(line[:i], " \t(") {
				name := strings.TrimSpace(line[:i])
				if _, dup := labels[name]; dup {
					return nil, asmErr(lineNum, "duplicate label %q", name)
				}
				labels[name] = len(instrs)
				line = strings.TrimSpace(line[i+1:])
				continue
			}
			break
		}
		if line == "" {
			continue
		}
		fields := strings.Fields(strings.ReplaceAll(line, ",", " "))
		mn := strings.ToLower(fields[0])
		ops := fields[1:]
		op, ok := opByName(mn)
		if !ok {
			return nil, asmErr(lineNum, "unknown mnemonic %q", mn)
		}
		in := Instr{Op: op}
		need := func(n int) error {
			if len(ops) != n {
				return asmErr(lineNum, "%s expects %d operands, got %d", mn, n, len(ops))
			}
			return nil
		}
		switch {
		case op == OpOut:
			if err := need(1); err != nil {
				return nil, err
			}
			var err error
			if in.Rs1, err = regOf(ops[0], lineNum); err != nil {
				return nil, err
			}
		case op.Format() == FmtR:
			if err := need(3); err != nil {
				return nil, err
			}
			var err error
			if in.Rd, err = regOf(ops[0], lineNum); err != nil {
				return nil, err
			}
			if in.Rs1, err = regOf(ops[1], lineNum); err != nil {
				return nil, err
			}
			if in.Rs2, err = regOf(ops[2], lineNum); err != nil {
				return nil, err
			}
		case op.IsLoad() || op.IsStore() || op == OpJalr:
			if err := need(2); err != nil {
				return nil, err
			}
			var err error
			if in.Rd, err = regOf(ops[0], lineNum); err != nil {
				return nil, err
			}
			off, base, err := memOperand(ops[1], lineNum)
			if err != nil {
				return nil, err
			}
			in.Rs1 = base
			in.Imm = off
		case op == OpLui:
			if err := need(2); err != nil {
				return nil, err
			}
			var err error
			if in.Rd, err = regOf(ops[0], lineNum); err != nil {
				return nil, err
			}
			if in.Imm, err = immOf(ops[1], lineNum); err != nil {
				return nil, err
			}
		case op.Format() == FmtI:
			if err := need(3); err != nil {
				return nil, err
			}
			var err error
			if in.Rd, err = regOf(ops[0], lineNum); err != nil {
				return nil, err
			}
			if in.Rs1, err = regOf(ops[1], lineNum); err != nil {
				return nil, err
			}
			if in.Imm, err = immOf(ops[2], lineNum); err != nil {
				return nil, err
			}
		case op.IsBranch():
			if err := need(3); err != nil {
				return nil, err
			}
			var err error
			if in.Rs1, err = regOf(ops[0], lineNum); err != nil {
				return nil, err
			}
			if in.Rs2, err = regOf(ops[1], lineNum); err != nil {
				return nil, err
			}
			if imm, err2 := immOf(ops[2], lineNum); err2 == nil {
				in.Imm = imm
			} else {
				fixups = append(fixups, pending{len(instrs), ops[2], lineNum})
			}
		case op == OpJal:
			if err := need(2); err != nil {
				return nil, err
			}
			var err error
			if in.Rd, err = regOf(ops[0], lineNum); err != nil {
				return nil, err
			}
			if imm, err2 := immOf(ops[1], lineNum); err2 == nil {
				in.Imm = imm
			} else {
				fixups = append(fixups, pending{len(instrs), ops[1], lineNum})
			}
		default: // halt, nop
			if err := need(0); err != nil {
				return nil, err
			}
		}
		instrs = append(instrs, in)
		lines = append(lines, lineNum)
	}
	for _, fx := range fixups {
		target, ok := labels[fx.label]
		if !ok {
			return nil, asmErr(fx.line, "undefined label %q", fx.label)
		}
		instrs[fx.instrIdx].Imm = int32(target - fx.instrIdx - 1)
	}
	// Validate immediate encode ranges after fixups, so both numeric
	// offsets and resolved labels are covered: Encode truncates to the
	// format's field width, which would silently retarget an out-of-range
	// branch instead of failing here.
	for i, in := range instrs {
		if err := checkImmRange(in, lines[i]); err != nil {
			return nil, err
		}
	}
	return instrs, nil
}

// immRange returns the encodable immediate range of a format.
func immRange(f Format) (lo, hi int32, ok bool) {
	switch f {
	case FmtI, FmtB:
		return -1 << 15, 1<<15 - 1, true // 16-bit field, sign-extended on decode
	case FmtJ:
		return -1 << 20, 1<<20 - 1, true // 21-bit field, sign-extended on decode
	}
	return 0, 0, false
}

// checkImmRange rejects immediates that Encode would truncate.
func checkImmRange(in Instr, line int) error {
	lo, hi, ok := immRange(in.Op.Format())
	if !ok {
		return nil
	}
	if in.Imm < lo || in.Imm > hi {
		what := "immediate"
		if in.Op.IsBranch() || in.Op == OpJal {
			what = "branch offset"
		}
		return asmErr(line, "%s %s %d out of range [%d, %d]", in.Op.Name(), what, in.Imm, lo, hi)
	}
	return nil
}

func opByName(name string) (Opcode, bool) {
	for op := Opcode(1); op < numOpcodes; op++ {
		if op.Valid() && op.Name() == name {
			return op, true
		}
	}
	return 0, false
}

func regOf(s string, line int) (uint8, error) {
	s = strings.ToLower(strings.TrimSpace(s))
	switch s {
	case "zr", "zero":
		return RegZero, nil
	case "sp":
		return RegSP, nil
	case "ra":
		return RegRA, nil
	}
	if len(s) >= 2 {
		n, err := strconv.Atoi(s[1:])
		if err == nil && n >= 0 {
			switch s[0] {
			case 'a':
				if n <= 3 {
					return uint8(RegA0 + n), nil
				}
			case 't':
				if n <= 2 {
					return uint8(RegT0 + n), nil
				}
			case 's':
				if RegS0+n < 32 {
					return uint8(RegS0 + n), nil
				}
			case 'r':
				if n < 32 {
					return uint8(n), nil
				}
			}
		}
	}
	return 0, asmErr(line, "bad register %q", s)
}

func immOf(s string, line int) (int32, error) {
	v, err := strconv.ParseInt(strings.TrimSpace(s), 0, 32)
	if err != nil {
		return 0, asmErr(line, "bad immediate %q", s)
	}
	return int32(v), nil
}

// memOperand parses "offset(base)".
func memOperand(s string, line int) (int32, uint8, error) {
	open := strings.Index(s, "(")
	if open < 0 || !strings.HasSuffix(s, ")") {
		return 0, 0, asmErr(line, "expected offset(base), got %q", s)
	}
	off := int32(0)
	if open > 0 {
		v, err := immOf(s[:open], line)
		if err != nil {
			return 0, 0, err
		}
		off = v
	}
	base, err := regOf(s[open+1:len(s)-1], line)
	if err != nil {
		return 0, 0, err
	}
	return off, base, nil
}
