package isa

import (
	"strings"
	"testing"
)

func TestAsmBasicProgram(t *testing.T) {
	src := `
; compute 6*7 and emit it
  addi a0, zr, 6
  addi a1, zr, 7
  mul  a2, a0, a1
  out  a2
  halt
`
	ins, err := Asm(src)
	if err != nil {
		t.Fatal(err)
	}
	want := []Instr{
		I(OpAddi, RegA0, RegZero, 6),
		I(OpAddi, RegA1, RegZero, 7),
		R(OpMul, RegA2, RegA0, RegA1),
		Out(RegA2),
		Halt(),
	}
	if len(ins) != len(want) {
		t.Fatalf("got %d instructions", len(ins))
	}
	for i := range want {
		if ins[i] != want[i] {
			t.Errorf("instr %d = %v, want %v", i, ins[i], want[i])
		}
	}
}

func TestAsmLabelsAndBranches(t *testing.T) {
	src := `
  addi a0, zr, 0
  addi a1, zr, 10
loop:
  addi a0, a0, 1
  blt  a0, a1, loop
  jal  zr, done
  nop
done:
  out a0
  halt
`
	ins, err := Asm(src)
	if err != nil {
		t.Fatal(err)
	}
	// blt at index 3, loop label at index 2: offset = 2 - 3 - 1 = -2.
	if ins[3].Op != OpBlt || ins[3].Imm != -2 {
		t.Errorf("branch = %v", ins[3])
	}
	// jal at index 4, done at index 6: offset = 6 - 4 - 1 = 1.
	if ins[4].Op != OpJal || ins[4].Imm != 1 {
		t.Errorf("jump = %v", ins[4])
	}
}

func TestAsmMemoryOperands(t *testing.T) {
	ins, err := Asm(`
  lw   t0, 8(sp)
  sw   t0, -4(a0)
  lbu  t1, (a1)
  jalr zr, 0(ra)
`)
	if err != nil {
		t.Fatal(err)
	}
	if ins[0] != Load(OpLw, RegT0, RegSP, 8) {
		t.Errorf("lw = %v", ins[0])
	}
	if ins[1] != Store(OpSw, RegT0, RegA0, -4) {
		t.Errorf("sw = %v", ins[1])
	}
	if ins[2] != Load(OpLbu, RegT1, RegA1, 0) {
		t.Errorf("lbu = %v", ins[2])
	}
	if ins[3] != Jalr(RegZero, RegRA, 0) {
		t.Errorf("jalr = %v", ins[3])
	}
}

func TestAsmRoundTripThroughDisassembly(t *testing.T) {
	// Assemble, disassemble each instruction, re-assemble: identical.
	src := `
  lui  s0, 16
  ori  s0, s0, 0x1234
  slt  a0, s0, a1
  sltiu a1, a0, 1
  bgeu a0, a1, 2
  sra  a2, a0, a1
  halt
`
	first, err := Asm(src)
	if err != nil {
		t.Fatal(err)
	}
	var relisted []string
	for _, in := range first {
		relisted = append(relisted, in.String())
	}
	second, err := Asm(strings.Join(relisted, "\n"))
	if err != nil {
		t.Fatalf("re-assembly failed: %v\n%s", err, strings.Join(relisted, "\n"))
	}
	for i := range first {
		if first[i] != second[i] {
			t.Errorf("round trip %d: %v vs %v", i, first[i], second[i])
		}
	}
}

func TestAsmErrors(t *testing.T) {
	cases := map[string]string{
		"unknown mnemonic": "frob a0, a1, a2",
		"bad register":     "add a0, q9, a2",
		"operand count":    "add a0, a1",
		"bad immediate":    "addi a0, a1, xyz",
		"undefined label":  "jal ra, nowhere",
		"duplicate label":  "x:\nx:\n  halt",
		"bad mem operand":  "lw a0, 8",
	}
	for name, src := range cases {
		if _, err := Asm(src); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestAsmImmediateRangeErrors(t *testing.T) {
	// Encode truncates immediates to the format's field width; the
	// assembler must reject anything that would not round-trip, with the
	// offending source line in the diagnostic.
	cases := []struct {
		name string
		src  string
		line int
	}{
		{"I-type too large", "nop\naddi a0, zr, 40000", 2},
		{"I-type too negative", "addi a0, zr, -40000", 1},
		{"branch offset too far", "beq a0, a1, 33000", 1},
		{"branch offset too negative", "nop\nnop\nbeq a0, a1, -33000", 3},
		{"jal offset too far", "jal ra, 2000000", 1},
		{"store offset too large", "sw a0, 70000(sp)", 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Asm(tc.src)
			if err == nil {
				t.Fatal("expected range error")
			}
			ae, ok := err.(*AsmError)
			if !ok {
				t.Fatalf("error %v is not an *AsmError", err)
			}
			if ae.Line != tc.line {
				t.Errorf("error on line %d, want %d: %v", ae.Line, tc.line, err)
			}
			if !strings.Contains(ae.Msg, "out of range") {
				t.Errorf("unexpected message: %v", err)
			}
		})
	}
}

func TestAsmImmediateRangeBoundaries(t *testing.T) {
	// The extreme encodable values must still assemble and round-trip
	// through Encode/Decode unchanged.
	ins, err := Asm("addi a0, zr, 32767\naddi a1, zr, -32768")
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range []int32{32767, -32768} {
		if got := Decode(ins[i].Encode()).Imm; got != want {
			t.Errorf("imm %d round-trips to %d, want %d", ins[i].Imm, got, want)
		}
	}
}

func TestAsmBranchFixupRangeChecked(t *testing.T) {
	// A label that resolves to an out-of-range offset must error too,
	// not just numeric offsets. 40,000 nops put the target beyond the
	// 16-bit branch field.
	var sb strings.Builder
	sb.WriteString("beq a0, a1, far\n")
	for i := 0; i < 40_000; i++ {
		sb.WriteString("nop\n")
	}
	sb.WriteString("far:\n  halt\n")
	_, err := Asm(sb.String())
	if err == nil {
		t.Fatal("expected range error for label fixup beyond branch reach")
	}
	ae, ok := err.(*AsmError)
	if !ok || ae.Line != 1 {
		t.Fatalf("want *AsmError on line 1, got %v", err)
	}
}

func TestAsmNumericRegisters(t *testing.T) {
	ins, err := Asm("add r5, r0, r31")
	if err != nil {
		t.Fatal(err)
	}
	if ins[0].Rd != 5 || ins[0].Rs1 != 0 || ins[0].Rs2 != 31 {
		t.Errorf("numeric registers = %v", ins[0])
	}
}
