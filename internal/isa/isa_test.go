package isa

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	cases := []Instr{
		R(OpAdd, 3, 4, 5),
		R(OpSub, 15, 1, 0),
		R(OpMul, 31, 30, 29),
		I(OpAddi, 7, 7, -1),
		I(OpAddi, 7, 7, 32767),
		I(OpAddi, 7, 7, -32768),
		I(OpLui, 9, 0, 4660),
		Load(OpLw, 5, 1, 16),
		Load(OpLd, 5, 1, -8),
		Load(OpLbu, 5, 1, 0),
		Store(OpSw, 4, 1, 12),
		Store(OpSd, 4, 1, -128),
		Branch(OpBeq, 3, 4, -100),
		Branch(OpBgeu, 3, 4, 200),
		Jal(RegRA, 1000),
		Jal(RegZero, -1000),
		Jal(RegRA, (1<<20)-1),
		Jal(RegRA, -(1 << 20)),
		Jalr(RegZero, RegRA, 0),
		Out(6),
		Halt(),
		Nop(),
	}
	for _, in := range cases {
		got := Decode(in.Encode())
		if got != in {
			t.Errorf("round trip %v: got %v", in, got)
		}
	}
}

func TestDecodeIllegalOpcode(t *testing.T) {
	// Opcode 0 and all values >= numOpcodes must decode as invalid.
	if Decode(0).Op.Valid() {
		t.Error("opcode 0 should be invalid")
	}
	for op := uint32(numOpcodes); op < 64; op++ {
		if Decode(op << 26).Op.Valid() {
			t.Errorf("opcode %d should be invalid", op)
		}
	}
}

func TestOpcodeClassPredicates(t *testing.T) {
	loads := []Opcode{OpLw, OpLb, OpLbu, OpLd}
	for _, op := range loads {
		if !op.IsLoad() || op.IsStore() || op.IsBranch() {
			t.Errorf("%s misclassified", op.Name())
		}
	}
	stores := []Opcode{OpSw, OpSb, OpSd}
	for _, op := range stores {
		if !op.IsStore() || op.IsLoad() {
			t.Errorf("%s misclassified", op.Name())
		}
	}
	branches := []Opcode{OpBeq, OpBne, OpBlt, OpBge, OpBltu, OpBgeu}
	for _, op := range branches {
		if !op.IsBranch() {
			t.Errorf("%s not a branch", op.Name())
		}
	}
	if !OpJal.IsJump() || !OpJalr.IsJump() || OpBeq.IsJump() {
		t.Error("jump predicate wrong")
	}
}

func TestMemSize(t *testing.T) {
	sizes := map[Opcode]int{
		OpLb: 1, OpLbu: 1, OpSb: 1,
		OpLw: 4, OpSw: 4,
		OpLd: 8, OpSd: 8,
		OpAdd: 0, OpBeq: 0,
	}
	for op, want := range sizes {
		if got := op.MemSize(); got != want {
			t.Errorf("%s MemSize = %d, want %d", op.Name(), got, want)
		}
	}
}

func TestDestReg(t *testing.T) {
	if got := R(OpAdd, 5, 1, 2).DestReg(); got != 5 {
		t.Errorf("add dest = %d", got)
	}
	if got := R(OpAdd, RegZero, 1, 2).DestReg(); got != 0xff {
		t.Errorf("write to zero reg should have no dest, got %d", got)
	}
	if got := Store(OpSw, 4, 1, 0).DestReg(); got != 0xff {
		t.Errorf("store should have no dest, got %d", got)
	}
	if got := Branch(OpBeq, 1, 2, 0).DestReg(); got != 0xff {
		t.Errorf("branch should have no dest, got %d", got)
	}
	if got := Jal(RegRA, 4).DestReg(); got != RegRA {
		t.Errorf("jal dest = %d", got)
	}
	if got := Out(3).DestReg(); got != 0xff {
		t.Errorf("out should have no dest, got %d", got)
	}
}

func TestSourceRegs(t *testing.T) {
	s1, s2 := R(OpAdd, 5, 1, 2).SourceRegs()
	if s1 != 1 || s2 != 2 {
		t.Errorf("add sources = %d,%d", s1, s2)
	}
	s1, s2 = Store(OpSw, 4, 1, 0).SourceRegs()
	if s1 != 1 || s2 != 4 {
		t.Errorf("store sources = %d,%d (want base=1 value=4)", s1, s2)
	}
	s1, s2 = I(OpLui, 9, 0, 1).SourceRegs()
	if s1 != 0xff || s2 != 0xff {
		t.Errorf("lui sources = %d,%d", s1, s2)
	}
	s1, s2 = Branch(OpBne, 6, 7, 0).SourceRegs()
	if s1 != 6 || s2 != 7 {
		t.Errorf("branch sources = %d,%d", s1, s2)
	}
}

// TestEncodeDecodeProperty verifies decode(encode(x)) == x for random
// well-formed instructions, using testing/quick over a structured
// generator.
func TestEncodeDecodeProperty(t *testing.T) {
	validOps := []Opcode{}
	for op := Opcode(1); op < numOpcodes; op++ {
		if op.Valid() {
			validOps = append(validOps, op)
		}
	}
	gen := func(seed int64) Instr {
		r := rand.New(rand.NewSource(seed))
		op := validOps[r.Intn(len(validOps))]
		in := Instr{Op: op}
		switch op.Format() {
		case FmtR:
			in.Rd = uint8(r.Intn(32))
			in.Rs1 = uint8(r.Intn(32))
			in.Rs2 = uint8(r.Intn(32))
		case FmtI:
			in.Rd = uint8(r.Intn(32))
			in.Rs1 = uint8(r.Intn(32))
			in.Imm = int32(int16(r.Uint32()))
		case FmtB:
			in.Rs1 = uint8(r.Intn(32))
			in.Rs2 = uint8(r.Intn(32))
			in.Imm = int32(int16(r.Uint32()))
		case FmtJ:
			in.Rd = uint8(r.Intn(32))
			in.Imm = int32(r.Intn(1<<21)) - (1 << 20)
		}
		return in
	}
	prop := func(seed int64) bool {
		in := gen(seed)
		return Decode(in.Encode()) == in
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestRegNames(t *testing.T) {
	want := map[uint8]string{
		0: "zr", 1: "sp", 2: "ra", 3: "a0", 6: "a3", 7: "t0", 9: "t2", 10: "s0", 31: "s21",
	}
	for r, name := range want {
		if got := RegName(r); got != name {
			t.Errorf("RegName(%d) = %q, want %q", r, got, name)
		}
	}
}

func TestSavedPredicates(t *testing.T) {
	if CallerSaved(RegS0) || !CalleeSaved(RegS0) {
		t.Error("s0 should be callee-saved")
	}
	if !CallerSaved(RegT0) || CalleeSaved(RegT0) {
		t.Error("t0 should be caller-saved")
	}
	if !CallerSaved(RegA0) {
		t.Error("a0 should be caller-saved")
	}
}

func TestStringRendering(t *testing.T) {
	cases := map[string]Instr{
		"add a0, a1, a2":  R(OpAdd, RegA0, RegA1, RegA2),
		"lw t0, 16(sp)":   Load(OpLw, RegT0, RegSP, 16),
		"sw t0, -4(sp)":   Store(OpSw, RegT0, RegSP, -4),
		"beq a0, zr, 12":  Branch(OpBeq, RegA0, RegZero, 12),
		"jal ra, 100":     Jal(RegRA, 100),
		"jalr zr, 0(ra)":  Jalr(RegZero, RegRA, 0),
		"out a0":          Out(RegA0),
		"halt":            Halt(),
		"addi sp, sp, -8": I(OpAddi, RegSP, RegSP, -8),
	}
	for want, in := range cases {
		if got := in.String(); got != want {
			t.Errorf("String() = %q, want %q", got, want)
		}
	}
}
