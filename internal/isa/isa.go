// Package isa defines the SEV instruction set architecture: a small
// fixed-width RISC ISA used by the sevsim out-of-order processor models.
//
// Instructions are always encoded in a single 32-bit word regardless of
// the machine word width (XLEN), which is 32 for the Cortex-A15-like
// configuration and 64 for the Cortex-A72-like configuration. The ISA is
// deliberately minimal but complete: integer ALU operations, loads and
// stores of bytes/words/doublewords, conditional branches, direct and
// indirect jumps with linking, an output instruction (the program's only
// externally visible side channel, used for silent-data-corruption
// detection), and HALT.
package isa

import "fmt"

// Opcode identifies an instruction. Values fit in the 6-bit opcode field.
type Opcode uint8

// Opcode space. The encoding reserves 6 bits, i.e. values 0..63. Holes in
// the numbering decode as illegal instructions, which matters for fault
// injection: a bit flip inside the opcode field of a fetched instruction
// word frequently produces an illegal opcode and hence a process crash,
// matching the behaviour the paper reports for the L1 instruction cache.
const (
	// R-type: rd = rs1 op rs2.
	OpAdd Opcode = iota + 1
	OpSub
	OpMul
	OpDiv
	OpRem
	OpAnd
	OpOr
	OpXor
	OpSll
	OpSrl
	OpSra
	OpSlt
	OpSltu

	// I-type: rd = rs1 op signext(imm16); the logical operations and
	// sltiu zero-extend the immediate instead (MIPS-style).
	OpAddi
	OpAndi
	OpOri
	OpXori
	OpSlli
	OpSrli
	OpSrai
	OpSlti
	OpSltiu // rd = (rs1 <u zeroext(imm16)) ? 1 : 0
	OpLui   // rd = imm16 << 16 (no source register)

	// Memory. I-type addressing: addr = rs1 + signext(imm16).
	OpLw  // load 32-bit, sign-extended to XLEN
	OpLb  // load byte, sign-extended
	OpLbu // load byte, zero-extended
	OpLd  // load 64-bit (illegal on XLEN=32)
	OpSw  // store low 32 bits of rs2/rd field
	OpSb  // store low byte
	OpSd  // store 64-bit (illegal on XLEN=32)

	// B-type: compare rs1, rs2; target = pc + 4 + signext(off16)*4.
	OpBeq
	OpBne
	OpBlt
	OpBge
	OpBltu
	OpBgeu

	// Jumps.
	OpJal  // J-type: rd = pc+4; pc = pc + 4 + signext(off21)*4
	OpJalr // I-type: rd = pc+4; pc = (rs1 + signext(imm16)) &^ 3

	// Miscellaneous.
	OpOut  // emit XLEN-bit value of rs1 to the program output stream
	OpHalt // stop the machine (normal program termination)
	OpNop  // no operation

	numOpcodes // one past the last valid opcode
)

// Format describes how an instruction's fields are laid out.
type Format uint8

const (
	FmtR Format = iota // rd, rs1, rs2
	FmtI               // rd, rs1, imm16
	FmtB               // rs1, rs2, off16
	FmtJ               // rd, off21
	FmtN               // no operands (halt, nop)
)

// opInfo is the static decode table.
type opInfo struct {
	name   string
	format Format
	valid  bool
}

var opTable = [64]opInfo{
	OpAdd:   {"add", FmtR, true},
	OpSub:   {"sub", FmtR, true},
	OpMul:   {"mul", FmtR, true},
	OpDiv:   {"div", FmtR, true},
	OpRem:   {"rem", FmtR, true},
	OpAnd:   {"and", FmtR, true},
	OpOr:    {"or", FmtR, true},
	OpXor:   {"xor", FmtR, true},
	OpSll:   {"sll", FmtR, true},
	OpSrl:   {"srl", FmtR, true},
	OpSra:   {"sra", FmtR, true},
	OpSlt:   {"slt", FmtR, true},
	OpSltu:  {"sltu", FmtR, true},
	OpAddi:  {"addi", FmtI, true},
	OpAndi:  {"andi", FmtI, true},
	OpOri:   {"ori", FmtI, true},
	OpXori:  {"xori", FmtI, true},
	OpSlli:  {"slli", FmtI, true},
	OpSrli:  {"srli", FmtI, true},
	OpSrai:  {"srai", FmtI, true},
	OpSlti:  {"slti", FmtI, true},
	OpSltiu: {"sltiu", FmtI, true},
	OpLui:   {"lui", FmtI, true},
	OpLw:    {"lw", FmtI, true},
	OpLb:    {"lb", FmtI, true},
	OpLbu:   {"lbu", FmtI, true},
	OpLd:    {"ld", FmtI, true},
	OpSw:    {"sw", FmtI, true},
	OpSb:    {"sb", FmtI, true},
	OpSd:    {"sd", FmtI, true},
	OpBeq:   {"beq", FmtB, true},
	OpBne:   {"bne", FmtB, true},
	OpBlt:   {"blt", FmtB, true},
	OpBge:   {"bge", FmtB, true},
	OpBltu:  {"bltu", FmtB, true},
	OpBgeu:  {"bgeu", FmtB, true},
	OpJal:   {"jal", FmtJ, true},
	OpJalr:  {"jalr", FmtI, true},
	OpOut:   {"out", FmtI, true},
	OpHalt:  {"halt", FmtN, true},
	OpNop:   {"nop", FmtN, true},
}

// Name returns the assembly mnemonic for the opcode.
func (op Opcode) Name() string {
	if int(op) < len(opTable) && opTable[op].valid {
		return opTable[op].name
	}
	return fmt.Sprintf("illegal(%d)", op)
}

// Valid reports whether op decodes to a defined instruction.
func (op Opcode) Valid() bool {
	return int(op) < len(opTable) && opTable[op].valid
}

// Format returns the encoding format for the opcode.
func (op Opcode) Format() Format {
	if op.Valid() {
		return opTable[op].format
	}
	return FmtN
}

// IsBranch reports whether op is a conditional branch.
func (op Opcode) IsBranch() bool { return op >= OpBeq && op <= OpBgeu }

// IsJump reports whether op is an unconditional control transfer.
func (op Opcode) IsJump() bool { return op == OpJal || op == OpJalr }

// IsLoad reports whether op reads data memory.
func (op Opcode) IsLoad() bool {
	return op == OpLw || op == OpLb || op == OpLbu || op == OpLd
}

// IsStore reports whether op writes data memory.
func (op Opcode) IsStore() bool { return op == OpSw || op == OpSb || op == OpSd }

// MemSize returns the access width in bytes for memory opcodes (0 otherwise).
func (op Opcode) MemSize() int {
	switch op {
	case OpLb, OpLbu, OpSb:
		return 1
	case OpLw, OpSw:
		return 4
	case OpLd, OpSd:
		return 8
	}
	return 0
}

// Instr is a decoded instruction.
type Instr struct {
	Op  Opcode
	Rd  uint8 // destination register (R/I/J); also the stored register for stores
	Rs1 uint8
	Rs2 uint8
	Imm int32 // sign-extended immediate (I: 16-bit; B: 16-bit word offset; J: 21-bit word offset)
}

// Encoding layout (all formats share the opcode in bits [31:26]):
//
//	R: [31:26]=op [25:21]=rd  [20:16]=rs1 [15:11]=rs2 [10:0]=0
//	I: [31:26]=op [25:21]=rd  [20:16]=rs1 [15:0]=imm16
//	B: [31:26]=op [25:21]=rs1 [20:16]=rs2 [15:0]=off16
//	J: [31:26]=op [25:21]=rd  [20:0]=off21
//	N: [31:26]=op, rest zero
//
// Stores reuse the rd field for the register whose value is stored,
// keeping every format's register fields in fixed positions so decode is
// a pure bit slice.

// Encode packs the instruction into its 32-bit machine word.
func (in Instr) Encode() uint32 {
	w := uint32(in.Op&0x3f) << 26
	switch in.Op.Format() {
	case FmtR:
		w |= uint32(in.Rd&0x1f) << 21
		w |= uint32(in.Rs1&0x1f) << 16
		w |= uint32(in.Rs2&0x1f) << 11
	case FmtI:
		w |= uint32(in.Rd&0x1f) << 21
		w |= uint32(in.Rs1&0x1f) << 16
		w |= uint32(uint16(in.Imm))
	case FmtB:
		w |= uint32(in.Rs1&0x1f) << 21
		w |= uint32(in.Rs2&0x1f) << 16
		w |= uint32(uint16(in.Imm))
	case FmtJ:
		w |= uint32(in.Rd&0x1f) << 21
		w |= uint32(in.Imm) & 0x1fffff
	case FmtN:
		// opcode only
	}
	return w
}

// Decode unpacks a 32-bit machine word. Illegal opcodes are returned with
// Op set to the raw (invalid) opcode value; callers check Op.Valid().
func Decode(w uint32) Instr {
	op := Opcode(w >> 26)
	in := Instr{Op: op}
	switch op.Format() {
	case FmtR:
		in.Rd = uint8(w>>21) & 0x1f
		in.Rs1 = uint8(w>>16) & 0x1f
		in.Rs2 = uint8(w>>11) & 0x1f
	case FmtI:
		in.Rd = uint8(w>>21) & 0x1f
		in.Rs1 = uint8(w>>16) & 0x1f
		in.Imm = int32(int16(uint16(w)))
	case FmtB:
		in.Rs1 = uint8(w>>21) & 0x1f
		in.Rs2 = uint8(w>>16) & 0x1f
		in.Imm = int32(int16(uint16(w)))
	case FmtJ:
		in.Rd = uint8(w>>21) & 0x1f
		imm := int32(w & 0x1fffff)
		if imm&0x100000 != 0 { // sign-extend 21-bit field
			imm |= ^int32(0x1fffff)
		}
		in.Imm = imm
	}
	return in
}

// SourceRegs returns the architectural registers the instruction reads.
// The second return is 0xff when the instruction has fewer than one/two
// register sources.
func (in Instr) SourceRegs() (uint8, uint8) {
	const none = 0xff
	switch in.Op.Format() {
	case FmtR:
		return in.Rs1, in.Rs2
	case FmtI:
		if in.Op == OpLui {
			return none, none
		}
		if in.Op.IsStore() {
			return in.Rs1, in.Rd // base, stored value
		}
		if in.Op == OpOut {
			return in.Rs1, none
		}
		return in.Rs1, none
	case FmtB:
		return in.Rs1, in.Rs2
	}
	return none, none
}

// DestReg returns the architectural destination register, or 0xff if the
// instruction writes no register. Writes to register 0 (the hard-wired
// zero register) are treated as having no destination.
func (in Instr) DestReg() uint8 {
	const none = 0xff
	var rd uint8
	switch {
	case in.Op.Format() == FmtR, in.Op == OpJal, in.Op == OpJalr:
		rd = in.Rd
	case in.Op.Format() == FmtI && !in.Op.IsStore() && in.Op != OpOut:
		rd = in.Rd
	default:
		return none
	}
	if rd == RegZero {
		return none
	}
	return rd
}

func (in Instr) String() string {
	switch in.Op.Format() {
	case FmtR:
		return fmt.Sprintf("%s %s, %s, %s", in.Op.Name(), RegName(in.Rd), RegName(in.Rs1), RegName(in.Rs2))
	case FmtI:
		switch {
		case in.Op.IsLoad():
			return fmt.Sprintf("%s %s, %d(%s)", in.Op.Name(), RegName(in.Rd), in.Imm, RegName(in.Rs1))
		case in.Op.IsStore():
			return fmt.Sprintf("%s %s, %d(%s)", in.Op.Name(), RegName(in.Rd), in.Imm, RegName(in.Rs1))
		case in.Op == OpLui:
			return fmt.Sprintf("lui %s, %d", RegName(in.Rd), in.Imm)
		case in.Op == OpOut:
			return fmt.Sprintf("out %s", RegName(in.Rs1))
		case in.Op == OpJalr:
			return fmt.Sprintf("jalr %s, %d(%s)", RegName(in.Rd), in.Imm, RegName(in.Rs1))
		default:
			return fmt.Sprintf("%s %s, %s, %d", in.Op.Name(), RegName(in.Rd), RegName(in.Rs1), in.Imm)
		}
	case FmtB:
		return fmt.Sprintf("%s %s, %s, %d", in.Op.Name(), RegName(in.Rs1), RegName(in.Rs2), in.Imm)
	case FmtJ:
		return fmt.Sprintf("jal %s, %d", RegName(in.Rd), in.Imm)
	}
	return in.Op.Name()
}
