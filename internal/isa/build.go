package isa

// Convenience constructors used by the code generator and by hand-written
// test programs. Each returns a fully populated Instr ready to Encode.

// R builds an R-type instruction rd = rs1 op rs2.
func R(op Opcode, rd, rs1, rs2 uint8) Instr { return Instr{Op: op, Rd: rd, Rs1: rs1, Rs2: rs2} }

// I builds an I-type ALU instruction rd = rs1 op imm.
func I(op Opcode, rd, rs1 uint8, imm int32) Instr {
	return Instr{Op: op, Rd: rd, Rs1: rs1, Imm: imm}
}

// Load builds a load rd = mem[rs1+imm].
func Load(op Opcode, rd, base uint8, imm int32) Instr {
	return Instr{Op: op, Rd: rd, Rs1: base, Imm: imm}
}

// Store builds a store mem[base+imm] = src.
func Store(op Opcode, src, base uint8, imm int32) Instr {
	return Instr{Op: op, Rd: src, Rs1: base, Imm: imm}
}

// Branch builds a conditional branch comparing rs1 and rs2 with a word
// offset relative to the next instruction.
func Branch(op Opcode, rs1, rs2 uint8, wordOff int32) Instr {
	return Instr{Op: op, Rs1: rs1, Rs2: rs2, Imm: wordOff}
}

// Jal builds a direct jump-and-link with a word offset relative to the
// next instruction.
func Jal(rd uint8, wordOff int32) Instr { return Instr{Op: OpJal, Rd: rd, Imm: wordOff} }

// Jalr builds an indirect jump-and-link to rs1+imm.
func Jalr(rd, rs1 uint8, imm int32) Instr { return Instr{Op: OpJalr, Rd: rd, Rs1: rs1, Imm: imm} }

// Out builds the output instruction for rs1.
func Out(rs1 uint8) Instr { return Instr{Op: OpOut, Rs1: rs1} }

// Halt builds the halt instruction.
func Halt() Instr { return Instr{Op: OpHalt} }

// Nop builds a no-op.
func Nop() Instr { return Instr{Op: OpNop} }

// Assemble encodes a sequence of instructions into machine words.
func Assemble(prog []Instr) []uint32 {
	words := make([]uint32, len(prog))
	for i, in := range prog {
		words[i] = in.Encode()
	}
	return words
}
