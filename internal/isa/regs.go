package isa

import "fmt"

// Architectural register convention. The register file holds up to 32
// registers; a machine configuration exposes the first NumArchRegs of
// them (16 for the 32-bit A15-like core, 32 for the 64-bit A72-like
// core). The convention is shared across both variants so the compiler
// backend only varies in how many scratch registers it may allocate.
const (
	RegZero = 0 // hard-wired zero
	RegSP   = 1 // stack pointer
	RegRA   = 2 // return address (link register)
	RegA0   = 3 // first argument / return value
	RegA1   = 4
	RegA2   = 5
	RegA3   = 6
	// Registers 7..9 are caller-saved scratch (t0..t2); registers 10 and
	// up are callee-saved (s0..). On the 16-register variant that yields
	// 6 callee-saved registers, on the 32-register variant 22.
	RegT0 = 7
	RegT1 = 8
	RegT2 = 9
	RegS0 = 10
)

// NumArgRegs is the number of arguments passed in registers; further
// arguments travel on the stack.
const NumArgRegs = 4

// RegName returns the conventional assembly name for a register.
func RegName(r uint8) string {
	switch r {
	case RegZero:
		return "zr"
	case RegSP:
		return "sp"
	case RegRA:
		return "ra"
	case RegA0, RegA1, RegA2, RegA3:
		return fmt.Sprintf("a%d", r-RegA0)
	case RegT0, RegT1, RegT2:
		return fmt.Sprintf("t%d", r-RegT0)
	default:
		return fmt.Sprintf("s%d", r-RegS0)
	}
}

// CallerSaved reports whether register r is caller-saved (clobbered by a
// call) under the SEV calling convention.
func CallerSaved(r uint8) bool { return r >= RegRA && r <= RegT2 }

// CalleeSaved reports whether register r must be preserved by a callee.
func CalleeSaved(r uint8) bool { return r >= RegS0 }
