// Package dispatch turns the study engine into a fault-tolerant
// distributed service: a Coordinator decomposes a study spec into
// cell-granular work items (core.CellRef), leases them to worker
// processes over HTTP/JSON with per-lease deadlines and heartbeats,
// reassigns the cells of expired or failed leases, deduplicates
// double-completions by cell key, quarantines persistently failing
// cells, and merges the outcomes — via core.Assembler — into a
// study.json byte-identical to a clean single-process run, regardless
// of worker count, death schedule, or completion order.
//
// Durability mirrors the single-process engine's: every accepted
// outcome is appended to the coordinator's journal (internal/journal)
// before it is acknowledged, so a coordinator killed at any point
// resumes with no completed cell lost; leases are deliberately not
// journaled — they are soft state that expires and reassigns itself.
// Workers journal their own partial progress per study, so a worker
// killed mid-lease replays its completed cells on reattach instead of
// recomputing them.
//
// The failure matrix, the lease state machine, and the merge
// determinism argument are documented in DESIGN.md §15.
package dispatch

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"time"

	"sevsim/internal/artcache"
	"sevsim/internal/compiler"
	"sevsim/internal/core"
	"sevsim/internal/faultinj"
	"sevsim/internal/workloads"
)

// StudySpec is the wire form of a study: everything result-affecting
// in a core.Spec, expressed as names so it serializes. Execution knobs
// (parallelism, journaling paths, watchdogs) stay host-local — the
// coordinator and each worker choose their own.
type StudySpec struct {
	Machines []string // machine config names (core.MachineConfig)
	Benches  []string // benchmark names (workloads.ByName)
	Sizes    []int    // per-bench sizes, parallel to Benches (nil: defaults)
	Levels   []string // optimization levels ("O0".."O3")
	Targets  []string // structure fields (faultinj.TargetByName); nil: all
	Faults   int
	Seed     int64
	Prune    bool

	// KeepGoing and Retries shape worker-side failure handling exactly
	// as in a local run; they are carried so quarantine records merge
	// byte-identically to a local keep-going run's.
	KeepGoing bool
	Retries   int

	// CacheMaxMB advises workers how much disk their prep-artifact
	// cache may use for this study (0: no advice). It is pure execution
	// policy — a cache hit decodes to state bit-identical to a fresh
	// prep — so ID() excludes it: the same study submitted with a
	// different cache bound is the same study.
	CacheMaxMB int64 `json:",omitempty"`
}

// Normalize fills defaults (benchmark sizes, the full target set) and
// validates every name resolves. The normalized spec is what the
// study ID hashes, so a spec submitted with explicit defaults and one
// submitted with them elided are the same study.
func (w StudySpec) Normalize() (StudySpec, error) {
	if len(w.Machines) == 0 || len(w.Benches) == 0 || len(w.Levels) == 0 {
		return w, fmt.Errorf("dispatch: spec needs at least one machine, benchmark, and level")
	}
	if w.Faults <= 0 {
		return w, fmt.Errorf("dispatch: spec needs a positive fault count")
	}
	if len(w.Targets) == 0 {
		for _, t := range faultinj.Targets() {
			w.Targets = append(w.Targets, t.Name())
		}
	}
	if w.Sizes == nil {
		w.Sizes = make([]int, len(w.Benches))
		for i, name := range w.Benches {
			b, err := workloads.ByName(name)
			if err != nil {
				return w, fmt.Errorf("dispatch: %w", err)
			}
			w.Sizes[i] = b.DefaultSize
		}
	}
	if len(w.Sizes) != len(w.Benches) {
		return w, fmt.Errorf("dispatch: %d sizes for %d benchmarks", len(w.Sizes), len(w.Benches))
	}
	if _, err := w.Spec(); err != nil {
		return w, err
	}
	return w, nil
}

// ID derives the study's content-addressed identity from the
// normalized spec, so resubmitting the same study is idempotent.
func (w StudySpec) ID() string {
	// Cache policy shapes worker disk use, never results; zeroing it on
	// this value-receiver copy keeps it out of the identity.
	w.CacheMaxMB = 0
	data, err := json.Marshal(w)
	if err != nil {
		// Marshalling a struct of strings and ints cannot fail.
		panic(fmt.Sprintf("dispatch: marshal spec: %v", err))
	}
	sum := sha256.Sum256(data)
	return "st-" + hex.EncodeToString(sum[:8])
}

// Spec resolves the wire form back to an executable core.Spec. The
// resolution is deterministic, so every worker and the coordinator
// agree on cell enumeration, seeds, and the journal fingerprint.
func (w StudySpec) Spec() (core.Spec, error) {
	s := core.Spec{
		Faults:    w.Faults,
		Seed:      w.Seed,
		Prune:     w.Prune,
		KeepGoing: w.KeepGoing,
		Retries:   w.Retries,
	}
	for _, name := range w.Machines {
		cfg, ok := core.MachineConfig(name)
		if !ok {
			return core.Spec{}, fmt.Errorf("dispatch: unknown machine config %q", name)
		}
		s.Machines = append(s.Machines, cfg)
	}
	for _, name := range w.Benches {
		b, err := workloads.ByName(name)
		if err != nil {
			return core.Spec{}, fmt.Errorf("dispatch: %w", err)
		}
		s.Benchmarks = append(s.Benchmarks, b)
	}
	for _, name := range w.Levels {
		level, err := optLevel(name)
		if err != nil {
			return core.Spec{}, err
		}
		s.Levels = append(s.Levels, level)
	}
	for _, name := range w.Targets {
		t, ok := faultinj.TargetByName(name)
		if !ok {
			return core.Spec{}, fmt.Errorf("dispatch: unknown injection target %q", name)
		}
		s.Targets = append(s.Targets, t)
	}
	if len(w.Sizes) == len(w.Benches) {
		sizes := make(map[string]int, len(w.Benches))
		for i, name := range w.Benches {
			sizes[name] = w.Sizes[i]
		}
		s.Size = func(b workloads.Benchmark) int {
			if n, ok := sizes[b.Name]; ok && n > 0 {
				return n
			}
			return b.DefaultSize
		}
	}
	return s, nil
}

// WireSpec renders a core.Spec as its wire form (sizes resolved), for
// clients that build specs programmatically.
func WireSpec(s core.Spec) StudySpec {
	w := StudySpec{
		Faults:    s.Faults,
		Seed:      s.Seed,
		Prune:     s.Prune,
		KeepGoing: s.KeepGoing,
		Retries:   s.Retries,
	}
	for _, cfg := range s.Machines {
		w.Machines = append(w.Machines, cfg.Name)
	}
	for _, b := range s.Benchmarks {
		w.Benches = append(w.Benches, b.Name)
		size := b.DefaultSize
		if s.Size != nil {
			size = s.Size(b)
		}
		w.Sizes = append(w.Sizes, size)
	}
	for _, l := range s.Levels {
		w.Levels = append(w.Levels, l.String())
	}
	for _, t := range s.Targets {
		w.Targets = append(w.Targets, t.Name())
	}
	return w
}

// optLevel parses an optimization-level name ("O2", "o2", "2").
func optLevel(name string) (compiler.OptLevel, error) {
	for _, l := range compiler.Levels {
		if name == l.String() || name == l.String()[1:] || name == "o"+l.String()[1:] {
			return l, nil
		}
	}
	return 0, fmt.Errorf("dispatch: unknown optimization level %q (use O0..O3)", name)
}

// --- protocol messages -------------------------------------------------------

// SubmitResponse acknowledges a study submission.
type SubmitResponse struct {
	ID       string
	Cells    int  // total campaign cells in the study
	Existing bool // the study was already submitted (idempotent resubmit)
}

// LeaseRequest asks for work on behalf of a named worker.
type LeaseRequest struct {
	Worker string
	Max    int // max cells to lease (<= 0: coordinator default)
}

// LeaseGrant hands a batch of cells to a worker. The worker must
// complete (or fail) them before Deadline, extending it with
// heartbeats; an expired lease's unfinished cells are reassigned.
type LeaseGrant struct {
	LeaseID string
	StudyID string
	Spec    StudySpec
	Cells   []core.CellRef
	TTL     time.Duration // heartbeat interval guidance: TTL/3
}

// HeartbeatRequest extends a lease's deadline.
type HeartbeatRequest struct {
	Worker  string
	LeaseID string
}

// HeartbeatResponse tells the worker where its lease stands. Known is
// false after a coordinator restart (leases are soft state): the
// worker keeps going — its completions are accepted by cell key — but
// must expect cells to have been re-leased. Cancel is a definitive
// "stop working on this lease" (study done or cancelled).
type HeartbeatResponse struct {
	Known  bool
	Cancel bool
}

// CompleteRequest reports a lease's outcomes. Outcomes are merged
// idempotently by cell key; reporting after lease expiry is fine (the
// work is done — the merge dedups if the cell was also recomputed).
type CompleteRequest struct {
	Worker   string
	LeaseID  string
	StudyID  string
	Outcomes []core.CellOutcome

	// Cache is the worker's prep-artifact cache delta over this lease
	// (zero when the worker runs uncached), so the coordinator can
	// aggregate cache effectiveness per worker and per study.
	Cache artcache.Stats
}

// CompleteResponse reports how many outcomes were newly merged and how
// many were duplicates of already-complete cells.
type CompleteResponse struct {
	Accepted   int
	Duplicates int
}

// FailRequest reports that a lease's cells could not be computed.
type FailRequest struct {
	Worker  string
	LeaseID string
	StudyID string
	Cells   []core.CellRef
	Err     string
}

// StatusEvent is one line of a study's progress stream and the
// response body of a status snapshot: the lease-table counters plus
// the study's lifecycle state.
type StatusEvent struct {
	Study       string
	State       string // "running", "complete", "failed"
	Done        int
	Total       int
	Leased      int
	Quarantined int
	Workers     int    // workers currently holding leases of this study
	Cell        string `json:",omitempty"` // last merged cell, on change events
	Worker      string `json:",omitempty"` // who completed it

	// Cache aggregates the prep-artifact cache deltas reported with
	// this study's completions; CacheByWorker splits the same counters
	// by worker name. Both stay zero/absent when every worker runs
	// uncached.
	Cache         artcache.Stats
	CacheByWorker map[string]artcache.Stats `json:",omitempty"`

	// PrunedDUE counts injections this study's completions proved
	// crash-certain statically instead of simulating (the DUE pruner
	// tier); PrunedDUEByWorker splits the same counter by worker name.
	// Both stay zero/absent when no worker pruned a DUE.
	PrunedDUE         int            `json:",omitempty"`
	PrunedDUEByWorker map[string]int `json:",omitempty"`
}
