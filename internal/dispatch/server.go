package dispatch

import (
	"encoding/json"
	"fmt"
	"net/http"
	"time"
)

// NewServer wraps a Coordinator in its HTTP/JSON API. The returned
// server has ReadHeaderTimeout set (a coordinator must not be
// wedgeable by a stalled client handshake) and is meant to be started
// with ListenAndServe by the caller and stopped with Shutdown after
// Coordinator.Drain.
//
// Study API:
//
//	POST /studies            StudySpec -> SubmitResponse
//	GET  /studies/{id}       streaming progress, one StatusEvent JSON line
//	                         per change; the stream ends when the study
//	                         completes
//	GET  /studies/{id}/result the completed study.json bytes (409 while
//	                         the study is still running)
//
// Worker API:
//
//	POST /v1/lease           LeaseRequest -> LeaseGrant (204 when no work)
//	POST /v1/heartbeat       HeartbeatRequest -> HeartbeatResponse
//	POST /v1/complete        CompleteRequest -> CompleteResponse
//	POST /v1/fail            FailRequest -> 204
//	GET  /healthz            200 ok
func NewServer(c *Coordinator, addr string) *http.Server {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /studies", func(w http.ResponseWriter, r *http.Request) {
		var spec StudySpec
		if !decode(w, r, &spec) {
			return
		}
		resp, err := c.Submit(spec)
		if err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		encode(w, resp)
	})
	mux.HandleFunc("GET /studies/{id}", func(w http.ResponseWriter, r *http.Request) {
		serveProgress(c, w, r)
	})
	mux.HandleFunc("GET /studies/{id}/result", func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		data, ok := c.Result(id)
		if !ok {
			if _, known := c.Status(id); !known {
				httpError(w, http.StatusNotFound, fmt.Errorf("unknown study %s", id))
				return
			}
			httpError(w, http.StatusConflict, fmt.Errorf("study %s is still running", id))
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(data)
	})
	mux.HandleFunc("POST /v1/lease", func(w http.ResponseWriter, r *http.Request) {
		var req LeaseRequest
		if !decode(w, r, &req) {
			return
		}
		grant, err := c.Lease(req)
		if err != nil {
			httpError(w, http.StatusBadRequest, err)
			return
		}
		if grant == nil {
			w.WriteHeader(http.StatusNoContent)
			return
		}
		encode(w, grant)
	})
	mux.HandleFunc("POST /v1/heartbeat", func(w http.ResponseWriter, r *http.Request) {
		var req HeartbeatRequest
		if !decode(w, r, &req) {
			return
		}
		encode(w, c.Heartbeat(req))
	})
	mux.HandleFunc("POST /v1/complete", func(w http.ResponseWriter, r *http.Request) {
		var req CompleteRequest
		if !decode(w, r, &req) {
			return
		}
		resp, err := c.Complete(req)
		if err != nil {
			httpError(w, http.StatusInternalServerError, err)
			return
		}
		encode(w, resp)
	})
	mux.HandleFunc("POST /v1/fail", func(w http.ResponseWriter, r *http.Request) {
		var req FailRequest
		if !decode(w, r, &req) {
			return
		}
		if err := c.Fail(req); err != nil {
			httpError(w, http.StatusInternalServerError, err)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	return &http.Server{
		Addr:              addr,
		Handler:           mux,
		ReadHeaderTimeout: 10 * time.Second,
	}
}

// serveProgress streams a study's status as JSON lines: a snapshot
// first, then one line per change, ending when the study completes or
// the client goes away.
func serveProgress(c *Coordinator, w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	ev, ok := c.Status(id)
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Errorf("unknown study %s", id))
		return
	}
	events, cancel, err := c.Subscribe(id)
	if err != nil {
		httpError(w, http.StatusNotFound, err)
		return
	}
	defer cancel()

	w.Header().Set("Content-Type", "application/x-ndjson")
	enc := json.NewEncoder(w)
	flush := func() {
		if f, ok := w.(http.Flusher); ok {
			f.Flush()
		}
	}
	enc.Encode(ev)
	flush()
	for {
		select {
		case <-r.Context().Done():
			return
		case ev, open := <-events:
			if !open {
				// Terminal snapshot: the subscriber channel closed on
				// completion, possibly dropping intermediate events.
				if final, ok := c.Status(id); ok {
					enc.Encode(final)
					flush()
				}
				return
			}
			enc.Encode(ev)
			flush()
		}
	}
}

func decode(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 64<<20))
	if err := dec.Decode(v); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return false
	}
	return true
}

func encode(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, code int, err error) {
	http.Error(w, err.Error(), code)
}
