// Package backoff is the shared retry-delay policy for everything in
// the harness that re-attempts failable work: the study scheduler's
// preparation retries (core.Spec.Retries), the distributed worker's
// lease acquisition and result reporting, and the coordinator's drain
// wait. One policy in one place means a transiently failing compile, a
// coordinator restart, and a flaky network all back off the same way —
// exponentially, capped, and with jitter so a fleet of workers does not
// retry in lockstep.
//
// Delays are deterministic given a Source seed, so retry schedules in
// tests and in the deterministic study engine are reproducible; the
// jitter sample is the only input besides the attempt number.
//
// Waiting is always context-aware: there is deliberately no time.Sleep
// in this package (or anywhere under internal/dispatch — cmd/sevlint
// enforces it), because a sleeping goroutine that cannot hear
// cancellation holds up graceful drain.
package backoff

import (
	"context"
	"math/rand"
	"sync"
	"time"
)

// Policy shapes an exponential backoff schedule: attempt n (0-based)
// waits Base*Factor^n, capped at Max, with the top Jitter fraction of
// the delay randomized so independent retriers spread out.
type Policy struct {
	// Base is the first delay (<= 0: the Default policy's Base).
	Base time.Duration
	// Max caps the grown delay (<= 0: the Default policy's Max).
	Max time.Duration
	// Factor is the per-attempt growth multiplier (< 1: 2).
	Factor float64
	// Jitter in [0, 1] is the fraction of each delay that is
	// randomized: the actual wait is uniform in
	// [delay*(1-Jitter), delay). Zero disables jitter.
	Jitter float64
}

// Default is the policy used when a zero Policy is given: 100ms
// doubling to a 30s ceiling with half the delay jittered.
var Default = Policy{
	Base:   100 * time.Millisecond,
	Max:    30 * time.Second,
	Factor: 2,
	Jitter: 0.5,
}

// norm fills zero fields from Default. A wholly zero Policy is the
// Default itself, jitter included; a partially specified one keeps
// Jitter = 0 meaning "no jitter".
func (p Policy) norm() Policy {
	if p == (Policy{}) {
		return Default
	}
	if p.Base <= 0 {
		p.Base = Default.Base
	}
	if p.Max <= 0 {
		p.Max = Default.Max
	}
	if p.Factor < 1 {
		p.Factor = Default.Factor
	}
	if p.Jitter < 0 {
		p.Jitter = 0
	}
	if p.Jitter > 1 {
		p.Jitter = 1
	}
	return p
}

// Delay returns the wait before retry attempt (0-based). u in [0, 1)
// supplies the jitter sample; pass 0 for the deterministic minimum.
func (p Policy) Delay(attempt int, u float64) time.Duration {
	p = p.norm()
	d := float64(p.Base)
	for i := 0; i < attempt; i++ {
		d *= p.Factor
		if d >= float64(p.Max) {
			d = float64(p.Max)
			break
		}
	}
	if d > float64(p.Max) {
		d = float64(p.Max)
	}
	if p.Jitter > 0 {
		d = d*(1-p.Jitter) + u*d*p.Jitter
	}
	return time.Duration(d)
}

// Sleep waits the attempt's (jittered) delay or until ctx is done,
// returning the context error on early wakeup. src supplies the jitter
// sample; nil uses no jitter.
func (p Policy) Sleep(ctx context.Context, attempt int, src *Source) error {
	u := 0.0
	if src != nil {
		u = src.Float64()
	}
	return Wait(ctx, p.Delay(attempt, u))
}

// Wait blocks for d or until ctx is done, whichever comes first. It is
// the context-aware replacement for time.Sleep in retry loops: a
// cancelled context wakes the waiter immediately and its error is
// returned.
func Wait(ctx context.Context, d time.Duration) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if d <= 0 {
		return nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Source is a seeded, concurrency-safe jitter sampler. Retriers that
// want reproducible schedules derive the seed from their identity (the
// study engine uses its per-cell seed derivation); retriers that only
// want decorrelation seed from anything distinct.
type Source struct {
	mu  sync.Mutex
	rng *rand.Rand
}

// NewSource returns a jitter source seeded with seed.
func NewSource(seed int64) *Source {
	return &Source{rng: rand.New(rand.NewSource(seed))}
}

// Float64 returns the next jitter sample in [0, 1).
func (s *Source) Float64() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.rng.Float64()
}
