package backoff

import (
	"context"
	"testing"
	"time"
)

func TestDelayGrowsExponentiallyAndCaps(t *testing.T) {
	p := Policy{Base: 100 * time.Millisecond, Max: 1 * time.Second, Factor: 2, Jitter: 0}
	want := []time.Duration{
		100 * time.Millisecond,
		200 * time.Millisecond,
		400 * time.Millisecond,
		800 * time.Millisecond,
		1 * time.Second,
		1 * time.Second, // capped
	}
	for attempt, w := range want {
		if got := p.Delay(attempt, 0); got != w {
			t.Errorf("attempt %d: delay %v, want %v", attempt, got, w)
		}
	}
}

func TestDelayJitterStaysInBand(t *testing.T) {
	p := Policy{Base: 1 * time.Second, Max: time.Minute, Factor: 2, Jitter: 0.5}
	src := NewSource(42)
	for i := 0; i < 200; i++ {
		d := p.Delay(0, src.Float64())
		if d < 500*time.Millisecond || d >= 1*time.Second {
			t.Fatalf("jittered delay %v outside [500ms, 1s)", d)
		}
	}
	// The band is actually sampled, not pinned to one edge.
	lo := p.Delay(0, 0)
	hi := p.Delay(0, 0.999)
	if lo == hi {
		t.Fatalf("jitter has no effect: %v == %v", lo, hi)
	}
}

func TestDelayIsDeterministicPerSeed(t *testing.T) {
	p := Default
	a, b := NewSource(7), NewSource(7)
	for i := 0; i < 32; i++ {
		if da, db := p.Delay(i%5, a.Float64()), p.Delay(i%5, b.Float64()); da != db {
			t.Fatalf("same seed diverged at step %d: %v vs %v", i, da, db)
		}
	}
}

func TestZeroPolicyUsesDefaults(t *testing.T) {
	var p Policy
	if got := p.Delay(0, 0); got != Default.Base/2 {
		// Default jitter is 0.5, so u=0 lands at half the base.
		t.Errorf("zero policy first delay %v, want %v", got, Default.Base/2)
	}
}

func TestWaitHonorsCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	if err := Wait(ctx, time.Hour); err != context.Canceled {
		t.Fatalf("Wait on cancelled ctx: err %v, want context.Canceled", err)
	}
	if time.Since(start) > time.Second {
		t.Fatal("Wait did not return promptly on cancellation")
	}
}

func TestWaitElapses(t *testing.T) {
	if err := Wait(context.Background(), time.Millisecond); err != nil {
		t.Fatalf("Wait: %v", err)
	}
}

func TestSleepUsesSource(t *testing.T) {
	p := Policy{Base: time.Millisecond, Max: time.Millisecond, Factor: 2, Jitter: 0.5}
	if err := p.Sleep(context.Background(), 0, NewSource(1)); err != nil {
		t.Fatalf("Sleep: %v", err)
	}
}
