package dispatch

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"path/filepath"
	"time"

	"sevsim/internal/artcache"
	"sevsim/internal/dispatch/backoff"
	"sevsim/internal/journal"
)

// WorkerOptions configures a Worker.
type WorkerOptions struct {
	// Coordinator is the coordinator's base URL (http://host:port).
	Coordinator string

	// Name identifies the worker to the coordinator. It keys the
	// per-worker error budget and names this worker in progress
	// events. Required.
	Name string

	// Workdir holds the worker's per-study journals. A worker killed
	// mid-lease and restarted on the same workdir replays its finished
	// cells instead of recomputing them. Required.
	Workdir string

	// MaxCells caps cells requested per lease (<= 0: coordinator's
	// default batch size).
	MaxCells int

	// Parallelism is the campaign parallelism per cell (core.Spec
	// semantics; <= 0: GOMAXPROCS).
	Parallelism int

	// CacheDir, when set, opens a prep-artifact cache shared across
	// every lease and study this worker executes: a re-leased or
	// resubmitted cell loads its compiled binary, golden result, and
	// checkpoint stream instead of recomputing them. Results are
	// byte-identical either way.
	CacheDir string

	// CacheMaxMB bounds the cache size (0: adopt the per-study advice
	// in StudySpec.CacheMaxMB, or stay unbounded).
	CacheMaxMB int64

	// Logf receives operational log lines (default: discard).
	Logf func(format string, args ...any)

	// Client overrides the HTTP client (default: 30s timeout).
	Client *http.Client

	// Poll paces the idle loop: the delay between empty or failed
	// lease polls grows by this policy and resets on a grant
	// (default backoff.Default).
	Poll *backoff.Policy
}

// Worker is the lease-execution loop: poll the coordinator for a
// lease, compute its cells with the journaled local engine, report the
// outcomes, repeat. All failure handling is bounded-retry with
// exponential backoff — a worker survives coordinator restarts and
// reports results for leases the coordinator no longer remembers.
type Worker struct {
	opt    WorkerOptions
	client *http.Client
	poll   backoff.Policy
	jitter *backoff.Source
	cache  *artcache.Cache // nil: uncached; shared across leases and studies
}

// NewWorker validates the options and returns a ready worker.
func NewWorker(opt WorkerOptions) (*Worker, error) {
	if opt.Coordinator == "" || opt.Name == "" || opt.Workdir == "" {
		return nil, fmt.Errorf("dispatch: worker needs a coordinator URL, a name, and a workdir")
	}
	if opt.Logf == nil {
		opt.Logf = func(string, ...any) {}
	}
	client := opt.Client
	if client == nil {
		client = &http.Client{Timeout: 30 * time.Second}
	}
	poll := backoff.Default
	if opt.Poll != nil {
		poll = *opt.Poll
	}
	var cache *artcache.Cache
	if opt.CacheDir != "" {
		var err error
		cache, err = artcache.Open(opt.CacheDir, artcache.Options{MaxBytes: opt.CacheMaxMB << 20})
		if err != nil {
			return nil, fmt.Errorf("dispatch: worker cache: %w", err)
		}
	}
	h := fnv.New64a()
	io.WriteString(h, opt.Name)
	return &Worker{
		opt:    opt,
		client: client,
		poll:   poll,
		jitter: backoff.NewSource(int64(h.Sum64())),
		cache:  cache,
	}, nil
}

// Run executes leases until the context is cancelled. It returns nil
// on cancellation — a worker being told to stop is not an error.
func (w *Worker) Run(ctx context.Context) error {
	idle := 0
	for {
		if ctx.Err() != nil {
			return nil
		}
		grant, err := w.lease(ctx)
		if err != nil || grant == nil {
			if err != nil {
				w.opt.Logf("lease poll: %v", err)
			}
			idle++
			if err := w.poll.Sleep(ctx, idle, w.jitter); err != nil {
				return nil
			}
			continue
		}
		idle = 0
		w.execute(ctx, grant)
	}
}

// execute runs one lease end to end: heartbeats in the background,
// cells through the journaled local engine, outcomes (or the failure)
// reported with bounded retries.
func (w *Worker) execute(ctx context.Context, g *LeaseGrant) {
	w.opt.Logf("lease %s: %d cells of %s", g.LeaseID, len(g.Cells), g.StudyID)
	spec, err := g.Spec.Spec()
	if err != nil {
		w.fail(ctx, g, fmt.Errorf("resolve spec: %w", err))
		return
	}
	// KeepGoing so a poisoned cell yields a deterministic quarantine
	// outcome instead of sinking the whole batch; the local journal
	// makes a killed-and-restarted worker replay its finished cells.
	spec.KeepGoing = true
	spec.Parallelism = w.opt.Parallelism
	spec.Journal = filepath.Join(w.opt.Workdir, g.StudyID+".journal")
	spec.Progress = func(format string, args ...any) {
		w.opt.Logf("  "+format, args...)
	}
	var cacheBefore artcache.Stats
	if w.cache != nil {
		// The study may advise a disk bound; the worker's own flag wins
		// when set (the operator knows the machine better than the
		// submitter does).
		if g.Spec.CacheMaxMB > 0 && w.opt.CacheMaxMB <= 0 {
			w.cache.LimitBytes(g.Spec.CacheMaxMB << 20)
		}
		spec.Cache = w.cache
		cacheBefore = w.cache.Stats()
	}

	leaseCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	hbDone := make(chan struct{})
	go func() {
		defer close(hbDone)
		w.heartbeatLoop(leaseCtx, g, cancel)
	}()

	outcomes, err := spec.RunCells(leaseCtx, g.Cells)
	cancel()
	<-hbDone
	if err != nil {
		if ctx.Err() != nil {
			return // shutting down; the lease will expire and reassign
		}
		w.fail(ctx, g, err)
		return
	}
	var cacheDelta artcache.Stats
	if w.cache != nil {
		cacheDelta = w.cache.Stats().Minus(cacheBefore)
	}
	var resp CompleteResponse
	err = w.call(ctx, "/v1/complete", CompleteRequest{
		Worker: w.opt.Name, LeaseID: g.LeaseID, StudyID: g.StudyID, Outcomes: outcomes,
		Cache: cacheDelta,
	}, &resp)
	if err != nil {
		w.opt.Logf("lease %s: report failed: %v", g.LeaseID, err)
		return
	}
	w.opt.Logf("lease %s: %d accepted, %d duplicate", g.LeaseID, resp.Accepted, resp.Duplicates)
}

// heartbeatLoop extends the lease at TTL/3 until the lease context
// ends or the coordinator cancels the lease. Transport errors and
// "unknown lease" responses do not stop the work: completions are
// merged by cell key, so finishing is always worth it — only an
// explicit Cancel (study already complete) aborts the compute.
func (w *Worker) heartbeatLoop(ctx context.Context, g *LeaseGrant, cancel context.CancelFunc) {
	interval := g.TTL / 3
	if interval <= 0 {
		interval = time.Second
	}
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
		}
		var resp HeartbeatResponse
		err := w.call(ctx, "/v1/heartbeat", HeartbeatRequest{Worker: w.opt.Name, LeaseID: g.LeaseID}, &resp)
		switch {
		case err != nil:
			w.opt.Logf("lease %s: heartbeat: %v", g.LeaseID, err)
		case resp.Cancel:
			w.opt.Logf("lease %s: cancelled by coordinator", g.LeaseID)
			cancel()
			return
		case !resp.Known:
			w.opt.Logf("lease %s: expired at coordinator; finishing anyway", g.LeaseID)
		}
	}
}

// lease polls for work. A nil grant with nil error means no work.
func (w *Worker) lease(ctx context.Context) (*LeaseGrant, error) {
	req := LeaseRequest{Worker: w.opt.Name, Max: w.opt.MaxCells}
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	httpReq, err := http.NewRequestWithContext(ctx, http.MethodPost, w.opt.Coordinator+"/v1/lease", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	httpReq.Header.Set("Content-Type", "application/json")
	resp, err := w.client.Do(httpReq)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNoContent {
		return nil, nil
	}
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 1024))
		return nil, fmt.Errorf("lease: %s: %s", resp.Status, bytes.TrimSpace(msg))
	}
	var grant LeaseGrant
	if err := json.NewDecoder(resp.Body).Decode(&grant); err != nil {
		return nil, err
	}
	return &grant, nil
}

// fail reports a lease-level failure (bounded retries).
func (w *Worker) fail(ctx context.Context, g *LeaseGrant, cause error) {
	w.opt.Logf("lease %s: %v", g.LeaseID, cause)
	err := w.call(ctx, "/v1/fail", FailRequest{
		Worker: w.opt.Name, LeaseID: g.LeaseID, StudyID: g.StudyID,
		Cells: g.Cells, Err: cause.Error(),
	}, nil)
	if err != nil {
		w.opt.Logf("lease %s: fail report: %v", g.LeaseID, err)
	}
}

// call POSTs a JSON request and decodes the response, retrying
// transient transport and 5xx failures with exponential backoff. The
// retry budget is deliberately generous for completion reports: the
// compute behind them is expensive, the report is idempotent, and a
// coordinator mid-restart comes back within a few delays.
func (w *Worker) call(ctx context.Context, path string, req, resp any) error {
	body, err := json.Marshal(req)
	if err != nil {
		return err
	}
	const attempts = 8
	var last error
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 {
			if err := w.poll.Sleep(ctx, attempt, w.jitter); err != nil {
				return last
			}
		}
		httpReq, err := http.NewRequestWithContext(ctx, http.MethodPost, w.opt.Coordinator+path, bytes.NewReader(body))
		if err != nil {
			return err
		}
		httpReq.Header.Set("Content-Type", "application/json")
		httpResp, err := w.client.Do(httpReq)
		if err != nil {
			last = err
			continue
		}
		ok := httpResp.StatusCode == http.StatusOK || httpResp.StatusCode == http.StatusNoContent
		if !ok {
			msg, _ := io.ReadAll(io.LimitReader(httpResp.Body, 1024))
			httpResp.Body.Close()
			last = fmt.Errorf("%s: %s: %s", path, httpResp.Status, bytes.TrimSpace(msg))
			if httpResp.StatusCode >= 400 && httpResp.StatusCode < 500 {
				return last // our bug, not transient
			}
			continue
		}
		if resp != nil && httpResp.StatusCode == http.StatusOK {
			err = json.NewDecoder(httpResp.Body).Decode(resp)
			httpResp.Body.Close()
			if err != nil {
				last = err
				continue
			}
			return nil
		}
		httpResp.Body.Close()
		return nil
	}
	return last
}

// Cache exposes the worker's prep-artifact cache (nil when the worker
// runs uncached), for lifetime summaries at shutdown.
func (w *Worker) Cache() *artcache.Cache {
	return w.cache
}

// RemoveStudyJournal deletes the worker's local journal for a study,
// once the coordinator has the results durably. Safe to skip — stale
// journals only cost disk — but long-lived workers should clean up.
func (w *Worker) RemoveStudyJournal(studyID string) error {
	return journal.Remove(filepath.Join(w.opt.Workdir, studyID+".journal"))
}
