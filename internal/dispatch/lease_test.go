package dispatch

import (
	"testing"
	"time"

	"sevsim/internal/core"
)

func testCells(n int) []core.CellRef {
	var out []core.CellRef
	for _, target := range []string{"RF", "ROB.pc", "L1D.data", "IQ.op", "LQ.addr", "SQ.data", "BP.bht", "L1I.data"}[:n] {
		out = append(out, core.CellRef{March: "m", Bench: "b", Level: "O0", Target: target})
	}
	return out
}

func at(sec int) time.Time { return time.Unix(int64(sec), 0) }

func TestLeaseLifecycle(t *testing.T) {
	tbl := newLeaseTable(testCells(4), 10*time.Second, 3, 3)
	l := tbl.acquire("w1", 2, at(0))
	if l == nil || len(l.cells) != 2 {
		t.Fatalf("acquire: %+v", l)
	}
	if s, _ := tbl.slot("m/b/O0/RF"); s.state != cellLeased || s.attempts != 1 {
		t.Fatalf("leased slot: %+v", s)
	}
	// A second worker gets the remaining cells, not the leased ones.
	l2 := tbl.acquire("w2", 8, at(1))
	if l2 == nil || len(l2.cells) != 2 {
		t.Fatalf("second acquire: %+v", l2)
	}
	if tbl.acquire("w3", 8, at(1)) != nil {
		t.Fatal("acquired cells while everything is leased")
	}
	for _, ref := range testCells(4) {
		if !tbl.complete("w1", ref.Key()) {
			t.Fatalf("complete %s rejected", ref)
		}
	}
	if !tbl.settled() {
		t.Fatal("table not settled after completing every cell")
	}
	if len(tbl.leases) != 0 {
		t.Fatalf("%d leases outstanding after completion", len(tbl.leases))
	}
}

// TestDoubleCompletionDedup pins the lease-expiry race: worker A's
// lease expires, the cell is re-leased to worker B, and both report
// it. The first completion wins; the second is a duplicate and must
// not double-count the cell.
func TestDoubleCompletionDedup(t *testing.T) {
	tbl := newLeaseTable(testCells(2), 10*time.Second, 3, 10)
	la := tbl.acquire("a", 2, at(0))
	if la == nil {
		t.Fatal("no lease")
	}
	// a goes silent; the lease expires and the cells are re-leased.
	if q := tbl.expire(at(11)); len(q) != 0 {
		t.Fatalf("first expiry quarantined %v", q)
	}
	lb := tbl.acquire("b", 2, at(12))
	if lb == nil || len(lb.cells) != 2 {
		t.Fatalf("re-lease after expiry: %+v", lb)
	}
	// b completes first; a's late report of the same cell is a dup.
	if !tbl.complete("b", "m/b/O0/RF") {
		t.Fatal("first completion rejected")
	}
	if tbl.complete("a", "m/b/O0/RF") {
		t.Fatal("second completion of the same cell accepted")
	}
	// And the reverse order on the other cell: the zombie worker a
	// lands its result first, b's recompute is the dup.
	if !tbl.complete("a", "m/b/O0/ROB.pc") {
		t.Fatal("late completion from expired lease rejected")
	}
	if tbl.complete("b", "m/b/O0/ROB.pc") {
		t.Fatal("recompute accepted after zombie completion")
	}
	if tbl.done != 2 || !tbl.settled() {
		t.Fatalf("done=%d settled=%v, want 2/true", tbl.done, tbl.settled())
	}
}

func TestExpiryQuarantinesAtMaxAttempts(t *testing.T) {
	tbl := newLeaseTable(testCells(1), 10*time.Second, 2, 100)
	for round := 0; round < 2; round++ {
		l := tbl.acquire("w", 1, at(round*20))
		if l == nil {
			t.Fatalf("round %d: no lease", round)
		}
		q := tbl.expire(at(round*20 + 11))
		switch {
		case round == 0 && len(q) != 0:
			t.Fatalf("quarantined on attempt 1: %v", q)
		case round == 1 && len(q) != 1:
			t.Fatalf("not quarantined at max attempts: %v", q)
		}
	}
	if s, _ := tbl.slot("m/b/O0/RF"); s.state != cellQuarantined {
		t.Fatalf("state %v, want quarantined", s.state)
	}
	// A very late completion can still rescue a quarantined cell.
	if !tbl.complete("w", "m/b/O0/RF") {
		t.Fatal("late completion of quarantined cell rejected")
	}
}

func TestFailReturnsCellToPoolThenQuarantines(t *testing.T) {
	tbl := newLeaseTable(testCells(1), 10*time.Second, 2, 100)
	tbl.acquire("w", 1, at(0))
	if tbl.fail("w", "m/b/O0/RF", "boom", at(1)) {
		t.Fatal("quarantined on first failure")
	}
	if s, _ := tbl.slot("m/b/O0/RF"); s.state != cellPending || s.lastErr != "boom" {
		t.Fatalf("after first fail: %+v", s)
	}
	tbl.acquire("w", 1, at(2))
	if !tbl.fail("w", "m/b/O0/RF", "boom again", at(3)) {
		t.Fatal("not quarantined at max attempts")
	}
	if s, _ := tbl.slot("m/b/O0/RF"); s.lastErr != "boom again" {
		t.Fatalf("lastErr %q", s.lastErr)
	}
}

// TestWorkerErrorBudget checks suspension and the pressure valve: a
// worker out of budget gets nothing while others remain, but when
// every worker is suspended all budgets reset rather than deadlocking
// the study.
func TestWorkerErrorBudget(t *testing.T) {
	tbl := newLeaseTable(testCells(8), 10*time.Second, 100, 2)
	// Worker bad earns two strikes via failures.
	tbl.acquire("bad", 1, at(0))
	tbl.fail("bad", "m/b/O0/RF", "x", at(1))
	tbl.acquire("bad", 1, at(2))
	tbl.fail("bad", "m/b/O0/RF", "x", at(3))
	if !tbl.suspended("bad") {
		t.Fatal("worker not suspended at budget")
	}
	// good is alive, so bad gets nothing.
	tbl.acquire("good", 1, at(4))
	if tbl.acquire("bad", 1, at(5)) != nil {
		t.Fatal("suspended worker got a lease while another is live")
	}
	// A completion repays a strike and lifts the suspension.
	if !tbl.complete("good", "m/b/O0/ROB.pc") {
		t.Fatal("completion rejected")
	}
	w := tbl.budget["bad"]
	w.strikes--
	if tbl.suspended("bad") {
		t.Fatal("still suspended below budget")
	}
	w.strikes++

	// Now suspend good too: with everyone suspended, the valve opens.
	tbl.budget["good"].strikes = 2
	l := tbl.acquire("bad", 1, at(6))
	if l == nil {
		t.Fatal("all-suspended pressure valve did not open")
	}
	if tbl.suspended("bad") || tbl.suspended("good") {
		t.Fatal("budgets not reset by the pressure valve")
	}
}

func TestHeartbeatExtendsDeadline(t *testing.T) {
	tbl := newLeaseTable(testCells(1), 10*time.Second, 3, 3)
	l := tbl.acquire("w", 1, at(0))
	if !tbl.heartbeat(l.id, at(8)) {
		t.Fatal("heartbeat rejected")
	}
	if q := tbl.expire(at(15)); len(q) != 0 {
		t.Fatal("expired despite heartbeat")
	}
	if len(tbl.leases) != 1 {
		t.Fatal("lease dropped despite heartbeat")
	}
	tbl.expire(at(19))
	if len(tbl.leases) != 0 {
		t.Fatal("lease survived past extended deadline")
	}
	if tbl.heartbeat(l.id, at(20)) {
		t.Fatal("heartbeat accepted for expired lease")
	}
}
