package dispatch

import (
	"fmt"
	"sort"
	"time"

	"sevsim/internal/core"
)

// cellState is one cell's position in the lease lifecycle:
//
//	pending ──grant──▶ leased ──complete──▶ done
//	   ▲                  │
//	   └──expire/fail─────┘   (attempts++ at grant; at maxAttempts the
//	                           expire/fail edge lands in quarantined)
//
// done and quarantined are terminal. Completions are accepted in any
// state except done (first writer wins), so a worker finishing after
// its lease expired still lands its result — and can even rescue a
// cell that was quarantined in the meantime.
type cellState int

const (
	cellPending cellState = iota
	cellLeased
	cellDone
	cellQuarantined
)

func (s cellState) String() string {
	switch s {
	case cellPending:
		return "pending"
	case cellLeased:
		return "leased"
	case cellDone:
		return "done"
	case cellQuarantined:
		return "quarantined"
	}
	return fmt.Sprintf("cellState(%d)", int(s))
}

// cellSlot tracks one cell.
type cellSlot struct {
	ref      core.CellRef
	state    cellState
	attempts int    // lease grants so far
	lease    string // current lease ID while leased
	lastErr  string // most recent failure report, for the quarantine record
}

// lease is one outstanding grant.
type lease struct {
	id       string
	worker   string
	deadline time.Time
	cells    []int // indices into table.slots still owed by this lease
}

// workerState is the per-worker error budget. Failures and expiries
// charge the budget; a completion repays one unit. A worker that
// exhausts its budget is suspended — it gets no new leases — until
// every worker is suspended, at which point all budgets reset (the
// pressure valve: with nobody left to lease to, suspension would
// deadlock the study even though the cells may be fine).
type workerState struct {
	strikes int
}

// leaseTable is the coordinator's soft state for one study: which
// cells are pending, leased, done, or quarantined, and which leases
// are outstanding. It is rebuilt from the journal on restart (done and
// quarantined cells replayed; everything else pending), so none of it
// is persisted. Not goroutine-safe; the coordinator serializes access.
type leaseTable struct {
	slots  []cellSlot
	byKey  map[string]int // cell key -> slot index
	leases map[string]*lease
	budget map[string]*workerState

	ttl         time.Duration
	maxAttempts int
	maxStrikes  int
	nextLease   int

	done        int
	quarantined int
}

func newLeaseTable(cells []core.CellRef, ttl time.Duration, maxAttempts, maxStrikes int) *leaseTable {
	t := &leaseTable{
		byKey:       make(map[string]int, len(cells)),
		leases:      map[string]*lease{},
		budget:      map[string]*workerState{},
		ttl:         ttl,
		maxAttempts: maxAttempts,
		maxStrikes:  maxStrikes,
	}
	for i, ref := range cells {
		t.slots = append(t.slots, cellSlot{ref: ref})
		t.byKey[ref.Key()] = i
	}
	return t
}

// markDone records a cell completed outside the lease flow (journal
// replay on coordinator restart).
func (t *leaseTable) markDone(key string) {
	if i, ok := t.byKey[key]; ok && t.slots[i].state != cellDone {
		t.setState(i, cellDone)
	}
}

// markQuarantined records a quarantine replayed from the journal.
func (t *leaseTable) markQuarantined(key string) {
	if i, ok := t.byKey[key]; ok && t.slots[i].state == cellPending {
		t.setState(i, cellQuarantined)
	}
}

func (t *leaseTable) setState(i int, s cellState) {
	switch t.slots[i].state {
	case cellDone:
		t.done--
	case cellQuarantined:
		t.quarantined--
	}
	t.slots[i].state = s
	switch s {
	case cellDone:
		t.done++
	case cellQuarantined:
		t.quarantined++
	}
}

// settled reports whether every cell is terminal.
func (t *leaseTable) settled() bool { return t.done+t.quarantined == len(t.slots) }

// counts returns (done, leased, quarantined, workers-with-leases).
func (t *leaseTable) counts() (done, leased, quarantined, workers int) {
	for _, s := range t.slots {
		if s.state == cellLeased {
			leased++
		}
	}
	seen := map[string]bool{}
	for _, l := range t.leases { //lint:ordered set insertion; only the cardinality is read
		seen[l.worker] = true
	}
	return t.done, leased, t.quarantined, len(seen)
}

// acquire leases up to max pending cells to worker. Cells are granted
// in canonical enumeration order, which naturally batches cells of the
// same prep unit so the worker amortizes one compile+golden run across
// them. Returns nil when the worker is suspended or nothing is pending.
func (t *leaseTable) acquire(worker string, max int, now time.Time) *lease {
	if t.suspended(worker) {
		if !t.allSuspended() {
			return nil
		}
		// Pressure valve: everyone is suspended, nobody can make
		// progress. Forgive all budgets and carry on.
		for _, w := range t.budget { //lint:ordered uniform reset of every budget
			w.strikes = 0
		}
	}
	var cells []int
	for i := range t.slots {
		if len(cells) >= max {
			break
		}
		if t.slots[i].state == cellPending {
			cells = append(cells, i)
		}
	}
	if len(cells) == 0 {
		return nil
	}
	t.nextLease++
	l := &lease{
		id:       fmt.Sprintf("l-%d", t.nextLease),
		worker:   worker,
		deadline: now.Add(t.ttl),
		cells:    cells,
	}
	for _, i := range cells {
		t.slots[i].state = cellLeased
		t.slots[i].attempts++
		t.slots[i].lease = l.id
	}
	t.leases[l.id] = l
	if _, ok := t.budget[worker]; !ok {
		t.budget[worker] = &workerState{}
	}
	return l
}

func (t *leaseTable) suspended(worker string) bool {
	w, ok := t.budget[worker]
	return ok && t.maxStrikes > 0 && w.strikes >= t.maxStrikes
}

func (t *leaseTable) allSuspended() bool {
	if len(t.budget) == 0 {
		return false
	}
	for _, w := range t.budget { //lint:ordered order-insensitive conjunction
		if t.maxStrikes <= 0 || w.strikes < t.maxStrikes {
			return false
		}
	}
	return true
}

// heartbeat extends a lease's deadline. Unknown leases (expired, or
// from before a coordinator restart) report Known=false; the worker
// keeps computing — completion is by cell key, not lease.
func (t *leaseTable) heartbeat(id string, now time.Time) bool {
	l, ok := t.leases[id]
	if !ok {
		return false
	}
	l.deadline = now.Add(t.ttl)
	return true
}

// complete marks one cell done, regardless of which lease (if any)
// currently holds it: first completion wins, later ones are
// duplicates. Returns whether the result should be merged.
func (t *leaseTable) complete(worker, key string) (accepted bool) {
	i, ok := t.byKey[key]
	if !ok || t.slots[i].state == cellDone {
		return false
	}
	t.detach(i)
	t.setState(i, cellDone)
	t.slots[i].lease = ""
	if w, ok := t.budget[worker]; ok && w.strikes > 0 {
		w.strikes--
	}
	return true
}

// fail reports a worker-side failure of one leased cell. The cell goes
// back to pending — or to quarantined once its grant count reaches
// maxAttempts. Returns true when the cell was quarantined by this call.
func (t *leaseTable) fail(worker, key, errText string, _ time.Time) (quarantined bool) {
	i, ok := t.byKey[key]
	if !ok {
		return false
	}
	s := &t.slots[i]
	if s.state != cellLeased && s.state != cellPending {
		return false
	}
	t.detach(i)
	s.lease = ""
	s.lastErr = errText
	if w, ok := t.budget[worker]; ok {
		w.strikes++
	}
	if s.attempts >= t.maxAttempts {
		t.setState(i, cellQuarantined)
		return true
	}
	t.setState(i, cellPending)
	return false
}

// expire sweeps leases past their deadline: their unfinished cells go
// back to pending (or quarantine at maxAttempts), and the late worker
// is charged one strike per expired lease. Returns the cells newly
// quarantined by the sweep.
func (t *leaseTable) expire(now time.Time) (quarantined []core.CellRef) {
	var ids []string
	for id, l := range t.leases { //lint:ordered collected IDs are sorted before use
		if now.After(l.deadline) {
			ids = append(ids, id)
		}
	}
	sort.Strings(ids)
	for _, id := range ids {
		l := t.leases[id]
		delete(t.leases, id)
		if w, ok := t.budget[l.worker]; ok {
			w.strikes++
		}
		for _, i := range l.cells {
			s := &t.slots[i]
			if s.state != cellLeased || s.lease != l.id {
				continue
			}
			s.lease = ""
			if s.lastErr == "" {
				s.lastErr = fmt.Sprintf("lease %s to %s expired", l.id, l.worker)
			}
			if s.attempts >= t.maxAttempts {
				t.setState(i, cellQuarantined)
				quarantined = append(quarantined, s.ref)
			} else {
				t.setState(i, cellPending)
			}
		}
	}
	return quarantined
}

// detach removes slot i from whatever lease holds it, dropping the
// lease once it owes nothing.
func (t *leaseTable) detach(i int) {
	id := t.slots[i].lease
	if id == "" {
		return
	}
	l, ok := t.leases[id]
	if !ok {
		return
	}
	rest := l.cells[:0]
	for _, c := range l.cells {
		if c != i {
			rest = append(rest, c)
		}
	}
	l.cells = rest
	if len(l.cells) == 0 {
		delete(t.leases, id)
	}
}

// slot returns the slot for a cell key.
func (t *leaseTable) slot(key string) (cellSlot, bool) {
	i, ok := t.byKey[key]
	if !ok {
		return cellSlot{}, false
	}
	return t.slots[i], true
}
