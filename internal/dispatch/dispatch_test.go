package dispatch

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"sevsim/internal/core"
)

// testWire is a fast one-machine study: 12 cells across two prep
// units per level.
func testWire() StudySpec {
	return StudySpec{
		Machines: []string{"Cortex-A15-like"},
		Benches:  []string{"qsort", "gsm"},
		Sizes:    []int{24, 2},
		Levels:   []string{"O0", "O2"},
		Targets:  []string{"RF", "ROB.pc", "L1D.data"},
		Faults:   8,
		Seed:     7,
	}
}

// localBytes runs the wire spec in-process and returns its Save bytes
// — the reference every distributed run must reproduce exactly.
func localBytes(t *testing.T, wire StudySpec) []byte {
	t.Helper()
	spec, err := wire.Spec()
	if err != nil {
		t.Fatal(err)
	}
	st, err := spec.Run()
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.MarshalIndent(st, "", " ")
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func TestSpecNormalizeAndID(t *testing.T) {
	wire := testWire()
	n1, err := wire.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	// Normalizing is idempotent and fills the target default.
	n2, err := n1.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if n1.ID() != n2.ID() {
		t.Fatal("normalize is not idempotent")
	}
	elided := wire
	elided.Sizes = nil
	defaulted := wire
	defaulted.Sizes = []int{300, 3} // the benchmarks' default sizes
	ne, err := elided.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	nd, err := defaulted.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if ne.ID() != nd.ID() {
		t.Fatal("elided and explicit defaults hash to different studies")
	}
	if ne.ID() == n1.ID() {
		t.Fatal("different sizes hash to the same study")
	}
	policy := n1
	policy.CacheMaxMB = 512
	if policy.ID() != n1.ID() {
		t.Fatal("cache policy changed the study ID; it is execution advice, not identity")
	}
	bad := wire
	bad.Benches = []string{"no-such-bench"}
	if _, err := bad.Normalize(); err == nil {
		t.Fatal("unknown benchmark not rejected")
	}
	// Wire round trip through a resolved spec is lossless.
	spec, err := n1.Spec()
	if err != nil {
		t.Fatal(err)
	}
	back, err := WireSpec(spec).Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if back.ID() != n1.ID() {
		t.Fatal("spec -> wire round trip changed the study ID")
	}
}

// TestDistributedStudyEndToEnd is the tentpole acceptance at package
// level: a study submitted over HTTP, computed by three concurrent
// workers, merges to bytes identical to the single-process run.
func TestDistributedStudyEndToEnd(t *testing.T) {
	wire := testWire()
	want := localBytes(t, wire)

	coord, err := OpenCoordinator(Options{
		Dir:        t.TempDir(),
		LeaseTTL:   time.Minute,
		LeaseCells: 3,
		Logf:       t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	ts := httptest.NewServer(NewServer(coord, "unused").Handler)
	defer ts.Close()

	// Submit over HTTP; resubmission is idempotent.
	var sub SubmitResponse
	postJSON(t, ts.URL+"/studies", wire, &sub)
	if sub.Existing || sub.Cells != 12 {
		t.Fatalf("submit: %+v", sub)
	}
	var again SubmitResponse
	postJSON(t, ts.URL+"/studies", wire, &again)
	if !again.Existing || again.ID != sub.ID {
		t.Fatalf("resubmit: %+v", again)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	var wg sync.WaitGroup
	for _, name := range []string{"w1", "w2", "w3"} {
		w, err := NewWorker(WorkerOptions{
			Coordinator: ts.URL,
			Name:        name,
			Workdir:     t.TempDir(),
			Logf:        t.Logf,
		})
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			w.Run(ctx)
		}()
	}

	// The progress stream ends when the study completes.
	resp, err := http.Get(ts.URL + "/studies/" + sub.ID)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var last StatusEvent
	lines := 0
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		if err := json.Unmarshal(sc.Bytes(), &last); err != nil {
			t.Fatalf("progress line %d: %v", lines, err)
		}
		lines++
	}
	if lines == 0 || last.State != "complete" || last.Done != 12 {
		t.Fatalf("progress stream ended at %+v after %d lines", last, lines)
	}
	cancel()
	wg.Wait()

	got := getBytes(t, ts.URL+"/studies/"+sub.ID+"/result")
	if !bytes.Equal(got, want) {
		t.Fatalf("distributed result differs from single-process run (%d vs %d bytes)", len(got), len(want))
	}
}

// TestCoordinatorKillAndResume closes the coordinator mid-study and
// reopens it on the same state directory: journaled completions
// survive, the in-flight lease's cells return to the pool, and the
// finished study still matches the single-process bytes.
func TestCoordinatorKillAndResume(t *testing.T) {
	wire := testWire()
	want := localBytes(t, wire)
	spec, err := func() (core.Spec, error) {
		w, err := wire.Normalize()
		if err != nil {
			return core.Spec{}, err
		}
		return w.Spec()
	}()
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	opt := Options{Dir: dir, LeaseTTL: time.Minute, LeaseCells: 4, Logf: t.Logf}

	coord, err := OpenCoordinator(opt)
	if err != nil {
		t.Fatal(err)
	}
	sub, err := coord.Submit(wire)
	if err != nil {
		t.Fatal(err)
	}

	// Complete one lease, leave a second one in flight, then kill.
	g1, err := coord.Lease(LeaseRequest{Worker: "w1"})
	if err != nil || g1 == nil {
		t.Fatalf("lease: %v %v", g1, err)
	}
	out, err := spec.RunCells(context.Background(), g1.Cells)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := coord.Complete(CompleteRequest{Worker: "w1", LeaseID: g1.LeaseID, StudyID: sub.ID, Outcomes: out}); err != nil {
		t.Fatal(err)
	}
	if g2, err := coord.Lease(LeaseRequest{Worker: "w1"}); err != nil || g2 == nil {
		t.Fatalf("second lease: %v %v", g2, err)
	}
	done := len(g1.Cells)
	coord.Close()

	coord, err = OpenCoordinator(opt)
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	ev, ok := coord.Status(sub.ID)
	if !ok || ev.Done != done || ev.Leased != 0 {
		t.Fatalf("resumed status: %+v (want Done=%d, Leased=0)", ev, done)
	}

	// Finish the study through the reopened coordinator.
	for {
		g, err := coord.Lease(LeaseRequest{Worker: "w2"})
		if err != nil {
			t.Fatal(err)
		}
		if g == nil {
			break
		}
		out, err := spec.RunCells(context.Background(), g.Cells)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := coord.Complete(CompleteRequest{Worker: "w2", LeaseID: g.LeaseID, StudyID: sub.ID, Outcomes: out})
		if err != nil {
			t.Fatal(err)
		}
		if resp.Duplicates != 0 {
			t.Fatalf("resumed run recomputed %d already-journaled cells", resp.Duplicates)
		}
	}
	got, ok := coord.Result(sub.ID)
	if !ok {
		t.Fatal("study not complete after resumed leases")
	}
	if !bytes.Equal(got, want) {
		t.Fatal("resumed coordinator result differs from single-process run")
	}
	if hb := coord.Heartbeat(HeartbeatRequest{Worker: "w2", LeaseID: sub.ID + "/l-999"}); !hb.Cancel {
		t.Fatalf("heartbeat after completion: %+v, want Cancel", hb)
	}
}

// TestPersistentFailureQuarantine drives a cell through the fail path
// to quarantine: the study still completes, with the cell recorded in
// Study.Failed instead of hanging the campaign forever.
func TestPersistentFailureQuarantine(t *testing.T) {
	wire := testWire()
	coord, err := OpenCoordinator(Options{
		Dir: t.TempDir(), LeaseTTL: time.Minute, LeaseCells: 12,
		MaxAttempts: 2, WorkerBudget: 100, Logf: t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	sub, err := coord.Submit(wire)
	if err != nil {
		t.Fatal(err)
	}
	spec, err := coord.studies[sub.ID].wire.Spec()
	if err != nil {
		t.Fatal(err)
	}

	// Fail one cell twice (MaxAttempts), completing the rest.
	poison := spec.Cells()[5]
	for attempt := 0; ; attempt++ {
		g, err := coord.Lease(LeaseRequest{Worker: "w"})
		if err != nil {
			t.Fatal(err)
		}
		if g == nil {
			break
		}
		var good []core.CellRef
		bad := false
		for _, ref := range g.Cells {
			if ref == poison {
				bad = true
			} else {
				good = append(good, ref)
			}
		}
		if len(good) > 0 {
			out, err := spec.RunCells(context.Background(), good)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := coord.Complete(CompleteRequest{Worker: "w", LeaseID: g.LeaseID, StudyID: sub.ID, Outcomes: out}); err != nil {
				t.Fatal(err)
			}
		}
		if bad {
			err := coord.Fail(FailRequest{Worker: "w", LeaseID: g.LeaseID, StudyID: sub.ID,
				Cells: []core.CellRef{poison}, Err: "injected worker crash"})
			if err != nil {
				t.Fatal(err)
			}
		}
		if attempt > 10 {
			t.Fatal("study did not settle")
		}
	}
	data, ok := coord.Result(sub.ID)
	if !ok {
		t.Fatal("study with a quarantined cell never completed")
	}
	var st core.Study
	if err := json.Unmarshal(data, &st); err != nil {
		t.Fatal(err)
	}
	if len(st.Failed) != 1 {
		t.Fatalf("Failed has %d entries, want 1: %+v", len(st.Failed), st.Failed)
	}
	f := st.Failed[0]
	if f.Target != poison.Target || f.Stage != "dispatch" || !strings.Contains(f.Err, "injected worker crash") {
		t.Fatalf("quarantine record: %+v", f)
	}
	ev, _ := coord.Status(sub.ID)
	if ev.Quarantined != 1 || ev.State != "complete" {
		t.Fatalf("status: %+v", ev)
	}
}

// TestLeaseExpiryReassignsOverHTTP covers the dead-worker path with a
// synthetic clock: a worker leases cells and vanishes; the sweep
// expires the lease and a live worker finishes the study.
func TestLeaseExpiryReassigns(t *testing.T) {
	wire := testWire()
	want := localBytes(t, wire)
	var mu sync.Mutex
	now := time.Unix(0, 0)
	clock := func() time.Time { mu.Lock(); defer mu.Unlock(); return now }
	advance := func(d time.Duration) { mu.Lock(); now = now.Add(d); mu.Unlock() }

	coord, err := OpenCoordinator(Options{
		Dir: t.TempDir(), LeaseTTL: 30 * time.Second, LeaseCells: 6,
		WorkerBudget: 100, Clock: clock, Logf: t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	sub, err := coord.Submit(wire)
	if err != nil {
		t.Fatal(err)
	}
	spec, _ := coord.studies[sub.ID].wire.Spec()

	// The doomed worker takes half the study and dies silently.
	gDead, err := coord.Lease(LeaseRequest{Worker: "doomed"})
	if err != nil || gDead == nil || len(gDead.Cells) != 6 {
		t.Fatalf("doomed lease: %+v %v", gDead, err)
	}
	// Its lease has not expired yet: the live worker gets the rest.
	gLive, err := coord.Lease(LeaseRequest{Worker: "live", Max: 12})
	if err != nil || gLive == nil || len(gLive.Cells) != 6 {
		t.Fatalf("live lease: %+v %v", gLive, err)
	}
	out, err := spec.RunCells(context.Background(), gLive.Cells)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := coord.Complete(CompleteRequest{Worker: "live", LeaseID: gLive.LeaseID, StudyID: sub.ID, Outcomes: out}); err != nil {
		t.Fatal(err)
	}

	// Heartbeats keep the doomed lease alive across the TTL...
	advance(20 * time.Second)
	if hb := coord.Heartbeat(HeartbeatRequest{Worker: "doomed", LeaseID: gDead.LeaseID}); !hb.Known {
		t.Fatalf("heartbeat: %+v", hb)
	}
	advance(20 * time.Second)
	coord.Sweep()
	if g, _ := coord.Lease(LeaseRequest{Worker: "live"}); g != nil {
		t.Fatalf("heartbeated lease reassigned early: %+v", g)
	}
	// ...until they stop: the sweep reclaims the cells.
	advance(31 * time.Second)
	coord.Sweep()
	g, err := coord.Lease(LeaseRequest{Worker: "live", Max: 12})
	if err != nil || g == nil || len(g.Cells) != 6 {
		t.Fatalf("reassigned lease: %+v %v", g, err)
	}
	out, err = spec.RunCells(context.Background(), g.Cells)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := coord.Complete(CompleteRequest{Worker: "live", LeaseID: g.LeaseID, StudyID: sub.ID, Outcomes: out})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Accepted != 6 {
		t.Fatalf("reassigned completion: %+v", resp)
	}

	// The zombie reports its (re-)computed cells after all: all dups.
	outDead, err := spec.RunCells(context.Background(), gDead.Cells)
	if err != nil {
		t.Fatal(err)
	}
	respDead, err := coord.Complete(CompleteRequest{Worker: "doomed", LeaseID: gDead.LeaseID, StudyID: sub.ID, Outcomes: outDead})
	if err != nil {
		t.Fatal(err)
	}
	if respDead.Accepted != 0 || respDead.Duplicates != 6 {
		t.Fatalf("zombie completion not fully deduplicated: %+v", respDead)
	}

	got, ok := coord.Result(sub.ID)
	if !ok {
		t.Fatal("study incomplete")
	}
	if !bytes.Equal(got, want) {
		t.Fatal("result with expiry/reassignment differs from single-process run")
	}
}

func postJSON(t *testing.T, url string, req, resp any) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	r, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	if r.StatusCode != http.StatusOK {
		t.Fatalf("POST %s: %s", url, r.Status)
	}
	if err := json.NewDecoder(r.Body).Decode(resp); err != nil {
		t.Fatal(err)
	}
}

func getBytes(t *testing.T, url string) []byte {
	t.Helper()
	r, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	if r.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %s", url, r.Status)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(r.Body); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestDistributedSharedWarmCache runs two studies back to back through
// three workers sharing one prep-artifact cache directory: the first
// (cold) study fills the cache, the second — same prep configurations,
// different sampling seed — must be served entirely warm. Both merge to
// bytes identical to single-process runs, and the coordinator's status
// reports the per-worker cache counters the workers attach to their
// completions.
func TestDistributedSharedWarmCache(t *testing.T) {
	wireA := testWire()
	wireB := testWire()
	wireB.Seed = wireA.Seed + 1 // different sampling, identical prep units
	wantA := localBytes(t, wireA)
	wantB := localBytes(t, wireB)

	coord, err := OpenCoordinator(Options{
		Dir:        t.TempDir(),
		LeaseTTL:   time.Minute,
		LeaseCells: 3,
		Logf:       t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	ts := httptest.NewServer(NewServer(coord, "unused").Handler)
	defer ts.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 4*time.Minute)
	defer cancel()
	cacheDir := t.TempDir()
	var wg sync.WaitGroup
	for _, name := range []string{"w1", "w2", "w3"} {
		w, err := NewWorker(WorkerOptions{
			Coordinator: ts.URL,
			Name:        name,
			Workdir:     t.TempDir(),
			CacheDir:    cacheDir, // one cache shared by all three
			Logf:        t.Logf,
		})
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			w.Run(ctx)
		}()
	}

	waitStudy := func(wire StudySpec, want []byte) StatusEvent {
		t.Helper()
		var sub SubmitResponse
		start := time.Now()
		postJSON(t, ts.URL+"/studies", wire, &sub)
		deadline := start.Add(3 * time.Minute)
		for time.Now().Before(deadline) {
			if got, ok := coord.Result(sub.ID); ok {
				if !bytes.Equal(got, want) {
					t.Fatalf("cached distributed result differs from single-process run (%d vs %d bytes)", len(got), len(want))
				}
				ev, _ := coord.Status(sub.ID)
				t.Logf("study %s: %v submit-to-result, cache %s", sub.ID, time.Since(start).Round(time.Millisecond), ev.Cache)
				return ev
			}
			time.Sleep(25 * time.Millisecond)
		}
		t.Fatalf("study %s never completed", sub.ID)
		return StatusEvent{}
	}

	evA := waitStudy(wireA, wantA)
	if evA.Cache.Misses == 0 || evA.Cache.Puts == 0 {
		t.Fatalf("cold study reported no cache fills: %+v", evA.Cache)
	}
	if len(evA.CacheByWorker) == 0 {
		t.Fatalf("cold study reported no per-worker cache stats: %+v", evA)
	}

	evB := waitStudy(wireB, wantB)
	if evB.Cache.Misses != 0 || evB.Cache.Hits == 0 {
		t.Fatalf("second study was not served warm: %+v", evB.Cache)
	}
	cancel()
	wg.Wait()
}
