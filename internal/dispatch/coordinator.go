package dispatch

import (
	"context"
	"encoding/json"
	"fmt"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"sevsim/internal/artcache"
	"sevsim/internal/core"
	"sevsim/internal/journal"
)

// Coordinator journal record kinds. Submissions and terminal cell
// events (merge-accepted outcomes, quarantines) are durable; leases
// are not — they are soft state that expires and reassigns itself, so
// a restarted coordinator simply re-leases whatever the journal does
// not prove finished.
const (
	kindSubmit     = "submit"
	kindOutcome    = "outcome"
	kindQuarantine = "quarantine"
)

type submitRecord struct {
	ID   string
	Spec StudySpec
}

type outcomeRecord struct {
	Study   string
	Outcome core.CellOutcome
}

type quarantineRecord struct {
	Study   string
	Cell    core.CellRef
	Failure core.Failure
}

// Options configures a Coordinator.
type Options struct {
	// Dir is the coordinator's durable state directory; the journal
	// lives at Dir/coordinator. Required.
	Dir string

	// LeaseTTL is how long a worker may hold a lease without
	// heartbeating before its cells are reassigned (default 30s).
	LeaseTTL time.Duration

	// LeaseCells caps the cells per lease grant (default 4). Cells are
	// granted in enumeration order, so a batch usually shares one prep
	// unit and the worker amortizes the compile+golden run.
	LeaseCells int

	// MaxAttempts bounds lease grants per cell before it is
	// quarantined into Study.Failed (default 3).
	MaxAttempts int

	// WorkerBudget is the per-worker error budget: expiries and
	// failures charge a strike, completions repay one, and a worker at
	// the limit gets no new leases (default 3). When every known
	// worker is suspended, all budgets reset — suspension must never
	// deadlock a study that still has live workers.
	WorkerBudget int

	// Logf receives operational log lines (default: discard).
	Logf func(format string, args ...any)

	// Clock overrides the time source, for tests that drive lease
	// expiry synthetically (default: the wall clock).
	Clock func() time.Time
}

func (o Options) withDefaults() Options {
	if o.LeaseTTL <= 0 {
		o.LeaseTTL = 30 * time.Second
	}
	if o.LeaseCells <= 0 {
		o.LeaseCells = 4
	}
	if o.MaxAttempts <= 0 {
		o.MaxAttempts = 3
	}
	if o.WorkerBudget <= 0 {
		o.WorkerBudget = 3
	}
	if o.Logf == nil {
		o.Logf = func(string, ...any) {}
	}
	if o.Clock == nil {
		o.Clock = func() time.Time {
			return time.Now() //lint:clock lease deadlines are wall-clock soft state, never part of a result
		}
	}
	return o
}

// studyRun is one study's in-memory state: the resolved spec, the
// merge in progress, and the lease table. result is set exactly once,
// when the last cell lands.
type studyRun struct {
	id    string
	wire  StudySpec
	spec  core.Spec
	asm   *core.Assembler
	table *leaseTable

	result []byte // the study's Save bytes; nil while incomplete
	subs   map[chan StatusEvent]struct{}

	// cacheByWorker accumulates the prep-artifact cache deltas each
	// worker reported with its completions, and prunedDUEByWorker the
	// crash-certain injections each worker's static pruner classified
	// without simulating — observability only, never part of the merged
	// study.
	cacheByWorker     map[string]artcache.Stats
	prunedDUEByWorker map[string]int
}

func (r *studyRun) state() string {
	if r.result != nil {
		return "complete"
	}
	return "running"
}

// Coordinator owns the durable study state and the lease tables. All
// methods are safe for concurrent use; the HTTP server (server.go) is
// a thin codec over them, so tests can drive the coordinator directly.
type Coordinator struct {
	opt Options

	mu       sync.Mutex
	jw       *journal.Writer
	studies  map[string]*studyRun
	draining bool
	closed   bool
}

// OpenCoordinator opens (or creates) the coordinator state in
// opt.Dir and replays its journal: submitted studies are rebuilt, every
// journaled outcome and quarantine is re-merged, and the remaining
// cells return to pending — a restarted coordinator loses leases (they
// re-expire naturally) but never a completed cell.
func OpenCoordinator(opt Options) (*Coordinator, error) {
	opt = opt.withDefaults()
	if opt.Dir == "" {
		return nil, fmt.Errorf("dispatch: coordinator needs a state directory")
	}
	jw, recs, err := journal.Open(filepath.Join(opt.Dir, "coordinator"), journal.Options{})
	if err != nil {
		return nil, err
	}
	c := &Coordinator{opt: opt, jw: jw, studies: map[string]*studyRun{}}
	for _, rec := range recs {
		if err := c.replay(rec); err != nil {
			jw.Close()
			return nil, err
		}
	}
	for _, r := range c.studies { //lint:ordered each study finalizes independently
		c.finalize(r)
	}
	return c, nil
}

func (c *Coordinator) replay(rec journal.Record) error {
	switch rec.Kind {
	case kindSubmit:
		var sr submitRecord
		if err := json.Unmarshal(rec.Data, &sr); err != nil {
			return fmt.Errorf("dispatch: submit record: %w", err)
		}
		r, err := c.newRun(sr.ID, sr.Spec)
		if err != nil {
			return err
		}
		c.studies[sr.ID] = r
	case kindOutcome:
		var or outcomeRecord
		if err := json.Unmarshal(rec.Data, &or); err != nil {
			return fmt.Errorf("dispatch: outcome record: %w", err)
		}
		r, ok := c.studies[or.Study]
		if !ok {
			return fmt.Errorf("dispatch: outcome for unknown study %s", or.Study)
		}
		if _, err := r.asm.Add(or.Outcome); err != nil {
			return err
		}
		r.table.markDone(or.Outcome.Cell.Key())
	case kindQuarantine:
		var qr quarantineRecord
		if err := json.Unmarshal(rec.Data, &qr); err != nil {
			return fmt.Errorf("dispatch: quarantine record: %w", err)
		}
		r, ok := c.studies[qr.Study]
		if !ok {
			return fmt.Errorf("dispatch: quarantine for unknown study %s", qr.Study)
		}
		if _, err := r.asm.Quarantine(qr.Cell, qr.Failure); err != nil {
			return err
		}
		r.table.markQuarantined(qr.Cell.Key())
	default:
		return fmt.Errorf("dispatch: unknown journal record kind %q", rec.Kind)
	}
	return nil
}

func (c *Coordinator) newRun(id string, wire StudySpec) (*studyRun, error) {
	spec, err := wire.Spec()
	if err != nil {
		return nil, err
	}
	return &studyRun{
		id:                id,
		wire:              wire,
		spec:              spec,
		asm:               core.NewAssembler(spec),
		table:             newLeaseTable(spec.Cells(), c.opt.LeaseTTL, c.opt.MaxAttempts, c.opt.WorkerBudget),
		subs:              map[chan StatusEvent]struct{}{},
		cacheByWorker:     map[string]artcache.Stats{},
		prunedDUEByWorker: map[string]int{},
	}, nil
}

// Submit registers a study. Submission is idempotent by content: the
// same spec maps to the same ID, and resubmitting it reports the
// existing run instead of restarting it.
func (c *Coordinator) Submit(wire StudySpec) (SubmitResponse, error) {
	wire, err := wire.Normalize()
	if err != nil {
		return SubmitResponse{}, err
	}
	id := wire.ID()

	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return SubmitResponse{}, fmt.Errorf("dispatch: coordinator is closed")
	}
	if r, ok := c.studies[id]; ok {
		return SubmitResponse{ID: id, Cells: r.asm.Total(), Existing: true}, nil
	}
	r, err := c.newRun(id, wire)
	if err != nil {
		return SubmitResponse{}, err
	}
	if err := c.jw.Append(kindSubmit, submitRecord{ID: id, Spec: wire}); err != nil {
		return SubmitResponse{}, fmt.Errorf("dispatch: journal submit: %w", err)
	}
	c.studies[id] = r
	c.opt.Logf("study %s submitted: %d cells", id, r.asm.Total())
	return SubmitResponse{ID: id, Cells: r.asm.Total()}, nil
}

// Lease grants a batch of pending cells to a worker. A nil grant with
// a nil error means no work is available right now (everything leased,
// the worker is suspended, or the coordinator is draining) — the
// worker should back off and poll again.
func (c *Coordinator) Lease(req LeaseRequest) (*LeaseGrant, error) {
	if req.Worker == "" {
		return nil, fmt.Errorf("dispatch: lease request needs a worker name")
	}
	max := req.Max
	if max <= 0 {
		max = c.opt.LeaseCells
	}
	now := c.opt.Clock()

	c.mu.Lock()
	defer c.mu.Unlock()
	if c.draining || c.closed {
		return nil, nil
	}
	c.sweep(now)
	for _, id := range c.studyIDs() {
		r := c.studies[id]
		if r.result != nil {
			continue
		}
		l := r.table.acquire(req.Worker, max, now)
		if l == nil {
			continue
		}
		g := &LeaseGrant{
			LeaseID: r.id + "/" + l.id,
			StudyID: r.id,
			Spec:    r.wire,
			TTL:     c.opt.LeaseTTL,
		}
		for _, i := range l.cells {
			g.Cells = append(g.Cells, r.table.slots[i].ref)
		}
		c.opt.Logf("lease %s: %d cells to %s", g.LeaseID, len(g.Cells), req.Worker)
		return g, nil
	}
	return nil, nil
}

// Heartbeat extends a lease. Cancel tells the worker to abandon the
// lease (study finished without it); Known=false means the lease
// expired or predates a coordinator restart — the worker should finish
// and report anyway, since completions are merged by cell key.
func (c *Coordinator) Heartbeat(req HeartbeatRequest) HeartbeatResponse {
	studyID, leaseID := splitLeaseID(req.LeaseID)
	now := c.opt.Clock()

	c.mu.Lock()
	defer c.mu.Unlock()
	r, ok := c.studies[studyID]
	if !ok {
		return HeartbeatResponse{}
	}
	if r.result != nil {
		return HeartbeatResponse{Cancel: true}
	}
	return HeartbeatResponse{Known: r.table.heartbeat(leaseID, now)}
}

// Complete merges a lease's outcomes. Every accepted outcome is
// journaled before it is acknowledged; duplicates (the cell already
// completed under another lease) are counted and discarded. Accepting
// outcomes from expired or unknown leases is deliberate: the compute
// is done, and the merge is idempotent.
func (c *Coordinator) Complete(req CompleteRequest) (CompleteResponse, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	r, ok := c.studies[req.StudyID]
	if !ok {
		return CompleteResponse{}, fmt.Errorf("dispatch: unknown study %s", req.StudyID)
	}
	if !req.Cache.Empty() && req.Worker != "" {
		s := r.cacheByWorker[req.Worker]
		s.Add(req.Cache)
		r.cacheByWorker[req.Worker] = s
	}
	var resp CompleteResponse
	for _, o := range req.Outcomes {
		key := o.Cell.Key()
		if _, ok := r.table.slot(key); !ok {
			return resp, fmt.Errorf("dispatch: cell %s is not in study %s", key, req.StudyID)
		}
		if !r.table.complete(req.Worker, key) {
			resp.Duplicates++
			continue
		}
		if err := c.jw.Append(kindOutcome, outcomeRecord{Study: r.id, Outcome: o}); err != nil {
			// The cell is marked done in soft state but not durable;
			// fail the request so the worker retries the report.
			return resp, fmt.Errorf("dispatch: journal outcome: %w", err)
		}
		accepted, err := r.asm.Add(o)
		if err != nil {
			return resp, err
		}
		if !accepted {
			resp.Duplicates++
			continue
		}
		resp.Accepted++
		if n := o.Result.Counts.PrunedDUE; n > 0 && req.Worker != "" {
			r.prunedDUEByWorker[req.Worker] += n
		}
		c.notify(r, key, req.Worker)
	}
	c.finalize(r)
	return resp, nil
}

// Fail reports that a worker could not compute its leased cells. Each
// cell returns to the pending pool, or is quarantined once its grant
// count reaches MaxAttempts.
func (c *Coordinator) Fail(req FailRequest) error {
	now := c.opt.Clock()

	c.mu.Lock()
	defer c.mu.Unlock()
	r, ok := c.studies[req.StudyID]
	if !ok {
		return fmt.Errorf("dispatch: unknown study %s", req.StudyID)
	}
	c.opt.Logf("lease %s failed on %s: %s", req.LeaseID, req.Worker, req.Err)
	for _, ref := range req.Cells {
		if r.table.fail(req.Worker, ref.Key(), req.Err, now) {
			if err := c.quarantine(r, ref); err != nil {
				return err
			}
		}
	}
	c.finalize(r)
	return nil
}

// Sweep expires overdue leases across all studies, reassigning their
// cells and quarantining the ones out of attempts. The server calls
// this periodically; tests call it with a synthetic clock.
func (c *Coordinator) Sweep() {
	now := c.opt.Clock()
	c.mu.Lock()
	defer c.mu.Unlock()
	c.sweep(now)
}

func (c *Coordinator) sweep(now time.Time) {
	for _, id := range c.studyIDs() {
		r := c.studies[id]
		if r.result != nil {
			continue
		}
		for _, ref := range r.table.expire(now) {
			if err := c.quarantine(r, ref); err != nil {
				c.opt.Logf("study %s: quarantine %s: %v", r.id, ref, err)
			}
		}
		c.finalize(r)
	}
}

// quarantine journals and merges a terminal failure for one cell.
// Caller holds c.mu and has already moved the slot to cellQuarantined.
func (c *Coordinator) quarantine(r *studyRun, ref core.CellRef) error {
	s, _ := r.table.slot(ref.Key())
	f := core.Failure{
		March: ref.March, Bench: ref.Bench, Level: ref.Level, Target: ref.Target,
		Stage:   "dispatch",
		Err:     s.lastErr,
		Retries: s.attempts - 1,
	}
	if err := c.jw.Append(kindQuarantine, quarantineRecord{Study: r.id, Cell: ref, Failure: f}); err != nil {
		return fmt.Errorf("dispatch: journal quarantine: %w", err)
	}
	if _, err := r.asm.Quarantine(ref, f); err != nil {
		return err
	}
	c.opt.Logf("study %s: cell %s quarantined after %d attempts: %s", r.id, ref, s.attempts, s.lastErr)
	c.notify(r, ref.Key(), "")
	return nil
}

// finalize renders the study bytes once every cell is terminal.
// Caller holds c.mu.
func (c *Coordinator) finalize(r *studyRun) {
	if r.result != nil || !r.asm.Complete() {
		return
	}
	st, err := r.asm.Study()
	if err != nil {
		c.opt.Logf("study %s: finalize: %v", r.id, err)
		return
	}
	data, err := json.MarshalIndent(st, "", " ")
	if err != nil {
		c.opt.Logf("study %s: finalize: %v", r.id, err)
		return
	}
	r.result = data
	c.opt.Logf("study %s complete: %d cells, %d quarantined", r.id, r.asm.Total(), r.table.quarantined)
	c.notify(r, "", "")
	for ch := range r.subs { //lint:ordered closing every subscriber; order is invisible
		close(ch)
		delete(r.subs, ch)
	}
}

// notify fans a status event out to the study's subscribers without
// blocking the coordinator: a subscriber that cannot keep up misses
// intermediate events, not the terminal one (Subscribe's final
// snapshot covers it). Caller holds c.mu.
func (c *Coordinator) notify(r *studyRun, cell, worker string) {
	ev := c.status(r)
	ev.Cell = cell
	ev.Worker = worker
	for ch := range r.subs { //lint:ordered fan-out of one event; order is invisible
		select {
		case ch <- ev:
		default:
		}
	}
}

func (c *Coordinator) status(r *studyRun) StatusEvent {
	done, leased, quarantined, workers := r.table.counts()
	ev := StatusEvent{
		Study: r.id, State: r.state(),
		Done: done, Total: r.asm.Total(),
		Leased: leased, Quarantined: quarantined, Workers: workers,
	}
	if len(r.cacheByWorker) > 0 {
		// Copy the map: the event outlives c.mu (subscribers marshal it
		// later) while Complete keeps mutating the original.
		ev.CacheByWorker = make(map[string]artcache.Stats, len(r.cacheByWorker))
		for name, s := range r.cacheByWorker { //lint:ordered commutative sum into a copied map
			ev.Cache.Add(s)
			ev.CacheByWorker[name] = s
		}
	}
	if len(r.prunedDUEByWorker) > 0 {
		ev.PrunedDUEByWorker = make(map[string]int, len(r.prunedDUEByWorker))
		for name, n := range r.prunedDUEByWorker { //lint:ordered commutative sum into a copied map
			ev.PrunedDUE += n
			ev.PrunedDUEByWorker[name] = n
		}
	}
	return ev
}

// Status returns a study's progress snapshot.
func (c *Coordinator) Status(id string) (StatusEvent, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	r, ok := c.studies[id]
	if !ok {
		return StatusEvent{}, false
	}
	return c.status(r), true
}

// Result returns a completed study's Save bytes. ok is false while the
// study is unknown or still running.
func (c *Coordinator) Result(id string) (data []byte, ok bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	r, exists := c.studies[id]
	if !exists || r.result == nil {
		return nil, false
	}
	return r.result, true
}

// Subscribe registers for a study's progress events. The channel is
// closed when the study completes (or when cancel is called); a study
// already complete returns an immediately-closed channel.
func (c *Coordinator) Subscribe(id string) (events <-chan StatusEvent, cancel func(), err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	r, ok := c.studies[id]
	if !ok {
		return nil, nil, fmt.Errorf("dispatch: unknown study %s", id)
	}
	ch := make(chan StatusEvent, 64)
	if r.result != nil {
		close(ch)
		return ch, func() {}, nil
	}
	r.subs[ch] = struct{}{}
	return ch, func() {
		c.mu.Lock()
		defer c.mu.Unlock()
		if _, live := r.subs[ch]; live {
			delete(r.subs, ch)
			close(ch)
		}
	}, nil
}

// Drain stops granting new leases and waits for every submitted study
// to finish or the context to expire. Used for graceful shutdown:
// in-flight leases get their TTL to report before the process exits.
func (c *Coordinator) Drain(ctx context.Context) error {
	c.mu.Lock()
	c.draining = true
	c.mu.Unlock()
	tick := time.NewTicker(100 * time.Millisecond)
	defer tick.Stop()
	for {
		c.mu.Lock()
		idle := true
		for _, r := range c.studies { //lint:ordered order-insensitive conjunction
			if r.result == nil {
				idle = false
			}
		}
		c.mu.Unlock()
		if idle {
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-tick.C:
		}
	}
}

// Close flushes and closes the journal. Leases outstanding at close
// are abandoned; a reopened coordinator re-leases their cells.
func (c *Coordinator) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil
	}
	c.closed = true
	for _, r := range c.studies { //lint:ordered closing every subscriber; order is invisible
		for ch := range r.subs { //lint:ordered closing every subscriber; order is invisible
			close(ch)
			delete(r.subs, ch)
		}
	}
	return c.jw.Close()
}

// studyIDs returns the study IDs in stable order, so lease grants and
// sweeps don't depend on map iteration.
func (c *Coordinator) studyIDs() []string {
	ids := make([]string, 0, len(c.studies))
	for id := range c.studies { //lint:ordered sorted below
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// splitLeaseID separates a wire lease ID ("study/lease") back into its
// parts; heartbeats carry only the combined ID.
func splitLeaseID(id string) (study, lease string) {
	for i := len(id) - 1; i >= 0; i-- {
		if id[i] == '/' {
			return id[:i], id[i+1:]
		}
	}
	return "", id
}
