package interp

import (
	"strings"
	"testing"

	"sevsim/internal/lang"
)

func runSrc(t *testing.T, src string, xlen int) []uint64 {
	t.Helper()
	prog, err := lang.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Run(prog, xlen, 10_000_000)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestBasicEvaluation(t *testing.T) {
	out := runSrc(t, `func main() { out(2 + 3 * 4); out(10 % 3); }`, 32)
	if out[0] != 14 || out[1] != 1 {
		t.Errorf("out = %v", out)
	}
}

func TestWidthDependentWrap(t *testing.T) {
	src := `func main() { var int big = 2000000000; out(big * 3); }`
	out32 := runSrc(t, src, 32)
	out64 := runSrc(t, src, 64)
	if out64[0] != 6000000000 {
		t.Errorf("64-bit product = %d", out64[0])
	}
	// 6e9 mod 2^32 = 1705032704 on 32-bit.
	if out32[0] != 1705032704 {
		t.Errorf("32-bit product = %d", out32[0])
	}
}

func TestDivisionCornerCases(t *testing.T) {
	out := runSrc(t, `func main() {
		out(7 / 0);
		out(7 % 0);
		var int minint = 1 << 31;
		out(minint / (0 - 1));
		out(minint % (0 - 1));
	}`, 32)
	if int32(uint32(out[0])) != -1 {
		t.Errorf("div by zero = %#x, want -1", out[0])
	}
	if out[1] != 7 {
		t.Errorf("rem by zero = %d, want 7", out[1])
	}
	if int32(uint32(out[2])) != -1<<31 {
		t.Errorf("minint/-1 = %#x", out[2])
	}
	if out[3] != 0 {
		t.Errorf("minint%%-1 = %d", out[3])
	}
}

func TestShiftMasking(t *testing.T) {
	// Shift counts use only the low log2(xlen) bits, like the hardware.
	out32 := runSrc(t, `func main() { out(1 << 33); }`, 32)
	if out32[0] != 2 { // 33 & 31 = 1
		t.Errorf("32-bit 1<<33 = %d, want 2", out32[0])
	}
	out64 := runSrc(t, `func main() { out(1 << 33); }`, 64)
	if out64[0] != 1<<33 {
		t.Errorf("64-bit 1<<33 = %d", out64[0])
	}
}

func TestArrayBoundsChecked(t *testing.T) {
	prog, err := lang.Parse(`global int a[4]; func main() { a[5] = 1; }`)
	if err != nil {
		t.Fatal(err)
	}
	_, err = Run(prog, 32, 1000)
	if err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Errorf("expected bounds error, got %v", err)
	}
}

func TestStepLimit(t *testing.T) {
	prog, err := lang.Parse(`func main() { while (1) { } }`)
	if err != nil {
		t.Fatal(err)
	}
	_, err = Run(prog, 32, 1000)
	if err != ErrStepLimit {
		t.Errorf("expected step limit, got %v", err)
	}
}

func TestArrayAliasing(t *testing.T) {
	// Array parameters alias the caller's storage.
	out := runSrc(t, `
global int g[4];
func set(int a[], int i, int v) { a[i] = v; }
func main() {
	set(g, 2, 99);
	out(g[2]);
	var int local[4];
	set(local, 0, 7);
	out(local[0]);
}`, 32)
	if out[0] != 99 || out[1] != 7 {
		t.Errorf("out = %v", out)
	}
}

func TestRecursionAndGlobals(t *testing.T) {
	out := runSrc(t, `
global int depth;
func down(int n) int {
	if (n > depth) { depth = n; }
	if (n == 0) { return 0; }
	return down(n - 1) + n;
}
func main() {
	out(down(10));
	out(depth);
}`, 64)
	if out[0] != 55 || out[1] != 10 {
		t.Errorf("out = %v", out)
	}
}

func TestLogicalOperatorsNormalize(t *testing.T) {
	out := runSrc(t, `func main() {
		out(5 && 3);
		out(0 || 7);
		out(!5);
		out(!0);
	}`, 32)
	want := []uint64{1, 1, 0, 1}
	for i := range want {
		if out[i] != want[i] {
			t.Errorf("out[%d] = %d, want %d", i, out[i], want[i])
		}
	}
}
