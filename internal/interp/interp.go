// Package interp is a reference interpreter for MiniC with
// width-parameterized integer semantics that exactly match the SEV ISA
// (wrapping arithmetic at XLEN, RISC-V-style division by zero, masked
// shift counts). It serves as the differential-testing oracle for the
// compiler and the processor model: for every benchmark and optimization
// level, the compiled binary's output stream must equal the
// interpreter's.
package interp

import (
	"errors"
	"fmt"

	"sevsim/internal/arith"
	"sevsim/internal/lang"
)

// ErrStepLimit is returned when execution exceeds the step budget.
var ErrStepLimit = errors.New("interp: step limit exceeded")

// Run interprets the program with the given machine word width and
// returns the values emitted by out(). maxSteps bounds statement
// executions to guard against runaway programs.
func Run(prog *lang.Program, xlen int, maxSteps int64) ([]uint64, error) {
	in := &interp{prog: prog, xlen: xlen, maxSteps: maxSteps,
		globals: map[*lang.Symbol][]int64{}}
	for _, g := range prog.Globals {
		n := g.Sym.ArraySize
		if n == 0 {
			n = 1
		}
		in.globals[g.Sym] = make([]int64, n)
	}
	_, err := in.call(prog.ByName["main"], nil)
	if err != nil {
		return in.output, err
	}
	return in.output, nil
}

type interp struct {
	prog     *lang.Program
	xlen     int
	globals  map[*lang.Symbol][]int64
	output   []uint64
	steps    int64
	maxSteps int64
}

// frame holds one activation's scalar slots and array storage, indexed
// by Symbol.Index.
type frame struct {
	vals   []int64
	arrays [][]int64 // nil for scalars; aliases for array params
}

type control int

const (
	ctlNext control = iota
	ctlBreak
	ctlContinue
	ctlReturn
)

func (in *interp) wrap(v int64) int64 { return arith.Wrap(in.xlen, v) }

func (in *interp) mask(v int64) uint64 {
	if in.xlen == 64 {
		return uint64(v)
	}
	return uint64(uint32(v))
}

func (in *interp) tick() error {
	in.steps++
	if in.steps > in.maxSteps {
		return ErrStepLimit
	}
	return nil
}

// call runs fn; array arguments are passed as aliased slices.
func (in *interp) call(fn *lang.FuncDecl, args []arg) (int64, error) {
	fr := &frame{
		vals:   make([]int64, len(fn.Syms)),
		arrays: make([][]int64, len(fn.Syms)),
	}
	for i, p := range fn.Params {
		if p.IsArray {
			fr.arrays[p.Sym.Index] = args[i].arr
		} else {
			fr.vals[p.Sym.Index] = args[i].val
		}
	}
	ctl, val, err := in.block(fn.Body, fr)
	if err != nil {
		return 0, err
	}
	if ctl == ctlReturn {
		return val, nil
	}
	return 0, nil
}

type arg struct {
	val int64
	arr []int64
}

func (in *interp) block(b *lang.BlockStmt, fr *frame) (control, int64, error) {
	for _, s := range b.Stmts {
		ctl, val, err := in.stmt(s, fr)
		if err != nil || ctl != ctlNext {
			return ctl, val, err
		}
	}
	return ctlNext, 0, nil
}

func (in *interp) stmt(s lang.Stmt, fr *frame) (control, int64, error) {
	if err := in.tick(); err != nil {
		return ctlNext, 0, err
	}
	switch s := s.(type) {
	case *lang.BlockStmt:
		return in.block(s, fr)
	case *lang.DeclStmt:
		d := s.Decl
		if d.Sym.Kind == lang.SymLocalArray {
			fr.arrays[d.Sym.Index] = make([]int64, d.Sym.ArraySize)
		} else if d.Init != nil {
			v, err := in.eval(d.Init, fr)
			if err != nil {
				return ctlNext, 0, err
			}
			fr.vals[d.Sym.Index] = v
		}
		return ctlNext, 0, nil
	case *lang.AssignStmt:
		v, err := in.eval(s.Value, fr)
		if err != nil {
			return ctlNext, 0, err
		}
		if s.Index == nil {
			in.storeScalar(s.Target, fr, v)
			return ctlNext, 0, nil
		}
		idx, err := in.eval(s.Index, fr)
		if err != nil {
			return ctlNext, 0, err
		}
		a := in.arrayOf(s.Target, fr)
		if idx < 0 || idx >= int64(len(a)) {
			return ctlNext, 0, fmt.Errorf("interp: index %d out of range for %q (len %d)", idx, s.Target.Name, len(a))
		}
		a[idx] = v
		return ctlNext, 0, nil
	case *lang.IfStmt:
		c, err := in.eval(s.Cond, fr)
		if err != nil {
			return ctlNext, 0, err
		}
		if c != 0 {
			return in.block(s.Then, fr)
		}
		if s.Else != nil {
			return in.stmt(s.Else, fr)
		}
		return ctlNext, 0, nil
	case *lang.WhileStmt:
		for {
			c, err := in.eval(s.Cond, fr)
			if err != nil {
				return ctlNext, 0, err
			}
			if c == 0 {
				return ctlNext, 0, nil
			}
			ctl, val, err := in.block(s.Body, fr)
			if err != nil {
				return ctl, val, err
			}
			switch ctl {
			case ctlBreak:
				return ctlNext, 0, nil
			case ctlReturn:
				return ctl, val, nil
			}
			if err := in.tick(); err != nil {
				return ctlNext, 0, err
			}
		}
	case *lang.ForStmt:
		if s.Init != nil {
			if ctl, val, err := in.stmt(s.Init, fr); err != nil || ctl != ctlNext {
				return ctl, val, err
			}
		}
		for {
			if s.Cond != nil {
				c, err := in.eval(s.Cond, fr)
				if err != nil {
					return ctlNext, 0, err
				}
				if c == 0 {
					return ctlNext, 0, nil
				}
			}
			ctl, val, err := in.block(s.Body, fr)
			if err != nil {
				return ctl, val, err
			}
			if ctl == ctlBreak {
				return ctlNext, 0, nil
			}
			if ctl == ctlReturn {
				return ctl, val, nil
			}
			if s.Post != nil {
				if ctl, val, err := in.stmt(s.Post, fr); err != nil || ctl != ctlNext {
					return ctl, val, err
				}
			}
			if err := in.tick(); err != nil {
				return ctlNext, 0, err
			}
		}
	case *lang.ReturnStmt:
		if s.Value == nil {
			return ctlReturn, 0, nil
		}
		v, err := in.eval(s.Value, fr)
		return ctlReturn, v, err
	case *lang.BreakStmt:
		return ctlBreak, 0, nil
	case *lang.ContinueStmt:
		return ctlContinue, 0, nil
	case *lang.OutStmt:
		v, err := in.eval(s.Value, fr)
		if err != nil {
			return ctlNext, 0, err
		}
		in.output = append(in.output, in.mask(v))
		return ctlNext, 0, nil
	case *lang.ExprStmt:
		_, err := in.eval(s.X, fr)
		return ctlNext, 0, err
	}
	return ctlNext, 0, fmt.Errorf("interp: unknown statement %T", s)
}

func (in *interp) storeScalar(sym *lang.Symbol, fr *frame, v int64) {
	switch sym.Kind {
	case lang.SymGlobal:
		in.globals[sym][0] = in.wrap(v)
	default:
		fr.vals[sym.Index] = in.wrap(v)
	}
}

func (in *interp) loadScalar(sym *lang.Symbol, fr *frame) int64 {
	switch sym.Kind {
	case lang.SymGlobal:
		return in.globals[sym][0]
	default:
		return fr.vals[sym.Index]
	}
}

func (in *interp) arrayOf(sym *lang.Symbol, fr *frame) []int64 {
	switch sym.Kind {
	case lang.SymGlobalArray:
		return in.globals[sym]
	default:
		return fr.arrays[sym.Index]
	}
}

func (in *interp) eval(e lang.Expr, fr *frame) (int64, error) {
	switch e := e.(type) {
	case *lang.NumExpr:
		return in.wrap(e.Value), nil
	case *lang.VarExpr:
		return in.loadScalar(e.Sym, fr), nil
	case *lang.IndexExpr:
		idx, err := in.eval(e.Index, fr)
		if err != nil {
			return 0, err
		}
		a := in.arrayOf(e.Sym, fr)
		if idx < 0 || idx >= int64(len(a)) {
			return 0, fmt.Errorf("interp: index %d out of range for %q (len %d)", idx, e.Sym.Name, len(a))
		}
		return a[idx], nil
	case *lang.UnExpr:
		v, err := in.eval(e.X, fr)
		if err != nil {
			return 0, err
		}
		switch e.Op {
		case lang.OpNeg:
			return in.wrap(-v), nil
		case lang.OpNot:
			return in.wrap(^v), nil
		default: // OpLNot
			if v == 0 {
				return 1, nil
			}
			return 0, nil
		}
	case *lang.BinExpr:
		if e.Op == lang.OpLAnd || e.Op == lang.OpLOr {
			l, err := in.eval(e.L, fr)
			if err != nil {
				return 0, err
			}
			if e.Op == lang.OpLAnd && l == 0 {
				return 0, nil
			}
			if e.Op == lang.OpLOr && l != 0 {
				return 1, nil
			}
			r, err := in.eval(e.R, fr)
			if err != nil {
				return 0, err
			}
			if r != 0 {
				return 1, nil
			}
			return 0, nil
		}
		l, err := in.eval(e.L, fr)
		if err != nil {
			return 0, err
		}
		r, err := in.eval(e.R, fr)
		if err != nil {
			return 0, err
		}
		return in.binop(e.Op, l, r), nil
	case *lang.CallExpr:
		args := make([]arg, len(e.Args))
		for i, ax := range e.Args {
			if e.Func.Params[i].IsArray {
				v := ax.(*lang.VarExpr)
				args[i] = arg{arr: in.arrayOf(v.Sym, fr)}
				continue
			}
			v, err := in.eval(ax, fr)
			if err != nil {
				return 0, err
			}
			args[i] = arg{val: v}
		}
		return in.call(e.Func, args)
	}
	return 0, fmt.Errorf("interp: unknown expression %T", e)
}

// binop evaluates a (non-short-circuit) binary operation with SEV ISA
// semantics.
func (in *interp) binop(op lang.BinOp, l, r int64) int64 {
	return arith.Bin(in.xlen, op, l, r)
}
