// Package cpu implements the sevsim out-of-order processor core: a
// seven-structure superscalar pipeline (fetch queue, rename map + free
// list, reorder buffer, issue queue, load queue, store queue, physical
// register file) with bimodal branch prediction, speculative execution,
// store-to-load forwarding, and precise exceptions.
//
// Every named hardware structure the paper injects faults into is an
// authoritative array in this package: execution reads its operands from
// the physical register file values, wakeup matches the issue-queue tag
// bits, loads use the address bits held in their load-queue entry, and
// commit trusts the reorder buffer's own fields. FlipBit therefore
// perturbs the exact state the pipeline runs on.
package cpu

// Config describes one core's resources and timing.
type Config struct {
	Name        string
	XLEN        int // machine word width: 32 or 64
	NumArchRegs int // architectural registers exposed to software
	NumPhysRegs int // physical register file size

	ROBSize int
	IQSize  int
	LQSize  int
	SQSize  int

	FetchWidth  int
	IssueWidth  int
	CommitWidth int
	WBWidth     int

	FetchQueueSize int

	ALULat int
	MulLat int
	DivLat int

	BimodalSize int // entries of 2-bit counters; power of two
	BTBSize     int // power of two
	RASSize     int

	// StoreForwarding enables store-to-load forwarding from the store
	// queue (ablation knob; on in the standard configurations).
	StoreForwarding bool
}

// Validate panics (assert) if the configuration is internally
// inconsistent; used at machine construction time.
func (c Config) wordBytes() int { return c.XLEN / 8 }

// maskTo truncates a value to the configured word width.
func (c Config) maskTo(v uint64) uint64 {
	if c.XLEN == 64 {
		return v
	}
	return v & 0xffffffff
}

// signExtTo interprets the low XLEN bits of v as signed and returns the
// sign-extended 64-bit representation used internally.
func (c Config) signExtTo(v uint64) int64 {
	if c.XLEN == 64 {
		return int64(v)
	}
	return int64(int32(uint32(v)))
}
