package cpu

import (
	"math/bits"

	"sevsim/internal/isa"
	"sevsim/internal/mem"
	"sevsim/internal/simerr"
)

// Stats aggregates pipeline events and structure occupancy over a run.
// Occupancy sums divided by cycles give average utilization, which is
// the mechanism behind the paper's AVF observations (e.g. optimized code
// keeps more physical registers live).
type Stats struct {
	Cycles      uint64
	Committed   uint64
	Fetched     uint64
	Mispredicts uint64
	Branches    uint64
	Loads       uint64
	Stores      uint64

	ROBOccupancy uint64 // sum over cycles of occupied ROB entries
	IQOccupancy  uint64
	LQOccupancy  uint64
	SQOccupancy  uint64
	PRFLive      uint64 // sum over cycles of allocated physical registers
}

// IPC returns committed instructions per cycle.
func (s Stats) IPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.Committed) / float64(s.Cycles)
}

// predecodeSlots sizes the direct-mapped predecode memo (fetch.go). A
// power of two; 4096 entries cover every distinct word of the built-in
// benchmarks with few conflicts.
const predecodeSlots = 4096

// Core is one out-of-order processor core.
//
// The fixed-size hot state lives in the embedded soa slabs
// (structures.go); ring positions, counters, and the variable-length
// queues are ordinary fields. Every field is either carried through
// Snapshot/Restore and compared by StateEquals, or annotated with why
// it is not; the snapshotcover and equalitycover passes of cmd/sevlint
// enforce this, so a new field cannot silently break the checkpoint
// and convergence guarantees.
type Core struct {
	cfg Config //snapshot:skip immutable configuration, fixed at construction

	// Wiring to the shared memory hierarchy: pointers, not state. The
	// structures they reach are snapshotted by machine.Snapshot.
	memory *mem.Memory //snapshot:skip hierarchy wiring; snapshotted at machine level
	icache *mem.Cache  //snapshot:skip hierarchy wiring; snapshotted at machine level
	dcache *mem.Cache  //snapshot:skip hierarchy wiring; snapshotted at machine level

	// Flat register/queue/predictor state (slabs + views).
	soa

	// Ring positions and incrementally maintained counters over the
	// soa arrays. freeCount is the live length of the freeBack stack;
	// entries past it are dead.
	robHead   int
	robCount  int
	lqHead    int
	lqCount   int
	sqHead    int
	sqCount   int
	rasTop    int
	freeCount int

	fetchPC     uint64
	fetchQ      []fetchSlot
	fetchStall  uint64
	fetchFrozen bool // stop fetching: fetch fault or HALT seen

	// fetchHead is the start of the logical fetch queue within fetchQ:
	// rename consumes by advancing it and fetchPop compacts lazily, so
	// a pop is an index increment instead of a slide of the slice. The
	// logical queue every other layer sees is fetchQ[fetchHead:].
	fetchHead int // representation offset: Snapshot captures fetchQ[fetchHead:], Restore resets it to zero

	inflight []inflightOp

	cycle    uint64
	seq      uint64
	expectPC uint64
	halted   bool
	crash    *simerr.Crash

	output    []uint64
	maxOutput int //snapshot:skip immutable output-ring bound, fixed at construction

	//equality:dead reassigned before every use within a cycle; never read across a cycle boundary
	squashedAfter uint64

	// Incrementally maintained occupancy counters (hot path).
	iqCount int
	prfLive int

	// iqValid mirrors the qValid bits of iqFlags, one bit per slot, so
	// the per-cycle insert/issue/wakeup scans walk set bits instead of
	// every slot. Sound because faults never flip a valid bit (see
	// faults.go); IQSize <= 64 is asserted at construction.
	iqValid uint64 //snapshot:skip derived index over the qValid bits of iqFlags; Restore rebuilds it from the slab

	// iqReady marks the valid, unissued entries whose two ready bits are
	// both set — exactly the candidates the issue scan used to find by
	// walking every slot. iqInsert/wakeup/issue/squash maintain it, and
	// FlipBit re-derives a slot's bit after flipping a ready bit.
	iqReady uint64 //snapshot:skip derived index over iqFlags ready state; Restore rebuilds it from the slab

	// lqPending marks load-queue slots whose flag byte reads "address
	// known, not yet performed" (valid|addrReady, done and inflight
	// clear) — the entries loadStep can act on. Bits are meaningful only
	// inside the occupied ring window; loadStep masks with ringMask.
	lqPending uint64 //snapshot:skip derived index over lqFlags state bits; Restore rebuilds it from the slab

	// Memoized bounds of the executable region serving fetches: a pc
	// with pc&3 == 0 inside [fetchSpanLo, fetchSpanHi] needs no
	// CheckFetch walk. The address map is immutable after program load.
	fetchSpanLo uint64 //snapshot:skip memo over the immutable executable mapping; misses fall back to Memory.CheckFetch
	fetchSpanHi uint64 //snapshot:skip memo over the immutable executable mapping; misses fall back to Memory.CheckFetch

	// Direct-mapped predecode memo: decWords[i] holds the last word
	// decoded into slot i, decInstrs[i] its decode. Every slot always
	// holds a consistent (word, decode-of-word) pair, so a hit — even
	// on a fault-flipped word — returns exactly isa.Decode(word).
	decWords  []uint32    //snapshot:skip memo of the pure function isa.Decode; hits depend only on the fetched word
	decInstrs []isa.Instr //snapshot:skip memo of the pure function isa.Decode; hits depend only on the fetched word

	// Scratch buffers reused across cycles to avoid per-cycle allocation.
	dueBuf  []int        //snapshot:skip scratch, reset with [:0] before every use
	opsBuf  []inflightOp //snapshot:skip scratch, reset with [:0] before every use
	candBuf []int        //snapshot:skip scratch, reset with [:0] before every use

	// commitHook, when non-nil, observes every committed instruction in
	// program order (see SetCommitHook).
	commitHook func(CommitEvent) //snapshot:skip observer wiring, not simulated state

	//equality:dead event counters; never fed back into execution or classification (a converged run may carry different counts)
	Stats Stats
}

// NewCore builds a core over the given memory system, with fetch
// starting at entry.
func NewCore(cfg Config, memory *mem.Memory, icache, dcache *mem.Cache, entry uint64) *Core {
	if cfg.IQSize > 64 {
		simerr.Assertf("cpu: IQSize %d exceeds the 64-slot issue-queue valid-mask limit", cfg.IQSize)
	}
	if cfg.LQSize > 64 {
		simerr.Assertf("cpu: LQSize %d exceeds the 64-slot load-queue pending-mask limit", cfg.LQSize)
	}
	c := &Core{
		cfg:       cfg,
		memory:    memory,
		icache:    icache,
		dcache:    dcache,
		fetchPC:   entry,
		expectPC:  entry,
		maxOutput: 1 << 20,
	}
	c.carve(&c.cfg)
	for a := 0; a < cfg.NumArchRegs; a++ {
		c.rat[a] = uint16(a)
		c.prfReady[a] = 1
		c.prfAlloc[a] = 1
	}
	c.prfLive = cfg.NumArchRegs
	for p := cfg.NumPhysRegs - 1; p >= cfg.NumArchRegs; p-- {
		c.freeBack[c.freeCount] = uint16(p)
		c.freeCount++
	}
	for i := range c.bimodal {
		c.bimodal[i] = 1 // weakly not-taken
	}
	c.fetchSpanLo, c.fetchSpanHi = 1, 0 // empty span until the first fetch resolves it
	c.decWords = make([]uint32, predecodeSlots)
	c.decInstrs = make([]isa.Instr, predecodeSlots)
	zero := isa.Decode(0)
	for i := range c.decInstrs {
		c.decInstrs[i] = zero
	}
	return c
}

// SetReg writes an architectural register before the run starts (used by
// the loader to initialize the stack pointer).
func (c *Core) SetReg(arch uint8, val uint64) {
	c.prf[c.rat[arch]] = c.cfg.maskTo(val)
}

// Output returns the values emitted by committed OUT instructions.
func (c *Core) Output() []uint64 { return c.output }

// Halted reports whether the program has committed HALT.
func (c *Core) Halted() bool { return c.halted }

// Crash returns the crash record if the program died, else nil.
func (c *Core) Crash() *simerr.Crash { return c.crash }

// Cycle returns the current cycle number.
func (c *Core) Cycle() uint64 { return c.cycle }

// Step advances the machine one cycle. It returns true while the
// simulation should continue (not halted, not crashed).
func (c *Core) Step() bool {
	if c.halted || c.crash != nil {
		return false
	}
	c.commit()
	if c.halted || c.crash != nil {
		c.cycle++
		c.Stats.Cycles = c.cycle
		return false
	}
	c.writeback()
	c.loadStep()
	c.issue()
	c.rename()
	c.fetch()
	c.accountOccupancy()
	c.cycle++
	c.Stats.Cycles = c.cycle
	return true
}

func (c *Core) accountOccupancy() {
	c.Stats.ROBOccupancy += uint64(c.robCount)
	c.Stats.LQOccupancy += uint64(c.lqCount)
	c.Stats.SQOccupancy += uint64(c.sqCount)
	c.Stats.IQOccupancy += uint64(c.iqCount)
	c.Stats.PRFLive += uint64(c.prfLive)
}

// --- ring helpers ---------------------------------------------------------

// robAlloc claims the next ROB slot and returns the raw slot index.
// The caller must write every per-entry array at that index — writing
// zero where a field is unused — so recycled-slot bytes stay
// deterministic without a zeroing pass on the hot path.
func (c *Core) robAlloc() int {
	idx := c.robHead + c.robCount
	if idx >= c.cfg.ROBSize {
		idx -= c.cfg.ROBSize
	}
	c.robCount++
	return idx
}

// --- register helpers ----------------------------------------------------

func (c *Core) readPhys(p uint16) uint64 {
	if int(p) >= c.cfg.NumPhysRegs {
		simerr.Assertf("cpu: read of physical register %d outside file of %d", p, c.cfg.NumPhysRegs)
	}
	return c.prf[p]
}

func (c *Core) writePhys(p uint16, v uint64) {
	if int(p) >= c.cfg.NumPhysRegs {
		simerr.Assertf("cpu: write of physical register %d outside file of %d", p, c.cfg.NumPhysRegs)
	}
	c.prf[p] = c.cfg.maskTo(v)
	c.prfReady[p] = 1
}

func (c *Core) popFree() uint16 {
	p := c.freeBack[c.freeCount-1]
	c.freeCount--
	if int(p) >= c.cfg.NumPhysRegs || c.prfAlloc[p] != 0 {
		simerr.Assertf("cpu: free list produced corrupt register %d", p)
	}
	c.prfAlloc[p] = 1
	c.prfReady[p] = 0
	c.prfLive++
	return p
}

func (c *Core) freePhys(p uint16) {
	if int(p) >= c.cfg.NumPhysRegs || p == 0 || c.prfAlloc[p] == 0 {
		simerr.Assertf("cpu: double free or corrupt free of physical register %d", p)
	}
	c.prfAlloc[p] = 0
	c.prfLive--
	c.freeBack[c.freeCount] = p
	c.freeCount++
}

// robAt validates a (possibly corrupted) ROB index and that the slot
// still belongs to the expected instruction, returning the raw index.
func (c *Core) robAt(idx uint16, seq uint64) int {
	if int(idx) >= c.cfg.ROBSize {
		simerr.Assertf("cpu: ROB index %d out of range", idx)
	}
	if c.robSeq[idx] != seq {
		simerr.Assertf("cpu: ROB entry %d sequence mismatch", idx)
	}
	return int(idx)
}

// --- commit ----------------------------------------------------------------

func (c *Core) commit() {
	for n := 0; n < c.cfg.CommitWidth && c.robCount > 0; n++ {
		h := c.robHead
		flags := c.robFlags[h]
		if flags&rDone == 0 {
			return
		}
		if c.robExc[h] != excNone {
			c.crash = &simerr.Crash{Reason: excName(c.robExc[h]), PC: c.robPC[h]}
			return
		}
		pc := c.robPC[h]
		if pc != c.expectPC {
			simerr.Assertf("cpu: commit PC %#x does not match expected %#x", pc, c.expectPC)
		}
		if flags&rIsBranch != 0 && flags&rResolved == 0 {
			simerr.Assertf("cpu: committing unresolved branch at %#x", pc)
		}
		if flags&rIsStore != 0 {
			if !c.commitStore(h) {
				return // crash recorded
			}
			c.Stats.Stores++
		}
		if flags&rIsLoad != 0 {
			if c.robLQ[h] == badIdx || c.lqCount == 0 || c.lqHead != int(c.robLQ[h]) {
				simerr.Assertf("cpu: LQ drain mismatch at commit")
			}
			c.lqHead++
			if c.lqHead == c.cfg.LQSize {
				c.lqHead = 0
			}
			c.lqCount--
			c.Stats.Loads++
		}
		switch isa.Opcode(c.robOp[h]) {
		case isa.OpOut:
			if len(c.output) < c.maxOutput {
				c.output = append(c.output, c.robOutVal[h])
			}
		case isa.OpHalt:
			c.halted = true
		}
		if c.robArch[h] != noReg {
			c.freePhys(c.robOld[h])
		}
		if flags&rResolved != 0 && flags&rActTaken != 0 {
			c.expectPC = c.robActTgt[h]
		} else {
			c.expectPC = pc + 4
		}
		if c.commitHook != nil {
			c.commitHook(CommitEvent{Cycle: c.cycle, PC: pc, DestArch: c.robArch[h], DestPhys: c.robDest[h]})
		}
		c.robHead++
		if c.robHead == c.cfg.ROBSize {
			c.robHead = 0
		}
		c.robCount--
		c.Stats.Committed++
		if c.halted {
			return
		}
	}
}

// commitStore drains the store-queue head for a committing store. It
// returns false when the store raises a memory fault (crash recorded).
func (c *Core) commitStore(h int) bool {
	sqIdx := c.robSQ[h]
	if sqIdx == badIdx || c.sqCount == 0 || c.sqHead != int(sqIdx) {
		simerr.Assertf("cpu: SQ drain mismatch at commit")
	}
	si := int(sqIdx)
	if c.sqFlags[si]&sValid == 0 || c.sqFlags[si]&sReady == 0 {
		simerr.Assertf("cpu: committing store with invalid SQ entry state")
	}
	if c.sqROB[si] != uint16(c.robHead) {
		simerr.Assertf("cpu: SQ entry ROB linkage corrupt")
	}
	size := uint64(c.sqSize[si])
	addr := c.sqAddr[si]
	if f := c.memory.CheckAccess(addr, size, true); f != nil {
		c.crash = &simerr.Crash{Reason: "store " + f.Kind.String(), Addr: addr, PC: c.robPC[h]}
		return false
	}
	c.dcache.Write(addr, int(size), c.sqData[si])
	c.sqHead++
	if c.sqHead == c.cfg.SQSize {
		c.sqHead = 0
	}
	c.sqCount--
	return true
}

// --- writeback --------------------------------------------------------------

func (c *Core) writeback() {
	// Collect completions due this cycle, oldest first, up to WBWidth.
	due := c.dueBuf[:0]
	for i := range c.inflight {
		if c.inflight[i].DoneAt <= c.cycle {
			due = append(due, i)
		}
	}
	if len(due) == 0 {
		c.dueBuf = due
		return
	}
	// Insertion sort by age: the slice is tiny and this avoids the
	// allocations of sort.Slice in the per-cycle hot path.
	for i := 1; i < len(due); i++ {
		for j := i; j > 0 && c.inflight[due[j]].Seq < c.inflight[due[j-1]].Seq; j-- {
			due[j], due[j-1] = due[j-1], due[j]
		}
	}
	if len(due) > c.cfg.WBWidth {
		due = due[:c.cfg.WBWidth]
	}
	ops := c.opsBuf[:0]
	for _, i := range due {
		ops = append(ops, c.inflight[i])
		c.inflight[i].DoneAt = ^uint64(0) // mark taken
	}
	rest := c.inflight[:0]
	for i := range c.inflight {
		if c.inflight[i].DoneAt != ^uint64(0) {
			rest = append(rest, c.inflight[i])
		}
	}
	c.inflight = rest
	c.dueBuf = due
	c.opsBuf = ops
	// A mispredict squash inside this batch invalidates every younger
	// completion in it; processing them would let a squashed branch
	// redirect the front end.
	c.squashedAfter = ^uint64(0)
	for i := range ops {
		if ops[i].Seq > c.squashedAfter {
			continue
		}
		c.finish(&ops[i])
	}
}

func (c *Core) finish(op *inflightOp) {
	if op.Dest != noPhys {
		c.writePhys(op.Dest, op.Value)
		c.wakeup(op.Dest)
	}
	e := c.robAt(op.ROBIdx, op.Seq)
	c.robFlags[e] |= rDone
	if c.robFlags[e]&rIsBranch != 0 && c.robFlags[e]&rResolved != 0 {
		c.resolveBranch(e)
	}
}

// resolveBranch trains the predictor and squashes on a misprediction.
func (c *Core) resolveBranch(e int) {
	c.Stats.Branches++
	pc := c.robPC[e]
	op := isa.Opcode(c.robOp[e])
	actTaken := c.robFlags[e]&rActTaken != 0
	if op.IsBranch() {
		c.updateCond(pc, actTaken)
	}
	if op == isa.OpJalr {
		c.updateIndirect(pc, c.robActTgt[e])
	}
	next := pc + 4
	if actTaken {
		next = c.robActTgt[e]
	}
	predNext := pc + 4
	if c.robFlags[e]&rPredTaken != 0 {
		predNext = c.robPredTgt[e]
	}
	if next != predNext {
		c.Stats.Mispredicts++
		seq := c.robSeq[e]
		c.squash(seq, next)
		if seq < c.squashedAfter {
			c.squashedAfter = seq
		}
	}
}

func (c *Core) wakeup(tag uint16) {
	// Entries already in iqReady have both ready bits set, so a wakeup
	// cannot change them; only the still-waiting valid entries matter.
	for m := c.iqValid &^ c.iqReady; m != 0; m &= m - 1 {
		i := bits.TrailingZeros64(m)
		f := c.iqFlags[i]
		nf := f
		if nf&qRdy1 == 0 && c.iqSrc1[i] == tag {
			nf |= qRdy1
		}
		if nf&qRdy2 == 0 && c.iqSrc2[i] == tag {
			nf |= qRdy2
		}
		if nf != f {
			c.iqFlags[i] = nf
			if nf&(qIssued|qRdy1|qRdy2) == qRdy1|qRdy2 {
				c.iqReady |= 1 << uint(i)
			}
		}
	}
}

// iqSyncReady re-derives one slot's iqReady bit from its flag byte.
// Fault injection calls it after flipping a ready bit so the derived
// index stays consistent with the slab.
func (c *Core) iqSyncReady(i int) {
	if f := c.iqFlags[i]; f&(qValid|qIssued|qRdy1|qRdy2) == qValid|qRdy1|qRdy2 {
		c.iqReady |= 1 << uint(i)
	} else {
		c.iqReady &^= 1 << uint(i)
	}
}

// lqSyncPending re-derives one slot's lqPending bit from its flag byte.
func (c *Core) lqSyncPending(i int) {
	if f := c.lqFlags[i]; f&(lValid|lAddrReady|lDone|lInflight) == lValid|lAddrReady {
		c.lqPending |= 1 << uint(i)
	} else {
		c.lqPending &^= 1 << uint(i)
	}
}

// ringMask returns a bitmask of the occupied ring slots
// [head, head+count) mod size, for size <= 64.
func ringMask(head, count, size int) uint64 {
	if n := head + count - size; n > 0 {
		// Occupancy wraps: [head, size) plus [0, n).
		return (uint64(1)<<uint(size-head)-1)<<uint(head) | (uint64(1)<<uint(n) - 1)
	}
	return (uint64(1)<<uint(count) - 1) << uint(head)
}

// --- load queue ------------------------------------------------------------

func (c *Core) loadStep() {
	if c.lqCount == 0 {
		return
	}
	// Pending bits outside the occupied window are stale (a fault can
	// repaint a drained slot's flags); the ring mask filters them, and
	// the head-split iteration visits survivors oldest first, matching
	// the original head-to-tail walk (the d-cache LRU clock makes the
	// visit order architecturally visible).
	pend := c.lqPending & ringMask(c.lqHead, c.lqCount, c.cfg.LQSize)
	if pend == 0 {
		return
	}
	headMask := uint64(1)<<uint(c.lqHead) - 1
	for _, part := range [2]uint64{pend &^ headMask, pend & headMask} {
		for ; part != 0; part &= part - 1 {
			li := bits.TrailingZeros64(part)
			c.loadOne(li)
		}
	}
}

// loadOne attempts one actionable load-queue entry: forward from an
// older store, stall on a conflict, fault precisely, or start the
// d-cache access.
func (c *Core) loadOne(li int) {
	lf := c.lqFlags[li]
	lAddrV := c.lqAddr[li]
	lSeqV := c.lqSeq[li]
	lSizeV := c.lqSize[li]
	// Memory-ordering check: walk older stores youngest-first; the
	// first one that could affect this load decides (forward on an
	// exact match, stall on a partial overlap or unknown address).
	var fwdVal uint64
	fwd := false
	for i := c.sqCount - 1; i >= 0; i-- {
		si := c.sqHead + i
		if si >= c.cfg.SQSize {
			si -= c.cfg.SQSize
		}
		if c.sqFlags[si]&sValid == 0 || c.sqSeq[si] >= lSeqV {
			continue
		}
		if c.sqFlags[si]&sReady == 0 {
			return // unknown older store address: wait
		}
		ss, ls := uint64(c.sqSize[si]), uint64(lSizeV)
		sAddrV := c.sqAddr[si]
		if sAddrV < lAddrV+ls && lAddrV < sAddrV+ss {
			if c.cfg.StoreForwarding && sAddrV == lAddrV && ss >= ls {
				fwdVal = c.sqData[si]
				fwd = true
				break
			}
			return // partial overlap: wait for drain
		}
	}
	size := uint64(lSizeV)
	if f := c.memory.CheckAccess(lAddrV, size, false); f != nil {
		// Precise memory fault: record on the ROB entry.
		e := c.robAt(c.lqROB[li], lSeqV)
		switch f.Kind {
		case mem.FaultMisaligned:
			c.robExc[e] = excMisalign
		case mem.FaultProtection:
			c.robExc[e] = excProt
		default:
			c.robExc[e] = excUnmapped
		}
		c.robFlags[e] |= rDone
		c.lqFlags[li] |= lDone
		c.lqPending &^= 1 << uint(li)
		return
	}
	var val uint64
	lat := 1
	if fwd {
		val = fwdVal
	} else {
		val, lat = c.dcache.Read(lAddrV, int(size))
	}
	val = c.extendLoad(val, lSizeV, lf&lSignExt != 0)
	fillAt := c.cycle + uint64(lat)
	c.lqFlags[li] |= lInflight | lDone
	c.lqPending &^= 1 << uint(li)
	c.lqFillAt[li] = fillAt
	c.inflight = append(c.inflight, inflightOp{
		DoneAt: fillAt,
		Dest:   c.lqDest[li],
		Value:  val,
		ROBIdx: c.lqROB[li],
		Seq:    lSeqV,
	})
}

func (c *Core) extendLoad(v uint64, size uint8, signExt bool) uint64 {
	switch size {
	case 1:
		if signExt {
			return uint64(int64(int8(v)))
		}
		return v & 0xff
	case 4:
		if signExt {
			return uint64(int64(int32(uint32(v))))
		}
		return v & 0xffffffff
	}
	return v
}

// --- issue / execute --------------------------------------------------------

func (c *Core) issue() {
	// Select the oldest ready entries, up to IssueWidth.
	if c.iqReady == 0 {
		return
	}
	cand := c.candBuf[:0]
	for m := c.iqReady; m != 0; m &= m - 1 {
		cand = append(cand, bits.TrailingZeros64(m))
	}
	c.candBuf = cand
	for i := 1; i < len(cand); i++ {
		for j := i; j > 0 && c.iqSeq[cand[j]] < c.iqSeq[cand[j-1]]; j-- {
			cand[j], cand[j-1] = cand[j-1], cand[j]
		}
	}
	if len(cand) > c.cfg.IssueWidth {
		cand = cand[:c.cfg.IssueWidth]
	}
	for _, i := range cand {
		c.execute(i)
		c.iqFlags[i] &^= qValid
		c.iqValid &^= 1 << uint(i)
		c.iqReady &^= 1 << uint(i)
		c.iqCount--
	}
}

// latFor returns the execution latency of an ALU-class operation.
func (c *Core) latFor(op isa.Opcode) int {
	switch op {
	case isa.OpMul:
		return c.cfg.MulLat
	case isa.OpDiv, isa.OpRem:
		return c.cfg.DivLat
	default:
		return c.cfg.ALULat
	}
}

func (c *Core) execute(qi int) {
	v1 := c.readPhys(c.iqSrc1[qi])
	v2 := c.readPhys(c.iqSrc2[qi])
	seq := c.iqSeq[qi]
	imm := int64(c.iqImm[qi])
	robIdx := c.iqROB[qi]
	e := c.robAt(robIdx, seq)
	op := isa.Opcode(c.iqOp[qi])
	done := func(dest uint16, val uint64, lat int) {
		c.inflight = append(c.inflight, inflightOp{
			DoneAt: c.cycle + uint64(lat),
			Dest:   dest,
			Value:  val,
			ROBIdx: robIdx,
			Seq:    seq,
		})
	}
	switch {
	case op.IsLoad():
		addr := c.cfg.maskTo(uint64(int64(v1) + imm))
		l := c.lqAt(c.robLQ[e], seq)
		c.lqAddr[l] = addr
		c.lqFlags[l] |= lAddrReady
		c.lqSyncPending(l)
	case op.IsStore():
		addr := c.cfg.maskTo(uint64(int64(v1) + imm))
		s := c.sqAt(c.robSQ[e], seq)
		c.sqAddr[s] = addr
		c.sqData[s] = c.cfg.maskTo(v2)
		c.sqFlags[s] |= sReady
		done(noPhys, 0, 1)
	case op.IsBranch():
		if c.evalBranch(op, v1, v2) {
			c.robFlags[e] |= rActTaken
		} else {
			c.robFlags[e] &^= rActTaken
		}
		c.robActTgt[e] = c.robPC[e] + 4 + uint64(imm)*4
		c.robFlags[e] |= rResolved
		done(noPhys, 0, 1)
	case op == isa.OpJalr:
		c.robFlags[e] |= rActTaken | rResolved
		c.robActTgt[e] = c.cfg.maskTo(uint64(int64(v1)+imm)) &^ 3
		done(c.iqDest[qi], c.robPC[e]+4, 1)
	case op == isa.OpJal:
		done(c.iqDest[qi], c.robPC[e]+4, 1)
	case op == isa.OpOut:
		c.robOutVal[e] = c.cfg.maskTo(v1)
		done(noPhys, 0, 1)
	default:
		val := c.alu(op, v1, v2, imm)
		done(c.iqDest[qi], val, c.latFor(op))
	}
}

func (c *Core) lqAt(idx uint16, seq uint64) int {
	if int(idx) >= c.cfg.LQSize {
		simerr.Assertf("cpu: LQ index %d out of range", idx)
	}
	if c.lqFlags[idx]&lValid == 0 || c.lqSeq[idx] != seq {
		simerr.Assertf("cpu: LQ entry %d inconsistent", idx)
	}
	return int(idx)
}

func (c *Core) sqAt(idx uint16, seq uint64) int {
	if int(idx) >= c.cfg.SQSize {
		simerr.Assertf("cpu: SQ index %d out of range", idx)
	}
	if c.sqFlags[idx]&sValid == 0 || c.sqSeq[idx] != seq {
		simerr.Assertf("cpu: SQ entry %d inconsistent", idx)
	}
	return int(idx)
}

func (c *Core) evalBranch(op isa.Opcode, v1, v2 uint64) bool {
	s1, s2 := c.cfg.signExtTo(v1), c.cfg.signExtTo(v2)
	switch op {
	case isa.OpBeq:
		return v1 == v2
	case isa.OpBne:
		return v1 != v2
	case isa.OpBlt:
		return s1 < s2
	case isa.OpBge:
		return s1 >= s2
	case isa.OpBltu:
		return c.cfg.maskTo(v1) < c.cfg.maskTo(v2)
	case isa.OpBgeu:
		return c.cfg.maskTo(v1) >= c.cfg.maskTo(v2)
	}
	simerr.Assertf("cpu: evalBranch on non-branch %s", op.Name())
	return false
}

// alu computes an integer operation. For I-format operations the second
// operand is the immediate; v2 is ignored.
func (c *Core) alu(op isa.Opcode, v1, v2 uint64, imm int64) uint64 {
	shiftMask := uint64(c.cfg.XLEN - 1)
	s1 := c.cfg.signExtTo(v1)
	b := v2
	if op.Format() == isa.FmtI {
		b = uint64(imm)
		switch op {
		case isa.OpAndi, isa.OpOri, isa.OpXori, isa.OpSltiu:
			b = uint64(uint16(imm)) // logical immediates zero-extend
		}
	}
	sb := c.cfg.signExtTo(c.cfg.maskTo(b))
	switch op {
	case isa.OpAdd, isa.OpAddi:
		return uint64(s1 + sb)
	case isa.OpSub:
		return uint64(s1 - sb)
	case isa.OpMul:
		return uint64(s1 * sb)
	case isa.OpDiv:
		if sb == 0 {
			return ^uint64(0)
		}
		if s1 == minInt(c.cfg.XLEN) && sb == -1 {
			return uint64(s1)
		}
		return uint64(s1 / sb)
	case isa.OpRem:
		if sb == 0 {
			return uint64(s1)
		}
		if s1 == minInt(c.cfg.XLEN) && sb == -1 {
			return 0
		}
		return uint64(s1 % sb)
	case isa.OpAnd, isa.OpAndi:
		return v1 & b
	case isa.OpOr, isa.OpOri:
		return v1 | b
	case isa.OpXor, isa.OpXori:
		return v1 ^ b
	case isa.OpSll, isa.OpSlli:
		return v1 << (b & shiftMask)
	case isa.OpSrl, isa.OpSrli:
		return c.cfg.maskTo(v1) >> (b & shiftMask)
	case isa.OpSra, isa.OpSrai:
		return uint64(s1 >> (b & shiftMask))
	case isa.OpSlt, isa.OpSlti:
		if s1 < sb {
			return 1
		}
		return 0
	case isa.OpSltu, isa.OpSltiu:
		if c.cfg.maskTo(v1) < c.cfg.maskTo(b) {
			return 1
		}
		return 0
	case isa.OpLui:
		return uint64(int64(imm) << 16)
	}
	simerr.Assertf("cpu: alu on unexpected op %s", op.Name())
	return 0
}

func minInt(xlen int) int64 {
	if xlen == 64 {
		return -1 << 63
	}
	return -1 << 31
}
