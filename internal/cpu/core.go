package cpu

import (
	"sevsim/internal/isa"
	"sevsim/internal/mem"
	"sevsim/internal/simerr"
)

// Stats aggregates pipeline events and structure occupancy over a run.
// Occupancy sums divided by cycles give average utilization, which is
// the mechanism behind the paper's AVF observations (e.g. optimized code
// keeps more physical registers live).
type Stats struct {
	Cycles      uint64
	Committed   uint64
	Fetched     uint64
	Mispredicts uint64
	Branches    uint64
	Loads       uint64
	Stores      uint64

	ROBOccupancy uint64 // sum over cycles of occupied ROB entries
	IQOccupancy  uint64
	LQOccupancy  uint64
	SQOccupancy  uint64
	PRFLive      uint64 // sum over cycles of allocated physical registers
}

// IPC returns committed instructions per cycle.
func (s Stats) IPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.Committed) / float64(s.Cycles)
}

// Core is one out-of-order processor core.
//
// Every field is either carried through Snapshot/Restore and compared
// by StateEquals, or annotated with why it is not; the snapshotcover
// and equalitycover passes of cmd/sevlint enforce this, so a new field
// cannot silently break the checkpoint and convergence guarantees.
type Core struct {
	cfg Config //snapshot:skip immutable configuration, fixed at construction

	// Wiring to the shared memory hierarchy: pointers, not state. The
	// structures they reach are snapshotted by machine.Snapshot.
	memory *mem.Memory //snapshot:skip hierarchy wiring; snapshotted at machine level
	icache *mem.Cache  //snapshot:skip hierarchy wiring; snapshotted at machine level
	dcache *mem.Cache  //snapshot:skip hierarchy wiring; snapshotted at machine level

	// Physical register file and rename state.
	prf      []uint64
	prfReady []bool
	prfAlloc []bool
	rat      []uint16
	freeList []uint16

	rob *rob
	iq  []iqEntry
	lq  *queue[lqEntry]
	sq  *queue[sqEntry]

	pred        *predictor
	fetchPC     uint64
	fetchQ      []fetchSlot
	fetchStall  uint64
	fetchFrozen bool // stop fetching: fetch fault or HALT seen

	inflight []inflightOp

	cycle    uint64
	seq      uint64
	expectPC uint64
	halted   bool
	crash    *simerr.Crash

	output    []uint64
	maxOutput int //snapshot:skip immutable output-ring bound, fixed at construction

	//equality:dead reassigned before every use within a cycle; never read across a cycle boundary
	squashedAfter uint64

	// Incrementally maintained occupancy counters (hot path).
	iqCount int
	prfLive int

	// Scratch buffers reused across cycles to avoid per-cycle allocation.
	dueBuf  []int        //snapshot:skip scratch, reset with [:0] before every use
	opsBuf  []inflightOp //snapshot:skip scratch, reset with [:0] before every use
	candBuf []int        //snapshot:skip scratch, reset with [:0] before every use

	// commitHook, when non-nil, observes every committed instruction in
	// program order (see SetCommitHook).
	commitHook func(CommitEvent) //snapshot:skip observer wiring, not simulated state

	//equality:dead event counters; never fed back into execution or classification (a converged run may carry different counts)
	Stats Stats
}

// NewCore builds a core over the given memory system, with fetch
// starting at entry.
func NewCore(cfg Config, memory *mem.Memory, icache, dcache *mem.Cache, entry uint64) *Core {
	c := &Core{
		cfg:       cfg,
		memory:    memory,
		icache:    icache,
		dcache:    dcache,
		prf:       make([]uint64, cfg.NumPhysRegs),
		prfReady:  make([]bool, cfg.NumPhysRegs),
		prfAlloc:  make([]bool, cfg.NumPhysRegs),
		rat:       make([]uint16, cfg.NumArchRegs),
		rob:       newROB(cfg.ROBSize),
		iq:        make([]iqEntry, cfg.IQSize),
		lq:        newQueue[lqEntry](cfg.LQSize),
		sq:        newQueue[sqEntry](cfg.SQSize),
		pred:      newPredictor(cfg),
		fetchPC:   entry,
		expectPC:  entry,
		maxOutput: 1 << 20,
	}
	for a := 0; a < cfg.NumArchRegs; a++ {
		c.rat[a] = uint16(a)
		c.prfReady[a] = true
		c.prfAlloc[a] = true
	}
	c.prfLive = cfg.NumArchRegs
	for p := cfg.NumPhysRegs - 1; p >= cfg.NumArchRegs; p-- {
		c.freeList = append(c.freeList, uint16(p))
	}
	return c
}

// SetReg writes an architectural register before the run starts (used by
// the loader to initialize the stack pointer).
func (c *Core) SetReg(arch uint8, val uint64) {
	c.prf[c.rat[arch]] = c.cfg.maskTo(val)
}

// Output returns the values emitted by committed OUT instructions.
func (c *Core) Output() []uint64 { return c.output }

// Halted reports whether the program has committed HALT.
func (c *Core) Halted() bool { return c.halted }

// Crash returns the crash record if the program died, else nil.
func (c *Core) Crash() *simerr.Crash { return c.crash }

// Cycle returns the current cycle number.
func (c *Core) Cycle() uint64 { return c.cycle }

// Step advances the machine one cycle. It returns true while the
// simulation should continue (not halted, not crashed).
func (c *Core) Step() bool {
	if c.halted || c.crash != nil {
		return false
	}
	c.commit()
	if c.halted || c.crash != nil {
		c.cycle++
		c.Stats.Cycles = c.cycle
		return false
	}
	c.writeback()
	c.loadStep()
	c.issue()
	c.rename()
	c.fetch()
	c.accountOccupancy()
	c.cycle++
	c.Stats.Cycles = c.cycle
	return true
}

func (c *Core) accountOccupancy() {
	c.Stats.ROBOccupancy += uint64(c.rob.count)
	c.Stats.LQOccupancy += uint64(c.lq.count)
	c.Stats.SQOccupancy += uint64(c.sq.count)
	c.Stats.IQOccupancy += uint64(c.iqCount)
	c.Stats.PRFLive += uint64(c.prfLive)
}

// --- register helpers ----------------------------------------------------

func (c *Core) readPhys(p uint16) uint64 {
	if int(p) >= c.cfg.NumPhysRegs {
		simerr.Assertf("cpu: read of physical register %d outside file of %d", p, c.cfg.NumPhysRegs)
	}
	return c.prf[p]
}

func (c *Core) writePhys(p uint16, v uint64) {
	if int(p) >= c.cfg.NumPhysRegs {
		simerr.Assertf("cpu: write of physical register %d outside file of %d", p, c.cfg.NumPhysRegs)
	}
	c.prf[p] = c.cfg.maskTo(v)
	c.prfReady[p] = true
}

func (c *Core) popFree() uint16 {
	p := c.freeList[len(c.freeList)-1]
	c.freeList = c.freeList[:len(c.freeList)-1]
	if int(p) >= c.cfg.NumPhysRegs || c.prfAlloc[p] {
		simerr.Assertf("cpu: free list produced corrupt register %d", p)
	}
	c.prfAlloc[p] = true
	c.prfReady[p] = false
	c.prfLive++
	return p
}

func (c *Core) freePhys(p uint16) {
	if int(p) >= c.cfg.NumPhysRegs || p == 0 || !c.prfAlloc[p] {
		simerr.Assertf("cpu: double free or corrupt free of physical register %d", p)
	}
	c.prfAlloc[p] = false
	c.prfLive--
	c.freeList = append(c.freeList, p)
}

// robAt fetches a ROB entry by (possibly corrupted) index and validates
// it still belongs to the expected instruction.
func (c *Core) robAt(idx uint16, seq uint64) *robEntry {
	if int(idx) >= c.cfg.ROBSize {
		simerr.Assertf("cpu: ROB index %d out of range", idx)
	}
	e := c.rob.at(idx)
	if e.Seq != seq {
		simerr.Assertf("cpu: ROB entry %d sequence mismatch", idx)
	}
	return e
}

// --- commit ----------------------------------------------------------------

func (c *Core) commit() {
	for n := 0; n < c.cfg.CommitWidth && !c.rob.empty(); n++ {
		e := c.rob.headEntry()
		if !e.Done {
			return
		}
		if e.Exc != excNone {
			c.crash = &simerr.Crash{Reason: excName(e.Exc), PC: e.PC}
			return
		}
		if e.PC != c.expectPC {
			simerr.Assertf("cpu: commit PC %#x does not match expected %#x", e.PC, c.expectPC)
		}
		if e.IsBranch && !e.Resolved {
			simerr.Assertf("cpu: committing unresolved branch at %#x", e.PC)
		}
		if e.IsStore {
			if !c.commitStore(e) {
				return // crash recorded
			}
			c.Stats.Stores++
		}
		if e.IsLoad {
			if e.LQIdx == badIdx || c.lq.empty() || c.lq.headIdx() != e.LQIdx {
				simerr.Assertf("cpu: LQ drain mismatch at commit")
			}
			c.lq.pop()
			c.Stats.Loads++
		}
		switch e.Op {
		case isa.OpOut:
			if len(c.output) < c.maxOutput {
				c.output = append(c.output, e.OutVal)
			}
		case isa.OpHalt:
			c.halted = true
		}
		if e.DestArch != noReg {
			c.freePhys(e.OldPhys)
		}
		if e.Resolved && e.ActTaken {
			c.expectPC = e.ActTarget
		} else {
			c.expectPC = e.PC + 4
		}
		if c.commitHook != nil {
			c.commitHook(CommitEvent{Cycle: c.cycle, PC: e.PC, DestArch: e.DestArch, DestPhys: e.DestPhys})
		}
		c.rob.pop()
		c.Stats.Committed++
		if c.halted {
			return
		}
	}
}

// commitStore drains the store-queue head for a committing store. It
// returns false when the store raises a memory fault (crash recorded).
func (c *Core) commitStore(e *robEntry) bool {
	if e.SQIdx == badIdx || c.sq.empty() || c.sq.headIdx() != e.SQIdx {
		simerr.Assertf("cpu: SQ drain mismatch at commit")
	}
	s := c.sq.at(e.SQIdx)
	if !s.Valid || !s.Ready {
		simerr.Assertf("cpu: committing store with invalid SQ entry state")
	}
	if s.ROBIdx != uint16(c.rob.head) {
		simerr.Assertf("cpu: SQ entry ROB linkage corrupt")
	}
	size := uint64(s.Size)
	if f := c.memory.CheckAccess(s.Addr, size, true); f != nil {
		c.crash = &simerr.Crash{Reason: "store " + f.Kind.String(), Addr: s.Addr, PC: e.PC}
		return false
	}
	c.dcache.Write(s.Addr, int(size), s.Data)
	c.sq.pop()
	return true
}

// --- writeback --------------------------------------------------------------

func (c *Core) writeback() {
	// Collect completions due this cycle, oldest first, up to WBWidth.
	due := c.dueBuf[:0]
	for i := range c.inflight {
		if c.inflight[i].DoneAt <= c.cycle {
			due = append(due, i)
		}
	}
	if len(due) == 0 {
		c.dueBuf = due
		return
	}
	// Insertion sort by age: the slice is tiny and this avoids the
	// allocations of sort.Slice in the per-cycle hot path.
	for i := 1; i < len(due); i++ {
		for j := i; j > 0 && c.inflight[due[j]].Seq < c.inflight[due[j-1]].Seq; j-- {
			due[j], due[j-1] = due[j-1], due[j]
		}
	}
	if len(due) > c.cfg.WBWidth {
		due = due[:c.cfg.WBWidth]
	}
	ops := c.opsBuf[:0]
	for _, i := range due {
		ops = append(ops, c.inflight[i])
		c.inflight[i].DoneAt = ^uint64(0) // mark taken
	}
	rest := c.inflight[:0]
	for i := range c.inflight {
		if c.inflight[i].DoneAt != ^uint64(0) {
			rest = append(rest, c.inflight[i])
		}
	}
	c.inflight = rest
	c.dueBuf = due
	c.opsBuf = ops
	// A mispredict squash inside this batch invalidates every younger
	// completion in it; processing them would let a squashed branch
	// redirect the front end.
	c.squashedAfter = ^uint64(0)
	for i := range ops {
		if ops[i].Seq > c.squashedAfter {
			continue
		}
		c.finish(&ops[i])
	}
}

func (c *Core) finish(op *inflightOp) {
	if op.Dest != noPhys {
		c.writePhys(op.Dest, op.Value)
		c.wakeup(op.Dest)
	}
	e := c.robAt(op.ROBIdx, op.Seq)
	e.Done = true
	if e.IsBranch && e.Resolved {
		c.resolveBranch(e)
	}
}

// resolveBranch trains the predictor and squashes on a misprediction.
func (c *Core) resolveBranch(e *robEntry) {
	c.Stats.Branches++
	if e.Op.IsBranch() {
		c.pred.updateCond(e.PC, e.ActTaken)
	}
	if e.Op == isa.OpJalr {
		c.pred.updateIndirect(e.PC, e.ActTarget)
	}
	next := e.PC + 4
	if e.ActTaken {
		next = e.ActTarget
	}
	predNext := e.PC + 4
	if e.PredTaken {
		predNext = e.PredTarget
	}
	if next != predNext {
		c.Stats.Mispredicts++
		c.squash(e.Seq, next)
		if e.Seq < c.squashedAfter {
			c.squashedAfter = e.Seq
		}
	}
}

func (c *Core) wakeup(tag uint16) {
	for i := range c.iq {
		q := &c.iq[i]
		if !q.Valid {
			continue
		}
		if !q.Rdy1 && q.Src1 == tag {
			q.Rdy1 = true
		}
		if !q.Rdy2 && q.Src2 == tag {
			q.Rdy2 = true
		}
	}
}

// --- load queue ------------------------------------------------------------

func (c *Core) loadStep() {
	if c.lq.count == 0 {
		return
	}
	for n := 0; n < c.lq.count; n++ {
		idx := uint16((c.lq.head + n) % len(c.lq.entries))
		l := c.lq.at(idx)
		if !l.Valid || !l.AddrReady || l.Done || l.Inflight {
			continue
		}
		// Memory-ordering check: walk older stores youngest-first; the
		// first one that could affect this load decides (forward on an
		// exact match, stall on a partial overlap or unknown address).
		conflict := false
		var fwdVal uint64
		fwd := false
		for i := c.sq.count - 1; i >= 0; i-- {
			s := c.sq.at(uint16((c.sq.head + i) % len(c.sq.entries)))
			if !s.Valid || s.Seq >= l.Seq {
				continue
			}
			if !s.Ready {
				conflict = true // unknown older store address: wait
				break
			}
			ss, ls := uint64(s.Size), uint64(l.Size)
			if s.Addr < l.Addr+ls && l.Addr < s.Addr+ss {
				if c.cfg.StoreForwarding && s.Addr == l.Addr && ss >= ls {
					fwdVal = s.Data
					fwd = true
				} else {
					conflict = true // partial overlap: wait for drain
				}
				break
			}
		}
		if conflict {
			continue
		}
		size := uint64(l.Size)
		if f := c.memory.CheckAccess(l.Addr, size, false); f != nil {
			// Precise memory fault: record on the ROB entry.
			e := c.robAt(l.ROBIdx, l.Seq)
			switch f.Kind {
			case mem.FaultMisaligned:
				e.Exc = excMisalign
			case mem.FaultProtection:
				e.Exc = excProt
			default:
				e.Exc = excUnmapped
			}
			e.Done = true
			l.Done = true
			continue
		}
		var val uint64
		lat := 1
		if fwd {
			val = fwdVal
		} else {
			val, lat = c.dcache.Read(l.Addr, int(size))
		}
		val = c.extendLoad(val, l.Size, l.SignExt)
		l.Inflight = true
		l.FillAt = c.cycle + uint64(lat)
		c.inflight = append(c.inflight, inflightOp{
			DoneAt: l.FillAt,
			Dest:   l.Dest,
			Value:  val,
			ROBIdx: l.ROBIdx,
			Seq:    l.Seq,
		})
		l.Done = true
	}
}

func (c *Core) extendLoad(v uint64, size uint8, signExt bool) uint64 {
	switch size {
	case 1:
		if signExt {
			return uint64(int64(int8(v)))
		}
		return v & 0xff
	case 4:
		if signExt {
			return uint64(int64(int32(uint32(v))))
		}
		return v & 0xffffffff
	}
	return v
}

// --- issue / execute --------------------------------------------------------

func (c *Core) issue() {
	// Select the oldest ready entries, up to IssueWidth.
	if c.iqCount == 0 {
		return
	}
	cand := c.candBuf[:0]
	for i := range c.iq {
		q := &c.iq[i]
		if q.Valid && !q.Issued && q.Rdy1 && q.Rdy2 {
			cand = append(cand, i)
		}
	}
	c.candBuf = cand
	for i := 1; i < len(cand); i++ {
		for j := i; j > 0 && c.iq[cand[j]].Seq < c.iq[cand[j-1]].Seq; j-- {
			cand[j], cand[j-1] = cand[j-1], cand[j]
		}
	}
	if len(cand) > c.cfg.IssueWidth {
		cand = cand[:c.cfg.IssueWidth]
	}
	for _, i := range cand {
		c.execute(&c.iq[i])
		c.iq[i].Valid = false
		c.iqCount--
	}
}

// latFor returns the execution latency of an ALU-class operation.
func (c *Core) latFor(op isa.Opcode) int {
	switch op {
	case isa.OpMul:
		return c.cfg.MulLat
	case isa.OpDiv, isa.OpRem:
		return c.cfg.DivLat
	default:
		return c.cfg.ALULat
	}
}

func (c *Core) execute(q *iqEntry) {
	v1 := c.readPhys(q.Src1)
	v2 := c.readPhys(q.Src2)
	e := c.robAt(q.ROBIdx, q.Seq)
	op := q.Op
	done := func(dest uint16, val uint64, lat int) {
		c.inflight = append(c.inflight, inflightOp{
			DoneAt: c.cycle + uint64(lat),
			Dest:   dest,
			Value:  val,
			ROBIdx: q.ROBIdx,
			Seq:    q.Seq,
		})
	}
	switch {
	case op.IsLoad():
		addr := c.cfg.maskTo(uint64(int64(v1) + int64(q.Imm)))
		l := c.lqAt(e.LQIdx, q.Seq)
		l.Addr = addr
		l.AddrReady = true
	case op.IsStore():
		addr := c.cfg.maskTo(uint64(int64(v1) + int64(q.Imm)))
		s := c.sqAt(e.SQIdx, q.Seq)
		s.Addr = addr
		s.Data = c.cfg.maskTo(v2)
		s.Ready = true
		done(noPhys, 0, 1)
	case op.IsBranch():
		e.ActTaken = c.evalBranch(op, v1, v2)
		e.ActTarget = e.PC + 4 + uint64(int64(q.Imm))*4
		e.Resolved = true
		done(noPhys, 0, 1)
	case op == isa.OpJalr:
		e.ActTaken = true
		e.ActTarget = c.cfg.maskTo(uint64(int64(v1)+int64(q.Imm))) &^ 3
		e.Resolved = true
		done(q.Dest, e.PC+4, 1)
	case op == isa.OpJal:
		done(q.Dest, e.PC+4, 1)
	case op == isa.OpOut:
		e.OutVal = c.cfg.maskTo(v1)
		done(noPhys, 0, 1)
	default:
		val := c.alu(op, v1, v2, q.Imm)
		done(q.Dest, val, c.latFor(op))
	}
}

func (c *Core) lqAt(idx uint16, seq uint64) *lqEntry {
	if int(idx) >= c.cfg.LQSize {
		simerr.Assertf("cpu: LQ index %d out of range", idx)
	}
	l := c.lq.at(idx)
	if !l.Valid || l.Seq != seq {
		simerr.Assertf("cpu: LQ entry %d inconsistent", idx)
	}
	return l
}

func (c *Core) sqAt(idx uint16, seq uint64) *sqEntry {
	if int(idx) >= c.cfg.SQSize {
		simerr.Assertf("cpu: SQ index %d out of range", idx)
	}
	s := c.sq.at(idx)
	if !s.Valid || s.Seq != seq {
		simerr.Assertf("cpu: SQ entry %d inconsistent", idx)
	}
	return s
}

func (c *Core) evalBranch(op isa.Opcode, v1, v2 uint64) bool {
	s1, s2 := c.cfg.signExtTo(v1), c.cfg.signExtTo(v2)
	switch op {
	case isa.OpBeq:
		return v1 == v2
	case isa.OpBne:
		return v1 != v2
	case isa.OpBlt:
		return s1 < s2
	case isa.OpBge:
		return s1 >= s2
	case isa.OpBltu:
		return c.cfg.maskTo(v1) < c.cfg.maskTo(v2)
	case isa.OpBgeu:
		return c.cfg.maskTo(v1) >= c.cfg.maskTo(v2)
	}
	simerr.Assertf("cpu: evalBranch on non-branch %s", op.Name())
	return false
}

// alu computes an integer operation. For I-format operations the second
// operand is the immediate; v2 is ignored.
func (c *Core) alu(op isa.Opcode, v1, v2 uint64, imm int64) uint64 {
	shiftMask := uint64(c.cfg.XLEN - 1)
	s1 := c.cfg.signExtTo(v1)
	b := v2
	if op.Format() == isa.FmtI {
		b = uint64(imm)
		switch op {
		case isa.OpAndi, isa.OpOri, isa.OpXori, isa.OpSltiu:
			b = uint64(uint16(imm)) // logical immediates zero-extend
		}
	}
	sb := c.cfg.signExtTo(c.cfg.maskTo(b))
	switch op {
	case isa.OpAdd, isa.OpAddi:
		return uint64(s1 + sb)
	case isa.OpSub:
		return uint64(s1 - sb)
	case isa.OpMul:
		return uint64(s1 * sb)
	case isa.OpDiv:
		if sb == 0 {
			return ^uint64(0)
		}
		if s1 == minInt(c.cfg.XLEN) && sb == -1 {
			return uint64(s1)
		}
		return uint64(s1 / sb)
	case isa.OpRem:
		if sb == 0 {
			return uint64(s1)
		}
		if s1 == minInt(c.cfg.XLEN) && sb == -1 {
			return 0
		}
		return uint64(s1 % sb)
	case isa.OpAnd, isa.OpAndi:
		return v1 & b
	case isa.OpOr, isa.OpOri:
		return v1 | b
	case isa.OpXor, isa.OpXori:
		return v1 ^ b
	case isa.OpSll, isa.OpSlli:
		return v1 << (b & shiftMask)
	case isa.OpSrl, isa.OpSrli:
		return c.cfg.maskTo(v1) >> (b & shiftMask)
	case isa.OpSra, isa.OpSrai:
		return uint64(s1 >> (b & shiftMask))
	case isa.OpSlt, isa.OpSlti:
		if s1 < sb {
			return 1
		}
		return 0
	case isa.OpSltu, isa.OpSltiu:
		if c.cfg.maskTo(v1) < c.cfg.maskTo(b) {
			return 1
		}
		return 0
	case isa.OpLui:
		return uint64(int64(imm) << 16)
	}
	simerr.Assertf("cpu: alu on unexpected op %s", op.Name())
	return 0
}

func minInt(xlen int) int64 {
	if xlen == 64 {
		return -1 << 63
	}
	return -1 << 31
}
