package cpu

// predictor is the front-end branch predictor: a bimodal table of 2-bit
// saturating counters for conditional branch direction, a direct-mapped
// BTB for indirect-jump targets, and a return-address stack.
//
// Predictor state is not a fault-injection target (a corrupted
// prediction is architecturally masked by construction — it only costs
// time), so the predictor keeps plain Go state.
type predictor struct {
	bimodal []uint8
	btbTag  []uint64
	btbTgt  []uint64
	ras     []uint64
	rasTop  int
}

func newPredictor(cfg Config) *predictor {
	p := &predictor{
		bimodal: make([]uint8, cfg.BimodalSize),
		btbTag:  make([]uint64, cfg.BTBSize),
		btbTgt:  make([]uint64, cfg.BTBSize),
		ras:     make([]uint64, cfg.RASSize),
	}
	for i := range p.bimodal {
		p.bimodal[i] = 1 // weakly not-taken
	}
	return p
}

func (p *predictor) bimodalIdx(pc uint64) int { return int(pc>>2) & (len(p.bimodal) - 1) }
func (p *predictor) btbIdx(pc uint64) int     { return int(pc>>2) & (len(p.btbTag) - 1) }

// predictCond predicts the direction of a conditional branch.
func (p *predictor) predictCond(pc uint64) bool { return p.bimodal[p.bimodalIdx(pc)] >= 2 }

// updateCond trains the bimodal counter.
func (p *predictor) updateCond(pc uint64, taken bool) {
	i := p.bimodalIdx(pc)
	if taken {
		if p.bimodal[i] < 3 {
			p.bimodal[i]++
		}
	} else if p.bimodal[i] > 0 {
		p.bimodal[i]--
	}
}

// predictIndirect predicts a JALR target, or returns false when the BTB
// has no entry for this PC.
func (p *predictor) predictIndirect(pc uint64) (uint64, bool) {
	i := p.btbIdx(pc)
	if p.btbTag[i] == pc {
		return p.btbTgt[i], true
	}
	return 0, false
}

// updateIndirect records a resolved JALR target.
func (p *predictor) updateIndirect(pc, target uint64) {
	i := p.btbIdx(pc)
	p.btbTag[i] = pc
	p.btbTgt[i] = target
}

// pushRAS records a call's return address.
func (p *predictor) pushRAS(ret uint64) {
	p.ras[p.rasTop%len(p.ras)] = ret
	p.rasTop++
}

// popRAS predicts a return target; ok is false when the stack is empty.
func (p *predictor) popRAS() (uint64, bool) {
	if p.rasTop == 0 {
		return 0, false
	}
	p.rasTop--
	return p.ras[p.rasTop%len(p.ras)], true
}
