package cpu

// Front-end branch prediction over the soa predictor views: a bimodal
// table of 2-bit saturating counters for conditional branch direction,
// a direct-mapped BTB for indirect-jump targets, and a return-address
// stack.
//
// Predictor state is not a fault-injection target (a corrupted
// prediction is architecturally masked by construction — it only costs
// time), but it is checkpoint state: it steers speculative fetches and
// cache fills, so it lives in the slabs and is carried by Snapshot.

func (c *Core) bimodalIdx(pc uint64) int { return int(pc>>2) & (len(c.bimodal) - 1) }
func (c *Core) btbIdx(pc uint64) int     { return int(pc>>2) & (len(c.btbTag) - 1) }

// predictCond predicts the direction of a conditional branch.
func (c *Core) predictCond(pc uint64) bool { return c.bimodal[c.bimodalIdx(pc)] >= 2 }

// updateCond trains the bimodal counter.
func (c *Core) updateCond(pc uint64, taken bool) {
	i := c.bimodalIdx(pc)
	if taken {
		if c.bimodal[i] < 3 {
			c.bimodal[i]++
		}
	} else if c.bimodal[i] > 0 {
		c.bimodal[i]--
	}
}

// predictIndirect predicts a JALR target, or returns false when the BTB
// has no entry for this PC.
func (c *Core) predictIndirect(pc uint64) (uint64, bool) {
	i := c.btbIdx(pc)
	if c.btbTag[i] == pc {
		return c.btbTgt[i], true
	}
	return 0, false
}

// updateIndirect records a resolved JALR target.
func (c *Core) updateIndirect(pc, target uint64) {
	i := c.btbIdx(pc)
	c.btbTag[i] = pc
	c.btbTgt[i] = target
}

// pushRAS records a call's return address.
func (c *Core) pushRAS(ret uint64) {
	c.ras[c.rasTop%len(c.ras)] = ret
	c.rasTop++
}

// popRAS predicts a return target; ok is false when the stack is empty.
func (c *Core) popRAS() (uint64, bool) {
	if c.rasTop == 0 {
		return 0, false
	}
	c.rasTop--
	return c.ras[c.rasTop%len(c.ras)], true
}
