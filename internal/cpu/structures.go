package cpu

import "sevsim/internal/isa"

// physTagBits is the injected width of a physical register tag. Both
// configurations have at most 256 physical registers.
const physTagBits = 8

const noReg = 0xff    // no architectural register
const noPhys = 0xffff // no physical register
const badIdx = ^uint16(0)

// robEntry is one reorder-buffer slot. The four injectable fields the
// paper names are PC, the destination tag, the old-mapping tag, and the
// control word (done/exception/kind/arch-dest bits). The remaining
// members are side metadata (branch resolution state, queue back
// pointers) that model wiring rather than SRAM the paper injects.
type robEntry struct {
	// Injectable fields.
	PC       uint64
	DestPhys uint16
	OldPhys  uint16
	// Ctrl field subcomponents.
	DestArch uint8 // noReg when the instruction writes no register
	Done     bool
	Exc      uint8 // exception code; 0 = none
	IsStore  bool
	IsLoad   bool
	IsBranch bool // conditional branch or indirect jump (needs resolution)

	// Side metadata (not injected).
	Op         isa.Opcode
	Seq        uint64
	LQIdx      uint16 // badIdx when not a load
	SQIdx      uint16 // badIdx when not a store
	PredTaken  bool
	PredTarget uint64
	ActTaken   bool
	ActTarget  uint64
	Resolved   bool
	OutVal     uint64 // value captured at execute for OUT instructions
}

// Exception codes stored in robEntry.Exc (3 bits injected).
const (
	excNone      = 0
	excUnmapped  = 1
	excMisalign  = 2
	excProt      = 3
	excIllegal   = 4
	excBadFetch  = 5
	excSpurious1 = 6 // reachable only via injected flips
	excSpurious2 = 7
)

func excName(code uint8) string {
	switch code {
	case excUnmapped:
		return "unmapped access"
	case excMisalign:
		return "misaligned access"
	case excProt:
		return "protection violation"
	case excIllegal:
		return "illegal instruction"
	case excBadFetch:
		return "instruction fetch fault"
	}
	return "spurious exception"
}

// rob is a circular reorder buffer.
type rob struct {
	entries []robEntry
	head    int
	count   int
}

func newROB(size int) *rob { return &rob{entries: make([]robEntry, size)} }

func (r *rob) full() bool  { return r.count == len(r.entries) }
func (r *rob) empty() bool { return r.count == 0 }

// push allocates the next entry and returns its index.
func (r *rob) push(e robEntry) uint16 {
	idx := (r.head + r.count) % len(r.entries)
	r.entries[idx] = e
	r.count++
	return uint16(idx)
}

// headEntry returns the oldest entry.
func (r *rob) headEntry() *robEntry { return &r.entries[r.head] }

// pop retires the oldest entry.
func (r *rob) pop() {
	r.head = (r.head + 1) % len(r.entries)
	r.count--
}

// popTail removes the youngest entry (squash path) and returns it.
func (r *rob) popTail() *robEntry {
	idx := (r.head + r.count - 1) % len(r.entries)
	r.count--
	return &r.entries[idx]
}

// at returns the entry at a raw index (0..size-1).
func (r *rob) at(idx uint16) *robEntry { return &r.entries[idx] }

// iqEntry is one issue-queue slot. The Source field covers the two
// source tags and their ready bits; the Destination field covers the
// destination tag and the ROB index linkage.
type iqEntry struct {
	Valid bool

	// Source field (injectable): tags + ready bits.
	Src1, Src2 uint16
	Rdy1, Rdy2 bool

	// Destination field (injectable): dest tag + ROB linkage.
	Dest   uint16
	ROBIdx uint16

	// Side metadata.
	Op     isa.Opcode
	Imm    int64
	Seq    uint64
	Issued bool
}

// lqEntry is one load-queue slot. The injectable entry covers the
// address word, the destination tag, the ROB linkage and the state bits.
type lqEntry struct {
	Valid bool // injectable state bit

	Addr      uint64 // injectable, XLEN bits
	Dest      uint16 // injectable tag
	ROBIdx    uint16 // injectable linkage
	AddrReady bool   // injectable state bit
	Done      bool   // injectable state bit

	// Side metadata.
	Size     uint8
	SignExt  bool
	Seq      uint64
	Inflight bool
	FillAt   uint64 // completion cycle once the access is in flight
	FwdData  uint64
	Fwd      bool
}

// sqEntry is one store-queue slot. The injectable entry covers address,
// data, ROB linkage and state bits.
type sqEntry struct {
	Valid bool // injectable state bit

	Addr   uint64 // injectable, XLEN bits
	Data   uint64 // injectable, XLEN bits
	ROBIdx uint16 // injectable linkage
	Ready  bool   // injectable state bit: address+data computed

	// Side metadata.
	Size uint8
	Seq  uint64
}

// queue is a circular buffer shared by the load and store queues.
type queue[T any] struct {
	entries []T
	head    int
	count   int
}

func newQueue[T any](size int) *queue[T] { return &queue[T]{entries: make([]T, size)} }

func (q *queue[T]) full() bool  { return q.count == len(q.entries) }
func (q *queue[T]) empty() bool { return q.count == 0 }

func (q *queue[T]) push(e T) uint16 {
	idx := (q.head + q.count) % len(q.entries)
	q.entries[idx] = e
	q.count++
	return uint16(idx)
}

func (q *queue[T]) headIdx() uint16 { return uint16(q.head) }

func (q *queue[T]) pop() {
	q.head = (q.head + 1) % len(q.entries)
	q.count--
}

func (q *queue[T]) popTail() *T {
	idx := (q.head + q.count - 1) % len(q.entries)
	q.count--
	return &q.entries[idx]
}

// at returns the entry at a raw index.
func (q *queue[T]) at(idx uint16) *T { return &q.entries[idx] }

// each visits the occupied entries oldest-first.
func (q *queue[T]) each(f func(idx uint16, e *T)) {
	for i := 0; i < q.count; i++ {
		idx := (q.head + i) % len(q.entries)
		f(uint16(idx), &q.entries[idx])
	}
}

// fetchSlot is one decoupling-buffer entry between fetch and rename.
type fetchSlot struct {
	PC         uint64
	Word       uint32
	In         isa.Instr // predecoded once at fetch
	FetchFault bool      // instruction fetch failed; raises at commit
	PredTaken  bool
	PredTarget uint64
}

// inflightOp is an operation executing in a functional unit.
type inflightOp struct {
	DoneAt uint64
	Dest   uint16 // noPhys when no register result
	Value  uint64
	ROBIdx uint16
	Seq    uint64
}
