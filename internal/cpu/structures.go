package cpu

// Struct-of-arrays backing store for the hot-loop core state.
//
// Every fixed-size per-entry structure the pipeline scans each cycle —
// the physical register file, RAT, free list, ROB, issue queue,
// load/store queues, and predictor tables — lives in one of three
// contiguous slabs (one per scalar width). The named views below are
// sub-slices carved out of the slabs at construction, so the per-cycle
// scan loops walk tight homogeneous arrays instead of striding across
// fat structs, and Snapshot/Restore/Equal collapse to three flat
// copies/compares (DESIGN.md §12).
//
// Layout invariants the rest of the package relies on:
//
//   - a view is never reallocated or resliced after carve: writing
//     through a view writes the slab, and copying the slab captures
//     every view;
//   - per-entry boolean state is packed into one flag byte per entry
//     (robFlags/iqFlags/lqFlags/sqFlags) with the bit assignments
//     below, so "invalidate entry" or "compare entry state" is one
//     byte operation;
//   - ring slots and free-list tails are never cleared on pop: dead
//     slots keep their bytes (exactly like the old per-struct rings),
//     which keeps restored runs bit-identical and leaves dead state
//     injectable, masked naturally as in hardware.

import "sevsim/internal/isa"

// physTagBits is the injected width of a physical register tag. Both
// configurations have at most 256 physical registers.
const physTagBits = 8

const noReg = 0xff    // no architectural register
const noPhys = 0xffff // no physical register
const badIdx = ^uint16(0)

// robFlags bits. Done/IsStore/IsLoad/IsBranch plus the exception code
// and arch dest form the injectable control word (see faults.go); the
// branch-resolution bits are side metadata.
const (
	rDone      = 1 << 0
	rIsStore   = 1 << 1
	rIsLoad    = 1 << 2
	rIsBranch  = 1 << 3 // conditional branch or indirect jump (needs resolution)
	rPredTaken = 1 << 4
	rActTaken  = 1 << 5
	rResolved  = 1 << 6
)

// iqFlags bits. Valid plus the two ready bits are injectable (the
// ready bits through the Source field); Issued is vestigial wiring
// kept for layout stability.
const (
	qValid  = 1 << 0
	qIssued = 1 << 1
	qRdy1   = 1 << 2
	qRdy2   = 1 << 3
)

// lqFlags bits. Valid/AddrReady/Done are the injectable state bits of
// a load-queue entry; Inflight and SignExt are side metadata.
const (
	lValid     = 1 << 0
	lAddrReady = 1 << 1
	lDone      = 1 << 2
	lInflight  = 1 << 3
	lSignExt   = 1 << 4
)

// sqFlags bits. Both are injectable.
const (
	sValid = 1 << 0
	sReady = 1 << 1 // address+data computed
)

// soa holds the three backing slabs and the named views carved out of
// them. Core embeds it; CoreState embeds it too, so a snapshot is the
// same shape and the equality walks index both sides identically.
//
// The views are annotated //snapshot:flat <slab>: they alias slab
// memory, so copying the slab in Snapshot/Restore covers them — the
// snapshotcover and equalitycover lint passes resolve the annotation
// to the backing slab's coverage.
type soa struct {
	// Backing slabs: one contiguous array per scalar width. These are
	// what Snapshot/Restore copy and CoreState.Equal compares.
	u64 []uint64
	u16 []uint16
	u8  []uint8

	// Physical register file and rename state.
	prf      []uint64 //snapshot:flat u64
	prfReady []uint8  //snapshot:flat u8
	prfAlloc []uint8  //snapshot:flat u8
	rat      []uint16 //snapshot:flat u16
	freeBack []uint16 //snapshot:flat u16

	// Reorder buffer, one array per former robEntry field. The four
	// injectable fields the paper names are PC, the destination tag,
	// the old-mapping tag, and the control word (robArch + robExc +
	// the low robFlags bits); the rest is side metadata.
	robPC      []uint64 //snapshot:flat u64
	robSeq     []uint64 //snapshot:flat u64
	robPredTgt []uint64 //snapshot:flat u64
	robActTgt  []uint64 //snapshot:flat u64
	robOutVal  []uint64 //snapshot:flat u64  value captured at execute for OUT instructions
	robDest    []uint16 //snapshot:flat u16
	robOld     []uint16 //snapshot:flat u16
	robLQ      []uint16 //snapshot:flat u16  badIdx when not a load
	robSQ      []uint16 //snapshot:flat u16  badIdx when not a store
	robArch    []uint8  //snapshot:flat u8   noReg when no register written
	robExc     []uint8  //snapshot:flat u8   exception code; 0 = none
	robOp      []uint8  //snapshot:flat u8
	robFlags   []uint8  //snapshot:flat u8

	// Issue queue. Src tags + ready bits form the injectable Source
	// field; dest tag + ROB linkage form the Destination field.
	iqImm   []uint64 //snapshot:flat u64  int64 immediate stored as uint64
	iqSeq   []uint64 //snapshot:flat u64
	iqSrc1  []uint16 //snapshot:flat u16
	iqSrc2  []uint16 //snapshot:flat u16
	iqDest  []uint16 //snapshot:flat u16
	iqROB   []uint16 //snapshot:flat u16
	iqOp    []uint8  //snapshot:flat u8
	iqFlags []uint8  //snapshot:flat u8

	// Load queue: address word, dest tag, ROB linkage, state bits.
	lqAddr   []uint64 //snapshot:flat u64
	lqSeq    []uint64 //snapshot:flat u64
	lqFillAt []uint64 //snapshot:flat u64  completion cycle once in flight
	lqDest   []uint16 //snapshot:flat u16
	lqROB    []uint16 //snapshot:flat u16
	lqSize   []uint8  //snapshot:flat u8
	lqFlags  []uint8  //snapshot:flat u8

	// Store queue: address, data, ROB linkage, state bits.
	sqAddr  []uint64 //snapshot:flat u64
	sqData  []uint64 //snapshot:flat u64
	sqSeq   []uint64 //snapshot:flat u64
	sqROB   []uint16 //snapshot:flat u16
	sqSize  []uint8  //snapshot:flat u8
	sqFlags []uint8  //snapshot:flat u8

	// Branch predictor tables. Predictor state is not a fault target
	// (a corrupted prediction is architecturally masked — it only
	// costs time) but it is checkpoint state: it steers speculative
	// cache fills and timing.
	bimodal []uint8  //snapshot:flat u8   2-bit saturating counters
	btbTag  []uint64 //snapshot:flat u64
	btbTgt  []uint64 //snapshot:flat u64
	ras     []uint64 //snapshot:flat u64
}

// slabSizes returns the three slab lengths the configuration needs.
func slabSizes(cfg *Config) (n64, n16, n8 int) {
	P, A := cfg.NumPhysRegs, cfg.NumArchRegs
	R, I, L, S := cfg.ROBSize, cfg.IQSize, cfg.LQSize, cfg.SQSize
	n64 = P + 5*R + 2*I + 3*L + 3*S + 2*cfg.BTBSize + cfg.RASSize
	n16 = A + P + 4*R + 4*I + 2*L + S
	n8 = 2*P + 4*R + 2*I + 2*L + 2*S + cfg.BimodalSize
	return
}

// carve sizes the slabs for cfg (allocating only when the lengths do
// not already match, so pooled snapshots reuse their buffers) and
// re-slices every view. The carving order is fixed; it is part of the
// snapshot format in the sense that two soas carved for the same
// config have their views at identical slab offsets.
func (a *soa) carve(cfg *Config) {
	n64, n16, n8 := slabSizes(cfg)
	if len(a.u64) != n64 {
		a.u64 = make([]uint64, n64)
	}
	if len(a.u16) != n16 {
		a.u16 = make([]uint16, n16)
	}
	if len(a.u8) != n8 {
		a.u8 = make([]uint8, n8)
	}
	P, A := cfg.NumPhysRegs, cfg.NumArchRegs
	R, I, L, S := cfg.ROBSize, cfg.IQSize, cfg.LQSize, cfg.SQSize

	o := 0
	cut64 := func(n int) []uint64 { v := a.u64[o : o+n : o+n]; o += n; return v }
	a.prf = cut64(P)
	a.robPC = cut64(R)
	a.robSeq = cut64(R)
	a.robPredTgt = cut64(R)
	a.robActTgt = cut64(R)
	a.robOutVal = cut64(R)
	a.iqImm = cut64(I)
	a.iqSeq = cut64(I)
	a.lqAddr = cut64(L)
	a.lqSeq = cut64(L)
	a.lqFillAt = cut64(L)
	a.sqAddr = cut64(S)
	a.sqData = cut64(S)
	a.sqSeq = cut64(S)
	a.btbTag = cut64(cfg.BTBSize)
	a.btbTgt = cut64(cfg.BTBSize)
	a.ras = cut64(cfg.RASSize)

	o = 0
	cut16 := func(n int) []uint16 { v := a.u16[o : o+n : o+n]; o += n; return v }
	a.rat = cut16(A)
	a.freeBack = cut16(P)
	a.robDest = cut16(R)
	a.robOld = cut16(R)
	a.robLQ = cut16(R)
	a.robSQ = cut16(R)
	a.iqSrc1 = cut16(I)
	a.iqSrc2 = cut16(I)
	a.iqDest = cut16(I)
	a.iqROB = cut16(I)
	a.lqDest = cut16(L)
	a.lqROB = cut16(L)
	a.sqROB = cut16(S)

	o = 0
	cut8 := func(n int) []uint8 { v := a.u8[o : o+n : o+n]; o += n; return v }
	a.prfReady = cut8(P)
	a.prfAlloc = cut8(P)
	a.robArch = cut8(R)
	a.robExc = cut8(R)
	a.robOp = cut8(R)
	a.robFlags = cut8(R)
	a.iqOp = cut8(I)
	a.iqFlags = cut8(I)
	a.lqSize = cut8(L)
	a.lqFlags = cut8(L)
	a.sqSize = cut8(S)
	a.sqFlags = cut8(S)
	a.bimodal = cut8(cfg.BimodalSize)
}

// Exception codes stored in robExc (3 bits injected).
const (
	excNone      = 0
	excUnmapped  = 1
	excMisalign  = 2
	excProt      = 3
	excIllegal   = 4
	excBadFetch  = 5
	excSpurious1 = 6 // reachable only via injected flips
	excSpurious2 = 7
)

func excName(code uint8) string {
	switch code {
	case excUnmapped:
		return "unmapped access"
	case excMisalign:
		return "misaligned access"
	case excProt:
		return "protection violation"
	case excIllegal:
		return "illegal instruction"
	case excBadFetch:
		return "instruction fetch fault"
	}
	return "spurious exception"
}

// fetchSlot is one decoupling-buffer entry between fetch and rename.
// The fetch queue is variable-length and tiny, so it stays a plain
// struct slice rather than joining the slabs.
type fetchSlot struct {
	PC         uint64
	Word       uint32
	In         isa.Instr // predecoded once at fetch
	FetchFault bool      // instruction fetch failed; raises at commit
	PredTaken  bool
	PredTarget uint64
}

// inflightOp is an operation executing in a functional unit.
type inflightOp struct {
	DoneAt uint64
	Dest   uint16 // noPhys when no register result
	Value  uint64
	ROBIdx uint16
	Seq    uint64
}
