package cpu

// NoDest marks a CommitEvent whose instruction wrote no architectural
// register (stores, branches, OUT, HALT, NOP).
const NoDest uint8 = 0xff

// CommitEvent describes one architecturally committed instruction. The
// sequence of events of a fault-free run is exactly the program's
// dynamic instruction stream in program order: squashed (wrong-path)
// instructions never commit and therefore never appear.
//
// The binary-level ACE analysis uses the event stream to reconstruct,
// for any cycle, (a) the index of the last committed instruction and
// (b) the committed rename map (architectural register -> physical
// register): when an instruction with DestArch=a commits, the committed
// mapping of a becomes DestPhys and stays there until the next writer
// of a commits.
type CommitEvent struct {
	Cycle    uint64 // cycle at which the instruction committed
	PC       uint64 // instruction address
	DestArch uint8  // architectural destination, NoDest when none
	DestPhys uint16 // physical destination tag (undefined when DestArch is NoDest)
}

// SetCommitHook installs a callback invoked once per committed
// instruction, in commit (program) order. A nil hook (the default)
// costs one predictable branch per commit; tracing is enabled only for
// golden runs that feed the static ACE analysis, never on the fault
// injection hot path.
func (c *Core) SetCommitHook(fn func(CommitEvent)) { c.commitHook = fn }
