package cpu

// Binary serialization of CoreState for the prep-artifact cache
// (internal/artcache): a cached checkpoint stream lets a warm run skip
// the golden simulation entirely. The encoding is canonical — the same
// state always produces the same bytes — and bit-complete with respect
// to CoreState.Equal: DecodeCoreState(EncodeTo(s)) is strictly Equal
// to s, which TestCoreStateEncodeRoundTrip asserts against live
// mid-run snapshots. Dead state is included (it is part of strict
// equality and costs little after zero-run compression of the u8
// slab).
//
// There is no per-struct version tag here: the enclosing prep bundle
// (internal/core) carries the format version, and the artifact cache
// checksums every blob, so a reader never sees a stale layout. Anyone
// changing CoreState or the slab carving must bump the bundle version
// (core.prepBundleVersion) — the round-trip tests plus the
// snapshotcover lint pass flag the state change itself.

import (
	"fmt"

	"sevsim/internal/binio"
	"sevsim/internal/isa"
	"sevsim/internal/simerr"
)

// EncodeTo appends the snapshot's complete state to w.
func (s *CoreState) EncodeTo(w *binio.Writer) {
	w.U64s(s.u64)
	w.U16s(s.u16)
	w.RLE(s.u8)

	w.Int(s.ROBHead)
	w.Int(s.ROBCount)
	w.Int(s.LQHead)
	w.Int(s.LQCount)
	w.Int(s.SQHead)
	w.Int(s.SQCount)
	w.Int(s.RASTop)
	w.Int(s.FreeCount)

	w.U64(s.FetchPC)
	w.Uvarint(uint64(len(s.FetchQ)))
	for i := range s.FetchQ {
		f := &s.FetchQ[i]
		w.U64(f.PC)
		w.U32(f.Word)
		w.U8(uint8(f.In.Op))
		w.U8(f.In.Rd)
		w.U8(f.In.Rs1)
		w.U8(f.In.Rs2)
		w.I32(f.In.Imm)
		w.Bool(f.FetchFault)
		w.Bool(f.PredTaken)
		w.U64(f.PredTarget)
	}
	w.U64(s.FetchStall)
	w.Bool(s.FetchFrozen)

	w.Uvarint(uint64(len(s.Inflight)))
	for i := range s.Inflight {
		op := &s.Inflight[i]
		w.U64(op.DoneAt)
		w.U16(op.Dest)
		w.U64(op.Value)
		w.U16(op.ROBIdx)
		w.U64(op.Seq)
	}

	w.U64(s.Cycle)
	w.U64(s.Seq)
	w.U64(s.ExpectPC)
	w.Bool(s.Halted)
	w.Bool(s.Crash != nil)
	if s.Crash != nil {
		w.String(s.Crash.Reason)
		w.U64(s.Crash.Addr)
		w.U64(s.Crash.PC)
	}

	w.U64s(s.Output)
	w.U64(s.SquashedAfter)
	w.Int(s.IQCount)
	w.Int(s.PRFLive)

	s.Stats.EncodeTo(w)
}

// EncodeTo appends the stats counters to w (also used by the
// machine.Result encoder).
func (st *Stats) EncodeTo(w *binio.Writer) {
	w.U64(st.Cycles)
	w.U64(st.Committed)
	w.U64(st.Fetched)
	w.U64(st.Mispredicts)
	w.U64(st.Branches)
	w.U64(st.Loads)
	w.U64(st.Stores)
	w.U64(st.ROBOccupancy)
	w.U64(st.IQOccupancy)
	w.U64(st.LQOccupancy)
	w.U64(st.SQOccupancy)
	w.U64(st.PRFLive)
}

// DecodeFrom reads counters written by EncodeTo.
func (st *Stats) DecodeFrom(r *binio.Reader) {
	st.Cycles = r.U64()
	st.Committed = r.U64()
	st.Fetched = r.U64()
	st.Mispredicts = r.U64()
	st.Branches = r.U64()
	st.Loads = r.U64()
	st.Stores = r.U64()
	st.ROBOccupancy = r.U64()
	st.IQOccupancy = r.U64()
	st.LQOccupancy = r.U64()
	st.SQOccupancy = r.U64()
	st.PRFLive = r.U64()
}

// DecodeCoreState reads one CoreState written by EncodeTo into a
// pooled snapshot carved for cfg, which must be the configuration the
// state was captured under: the slab lengths are validated against it
// before the views are carved, exactly like Restore validates against
// a live core. The caller owns the result and must Release it.
func DecodeCoreState(r *binio.Reader, cfg *Config) (*CoreState, error) {
	s := coreStatePool.Get().(*CoreState)
	fail := func(err error) (*CoreState, error) {
		s.Crash = nil
		coreStatePool.Put(s)
		return nil, err
	}

	s.u64 = r.U64sInto(s.u64)
	s.u16 = r.U16sInto(s.u16)
	s.u8 = r.RLEInto(s.u8)
	if err := r.Err(); err != nil {
		return fail(err)
	}
	n64, n16, n8 := slabSizes(cfg)
	if len(s.u64) != n64 || len(s.u16) != n16 || len(s.u8) != n8 {
		return fail(fmt.Errorf("cpu: decode: slab lengths %d/%d/%d do not match config (want %d/%d/%d)",
			len(s.u64), len(s.u16), len(s.u8), n64, n16, n8))
	}
	s.carve(cfg)

	s.ROBHead = r.Int()
	s.ROBCount = r.Int()
	s.LQHead = r.Int()
	s.LQCount = r.Int()
	s.SQHead = r.Int()
	s.SQCount = r.Int()
	s.RASTop = r.Int()
	s.FreeCount = r.Int()

	s.FetchPC = r.U64()
	nq := int(r.Uvarint())
	if nq < 0 || nq > cfg.FetchQueueSize+1 {
		return fail(fmt.Errorf("cpu: decode: fetch queue length %d exceeds config", nq))
	}
	if cap(s.FetchQ) < nq {
		s.FetchQ = make([]fetchSlot, nq)
	} else {
		s.FetchQ = s.FetchQ[:nq]
	}
	for i := range s.FetchQ {
		f := &s.FetchQ[i]
		f.PC = r.U64()
		f.Word = r.U32()
		f.In.Op = isa.Opcode(r.U8())
		f.In.Rd = r.U8()
		f.In.Rs1 = r.U8()
		f.In.Rs2 = r.U8()
		f.In.Imm = r.I32()
		f.FetchFault = r.Bool()
		f.PredTaken = r.Bool()
		f.PredTarget = r.U64()
	}
	s.FetchStall = r.U64()
	s.FetchFrozen = r.Bool()

	ni := int(r.Uvarint())
	if ni < 0 || ni > 4*(cfg.IQSize+cfg.LQSize)+8 {
		return fail(fmt.Errorf("cpu: decode: inflight length %d exceeds config", ni))
	}
	if cap(s.Inflight) < ni {
		s.Inflight = make([]inflightOp, ni)
	} else {
		s.Inflight = s.Inflight[:ni]
	}
	for i := range s.Inflight {
		op := &s.Inflight[i]
		op.DoneAt = r.U64()
		op.Dest = r.U16()
		op.Value = r.U64()
		op.ROBIdx = r.U16()
		op.Seq = r.U64()
	}

	s.Cycle = r.U64()
	s.Seq = r.U64()
	s.ExpectPC = r.U64()
	s.Halted = r.Bool()
	s.Crash = nil
	if r.Bool() {
		s.Crash = &simerr.Crash{Reason: r.String(), Addr: r.U64(), PC: r.U64()}
	}

	s.Output = r.U64sInto(s.Output)
	s.SquashedAfter = r.U64()
	s.IQCount = r.Int()
	s.PRFLive = r.Int()

	s.Stats.DecodeFrom(r)
	if err := r.Err(); err != nil {
		return fail(err)
	}
	return s, nil
}

// EncodeCommitEvents appends a length-prefixed commit trace to w; the
// trace is the prune-path half of a cached prep artifact.
func EncodeCommitEvents(w *binio.Writer, evs []CommitEvent) {
	w.Uvarint(uint64(len(evs)))
	w.Grow(19 * len(evs))
	for i := range evs {
		w.U64(evs[i].Cycle)
		w.U64(evs[i].PC)
		w.U8(evs[i].DestArch)
		w.U16(evs[i].DestPhys)
	}
}

// DecodeCommitEvents reads a trace written by EncodeCommitEvents.
func DecodeCommitEvents(r *binio.Reader) []CommitEvent {
	n := int(r.Uvarint())
	if n < 0 || n > r.Len()/19+1 {
		r.Fail(fmt.Errorf("cpu: decode: commit trace length %d exceeds remaining input", n))
		return nil
	}
	evs := make([]CommitEvent, n)
	for i := range evs {
		evs[i].Cycle = r.U64()
		evs[i].PC = r.U64()
		evs[i].DestArch = r.U8()
		evs[i].DestPhys = r.U16()
	}
	return evs
}
