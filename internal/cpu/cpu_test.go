package cpu

import (
	"testing"

	"sevsim/internal/isa"
	"sevsim/internal/mem"
	"sevsim/internal/simerr"
)

func testConfig() Config {
	return Config{
		Name: "test", XLEN: 32, NumArchRegs: 16, NumPhysRegs: 64,
		ROBSize: 16, IQSize: 8, LQSize: 4, SQSize: 4,
		FetchWidth: 2, IssueWidth: 4, CommitWidth: 2, WBWidth: 4,
		FetchQueueSize: 8, ALULat: 1, MulLat: 3, DivLat: 10,
		BimodalSize: 64, BTBSize: 16, RASSize: 4, StoreForwarding: true,
	}
}

func testCore(prog []isa.Instr) *Core {
	m := mem.NewMemory(50)
	m.Map(mem.Region{Name: "code", Base: 0x1000, Size: 0x4000, Perm: mem.PermR | mem.PermX})
	m.Map(mem.Region{Name: "data", Base: 0x100000, Size: 0x10000, Perm: mem.PermR | mem.PermW})
	m.Map(mem.Region{Name: "stack", Base: 0x200000, Size: 0x10000, Perm: mem.PermR | mem.PermW})
	image := make([]byte, len(prog)*4)
	for i, in := range prog {
		w := in.Encode()
		image[i*4] = byte(w)
		image[i*4+1] = byte(w >> 8)
		image[i*4+2] = byte(w >> 16)
		image[i*4+3] = byte(w >> 24)
	}
	m.LoadImage(0x1000, image)
	l2 := mem.NewCache(mem.CacheConfig{Name: "l2", Size: 16384, Ways: 4, LineSize: 64, HitLatency: 8, AddrBits: 32}, m)
	l1i := mem.NewCache(mem.CacheConfig{Name: "l1i", Size: 2048, Ways: 2, LineSize: 64, HitLatency: 1, AddrBits: 32, ReadOnly: true}, l2)
	l1d := mem.NewCache(mem.CacheConfig{Name: "l1d", Size: 2048, Ways: 2, LineSize: 64, HitLatency: 2, AddrBits: 32}, l2)
	c := NewCore(testConfig(), m, l1i, l1d, 0x1000)
	c.SetReg(isa.RegSP, 0x210000)
	return c
}

func run(c *Core, max uint64) {
	for c.Cycle() < max && c.Step() {
	}
}

func TestFieldBitsMatchLayout(t *testing.T) {
	c := testCore([]isa.Instr{isa.Halt()})
	// PRF: 64 regs x 32 bits.
	if got := c.FieldBits(FieldPRF); got != 64*32 {
		t.Errorf("PRF bits = %d", got)
	}
	// IQ source: 8 entries x 2*(8 tag + 1 ready).
	if got := c.FieldBits(FieldIQSrc); got != 8*18 {
		t.Errorf("IQ.src bits = %d", got)
	}
	// ROB index is 4 bits for 16 entries.
	if got := c.FieldBits(FieldIQDst); got != 8*(8+4) {
		t.Errorf("IQ.dst bits = %d", got)
	}
	// LQ: 4 entries x (32 addr + 8 tag + 4 rob + 3 state).
	if got := c.FieldBits(FieldLQ); got != 4*(32+8+4+3) {
		t.Errorf("LQ bits = %d", got)
	}
	// SQ: 4 entries x (2*32 + 4 + 2).
	if got := c.FieldBits(FieldSQ); got != 4*(64+4+2) {
		t.Errorf("SQ bits = %d", got)
	}
	if got := c.FieldBits(FieldROBPC); got != 16*32 {
		t.Errorf("ROB.pc bits = %d", got)
	}
	if got := c.FieldBits(FieldROBDest); got != 16*8 {
		t.Errorf("ROB.dest bits = %d", got)
	}
	if got := c.FieldBits(FieldROBCtrl); got != 16*12 {
		t.Errorf("ROB.ctrl bits = %d", got)
	}
}

func TestFieldNames(t *testing.T) {
	want := map[Field]string{
		FieldPRF: "RF", FieldIQSrc: "IQ.src", FieldIQDst: "IQ.dst",
		FieldLQ: "LQ", FieldSQ: "SQ", FieldROBPC: "ROB.pc",
		FieldROBDest: "ROB.dest", FieldROBOld: "ROB.old", FieldROBCtrl: "ROB.ctrl",
	}
	for f, name := range want {
		if f.String() != name {
			t.Errorf("Field(%d) = %q, want %q", f, f.String(), name)
		}
	}
}

func TestPRFFlipChangesValue(t *testing.T) {
	// r3 (a0) starts mapped at phys 3; flipping bit 4 of phys 3 before
	// the program reads it must change the output by 16.
	c := testCore([]isa.Instr{
		isa.I(isa.OpAddi, isa.RegA1, isa.RegA0, 0), // a1 = a0
		isa.Out(isa.RegA1),
		isa.Halt(),
	})
	c.FlipBit(FieldPRF, uint64(isa.RegA0)*32+4)
	run(c, 10000)
	if !c.Halted() {
		t.Fatal("did not halt")
	}
	if got := c.Output()[0]; got != 16 {
		t.Errorf("output = %d, want 16", got)
	}
}

func TestPRFFlipOnFreeRegisterMasked(t *testing.T) {
	// Flipping a never-allocated physical register must not change the
	// program result.
	c := testCore([]isa.Instr{
		isa.I(isa.OpAddi, isa.RegA0, isa.RegZero, 7),
		isa.Out(isa.RegA0),
		isa.Halt(),
	})
	c.FlipBit(FieldPRF, uint64(60)*32+1) // phys 60: far above arch regs
	run(c, 10000)
	if got := c.Output()[0]; got != 7 {
		t.Errorf("output = %d, want 7", got)
	}
}

func TestIllegalFieldPanics(t *testing.T) {
	c := testCore([]isa.Instr{isa.Halt()})
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("expected assert")
		} else if _, ok := r.(*simerr.Assert); !ok {
			panic(r)
		}
	}()
	c.FieldBits(Field(99))
}

func TestPredictorBimodal(t *testing.T) {
	c := testCore([]isa.Instr{isa.Halt()})
	pc := uint64(0x1000)
	if c.predictCond(pc) {
		t.Error("initial prediction should be not-taken (weak)")
	}
	c.updateCond(pc, true)
	c.updateCond(pc, true)
	if !c.predictCond(pc) {
		t.Error("after two taken outcomes, predict taken")
	}
	c.updateCond(pc, false)
	c.updateCond(pc, false)
	c.updateCond(pc, false)
	if c.predictCond(pc) {
		t.Error("after three not-taken outcomes, predict not-taken")
	}
}

func TestPredictorBTB(t *testing.T) {
	c := testCore([]isa.Instr{isa.Halt()})
	if _, ok := c.predictIndirect(0x1000); ok {
		t.Error("cold BTB should miss")
	}
	c.updateIndirect(0x1000, 0x2000)
	if tgt, ok := c.predictIndirect(0x1000); !ok || tgt != 0x2000 {
		t.Errorf("BTB = %#x, %v", tgt, ok)
	}
}

func TestPredictorRAS(t *testing.T) {
	c := testCore([]isa.Instr{isa.Halt()})
	if _, ok := c.popRAS(); ok {
		t.Error("empty RAS should miss")
	}
	c.pushRAS(0x1004)
	c.pushRAS(0x2004)
	if v, ok := c.popRAS(); !ok || v != 0x2004 {
		t.Errorf("RAS pop = %#x", v)
	}
	if v, ok := c.popRAS(); !ok || v != 0x1004 {
		t.Errorf("RAS pop 2 = %#x", v)
	}
}

func TestROBCircularity(t *testing.T) {
	c := testCore([]isa.Instr{isa.Halt()})
	n := c.cfg.ROBSize
	for i := 0; i < n; i++ {
		idx := c.robAlloc()
		c.robSeq[idx] = uint64(i + 1)
	}
	if c.robCount != n {
		t.Fatal("should be full")
	}
	// Retire two from the head the way commit does; slot bytes stay in
	// place (dead but injectable).
	c.robHead = (c.robHead + 1) % n
	c.robCount--
	c.robHead = (c.robHead + 1) % n
	c.robCount--
	if c.robSeq[0] != 1 || c.robSeq[1] != 2 {
		t.Error("retired slot bytes should stay in place")
	}
	idx := c.robAlloc()
	if idx != 0 {
		t.Errorf("wraparound index = %d", idx)
	}
	// robAlloc no longer clears the slot: the recycled bytes survive
	// until the caller overwrites every field (the rename paths do).
	if c.robSeq[idx] != 1 {
		t.Error("recycled slot must keep its bytes until the caller writes them")
	}
	if c.robSeq[c.robHead] != 3 {
		t.Errorf("head seq = %d", c.robSeq[c.robHead])
	}
}

func TestFreeListLIFO(t *testing.T) {
	c := testCore([]isa.Instr{isa.Halt()})
	before := c.freeCount
	a := c.popFree()
	b := c.popFree()
	if a == b {
		t.Fatalf("popFree returned %d twice", a)
	}
	if c.prfAlloc[a] == 0 || c.prfReady[a] != 0 {
		t.Error("popFree must mark the register allocated and not-ready")
	}
	c.freePhys(b)
	c.freePhys(a)
	if c.freeCount != before {
		t.Errorf("freeCount = %d, want %d", c.freeCount, before)
	}
	if got := c.popFree(); got != a {
		t.Errorf("free list is not LIFO: popped %d, want %d", got, a)
	}
	c.freePhys(a)
}

func TestRestoreMismatchedConfigPanics(t *testing.T) {
	// A snapshot from a differently configured core must be rejected
	// loudly: the old per-field bare copies silently truncated (e.g. a
	// 64-phys-reg snapshot restored into a 32-phys-reg core kept half
	// the registers stale), corrupting the run instead of failing it.
	big := testCore([]isa.Instr{isa.Halt()})
	s := big.Snapshot()
	smallCfg := testConfig()
	smallCfg.NumPhysRegs = 32
	m := mem.NewMemory(50)
	m.Map(mem.Region{Name: "code", Base: 0x1000, Size: 0x4000, Perm: mem.PermR | mem.PermX})
	l2 := mem.NewCache(mem.CacheConfig{Name: "l2", Size: 16384, Ways: 4, LineSize: 64, HitLatency: 8, AddrBits: 32}, m)
	l1i := mem.NewCache(mem.CacheConfig{Name: "l1i", Size: 2048, Ways: 2, LineSize: 64, HitLatency: 1, AddrBits: 32, ReadOnly: true}, l2)
	l1d := mem.NewCache(mem.CacheConfig{Name: "l1d", Size: 2048, Ways: 2, LineSize: 64, HitLatency: 2, AddrBits: 32}, l2)
	small := NewCore(smallCfg, m, l1i, l1d, 0x1000)
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("restore from a mismatched snapshot must assert")
		} else if _, ok := r.(*simerr.Assert); !ok {
			panic(r)
		}
	}()
	small.Restore(s)
}

func TestSnapshotRoundTripStrictEqual(t *testing.T) {
	// Run mid-program, snapshot, perturb, restore: the restored core's
	// snapshot must be bit-identical (strict Equal, dead state included).
	c := testCore([]isa.Instr{
		isa.I(isa.OpAddi, isa.RegA0, isa.RegZero, 5),
		isa.R(isa.OpMul, isa.RegA1, isa.RegA0, isa.RegA0),
		isa.Out(isa.RegA1),
		isa.Halt(),
	})
	for i := 0; i < 3; i++ {
		c.Step()
	}
	s := c.Snapshot()
	run(c, 10000)
	if !c.Halted() {
		t.Fatal("did not halt")
	}
	c.Restore(s)
	s2 := c.Snapshot()
	if !s.Equal(s2) {
		t.Fatal("Restore(Snapshot()) did not round-trip bit-exactly")
	}
	if !c.StateEquals(s) || c.StateHash() == 0 {
		t.Fatal("restored core must StateEquals its own snapshot")
	}
	// The restored core must replay to the same architectural result.
	run(c, 10000)
	if got := c.Output()[0]; got != 25 {
		t.Errorf("output after restore = %d, want 25", got)
	}
	s.Release()
	s2.Release()
}

func TestStatsIPCZeroCycles(t *testing.T) {
	var s Stats
	if s.IPC() != 0 {
		t.Error("IPC of empty stats should be 0")
	}
}

func TestIQDstFlipOutOfRangeAsserts(t *testing.T) {
	// A program whose IQ entry gets a corrupted ROB index should either
	// mask (entry unused) or assert; drive a case that must assert: set
	// all ROB-index bits of every IQ entry mid-flight.
	prog := []isa.Instr{
		isa.I(isa.OpAddi, isa.RegA0, isa.RegZero, 1),
		isa.R(isa.OpMul, isa.RegA1, isa.RegA0, isa.RegA0),
		isa.R(isa.OpMul, isa.RegA2, isa.RegA1, isa.RegA1),
		isa.Out(isa.RegA2),
		isa.Halt(),
	}
	asserted := false
	func() {
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(*simerr.Assert); ok {
					asserted = true
					return
				}
				panic(r)
			}
		}()
		c := testCore(prog)
		// Step a few cycles to get entries in flight, then corrupt the
		// ROB linkage of every IQ slot.
		for i := 0; i < 4; i++ {
			c.Step()
		}
		per := uint64(c.iqDstEntryBits())
		for e := uint64(0); e < 8; e++ {
			for bit := uint64(8); bit < per; bit++ { // all robIdx bits
				c.FlipBit(FieldIQDst, e*per+bit)
			}
		}
		run(c, 10000)
	}()
	if !asserted {
		t.Log("note: corrupted IQ linkage did not assert this time (entries may have been empty)")
	}
}
