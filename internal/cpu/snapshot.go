package cpu

// Full-core snapshot and restore, the foundation of the checkpoint
// fast-forward in the injection engine (internal/checkpoint). A
// CoreState captures every piece of state that can influence future
// execution — pipeline structures, rename state, predictor, fetch
// engine, commit bookkeeping — plus the Stats needed so a run restored
// mid-flight reports the same statistics a from-zero run would.
//
// Because the fixed-size hot state lives in three flat slabs
// (structures.go), a snapshot is three slice copies plus the scalars
// and the small variable-length queues, and the strict comparison is
// three flat compares. Snapshots are pooled: Snapshot draws a
// CoreState from a sync.Pool and reuses its buffers (length/capacity
// discipline in snapCopy), and Release returns it. Ownership rule
// (DESIGN.md §12): the snapshot owner is whoever holds the pointer;
// Release may be called exactly once, only after every reader —
// restore workers, convergence watches — is done with it. In the
// engine that point is faultinj.Experiment.Close.
//
// Three operations with three distinct equality notions live here:
//
//   - Snapshot/Restore are bit-exact: a restored core replays the
//     remainder of the run cycle-for-cycle identically to the core the
//     snapshot was taken from. Scratch buffers (dueBuf, opsBuf,
//     candBuf) and the predecode memo are the only exclusions; the
//     buffers are dead across cycles by construction and the memo
//     caches a pure function of the fetched word.
//
//   - StateEquals is the *behavioral* equivalence used by the
//     early-convergence Masked exit: it ignores architecturally dead
//     state (values of unallocated or not-yet-written physical
//     registers, fields of unoccupied ROB/IQ/LQ/SQ slots, the dead
//     tail of the free-list stack) so that a fault parked in a dead
//     slot converges as soon as the live state matches, not only when
//     the dead bits are coincidentally rewritten. It first tries the
//     flat slab compare — identical slabs imply behavioral equality —
//     and only walks per-entry when the slabs differ. See the
//     dead-state arguments on each exclusion below; DESIGN.md §10 and
//     §12 carry the full soundness argument.
//
//   - CoreState.Equal is strict: every captured bit, dead or live.
//     Tests use it to prove Restore(Snapshot()) round-trips exactly.

import (
	"bytes"
	"slices"
	"sync"

	"sevsim/internal/simerr"
)

// CoreState is a point-in-time copy of all authoritative core state:
// the three slabs (with views carved over them, so the equality walks
// index snapshot and live core identically), the ring positions and
// counters, and the variable-length queues. It shares no memory with
// the core it was taken from, so a snapshot may be restored
// concurrently into many cores. It is immutable from Snapshot until
// Release: Restore never writes through it.
type CoreState struct {
	soa

	ROBHead   int
	ROBCount  int
	LQHead    int
	LQCount   int
	SQHead    int
	SQCount   int
	RASTop    int
	FreeCount int

	FetchPC     uint64
	FetchQ      []fetchSlot
	FetchStall  uint64
	FetchFrozen bool

	Inflight []inflightOp

	Cycle    uint64
	Seq      uint64
	ExpectPC uint64
	Halted   bool
	Crash    *simerr.Crash

	Output        []uint64
	SquashedAfter uint64
	IQCount       int
	PRFLive       int

	Stats Stats
}

// coreStatePool recycles snapshot buffers across checkpoints and
// units. A pooled CoreState keeps its slabs and queue buffers, so a
// same-config Snapshot is three copies with zero allocation.
var coreStatePool = sync.Pool{New: func() any { return new(CoreState) }}

// Release returns the snapshot's buffers to the pool. The caller must
// be the last holder: no restore, comparison, or convergence watch may
// use the snapshot afterwards, and Release must not be called twice.
func (s *CoreState) Release() {
	s.Crash = nil
	coreStatePool.Put(s)
}

// snapCopy copies src into dst, reusing dst's backing array when its
// capacity suffices (the pooled-buffer length/capacity discipline: the
// result always has len(src), and only grows an allocation when the
// pooled buffer is too small).
func snapCopy[T any](dst, src []T) []T {
	if cap(dst) < len(src) {
		dst = make([]T, len(src))
	} else {
		dst = dst[:len(src)]
	}
	copy(dst, src)
	return dst
}

// Snapshot captures the complete core state into a pooled CoreState.
// The result is immutable by contract until Release: Restore never
// writes through it, so one snapshot can be shared read-only across
// concurrent injection workers.
func (c *Core) Snapshot() *CoreState {
	s := coreStatePool.Get().(*CoreState)
	s.u64 = snapCopy(s.u64, c.u64)
	s.u16 = snapCopy(s.u16, c.u16)
	s.u8 = snapCopy(s.u8, c.u8)
	s.carve(&c.cfg) // re-slice the views over the copied slabs

	s.ROBHead, s.ROBCount = c.robHead, c.robCount
	s.LQHead, s.LQCount = c.lqHead, c.lqCount
	s.SQHead, s.SQCount = c.sqHead, c.sqCount
	s.RASTop = c.rasTop
	s.FreeCount = c.freeCount

	s.FetchPC = c.fetchPC
	s.FetchQ = snapCopy(s.FetchQ, c.fetchQ[c.fetchHead:])
	s.FetchStall = c.fetchStall
	s.FetchFrozen = c.fetchFrozen

	s.Inflight = snapCopy(s.Inflight, c.inflight)

	s.Cycle = c.cycle
	s.Seq = c.seq
	s.ExpectPC = c.expectPC
	s.Halted = c.halted
	s.Crash = nil
	if c.crash != nil {
		crash := *c.crash
		s.Crash = &crash
	}

	s.Output = snapCopy(s.Output, c.output)
	s.SquashedAfter = c.squashedAfter
	s.IQCount = c.iqCount
	s.PRFLive = c.prfLive

	s.Stats = c.Stats
	return s
}

// Restore overwrites the core's state with the snapshot's, reusing the
// core's existing backing arrays (restore-into), so the injection hot
// loop recycles one scratch core per worker instead of allocating a
// fresh core per injection. The snapshot must come from an identically
// configured core: every slab length is validated, which covers every
// fixed-size structure including the predictor tables (a mismatched
// snapshot used to silently truncate on the bare copies).
func (c *Core) Restore(s *CoreState) {
	if len(c.u64) != len(s.u64) || len(c.u16) != len(s.u16) || len(c.u8) != len(s.u8) {
		simerr.Assertf(
			"cpu: restore from a differently configured core snapshot: slab lengths %d/%d/%d (u64/u16/u8), core has %d/%d/%d",
			len(s.u64), len(s.u16), len(s.u8), len(c.u64), len(c.u16), len(c.u8))
	}
	copy(c.u64, s.u64)
	copy(c.u16, s.u16)
	copy(c.u8, s.u8)

	c.robHead, c.robCount = s.ROBHead, s.ROBCount
	c.lqHead, c.lqCount = s.LQHead, s.LQCount
	c.sqHead, c.sqCount = s.SQHead, s.SQCount
	c.rasTop = s.RASTop
	c.freeCount = s.FreeCount

	c.fetchPC = s.FetchPC
	c.fetchQ = append(c.fetchQ[:0], s.FetchQ...)
	c.fetchHead = 0
	c.fetchStall = s.FetchStall
	c.fetchFrozen = s.FetchFrozen

	c.inflight = append(c.inflight[:0], s.Inflight...)

	c.cycle = s.Cycle
	c.seq = s.Seq
	c.expectPC = s.ExpectPC
	c.halted = s.Halted
	c.crash = nil
	if s.Crash != nil {
		crash := *s.Crash
		c.crash = &crash
	}

	c.output = append(c.output[:0], s.Output...)
	c.squashedAfter = s.SquashedAfter
	c.iqCount = s.IQCount
	c.prfLive = s.PRFLive

	// Rebuild the derived issue-queue and load-queue masks from the
	// restored slabs.
	c.iqValid = 0
	c.iqReady = 0
	for i, f := range c.iqFlags {
		if f&qValid != 0 {
			c.iqValid |= 1 << uint(i)
		}
		if f&(qValid|qIssued|qRdy1|qRdy2) == qValid|qRdy1|qRdy2 {
			c.iqReady |= 1 << uint(i)
		}
	}
	c.lqPending = 0
	for i, f := range c.lqFlags {
		if f&(lValid|lAddrReady|lDone|lInflight) == lValid|lAddrReady {
			c.lqPending |= 1 << uint(i)
		}
	}

	c.Stats = s.Stats
}

// fnv64 is a 64-bit FNV-1a accumulator over uint64 blocks, used as the
// cheap prefilter hash of the convergence check. Determinism matters
// (the hash feeds no persisted result, but a stable hash keeps the
// fast-exit behavior identical run to run); cryptographic strength does
// not.
type fnv64 uint64

const fnv64Offset fnv64 = 14695981039346656037
const fnv64Prime fnv64 = 1099511628211

func (h *fnv64) mix(v uint64) {
	*h = (*h ^ fnv64(v)) * fnv64Prime
}

func (h *fnv64) mixBool(b bool) {
	if b {
		h.mix(1)
	} else {
		h.mix(0)
	}
}

// StateHash is the cheap prefilter of the early-convergence check. It
// mixes a *subset* of the state StateEquals compares — the scalar run
// position (cycle, seq, PCs), structure occupancies, the rename map,
// the live register values, and the output stream — which is enough to
// discriminate virtually every divergent execution in one pass over a
// few hundred words. A hash collision merely costs one exact
// StateEquals call; equality is never decided by the hash alone.
//
// The subset must stay inside the set StateEquals compares: hashing
// excluded state (e.g. Stats, which legitimately differ between a
// converged faulty run and the golden run) would make the hash miss on
// truly converged states and silently disable the early exit.
func (c *Core) StateHash() uint64 {
	h := fnv64Offset
	h.mix(c.cycle)
	h.mix(c.seq)
	h.mix(c.expectPC)
	h.mix(c.fetchPC)
	h.mix(c.fetchStall)
	h.mixBool(c.fetchFrozen)
	h.mixBool(c.halted)
	h.mixBool(c.crash != nil)
	h.mix(uint64(c.robHead))
	h.mix(uint64(c.robCount))
	h.mix(uint64(c.lqHead))
	h.mix(uint64(c.lqCount))
	h.mix(uint64(c.sqHead))
	h.mix(uint64(c.sqCount))
	h.mix(uint64(c.iqCount))
	h.mix(uint64(c.prfLive))
	h.mix(uint64(len(c.fetchQ) - c.fetchHead))
	h.mix(uint64(len(c.inflight)))
	for _, p := range c.rat {
		h.mix(uint64(p))
	}
	h.mix(uint64(c.freeCount))
	for _, p := range c.freeBack[:c.freeCount] {
		h.mix(uint64(p))
	}
	for p := range c.prf {
		// Mirror the StateEquals exclusion: only live values.
		if c.prfAlloc[p] != 0 && c.prfReady[p] != 0 {
			h.mix(uint64(p))
			h.mix(c.prf[p])
		}
	}
	h.mix(uint64(len(c.output)))
	for _, v := range c.output {
		h.mix(v)
	}
	return uint64(h)
}

// StateEquals reports whether the core's behavioral state equals the
// snapshot's: equal states produce bit-identical future execution. The
// comparison skips state that is provably dead — overwritten before it
// can be read on every path that reaches it:
//
//   - prf[p] when prfAlloc[p] == 0 (free registers are re-written by
//     writePhys before any readPhys; readers wait on ready bits that
//     are cleared at allocation) or when prfReady[p] == 0 (the
//     in-flight producer writes the value before any consumer issues);
//   - ROB/LQ/SQ ring slots outside [head, head+count), IQ slots with
//     the valid flag clear, and freeBack entries at or above
//     freeCount: allocation overwrites the whole entry, and no reader
//     reaches an unoccupied slot from equal occupied state (corrupt
//     linkage that could reach one lives in occupied entries, which
//     are compared in full).
//
// SquashedAfter and the scratch buffers are reassigned before every use
// within a cycle, and Stats never feed back into execution or
// classification; all three are excluded. Everything else — including
// the predictor (it steers speculative cache fills and timing) and the
// committed output stream (the classification observable) — must match
// exactly.
//
// The flat fast path compares whole slabs first: identical slabs (with
// equal scalars and queues, checked before) are sufficient for
// behavioral equality, so the per-entry dead-state walk only runs when
// some slab byte differs.
func (c *Core) StateEquals(s *CoreState) bool {
	if len(c.u64) != len(s.u64) || len(c.u16) != len(s.u16) || len(c.u8) != len(s.u8) {
		return false
	}
	if c.cycle != s.Cycle || c.seq != s.Seq || c.expectPC != s.ExpectPC ||
		c.halted != s.Halted || (c.crash != nil) != (s.Crash != nil) {
		return false
	}
	if c.fetchPC != s.FetchPC || c.fetchStall != s.FetchStall || c.fetchFrozen != s.FetchFrozen {
		return false
	}
	if c.robHead != s.ROBHead || c.robCount != s.ROBCount ||
		c.lqHead != s.LQHead || c.lqCount != s.LQCount ||
		c.sqHead != s.SQHead || c.sqCount != s.SQCount ||
		c.rasTop != s.RASTop || c.freeCount != s.FreeCount ||
		c.iqCount != s.IQCount || c.prfLive != s.PRFLive {
		return false
	}
	if !slices.Equal(c.fetchQ[c.fetchHead:], s.FetchQ) || !slices.Equal(c.inflight, s.Inflight) ||
		!slices.Equal(c.output, s.Output) {
		return false
	}
	if slices.Equal(c.u64, s.u64) && slices.Equal(c.u16, s.u16) && bytes.Equal(c.u8, s.u8) {
		return true
	}
	// Some slab byte differs: walk per entry and decide whether every
	// difference is dead state.
	if !slices.Equal(c.prfReady, s.prfReady) || !slices.Equal(c.prfAlloc, s.prfAlloc) {
		return false
	}
	for p := range c.prf {
		if c.prfAlloc[p] != 0 && c.prfReady[p] != 0 && c.prf[p] != s.prf[p] {
			return false
		}
	}
	if !slices.Equal(c.rat, s.rat) {
		return false
	}
	if !slices.Equal(c.freeBack[:c.freeCount], s.freeBack[:s.FreeCount]) {
		return false
	}
	for i := 0; i < c.robCount; i++ {
		idx := (c.robHead + i) % c.cfg.ROBSize
		if c.robPC[idx] != s.robPC[idx] || c.robSeq[idx] != s.robSeq[idx] ||
			c.robPredTgt[idx] != s.robPredTgt[idx] || c.robActTgt[idx] != s.robActTgt[idx] ||
			c.robOutVal[idx] != s.robOutVal[idx] || c.robDest[idx] != s.robDest[idx] ||
			c.robOld[idx] != s.robOld[idx] || c.robLQ[idx] != s.robLQ[idx] ||
			c.robSQ[idx] != s.robSQ[idx] || c.robArch[idx] != s.robArch[idx] ||
			c.robExc[idx] != s.robExc[idx] || c.robOp[idx] != s.robOp[idx] ||
			c.robFlags[idx] != s.robFlags[idx] {
			return false
		}
	}
	for i := range c.iqFlags {
		f, g := c.iqFlags[i], s.iqFlags[i]
		if f&qValid != g&qValid {
			return false
		}
		if f&qValid == 0 {
			continue
		}
		if f != g || c.iqSrc1[i] != s.iqSrc1[i] || c.iqSrc2[i] != s.iqSrc2[i] ||
			c.iqDest[i] != s.iqDest[i] || c.iqROB[i] != s.iqROB[i] ||
			c.iqOp[i] != s.iqOp[i] || c.iqImm[i] != s.iqImm[i] || c.iqSeq[i] != s.iqSeq[i] {
			return false
		}
	}
	for i := 0; i < c.lqCount; i++ {
		idx := (c.lqHead + i) % c.cfg.LQSize
		if c.lqAddr[idx] != s.lqAddr[idx] || c.lqSeq[idx] != s.lqSeq[idx] ||
			c.lqFillAt[idx] != s.lqFillAt[idx] || c.lqDest[idx] != s.lqDest[idx] ||
			c.lqROB[idx] != s.lqROB[idx] || c.lqSize[idx] != s.lqSize[idx] ||
			c.lqFlags[idx] != s.lqFlags[idx] {
			return false
		}
	}
	for i := 0; i < c.sqCount; i++ {
		idx := (c.sqHead + i) % c.cfg.SQSize
		if c.sqAddr[idx] != s.sqAddr[idx] || c.sqData[idx] != s.sqData[idx] ||
			c.sqSeq[idx] != s.sqSeq[idx] || c.sqROB[idx] != s.sqROB[idx] ||
			c.sqSize[idx] != s.sqSize[idx] || c.sqFlags[idx] != s.sqFlags[idx] {
			return false
		}
	}
	if !slices.Equal(c.bimodal, s.bimodal) || !slices.Equal(c.btbTag, s.btbTag) ||
		!slices.Equal(c.btbTgt, s.btbTgt) || !slices.Equal(c.ras, s.ras) {
		return false
	}
	return true
}

// Equal is the strict bit-for-bit comparison of two snapshots,
// including dead state: three flat slab compares plus the scalars and
// queues. Tests use it to assert Restore(Snapshot()) round-trips every
// structure bit.
func (s *CoreState) Equal(o *CoreState) bool {
	if s.ROBHead != o.ROBHead || s.ROBCount != o.ROBCount ||
		s.LQHead != o.LQHead || s.LQCount != o.LQCount ||
		s.SQHead != o.SQHead || s.SQCount != o.SQCount ||
		s.RASTop != o.RASTop || s.FreeCount != o.FreeCount ||
		s.FetchPC != o.FetchPC || s.FetchStall != o.FetchStall || s.FetchFrozen != o.FetchFrozen ||
		s.Cycle != o.Cycle || s.Seq != o.Seq || s.ExpectPC != o.ExpectPC || s.Halted != o.Halted ||
		s.SquashedAfter != o.SquashedAfter || s.IQCount != o.IQCount || s.PRFLive != o.PRFLive ||
		s.Stats != o.Stats {
		return false
	}
	if (s.Crash != nil) != (o.Crash != nil) || (s.Crash != nil && *s.Crash != *o.Crash) {
		return false
	}
	return slices.Equal(s.u64, o.u64) && slices.Equal(s.u16, o.u16) && bytes.Equal(s.u8, o.u8) &&
		slices.Equal(s.FetchQ, o.FetchQ) && slices.Equal(s.Inflight, o.Inflight) &&
		slices.Equal(s.Output, o.Output)
}
