package cpu

// Full-core snapshot and restore, the foundation of the checkpoint
// fast-forward in the injection engine (internal/checkpoint). A
// CoreState captures every piece of state that can influence future
// execution — pipeline structures, rename state, predictor, fetch
// engine, commit bookkeeping — plus the Stats needed so a run restored
// mid-flight reports the same statistics a from-zero run would.
//
// Three operations with three distinct equality notions live here:
//
//   - Snapshot/Restore are bit-exact: a restored core replays the
//     remainder of the run cycle-for-cycle identically to the core the
//     snapshot was taken from. Scratch buffers (dueBuf, opsBuf,
//     candBuf) are the only exclusions; their contents are dead across
//     cycles by construction (each is reset with [:0] before use).
//
//   - StateEquals is the *behavioral* equivalence used by the
//     early-convergence Masked exit: it ignores architecturally dead
//     state (values of unallocated or not-yet-written physical
//     registers, fields of unoccupied ROB/IQ/LQ/SQ slots) so that a
//     fault parked in a dead slot converges as soon as the live state
//     matches, not only when the dead bits are coincidentally
//     rewritten. See the dead-state arguments on each exclusion below;
//     DESIGN.md §10 carries the full soundness argument.
//
//   - CoreState.Equal is strict: every captured bit, dead or live.
//     Tests use it to prove Restore(Snapshot()) round-trips exactly.

import (
	"sevsim/internal/simerr"
	"slices"
)

// CoreState is a point-in-time copy of all authoritative core state.
// It shares no memory with the core it was taken from, so a snapshot
// may be restored concurrently into many cores.
type CoreState struct {
	PRF      []uint64
	PRFReady []bool
	PRFAlloc []bool
	RAT      []uint16
	FreeList []uint16

	ROB      []robEntry
	ROBHead  int
	ROBCount int
	IQ       []iqEntry
	LQ       []lqEntry
	LQHead   int
	LQCount  int
	SQ       []sqEntry
	SQHead   int
	SQCount  int

	Bimodal []uint8
	BTBTag  []uint64
	BTBTgt  []uint64
	RAS     []uint64
	RASTop  int

	FetchPC     uint64
	FetchQ      []fetchSlot
	FetchStall  uint64
	FetchFrozen bool

	Inflight []inflightOp

	Cycle    uint64
	Seq      uint64
	ExpectPC uint64
	Halted   bool
	Crash    *simerr.Crash

	Output        []uint64
	SquashedAfter uint64
	IQCount       int
	PRFLive       int

	Stats Stats
}

// Snapshot captures the complete core state. The result is immutable by
// contract: Restore never writes through it, so one snapshot can be
// shared read-only across concurrent injection workers.
func (c *Core) Snapshot() *CoreState {
	s := &CoreState{
		PRF:      slices.Clone(c.prf),
		PRFReady: slices.Clone(c.prfReady),
		PRFAlloc: slices.Clone(c.prfAlloc),
		RAT:      slices.Clone(c.rat),
		FreeList: slices.Clone(c.freeList),

		ROB:      slices.Clone(c.rob.entries),
		ROBHead:  c.rob.head,
		ROBCount: c.rob.count,
		IQ:       slices.Clone(c.iq),
		LQ:       slices.Clone(c.lq.entries),
		LQHead:   c.lq.head,
		LQCount:  c.lq.count,
		SQ:       slices.Clone(c.sq.entries),
		SQHead:   c.sq.head,
		SQCount:  c.sq.count,

		Bimodal: slices.Clone(c.pred.bimodal),
		BTBTag:  slices.Clone(c.pred.btbTag),
		BTBTgt:  slices.Clone(c.pred.btbTgt),
		RAS:     slices.Clone(c.pred.ras),
		RASTop:  c.pred.rasTop,

		FetchPC:     c.fetchPC,
		FetchQ:      slices.Clone(c.fetchQ),
		FetchStall:  c.fetchStall,
		FetchFrozen: c.fetchFrozen,

		Inflight: slices.Clone(c.inflight),

		Cycle:    c.cycle,
		Seq:      c.seq,
		ExpectPC: c.expectPC,
		Halted:   c.halted,

		Output:        slices.Clone(c.output),
		SquashedAfter: c.squashedAfter,
		IQCount:       c.iqCount,
		PRFLive:       c.prfLive,

		Stats: c.Stats,
	}
	if c.crash != nil {
		crash := *c.crash
		s.Crash = &crash
	}
	return s
}

// Restore overwrites the core's state with the snapshot's, reusing the
// core's existing backing arrays (restore-into), so the injection hot
// loop recycles one scratch core per worker instead of allocating a
// fresh core per injection. The snapshot must come from an identically
// configured core.
func (c *Core) Restore(s *CoreState) {
	if len(c.prf) != len(s.PRF) || len(c.rob.entries) != len(s.ROB) ||
		len(c.iq) != len(s.IQ) || len(c.lq.entries) != len(s.LQ) ||
		len(c.sq.entries) != len(s.SQ) {
		simerr.Assertf("cpu: restore from a differently configured core snapshot")
	}
	copy(c.prf, s.PRF)
	copy(c.prfReady, s.PRFReady)
	copy(c.prfAlloc, s.PRFAlloc)
	copy(c.rat, s.RAT)
	c.freeList = append(c.freeList[:0], s.FreeList...)

	copy(c.rob.entries, s.ROB)
	c.rob.head, c.rob.count = s.ROBHead, s.ROBCount
	copy(c.iq, s.IQ)
	copy(c.lq.entries, s.LQ)
	c.lq.head, c.lq.count = s.LQHead, s.LQCount
	copy(c.sq.entries, s.SQ)
	c.sq.head, c.sq.count = s.SQHead, s.SQCount

	copy(c.pred.bimodal, s.Bimodal)
	copy(c.pred.btbTag, s.BTBTag)
	copy(c.pred.btbTgt, s.BTBTgt)
	copy(c.pred.ras, s.RAS)
	c.pred.rasTop = s.RASTop

	c.fetchPC = s.FetchPC
	c.fetchQ = append(c.fetchQ[:0], s.FetchQ...)
	c.fetchStall = s.FetchStall
	c.fetchFrozen = s.FetchFrozen

	c.inflight = append(c.inflight[:0], s.Inflight...)

	c.cycle = s.Cycle
	c.seq = s.Seq
	c.expectPC = s.ExpectPC
	c.halted = s.Halted
	c.crash = nil
	if s.Crash != nil {
		crash := *s.Crash
		c.crash = &crash
	}

	c.output = append(c.output[:0], s.Output...)
	c.squashedAfter = s.SquashedAfter
	c.iqCount = s.IQCount
	c.prfLive = s.PRFLive

	c.Stats = s.Stats
}

// fnv64 is a 64-bit FNV-1a accumulator over uint64 blocks, used as the
// cheap prefilter hash of the convergence check. Determinism matters
// (the hash feeds no persisted result, but a stable hash keeps the
// fast-exit behavior identical run to run); cryptographic strength does
// not.
type fnv64 uint64

const fnv64Offset fnv64 = 14695981039346656037
const fnv64Prime fnv64 = 1099511628211

func (h *fnv64) mix(v uint64) {
	*h = (*h ^ fnv64(v)) * fnv64Prime
}

func (h *fnv64) mixBool(b bool) {
	if b {
		h.mix(1)
	} else {
		h.mix(0)
	}
}

// StateHash is the cheap prefilter of the early-convergence check. It
// mixes a *subset* of the state StateEquals compares — the scalar run
// position (cycle, seq, PCs), structure occupancies, the rename map,
// the live register values, and the output stream — which is enough to
// discriminate virtually every divergent execution in one pass over a
// few hundred words. A hash collision merely costs one exact
// StateEquals call; equality is never decided by the hash alone.
//
// The subset must stay inside the set StateEquals compares: hashing
// excluded state (e.g. Stats, which legitimately differ between a
// converged faulty run and the golden run) would make the hash miss on
// truly converged states and silently disable the early exit.
func (c *Core) StateHash() uint64 {
	h := fnv64Offset
	h.mix(c.cycle)
	h.mix(c.seq)
	h.mix(c.expectPC)
	h.mix(c.fetchPC)
	h.mix(c.fetchStall)
	h.mixBool(c.fetchFrozen)
	h.mixBool(c.halted)
	h.mixBool(c.crash != nil)
	h.mix(uint64(c.rob.head))
	h.mix(uint64(c.rob.count))
	h.mix(uint64(c.lq.head))
	h.mix(uint64(c.lq.count))
	h.mix(uint64(c.sq.head))
	h.mix(uint64(c.sq.count))
	h.mix(uint64(c.iqCount))
	h.mix(uint64(c.prfLive))
	h.mix(uint64(len(c.fetchQ)))
	h.mix(uint64(len(c.inflight)))
	for _, p := range c.rat {
		h.mix(uint64(p))
	}
	h.mix(uint64(len(c.freeList)))
	for _, p := range c.freeList {
		h.mix(uint64(p))
	}
	for p := range c.prf {
		// Mirror the StateEquals exclusion: only live values.
		if c.prfAlloc[p] && c.prfReady[p] {
			h.mix(uint64(p))
			h.mix(c.prf[p])
		}
	}
	h.mix(uint64(len(c.output)))
	for _, v := range c.output {
		h.mix(v)
	}
	return uint64(h)
}

// StateEquals reports whether the core's behavioral state equals the
// snapshot's: equal states produce bit-identical future execution. The
// comparison skips state that is provably dead — overwritten before it
// can be read on every path that reaches it:
//
//   - prf[p] when !prfAlloc[p] (free registers are re-written by
//     writePhys before any readPhys; readers wait on ready bits that
//     are cleared at allocation) or when !prfReady[p] (the in-flight
//     producer writes the value before any consumer issues);
//   - ROB/LQ/SQ ring slots outside [head, head+count) and IQ slots
//     with Valid == false: push/iqInsert overwrite the whole entry on
//     allocation, and no reader reaches an unoccupied slot from equal
//     occupied state (corrupt linkage that could reach one lives in
//     occupied entries, which are compared in full).
//
// SquashedAfter and the scratch buffers are reassigned before every use
// within a cycle, and Stats never feed back into execution or
// classification; all three are excluded. Everything else — including
// the predictor (it steers speculative cache fills and timing) and the
// committed output stream (the classification observable) — must match
// exactly.
func (c *Core) StateEquals(s *CoreState) bool {
	if c.cycle != s.Cycle || c.seq != s.Seq || c.expectPC != s.ExpectPC ||
		c.halted != s.Halted || (c.crash != nil) != (s.Crash != nil) {
		return false
	}
	if c.fetchPC != s.FetchPC || c.fetchStall != s.FetchStall || c.fetchFrozen != s.FetchFrozen {
		return false
	}
	if c.iqCount != s.IQCount || c.prfLive != s.PRFLive {
		return false
	}
	if !slices.Equal(c.prfReady, s.PRFReady) || !slices.Equal(c.prfAlloc, s.PRFAlloc) {
		return false
	}
	for p := range c.prf {
		if c.prfAlloc[p] && c.prfReady[p] && c.prf[p] != s.PRF[p] {
			return false
		}
	}
	if !slices.Equal(c.rat, s.RAT) || !slices.Equal(c.freeList, s.FreeList) {
		return false
	}
	if c.rob.head != s.ROBHead || c.rob.count != s.ROBCount {
		return false
	}
	for i := 0; i < c.rob.count; i++ {
		idx := (c.rob.head + i) % len(c.rob.entries)
		if c.rob.entries[idx] != s.ROB[idx] {
			return false
		}
	}
	for i := range c.iq {
		if c.iq[i].Valid != s.IQ[i].Valid {
			return false
		}
		if c.iq[i].Valid && c.iq[i] != s.IQ[i] {
			return false
		}
	}
	if c.lq.head != s.LQHead || c.lq.count != s.LQCount {
		return false
	}
	for i := 0; i < c.lq.count; i++ {
		idx := (c.lq.head + i) % len(c.lq.entries)
		if c.lq.entries[idx] != s.LQ[idx] {
			return false
		}
	}
	if c.sq.head != s.SQHead || c.sq.count != s.SQCount {
		return false
	}
	for i := 0; i < c.sq.count; i++ {
		idx := (c.sq.head + i) % len(c.sq.entries)
		if c.sq.entries[idx] != s.SQ[idx] {
			return false
		}
	}
	if !slices.Equal(c.pred.bimodal, s.Bimodal) || !slices.Equal(c.pred.btbTag, s.BTBTag) ||
		!slices.Equal(c.pred.btbTgt, s.BTBTgt) || !slices.Equal(c.pred.ras, s.RAS) ||
		c.pred.rasTop != s.RASTop {
		return false
	}
	if !slices.Equal(c.fetchQ, s.FetchQ) || !slices.Equal(c.inflight, s.Inflight) {
		return false
	}
	return slices.Equal(c.output, s.Output)
}

// Equal is the strict bit-for-bit comparison of two snapshots,
// including dead state. Tests use it to assert Restore(Snapshot())
// round-trips every structure bit.
func (s *CoreState) Equal(o *CoreState) bool {
	if s.ROBHead != o.ROBHead || s.ROBCount != o.ROBCount ||
		s.LQHead != o.LQHead || s.LQCount != o.LQCount ||
		s.SQHead != o.SQHead || s.SQCount != o.SQCount ||
		s.RASTop != o.RASTop ||
		s.FetchPC != o.FetchPC || s.FetchStall != o.FetchStall || s.FetchFrozen != o.FetchFrozen ||
		s.Cycle != o.Cycle || s.Seq != o.Seq || s.ExpectPC != o.ExpectPC || s.Halted != o.Halted ||
		s.SquashedAfter != o.SquashedAfter || s.IQCount != o.IQCount || s.PRFLive != o.PRFLive ||
		s.Stats != o.Stats {
		return false
	}
	if (s.Crash != nil) != (o.Crash != nil) || (s.Crash != nil && *s.Crash != *o.Crash) {
		return false
	}
	return slices.Equal(s.PRF, o.PRF) && slices.Equal(s.PRFReady, o.PRFReady) &&
		slices.Equal(s.PRFAlloc, o.PRFAlloc) && slices.Equal(s.RAT, o.RAT) &&
		slices.Equal(s.FreeList, o.FreeList) &&
		slices.Equal(s.ROB, o.ROB) && slices.Equal(s.IQ, o.IQ) &&
		slices.Equal(s.LQ, o.LQ) && slices.Equal(s.SQ, o.SQ) &&
		slices.Equal(s.Bimodal, o.Bimodal) && slices.Equal(s.BTBTag, o.BTBTag) &&
		slices.Equal(s.BTBTgt, o.BTBTgt) && slices.Equal(s.RAS, o.RAS) &&
		slices.Equal(s.FetchQ, o.FetchQ) && slices.Equal(s.Inflight, o.Inflight) &&
		slices.Equal(s.Output, o.Output)
}
