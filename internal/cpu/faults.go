package cpu

import (
	"math/bits"

	"sevsim/internal/simerr"
)

// Field identifies an injectable hardware array inside the core. Cache
// fields live in the mem package; the machine package unifies both
// namespaces for the injector.
type Field int

const (
	FieldPRF Field = iota
	FieldIQSrc
	FieldIQDst
	FieldLQ
	FieldSQ
	FieldROBPC
	FieldROBDest
	FieldROBOld
	FieldROBCtrl
	NumFields
)

func (f Field) String() string {
	switch f {
	case FieldPRF:
		return "RF"
	case FieldIQSrc:
		return "IQ.src"
	case FieldIQDst:
		return "IQ.dst"
	case FieldLQ:
		return "LQ"
	case FieldSQ:
		return "SQ"
	case FieldROBPC:
		return "ROB.pc"
	case FieldROBDest:
		return "ROB.dest"
	case FieldROBOld:
		return "ROB.old"
	case FieldROBCtrl:
		return "ROB.ctrl"
	}
	return "?"
}

// robIdxBits returns the width of a ROB index in this configuration.
func (c *Core) robIdxBits() int { return bits.Len(uint(c.cfg.ROBSize - 1)) }

// iqSrcEntryBits is the per-entry width of the issue queue Source field:
// two tags plus their ready bits.
func (c *Core) iqSrcEntryBits() int { return 2 * (physTagBits + 1) }

// iqDstEntryBits is the per-entry width of the issue queue Destination
// field: the destination tag plus the ROB linkage.
func (c *Core) iqDstEntryBits() int { return physTagBits + c.robIdxBits() }

// lqEntryBits is the per-entry width of a load queue entry: address,
// destination tag, ROB linkage, and the valid/addr-ready/done state bits.
func (c *Core) lqEntryBits() int { return c.cfg.XLEN + physTagBits + c.robIdxBits() + 3 }

// sqEntryBits is the per-entry width of a store queue entry: address,
// data word, ROB linkage, and the valid/ready state bits.
func (c *Core) sqEntryBits() int { return 2*c.cfg.XLEN + c.robIdxBits() + 2 }

// robCtrlBits is the per-entry width of the ROB control field: the
// architectural destination (5 bits), done, a 3-bit exception code, and
// the store/load/branch kind bits.
const robCtrlBits = 12

// FieldBits returns the total injectable bit count of a field.
func (c *Core) FieldBits(f Field) uint64 {
	switch f {
	case FieldPRF:
		return uint64(c.cfg.NumPhysRegs) * uint64(c.cfg.XLEN)
	case FieldIQSrc:
		return uint64(c.cfg.IQSize) * uint64(c.iqSrcEntryBits())
	case FieldIQDst:
		return uint64(c.cfg.IQSize) * uint64(c.iqDstEntryBits())
	case FieldLQ:
		return uint64(c.cfg.LQSize) * uint64(c.lqEntryBits())
	case FieldSQ:
		return uint64(c.cfg.SQSize) * uint64(c.sqEntryBits())
	case FieldROBPC:
		return uint64(c.cfg.ROBSize) * uint64(c.cfg.XLEN)
	case FieldROBDest, FieldROBOld:
		return uint64(c.cfg.ROBSize) * physTagBits
	case FieldROBCtrl:
		return uint64(c.cfg.ROBSize) * robCtrlBits
	}
	simerr.Assertf("cpu: FieldBits on unknown field %d", f)
	return 0
}

// FlipBit flips one bit of the named field. The bit index addresses the
// raw array, occupied or not: a flip landing on a free entry is masked
// naturally, exactly as in hardware. The bit-to-state mapping is the
// layout contract pinned by TestFieldBitsMatchLayout; the SoA views
// make each case a direct array access.
func (c *Core) FlipBit(f Field, bit uint64) {
	switch f {
	case FieldPRF:
		reg := bit / uint64(c.cfg.XLEN)
		c.prf[reg] ^= 1 << (bit % uint64(c.cfg.XLEN))
	case FieldIQSrc:
		per := uint64(c.iqSrcEntryBits())
		i := bit / per
		switch b := bit % per; {
		case b < physTagBits:
			c.iqSrc1[i] ^= 1 << b
		case b == physTagBits:
			c.iqFlags[i] ^= qRdy1
			c.iqSyncReady(int(i))
		case b < 2*physTagBits+1:
			c.iqSrc2[i] ^= 1 << (b - physTagBits - 1)
		default:
			c.iqFlags[i] ^= qRdy2
			c.iqSyncReady(int(i))
		}
	case FieldIQDst:
		per := uint64(c.iqDstEntryBits())
		i := bit / per
		if b := bit % per; b < physTagBits {
			c.iqDest[i] ^= 1 << b
		} else {
			c.iqROB[i] ^= 1 << (b - physTagBits)
		}
	case FieldLQ:
		per := uint64(c.lqEntryBits())
		i := bit / per
		xlen := uint64(c.cfg.XLEN)
		switch b := bit % per; {
		case b < xlen:
			c.lqAddr[i] ^= 1 << b
		case b < xlen+physTagBits:
			c.lqDest[i] ^= 1 << (b - xlen)
		case b < xlen+physTagBits+uint64(c.robIdxBits()):
			c.lqROB[i] ^= 1 << (b - xlen - physTagBits)
		case b == per-3:
			c.lqFlags[i] ^= lValid
			c.lqSyncPending(int(i))
		case b == per-2:
			c.lqFlags[i] ^= lAddrReady
			c.lqSyncPending(int(i))
		default:
			c.lqFlags[i] ^= lDone
			c.lqSyncPending(int(i))
		}
	case FieldSQ:
		per := uint64(c.sqEntryBits())
		i := bit / per
		xlen := uint64(c.cfg.XLEN)
		switch b := bit % per; {
		case b < xlen:
			c.sqAddr[i] ^= 1 << b
		case b < 2*xlen:
			c.sqData[i] ^= 1 << (b - xlen)
		case b < 2*xlen+uint64(c.robIdxBits()):
			c.sqROB[i] ^= 1 << (b - 2*xlen)
		case b == per-2:
			c.sqFlags[i] ^= sValid
		default:
			c.sqFlags[i] ^= sReady
		}
	case FieldROBPC:
		c.robPC[bit/uint64(c.cfg.XLEN)] ^= 1 << (bit % uint64(c.cfg.XLEN))
	case FieldROBDest:
		c.robDest[bit/physTagBits] ^= 1 << (bit % physTagBits)
	case FieldROBOld:
		c.robOld[bit/physTagBits] ^= 1 << (bit % physTagBits)
	case FieldROBCtrl:
		i := bit / robCtrlBits
		switch b := bit % robCtrlBits; {
		case b < 5:
			c.robArch[i] ^= 1 << b
		case b == 5:
			c.robFlags[i] ^= rDone
		case b < 9:
			c.robExc[i] ^= 1 << (b - 6)
		case b == 9:
			c.robFlags[i] ^= rIsStore
		case b == 10:
			c.robFlags[i] ^= rIsLoad
		default:
			c.robFlags[i] ^= rIsBranch
		}
	default:
		simerr.Assertf("cpu: FlipBit on unknown field %d", f)
	}
}
