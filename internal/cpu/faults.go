package cpu

import (
	"math/bits"

	"sevsim/internal/simerr"
)

// Field identifies an injectable hardware array inside the core. Cache
// fields live in the mem package; the machine package unifies both
// namespaces for the injector.
type Field int

const (
	FieldPRF Field = iota
	FieldIQSrc
	FieldIQDst
	FieldLQ
	FieldSQ
	FieldROBPC
	FieldROBDest
	FieldROBOld
	FieldROBCtrl
	NumFields
)

func (f Field) String() string {
	switch f {
	case FieldPRF:
		return "RF"
	case FieldIQSrc:
		return "IQ.src"
	case FieldIQDst:
		return "IQ.dst"
	case FieldLQ:
		return "LQ"
	case FieldSQ:
		return "SQ"
	case FieldROBPC:
		return "ROB.pc"
	case FieldROBDest:
		return "ROB.dest"
	case FieldROBOld:
		return "ROB.old"
	case FieldROBCtrl:
		return "ROB.ctrl"
	}
	return "?"
}

// robIdxBits returns the width of a ROB index in this configuration.
func (c *Core) robIdxBits() int { return bits.Len(uint(c.cfg.ROBSize - 1)) }

// iqSrcEntryBits is the per-entry width of the issue queue Source field:
// two tags plus their ready bits.
func (c *Core) iqSrcEntryBits() int { return 2 * (physTagBits + 1) }

// iqDstEntryBits is the per-entry width of the issue queue Destination
// field: the destination tag plus the ROB linkage.
func (c *Core) iqDstEntryBits() int { return physTagBits + c.robIdxBits() }

// lqEntryBits is the per-entry width of a load queue entry: address,
// destination tag, ROB linkage, and the valid/addr-ready/done state bits.
func (c *Core) lqEntryBits() int { return c.cfg.XLEN + physTagBits + c.robIdxBits() + 3 }

// sqEntryBits is the per-entry width of a store queue entry: address,
// data word, ROB linkage, and the valid/ready state bits.
func (c *Core) sqEntryBits() int { return 2*c.cfg.XLEN + c.robIdxBits() + 2 }

// robCtrlBits is the per-entry width of the ROB control field: the
// architectural destination (5 bits), done, a 3-bit exception code, and
// the store/load/branch kind bits.
const robCtrlBits = 12

// FieldBits returns the total injectable bit count of a field.
func (c *Core) FieldBits(f Field) uint64 {
	switch f {
	case FieldPRF:
		return uint64(c.cfg.NumPhysRegs) * uint64(c.cfg.XLEN)
	case FieldIQSrc:
		return uint64(c.cfg.IQSize) * uint64(c.iqSrcEntryBits())
	case FieldIQDst:
		return uint64(c.cfg.IQSize) * uint64(c.iqDstEntryBits())
	case FieldLQ:
		return uint64(c.cfg.LQSize) * uint64(c.lqEntryBits())
	case FieldSQ:
		return uint64(c.cfg.SQSize) * uint64(c.sqEntryBits())
	case FieldROBPC:
		return uint64(c.cfg.ROBSize) * uint64(c.cfg.XLEN)
	case FieldROBDest, FieldROBOld:
		return uint64(c.cfg.ROBSize) * physTagBits
	case FieldROBCtrl:
		return uint64(c.cfg.ROBSize) * robCtrlBits
	}
	simerr.Assertf("cpu: FieldBits on unknown field %d", f)
	return 0
}

// FlipBit flips one bit of the named field. The bit index addresses the
// raw array, occupied or not: a flip landing on a free entry is masked
// naturally, exactly as in hardware.
func (c *Core) FlipBit(f Field, bit uint64) {
	switch f {
	case FieldPRF:
		reg := bit / uint64(c.cfg.XLEN)
		c.prf[reg] ^= 1 << (bit % uint64(c.cfg.XLEN))
	case FieldIQSrc:
		per := uint64(c.iqSrcEntryBits())
		q := &c.iq[bit/per]
		switch b := bit % per; {
		case b < physTagBits:
			q.Src1 ^= 1 << b
		case b == physTagBits:
			q.Rdy1 = !q.Rdy1
		case b < 2*physTagBits+1:
			q.Src2 ^= 1 << (b - physTagBits - 1)
		default:
			q.Rdy2 = !q.Rdy2
		}
	case FieldIQDst:
		per := uint64(c.iqDstEntryBits())
		q := &c.iq[bit/per]
		if b := bit % per; b < physTagBits {
			q.Dest ^= 1 << b
		} else {
			q.ROBIdx ^= 1 << (b - physTagBits)
		}
	case FieldLQ:
		per := uint64(c.lqEntryBits())
		l := c.lq.at(uint16(bit / per))
		xlen := uint64(c.cfg.XLEN)
		switch b := bit % per; {
		case b < xlen:
			l.Addr ^= 1 << b
		case b < xlen+physTagBits:
			l.Dest ^= 1 << (b - xlen)
		case b < xlen+physTagBits+uint64(c.robIdxBits()):
			l.ROBIdx ^= 1 << (b - xlen - physTagBits)
		case b == per-3:
			l.Valid = !l.Valid
		case b == per-2:
			l.AddrReady = !l.AddrReady
		default:
			l.Done = !l.Done
		}
	case FieldSQ:
		per := uint64(c.sqEntryBits())
		s := c.sq.at(uint16(bit / per))
		xlen := uint64(c.cfg.XLEN)
		switch b := bit % per; {
		case b < xlen:
			s.Addr ^= 1 << b
		case b < 2*xlen:
			s.Data ^= 1 << (b - xlen)
		case b < 2*xlen+uint64(c.robIdxBits()):
			s.ROBIdx ^= 1 << (b - 2*xlen)
		case b == per-2:
			s.Valid = !s.Valid
		default:
			s.Ready = !s.Ready
		}
	case FieldROBPC:
		e := &c.rob.entries[bit/uint64(c.cfg.XLEN)]
		e.PC ^= 1 << (bit % uint64(c.cfg.XLEN))
	case FieldROBDest:
		e := &c.rob.entries[bit/physTagBits]
		e.DestPhys ^= 1 << (bit % physTagBits)
	case FieldROBOld:
		e := &c.rob.entries[bit/physTagBits]
		e.OldPhys ^= 1 << (bit % physTagBits)
	case FieldROBCtrl:
		e := &c.rob.entries[bit/robCtrlBits]
		switch b := bit % robCtrlBits; {
		case b < 5:
			e.DestArch ^= 1 << b
		case b == 5:
			e.Done = !e.Done
		case b < 9:
			e.Exc ^= 1 << (b - 6)
		case b == 9:
			e.IsStore = !e.IsStore
		case b == 10:
			e.IsLoad = !e.IsLoad
		default:
			e.IsBranch = !e.IsBranch
		}
	default:
		simerr.Assertf("cpu: FlipBit on unknown field %d", f)
	}
}
