package cpu

import (
	"slices"
	"testing"

	"sevsim/internal/binio"
)

func TestCommitEventsRoundTrip(t *testing.T) {
	cases := [][]CommitEvent{
		nil,
		{},
		{{Cycle: 1, PC: 0x1000, DestArch: 5, DestPhys: 42}},
		{
			{Cycle: 10, PC: 0x2000, DestArch: 0xFF, DestPhys: 0},
			{Cycle: 11, PC: 0x2004, DestArch: 1, DestPhys: 65535},
			{Cycle: 999999999, PC: 0xFFFFFFFFFFFFFFFF, DestArch: 31, DestPhys: 128},
		},
	}
	for i, evs := range cases {
		var w binio.Writer
		EncodeCommitEvents(&w, evs)
		r := binio.NewReader(w.Bytes())
		got := DecodeCommitEvents(r)
		if r.Err() != nil {
			t.Fatalf("case %d: %v", i, r.Err())
		}
		if len(got) != len(evs) || (len(evs) > 0 && !slices.Equal(got, evs)) {
			t.Fatalf("case %d: round trip mismatch: %v vs %v", i, got, evs)
		}
		if r.Len() != 0 {
			t.Fatalf("case %d: %d bytes left", i, r.Len())
		}
	}
}

func TestCommitEventsCorruptLengthFails(t *testing.T) {
	var w binio.Writer
	w.Uvarint(1 << 40)
	r := binio.NewReader(w.Bytes())
	if got := DecodeCommitEvents(r); len(got) != 0 || r.Err() == nil {
		t.Fatalf("corrupt trace length accepted: %d events, err %v", len(got), r.Err())
	}
}
