package cpu

import (
	"math/bits"

	"sevsim/internal/isa"
	"sevsim/internal/simerr"
)

// rename decodes instructions from the fetch queue, renames their
// registers, and dispatches them into the ROB, issue queue, and
// load/store queues, stopping when a structural resource is exhausted.
func (c *Core) rename() {
	for n := 0; n < c.cfg.FetchWidth && c.fetchHead < len(c.fetchQ); n++ {
		slot := &c.fetchQ[c.fetchHead]
		if c.robCount == c.cfg.ROBSize {
			return
		}
		if slot.FetchFault {
			c.seq++
			c.robFault(slot.PC, excBadFetch)
			c.fetchPop()
			continue
		}
		in := slot.In
		illegal := !in.Op.Valid()
		var s1, s2 uint8 = noReg, noReg
		if !illegal {
			s1, s2 = in.SourceRegs()
			illegal = c.badRegs(in, s1, s2)
		}
		if in.Op == isa.OpLd || in.Op == isa.OpSd {
			if c.cfg.XLEN == 32 {
				illegal = true
			}
		}
		if illegal {
			c.seq++
			c.robFault(slot.PC, excIllegal)
			c.fetchPop()
			continue
		}

		needsIQ := in.Op != isa.OpHalt && in.Op != isa.OpNop
		if needsIQ && !c.iqHasRoom() {
			return
		}
		if in.Op.IsLoad() && c.lqCount == c.cfg.LQSize {
			return
		}
		if in.Op.IsStore() && c.sqCount == c.cfg.SQSize {
			return
		}
		destArch := in.DestReg()
		if destArch != noReg && c.freeCount == 0 {
			return
		}

		c.seq++
		seq := c.seq
		flags := uint8(0)
		if in.Op.IsLoad() {
			flags |= rIsLoad
		}
		if in.Op.IsStore() {
			flags |= rIsStore
		}
		if in.Op.IsBranch() || in.Op == isa.OpJalr {
			flags |= rIsBranch
		}
		if slot.PredTaken {
			flags |= rPredTaken
		}
		if !needsIQ {
			flags |= rDone
		}

		src1, src2 := uint16(0), uint16(0) // phys 0 = always-ready zero
		if s1 != noReg {
			src1 = c.rat[s1]
		}
		if s2 != noReg {
			src2 = c.rat[s2]
		}

		destPhys, oldPhys := uint16(noPhys), uint16(noPhys)
		if destArch != noReg {
			oldPhys = c.rat[destArch]
			destPhys = c.popFree()
			c.rat[destArch] = destPhys
		}

		idx := c.robAlloc()
		robIdx := uint16(idx)
		c.robPC[idx] = slot.PC
		c.robSeq[idx] = seq
		c.robOp[idx] = uint8(in.Op)
		c.robArch[idx] = destArch
		c.robDest[idx] = destPhys
		c.robOld[idx] = oldPhys
		c.robLQ[idx] = badIdx
		c.robSQ[idx] = badIdx
		c.robPredTgt[idx] = slot.PredTarget
		c.robActTgt[idx] = 0
		c.robOutVal[idx] = 0
		c.robExc[idx] = excNone
		if in.Op == isa.OpJal {
			// Direct jumps are fully resolved in the front end.
			flags |= rResolved | rActTaken
			c.robActTgt[idx] = slot.PC + 4 + uint64(int64(in.Imm))*4
		}
		c.robFlags[idx] = flags

		if in.Op.IsLoad() {
			li := c.lqHead + c.lqCount
			if li >= c.cfg.LQSize {
				li -= c.cfg.LQSize
			}
			c.lqCount++
			c.robLQ[idx] = uint16(li)
			c.lqAddr[li] = 0
			c.lqSeq[li] = seq
			c.lqFillAt[li] = 0
			c.lqDest[li] = destPhys
			c.lqROB[li] = robIdx
			c.lqSize[li] = uint8(in.Op.MemSize())
			lf := uint8(lValid)
			if in.Op != isa.OpLbu {
				lf |= lSignExt
			}
			c.lqFlags[li] = lf
			c.lqPending &^= 1 << uint(li) // address not ready yet; clear any stale bit
		}
		if in.Op.IsStore() {
			si := c.sqHead + c.sqCount
			if si >= c.cfg.SQSize {
				si -= c.cfg.SQSize
			}
			c.sqCount++
			c.robSQ[idx] = uint16(si)
			c.sqAddr[si] = 0
			c.sqData[si] = 0
			c.sqSeq[si] = seq
			c.sqROB[si] = robIdx
			c.sqSize[si] = uint8(in.Op.MemSize())
			c.sqFlags[si] = sValid
		}
		if needsIQ {
			c.iqInsert(in.Op, src1, src2, destPhys, robIdx, int64(in.Imm), seq)
		}
		c.fetchPop()
	}
}

// robFault pushes a ROB entry for an instruction that faulted before
// rename (fetch fault or illegal encoding): done immediately, carrying
// only the exception. Every per-entry field is written (robAlloc does
// not zero), with the unused ones zeroed exactly as the old
// zero-then-set allocation left them.
func (c *Core) robFault(pc uint64, exc uint8) {
	idx := c.robAlloc()
	c.robPC[idx] = pc
	c.robSeq[idx] = c.seq
	c.robPredTgt[idx] = 0
	c.robActTgt[idx] = 0
	c.robOutVal[idx] = 0
	c.robDest[idx] = 0
	c.robOld[idx] = 0
	c.robOp[idx] = 0
	c.robFlags[idx] = rDone
	c.robExc[idx] = exc
	c.robArch[idx] = noReg
	c.robLQ[idx] = badIdx
	c.robSQ[idx] = badIdx
}

// fetchPop drops the oldest fetch-queue slot by advancing the head
// offset; the slide of the old compacting pop is amortized to once per
// FetchQueueSize pops, and the backing array is reused whenever the
// queue drains.
func (c *Core) fetchPop() {
	c.fetchHead++
	if c.fetchHead == len(c.fetchQ) {
		c.fetchQ = c.fetchQ[:0]
		c.fetchHead = 0
	} else if c.fetchHead >= c.cfg.FetchQueueSize {
		n := copy(c.fetchQ, c.fetchQ[c.fetchHead:])
		c.fetchQ = c.fetchQ[:n]
		c.fetchHead = 0
	}
}

// badRegs reports whether the instruction references a register outside
// the configured architectural register count (possible when a fault
// corrupts an instruction word on a 16-register machine). s1 and s2
// are the caller's in.SourceRegs() — rename needs them afterwards, so
// they are decoded once and passed in.
func (c *Core) badRegs(in isa.Instr, s1, s2 uint8) bool {
	n := uint8(c.cfg.NumArchRegs)
	if s1 != noReg && s1 >= n {
		return true
	}
	if s2 != noReg && s2 >= n {
		return true
	}
	switch in.Op.Format() {
	case isa.FmtR, isa.FmtI, isa.FmtJ:
		if in.Rd >= n {
			return true
		}
	}
	return false
}

// iqHasRoom reports whether the issue queue has a free slot. iqCount
// mirrors the number of qValid entries (faults never flip a valid
// bit), so the occupancy counter answers without a scan.
func (c *Core) iqHasRoom() bool {
	return c.iqCount < c.cfg.IQSize
}

func (c *Core) iqInsert(op isa.Opcode, src1, src2, dest, robIdx uint16, imm int64, seq uint64) {
	// First free slot = lowest clear bit of the valid mask, the same
	// slot the old linear scan chose.
	i := bits.TrailingZeros64(^c.iqValid)
	if i >= c.cfg.IQSize {
		simerr.Assertf("cpu: issue queue insert with no free slot")
	}
	flags := uint8(qValid)
	if c.prfReady[src1] != 0 {
		flags |= qRdy1
	}
	if c.prfReady[src2] != 0 {
		flags |= qRdy2
	}
	c.iqSrc1[i] = src1
	c.iqSrc2[i] = src2
	c.iqDest[i] = dest
	c.iqROB[i] = robIdx
	c.iqOp[i] = uint8(op)
	c.iqImm[i] = uint64(imm)
	c.iqSeq[i] = seq
	c.iqFlags[i] = flags
	c.iqValid |= 1 << uint(i)
	if flags&(qRdy1|qRdy2) == qRdy1|qRdy2 {
		c.iqReady |= 1 << uint(i)
	}
	c.iqCount++
}

// decode memoizes isa.Decode through a small direct-mapped table. Every
// slot holds a consistent (word, decode) pair at all times — including
// after NewCore seeds it with word 0 — so a hit returns exactly what
// isa.Decode(word) would, even for fault-corrupted words.
func (c *Core) decode(word uint32) isa.Instr {
	i := (word ^ word>>12 ^ word>>22) & (predecodeSlots - 1)
	if c.decWords[i] == word {
		return c.decInstrs[i]
	}
	in := isa.Decode(word)
	c.decWords[i] = word
	c.decInstrs[i] = in
	return in
}

// fetch brings up to FetchWidth instruction words from the L1I cache
// into the fetch queue, following predicted control flow.
func (c *Core) fetch() {
	if c.fetchFrozen || c.cycle < c.fetchStall {
		return
	}
	for n := 0; n < c.cfg.FetchWidth && len(c.fetchQ)-c.fetchHead < c.cfg.FetchQueueSize; n++ {
		pc := c.fetchPC
		// Fast path: an aligned pc inside the memoized executable span
		// cannot fault, so the region walk is skipped. The span starts
		// empty and is refilled from the (immutable) address map after
		// every successful slow-path check.
		if pc&3 != 0 || pc < c.fetchSpanLo || pc > c.fetchSpanHi {
			if f := c.memory.CheckFetch(pc); f != nil {
				c.fetchQ = append(c.fetchQ, fetchSlot{PC: pc, FetchFault: true})
				c.fetchFrozen = true
				return
			}
			if base, size, ok := c.memory.ExecSpan(pc); ok {
				c.fetchSpanLo, c.fetchSpanHi = base, base+size-4
			}
		}
		word64, lat := c.icache.Read(pc, 4)
		word := uint32(word64)
		if lat > c.icache.Config().HitLatency {
			// Miss: the word arrives after the miss penalty; block the
			// front end for the difference.
			c.fetchStall = c.cycle + uint64(lat-c.icache.Config().HitLatency)
		}
		c.Stats.Fetched++
		in := c.decode(word)
		// Append first, then fill the slot through the pointer: one
		// 40-byte slot copy instead of build-then-append's two.
		c.fetchQ = append(c.fetchQ, fetchSlot{PC: pc, Word: word, In: in})
		slot := &c.fetchQ[len(c.fetchQ)-1]
		stop := false
		switch {
		case in.Op == isa.OpJal:
			slot.PredTaken = true
			slot.PredTarget = pc + 4 + uint64(int64(in.Imm))*4
			if in.Rd == isa.RegRA {
				c.pushRAS(pc + 4)
			}
			c.fetchPC = slot.PredTarget
			stop = true
		case in.Op == isa.OpJalr:
			var target uint64
			var ok bool
			if in.Rd == isa.RegZero && in.Rs1 == isa.RegRA {
				target, ok = c.popRAS()
			} else {
				target, ok = c.predictIndirect(pc)
			}
			if in.Rd == isa.RegRA {
				c.pushRAS(pc + 4)
			}
			if ok {
				slot.PredTaken = true
				slot.PredTarget = target
				c.fetchPC = target
				stop = true
			} else {
				c.fetchPC = pc + 4 // will mispredict at execute
			}
		case in.Op.IsBranch():
			if c.predictCond(pc) {
				slot.PredTaken = true
				slot.PredTarget = pc + 4 + uint64(int64(in.Imm))*4
				c.fetchPC = slot.PredTarget
				stop = true
			} else {
				c.fetchPC = pc + 4
			}
		case in.Op == isa.OpHalt:
			c.fetchFrozen = true
			stop = true
			c.fetchPC = pc + 4
		default:
			c.fetchPC = pc + 4
		}
		if stop {
			return
		}
		if c.fetchStall > c.cycle {
			return
		}
	}
}

// squash removes every instruction younger than afterSeq from the
// pipeline, restores the rename map from the ROB, and redirects fetch.
func (c *Core) squash(afterSeq uint64, newPC uint64) {
	for c.robCount > 0 {
		tail := c.robHead + c.robCount - 1
		if tail >= c.cfg.ROBSize {
			tail -= c.cfg.ROBSize
		}
		if c.robSeq[tail] <= afterSeq {
			break
		}
		if c.robArch[tail] != noReg {
			if c.robArch[tail] >= uint8(c.cfg.NumArchRegs) {
				simerr.Assertf("cpu: squash with corrupt arch dest %d", c.robArch[tail])
			}
			if int(c.robOld[tail]) >= c.cfg.NumPhysRegs {
				simerr.Assertf("cpu: squash with corrupt old mapping %d", c.robOld[tail])
			}
			c.rat[c.robArch[tail]] = c.robOld[tail]
			c.freePhys(c.robDest[tail])
		}
		c.robCount-- // deallocate the slot, leaving its bytes in place
	}
	for c.lqCount > 0 {
		tail := c.lqHead + c.lqCount - 1
		if tail >= c.cfg.LQSize {
			tail -= c.cfg.LQSize
		}
		if c.lqSeq[tail] <= afterSeq {
			break
		}
		c.lqCount--
		c.lqPending &^= 1 << uint(tail)
	}
	for c.sqCount > 0 {
		tail := c.sqHead + c.sqCount - 1
		if tail >= c.cfg.SQSize {
			tail -= c.cfg.SQSize
		}
		if c.sqSeq[tail] <= afterSeq {
			break
		}
		c.sqCount--
	}
	for m := c.iqValid; m != 0; m &= m - 1 {
		i := bits.TrailingZeros64(m)
		if c.iqSeq[i] > afterSeq {
			c.iqFlags[i] &^= qValid
			c.iqValid &^= 1 << uint(i)
			c.iqReady &^= 1 << uint(i)
			c.iqCount--
		}
	}
	kept := c.inflight[:0]
	for _, op := range c.inflight {
		if op.Seq <= afterSeq {
			kept = append(kept, op)
		}
	}
	c.inflight = kept
	c.fetchQ = c.fetchQ[:0]
	c.fetchHead = 0
	c.fetchFrozen = false
	c.fetchStall = 0
	c.fetchPC = newPC
}
