package cpu

import (
	"sevsim/internal/isa"
	"sevsim/internal/simerr"
)

// rename decodes instructions from the fetch queue, renames their
// registers, and dispatches them into the ROB, issue queue, and
// load/store queues, stopping when a structural resource is exhausted.
func (c *Core) rename() {
	for n := 0; n < c.cfg.FetchWidth && len(c.fetchQ) > 0; n++ {
		slot := c.fetchQ[0]
		if c.rob.full() {
			return
		}
		if slot.FetchFault {
			c.seq++
			c.rob.push(robEntry{PC: slot.PC, Seq: c.seq, Done: true, Exc: excBadFetch,
				DestArch: noReg, LQIdx: badIdx, SQIdx: badIdx})
			c.fetchQ = c.fetchQ[1:]
			continue
		}
		in := slot.In
		illegal := !in.Op.Valid() || c.badRegs(in)
		if in.Op == isa.OpLd || in.Op == isa.OpSd {
			if c.cfg.XLEN == 32 {
				illegal = true
			}
		}
		if illegal {
			c.seq++
			c.rob.push(robEntry{PC: slot.PC, Seq: c.seq, Done: true, Exc: excIllegal,
				DestArch: noReg, LQIdx: badIdx, SQIdx: badIdx})
			c.fetchQ = c.fetchQ[1:]
			continue
		}

		needsIQ := in.Op != isa.OpHalt && in.Op != isa.OpNop
		if needsIQ && !c.iqHasRoom() {
			return
		}
		if in.Op.IsLoad() && c.lq.full() {
			return
		}
		if in.Op.IsStore() && c.sq.full() {
			return
		}
		destArch := in.DestReg()
		if destArch != noReg && len(c.freeList) == 0 {
			return
		}

		c.seq++
		e := robEntry{
			PC:         slot.PC,
			Seq:        c.seq,
			Op:         in.Op,
			DestArch:   destArch,
			DestPhys:   noPhys,
			OldPhys:    noPhys,
			IsLoad:     in.Op.IsLoad(),
			IsStore:    in.Op.IsStore(),
			IsBranch:   in.Op.IsBranch() || in.Op == isa.OpJalr,
			LQIdx:      badIdx,
			SQIdx:      badIdx,
			PredTaken:  slot.PredTaken,
			PredTarget: slot.PredTarget,
			Done:       !needsIQ,
		}
		if in.Op == isa.OpJal {
			// Direct jumps are fully resolved in the front end.
			e.Resolved = true
			e.ActTaken = true
			e.ActTarget = slot.PC + 4 + uint64(int64(in.Imm))*4
		}

		s1, s2 := in.SourceRegs()
		src1, src2 := uint16(0), uint16(0) // phys 0 = always-ready zero
		if s1 != noReg {
			src1 = c.rat[s1]
		}
		if s2 != noReg {
			src2 = c.rat[s2]
		}

		if destArch != noReg {
			e.OldPhys = c.rat[destArch]
			e.DestPhys = c.popFree()
			c.rat[destArch] = e.DestPhys
		}

		robIdx := c.rob.push(e)
		ent := c.rob.at(robIdx)

		if in.Op.IsLoad() {
			ent.LQIdx = c.lq.push(lqEntry{
				Valid: true, Dest: ent.DestPhys, ROBIdx: robIdx, Seq: c.seq,
				Size: uint8(in.Op.MemSize()), SignExt: in.Op != isa.OpLbu,
			})
		}
		if in.Op.IsStore() {
			ent.SQIdx = c.sq.push(sqEntry{
				Valid: true, ROBIdx: robIdx, Seq: c.seq, Size: uint8(in.Op.MemSize()),
			})
		}
		if needsIQ {
			c.iqInsert(iqEntry{
				Valid: true, Op: in.Op, Src1: src1, Src2: src2,
				Rdy1: c.prfReady[src1], Rdy2: c.prfReady[src2],
				Dest: ent.DestPhys, ROBIdx: robIdx, Imm: int64(in.Imm), Seq: c.seq,
			})
		}
		c.fetchQ = c.fetchQ[1:]
	}
}

// badRegs reports whether the instruction references a register outside
// the configured architectural register count (possible when a fault
// corrupts an instruction word on a 16-register machine).
func (c *Core) badRegs(in isa.Instr) bool {
	n := uint8(c.cfg.NumArchRegs)
	s1, s2 := in.SourceRegs()
	if s1 != noReg && s1 >= n {
		return true
	}
	if s2 != noReg && s2 >= n {
		return true
	}
	switch in.Op.Format() {
	case isa.FmtR, isa.FmtI, isa.FmtJ:
		if in.Rd >= n {
			return true
		}
	}
	return false
}

func (c *Core) iqHasRoom() bool {
	for i := range c.iq {
		if !c.iq[i].Valid {
			return true
		}
	}
	return false
}

func (c *Core) iqInsert(e iqEntry) {
	for i := range c.iq {
		if !c.iq[i].Valid {
			c.iq[i] = e
			c.iqCount++
			return
		}
	}
	simerr.Assertf("cpu: issue queue insert with no free slot")
}

// fetch brings up to FetchWidth instruction words from the L1I cache
// into the fetch queue, following predicted control flow.
func (c *Core) fetch() {
	if c.fetchFrozen || c.cycle < c.fetchStall {
		return
	}
	for n := 0; n < c.cfg.FetchWidth && len(c.fetchQ) < c.cfg.FetchQueueSize; n++ {
		pc := c.fetchPC
		if f := c.memory.CheckFetch(pc); f != nil {
			c.fetchQ = append(c.fetchQ, fetchSlot{PC: pc, FetchFault: true})
			c.fetchFrozen = true
			return
		}
		word64, lat := c.icache.Read(pc, 4)
		word := uint32(word64)
		if lat > c.icache.Config().HitLatency {
			// Miss: the word arrives after the miss penalty; block the
			// front end for the difference.
			c.fetchStall = c.cycle + uint64(lat-c.icache.Config().HitLatency)
		}
		c.Stats.Fetched++
		in := isa.Decode(word)
		slot := fetchSlot{PC: pc, Word: word, In: in}
		stop := false
		switch {
		case in.Op == isa.OpJal:
			slot.PredTaken = true
			slot.PredTarget = pc + 4 + uint64(int64(in.Imm))*4
			if in.Rd == isa.RegRA {
				c.pred.pushRAS(pc + 4)
			}
			c.fetchPC = slot.PredTarget
			stop = true
		case in.Op == isa.OpJalr:
			var target uint64
			var ok bool
			if in.Rd == isa.RegZero && in.Rs1 == isa.RegRA {
				target, ok = c.pred.popRAS()
			} else {
				target, ok = c.pred.predictIndirect(pc)
			}
			if in.Rd == isa.RegRA {
				c.pred.pushRAS(pc + 4)
			}
			if ok {
				slot.PredTaken = true
				slot.PredTarget = target
				c.fetchPC = target
				stop = true
			} else {
				c.fetchPC = pc + 4 // will mispredict at execute
			}
		case in.Op.IsBranch():
			if c.pred.predictCond(pc) {
				slot.PredTaken = true
				slot.PredTarget = pc + 4 + uint64(int64(in.Imm))*4
				c.fetchPC = slot.PredTarget
				stop = true
			} else {
				c.fetchPC = pc + 4
			}
		case in.Op == isa.OpHalt:
			c.fetchFrozen = true
			stop = true
			c.fetchPC = pc + 4
		default:
			c.fetchPC = pc + 4
		}
		c.fetchQ = append(c.fetchQ, slot)
		if stop {
			return
		}
		if c.fetchStall > c.cycle {
			return
		}
	}
}

// squash removes every instruction younger than afterSeq from the
// pipeline, restores the rename map from the ROB, and redirects fetch.
func (c *Core) squash(afterSeq uint64, newPC uint64) {
	for !c.rob.empty() {
		tail := (c.rob.head + c.rob.count - 1) % len(c.rob.entries)
		e := c.rob.at(uint16(tail))
		if e.Seq <= afterSeq {
			break
		}
		if e.DestArch != noReg {
			if e.DestArch >= uint8(c.cfg.NumArchRegs) {
				simerr.Assertf("cpu: squash with corrupt arch dest %d", e.DestArch)
			}
			if int(e.OldPhys) >= c.cfg.NumPhysRegs {
				simerr.Assertf("cpu: squash with corrupt old mapping %d", e.OldPhys)
			}
			c.rat[e.DestArch] = e.OldPhys
			c.freePhys(e.DestPhys)
		}
		c.rob.popTail()
	}
	for !c.lq.empty() {
		tail := (c.lq.head + c.lq.count - 1) % len(c.lq.entries)
		if c.lq.entries[tail].Seq <= afterSeq {
			break
		}
		c.lq.popTail()
	}
	for !c.sq.empty() {
		tail := (c.sq.head + c.sq.count - 1) % len(c.sq.entries)
		if c.sq.entries[tail].Seq <= afterSeq {
			break
		}
		c.sq.popTail()
	}
	for i := range c.iq {
		if c.iq[i].Valid && c.iq[i].Seq > afterSeq {
			c.iq[i].Valid = false
			c.iqCount--
		}
	}
	kept := c.inflight[:0]
	for _, op := range c.inflight {
		if op.Seq <= afterSeq {
			kept = append(kept, op)
		}
	}
	c.inflight = kept
	c.fetchQ = c.fetchQ[:0]
	c.fetchFrozen = false
	c.fetchStall = 0
	c.fetchPC = newPC
}
