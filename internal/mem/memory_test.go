package mem

import (
	"testing"

	"sevsim/internal/simerr"
)

func testMemory() *Memory {
	m := NewMemory(80)
	m.Map(Region{Name: "code", Base: 0x1000, Size: 0x10000, Perm: PermR | PermX})
	m.Map(Region{Name: "data", Base: 0x100000, Size: 0x100000, Perm: PermR | PermW})
	return m
}

func TestCheckAccess(t *testing.T) {
	m := testMemory()
	cases := []struct {
		addr  uint64
		size  uint64
		write bool
		want  FaultKind
	}{
		{0x100000, 4, false, FaultNone},
		{0x100000, 4, true, FaultNone},
		{0x100002, 4, false, FaultMisaligned},
		{0x100001, 1, false, FaultNone}, // bytes have no alignment constraint
		{0x50, 4, false, FaultUnmapped},
		{0x1000, 4, true, FaultProtection}, // code is not writable
		{0x1000, 4, false, FaultNone},      // code is readable
		{0x1fffffc, 4, false, FaultUnmapped},
		{0x1ffff8, 8, false, FaultNone}, // last 8 bytes of data region
		{0x1ffff8 + 8, 8, false, FaultUnmapped},
	}
	for _, c := range cases {
		f := m.CheckAccess(c.addr, c.size, c.write)
		got := FaultNone
		if f != nil {
			got = f.Kind
		}
		if got != c.want {
			t.Errorf("CheckAccess(%#x,%d,write=%v) = %v, want %v", c.addr, c.size, c.write, got, c.want)
		}
	}
}

func TestCheckFetch(t *testing.T) {
	m := testMemory()
	if f := m.CheckFetch(0x1000); f != nil {
		t.Errorf("fetch from code failed: %v", f)
	}
	if f := m.CheckFetch(0x1002); f == nil || f.Kind != FaultMisaligned {
		t.Errorf("misaligned fetch not caught: %v", f)
	}
	if f := m.CheckFetch(0x100000); f == nil || f.Kind != FaultProtection {
		t.Errorf("fetch from data not caught: %v", f)
	}
	if f := m.CheckFetch(0x9000000); f == nil || f.Kind != FaultUnmapped {
		t.Errorf("fetch from unmapped not caught: %v", f)
	}
}

func TestLineReadWriteRoundTrip(t *testing.T) {
	m := testMemory()
	src := make([]byte, 64)
	for i := range src {
		src[i] = byte(i * 3)
	}
	lat := m.WriteLine(0x100040, src)
	if lat != 80 {
		t.Errorf("write latency = %d, want 80", lat)
	}
	dst := make([]byte, 64)
	m.ReadLine(0x100040, dst)
	for i := range src {
		if dst[i] != src[i] {
			t.Fatalf("byte %d = %d, want %d", i, dst[i], src[i])
		}
	}
}

func TestLineReadUnallocatedIsZero(t *testing.T) {
	m := testMemory()
	dst := []byte{1, 2, 3, 4}
	m.ReadLine(0x100000, dst[:4])
	for i, b := range dst {
		if b != 0 {
			t.Errorf("byte %d = %d, want 0", i, b)
		}
	}
}

func expectAssert(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected assert panic")
		}
		if _, ok := r.(*simerr.Assert); !ok {
			panic(r)
		}
	}()
	f()
}

func TestLineAccessOutsideMapAsserts(t *testing.T) {
	m := testMemory()
	buf := make([]byte, 64)
	expectAssert(t, func() { m.ReadLine(0x9000000, buf) })
	expectAssert(t, func() { m.WriteLine(0x9000000, buf) })
}

func TestOverlappingRegionAsserts(t *testing.T) {
	m := testMemory()
	expectAssert(t, func() {
		m.Map(Region{Name: "bad", Base: 0x1800, Size: 0x1000, Perm: PermR})
	})
}

func TestLoadImageAndReadWord(t *testing.T) {
	m := testMemory()
	m.LoadImage(0x1000, []byte{0x78, 0x56, 0x34, 0x12})
	if got := m.ReadWord(0x1000, 4); got != 0x12345678 {
		t.Errorf("ReadWord = %#x", got)
	}
	if got := m.ReadWord(0x2000, 8); got != 0 {
		t.Errorf("unwritten word = %#x, want 0", got)
	}
}
