package mem

// Binary serialization of the memory-hierarchy snapshot halves of a
// machine checkpoint, for the prep-artifact cache. Cache data slabs
// are overwhelmingly zero for the bundled benchmarks, so they go
// through binio's zero-run encoding; memory pages are stored sparsely
// (only allocated pages, in ascending page order — the canonical order
// content addressing requires). Both encodings are bit-complete with
// respect to the strict Equal comparisons in snapshot.go.

import (
	"fmt"
	"sort"

	"sevsim/internal/binio"
)

// EncodeTo appends the cache snapshot's complete state to w. The pool
// generation stamp is deliberately excluded: it is process-local
// identity for delta restores, not cache state, and DecodeCacheState
// stamps a fresh one.
func (s *CacheState) EncodeTo(w *binio.Writer) {
	w.U64(s.Clock)
	w.U64(s.Stats.Hits)
	w.U64(s.Stats.Misses)
	w.U64(s.Stats.Writebacks)
	w.U64(s.Stats.Evictions)
	w.U64s(s.tags)
	w.U64s(s.lru)
	w.RLE(s.valid)
	w.RLE(s.dirty)
	w.RLE(s.data)
}

// DecodeCacheState reads one CacheState written by EncodeTo into a
// pooled snapshot. Geometry is validated against cfg (lines and data
// bytes) the same way Cache.Restore validates a live restore. The
// caller owns the result and must Release it.
func DecodeCacheState(r *binio.Reader, cfg CacheConfig) (*CacheState, error) {
	s := cacheStatePool.Get().(*CacheState)
	fail := func(err error) (*CacheState, error) {
		cacheStatePool.Put(s)
		return nil, err
	}
	s.Clock = r.U64()
	s.Stats.Hits = r.U64()
	s.Stats.Misses = r.U64()
	s.Stats.Writebacks = r.U64()
	s.Stats.Evictions = r.U64()
	s.gen = cacheGen.Add(1) // fresh identity: never delta-matches a pre-decode restore base
	s.tags = r.U64sInto(s.tags)
	s.lru = r.U64sInto(s.lru)
	s.valid = r.RLEInto(s.valid)
	s.dirty = r.RLEInto(s.dirty)
	s.data = r.RLEInto(s.data)
	if err := r.Err(); err != nil {
		return fail(err)
	}
	lines := 0
	if cfg.Ways > 0 && cfg.LineSize > 0 {
		// Mirror newCache's geometry derivation exactly.
		lines = cfg.Size / (cfg.Ways * cfg.LineSize) * cfg.Ways
	}
	if len(s.tags) != lines || len(s.lru) != lines || len(s.valid) != lines ||
		len(s.dirty) != lines || len(s.data) != lines*cfg.LineSize {
		return fail(fmt.Errorf("mem: decode: cache geometry %d lines / %d data bytes does not match config (want %d / %d)",
			len(s.tags), len(s.data), lines, lines*cfg.LineSize))
	}
	return s, nil
}

// EncodeTo appends the memory snapshot to w: allocated pages only, in
// ascending page order, each zero-run compressed.
func (s *MemoryState) EncodeTo(w *binio.Writer) {
	keys := make([]uint64, 0, len(s.pages))
	for k := range s.pages { //lint:ordered keys are sorted below before any byte is emitted
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	w.Uvarint(uint64(len(keys)))
	for _, k := range keys {
		w.U64(k)
		w.RLE(s.pages[k][:])
	}
}

// DecodeMemoryState reads one MemoryState written by EncodeTo. Pages
// are freshly allocated (MemoryState is not pooled); the snapshot is
// immediately shareable copy-on-write like any live-taken snapshot.
func DecodeMemoryState(r *binio.Reader) (*MemoryState, error) {
	n := int(r.Uvarint())
	// Each non-empty page costs at least the key plus one run pair.
	if n < 0 || n > r.Len()/10+1 {
		r.Fail(fmt.Errorf("mem: decode: page count %d exceeds remaining input", n))
		return nil, r.Err()
	}
	s := &MemoryState{pages: make(map[uint64]*[PageSize]byte, n)}
	var scratch []byte
	for i := 0; i < n; i++ {
		k := r.U64()
		scratch = r.RLEInto(scratch)
		if r.Err() != nil {
			break
		}
		if len(scratch) != PageSize {
			r.Fail(fmt.Errorf("mem: decode: page %#x has %d bytes, want %d", k, len(scratch), PageSize))
			break
		}
		if _, dup := s.pages[k]; dup {
			r.Fail(fmt.Errorf("mem: decode: duplicate page %#x", k))
			break
		}
		page := new([PageSize]byte)
		copy(page[:], scratch)
		s.pages[k] = page
	}
	if err := r.Err(); err != nil {
		return nil, err
	}
	return s, nil
}
