package mem

import (
	"math/rand"
	"testing"

	"sevsim/internal/simerr"
)

// TestCacheRandomFaultStorm: under any sequence of random accesses
// interleaved with random tag/data flips, the hierarchy either keeps
// serving requests or fails with a modelled Assert — never a raw panic —
// and clean-state invariants hold after a flush-free reread.
func TestCacheRandomFaultStorm(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		func() {
			defer func() {
				if r := recover(); r != nil {
					if _, ok := r.(*simerr.Assert); ok {
						return // modelled outcome: fine
					}
					t.Fatalf("seed %d: raw panic: %v", seed, r)
				}
			}()
			m := testMemory()
			l2 := NewCache(CacheConfig{Name: "l2", Size: 4096, Ways: 2, LineSize: 64, HitLatency: 8, AddrBits: 32}, m)
			l1 := NewCache(CacheConfig{Name: "l1", Size: 1024, Ways: 2, LineSize: 64, HitLatency: 2, AddrBits: 32}, l2)
			r := rand.New(rand.NewSource(seed))
			for i := 0; i < 3000; i++ {
				addr := 0x100000 + uint64(r.Intn(512))*8
				switch r.Intn(5) {
				case 0:
					l1.Write(addr, 8, r.Uint64())
				case 1:
					l1.Read(addr, 8)
				case 2:
					l1.FlipDataBit(uint64(r.Int63n(int64(l1.DataBitCount()))))
				case 3:
					l1.FlipTagBit(uint64(r.Int63n(int64(l1.TagBitCount()))))
				case 4:
					l2.FlipTagBit(uint64(r.Int63n(int64(l2.TagBitCount()))))
				}
			}
		}()
	}
}

// TestCacheReadsNeverMutateMemoryModel: reads through a fault-free
// hierarchy are side-effect-free with respect to values.
func TestCacheReadsNeverMutateMemoryModel(t *testing.T) {
	m := testMemory()
	l1 := NewCache(CacheConfig{Name: "l1", Size: 1024, Ways: 2, LineSize: 64, HitLatency: 2, AddrBits: 32}, m)
	r := rand.New(rand.NewSource(9))
	want := map[uint64]uint64{}
	for i := 0; i < 500; i++ {
		addr := 0x100000 + uint64(r.Intn(256))*8
		v := r.Uint64()
		l1.Write(addr, 8, v)
		want[addr] = v
	}
	for i := 0; i < 5000; i++ {
		addr := 0x100000 + uint64(r.Intn(256))*8
		if v, _ := l1.Read(addr, 8); v != want[addr] {
			t.Fatalf("read %d: %#x = %#x, want %#x", i, addr, v, want[addr])
		}
	}
}

// TestByteGranularityMixedSizes interleaves 1-, 4-, and 8-byte accesses
// against a byte-accurate shadow.
func TestByteGranularityMixedSizes(t *testing.T) {
	m := testMemory()
	l1 := NewCache(CacheConfig{Name: "l1", Size: 2048, Ways: 2, LineSize: 64, HitLatency: 2, AddrBits: 32}, m)
	shadow := make([]byte, 4096)
	base := uint64(0x100000)
	r := rand.New(rand.NewSource(4))
	sizes := []int{1, 4, 8}
	for i := 0; i < 20000; i++ {
		size := sizes[r.Intn(3)]
		off := uint64(r.Intn(4096-8)) &^ uint64(size-1)
		if r.Intn(2) == 0 {
			v := r.Uint64()
			l1.Write(base+off, size, v)
			for k := 0; k < size; k++ {
				shadow[off+uint64(k)] = byte(v >> (8 * k))
			}
		} else {
			got, _ := l1.Read(base+off, size)
			var want uint64
			for k := size - 1; k >= 0; k-- {
				want = want<<8 | uint64(shadow[off+uint64(k)])
			}
			if got != want {
				t.Fatalf("iter %d: read%d @%#x = %#x, want %#x", i, size, off, got, want)
			}
		}
	}
}
