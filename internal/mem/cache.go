package mem

import (
	"encoding/binary"
	"math/bits"

	"sevsim/internal/simerr"
)

// Backend is the next-lower level of the hierarchy: another cache or the
// physical memory. All transfers are whole naturally aligned lines.
type Backend interface {
	ReadLine(addr uint64, dst []byte) int
	WriteLine(addr uint64, src []byte) int
}

// CacheConfig describes one cache's geometry and timing.
type CacheConfig struct {
	Name       string
	Size       int // total data capacity in bytes
	Ways       int
	LineSize   int
	HitLatency int
	AddrBits   int  // physical address width; determines tag width
	ReadOnly   bool // instruction cache: stores are rejected
}

// CacheStats counts cache events for one simulation.
type CacheStats struct {
	Hits       uint64
	Misses     uint64
	Writebacks uint64
	Evictions  uint64
}

// Cache is a set-associative write-back write-allocate cache with
// authoritative tag and data arrays.
//
// Line state is struct-of-arrays: one flat slice per attribute, indexed
// by line number (set*ways + way, row-major by set), with the data
// array one contiguous slab of lines*LineSize bytes allocated at
// construction. A snapshot is then five flat copies, the strict
// comparison five flat compares, and a restore can be a *delta*: the
// cache tracks which lines it has touched since the last restore, and
// restoring the same snapshot again copies back only those lines — the
// dominant case in an injection campaign, where thousands of short
// faulty runs restart from one checkpoint.
type Cache struct {
	// Geometry, derived from the config at construction and immutable
	// after; snapshotcover (cmd/sevlint) checks every other field is
	// carried through Snapshot/Restore.
	cfg      CacheConfig //snapshot:skip immutable configuration, fixed at construction
	sets     int         //snapshot:skip immutable geometry, derived at construction
	offBits  int         //snapshot:skip immutable geometry, derived at construction
	setBits  int         //snapshot:skip immutable geometry, derived at construction
	tagWidth int         //snapshot:skip immutable geometry, derived at construction
	lower    Backend     //snapshot:skip hierarchy wiring; the lower level is snapshotted separately

	tags  []uint64 // per line: stored tag
	lru   []uint64 // per line: last-use timestamp for LRU replacement
	valid []uint8  // per line: 1 when resident
	dirty []uint8  // per line: 1 when modified since fill
	data  []byte   // lines*LineSize contiguous line bytes
	clock uint64

	// Delta-restore bookkeeping: which lines changed since the last
	// Restore, so restoring the same snapshot again copies only those.
	// lastRestore+lastGen identify that snapshot; the generation guards
	// against a pooled CacheState being released and reused at the same
	// address. None of this is checkpoint state: it describes the
	// relation between the live cache and one snapshot, and Restore
	// rebuilds it.
	lastRestore *CacheState //snapshot:skip delta-restore bookkeeping, rebuilt by Restore itself
	lastGen     uint64      //snapshot:skip delta-restore bookkeeping, rebuilt by Restore itself
	touched     []int32     //snapshot:skip delta-restore bookkeeping, rebuilt by Restore itself
	touchedMark []uint8     //snapshot:skip delta-restore bookkeeping, rebuilt by Restore itself

	// Convergence-compare memo: the behavioral line difference between
	// the delta-restore base snapshot and each convergence-watch
	// snapshot StateEquals has been asked about. Both snapshots are
	// immutable while alive, so the diff is computed once per pair and
	// reused across every injection run rewinding to the same base; a
	// full restore (new base) resets it, and the generation stamps guard
	// against pooled snapshot reuse.
	diffs []watchDiff //snapshot:skip convergence-compare memo over immutable snapshots, reset on full restore

	//equality:dead event counters; never fed back into execution or classification
	Stats CacheStats
}

// NewCache builds a cache over the given lower level. Geometry values
// must be powers of two.
func NewCache(cfg CacheConfig, lower Backend) *Cache {
	sets := cfg.Size / (cfg.Ways * cfg.LineSize)
	if sets <= 0 || sets&(sets-1) != 0 {
		simerr.Assertf("cache %s: set count %d not a power of two", cfg.Name, sets)
	}
	if cfg.LineSize&(cfg.LineSize-1) != 0 {
		simerr.Assertf("cache %s: line size %d not a power of two", cfg.Name, cfg.LineSize)
	}
	lines := sets * cfg.Ways
	c := &Cache{
		cfg:         cfg,
		sets:        sets,
		offBits:     bits.TrailingZeros(uint(cfg.LineSize)),
		setBits:     bits.TrailingZeros(uint(sets)),
		tags:        make([]uint64, lines),
		lru:         make([]uint64, lines),
		valid:       make([]uint8, lines),
		dirty:       make([]uint8, lines),
		data:        make([]byte, lines*cfg.LineSize),
		touchedMark: make([]uint8, lines),
		lower:       lower,
	}
	c.tagWidth = cfg.AddrBits - c.offBits - c.setBits
	if c.tagWidth <= 0 {
		simerr.Assertf("cache %s: nonpositive tag width", cfg.Name)
	}
	return c
}

// Config returns the cache's configuration.
func (c *Cache) Config() CacheConfig { return c.cfg }

// Sets returns the number of sets.
func (c *Cache) Sets() int { return c.sets }

// TagWidth returns the stored tag width in bits (excluding state bits).
func (c *Cache) TagWidth() int { return c.tagWidth }

func (c *Cache) set(addr uint64) int { return int(addr>>c.offBits) & (c.sets - 1) }
func (c *Cache) tagOf(addr uint64) uint64 {
	return (addr >> (c.offBits + c.setBits)) & ((1 << c.tagWidth) - 1)
}

// lineData returns the data bytes of one line within the flat slab.
func (c *Cache) lineData(line int) []byte {
	off := line * c.cfg.LineSize
	return c.data[off : off+c.cfg.LineSize]
}

// Touched-line marks for delta restore. A read hit only advances the
// line's LRU stamp, so restoring it is one scalar store; a fill, write,
// or fault flip can change any line byte and needs the full copy.
const (
	markClean uint8 = iota // untouched since the last restore
	markLRU                // only the LRU stamp changed (read hit)
	markLine               // tag/valid/dirty/data may have changed
)

// markLRUOnly records that a line's LRU stamp changed since the last
// restore. A cache that has never been restored (the golden run) skips
// the tracking entirely. A line already fully marked stays full.
func (c *Cache) markLRUOnly(line int) {
	if c.lastRestore == nil || c.touchedMark[line] != markClean {
		return
	}
	c.touchedMark[line] = markLRU
	c.touched = append(c.touched, int32(line))
}

// markFull records that a line's state beyond the LRU stamp may have
// changed, upgrading an LRU-only mark in place (the line is already in
// the touched list).
func (c *Cache) markFull(line int) {
	if c.lastRestore == nil || c.touchedMark[line] == markLine {
		return
	}
	if c.touchedMark[line] == markClean {
		c.touched = append(c.touched, int32(line))
	}
	c.touchedMark[line] = markLine
}

// lineAddr reconstructs the base address of a resident line from its set
// index and stored tag. A corrupted tag reconstructs to a different —
// possibly unmapped — address; that is exactly how tag faults escape.
func (c *Cache) lineAddr(set int, tag uint64) uint64 {
	return tag<<(c.offBits+c.setBits) | uint64(set)<<c.offBits
}

// lookup returns the way index of a hit in the set, or -1.
func (c *Cache) lookup(set int, tag uint64) int {
	base := set * c.cfg.Ways
	for w := 0; w < c.cfg.Ways; w++ {
		if c.valid[base+w] != 0 && c.tags[base+w] == tag {
			return w
		}
	}
	return -1
}

// victim picks the replacement way for a set: first invalid way, else
// least-recently used.
func (c *Cache) victim(set int) int {
	base := set * c.cfg.Ways
	best, bestLRU := 0, ^uint64(0)
	for w := 0; w < c.cfg.Ways; w++ {
		if c.valid[base+w] == 0 {
			return w
		}
		if c.lru[base+w] < bestLRU {
			bestLRU = c.lru[base+w]
			best = w
		}
	}
	return best
}

// fill ensures the line containing addr is resident and returns its way
// index plus the accumulated miss latency (0 on hit).
func (c *Cache) fill(addr uint64) (way int, lat int) {
	set := c.set(addr)
	tag := c.tagOf(addr)
	if w := c.lookup(set, tag); w >= 0 {
		c.Stats.Hits++
		return w, 0
	}
	return c.miss(addr, set, tag)
}

// miss is the fill slow path: write back and replace the victim, then
// fill the line from the lower level.
func (c *Cache) miss(addr uint64, set int, tag uint64) (way, lat int) {
	c.Stats.Misses++
	w := c.victim(set)
	line := set*c.cfg.Ways + w
	c.markFull(line)
	if c.valid[line] != 0 {
		c.Stats.Evictions++
		if c.dirty[line] != 0 {
			c.Stats.Writebacks++
			lat += c.lower.WriteLine(c.lineAddr(set, c.tags[line]), c.lineData(line))
		}
	}
	lineBase := addr &^ uint64(c.cfg.LineSize-1)
	lat += c.lower.ReadLine(lineBase, c.lineData(line))
	c.tags[line] = tag
	c.valid[line] = 1
	c.dirty[line] = 0
	return w, lat
}

func (c *Cache) touch(set, way int) {
	c.clock++
	line := set*c.cfg.Ways + way
	c.markLRUOnly(line)
	c.lru[line] = c.clock
}

// Read performs a program-level read of size bytes (1, 4, or 8) that
// must not cross a line boundary. It returns the little-endian value and
// the access latency.
//
// This is the hottest call in the simulator (every fetch and every
// load), so the hit path is fused: set, tag, and line index are
// computed once, the lookup is inlined, and the value is extracted
// with a direct little-endian load instead of a bounce buffer. Event
// ordering (hit/miss stats, touched-line marking, the LRU clock)
// matches the generic fill+touch path bit for bit.
func (c *Cache) Read(addr uint64, size int) (uint64, int) {
	set := int(addr>>c.offBits) & (c.sets - 1)
	tag := (addr >> (c.offBits + c.setBits)) & ((1 << c.tagWidth) - 1)
	base := set * c.cfg.Ways
	line := -1
	for w := 0; w < c.cfg.Ways; w++ {
		if c.valid[base+w] != 0 && c.tags[base+w] == tag {
			line = base + w
			break
		}
	}
	lat := 0
	if line >= 0 {
		c.Stats.Hits++
	} else {
		var w int
		w, lat = c.miss(addr, set, tag)
		line = base + w
	}
	c.clock++
	if c.lastRestore != nil && c.touchedMark[line] == markClean {
		c.touchedMark[line] = markLRU
		c.touched = append(c.touched, int32(line))
	}
	c.lru[line] = c.clock
	d := c.data[line*c.cfg.LineSize+(int(addr)&(c.cfg.LineSize-1)):]
	switch size {
	case 8:
		return binary.LittleEndian.Uint64(d[:8]), c.cfg.HitLatency + lat
	case 4:
		return uint64(binary.LittleEndian.Uint32(d[:4])), c.cfg.HitLatency + lat
	case 1:
		return uint64(d[0]), c.cfg.HitLatency + lat
	default:
		var buf [8]byte
		copy(buf[:size], d[:size])
		return binary.LittleEndian.Uint64(buf[:]), c.cfg.HitLatency + lat
	}
}

// Write performs a program-level write of size bytes. Write-allocate:
// the line is filled on a miss, then updated and marked dirty.
func (c *Cache) Write(addr uint64, size int, val uint64) int {
	if c.cfg.ReadOnly {
		simerr.Assertf("cache %s: write to read-only cache at %#x", c.cfg.Name, addr)
	}
	way, lat := c.fill(addr)
	set := c.set(addr)
	c.touch(set, way)
	line := set*c.cfg.Ways + way
	c.markFull(line) // data and dirty change below; an LRU-only mark is not enough
	off := int(addr) & (c.cfg.LineSize - 1)
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], val)
	copy(c.lineData(line)[off:off+size], buf[:size])
	c.dirty[line] = 1
	return c.cfg.HitLatency + lat
}

// ReadLine implements Backend so a cache can serve as the lower level of
// another cache.
func (c *Cache) ReadLine(addr uint64, dst []byte) int {
	way, lat := c.fill(addr)
	set := c.set(addr)
	c.touch(set, way)
	// The upper cache's line size can be at most ours; a naturally
	// aligned smaller line sits inside one of our lines.
	off := int(addr) & (c.cfg.LineSize - 1)
	if off+len(dst) > c.cfg.LineSize {
		simerr.Assertf("cache %s: line read spans lines at %#x", c.cfg.Name, addr)
	}
	copy(dst, c.lineData(set*c.cfg.Ways+way)[off:off+len(dst)])
	return c.cfg.HitLatency + lat
}

// WriteLine implements Backend for write-backs arriving from above.
func (c *Cache) WriteLine(addr uint64, src []byte) int {
	way, lat := c.fill(addr)
	set := c.set(addr)
	c.touch(set, way)
	line := set*c.cfg.Ways + way
	c.markFull(line) // data and dirty change below; an LRU-only mark is not enough
	off := int(addr) & (c.cfg.LineSize - 1)
	if off+len(src) > c.cfg.LineSize {
		simerr.Assertf("cache %s: line write spans lines at %#x", c.cfg.Name, addr)
	}
	copy(c.lineData(line)[off:off+len(src)], src)
	c.dirty[line] = 1
	return c.cfg.HitLatency + lat
}

// --- Fault-injection surface -------------------------------------------

// DataBitCount returns the number of injectable bits in the data array.
func (c *Cache) DataBitCount() uint64 {
	return uint64(len(c.data)) * 8
}

// TagBitCount returns the number of injectable bits in the tag array.
// Each line contributes its tag plus the valid and dirty state bits,
// mirroring the paper's treatment of cache "tag fields".
func (c *Cache) TagBitCount() uint64 {
	return uint64(c.sets) * uint64(c.cfg.Ways) * uint64(c.tagWidth+2)
}

// FlipDataBit flips one bit of the data array, addressed by a global bit
// index in [0, DataBitCount).
func (c *Cache) FlipDataBit(bit uint64) {
	c.markFull(int(bit / (uint64(c.cfg.LineSize) * 8)))
	c.data[bit/8] ^= 1 << (bit % 8)
}

// FlipTagBit flips one bit of the tag array, addressed by a global bit
// index in [0, TagBitCount). Index layout per line: tag bits first, then
// valid, then dirty.
func (c *Cache) FlipTagBit(bit uint64) {
	per := uint64(c.tagWidth + 2)
	line := int(bit / per)
	c.markFull(line)
	switch b := bit % per; {
	case b < uint64(c.tagWidth):
		c.tags[line] ^= 1 << b
	case b == uint64(c.tagWidth):
		c.valid[line] ^= 1
	default:
		c.dirty[line] ^= 1
	}
}

// LineState exposes one line's metadata for tests.
func (c *Cache) LineState(set, way int) (tag uint64, valid, dirty bool) {
	line := set*c.cfg.Ways + way
	return c.tags[line], c.valid[line] != 0, c.dirty[line] != 0
}
