package mem

import (
	"encoding/binary"
	"math/bits"

	"sevsim/internal/simerr"
)

// Backend is the next-lower level of the hierarchy: another cache or the
// physical memory. All transfers are whole naturally aligned lines.
type Backend interface {
	ReadLine(addr uint64, dst []byte) int
	WriteLine(addr uint64, src []byte) int
}

// CacheConfig describes one cache's geometry and timing.
type CacheConfig struct {
	Name       string
	Size       int // total data capacity in bytes
	Ways       int
	LineSize   int
	HitLatency int
	AddrBits   int  // physical address width; determines tag width
	ReadOnly   bool // instruction cache: stores are rejected
}

// CacheStats counts cache events for one simulation.
type CacheStats struct {
	Hits       uint64
	Misses     uint64
	Writebacks uint64
	Evictions  uint64
}

type cacheLine struct {
	tag   uint64
	valid bool
	dirty bool
	data  []byte // allocated on first fill (or first injected flip)
	lru   uint64 // last-use timestamp for LRU replacement
}

// Cache is a set-associative write-back write-allocate cache with
// authoritative tag and data arrays.
type Cache struct {
	// Geometry, derived from the config at construction and immutable
	// after; snapshotcover (cmd/sevlint) checks every other field is
	// carried through Snapshot/Restore.
	cfg      CacheConfig //snapshot:skip immutable configuration, fixed at construction
	sets     int         //snapshot:skip immutable geometry, derived at construction
	offBits  int         //snapshot:skip immutable geometry, derived at construction
	setBits  int         //snapshot:skip immutable geometry, derived at construction
	tagWidth int         //snapshot:skip immutable geometry, derived at construction
	lines    []cacheLine // sets*ways, row-major by set
	lower    Backend     //snapshot:skip hierarchy wiring; the lower level is snapshotted separately
	clock    uint64
	//equality:dead event counters; never fed back into execution or classification
	Stats CacheStats
}

// NewCache builds a cache over the given lower level. Geometry values
// must be powers of two.
func NewCache(cfg CacheConfig, lower Backend) *Cache {
	sets := cfg.Size / (cfg.Ways * cfg.LineSize)
	if sets <= 0 || sets&(sets-1) != 0 {
		simerr.Assertf("cache %s: set count %d not a power of two", cfg.Name, sets)
	}
	if cfg.LineSize&(cfg.LineSize-1) != 0 {
		simerr.Assertf("cache %s: line size %d not a power of two", cfg.Name, cfg.LineSize)
	}
	c := &Cache{
		cfg:     cfg,
		sets:    sets,
		offBits: bits.TrailingZeros(uint(cfg.LineSize)),
		setBits: bits.TrailingZeros(uint(sets)),
		lines:   make([]cacheLine, sets*cfg.Ways),
		lower:   lower,
	}
	c.tagWidth = cfg.AddrBits - c.offBits - c.setBits
	if c.tagWidth <= 0 {
		simerr.Assertf("cache %s: nonpositive tag width", cfg.Name)
	}
	return c
}

// Config returns the cache's configuration.
func (c *Cache) Config() CacheConfig { return c.cfg }

// Sets returns the number of sets.
func (c *Cache) Sets() int { return c.sets }

// TagWidth returns the stored tag width in bits (excluding state bits).
func (c *Cache) TagWidth() int { return c.tagWidth }

func (c *Cache) set(addr uint64) int { return int(addr>>c.offBits) & (c.sets - 1) }
func (c *Cache) tagOf(addr uint64) uint64 {
	return (addr >> (c.offBits + c.setBits)) & ((1 << c.tagWidth) - 1)
}

// lineAddr reconstructs the base address of a resident line from its set
// index and stored tag. A corrupted tag reconstructs to a different —
// possibly unmapped — address; that is exactly how tag faults escape.
func (c *Cache) lineAddr(set int, tag uint64) uint64 {
	return tag<<(c.offBits+c.setBits) | uint64(set)<<c.offBits
}

// lookup returns the way index of a hit in the set, or -1.
func (c *Cache) lookup(set int, tag uint64) int {
	base := set * c.cfg.Ways
	for w := 0; w < c.cfg.Ways; w++ {
		ln := &c.lines[base+w]
		if ln.valid && ln.tag == tag {
			return w
		}
	}
	return -1
}

// victim picks the replacement way for a set: first invalid way, else
// least-recently used.
func (c *Cache) victim(set int) int {
	base := set * c.cfg.Ways
	best, bestLRU := 0, ^uint64(0)
	for w := 0; w < c.cfg.Ways; w++ {
		ln := &c.lines[base+w]
		if !ln.valid {
			return w
		}
		if ln.lru < bestLRU {
			bestLRU = ln.lru
			best = w
		}
	}
	return best
}

// fill ensures the line containing addr is resident and returns its way
// index plus the accumulated miss latency (0 on hit).
func (c *Cache) fill(addr uint64) (way int, lat int) {
	set := c.set(addr)
	tag := c.tagOf(addr)
	if w := c.lookup(set, tag); w >= 0 {
		c.Stats.Hits++
		return w, 0
	}
	c.Stats.Misses++
	w := c.victim(set)
	ln := &c.lines[set*c.cfg.Ways+w]
	if ln.valid {
		c.Stats.Evictions++
		if ln.dirty {
			c.Stats.Writebacks++
			lat += c.lower.WriteLine(c.lineAddr(set, ln.tag), ln.data)
		}
	}
	if ln.data == nil {
		ln.data = make([]byte, c.cfg.LineSize)
	}
	lineBase := addr &^ uint64(c.cfg.LineSize-1)
	lat += c.lower.ReadLine(lineBase, ln.data)
	ln.tag = tag
	ln.valid = true
	ln.dirty = false
	return w, lat
}

func (c *Cache) touch(set, way int) {
	c.clock++
	c.lines[set*c.cfg.Ways+way].lru = c.clock
}

// Read performs a program-level read of size bytes (1, 4, or 8) that
// must not cross a line boundary. It returns the little-endian value and
// the access latency.
func (c *Cache) Read(addr uint64, size int) (uint64, int) {
	way, lat := c.fill(addr)
	set := c.set(addr)
	c.touch(set, way)
	ln := &c.lines[set*c.cfg.Ways+way]
	off := int(addr) & (c.cfg.LineSize - 1)
	var buf [8]byte
	copy(buf[:size], ln.data[off:off+size])
	return binary.LittleEndian.Uint64(buf[:]), c.cfg.HitLatency + lat
}

// Write performs a program-level write of size bytes. Write-allocate:
// the line is filled on a miss, then updated and marked dirty.
func (c *Cache) Write(addr uint64, size int, val uint64) int {
	if c.cfg.ReadOnly {
		simerr.Assertf("cache %s: write to read-only cache at %#x", c.cfg.Name, addr)
	}
	way, lat := c.fill(addr)
	set := c.set(addr)
	c.touch(set, way)
	ln := &c.lines[set*c.cfg.Ways+way]
	off := int(addr) & (c.cfg.LineSize - 1)
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], val)
	copy(ln.data[off:off+size], buf[:size])
	ln.dirty = true
	return c.cfg.HitLatency + lat
}

// ReadLine implements Backend so a cache can serve as the lower level of
// another cache.
func (c *Cache) ReadLine(addr uint64, dst []byte) int {
	way, lat := c.fill(addr)
	set := c.set(addr)
	c.touch(set, way)
	ln := &c.lines[set*c.cfg.Ways+way]
	// The upper cache's line size can be at most ours; a naturally
	// aligned smaller line sits inside one of our lines.
	off := int(addr) & (c.cfg.LineSize - 1)
	if off+len(dst) > c.cfg.LineSize {
		simerr.Assertf("cache %s: line read spans lines at %#x", c.cfg.Name, addr)
	}
	copy(dst, ln.data[off:off+len(dst)])
	return c.cfg.HitLatency + lat
}

// WriteLine implements Backend for write-backs arriving from above.
func (c *Cache) WriteLine(addr uint64, src []byte) int {
	way, lat := c.fill(addr)
	set := c.set(addr)
	c.touch(set, way)
	ln := &c.lines[set*c.cfg.Ways+way]
	off := int(addr) & (c.cfg.LineSize - 1)
	if off+len(src) > c.cfg.LineSize {
		simerr.Assertf("cache %s: line write spans lines at %#x", c.cfg.Name, addr)
	}
	copy(ln.data[off:off+len(src)], src)
	ln.dirty = true
	return c.cfg.HitLatency + lat
}

// --- Fault-injection surface -------------------------------------------

// DataBitCount returns the number of injectable bits in the data array.
func (c *Cache) DataBitCount() uint64 {
	return uint64(c.sets) * uint64(c.cfg.Ways) * uint64(c.cfg.LineSize) * 8
}

// TagBitCount returns the number of injectable bits in the tag array.
// Each line contributes its tag plus the valid and dirty state bits,
// mirroring the paper's treatment of cache "tag fields".
func (c *Cache) TagBitCount() uint64 {
	return uint64(c.sets) * uint64(c.cfg.Ways) * uint64(c.tagWidth+2)
}

// FlipDataBit flips one bit of the data array, addressed by a global bit
// index in [0, DataBitCount).
func (c *Cache) FlipDataBit(bit uint64) {
	lineBits := uint64(c.cfg.LineSize) * 8
	idx := bit / lineBits
	ln := &c.lines[idx]
	if ln.data == nil {
		ln.data = make([]byte, c.cfg.LineSize)
	}
	b := bit % lineBits
	ln.data[b/8] ^= 1 << (b % 8)
}

// FlipTagBit flips one bit of the tag array, addressed by a global bit
// index in [0, TagBitCount). Index layout per line: tag bits first, then
// valid, then dirty.
func (c *Cache) FlipTagBit(bit uint64) {
	per := uint64(c.tagWidth + 2)
	ln := &c.lines[bit/per]
	switch b := bit % per; {
	case b < uint64(c.tagWidth):
		ln.tag ^= 1 << b
	case b == uint64(c.tagWidth):
		ln.valid = !ln.valid
		if ln.valid && ln.data == nil {
			ln.data = make([]byte, c.cfg.LineSize)
		}
	default:
		ln.dirty = !ln.dirty
		if ln.dirty && ln.data == nil {
			ln.data = make([]byte, c.cfg.LineSize)
		}
	}
}

// LineState exposes one line's metadata for tests.
func (c *Cache) LineState(set, way int) (tag uint64, valid, dirty bool) {
	ln := &c.lines[set*c.cfg.Ways+way]
	return ln.tag, ln.valid, ln.dirty
}
