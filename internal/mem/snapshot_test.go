package mem

import "testing"

// TestMemorySnapshotCopyOnWrite pins the COW contract: a snapshot's
// pages are immutable once taken — post-snapshot stores clone the page
// before writing — and Restore rewinds to the snapshot's contents while
// keeping the snapshot intact for further restores.
func TestMemorySnapshotCopyOnWrite(t *testing.T) {
	m := testMemory()
	line := make([]byte, 64)
	line[0] = 0xaa
	m.WriteLine(0x100000, line)

	s := m.Snapshot()

	// A store to a snapshotted page must not change the snapshot.
	line[0] = 0xbb
	m.WriteLine(0x100000, line)
	if got := m.ReadWord(0x100000, 1); got != 0xbb {
		t.Fatalf("live memory after write = %#x", got)
	}
	if m.pages[0x100000/PageSize] == s.pages[0x100000/PageSize] {
		// The written page must have been cloned away from the snapshot.
		t.Error("post-snapshot write mutated a snapshot-shared page in place")
	}
	if got := s.pages[0x100000/PageSize][0]; got != 0xaa {
		t.Errorf("snapshot byte after live write = %#x, want 0xaa", got)
	}

	// A store to a fresh page after the snapshot must disappear again on
	// restore (absent page == all zeros).
	line[0] = 0xcc
	m.WriteLine(0x180000, line)

	m.Restore(s)
	if got := m.ReadWord(0x100000, 1); got != 0xaa {
		t.Errorf("restored byte = %#x, want 0xaa", got)
	}
	if got := m.ReadWord(0x180000, 1); got != 0 {
		t.Errorf("page written after snapshot survived restore: %#x", got)
	}
	if !m.StateEquals(s) {
		t.Error("restored memory not StateEquals its snapshot")
	}

	// Dirty and restore again: the snapshot must still be intact.
	line[0] = 0xdd
	m.WriteLine(0x100000, line)
	m.Restore(s)
	if got := m.ReadWord(0x100000, 1); got != 0xaa {
		t.Errorf("second restore = %#x, want 0xaa", got)
	}
}

// TestMemoryStateEqualsAbsentIsZero: an absent page and an all-zero
// page are the same observable state, in both directions.
func TestMemoryStateEqualsAbsentIsZero(t *testing.T) {
	m := testMemory()
	s := m.Snapshot() // empty

	zero := make([]byte, 64)
	m.WriteLine(0x100000, zero)
	if !m.StateEquals(s) {
		t.Error("writing zeros must not break state equality with an empty snapshot")
	}
	zero[5] = 1
	m.WriteLine(0x100000, zero)
	if m.StateEquals(s) {
		t.Error("nonzero byte undetected against an empty snapshot")
	}

	m2 := testMemory()
	line := make([]byte, 64)
	line[0] = 7
	m2.WriteLine(0x100000, line)
	s2 := m2.Snapshot()
	fresh := testMemory()
	if fresh.StateEquals(s2) {
		t.Error("empty memory claimed equality with a nonzero snapshot")
	}
}

// TestCacheRestoreZeroesStaleBuffers is the buffer-reuse regression
// test: restoring a snapshot whose line had no data buffer into a cache
// whose line does must zero the buffer, not keep stale bytes — a later
// FlipDataBit reuses whatever buffer exists.
func TestCacheRestoreZeroesStaleBuffers(t *testing.T) {
	_, _, l1 := newHierarchy()
	s := l1.Snapshot() // cold cache: no line has a data buffer

	// Fill a line with nonzero data, then rewind to the cold snapshot.
	l1.Write(0x100000, 8, 0xffffffffffffffff)
	l1.Restore(s)
	if !l1.StateEquals(s) {
		t.Fatal("restored cache not StateEquals its snapshot")
	}

	// The stale buffer must read as zeros through a flip-then-snapshot:
	// flipping bit 0 on the restored cache and on a genuinely cold cache
	// must produce identical snapshots.
	l1.FlipDataBit(0)
	_, _, cold := newHierarchy()
	cold.FlipDataBit(0)
	if !l1.Snapshot().Equal(cold.Snapshot()) {
		t.Error("stale line bytes leaked through restore into the flipped state")
	}
}

// TestCacheSnapshotRoundTrip: dirty the hierarchy, snapshot, keep
// running, restore, and require strict snapshot equality plus
// behavioral equality.
func TestCacheSnapshotRoundTrip(t *testing.T) {
	_, l2, l1 := newHierarchy()
	for i := uint64(0); i < 64; i++ {
		l1.Write(0x100000+i*64, 8, i*0x0101010101010101)
	}
	s1, s2 := l1.Snapshot(), l2.Snapshot()

	for i := uint64(0); i < 64; i++ {
		l1.Write(0x120000+i*64, 8, ^i)
	}
	l1.Restore(s1)
	l2.Restore(s2)
	if !l1.Snapshot().Equal(s1) || !l2.Snapshot().Equal(s2) {
		t.Error("cache snapshot round trip not bit-exact")
	}
	if !l1.StateEquals(s1) || !l2.StateEquals(s2) {
		t.Error("restored caches not StateEquals their snapshots")
	}
}
