package mem

import "testing"

// TestMemorySnapshotCopyOnWrite pins the COW contract: a snapshot's
// pages are immutable once taken — post-snapshot stores clone the page
// before writing — and Restore rewinds to the snapshot's contents while
// keeping the snapshot intact for further restores.
func TestMemorySnapshotCopyOnWrite(t *testing.T) {
	m := testMemory()
	line := make([]byte, 64)
	line[0] = 0xaa
	m.WriteLine(0x100000, line)

	s := m.Snapshot()

	// A store to a snapshotted page must not change the snapshot.
	line[0] = 0xbb
	m.WriteLine(0x100000, line)
	if got := m.ReadWord(0x100000, 1); got != 0xbb {
		t.Fatalf("live memory after write = %#x", got)
	}
	if m.pages[0x100000/PageSize] == s.pages[0x100000/PageSize] {
		// The written page must have been cloned away from the snapshot.
		t.Error("post-snapshot write mutated a snapshot-shared page in place")
	}
	if got := s.pages[0x100000/PageSize][0]; got != 0xaa {
		t.Errorf("snapshot byte after live write = %#x, want 0xaa", got)
	}

	// A store to a fresh page after the snapshot must disappear again on
	// restore (absent page == all zeros).
	line[0] = 0xcc
	m.WriteLine(0x180000, line)

	m.Restore(s)
	if got := m.ReadWord(0x100000, 1); got != 0xaa {
		t.Errorf("restored byte = %#x, want 0xaa", got)
	}
	if got := m.ReadWord(0x180000, 1); got != 0 {
		t.Errorf("page written after snapshot survived restore: %#x", got)
	}
	if !m.StateEquals(s) {
		t.Error("restored memory not StateEquals its snapshot")
	}

	// Dirty and restore again: the snapshot must still be intact.
	line[0] = 0xdd
	m.WriteLine(0x100000, line)
	m.Restore(s)
	if got := m.ReadWord(0x100000, 1); got != 0xaa {
		t.Errorf("second restore = %#x, want 0xaa", got)
	}
}

// TestMemoryStateEqualsAbsentIsZero: an absent page and an all-zero
// page are the same observable state, in both directions.
func TestMemoryStateEqualsAbsentIsZero(t *testing.T) {
	m := testMemory()
	s := m.Snapshot() // empty

	zero := make([]byte, 64)
	m.WriteLine(0x100000, zero)
	if !m.StateEquals(s) {
		t.Error("writing zeros must not break state equality with an empty snapshot")
	}
	zero[5] = 1
	m.WriteLine(0x100000, zero)
	if m.StateEquals(s) {
		t.Error("nonzero byte undetected against an empty snapshot")
	}

	m2 := testMemory()
	line := make([]byte, 64)
	line[0] = 7
	m2.WriteLine(0x100000, line)
	s2 := m2.Snapshot()
	fresh := testMemory()
	if fresh.StateEquals(s2) {
		t.Error("empty memory claimed equality with a nonzero snapshot")
	}
}

// TestCacheRestoreZeroesStaleBuffers is the buffer-reuse regression
// test: restoring a snapshot whose line had no data buffer into a cache
// whose line does must zero the buffer, not keep stale bytes — a later
// FlipDataBit reuses whatever buffer exists.
func TestCacheRestoreZeroesStaleBuffers(t *testing.T) {
	_, _, l1 := newHierarchy()
	s := l1.Snapshot() // cold cache: no line has a data buffer

	// Fill a line with nonzero data, then rewind to the cold snapshot.
	l1.Write(0x100000, 8, 0xffffffffffffffff)
	l1.Restore(s)
	if !l1.StateEquals(s) {
		t.Fatal("restored cache not StateEquals its snapshot")
	}

	// The stale buffer must read as zeros through a flip-then-snapshot:
	// flipping bit 0 on the restored cache and on a genuinely cold cache
	// must produce identical snapshots.
	l1.FlipDataBit(0)
	_, _, cold := newHierarchy()
	cold.FlipDataBit(0)
	if !l1.Snapshot().Equal(cold.Snapshot()) {
		t.Error("stale line bytes leaked through restore into the flipped state")
	}
}

// TestCacheComparisonCoversWholeLine: no byte of a line's data may
// escape the equality relations. The old per-line buffers were
// compared only over a prefix length, so a differing trailing byte
// could slip through; the flat slab layout compares every byte, and
// this pins it: flipping the LAST bit of the LAST line's data must
// break both StateEquals and strict Equal against a prior snapshot.
func TestCacheComparisonCoversWholeLine(t *testing.T) {
	_, _, l1 := newHierarchy()
	// Make the last line valid so StateEquals compares its data.
	cfg := l1.Config()
	lastLine := uint64(l1.Sets()*cfg.Ways - 1)
	per := uint64(l1.TagWidth() + 2)
	l1.FlipTagBit(lastLine*per + uint64(l1.TagWidth())) // set its valid bit
	s := l1.Snapshot()
	if !l1.StateEquals(s) || !l1.Snapshot().Equal(s) {
		t.Fatal("cache must equal its own snapshot")
	}
	l1.FlipDataBit(l1.DataBitCount() - 1) // last bit of the last line
	if l1.StateEquals(s) {
		t.Error("StateEquals missed a flipped tail byte of the last line")
	}
	if l1.Snapshot().Equal(s) {
		t.Error("strict Equal missed a flipped tail byte of the last line")
	}
	l1.FlipDataBit(l1.DataBitCount() - 1)
	if !l1.StateEquals(s) {
		t.Error("flipping the bit back must restore equality")
	}
}

// TestCacheDeltaRestoreBitExact: repeated restores from one snapshot
// take the delta path (only touched lines copied back) and must be
// indistinguishable from a full restore, including when the
// interleaved work evicts, writes back, and flips bits; and a restore
// from a *different* snapshot must invalidate the delta base.
func TestCacheDeltaRestoreBitExact(t *testing.T) {
	_, _, l1 := newHierarchy()
	for i := uint64(0); i < 16; i++ {
		l1.Write(0x100000+i*64, 8, i|0xa0)
	}
	s := l1.Snapshot()
	for round := 0; round < 3; round++ {
		// Dirty a different slice of state each round.
		for i := uint64(0); i < 32; i++ {
			l1.Write(0x110000+i*64+uint64(round)*0x2000, 8, ^i)
		}
		l1.FlipDataBit(uint64(round) * 131)
		l1.FlipTagBit(uint64(round) * 7)
		l1.Restore(s)
		if !l1.Snapshot().Equal(s) {
			t.Fatalf("round %d: delta restore is not bit-exact", round)
		}
	}
	// Restore from a different snapshot, then from s again: the delta
	// base must switch correctly both times.
	l1.Write(0x140000, 8, 0x1234)
	s2 := l1.Snapshot()
	l1.Write(0x150000, 8, 0x5678)
	l1.Restore(s2)
	if !l1.Snapshot().Equal(s2) {
		t.Fatal("restore from second snapshot not bit-exact")
	}
	l1.Restore(s)
	if !l1.Snapshot().Equal(s) {
		t.Fatal("switching back to first snapshot not bit-exact")
	}
	// A released-and-reused snapshot must not be mistaken for the delta
	// base: gen differs even if the pool hands back the same pointer.
	s2.Release()
	s3 := l1.Snapshot()
	l1.Write(0x160000, 8, 0x9abc)
	l1.Restore(s3)
	if !l1.Snapshot().Equal(s3) {
		t.Fatal("restore from pooled-reuse snapshot not bit-exact")
	}
}

// TestCacheSnapshotRoundTrip: dirty the hierarchy, snapshot, keep
// running, restore, and require strict snapshot equality plus
// behavioral equality.
func TestCacheSnapshotRoundTrip(t *testing.T) {
	_, l2, l1 := newHierarchy()
	for i := uint64(0); i < 64; i++ {
		l1.Write(0x100000+i*64, 8, i*0x0101010101010101)
	}
	s1, s2 := l1.Snapshot(), l2.Snapshot()

	for i := uint64(0); i < 64; i++ {
		l1.Write(0x120000+i*64, 8, ^i)
	}
	l1.Restore(s1)
	l2.Restore(s2)
	if !l1.Snapshot().Equal(s1) || !l2.Snapshot().Equal(s2) {
		t.Error("cache snapshot round trip not bit-exact")
	}
	if !l1.StateEquals(s1) || !l2.StateEquals(s2) {
		t.Error("restored caches not StateEquals their snapshots")
	}
}
