package mem

// Snapshot and restore for the memory hierarchy, the cache/memory half
// of the machine checkpoints used by the injection engine. Cache
// snapshots are flat-slab deep copies drawn from a pool (the data
// arrays are authoritative fault targets and small); physical memory
// snapshots are copy-on-write at page granularity — the snapshot
// aliases the live page arrays and the live memory clones a page on
// the first store after the snapshot — so K checkpoints of a
// large-footprint benchmark cost one page copy per written page, not K
// full memory copies.
//
// Restoring the same cache snapshot repeatedly — the shape of an
// injection campaign, where every faulty run of a batch rewinds to one
// checkpoint — is a delta: the cache copies back only the lines it
// touched since the previous restore (see Cache.mark). A generation
// stamp on each snapshot makes the pointer identity test safe against
// pooled CacheState reuse; whether the delta or the full path runs can
// never change the outcome, since both produce the bit-exact snapshot
// state.
//
// Like the core layer (internal/cpu/snapshot.go), each structure offers
// a strict Equal on the snapshot (bit-for-bit, for round-trip tests)
// and a behavioral StateEquals on the live structure (skips dead state,
// for the early-convergence Masked exit).

import (
	"bytes"
	"slices"
	"sync"
	"sync/atomic"

	"sevsim/internal/simerr"
)

// CacheState is a point-in-time copy of one cache's authoritative
// arrays plus the LRU clock and event counters, in the same flat
// struct-of-arrays layout as the live cache. It shares no memory with
// the cache, so it may be restored concurrently into many caches. It
// is immutable from Snapshot until Release.
type CacheState struct {
	Clock uint64
	Stats CacheStats

	gen   uint64 // pool-reuse guard for the delta-restore identity test
	tags  []uint64
	lru   []uint64
	valid []uint8
	dirty []uint8
	data  []byte
}

// cacheGen stamps every snapshot with a process-unique generation, so a
// cache holding a stale lastRestore pointer can detect that the pooled
// CacheState behind it was released and reused.
var cacheGen atomic.Uint64

var cacheStatePool = sync.Pool{New: func() any { return new(CacheState) }}

// Release returns the snapshot's buffers to the pool. The caller must
// be the last holder; Release must not be called twice. Caches that
// used this snapshot for delta restore detect the reuse through the
// generation stamp.
func (s *CacheState) Release() {
	cacheStatePool.Put(s)
}

// snapCopy copies src into dst, reusing dst's backing array when its
// capacity suffices (pooled-buffer length/capacity discipline).
func snapCopy[T any](dst, src []T) []T {
	if cap(dst) < len(src) {
		dst = make([]T, len(src))
	} else {
		dst = dst[:len(src)]
	}
	copy(dst, src)
	return dst
}

// Snapshot captures the cache's complete state into a pooled
// CacheState: five flat copies plus the scalars.
func (c *Cache) Snapshot() *CacheState {
	s := cacheStatePool.Get().(*CacheState)
	s.Clock = c.clock
	s.Stats = c.Stats
	s.gen = cacheGen.Add(1)
	s.tags = snapCopy(s.tags, c.tags)
	s.lru = snapCopy(s.lru, c.lru)
	s.valid = snapCopy(s.valid, c.valid)
	s.dirty = snapCopy(s.dirty, c.dirty)
	s.data = snapCopy(s.data, c.data)
	return s
}

// restoreLine copies one line's full state back from the snapshot.
func (c *Cache) restoreLine(s *CacheState, line int) {
	c.tags[line] = s.tags[line]
	c.lru[line] = s.lru[line]
	c.valid[line] = s.valid[line]
	c.dirty[line] = s.dirty[line]
	off := line * c.cfg.LineSize
	copy(c.data[off:off+c.cfg.LineSize], s.data[off:off+c.cfg.LineSize])
}

// Restore overwrites the cache's state with the snapshot's, reusing the
// cache's existing backing arrays. Restoring the snapshot the cache was
// last restored from copies back only the lines touched since then;
// any other snapshot takes the full flat-copy path and becomes the new
// delta base. Both paths leave the cache bit-identical to the
// snapshot — the delta is a pure optimization.
func (c *Cache) Restore(s *CacheState) {
	if len(s.tags) != len(c.tags) || len(s.data) != len(c.data) {
		simerr.Assertf("mem: cache restore from a differently configured cache snapshot: %d lines / %d data bytes, cache has %d / %d",
			len(s.tags), len(s.data), len(c.tags), len(c.data))
	}
	c.clock = s.Clock
	c.Stats = s.Stats
	if c.lastRestore == s && c.lastGen == s.gen {
		for _, line := range c.touched {
			if c.touchedMark[line] == markLine {
				c.restoreLine(s, int(line))
			} else {
				// Read hit: only the LRU stamp moved.
				c.lru[line] = s.lru[line]
			}
			c.touchedMark[line] = markClean
		}
		c.touched = c.touched[:0]
		return
	}
	copy(c.tags, s.tags)
	copy(c.lru, s.lru)
	copy(c.valid, s.valid)
	copy(c.dirty, s.dirty)
	copy(c.data, s.data)
	for _, line := range c.touched {
		c.touchedMark[line] = markClean
	}
	c.touched = c.touched[:0]
	c.lastRestore = s
	c.lastGen = s.gen
	c.diffs = c.diffs[:0]
}

// Clock returns the LRU clock, the cheap per-cache component of the
// machine-level convergence prefilter hash. The clock advances on every
// access, so two executions that touched the caches differently almost
// always disagree on it; it is part of the StateEquals relation (LRU
// state steers future victim selection), which keeps the hash a sound
// subset of the exact comparison.
func (c *Cache) Clock() uint64 { return c.clock }

// StateEquals reports whether the cache's behavioral state equals the
// snapshot's. Invalid lines compare only their valid bit: fill
// overwrites tag, dirty, and the whole data range before the line can
// be observed, and touch assigns the line a fresh LRU stamp before the
// next victim scan can read it, so everything but the valid bit of an
// invalid line is dead state. Valid lines compare in full, and so does
// the LRU clock (it steers future victim selection). Stats are
// excluded: they never feed back into execution or classification, and
// a behaviorally converged run may carry different event counts from
// its pre-convergence excursion. The flat slab compare runs first:
// identical slabs are sufficient, so the per-line dead-state walk only
// runs when some byte differs.
func (c *Cache) StateEquals(s *CacheState) bool {
	if c.clock != s.Clock || len(c.tags) != len(s.tags) || len(c.data) != len(s.data) {
		return false
	}
	if c.lastRestore != nil && c.lastGen == c.lastRestore.gen && len(c.lastRestore.tags) == len(c.tags) {
		// Delta path: outside the touched set the live cache is
		// bit-identical to its restore base, so it can differ from s
		// only where the base does (the memoized diff) or where it was
		// touched since the restore. Equality therefore holds iff every
		// base/s difference was touched (untouched lines pin the live
		// cache to the base side of the difference) and every touched
		// line behaviorally matches s.
		for _, line := range c.diffFor(s) {
			if c.touchedMark[line] == markClean {
				return false
			}
		}
		for _, line := range c.touched {
			if !c.liveLineEquals(s, int(line)) {
				return false
			}
		}
		return true
	}
	if slices.Equal(c.valid, s.valid) && slices.Equal(c.dirty, s.dirty) &&
		slices.Equal(c.tags, s.tags) && slices.Equal(c.lru, s.lru) &&
		bytes.Equal(c.data, s.data) {
		return true
	}
	for line := range c.tags {
		if !c.liveLineEquals(s, line) {
			return false
		}
	}
	return true
}

// liveLineEquals is the per-line behavioral comparison of the live
// cache against a snapshot: invalid lines compare only the valid bit
// (the rest is dead state, see StateEquals), valid lines in full.
func (c *Cache) liveLineEquals(s *CacheState, line int) bool {
	if c.valid[line] != s.valid[line] {
		return false
	}
	if c.valid[line] == 0 {
		return true
	}
	if c.tags[line] != s.tags[line] || c.dirty[line] != s.dirty[line] || c.lru[line] != s.lru[line] {
		return false
	}
	off := line * c.cfg.LineSize
	return bytes.Equal(c.data[off:off+c.cfg.LineSize], s.data[off:off+c.cfg.LineSize])
}

// watchDiff records, for one convergence-watch snapshot, the lines
// where it behaviorally differs from the cache's delta-restore base.
type watchDiff struct {
	watch    *CacheState
	watchGen uint64
	lines    []int32
}

// diffFor returns the behavioral line difference between the cache's
// delta-restore base snapshot and s, memoized per (base, s) pair. Both
// snapshots are immutable, so the memo stays valid until the base
// changes (Restore resets c.diffs) or either pooled snapshot is reused
// (generation mismatch). Only called from StateEquals' delta path, so
// the base is known valid and same-geometry.
func (c *Cache) diffFor(s *CacheState) []int32 {
	for i := range c.diffs {
		if c.diffs[i].watch == s && c.diffs[i].watchGen == s.gen {
			return c.diffs[i].lines
		}
	}
	base := c.lastRestore
	var lines []int32
	ls := c.cfg.LineSize
	for line := range base.tags {
		if base.valid[line] != s.valid[line] {
			lines = append(lines, int32(line))
			continue
		}
		if base.valid[line] == 0 {
			continue
		}
		off := line * ls
		if base.tags[line] != s.tags[line] || base.dirty[line] != s.dirty[line] ||
			base.lru[line] != s.lru[line] || !bytes.Equal(base.data[off:off+ls], s.data[off:off+ls]) {
			lines = append(lines, int32(line))
		}
	}
	if len(c.diffs) >= 32 {
		// Stale pooled-reuse entries could otherwise pile up; watch sets
		// are far smaller than this in practice.
		c.diffs = c.diffs[:0]
	}
	c.diffs = append(c.diffs, watchDiff{watch: s, watchGen: s.gen, lines: lines})
	return lines
}

// Equal is the strict comparison of two cache snapshots, including dead
// state: every slab bit, the clock, and the counters. The flat layout
// makes it five slice compares — there is no per-line tail that could
// escape comparison (the old per-line buffers compared only a prefix
// of each buffer, so trailing bytes could differ silently).
func (s *CacheState) Equal(o *CacheState) bool {
	return s.Clock == o.Clock && s.Stats == o.Stats &&
		slices.Equal(s.tags, o.tags) && slices.Equal(s.lru, o.lru) &&
		slices.Equal(s.valid, o.valid) && slices.Equal(s.dirty, o.dirty) &&
		bytes.Equal(s.data, o.data)
}

// MemoryState is a copy-on-write snapshot of physical memory: it
// aliases the live memory's page arrays at snapshot time. The arrays
// are immutable from then on — the live memory clones any aliased page
// before writing to it (writablePage) and Restore only copies pointers
// — so one snapshot can be shared read-only across concurrent workers.
// MemoryState is not pooled: its cost is the map, which Restore reuses
// on the live-memory side already, and pooling shared COW pages would
// need reference counting for no measured gain.
type MemoryState struct {
	pages map[uint64]*[PageSize]byte
}

// Snapshot captures memory as a COW snapshot. Cost is one map copy;
// page contents are shared with the live memory until it next writes.
func (m *Memory) Snapshot() *MemoryState {
	s := &MemoryState{pages: make(map[uint64]*[PageSize]byte, len(m.pages))}
	for k, p := range m.pages { //lint:ordered builds a map and marks a set; order cannot reach any result
		s.pages[k] = p
		m.shared[k] = struct{}{}
	}
	return s
}

// Restore points the memory at the snapshot's pages. Every restored
// page is marked shared, so the first post-restore store to it clones
// it and the snapshot stays intact for the next restore. The memory's
// existing maps are reused to avoid per-injection allocation.
func (m *Memory) Restore(s *MemoryState) {
	clear(m.pages)
	clear(m.shared)
	for k, p := range s.pages { //lint:ordered rebuilds a map and marks a set; order cannot reach any result
		m.pages[k] = p
		m.shared[k] = struct{}{}
	}
}

// StateEquals reports whether memory contents equal the snapshot's,
// with an absent page equivalent to an all-zero page (the only way
// either is observed). The common case after a checkpoint restore is
// that almost every live page still aliases the snapshot's array, so
// the pointer fast path skips nearly all byte comparison.
func (m *Memory) StateEquals(s *MemoryState) bool {
	for k, p := range m.pages { //lint:ordered all-pages-must-match check; order cannot reach the boolean result
		sp := s.pages[k]
		if p == sp {
			continue
		}
		if !pageEqual(p, sp) {
			return false
		}
	}
	for k, sp := range s.pages { //lint:ordered all-pages-must-match check; order cannot reach the boolean result
		if _, ok := m.pages[k]; ok {
			continue
		}
		if !pageEqual(nil, sp) {
			return false
		}
	}
	return true
}

// Equal is the strict comparison of two memory snapshots, with absent
// pages equivalent to all-zero pages.
func (s *MemoryState) Equal(o *MemoryState) bool {
	for k, p := range s.pages { //lint:ordered all-pages-must-match check; order cannot reach the boolean result
		if op := o.pages[k]; p != op && !pageEqual(p, op) {
			return false
		}
	}
	for k, op := range o.pages { //lint:ordered all-pages-must-match check; order cannot reach the boolean result
		if _, ok := s.pages[k]; !ok && !pageEqual(nil, op) {
			return false
		}
	}
	return true
}

func pageEqual(a, b *[PageSize]byte) bool {
	if a == nil && b == nil {
		return true
	}
	if a == nil {
		a, b = b, a
	}
	if b == nil {
		for _, v := range a {
			if v != 0 {
				return false
			}
		}
		return true
	}
	return *a == *b
}
