package mem

// Snapshot and restore for the memory hierarchy, the cache/memory half
// of the machine checkpoints used by the injection engine. Cache
// snapshots are deep copies (the data arrays are authoritative fault
// targets and small); physical memory snapshots are copy-on-write at
// page granularity — the snapshot aliases the live page arrays and the
// live memory clones a page on the first store after the snapshot — so
// K checkpoints of a large-footprint benchmark cost one page copy per
// written page, not K full memory copies.
//
// Like the core layer (internal/cpu/snapshot.go), each structure offers
// a strict Equal on the snapshot (bit-for-bit, for round-trip tests)
// and a behavioral StateEquals on the live structure (skips dead state,
// for the early-convergence Masked exit).

import "sevsim/internal/simerr"

// CacheLineState is one line of a cache snapshot. Data is nil when the
// line has never been filled or flipped (its bytes read as zero only
// through a fill, which overwrites them anyway).
type CacheLineState struct {
	Tag   uint64
	Valid bool
	Dirty bool
	LRU   uint64
	Data  []byte
}

// CacheState is a point-in-time copy of one cache's authoritative
// arrays plus the LRU clock and event counters. It shares no memory
// with the cache, so it may be restored concurrently into many caches.
type CacheState struct {
	Clock uint64
	Stats CacheStats
	Lines []CacheLineState
}

// Snapshot captures the cache's complete state.
func (c *Cache) Snapshot() *CacheState {
	s := &CacheState{
		Clock: c.clock,
		Stats: c.Stats,
		Lines: make([]CacheLineState, len(c.lines)),
	}
	for i := range c.lines {
		ln := &c.lines[i]
		s.Lines[i] = CacheLineState{Tag: ln.tag, Valid: ln.valid, Dirty: ln.dirty, LRU: ln.lru}
		if ln.data != nil {
			s.Lines[i].Data = append([]byte(nil), ln.data...)
		}
	}
	return s
}

// Restore overwrites the cache's state with the snapshot's, reusing the
// cache's existing line buffers. When the snapshot line has no data
// buffer but the cache does, the buffer is zeroed rather than dropped:
// a later FlipTagBit or FlipDataBit reuses whatever buffer exists, and
// stale bytes from a previous injection would otherwise leak into the
// restored run and break bit-exact equivalence.
func (c *Cache) Restore(s *CacheState) {
	if len(s.Lines) != len(c.lines) {
		simerr.Assertf("mem: cache restore from a differently configured cache snapshot")
	}
	c.clock = s.Clock
	c.Stats = s.Stats
	for i := range c.lines {
		ln := &c.lines[i]
		src := &s.Lines[i]
		ln.tag, ln.valid, ln.dirty, ln.lru = src.Tag, src.Valid, src.Dirty, src.LRU
		switch {
		case src.Data == nil && ln.data != nil:
			clear(ln.data)
		case src.Data != nil:
			if ln.data == nil {
				ln.data = make([]byte, len(src.Data))
			}
			copy(ln.data, src.Data)
		}
	}
}

// Clock returns the LRU clock, the cheap per-cache component of the
// machine-level convergence prefilter hash. The clock advances on every
// access, so two executions that touched the caches differently almost
// always disagree on it; it is part of the StateEquals relation (LRU
// state steers future victim selection), which keeps the hash a sound
// subset of the exact comparison.
func (c *Cache) Clock() uint64 { return c.clock }

// dataEqual compares two line buffers treating nil as all-zero, which
// is exactly how a missing buffer behaves (it is only ever observed
// after a fill overwrites it, or as zeroes via flips that allocate).
func dataEqual(a, b []byte, size int) bool {
	if a == nil && b == nil {
		return true
	}
	for i := 0; i < size; i++ {
		var av, bv byte
		if a != nil {
			av = a[i]
		}
		if b != nil {
			bv = b[i]
		}
		if av != bv {
			return false
		}
	}
	return true
}

// StateEquals reports whether the cache's behavioral state equals the
// snapshot's. Invalid lines compare only their valid bit: fill
// overwrites tag, dirty, and the whole data buffer before the line can
// be observed, and touch assigns the line a fresh LRU stamp before the
// next victim scan can read it, so everything but the valid bit of an
// invalid line is dead state. Valid lines compare in full, and so does
// the LRU clock (it steers future victim selection). Stats are
// excluded: they never feed back into execution or classification, and
// a behaviorally converged run may carry different event counts from
// its pre-convergence excursion.
func (c *Cache) StateEquals(s *CacheState) bool {
	if c.clock != s.Clock {
		return false
	}
	for i := range c.lines {
		ln := &c.lines[i]
		src := &s.Lines[i]
		if ln.valid != src.Valid {
			return false
		}
		if !ln.valid {
			continue
		}
		if ln.tag != src.Tag || ln.dirty != src.Dirty || ln.lru != src.LRU {
			return false
		}
		if !dataEqual(ln.data, src.Data, c.cfg.LineSize) {
			return false
		}
	}
	return true
}

// Equal is the strict comparison of two cache snapshots, including dead
// state, with nil data buffers equivalent to all-zero buffers.
func (s *CacheState) Equal(o *CacheState) bool {
	if s.Clock != o.Clock || s.Stats != o.Stats || len(s.Lines) != len(o.Lines) {
		return false
	}
	for i := range s.Lines {
		a, b := &s.Lines[i], &o.Lines[i]
		if a.Tag != b.Tag || a.Valid != b.Valid || a.Dirty != b.Dirty || a.LRU != b.LRU {
			return false
		}
		size := max(len(a.Data), len(b.Data))
		if !dataEqual(a.Data, b.Data, size) {
			return false
		}
	}
	return true
}

// MemoryState is a copy-on-write snapshot of physical memory: it
// aliases the live memory's page arrays at snapshot time. The arrays
// are immutable from then on — the live memory clones any aliased page
// before writing to it (writablePage) and Restore only copies pointers
// — so one snapshot can be shared read-only across concurrent workers.
type MemoryState struct {
	pages map[uint64]*[PageSize]byte
}

// Snapshot captures memory as a COW snapshot. Cost is one map copy;
// page contents are shared with the live memory until it next writes.
func (m *Memory) Snapshot() *MemoryState {
	s := &MemoryState{pages: make(map[uint64]*[PageSize]byte, len(m.pages))}
	for k, p := range m.pages { //lint:ordered builds a map and marks a set; order cannot reach any result
		s.pages[k] = p
		m.shared[k] = struct{}{}
	}
	return s
}

// Restore points the memory at the snapshot's pages. Every restored
// page is marked shared, so the first post-restore store to it clones
// it and the snapshot stays intact for the next restore. The memory's
// existing maps are reused to avoid per-injection allocation.
func (m *Memory) Restore(s *MemoryState) {
	clear(m.pages)
	clear(m.shared)
	for k, p := range s.pages { //lint:ordered rebuilds a map and marks a set; order cannot reach any result
		m.pages[k] = p
		m.shared[k] = struct{}{}
	}
}

// StateEquals reports whether memory contents equal the snapshot's,
// with an absent page equivalent to an all-zero page (the only way
// either is observed). The common case after a checkpoint restore is
// that almost every live page still aliases the snapshot's array, so
// the pointer fast path skips nearly all byte comparison.
func (m *Memory) StateEquals(s *MemoryState) bool {
	for k, p := range m.pages { //lint:ordered all-pages-must-match check; order cannot reach the boolean result
		sp := s.pages[k]
		if p == sp {
			continue
		}
		if !pageEqual(p, sp) {
			return false
		}
	}
	for k, sp := range s.pages { //lint:ordered all-pages-must-match check; order cannot reach the boolean result
		if _, ok := m.pages[k]; ok {
			continue
		}
		if !pageEqual(nil, sp) {
			return false
		}
	}
	return true
}

// Equal is the strict comparison of two memory snapshots, with absent
// pages equivalent to all-zero pages.
func (s *MemoryState) Equal(o *MemoryState) bool {
	for k, p := range s.pages { //lint:ordered all-pages-must-match check; order cannot reach the boolean result
		if op := o.pages[k]; p != op && !pageEqual(p, op) {
			return false
		}
	}
	for k, op := range o.pages { //lint:ordered all-pages-must-match check; order cannot reach the boolean result
		if _, ok := s.pages[k]; !ok && !pageEqual(nil, op) {
			return false
		}
	}
	return true
}

func pageEqual(a, b *[PageSize]byte) bool {
	if a == nil && b == nil {
		return true
	}
	if a == nil {
		a, b = b, a
	}
	if b == nil {
		for _, v := range a {
			if v != 0 {
				return false
			}
		}
		return true
	}
	return *a == *b
}
