package mem

import (
	"math/rand"
	"testing"
)

// newHierarchy builds mem -> L2 -> L1D for cache tests.
func newHierarchy() (*Memory, *Cache, *Cache) {
	m := testMemory()
	l2 := NewCache(CacheConfig{Name: "l2", Size: 8192, Ways: 4, LineSize: 64, HitLatency: 12, AddrBits: 32}, m)
	l1 := NewCache(CacheConfig{Name: "l1d", Size: 1024, Ways: 2, LineSize: 64, HitLatency: 2, AddrBits: 32}, l2)
	return m, l2, l1
}

func TestCacheReadWriteRoundTrip(t *testing.T) {
	_, _, l1 := newHierarchy()
	l1.Write(0x100000, 8, 0xdeadbeefcafef00d)
	v, _ := l1.Read(0x100000, 8)
	if v != 0xdeadbeefcafef00d {
		t.Fatalf("read = %#x", v)
	}
	// Partial reads see the little-endian sub-words.
	v, _ = l1.Read(0x100000, 4)
	if v != 0xcafef00d {
		t.Fatalf("read4 = %#x", v)
	}
	v, _ = l1.Read(0x100004, 4)
	if v != 0xdeadbeef {
		t.Fatalf("read4 hi = %#x", v)
	}
	v, _ = l1.Read(0x100001, 1)
	if v != 0xf0 {
		t.Fatalf("read1 = %#x", v)
	}
}

func TestCacheMissHitLatency(t *testing.T) {
	_, _, l1 := newHierarchy()
	_, lat := l1.Read(0x100000, 4)
	// Cold miss: l1 hit latency + l2 (miss: hit lat + mem) chain.
	if lat != 2+12+80 {
		t.Errorf("cold miss latency = %d, want 94", lat)
	}
	_, lat = l1.Read(0x100004, 4)
	if lat != 2 {
		t.Errorf("hit latency = %d, want 2", lat)
	}
	if l1.Stats.Hits != 1 || l1.Stats.Misses != 1 {
		t.Errorf("stats = %+v", l1.Stats)
	}
}

func TestWriteBackOnEviction(t *testing.T) {
	m, _, l1 := newHierarchy()
	// L1: 1024 B / 2 ways / 64 B lines = 8 sets. Addresses 64*8=512 bytes
	// apart map to the same set.
	base := uint64(0x100000)
	stride := uint64(512)
	l1.Write(base, 8, 111)
	l1.Write(base+stride, 8, 222)
	l1.Write(base+2*stride, 8, 333) // evicts the line holding 111
	if l1.Stats.Writebacks == 0 {
		t.Fatal("expected a write-back")
	}
	// The written-back value must be visible in L2/mem via a fresh read.
	v, _ := l1.Read(base, 8)
	if v != 111 {
		t.Fatalf("value after write-back round trip = %d", v)
	}
	_ = m
}

func TestCacheCoherentWithMemoryModel(t *testing.T) {
	// Differential test: random reads/writes through the cache hierarchy
	// must agree with a flat shadow model.
	_, _, l1 := newHierarchy()
	shadow := map[uint64]uint64{}
	r := rand.New(rand.NewSource(42))
	for i := 0; i < 20000; i++ {
		slot := uint64(r.Intn(4096)) * 8
		addr := 0x100000 + slot
		if r.Intn(2) == 0 {
			val := r.Uint64()
			l1.Write(addr, 8, val)
			shadow[addr] = val
		} else {
			v, _ := l1.Read(addr, 8)
			if v != shadow[addr] {
				t.Fatalf("iter %d: read %#x = %#x, want %#x", i, addr, v, shadow[addr])
			}
		}
	}
}

func TestTagFlipCausesFalseMissAndRefetch(t *testing.T) {
	m, _, l1 := newHierarchy()
	// Write through to memory, then make the line clean in L1 by
	// evicting and re-reading.
	m.LoadImage(0x100000, []byte{0xaa, 0xbb, 0xcc, 0xdd, 0, 0, 0, 0})
	v, _ := l1.Read(0x100000, 4)
	if v != 0xddccbbaa {
		t.Fatalf("initial read = %#x", v)
	}
	// Flip a tag bit of every line in set 0; the resident line's tag no
	// longer matches, so the next read misses and refetches cleanly.
	per := uint64(l1.TagWidth() + 2)
	l1.FlipTagBit(0)   // way 0 tag bit 0
	l1.FlipTagBit(per) // way 1 tag bit 0
	v, _ = l1.Read(0x100000, 4)
	if v != 0xddccbbaa {
		t.Fatalf("read after tag flip = %#x (clean line: flip must be masked)", v)
	}
	if l1.Stats.Misses < 2 {
		t.Errorf("expected a second miss, stats %+v", l1.Stats)
	}
}

func TestDirtyTagFlipWritesBackToWrongAddress(t *testing.T) {
	_, _, l1 := newHierarchy()
	l1.Write(0x100000, 8, 0x1234) // dirty line in set 0
	// Flip tag bit 0 of way 0: the reconstructed write-back address
	// becomes 0x100000 ^ (1 << (6 offset + 3 set bits)) = 0x100200,
	// still inside the mapped data region.
	l1.FlipTagBit(0)
	// Force eviction of set 0 by touching 2 more lines in the set.
	l1.Read(0x100000+512, 8)
	l1.Read(0x100000+1024, 8)
	l1.Read(0x100000+1536, 8)
	// The value must now appear at the corrupted address.
	v, _ := l1.Read(0x100200, 8)
	if v != 0x1234 {
		t.Errorf("corrupted write-back value = %#x, want 0x1234", v)
	}
	// And the original address must have lost the update.
	v, _ = l1.Read(0x100000, 8)
	if v == 0x1234 {
		t.Error("original address unexpectedly kept the dirty data")
	}
}

func TestValidBitFlipDropsDirtyLine(t *testing.T) {
	_, _, l1 := newHierarchy()
	l1.Write(0x100000, 8, 77)
	per := uint64(l1.TagWidth() + 2)
	l1.FlipTagBit(uint64(l1.TagWidth())) // valid bit of set 0 way 0
	_ = per
	v, _ := l1.Read(0x100000, 8)
	if v != 0 {
		t.Errorf("read after valid-flip = %d, want 0 (dirty data lost)", v)
	}
}

func TestDataBitFlipVisible(t *testing.T) {
	_, _, l1 := newHierarchy()
	l1.Write(0x100000, 8, 0)
	l1.FlipDataBit(5) // set 0, way 0, byte 0, bit 5
	v, _ := l1.Read(0x100000, 8)
	if v != 32 {
		t.Errorf("read after data flip = %d, want 32", v)
	}
}

func TestBitCounts(t *testing.T) {
	_, l2, l1 := newHierarchy()
	if got := l1.DataBitCount(); got != 1024*8 {
		t.Errorf("l1 data bits = %d", got)
	}
	// l1: 8 sets, 2 ways, tag width 32-6-3 = 23, +2 state bits.
	if got := l1.TagBitCount(); got != 8*2*25 {
		t.Errorf("l1 tag bits = %d", got)
	}
	if got := l2.DataBitCount(); got != 8192*8 {
		t.Errorf("l2 data bits = %d", got)
	}
}

func TestReadOnlyCacheRejectsWrites(t *testing.T) {
	m := testMemory()
	l1i := NewCache(CacheConfig{Name: "l1i", Size: 1024, Ways: 2, LineSize: 64, HitLatency: 2, AddrBits: 32, ReadOnly: true}, m)
	expectAssert(t, func() { l1i.Write(0x1000, 4, 1) })
}

func TestLRUReplacement(t *testing.T) {
	_, _, l1 := newHierarchy()
	// Fill both ways of set 0, touch way A again, then bring in a third
	// line: way B (the LRU one) must be the victim.
	a, b, c := uint64(0x100000), uint64(0x100000+512), uint64(0x100000+1024)
	l1.Read(a, 8)
	l1.Read(b, 8)
	l1.Read(a, 8) // a is now MRU
	l1.Read(c, 8) // evicts b
	misses := l1.Stats.Misses
	l1.Read(a, 8) // must still hit
	if l1.Stats.Misses != misses {
		t.Error("a was evicted but should have been MRU-protected")
	}
	l1.Read(b, 8) // must miss
	if l1.Stats.Misses != misses+1 {
		t.Error("b should have been evicted")
	}
}
