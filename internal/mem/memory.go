// Package mem implements the simulated physical memory and the
// set-associative write-back caches of the sevsim machine models.
//
// The cache arrays are authoritative: once a line is resident, reads are
// served from the line's data bytes and writes update them, so a bit
// flipped inside a cache data or tag array propagates (or is masked)
// exactly as it would in hardware — by being consumed, overwritten,
// evicted, or written back.
package mem

import (
	"encoding/binary"
	"sort"

	"sevsim/internal/simerr"
)

// PageSize is the allocation granule of the simulated physical memory.
const PageSize = 4096

// Perm is a region permission bit set.
type Perm uint8

const (
	PermR Perm = 1 << iota
	PermW
	PermX
)

// Region is a mapped address range with permissions.
type Region struct {
	Name string
	Base uint64
	Size uint64
	Perm Perm
}

// Contains reports whether [addr, addr+size) lies inside the region.
func (r Region) Contains(addr, size uint64) bool {
	return addr >= r.Base && addr+size <= r.Base+r.Size && addr+size >= addr
}

// FaultKind classifies a program-level memory fault.
type FaultKind uint8

const (
	FaultNone FaultKind = iota
	FaultUnmapped
	FaultMisaligned
	FaultProtection
)

func (k FaultKind) String() string {
	switch k {
	case FaultUnmapped:
		return "unmapped"
	case FaultMisaligned:
		return "misaligned"
	case FaultProtection:
		return "protection"
	}
	return "none"
}

// Fault describes a failed program-level access. It becomes a precise
// exception in the core and a Crash outcome for the run.
type Fault struct {
	Kind  FaultKind
	Addr  uint64
	Write bool
}

// Memory is the flat physical memory: a set of mapped regions backed by
// lazily allocated pages. Accesses from the core are validated with
// CheckAccess before they enter the cache hierarchy; the raw line
// interface used by caches asserts (simulator invariant) on unmapped
// addresses, because by construction only a corrupted tag or a corrupted
// queue entry can steer the hierarchy outside the map.
type Memory struct {
	regions []Region //snapshot:skip immutable address map, fixed at program load
	pages   map[uint64]*[PageSize]byte

	// shared marks pages whose backing array is aliased by at least one
	// snapshot (see snapshot.go). Writers must go through writablePage,
	// which clones a shared page before the first store to it, so the K
	// checkpoints of a golden run cost one page copy per *written* page
	// rather than K copies of the whole memory.
	//
	//equality:dead COW bookkeeping; every observable byte is compared via pages
	shared map[uint64]struct{}

	// Latency is the flat access latency in cycles charged per line
	// transfer to or from memory.
	Latency int //snapshot:skip immutable configuration, fixed at construction
}

// NewMemory creates an empty memory with the given flat access latency.
func NewMemory(latency int) *Memory {
	return &Memory{
		pages:   make(map[uint64]*[PageSize]byte),
		shared:  make(map[uint64]struct{}),
		Latency: latency,
	}
}

// Map adds a region. Overlapping regions are rejected via assert since
// they indicate a harness bug, not a simulated fault.
func (m *Memory) Map(r Region) {
	for _, old := range m.regions {
		if r.Base < old.Base+old.Size && old.Base < r.Base+r.Size {
			simerr.Assertf("mem: region %q overlaps %q", r.Name, old.Name)
		}
	}
	m.regions = append(m.regions, r)
	sort.Slice(m.regions, func(i, j int) bool { return m.regions[i].Base < m.regions[j].Base })
}

// Regions returns the mapped regions in address order.
func (m *Memory) Regions() []Region { return m.regions }

// CheckAccess validates a program-level access of size bytes. It returns
// nil when the access is legal.
func (m *Memory) CheckAccess(addr, size uint64, write bool) *Fault {
	if size > 1 && addr%size != 0 {
		return &Fault{Kind: FaultMisaligned, Addr: addr, Write: write}
	}
	for _, r := range m.regions {
		if r.Contains(addr, size) {
			need := PermR
			if write {
				need = PermW
			}
			if r.Perm&need == 0 {
				return &Fault{Kind: FaultProtection, Addr: addr, Write: write}
			}
			return nil
		}
	}
	return &Fault{Kind: FaultUnmapped, Addr: addr, Write: write}
}

// CheckFetch validates an instruction fetch address.
func (m *Memory) CheckFetch(addr uint64) *Fault {
	if addr%4 != 0 {
		return &Fault{Kind: FaultMisaligned, Addr: addr}
	}
	for _, r := range m.regions {
		if r.Contains(addr, 4) {
			if r.Perm&PermX == 0 {
				return &Fault{Kind: FaultProtection, Addr: addr}
			}
			return nil
		}
	}
	return &Fault{Kind: FaultUnmapped, Addr: addr}
}

// ExecSpan returns the bounds of the executable region containing the
// 4-byte word at addr. The address map is immutable after program
// load, so callers may memoize the span and skip CheckFetch for
// aligned fetches inside it.
func (m *Memory) ExecSpan(addr uint64) (base, size uint64, ok bool) {
	for _, r := range m.regions {
		if r.Contains(addr, 4) && r.Perm&PermX != 0 {
			return r.Base, r.Size, true
		}
	}
	return 0, 0, false
}

func (m *Memory) mapped(addr, size uint64) bool {
	for _, r := range m.regions {
		if r.Contains(addr, size) {
			return true
		}
	}
	return false
}

func (m *Memory) page(addr uint64, create bool) *[PageSize]byte {
	key := addr / PageSize
	p := m.pages[key]
	if p == nil && create {
		p = new([PageSize]byte)
		m.pages[key] = p
	}
	return p
}

// writablePage returns the page containing addr, cloning it first when
// its backing array is aliased by a snapshot. All stores into memory
// must come through here; reads may keep using page, which never
// mutates the array.
func (m *Memory) writablePage(addr uint64) *[PageSize]byte {
	key := addr / PageSize
	p := m.pages[key]
	if p == nil {
		p = new([PageSize]byte)
		m.pages[key] = p
		return p
	}
	if _, ok := m.shared[key]; ok {
		cl := *p
		p = &cl
		m.pages[key] = p
		delete(m.shared, key)
	}
	return p
}

// ReadLine copies a naturally aligned line from memory into dst. It
// asserts when the address is outside the system map: only corrupted
// microarchitectural state can route a line fill to an unmapped address.
func (m *Memory) ReadLine(addr uint64, dst []byte) int {
	size := uint64(len(dst))
	if addr%size != 0 {
		simerr.Assertf("mem: misaligned line read at %#x", addr)
	}
	if !m.mapped(addr, size) {
		simerr.Assertf("mem: line read outside system map at %#x", addr)
	}
	for i := uint64(0); i < size; {
		p := m.page(addr+i, false)
		off := (addr + i) % PageSize
		n := min(size-i, PageSize-off)
		if p == nil {
			for j := uint64(0); j < n; j++ {
				dst[i+j] = 0
			}
		} else {
			copy(dst[i:i+n], p[off:off+n])
		}
		i += n
	}
	return m.Latency
}

// WriteLine copies a naturally aligned line into memory. Same mapping
// contract as ReadLine.
func (m *Memory) WriteLine(addr uint64, src []byte) int {
	size := uint64(len(src))
	if addr%size != 0 {
		simerr.Assertf("mem: misaligned line write at %#x", addr)
	}
	if !m.mapped(addr, size) {
		simerr.Assertf("mem: line write outside system map at %#x", addr)
	}
	for i := uint64(0); i < size; {
		p := m.writablePage(addr + i)
		off := (addr + i) % PageSize
		n := min(size-i, PageSize-off)
		copy(p[off:off+n], src[i:i+n])
		i += n
	}
	return m.Latency
}

// LoadImage writes raw bytes directly into memory, bypassing permission
// checks. Used by the program loader before simulation starts.
func (m *Memory) LoadImage(addr uint64, data []byte) {
	for i := range data {
		p := m.writablePage(addr + uint64(i))
		p[(addr+uint64(i))%PageSize] = data[i]
	}
}

// ReadWord reads an n-byte little-endian value directly from memory,
// bypassing the cache hierarchy. Used by tests and by the loader.
func (m *Memory) ReadWord(addr uint64, n int) uint64 {
	var buf [8]byte
	for i := 0; i < n; i++ {
		p := m.page(addr+uint64(i), false)
		if p != nil {
			buf[i] = p[(addr+uint64(i))%PageSize]
		}
	}
	return binary.LittleEndian.Uint64(buf[:])
}
