// Package simerr defines the two fatal simulator event types shared by
// the memory hierarchy and the processor core.
//
// A Crash models an event a real system would turn into a process or
// kernel failure (segmentation fault, illegal instruction, misaligned
// access). Crashes are raised as precise exceptions: the core records
// them on the faulting instruction and reports them when it reaches the
// commit point.
//
// An Assert models the situation the paper describes for its gem5-based
// injector: the simulator reaches a state it cannot map to any real
// hardware behaviour (a physical register tag outside the register file,
// a free-list double-free, a cache writing back to an address outside
// the simulated system map). Asserts abort the simulation immediately;
// they are raised as panics and recovered at the machine boundary.
package simerr

import "fmt"

// Crash describes a fatal program-level fault.
type Crash struct {
	Reason string // e.g. "unmapped load", "illegal instruction"
	Addr   uint64 // faulting address (0 when not address-related)
	PC     uint64 // program counter of the faulting instruction
}

func (c *Crash) Error() string {
	return fmt.Sprintf("crash: %s (addr=%#x pc=%#x)", c.Reason, c.Addr, c.PC)
}

// Assert describes a simulator invariant violation.
type Assert struct {
	Reason string
}

func (a *Assert) Error() string { return "assert: " + a.Reason }

// Assertf panics with an Assert carrying a formatted reason. Callers at
// the machine boundary recover it and classify the run as an Assert
// outcome.
func Assertf(format string, args ...any) {
	panic(&Assert{Reason: fmt.Sprintf(format, args...)})
}
