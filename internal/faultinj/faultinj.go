// Package faultinj implements the GeFIN-style statistical fault
// injector: single-bit transient faults placed uniformly at random over
// (cycle x bit) for each hardware structure field, with end-to-end
// outcome classification into the paper's five fault-effect classes.
package faultinj

import (
	"fmt"
	"math/rand"
	"sync"

	"sevsim/internal/checkpoint"
	"sevsim/internal/cpu"
	"sevsim/internal/machine"
)

// Outcome is the effect class of one injection, following the paper's
// taxonomy (Masked / SDC / Crash / Timeout / Assert).
type Outcome int

const (
	Masked Outcome = iota
	SDC
	Crash
	Timeout
	Assert
	NumOutcomes
)

func (o Outcome) String() string {
	switch o {
	case Masked:
		return "Masked"
	case SDC:
		return "SDC"
	case Crash:
		return "Crash"
	case Timeout:
		return "Timeout"
	case Assert:
		return "Assert"
	}
	return "?"
}

// Target is one injectable hardware structure field.
type Target struct {
	// Component is the paper-level structure (L1I, L1D, L2, RF, LQ, SQ,
	// IQ, ROB); Field distinguishes sub-arrays (data/tag, src/dst, ...).
	Component string
	Field     string

	bits func(*machine.Machine) uint64
	flip func(*machine.Machine, uint64)
}

// Name returns "Component.Field", or just the component when the
// structure has a single field.
func (t Target) Name() string {
	if t.Field == "" {
		return t.Component
	}
	return t.Component + "." + t.Field
}

// Bits returns the number of injectable bits in this machine's instance
// of the target.
func (t Target) Bits(m *machine.Machine) uint64 { return t.bits(m) }

// Flip flips the addressed bit.
func (t Target) Flip(m *machine.Machine, bit uint64) { t.flip(m, bit) }

func coreTarget(component, field string, f cpu.Field) Target {
	return Target{
		Component: component,
		Field:     field,
		bits:      func(m *machine.Machine) uint64 { return m.Core.FieldBits(f) },
		flip:      func(m *machine.Machine, bit uint64) { m.Core.FlipBit(f, bit) },
	}
}

// NewTarget builds a custom injectable target from explicit bit-count
// and bit-flip functions, for structures outside the paper's fifteen
// built-in fields (experimental arrays, ablation studies, tests).
func NewTarget(component, field string,
	bits func(*machine.Machine) uint64,
	flip func(*machine.Machine, uint64)) Target {
	return Target{Component: component, Field: field, bits: bits, flip: flip}
}

// Targets returns every injectable field, grouped by component in the
// paper's presentation order: the 8 components with all their
// sub-fields (15 fields total).
func Targets() []Target {
	return []Target{
		{Component: "L1I", Field: "data",
			bits: func(m *machine.Machine) uint64 { return m.L1I.DataBitCount() },
			flip: func(m *machine.Machine, b uint64) { m.L1I.FlipDataBit(b) }},
		{Component: "L1I", Field: "tag",
			bits: func(m *machine.Machine) uint64 { return m.L1I.TagBitCount() },
			flip: func(m *machine.Machine, b uint64) { m.L1I.FlipTagBit(b) }},
		{Component: "L1D", Field: "data",
			bits: func(m *machine.Machine) uint64 { return m.L1D.DataBitCount() },
			flip: func(m *machine.Machine, b uint64) { m.L1D.FlipDataBit(b) }},
		{Component: "L1D", Field: "tag",
			bits: func(m *machine.Machine) uint64 { return m.L1D.TagBitCount() },
			flip: func(m *machine.Machine, b uint64) { m.L1D.FlipTagBit(b) }},
		{Component: "L2", Field: "data",
			bits: func(m *machine.Machine) uint64 { return m.L2.DataBitCount() },
			flip: func(m *machine.Machine, b uint64) { m.L2.FlipDataBit(b) }},
		{Component: "L2", Field: "tag",
			bits: func(m *machine.Machine) uint64 { return m.L2.TagBitCount() },
			flip: func(m *machine.Machine, b uint64) { m.L2.FlipTagBit(b) }},
		coreTarget("RF", "", cpu.FieldPRF),
		coreTarget("LQ", "", cpu.FieldLQ),
		coreTarget("SQ", "", cpu.FieldSQ),
		coreTarget("IQ", "src", cpu.FieldIQSrc),
		coreTarget("IQ", "dst", cpu.FieldIQDst),
		coreTarget("ROB", "pc", cpu.FieldROBPC),
		coreTarget("ROB", "dest", cpu.FieldROBDest),
		coreTarget("ROB", "old", cpu.FieldROBOld),
		coreTarget("ROB", "ctrl", cpu.FieldROBCtrl),
	}
}

// TargetByName resolves "L1D.data"-style names.
func TargetByName(name string) (Target, bool) {
	for _, t := range Targets() {
		if t.Name() == name {
			return t, true
		}
	}
	return Target{}, false
}

// Components returns the component names in presentation order.
func Components() []string {
	return []string{"L1I", "L1D", "L2", "RF", "LQ", "SQ", "IQ", "ROB"}
}

// Experiment is a prepared injection experiment: one (machine config,
// binary) pair with its golden (fault-free) reference run. An
// Experiment is safe for concurrent use: campaigns over different
// targets may share one instance.
type Experiment struct {
	Config       machine.Config
	Program      *machine.Program
	GoldenCycles uint64
	GoldenOutput []uint64
	GoldenStats  machine.Result

	// Trace is the golden run's commit stream (program order), recorded
	// only by NewTracedExperiment. It feeds the binary-level ACE
	// analysis: reconstructing the committed rename map at any cycle is
	// what lets an injection pruner prove a register-file fault masked
	// without simulating it.
	Trace []cpu.CommitEvent

	// Bit counts depend only on the configuration, so they are computed
	// once per (experiment, target) on a single probe machine instead of
	// allocating a fresh machine per query.
	bitsMu   sync.Mutex
	bitCache map[string]uint64
	probe    *machine.Machine

	// ckpts is the golden checkpoint stream (nil when checkpointing is
	// disabled): injections fast-forward to the latest checkpoint
	// at-or-before their cycle instead of simulating from 0, and, with
	// fastExit, compare against later checkpoints to classify Masked at
	// the first provable state convergence. The stream is immutable and
	// shared read-only by every worker; scratch holds the per-worker
	// recycled machines that checkpoints are restored into.
	ckpts    *checkpoint.Stream
	fastExit bool
	scratch  sync.Pool

	// scratchByCkpt parks, per checkpoint index, one idle machine whose
	// caches' delta-restore base is that checkpoint, so single Inject
	// calls that hop between checkpoints still restore by delta instead
	// of copying the full cache slabs. Bounded by the checkpoint count;
	// overflow machines fall back to the generic scratch pool.
	scratchMu     sync.Mutex
	scratchByCkpt map[int]*machine.Machine
}

// timeoutFactor follows the paper: a run is a Timeout when it exceeds
// twice the fault-free execution time.
const timeoutFactor = 2

// NewExperiment runs the golden simulation and returns the prepared
// experiment, with checkpoint fast-forward and the early-convergence
// Masked exit enabled at their defaults.
func NewExperiment(cfg machine.Config, prog *machine.Program) (*Experiment, error) {
	return NewExperimentOptions(cfg, prog, Options{})
}

// NewTracedExperiment is NewExperiment with commit tracing: the golden
// run additionally records one CommitEvent per committed instruction
// (Experiment.Trace), the input to static ACE analysis and injection
// pruning. The trace costs ~16 bytes per committed instruction, so it
// is opt-in rather than the default.
func NewTracedExperiment(cfg machine.Config, prog *machine.Program) (*Experiment, error) {
	return NewExperimentOptions(cfg, prog, Options{Traced: true})
}

// NewExperimentOptions is the fully configurable constructor: it runs
// the golden simulation, then (unless opts.Checkpoints is negative)
// replays it once more to record the golden checkpoint stream the
// injection fast path restores from.
func NewExperimentOptions(cfg machine.Config, prog *machine.Program, opts Options) (*Experiment, error) {
	m := machine.New(cfg, prog)
	var trace []cpu.CommitEvent
	if opts.Traced {
		trace = make([]cpu.CommitEvent, 0, 1024)
		m.Core.SetCommitHook(func(ev cpu.CommitEvent) { trace = append(trace, ev) })
	}
	res := m.Run(1 << 40)
	if res.Outcome != machine.OutcomeOK {
		return nil, &GoldenError{Result: res}
	}
	out := make([]uint64, len(res.Output))
	copy(out, res.Output)
	e := &Experiment{
		Config:       cfg,
		Program:      prog,
		GoldenCycles: res.Cycles,
		GoldenOutput: out,
		GoldenStats:  res,
		Trace:        trace,
	}
	if opts.Checkpoints >= 0 {
		k := opts.Checkpoints
		if k == 0 {
			k = DefaultCheckpoints
		}
		if cycles := checkpoint.Cycles(res.Cycles, k); len(cycles) > 0 {
			stream, rec := checkpoint.Record(machine.New(cfg, prog), 1<<40, cycles)
			if rec.Outcome != machine.OutcomeOK || rec.Cycles != res.Cycles || !sameOutput(rec.Output, out) {
				// Simulation is deterministic; a recording pass that
				// deviates from the first golden run is a simulator bug
				// and checkpoints built from it would be unsound.
				return nil, fmt.Errorf("faultinj: checkpoint recording diverged from golden run (%s after %d cycles vs ok after %d)",
					rec.Outcome, rec.Cycles, res.Cycles)
			}
			e.ckpts = stream
			e.fastExit = !opts.NoFastExit
		}
	}
	return e, nil
}

// Pruner decides, without simulating, that a sampled fault is provably
// masked. Implementations must be safe for concurrent use: campaign
// workers consult the pruner from many goroutines. The binary-level
// ACE analyzer (internal/binanalysis) provides the register-file
// pruner; the interface lives here so the campaign driver does not
// depend on the analyzer.
type Pruner interface {
	// Prunable reports whether the injection into target is provably
	// masked, with a short human-readable reason for audit trails.
	Prunable(t Target, inj Injection) (bool, string)
}

// PruneKind records which static proof class a pruner assigned an
// injection: provably masked at register or bit granularity, or
// provably a deterministic crash (DUE). The kind decides the synthetic
// outcome a pruned injection records — Masked for the dead-value
// proofs, Crash for PruneDUE.
type PruneKind uint8

const (
	PruneNone PruneKind = iota // no static proof; must simulate
	PruneReg                   // masked: the whole mapped register is dead
	PruneBit                   // masked: bit-granular analysis proves the bit dead
	PruneDUE                   // crash-certain: fault propagation proves a deterministic fault
)

// String names the proof class for reports.
func (k PruneKind) String() string {
	switch k {
	case PruneReg:
		return "reg"
	case PruneBit:
		return "bit"
	case PruneDUE:
		return "due"
	}
	return "none"
}

// KindPruner is an optional Pruner refinement that also reports the
// granularity of each proof, so campaigns can split pruner hit rates
// into register-granular vs bit-granular counts.
type KindPruner interface {
	Pruner
	// PrunableKind classifies the injection: PruneNone when it cannot
	// be proven masked, otherwise the granularity of the proof.
	PrunableKind(t Target, inj Injection) (PruneKind, string)
}

// GoldenError reports a fault-free run that did not complete.
type GoldenError struct{ Result machine.Result }

func (e *GoldenError) Error() string {
	return "faultinj: golden run failed: " + e.Result.Outcome.String() + " " + e.Result.Reason
}

// Injection is one sampled fault.
type Injection struct {
	Cycle uint64
	Bit   uint64
}

// TargetBits returns the injectable bit count of the target under this
// experiment's machine configuration. Counts are cached per target
// name; the first query for a target probes a single shared machine
// instance (bit counts are pure functions of the configuration).
func (e *Experiment) TargetBits(t Target) uint64 {
	e.bitsMu.Lock()
	defer e.bitsMu.Unlock()
	if bits, ok := e.bitCache[t.Name()]; ok {
		return bits
	}
	if e.probe == nil {
		e.probe = machine.New(e.Config, e.Program)
	}
	bits := t.Bits(e.probe)
	if e.bitCache == nil {
		e.bitCache = make(map[string]uint64)
	}
	e.bitCache[t.Name()] = bits
	return bits
}

// SampleError reports a target with no injectable (cycle x bit) space.
type SampleError struct {
	Target string
	Reason string
}

func (e *SampleError) Error() string {
	return "faultinj: cannot sample " + e.Target + ": " + e.Reason
}

// Sample draws n uniform (cycle, bit) faults for the target, following
// the statistical fault injection formulation of Leveugle et al. It
// returns a SampleError when the (cycle x bit) space is empty — a
// zero-bit target (e.g. a zero-entry queue configuration) or a golden
// run with zero cycles — instead of panicking inside the RNG.
func (e *Experiment) Sample(t Target, n int, seed int64) ([]Injection, error) {
	bits := e.TargetBits(t)
	if e.GoldenCycles == 0 {
		return nil, &SampleError{Target: t.Name(), Reason: "golden run has zero cycles"}
	}
	if bits == 0 {
		return nil, &SampleError{Target: t.Name(), Reason: "target has zero injectable bits"}
	}
	if n < 0 {
		n = 0
	}
	r := rand.New(rand.NewSource(seed))
	inj := make([]Injection, n)
	for i := range inj {
		inj[i] = Injection{
			Cycle: uint64(r.Int63n(int64(e.GoldenCycles))),
			Bit:   uint64(r.Int63n(int64(bits))),
		}
	}
	return inj, nil
}

// InjectResult is the classified outcome of one injection.
type InjectResult struct {
	Outcome    Outcome
	Reason     string
	Cycles     uint64
	Unexpected bool // assert came from a recovered non-modelled panic
	Pruned     bool // Masked proven statically; the run was never simulated
	// PruneKind records the proof granularity when Pruned is set
	// (PruneReg or PruneBit); PruneNone otherwise.
	PruneKind PruneKind
}

// Inject runs one end-to-end fault injection: the machine is
// fast-forwarded to the latest golden checkpoint at-or-before the
// injection cycle (or started fresh when checkpointing is disabled),
// the addressed bit is flipped at the chosen cycle, and the run is
// classified against the golden reference.
func (e *Experiment) Inject(t Target, inj Injection) InjectResult {
	return e.runInjection(inj, flipHook(t, inj))
}

// flipHook schedules a single-bit flip at the injection cycle.
func flipHook(t Target, inj Injection) machine.Hook {
	return machine.Hook{
		At: inj.Cycle,
		Fn: func(mm *machine.Machine) { t.Flip(mm, inj.Bit) },
	}
}

// hookFor schedules the model's bit flips at the injection cycle.
func hookFor(e *Experiment, t Target, inj Injection, model Model, bits uint64) machine.Hook {
	return machine.Hook{
		At: inj.Cycle,
		Fn: func(mm *machine.Machine) {
			for k := uint64(0); k < model.Width(); k++ {
				t.Flip(mm, (inj.Bit+k)%bits)
			}
		},
	}
}

// classify maps a simulation result to the paper's fault-effect classes.
func (e *Experiment) classify(res machine.Result) InjectResult {
	out := InjectResult{Reason: res.Reason, Cycles: res.Cycles, Unexpected: res.Unexpected}
	switch res.Outcome {
	case machine.OutcomeOK:
		if sameOutput(res.Output, e.GoldenOutput) {
			out.Outcome = Masked
		} else {
			out.Outcome = SDC
		}
	case machine.OutcomeCrash:
		out.Outcome = Crash
	case machine.OutcomeTimeout:
		out.Outcome = Timeout
	default:
		out.Outcome = Assert
	}
	return out
}

func sameOutput(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
