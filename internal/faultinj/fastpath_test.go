package faultinj

import (
	"math"
	"sync"
	"testing"

	"sevsim/internal/compiler"
	"sevsim/internal/machine"
)

// testExperimentOptions is testExperiment with explicit fast-path
// options, sharing the same source, level, and machine configuration.
func testExperimentOptions(t *testing.T, opts Options) *Experiment {
	t.Helper()
	prog, err := compiler.Compile(testSrc, "t", compiler.O1,
		compiler.Target{XLEN: 32, NumArchRegs: 16})
	if err != nil {
		t.Fatal(err)
	}
	exp, err := NewExperimentOptions(machine.CortexA15Like(), prog, opts)
	if err != nil {
		t.Fatal(err)
	}
	return exp
}

// TestCycleBudget covers the hoisted timeout computation and its
// overflow guard: the budget is timeoutFactor x golden plus slack, and
// saturates instead of wrapping for absurd golden lengths.
func TestCycleBudget(t *testing.T) {
	e := &Experiment{GoldenCycles: 100}
	if got := e.cycleBudget(); got != 100*timeoutFactor+1000 {
		t.Errorf("budget = %d, want %d", got, 100*timeoutFactor+1000)
	}
	e.GoldenCycles = (math.MaxUint64 - 1000) / timeoutFactor
	if got := e.cycleBudget(); got != e.GoldenCycles*timeoutFactor+1000 {
		t.Errorf("largest non-saturating budget = %d", got)
	}
	e.GoldenCycles = (math.MaxUint64-1000)/timeoutFactor + 1
	if got := e.cycleBudget(); got != math.MaxUint64 {
		t.Errorf("overflowing budget = %d, want saturation at MaxUint64", got)
	}
	e.GoldenCycles = math.MaxUint64
	if got := e.cycleBudget(); got != math.MaxUint64 {
		t.Errorf("MaxUint64 golden budget = %d, want MaxUint64", got)
	}
}

// TestFastPathDefaultsEnabled: the default constructor must actually
// arm the checkpoint stream and the early exit — otherwise every other
// test here compares the reference path against itself.
func TestFastPathDefaultsEnabled(t *testing.T) {
	exp := testExperimentOptions(t, Options{})
	if exp.ckpts == nil {
		t.Fatal("default experiment has no checkpoint stream")
	}
	if exp.ckpts.Len() != DefaultCheckpoints {
		t.Fatalf("default stream has %d checkpoints, want %d", exp.ckpts.Len(), DefaultCheckpoints)
	}
	if !exp.fastExit {
		t.Error("default experiment has the early-convergence exit disabled")
	}
	off := testExperimentOptions(t, Options{Checkpoints: -1})
	if off.ckpts != nil {
		t.Error("Checkpoints: -1 still recorded a stream")
	}
	noExit := testExperimentOptions(t, Options{NoFastExit: true})
	if noExit.ckpts == nil || noExit.fastExit {
		t.Error("NoFastExit must keep fast-forward but disable the early exit")
	}
}

// TestInjectEquivalenceAcrossFastPathModes is the per-injection half of
// the soundness acceptance: for every target, the full InjectResult
// (outcome, reason, cycle count) of the reference path — fresh machine,
// simulate from cycle 0 — is reproduced bit-for-bit with checkpoint
// fast-forward alone and with the early-convergence exit on top.
func TestInjectEquivalenceAcrossFastPathModes(t *testing.T) {
	ref := testExperimentOptions(t, Options{Checkpoints: -1, NoFastExit: true})
	ffwd := testExperimentOptions(t, Options{NoFastExit: true})
	fast := testExperimentOptions(t, Options{})

	for _, target := range Targets() {
		target := target
		t.Run(target.Name(), func(t *testing.T) {
			t.Parallel()
			for i, inj := range mustSample(t, ref, target, 10, 4242) {
				want := ref.Inject(target, inj)
				if got := ffwd.Inject(target, inj); got != want {
					t.Errorf("injection %d (%+v): fast-forward %+v, reference %+v", i, inj, got, want)
				}
				if got := fast.Inject(target, inj); got != want {
					t.Errorf("injection %d (%+v): fast exit %+v, reference %+v", i, inj, got, want)
				}
			}
		})
	}
}

// TestInjectModelEquivalenceAcrossFastPathModes extends the equivalence
// check to the multi-bit models, which share the same hot path.
func TestInjectModelEquivalenceAcrossFastPathModes(t *testing.T) {
	ref := testExperimentOptions(t, Options{Checkpoints: -1, NoFastExit: true})
	fast := testExperimentOptions(t, Options{})
	rf, _ := TargetByName("RF")
	l1d, _ := TargetByName("L1D.data")
	for _, target := range []Target{rf, l1d} {
		for _, model := range []Model{DoubleAdjacent, QuadAdjacent} {
			for i, inj := range mustSample(t, ref, target, 8, 77) {
				want := ref.InjectModel(target, inj, model)
				if got := fast.InjectModel(target, inj, model); got != want {
					t.Errorf("%s %s injection %d: %+v, reference %+v", target.Name(), model, i, got, want)
				}
			}
		}
	}
}

// TestSnapshotCoversEveryTargetField is the per-target snapshot
// coverage check: for each of the fifteen injectable fields, flipping a
// bit must change the strict snapshot, flipping it back must restore
// strict equality (all flips are involutions), and restoring the
// flipped snapshot into a fresh machine must reproduce it exactly.
func TestSnapshotCoversEveryTargetField(t *testing.T) {
	exp := testExperimentOptions(t, Options{Checkpoints: -1})
	mid := exp.GoldenCycles / 2
	for _, target := range Targets() {
		target := target
		t.Run(target.Name(), func(t *testing.T) {
			t.Parallel()
			m := machine.New(exp.Config, exp.Program)
			if _, stopped := m.RunWatched(mid+1, []machine.Watch{
				{At: mid, Fn: func(*machine.Machine) bool { return true }},
			}); !stopped {
				t.Fatalf("machine ended before cycle %d", mid)
			}
			base := m.Snapshot()
			bits := target.Bits(m)
			probes := []uint64{0, bits - 1, bits / 2, bits / 3, bits / 7}
			seen := map[uint64]bool{}
			for _, bit := range probes {
				if seen[bit] {
					continue
				}
				seen[bit] = true
				target.Flip(m, bit)
				flipped := m.Snapshot()
				if flipped.Equal(base) {
					t.Errorf("bit %d: flip not captured by the snapshot", bit)
				}
				fresh := machine.New(exp.Config, exp.Program)
				fresh.Restore(flipped)
				if !fresh.Snapshot().Equal(flipped) {
					t.Errorf("bit %d: flipped snapshot does not restore bit-exactly", bit)
				}
				target.Flip(m, bit)
				if !m.Snapshot().Equal(base) {
					t.Errorf("bit %d: flip-back did not return to the base snapshot", bit)
				}
			}
		})
	}
}

var (
	fuzzExpOnce sync.Once
	fuzzExp     *Experiment
	fuzzExpErr  error
)

func fuzzExperiment() (*Experiment, error) {
	fuzzExpOnce.Do(func() {
		prog, err := compiler.Compile(testSrc, "t", compiler.O1,
			compiler.Target{XLEN: 32, NumArchRegs: 16})
		if err != nil {
			fuzzExpErr = err
			return
		}
		fuzzExp, fuzzExpErr = NewExperimentOptions(machine.CortexA15Like(), prog, Options{Checkpoints: -1})
	})
	return fuzzExp, fuzzExpErr
}

// FuzzFlipSnapshotRestore fuzzes Restore(Snapshot()) round-trips over
// every structure bit: an arbitrary (target, cycle, bit) flip must be
// captured by the snapshot, restore bit-exactly into a fresh machine,
// and flip back to the pre-flip snapshot.
func FuzzFlipSnapshotRestore(f *testing.F) {
	f.Add(uint8(0), uint64(0), uint64(0))
	f.Add(uint8(6), uint64(100), uint64(31))
	f.Add(uint8(14), uint64(1<<32), uint64(1<<50))
	f.Fuzz(func(t *testing.T, targetIdx uint8, cycleSeed, bitSeed uint64) {
		exp, err := fuzzExperiment()
		if err != nil {
			t.Fatal(err)
		}
		targets := Targets()
		target := targets[int(targetIdx)%len(targets)]
		cycle := cycleSeed % exp.GoldenCycles

		m := machine.New(exp.Config, exp.Program)
		if cycle > 0 {
			if _, stopped := m.RunWatched(cycle+1, []machine.Watch{
				{At: cycle, Fn: func(*machine.Machine) bool { return true }},
			}); !stopped {
				t.Fatalf("machine ended before cycle %d", cycle)
			}
		}
		base := m.Snapshot()
		bit := bitSeed % target.Bits(m)
		target.Flip(m, bit)
		flipped := m.Snapshot()
		if flipped.Equal(base) {
			t.Errorf("%s bit %d at cycle %d: flip invisible to the snapshot", target.Name(), bit, cycle)
		}
		fresh := machine.New(exp.Config, exp.Program)
		fresh.Restore(flipped)
		if !fresh.Snapshot().Equal(flipped) {
			t.Errorf("%s bit %d at cycle %d: restore not bit-exact", target.Name(), bit, cycle)
		}
		target.Flip(m, bit)
		if !m.Snapshot().Equal(base) {
			t.Errorf("%s bit %d at cycle %d: flip-back not bit-exact", target.Name(), bit, cycle)
		}
	})
}
