package faultinj

// Prep artifacts: everything an Experiment derives from the golden
// simulation, in a form the prep-artifact cache (internal/artcache)
// can serialize. A warm cache hit rebuilds the Experiment from bytes
// via NewExperimentFromArtifacts instead of re-running the golden
// simulation and the checkpoint recording pass — the two dominant
// costs of preparing a (machine, binary) unit.

import (
	"fmt"

	"sevsim/internal/binio"
	"sevsim/internal/checkpoint"
	"sevsim/internal/cpu"
	"sevsim/internal/machine"
)

// Artifacts is the golden-run output of one prepared experiment: the
// full fault-free result, the commit trace (empty unless the
// experiment was traced), and the golden checkpoint stream (nil when
// checkpointing was disabled or the run was too short to checkpoint).
type Artifacts struct {
	Golden machine.Result
	Trace  []cpu.CommitEvent
	Stream *checkpoint.Stream
}

// Artifacts returns the experiment's golden-run products. The stream
// is shared with the experiment, not copied: the caller must finish
// with the artifacts (typically by encoding them) before Close
// releases the checkpoints.
func (e *Experiment) Artifacts() Artifacts {
	return Artifacts{Golden: e.GoldenStats, Trace: e.Trace, Stream: e.ckpts}
}

// NewExperimentFromArtifacts rebuilds a prepared experiment from
// previously captured artifacts, skipping both golden passes. The
// experiment takes ownership of art.Stream (Close releases it), so a
// decoded stream must not be shared across experiments. opts matters
// only for NoFastExit; tracing and checkpointing already happened when
// the artifacts were captured.
func NewExperimentFromArtifacts(cfg machine.Config, prog *machine.Program, art Artifacts, opts Options) (*Experiment, error) {
	if art.Golden.Outcome != machine.OutcomeOK {
		return nil, &GoldenError{Result: art.Golden}
	}
	out := make([]uint64, len(art.Golden.Output))
	copy(out, art.Golden.Output)
	e := &Experiment{
		Config:       cfg,
		Program:      prog,
		GoldenCycles: art.Golden.Cycles,
		GoldenOutput: out,
		GoldenStats:  art.Golden,
		Trace:        art.Trace,
	}
	if art.Stream != nil && art.Stream.Len() > 0 {
		e.ckpts = art.Stream
		e.fastExit = !opts.NoFastExit
	}
	return e, nil
}

// EncodeTo appends the artifacts to w.
func (a *Artifacts) EncodeTo(w *binio.Writer) {
	a.Golden.EncodeTo(w)
	cpu.EncodeCommitEvents(w, a.Trace)
	hasStream := a.Stream != nil && a.Stream.Len() > 0
	w.Bool(hasStream)
	if hasStream {
		a.Stream.EncodeTo(w)
	}
}

// DecodeArtifacts reads artifacts written by EncodeTo, validating the
// checkpoint stream against cfg. The caller owns the decoded stream
// until it hands the artifacts to NewExperimentFromArtifacts.
func DecodeArtifacts(r *binio.Reader, cfg machine.Config) (Artifacts, error) {
	var a Artifacts
	var err error
	if a.Golden, err = machine.DecodeResult(r); err != nil {
		return Artifacts{}, fmt.Errorf("faultinj: decode artifacts golden: %w", err)
	}
	a.Trace = cpu.DecodeCommitEvents(r)
	hasStream := r.Bool()
	if err := r.Err(); err != nil {
		return Artifacts{}, fmt.Errorf("faultinj: decode artifacts trace: %w", err)
	}
	if hasStream {
		if a.Stream, err = checkpoint.DecodeStream(r, cfg); err != nil {
			return Artifacts{}, fmt.Errorf("faultinj: decode artifacts stream: %w", err)
		}
	}
	return a, nil
}
