package faultinj

import (
	"testing"

	"sevsim/internal/compiler"
	"sevsim/internal/machine"
)

const testSrc = `
global int data[128];
global int rngState;

func rng() int {
	rngState = (rngState * 1103515245 + 12345) & 2147483647;
	return rngState;
}

func main() {
	rngState = 3;
	var int i;
	for (i = 0; i < 128; i = i + 1) {
		data[i] = rng() % 1000;
	}
	var int sum = 0;
	for (i = 0; i < 128; i = i + 1) {
		sum = (sum + data[i] * (i + 3)) & 2147483647;
	}
	out(sum);
	out(data[64]);
}`

func testExperiment(t *testing.T) *Experiment {
	t.Helper()
	prog, err := compiler.Compile(testSrc, "t", compiler.O1,
		compiler.Target{XLEN: 32, NumArchRegs: 16})
	if err != nil {
		t.Fatal(err)
	}
	exp, err := NewExperiment(machine.CortexA15Like(), prog)
	if err != nil {
		t.Fatal(err)
	}
	return exp
}

func mustSample(t *testing.T, exp *Experiment, tg Target, n int, seed int64) []Injection {
	t.Helper()
	inj, err := exp.Sample(tg, n, seed)
	if err != nil {
		t.Fatal(err)
	}
	return inj
}

func TestGoldenRunRecorded(t *testing.T) {
	exp := testExperiment(t)
	if exp.GoldenCycles == 0 {
		t.Fatal("no golden cycles")
	}
	if len(exp.GoldenOutput) != 2 {
		t.Fatalf("golden output %v", exp.GoldenOutput)
	}
}

func TestTargetsCoverPaperStructures(t *testing.T) {
	targets := Targets()
	if len(targets) != 15 {
		t.Fatalf("expected 15 fields, got %d", len(targets))
	}
	components := map[string]int{}
	for _, tg := range targets {
		components[tg.Component]++
	}
	for _, c := range Components() {
		if components[c] == 0 {
			t.Errorf("component %s has no injectable field", c)
		}
	}
	if components["ROB"] != 4 {
		t.Errorf("ROB should expose 4 fields, has %d", components["ROB"])
	}
	if components["IQ"] != 2 {
		t.Errorf("IQ should expose 2 fields, has %d", components["IQ"])
	}
}

func TestTargetByName(t *testing.T) {
	if _, ok := TargetByName("L1D.data"); !ok {
		t.Error("L1D.data not found")
	}
	if _, ok := TargetByName("RF"); !ok {
		t.Error("RF not found")
	}
	if _, ok := TargetByName("bogus"); ok {
		t.Error("bogus resolved")
	}
}

func TestTargetBitsMatchConfig(t *testing.T) {
	exp := testExperiment(t)
	// A15: RF = 128 regs x 32 bits.
	rf, _ := TargetByName("RF")
	if got := exp.TargetBits(rf); got != 128*32 {
		t.Errorf("RF bits = %d, want 4096", got)
	}
	l1d, _ := TargetByName("L1D.data")
	if got := exp.TargetBits(l1d); got != 32*1024*8 {
		t.Errorf("L1D.data bits = %d", got)
	}
}

// TestSampleEmptySpace is the regression test for the Sample panic
// path: a zero-bit target (e.g. a zero-entry queue configuration) or a
// zero-cycle golden run must yield an explicit error, not a panic
// inside rand.Int63n.
func TestSampleEmptySpace(t *testing.T) {
	exp := testExperiment(t)
	empty := NewTarget("NULL", "",
		func(*machine.Machine) uint64 { return 0 },
		func(*machine.Machine, uint64) {})
	if _, err := exp.Sample(empty, 10, 1); err == nil {
		t.Fatal("zero-bit target: expected error, got none")
	} else if _, ok := err.(*SampleError); !ok {
		t.Fatalf("zero-bit target: error type %T, want *SampleError", err)
	}

	frozen := &Experiment{Config: exp.Config, Program: exp.Program, GoldenCycles: 0}
	rf, _ := TargetByName("RF")
	if _, err := frozen.Sample(rf, 10, 1); err == nil {
		t.Fatal("zero-cycle golden: expected error, got none")
	}
}

// TestTargetBitsCached checks that repeated bit-count queries don't
// rebuild a machine per call: after the first query, lookups are
// allocation-free cache hits and remain consistent.
func TestTargetBitsCached(t *testing.T) {
	exp := testExperiment(t)
	rf, _ := TargetByName("RF")
	first := exp.TargetBits(rf)
	allocs := testing.AllocsPerRun(20, func() {
		if exp.TargetBits(rf) != first {
			t.Error("cached bit count changed")
		}
	})
	if allocs > 0 {
		t.Errorf("cached TargetBits allocates %.0f objects/op, want 0", allocs)
	}
	for _, target := range Targets() {
		if exp.TargetBits(target) != exp.TargetBits(target) {
			t.Errorf("%s: unstable bit count", target.Name())
		}
	}
}

func TestSampleDeterminism(t *testing.T) {
	exp := testExperiment(t)
	rf, _ := TargetByName("RF")
	a := mustSample(t, exp, rf, 50, 7)
	b := mustSample(t, exp, rf, 50, 7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("sampling not deterministic")
		}
	}
	c := mustSample(t, exp, rf, 50, 8)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("different seeds produced identical samples")
	}
}

func TestInjectionDeterminism(t *testing.T) {
	exp := testExperiment(t)
	rf, _ := TargetByName("RF")
	inj := mustSample(t, exp, rf, 20, 99)
	for _, one := range inj {
		r1 := exp.Inject(rf, one)
		r2 := exp.Inject(rf, one)
		if r1.Outcome != r2.Outcome || r1.Cycles != r2.Cycles {
			t.Fatalf("injection %+v not deterministic: %v/%d vs %v/%d",
				one, r1.Outcome, r1.Cycles, r2.Outcome, r2.Cycles)
		}
	}
}

// TestInjectionSmoke drives a batch of injections into every target and
// checks the harness invariants: all runs classify, none trip
// unexpected simulator panics, and flips into free/unused state mask.
func TestInjectionSmoke(t *testing.T) {
	exp := testExperiment(t)
	for _, target := range Targets() {
		target := target
		t.Run(target.Name(), func(t *testing.T) {
			t.Parallel()
			counts := map[Outcome]int{}
			for i, inj := range mustSample(t, exp, target, 40, 1234) {
				r := exp.Inject(target, inj)
				if r.Unexpected {
					t.Errorf("injection %d (%+v): unexpected panic: %s", i, inj, r.Reason)
				}
				counts[r.Outcome]++
			}
			if counts[Masked] == 0 {
				t.Errorf("target %s: no masked outcomes in 40 injections (suspicious)", target.Name())
			}
		})
	}
}

// TestKnownFaultEffects checks a few hand-placed faults with predictable
// consequences.
func TestKnownFaultEffects(t *testing.T) {
	exp := testExperiment(t)

	// A flip in an untouched L2 line long after the program's working
	// set is resident must be masked.
	l2, _ := TargetByName("L2.data")
	r := exp.Inject(l2, Injection{Cycle: exp.GoldenCycles - 2, Bit: exp.TargetBits(l2) - 1})
	if r.Outcome != Masked {
		t.Errorf("late far L2 flip: %v, want Masked", r.Outcome)
	}

	// Flipping a high PRF bit at the very last cycle is masked: the
	// program has already produced its output.
	rf, _ := TargetByName("RF")
	r = exp.Inject(rf, Injection{Cycle: exp.GoldenCycles - 1, Bit: exp.TargetBits(rf) - 1})
	if r.Outcome != Masked {
		t.Errorf("last-cycle RF flip: %v, want Masked", r.Outcome)
	}
}
