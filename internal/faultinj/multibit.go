package faultinj

// Multi-bit upset support, extending the study in the direction of the
// authors' companion work on MBUs (Chatzidimitriou et al., IISWC 2019):
// deep-submicron particle strikes increasingly flip multiple physically
// adjacent cells, and ECC schemes sized for single-bit upsets do not
// correct them.

// Model selects the fault multiplicity of an injection.
type Model int

const (
	// SingleBit is the paper's baseline model.
	SingleBit Model = iota
	// DoubleAdjacent flips two horizontally adjacent bits.
	DoubleAdjacent
	// QuadAdjacent flips four adjacent bits (an aggressive MBU).
	QuadAdjacent
)

func (m Model) String() string {
	switch m {
	case DoubleAdjacent:
		return "double-adjacent"
	case QuadAdjacent:
		return "quad-adjacent"
	}
	return "single-bit"
}

// Width returns the number of bits the model flips.
func (m Model) Width() uint64 {
	switch m {
	case DoubleAdjacent:
		return 2
	case QuadAdjacent:
		return 4
	}
	return 1
}

// Models lists the supported fault models.
func Models() []Model { return []Model{SingleBit, DoubleAdjacent, QuadAdjacent} }

// InjectModel runs one end-to-end injection flipping Width adjacent
// bits starting at inj.Bit (wrapping at the array end), classified
// against the golden run exactly like Inject.
func (e *Experiment) InjectModel(t Target, inj Injection, model Model) InjectResult {
	if model == SingleBit {
		return e.Inject(t, inj)
	}
	// TargetBits consults the cached per-target count instead of probing
	// a throwaway machine, so the multi-bit path allocates no more than
	// the single-bit one.
	return e.runInjection(inj, hookFor(e, t, inj, model, e.TargetBits(t)))
}
