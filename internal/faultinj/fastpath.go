package faultinj

// The injection hot path: checkpoint fast-forward, per-worker scratch
// machines, and the early-convergence Masked exit. Every injection used
// to build a fresh machine and simulate from cycle 0; with K golden
// checkpoints per cell an injection at cycle c now restores the latest
// checkpoint at-or-before c (removing ~(1 − 1/2K) of all pre-injection
// simulation across a uniform cycle sample) into a pooled scratch
// machine, and a post-flip run that provably returns to golden state is
// classified Masked at the first matching checkpoint instead of
// simulating its tail. Classifications are bit-identical with the
// optimizations on or off; see DESIGN.md §10 for the soundness
// argument.

import (
	"math"

	"sevsim/internal/machine"
)

// DefaultCheckpoints is the per-cell golden checkpoint budget when
// Options.Checkpoints is zero. Eight checkpoints remove ~94% of
// pre-injection simulation while the snapshots (dominated by the cache
// copies; memory pages are copy-on-write) stay a few MiB per cell.
const DefaultCheckpoints = 8

// Options configures experiment preparation beyond the config/program
// pair.
type Options struct {
	// Traced records the golden commit stream, as NewTracedExperiment
	// does; see Experiment.Trace.
	Traced bool

	// Checkpoints is the golden checkpoint budget: 0 means
	// DefaultCheckpoints, a negative value disables checkpointing
	// entirely (every injection then builds a fresh machine and
	// simulates from cycle 0 — the reference behavior the equivalence
	// tests compare against).
	Checkpoints int

	// NoFastExit disables the early-convergence Masked exit while
	// keeping checkpoint fast-forward.
	NoFastExit bool
}

// cycleBudget is the simulation budget of one injection run:
// timeoutFactor times the golden run plus drain slack, saturating
// instead of wrapping for absurdly long goldens.
func (e *Experiment) cycleBudget() uint64 {
	const slack = 1000
	if e.GoldenCycles > (math.MaxUint64-slack)/timeoutFactor {
		return math.MaxUint64
	}
	return e.GoldenCycles*timeoutFactor + slack
}

// getMachine returns a scratch machine for one injection run. With
// checkpointing on, machines are pooled and recycled (the caller
// restores a checkpoint over whatever state the machine retired with);
// otherwise every run builds a fresh machine, the reference behavior.
func (e *Experiment) getMachine() *machine.Machine {
	if e.ckpts == nil {
		return machine.New(e.Config, e.Program)
	}
	if m, _ := e.scratch.Get().(*machine.Machine); m != nil {
		return m
	}
	return machine.New(e.Config, e.Program)
}

// putMachine returns a scratch machine to the pool. Only meaningful
// with checkpointing on; it must not be called before the machine's
// Result has been fully consumed (Result.Output aliases the core's
// output buffer).
func (e *Experiment) putMachine(m *machine.Machine) {
	if e.ckpts != nil {
		e.scratch.Put(m)
	}
}

// runInjection executes one injection run with the given flip hook and
// classifies it. This is the single hot path behind Inject and
// InjectModel.
func (e *Experiment) runInjection(inj Injection, hook machine.Hook) InjectResult {
	budget := e.cycleBudget()
	m := e.getMachine()
	if e.ckpts == nil {
		return e.classify(m.Run(budget, hook))
	}
	m.Restore(e.ckpts.Latest(inj.Cycle))
	var watches []machine.Watch
	if e.fastExit {
		watches = e.ckpts.WatchesAfter(inj.Cycle)
	}
	res, converged := m.RunWatched(budget, watches, hook)
	var out InjectResult
	if converged {
		// State equality with golden at the same cycle proves the rest
		// of the run replays golden bit-for-bit: it would halt at
		// GoldenCycles with the golden output. Synthesize exactly the
		// result the full run would have produced.
		out = InjectResult{Outcome: Masked, Cycles: e.GoldenCycles}
	} else {
		out = e.classify(res)
	}
	e.putMachine(m)
	return out
}
