package faultinj

// The injection hot path: checkpoint fast-forward, per-worker scratch
// machines, and the early-convergence Masked exit. Every injection used
// to build a fresh machine and simulate from cycle 0; with K golden
// checkpoints per cell an injection at cycle c now restores the latest
// checkpoint at-or-before c (removing ~(1 − 1/2K) of all pre-injection
// simulation across a uniform cycle sample) into a pooled scratch
// machine, and a post-flip run that provably returns to golden state is
// classified Masked at the first matching checkpoint instead of
// simulating its tail. Classifications are bit-identical with the
// optimizations on or off; see DESIGN.md §10 for the soundness
// argument.

import (
	"math"

	"sevsim/internal/machine"
)

// DefaultCheckpoints is the per-cell golden checkpoint budget when
// Options.Checkpoints is zero. Eight checkpoints remove ~94% of
// pre-injection simulation while the snapshots (dominated by the cache
// copies; memory pages are copy-on-write) stay a few MiB per cell.
const DefaultCheckpoints = 8

// Options configures experiment preparation beyond the config/program
// pair.
type Options struct {
	// Traced records the golden commit stream, as NewTracedExperiment
	// does; see Experiment.Trace.
	Traced bool

	// Checkpoints is the golden checkpoint budget: 0 means
	// DefaultCheckpoints, a negative value disables checkpointing
	// entirely (every injection then builds a fresh machine and
	// simulates from cycle 0 — the reference behavior the equivalence
	// tests compare against).
	Checkpoints int

	// NoFastExit disables the early-convergence Masked exit while
	// keeping checkpoint fast-forward.
	NoFastExit bool
}

// cycleBudget is the simulation budget of one injection run:
// timeoutFactor times the golden run plus drain slack, saturating
// instead of wrapping for absurdly long goldens.
func (e *Experiment) cycleBudget() uint64 {
	const slack = 1000
	if e.GoldenCycles > (math.MaxUint64-slack)/timeoutFactor {
		return math.MaxUint64
	}
	return e.GoldenCycles*timeoutFactor + slack
}

// getMachine returns a pooled scratch machine for checkpointed
// injection runs; the caller restores a checkpoint over whatever state
// the machine retired with. Callers on the no-checkpoint reference
// path build fresh machines instead.
func (e *Experiment) getMachine() *machine.Machine {
	if m, _ := e.scratch.Get().(*machine.Machine); m != nil {
		return m
	}
	return machine.New(e.Config, e.Program)
}

// putMachine returns a scratch machine to the pool. It must not be
// called before the machine's Result has been fully consumed
// (Result.Output aliases the core's output buffer).
func (e *Experiment) putMachine(m *machine.Machine) {
	e.scratch.Put(m)
}

// getMachineFor prefers the machine parked on checkpoint k — its
// delta-restore base is k's snapshot, so the upcoming restore copies
// only touched lines — before falling back to the generic pool.
func (e *Experiment) getMachineFor(k int) *machine.Machine {
	e.scratchMu.Lock()
	m := e.scratchByCkpt[k]
	if m != nil {
		delete(e.scratchByCkpt, k)
	}
	e.scratchMu.Unlock()
	if m != nil {
		return m
	}
	return e.getMachine()
}

// putMachineFor parks the machine on checkpoint k for the next
// injection restoring from it; if the slot is taken the machine goes
// back to the generic pool. Same consumption contract as putMachine.
func (e *Experiment) putMachineFor(k int, m *machine.Machine) {
	e.scratchMu.Lock()
	if e.scratchByCkpt == nil {
		e.scratchByCkpt = make(map[int]*machine.Machine)
	}
	if _, taken := e.scratchByCkpt[k]; !taken {
		e.scratchByCkpt[k] = m
		m = nil
	}
	e.scratchMu.Unlock()
	if m != nil {
		e.putMachine(m)
	}
}

// runInjection executes one injection run with the given flip hook and
// classifies it, managing a scratch machine for just this run. Batched
// callers hold one machine across many runs instead (Batch).
func (e *Experiment) runInjection(inj Injection, hook machine.Hook) InjectResult {
	if e.ckpts == nil {
		// Reference behavior: a fresh machine simulating from cycle 0.
		return e.classify(machine.New(e.Config, e.Program).Run(e.cycleBudget(), hook))
	}
	k := e.ckpts.LatestIndex(inj.Cycle)
	m := e.getMachineFor(k)
	out := e.runInjectionOn(m, inj, hook)
	e.putMachineFor(k, m)
	return out
}

// runInjectionOn executes one checkpointed injection run on the given
// scratch machine: fast-forward restore, flip at the injection cycle,
// classify (with the early-convergence Masked exit when enabled). The
// machine must have been built from this experiment's Config/Program;
// its pre-call state is irrelevant — the restore overwrites it. Only
// valid with checkpointing on.
func (e *Experiment) runInjectionOn(m *machine.Machine, inj Injection, hook machine.Hook) InjectResult {
	m.Restore(e.ckpts.Latest(inj.Cycle))
	var watches []machine.Watch
	if e.fastExit {
		watches = e.ckpts.WatchesAfter(inj.Cycle)
	}
	res, converged := m.RunWatched(e.cycleBudget(), watches, hook)
	if converged {
		// State equality with golden at the same cycle proves the rest
		// of the run replays golden bit-for-bit: it would halt at
		// GoldenCycles with the golden output. Synthesize exactly the
		// result the full run would have produced.
		return InjectResult{Outcome: Masked, Cycles: e.GoldenCycles}
	}
	return e.classify(res)
}

// Batch runs a sequence of injections on one held scratch machine.
// Grouping a batch by fast-forward checkpoint (BatchByCheckpoint) makes
// every restore after the first a delta: the caches copy back only the
// lines the previous run touched, instead of their full arrays. A Batch
// is single-goroutine; concurrency comes from running many batches on a
// worker pool. Outcomes are bit-identical to calling Experiment.Inject
// per fault — restores are bit-exact, so machine reuse cannot leak
// state between runs.
type Batch struct {
	e *Experiment
	m *machine.Machine // nil when checkpointing is disabled
}

// NewBatch prepares a batch, drawing a scratch machine from the
// experiment's pool. Close must be called to return it.
func (e *Experiment) NewBatch() *Batch {
	b := &Batch{e: e}
	if e.ckpts != nil {
		b.m = e.getMachine()
	}
	return b
}

// Inject runs one single-bit injection on the batch's machine.
func (b *Batch) Inject(t Target, inj Injection) InjectResult {
	return b.run(inj, flipHook(t, inj))
}

// InjectModel is Inject under the given fault-multiplicity model.
func (b *Batch) InjectModel(t Target, inj Injection, model Model) InjectResult {
	if model == SingleBit {
		return b.Inject(t, inj)
	}
	return b.run(inj, hookFor(b.e, t, inj, model, b.e.TargetBits(t)))
}

func (b *Batch) run(inj Injection, hook machine.Hook) InjectResult {
	if b.m == nil {
		// Checkpointing disabled: the reference from-zero path, one
		// fresh machine per run (a recycled machine would need a way to
		// reset to cycle 0, which is exactly what checkpoints provide).
		return b.e.classify(machine.New(b.e.Config, b.e.Program).Run(b.e.cycleBudget(), hook))
	}
	return b.e.runInjectionOn(b.m, inj, hook)
}

// Close returns the batch's scratch machine to the experiment pool. No
// Inject may follow.
func (b *Batch) Close() {
	if b.m != nil {
		b.e.putMachine(b.m)
		b.m = nil
	}
}

// BatchByCheckpoint partitions injection indices into groups that
// fast-forward from the same checkpoint, preserving index order within
// each group (first-seen checkpoint order across groups, so the result
// is deterministic). Running a group as one Batch keeps the scratch
// machine's delta-restore base stable across the whole group. With
// checkpointing disabled all indices form one group — there is nothing
// to key on, and the grouping is only a scheduling hint.
func (e *Experiment) BatchByCheckpoint(inj []Injection) [][]int {
	if len(inj) == 0 {
		return nil
	}
	if e.ckpts == nil {
		all := make([]int, len(inj))
		for i := range all {
			all[i] = i
		}
		return [][]int{all}
	}
	groups := map[int][]int{}
	var order []int
	for i, in := range inj {
		k := e.ckpts.LatestIndex(in.Cycle)
		if groups[k] == nil {
			order = append(order, k)
		}
		groups[k] = append(groups[k], i)
	}
	out := make([][]int, 0, len(order))
	for _, k := range order {
		out = append(out, groups[k])
	}
	return out
}

// Close releases the experiment's checkpoint snapshots back to their
// buffer pools. Call it only after every injection, batch, and watch
// using the experiment has finished. Injecting after Close remains
// correct — the experiment falls back to the from-zero reference path —
// but loses fast-forward, so treat Close as end-of-life.
func (e *Experiment) Close() {
	if e.ckpts != nil {
		e.ckpts.Release()
		e.ckpts = nil
	}
}
