package faultinj

import "testing"

func TestModelWidths(t *testing.T) {
	if SingleBit.Width() != 1 || DoubleAdjacent.Width() != 2 || QuadAdjacent.Width() != 4 {
		t.Error("model widths wrong")
	}
	if len(Models()) != 3 {
		t.Error("expected 3 models")
	}
	if DoubleAdjacent.String() != "double-adjacent" || SingleBit.String() != "single-bit" {
		t.Error("model names wrong")
	}
}

func TestSingleBitModelMatchesInject(t *testing.T) {
	exp := testExperiment(t)
	rf, _ := TargetByName("RF")
	for _, inj := range mustSample(t, exp, rf, 15, 5) {
		a := exp.Inject(rf, inj)
		b := exp.InjectModel(rf, inj, SingleBit)
		if a.Outcome != b.Outcome {
			t.Fatalf("single-bit model diverged: %v vs %v", a.Outcome, b.Outcome)
		}
	}
}

func TestMultiBitNeverLessSevereOnValue(t *testing.T) {
	// A double flip of the low bits of a live register used as data can
	// only change the value more; verify it classifies and that the
	// harness stays panic-free across every target and model.
	exp := testExperiment(t)
	for _, target := range Targets() {
		inj := mustSample(t, exp, target, 8, 11)
		for _, model := range Models() {
			for _, one := range inj {
				r := exp.InjectModel(target, one, model)
				if r.Unexpected {
					t.Errorf("%s/%s: unexpected panic: %s", target.Name(), model, r.Reason)
				}
			}
		}
	}
}

func TestMultiBitAVFAtLeastObservable(t *testing.T) {
	// Aggregate check: across a batch on the ROB control field, the
	// double-adjacent model should produce at least as many non-masked
	// outcomes as single-bit (wider upsets cannot hit fewer live bits).
	// This is statistical, so compare with a generous slack.
	exp := testExperiment(t)
	ctrl, _ := TargetByName("ROB.ctrl")
	inj := mustSample(t, exp, ctrl, 80, 21)
	single, double := 0, 0
	for _, one := range inj {
		if exp.InjectModel(ctrl, one, SingleBit).Outcome != Masked {
			single++
		}
		if exp.InjectModel(ctrl, one, DoubleAdjacent).Outcome != Masked {
			double++
		}
	}
	if double+8 < single {
		t.Errorf("double-adjacent (%d) much less severe than single-bit (%d)", double, single)
	}
}
