package fit

import (
	"math"
	"testing"

	"sevsim/internal/campaign"
	"sevsim/internal/faultinj"
)

func cellResults() []campaign.Result {
	mk := func(target string, bits uint64, masked, sdc, crash int) campaign.Result {
		return campaign.Result{
			Target:     target,
			Faults:     masked + sdc + crash,
			Counts:     campaign.Counts{Masked: masked, SDC: sdc, Crash: crash},
			StructBits: bits,
		}
	}
	return []campaign.Result{
		mk("L1D.data", 1000, 80, 20, 0), // AVF 0.2
		mk("L1D.tag", 100, 90, 0, 10),   // AVF 0.1
		mk("L2.data", 10000, 99, 1, 0),  // AVF 0.01
		mk("RF", 500, 50, 25, 25),       // AVF 0.5
	}
}

func TestStructure(t *testing.T) {
	// Eq 2: FIT = rawFIT x bits x AVF.
	if got := Structure(1e-5, 1000, 0.5); math.Abs(got-5e-3) > 1e-15 {
		t.Errorf("Structure = %g", got)
	}
	if got := Structure(1e-5, 0, 1); got != 0 {
		t.Errorf("zero bits FIT = %g", got)
	}
}

func TestCPUSumsStructures(t *testing.T) {
	raw := 1e-5
	got := CPU(cellResults(), raw, ECCNone)
	want := raw * (1000*0.2 + 100*0.1 + 10000*0.01 + 500*0.5)
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("CPU FIT = %g, want %g", got, want)
	}
}

func TestECCSchemes(t *testing.T) {
	raw := 1e-5
	full := CPU(cellResults(), raw, ECCNone)
	l2only := CPU(cellResults(), raw, ECCL2Only)
	l1dl2 := CPU(cellResults(), raw, ECCL1DL2)
	if !(l1dl2 < l2only && l2only < full) {
		t.Errorf("ECC ordering violated: none=%g l2=%g l1d+l2=%g", full, l2only, l1dl2)
	}
	// With L1D+L2 protected only RF remains.
	want := raw * 500 * 0.5
	if math.Abs(l1dl2-want) > 1e-12 {
		t.Errorf("l1d+l2 FIT = %g, want %g", l1dl2, want)
	}
}

func TestProtected(t *testing.T) {
	if ECCNone.Protected("L2") {
		t.Error("ECCNone protects nothing")
	}
	if !ECCL2Only.Protected("L2") || ECCL2Only.Protected("L1D") {
		t.Error("ECCL2Only wrong coverage")
	}
	if !ECCL1DL2.Protected("L1D") || !ECCL1DL2.Protected("L2") || ECCL1DL2.Protected("L1I") {
		t.Error("ECCL1DL2 wrong coverage")
	}
}

func TestCPUByClassSumsToCPU(t *testing.T) {
	raw := 1e-5
	byClass := CPUByClass(cellResults(), raw, ECCNone)
	sum := 0.0
	for o := faultinj.SDC; o < faultinj.NumOutcomes; o++ {
		sum += byClass[o]
	}
	total := CPU(cellResults(), raw, ECCNone)
	if math.Abs(sum-total) > 1e-12 {
		t.Errorf("class FITs sum to %g, total %g", sum, total)
	}
}

func TestFPE(t *testing.T) {
	// Eq 3: 1e9 FIT (one failure per hour) and a one-hour execution
	// gives FPE = 1.
	clock := 1e9 // 1 GHz
	cycles := uint64(3600 * 1e9)
	if got := FPE(1e9, cycles, clock); math.Abs(got-1) > 1e-9 {
		t.Errorf("FPE = %g, want 1", got)
	}
	// Halving execution time halves FPE.
	a := FPE(100, 1000000, 1e9)
	b := FPE(100, 500000, 1e9)
	if math.Abs(a-2*b) > 1e-18 {
		t.Errorf("FPE not linear in time: %g vs %g", a, b)
	}
}

func TestSchemesOrder(t *testing.T) {
	s := Schemes()
	if len(s) != 3 || s[0] != ECCNone || s[1] != ECCL1DL2 || s[2] != ECCL2Only {
		t.Errorf("Schemes() = %v", s)
	}
}
