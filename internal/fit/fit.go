// Package fit implements the reliability arithmetic of the paper's
// Section VI: per-structure Failures-In-Time (Equation 2), whole-CPU
// FIT, the performance-aware Failures-Per-Execution metric (Equation
// 3), and the ECC protection scenarios of Figure 12.
package fit

import (
	"sevsim/internal/campaign"
	"sevsim/internal/faultinj"
)

// Structure computes Equation 2 for one hardware structure:
//
//	FIT = FIT_bit x #bits x AVF
func Structure(rawFITPerBit float64, bits uint64, avf float64) float64 {
	return rawFITPerBit * float64(bits) * avf
}

// ECCScheme selects which structures are protected, following Figure 12.
type ECCScheme int

const (
	ECCNone   ECCScheme = iota // fully unprotected design
	ECCL1DL2                   // ECC on L1D and L2 (modern designs)
	ECCL2Only                  // ECC on L2 only
)

func (s ECCScheme) String() string {
	switch s {
	case ECCL1DL2:
		return "ECC on L1D+L2"
	case ECCL2Only:
		return "ECC on L2 only"
	}
	return "no ECC"
}

// Schemes lists the three scenarios in Figure 12's order.
func Schemes() []ECCScheme { return []ECCScheme{ECCNone, ECCL1DL2, ECCL2Only} }

// Protected reports whether the scheme covers the component. Single-bit
// upsets in an ECC-protected array are corrected, so the structure's
// FIT contribution is removed, exactly as the paper assumes.
func (s ECCScheme) Protected(component string) bool {
	switch s {
	case ECCL1DL2:
		return component == "L1D" || component == "L2"
	case ECCL2Only:
		return component == "L2"
	}
	return false
}

// componentOf extracts the component from a target name like "L1D.data".
func componentOf(target string) string {
	for i := 0; i < len(target); i++ {
		if target[i] == '.' {
			return target[:i]
		}
	}
	return target
}

// CPU sums the per-structure FITs of one (march, bench, level) cell set
// under the given ECC scheme. The results must cover each structure
// field exactly once.
func CPU(results []campaign.Result, rawFITPerBit float64, scheme ECCScheme) float64 {
	total := 0.0
	for _, r := range results {
		if scheme.Protected(componentOf(r.Target)) {
			continue
		}
		total += Structure(rawFITPerBit, r.StructBits, r.AVF())
	}
	return total
}

// CPUByClass splits the whole-CPU FIT by fault-effect class (the
// stacked bars of Figure 10). The paper separates SDC from crash-like
// classes because SDCs are the silent, field-dangerous failures.
func CPUByClass(results []campaign.Result, rawFITPerBit float64, scheme ECCScheme) map[faultinj.Outcome]float64 {
	byClass := map[faultinj.Outcome]float64{}
	for _, r := range results {
		if scheme.Protected(componentOf(r.Target)) {
			continue
		}
		for o := faultinj.SDC; o < faultinj.NumOutcomes; o++ {
			byClass[o] += Structure(rawFITPerBit, r.StructBits, r.ClassRate(o))
		}
	}
	return byClass
}

// FPE computes Equation 3, failures per single program execution:
//
//	FPE = FIT x ExecutionTime / 10^9
//
// with the execution time in hours (FIT is failures per 10^9
// device-hours). Lower is better: more correct executions fit between
// failures.
func FPE(cpuFIT float64, cycles uint64, clockHz float64) float64 {
	hours := float64(cycles) / clockHz / 3600.0
	return cpuFIT * hours / 1e9
}
