package cli

import (
	"os"
	"path/filepath"
	"testing"
)

func TestMarchResolution(t *testing.T) {
	for _, name := range []string{"a15", "A15", "Cortex-A15-like"} {
		cfg, err := March(name)
		if err != nil || cfg.CPU.XLEN != 32 {
			t.Errorf("March(%q) = %v, %v", name, cfg.Name, err)
		}
	}
	for _, name := range []string{"a72", "Cortex-A72-like"} {
		cfg, err := March(name)
		if err != nil || cfg.CPU.XLEN != 64 {
			t.Errorf("March(%q) = %v, %v", name, cfg.Name, err)
		}
	}
	if _, err := March("m1"); err == nil {
		t.Error("unknown march accepted")
	}
}

func TestLevelResolution(t *testing.T) {
	for in, want := range map[string]int{"O0": 0, "o1": 1, "2": 2, "O3": 3} {
		lvl, err := Level(in)
		if err != nil || int(lvl) != want {
			t.Errorf("Level(%q) = %v, %v", in, lvl, err)
		}
	}
	if _, err := Level("O9"); err == nil {
		t.Error("bad level accepted")
	}
}

func TestTargetDerivation(t *testing.T) {
	cfg, _ := March("a72")
	tgt := Target(cfg)
	if tgt.XLEN != 64 || tgt.NumArchRegs != 32 {
		t.Errorf("Target = %+v", tgt)
	}
}

func TestLoadSource(t *testing.T) {
	if _, _, err := LoadSource("", "", 0); err == nil {
		t.Error("empty selection accepted")
	}
	if _, _, err := LoadSource("qsort", "somefile", 0); err == nil {
		t.Error("both selections accepted")
	}
	name, src, err := LoadSource("qsort", "", 0)
	if err != nil || name != "qsort" || len(src) == 0 {
		t.Errorf("benchmark load failed: %v", err)
	}
	if _, _, err := LoadSource("nosuch", "", 0); err == nil {
		t.Error("unknown benchmark accepted")
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "p.mc")
	if err := os.WriteFile(path, []byte("func main() {}"), 0o644); err != nil {
		t.Fatal(err)
	}
	name, src, err = LoadSource("", path, 0)
	if err != nil || name != path || src != "func main() {}" {
		t.Errorf("file load: %q %q %v", name, src, err)
	}
	if _, _, err := LoadSource("", filepath.Join(dir, "missing.mc"), 0); err == nil {
		t.Error("missing file accepted")
	}
}
