// Package cli holds flag-parsing helpers shared by the sevsim command
// line tools.
package cli

import (
	"context"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"sync"
	"syscall"

	"sevsim/internal/artcache"
	"sevsim/internal/compiler"
	"sevsim/internal/lang"
	"sevsim/internal/machine"
	"sevsim/internal/workloads"
)

// Interruptible returns a context cancelled by SIGINT or SIGTERM, for
// graceful drain: a study or campaign given this context finishes its
// in-flight injections, flushes its journal, and returns
// context.Canceled instead of dying mid-write. A second signal while
// draining kills the process immediately (the Go runtime default,
// restored by stop).
func Interruptible() (context.Context, context.CancelFunc) {
	return signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
}

// ExitInterrupted is the conventional exit status for a run cut short
// by SIGINT (128 + SIGINT).
const ExitInterrupted = 130

// Parallelism resolves a -parallel flag value: <= 0 means one worker
// per available CPU (GOMAXPROCS).
func Parallelism(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// Progress returns a serialized stdout progress printer, or nil when
// quiet. Concurrent study cells report through one mutex so lines never
// interleave.
func Progress(quiet bool) func(format string, args ...any) {
	if quiet {
		return nil
	}
	var mu sync.Mutex
	return func(format string, args ...any) {
		mu.Lock()
		defer mu.Unlock()
		fmt.Printf(format+"\n", args...)
	}
}

// March resolves a microarchitecture flag value ("a15" or "a72", or a
// full config name).
func March(name string) (machine.Config, error) {
	switch name {
	case "a15", "A15", "Cortex-A15-like":
		return machine.CortexA15Like(), nil
	case "a72", "A72", "Cortex-A72-like":
		return machine.CortexA72Like(), nil
	}
	return machine.Config{}, fmt.Errorf("unknown microarchitecture %q (use a15 or a72)", name)
}

// Level resolves an optimization level flag value ("O0".."O3" or
// "0".."3").
func Level(name string) (compiler.OptLevel, error) {
	switch name {
	case "O0", "o0", "0":
		return compiler.O0, nil
	case "O1", "o1", "1":
		return compiler.O1, nil
	case "O2", "o2", "2":
		return compiler.O2, nil
	case "O3", "o3", "3":
		return compiler.O3, nil
	}
	return compiler.O0, fmt.Errorf("unknown optimization level %q (use O0..O3)", name)
}

// Target derives the compiler backend target from a machine config.
func Target(cfg machine.Config) compiler.Target {
	return compiler.Target{XLEN: cfg.CPU.XLEN, NumArchRegs: cfg.CPU.NumArchRegs}
}

// LoadSource returns MiniC source either from a named benchmark (at the
// given size, 0 = default) or from a file.
func LoadSource(bench, file string, size int) (name, src string, err error) {
	switch {
	case bench != "" && file != "":
		return "", "", fmt.Errorf("use either -bench or -src, not both")
	case bench != "":
		b, err := workloads.ByName(bench)
		if err != nil {
			return "", "", err
		}
		if size <= 0 {
			size = b.DefaultSize
		}
		return b.Name, b.Source(size), nil
	case file != "":
		data, err := os.ReadFile(file)
		if err != nil {
			return "", "", err
		}
		return file, string(data), nil
	}
	return "", "", fmt.Errorf("one of -bench or -src is required")
}

// MustParse parses MiniC source, exiting with a diagnostic on failure.
func MustParse(src string) *lang.Program {
	prog, err := lang.Parse(src)
	if err != nil {
		fmt.Fprintln(os.Stderr, "parse error:", err)
		os.Exit(1) //lint:exit process boundary for the CLI tools
	}
	return prog
}

// Fatal prints an error and exits.
func Fatal(err error) {
	fmt.Fprintln(os.Stderr, "error:", err)
	os.Exit(1) //lint:exit process boundary for the CLI tools
}

// Checkpoints maps a -checkpoints flag value (0 disables, the natural
// CLI convention) to the faultinj.Options / core.Spec convention, where
// 0 means "package default" and a negative value disables.
func Checkpoints(n int) int {
	if n <= 0 {
		return -1
	}
	return n
}

// Cache opens the prep-artifact cache behind a -cache flag: dir ""
// leaves caching disabled (a nil cache is valid everywhere), maxMB 0
// leaves the size unbounded.
func Cache(dir string, maxMB int64) (*artcache.Cache, error) {
	if dir == "" {
		return nil, nil
	}
	return artcache.Open(dir, artcache.Options{MaxBytes: maxMB << 20})
}

// CacheSummary prints the cache's effectiveness counters; a disabled
// cache prints nothing.
func CacheSummary(c *artcache.Cache) {
	if c == nil {
		return
	}
	fmt.Printf("cache: %s\n", c.Stats())
}

// StartProfiles starts CPU and/or heap profiling for a CLI run. Either
// path may be empty to skip that profile. The returned stop function
// must run at exit (defer it): it stops the CPU profile and writes the
// heap profile after a final GC, so the snapshot shows live allocations
// rather than garbage.
func StartProfiles(cpuPath, memPath string) (stop func(), err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("cpu profile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("cpu profile: %w", err)
		}
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if memPath != "" {
			memFile, err := os.Create(memPath)
			if err != nil {
				fmt.Fprintln(os.Stderr, "mem profile:", err)
				return
			}
			defer memFile.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(memFile); err != nil {
				fmt.Fprintln(os.Stderr, "mem profile:", err)
			}
		}
	}, nil
}
