package avf

import (
	"math"
	"testing"

	"sevsim/internal/campaign"
	"sevsim/internal/faultinj"
)

func res(masked, sdc, crash, timeout, assert int, cycles uint64) campaign.Result {
	return campaign.Result{
		Faults: masked + sdc + crash + timeout + assert,
		Counts: campaign.Counts{
			Masked: masked, SDC: sdc, Crash: crash, Timeout: timeout, Assert: assert,
		},
		GoldenCycles: cycles,
	}
}

func TestRates(t *testing.T) {
	r := res(60, 10, 20, 5, 5, 1000)
	rates := Rates(r)
	if math.Abs(rates[faultinj.Masked]-0.6) > 1e-12 {
		t.Errorf("masked rate %f", rates[faultinj.Masked])
	}
	if math.Abs(rates.AVF()-0.4) > 1e-12 {
		t.Errorf("AVF %f", rates.AVF())
	}
	if math.Abs(rates[faultinj.SDC]-0.1) > 1e-12 {
		t.Errorf("SDC rate %f", rates[faultinj.SDC])
	}
	if Rates(campaign.Result{}).AVF() != 0 {
		t.Error("empty result AVF should be 0")
	}
}

func TestWeightedEqualTimes(t *testing.T) {
	// With equal execution times the weighted AVF is the plain mean.
	a := res(50, 50, 0, 0, 0, 1000) // AVF 0.5
	b := res(90, 10, 0, 0, 0, 1000) // AVF 0.1
	w := Weighted([]campaign.Result{a, b})
	if math.Abs(w.AVF()-0.3) > 1e-12 {
		t.Errorf("equal-weight AVF = %f, want 0.3", w.AVF())
	}
}

func TestWeightedFollowsExecutionTime(t *testing.T) {
	// Equation 1: a 9x longer benchmark dominates the aggregate.
	short := res(50, 50, 0, 0, 0, 100) // AVF 0.5
	long := res(100, 0, 0, 0, 0, 900)  // AVF 0.0
	w := Weighted([]campaign.Result{short, long})
	if math.Abs(w.AVF()-0.05) > 1e-12 {
		t.Errorf("weighted AVF = %f, want 0.05", w.AVF())
	}
}

func TestWeightedClassesSumToAVF(t *testing.T) {
	a := res(40, 20, 20, 10, 10, 300)
	b := res(70, 5, 10, 10, 5, 700)
	w := Weighted([]campaign.Result{a, b})
	sum := w[faultinj.SDC] + w[faultinj.Crash] + w[faultinj.Timeout] + w[faultinj.Assert]
	if math.Abs(sum-w.AVF()) > 1e-12 {
		t.Errorf("class sum %f != AVF %f", sum, w.AVF())
	}
	total := sum + w[faultinj.Masked]
	if math.Abs(total-1) > 1e-12 {
		t.Errorf("all classes sum to %f, want 1", total)
	}
}

func TestDelta(t *testing.T) {
	o0 := []campaign.Result{res(80, 20, 0, 0, 0, 1000)} // AVF 0.2
	o2 := []campaign.Result{res(70, 30, 0, 0, 0, 500)}  // AVF 0.3
	if d := Delta(o2, o0); math.Abs(d-0.1) > 1e-12 {
		t.Errorf("delta = %f, want 0.1", d)
	}
	if d := Delta(o0, o0); d != 0 {
		t.Errorf("self delta = %f", d)
	}
}

func TestWeightedEmpty(t *testing.T) {
	if w := Weighted(nil); w.AVF() != 0 {
		t.Error("empty weighted AVF should be 0")
	}
}
