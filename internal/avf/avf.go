// Package avf computes Architectural Vulnerability Factors and the
// execution-time-weighted aggregation of the paper's Equation 1.
package avf

import (
	"sevsim/internal/campaign"
	"sevsim/internal/faultinj"
)

// ClassRates holds per-class rates (fraction of injections) for the
// five outcome classes; the non-masked classes sum to the AVF.
type ClassRates [faultinj.NumOutcomes]float64

// AVF returns the non-masked fraction.
func (c ClassRates) AVF() float64 {
	total := 0.0
	for o := faultinj.SDC; o < faultinj.NumOutcomes; o++ {
		total += c[o]
	}
	return total
}

// Rates returns the per-class breakdown of one campaign result.
func Rates(r campaign.Result) ClassRates {
	var c ClassRates
	if r.Faults == 0 {
		return c
	}
	for o := faultinj.Masked; o < faultinj.NumOutcomes; o++ {
		c[o] = float64(r.Counts.Of(o)) / float64(r.Faults)
	}
	return c
}

// Weighted aggregates per-benchmark results for one structure field
// into the weighted AVF of Equation 1:
//
//	wAVF(c) = sum_k AVF_k(c) * t_k / sum_k t_k
//
// where t_k is benchmark k's fault-free execution time (cycles). The
// same weighting is applied per outcome class, so the weighted class
// rates still sum to the weighted AVF.
func Weighted(results []campaign.Result) ClassRates {
	var agg ClassRates
	var totalT float64
	for _, r := range results {
		t := float64(r.GoldenCycles)
		totalT += t
		rates := Rates(r)
		for o := range agg {
			agg[o] += rates[o] * t
		}
	}
	if totalT == 0 {
		return agg
	}
	for o := range agg {
		agg[o] /= totalT
	}
	return agg
}

// Delta returns the weighted-AVF difference of a level relative to the
// baseline (typically O0), in absolute AVF points: positive means the
// optimized code is more vulnerable.
func Delta(level, baseline []campaign.Result) float64 {
	return Weighted(level).AVF() - Weighted(baseline).AVF()
}
