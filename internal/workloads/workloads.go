// Package workloads provides the eight MiBench-like benchmarks of the
// study, written in MiniC. Each mirrors the computational character of
// its MiBench namesake (integer intensity, branchiness, memory
// behaviour, optimization sensitivity) at a scale suited to cycle-level
// simulation: inputs are produced by deterministic in-program generators
// (the "large dataset" is computed, not loaded) and every benchmark
// ends by emitting checksums through out(), which is the
// silent-data-corruption detection channel.
package workloads

import (
	"fmt"

	"sevsim/internal/lang"
)

// Benchmark is one workload: a MiniC source generator parameterized by
// problem size.
type Benchmark struct {
	Name string
	// Source renders the MiniC program at the given scale.
	Source func(size int) string
	// DefaultSize is the evaluation scale (golden runs of roughly
	// 10^4-10^6 cycles depending on the benchmark and level).
	DefaultSize int
	// TestSize is a reduced scale for unit tests.
	TestSize int
	// Traits summarizes the benchmark's character (documentation).
	Traits string
}

// Parse returns the checked AST at the given size.
func (b Benchmark) Parse(size int) (*lang.Program, error) {
	return lang.Parse(b.Source(size))
}

// All returns the eight benchmarks in presentation order (matching the
// paper's figures).
func All() []Benchmark {
	return []Benchmark{
		Qsort(),
		Dijkstra(),
		FFT(),
		SHA(),
		Blowfish(),
		GSM(),
		Patricia(),
		Rijndael(),
	}
}

// ByName returns the named benchmark.
func ByName(name string) (Benchmark, error) {
	for _, b := range All() {
		if b.Name == name {
			return b, nil
		}
	}
	return Benchmark{}, fmt.Errorf("workloads: unknown benchmark %q", name)
}

// lcgHelpers is the shared deterministic input generator. The masks
// keep every intermediate inside 31 bits so the 32-bit and 64-bit
// targets compute identical streams.
const lcgHelpers = `
global int rngState;

func rng() int {
	rngState = (rngState * 1103515245 + 12345) & 2147483647;
	return rngState;
}
`

// Qsort mirrors MiBench qsort: recursive quicksort over generated
// integers; recursion-heavy with data-dependent branches, modest
// optimization headroom.
func Qsort() Benchmark {
	src := func(n int) string {
		return fmt.Sprintf(`
// qsort: recursive quicksort of %[1]d pseudo-random integers.
global int data[%[1]d];
`+lcgHelpers+`
func quicksort(int a[], int lo, int hi) {
	if (lo >= hi) { return; }
	var int pivot = a[(lo + hi) / 2];
	var int i = lo;
	var int j = hi;
	while (i <= j) {
		while (a[i] < pivot) { i = i + 1; }
		while (a[j] > pivot) { j = j - 1; }
		if (i <= j) {
			var int t = a[i];
			a[i] = a[j];
			a[j] = t;
			i = i + 1;
			j = j - 1;
		}
	}
	quicksort(a, lo, j);
	quicksort(a, i, hi);
}

func main() {
	rngState = 42;
	var int n = %[1]d;
	var int i;
	for (i = 0; i < n; i = i + 1) {
		data[i] = rng() %% 100000;
	}
	quicksort(data, 0, n - 1);
	// Verify order and checksum.
	var int sorted = 1;
	var int sum = 0;
	for (i = 0; i < n; i = i + 1) {
		sum = (sum + data[i] * (i + 1)) & 2147483647;
		if (i > 0 && data[i] < data[i-1]) { sorted = 0; }
	}
	out(sorted);
	out(sum);
	out(data[0]);
	out(data[n/2]);
	out(data[n-1]);
}`, n)
	}
	return Benchmark{
		Name: "qsort", Source: src, DefaultSize: 300, TestSize: 64,
		Traits: "recursive, data-dependent branches, swap-heavy memory traffic",
	}
}

// Dijkstra mirrors MiBench dijkstra: single-source shortest paths over
// a dense adjacency matrix, O(V^2) scans; loop-heavy and highly
// optimizable.
func Dijkstra() Benchmark {
	src := func(v int) string {
		return fmt.Sprintf(`
// dijkstra: shortest paths on a dense %[1]dx%[1]d random graph.
global int adj[%[2]d];
global int dist[%[1]d];
global int done[%[1]d];
`+lcgHelpers+`
func shortestPaths(int src, int v) int {
	var int i;
	for (i = 0; i < v; i = i + 1) {
		dist[i] = 1000000000;
		done[i] = 0;
	}
	dist[src] = 0;
	var int round;
	for (round = 0; round < v; round = round + 1) {
		// Extract the nearest unfinished vertex.
		var int best = 0 - 1;
		var int bestd = 1000000000;
		for (i = 0; i < v; i = i + 1) {
			if (!done[i] && dist[i] < bestd) {
				best = i;
				bestd = dist[i];
			}
		}
		if (best < 0) { return round; }
		done[best] = 1;
		// Relax its edges.
		for (i = 0; i < v; i = i + 1) {
			var int w = adj[best * v + i];
			if (w > 0 && dist[best] + w < dist[i]) {
				dist[i] = dist[best] + w;
			}
		}
	}
	return v;
}

func main() {
	rngState = 7;
	var int v = %[1]d;
	var int i;
	for (i = 0; i < v * v; i = i + 1) {
		// ~70%% of edges exist with weight 1..99.
		var int r = rng() %% 100;
		if (r < 70) { adj[i] = r + 1; } else { adj[i] = 0; }
	}
	var int src;
	var int total = 0;
	for (src = 0; src < 4; src = src + 1) {
		shortestPaths(src * (v / 4), v);
		for (i = 0; i < v; i = i + 1) {
			if (dist[i] < 1000000000) {
				total = (total + dist[i]) & 2147483647;
			}
		}
		out(dist[v - 1]);
	}
	out(total);
}`, v, v*v)
	}
	return Benchmark{
		Name: "dijkstra", Source: src, DefaultSize: 24, TestSize: 12,
		Traits: "dense O(V^2) scans, branch-heavy selection loop, highly optimizable",
	}
}

// FFT mirrors MiBench fft: an iterative radix-2 fixed-point FFT with
// Q14 twiddle rotation; arithmetic-dense with strided memory access and
// little optimization headroom beyond register allocation.
func FFT() Benchmark {
	src := func(n int) string {
		return fmt.Sprintf(`
// fft: %[1]d-point radix-2 fixed-point FFT (Q14 twiddles).
global int re[%[1]d];
global int im[%[1]d];
global int cosTab[16];
global int sinTab[16];
`+lcgHelpers+`
func setupTwiddles() {
	// Q14 cos/sin of pi/2^k for k = 0..13.
	cosTab[0] = 0 - 16384; sinTab[0] = 0;
	cosTab[1] = 0;         sinTab[1] = 16384;
	cosTab[2] = 11585;     sinTab[2] = 11585;
	cosTab[3] = 15137;     sinTab[3] = 6270;
	cosTab[4] = 16069;     sinTab[4] = 3196;
	cosTab[5] = 16305;     sinTab[5] = 1606;
	cosTab[6] = 16364;     sinTab[6] = 804;
	cosTab[7] = 16379;     sinTab[7] = 402;
	cosTab[8] = 16383;     sinTab[8] = 201;
	cosTab[9] = 16384;     sinTab[9] = 100;
	cosTab[10] = 16384;    sinTab[10] = 50;
	cosTab[11] = 16384;    sinTab[11] = 25;
	cosTab[12] = 16384;    sinTab[12] = 12;
	cosTab[13] = 16384;    sinTab[13] = 6;
}

func fft(int n) {
	// Bit-reversal permutation.
	var int i;
	var int j = 0;
	for (i = 0; i < n - 1; i = i + 1) {
		if (i < j) {
			var int tr = re[i]; re[i] = re[j]; re[j] = tr;
			var int ti = im[i]; im[i] = im[j]; im[j] = ti;
		}
		var int m = n >> 1;
		while (m >= 1 && j >= m) {
			j = j - m;
			m = m >> 1;
		}
		j = j + m;
	}
	// Butterfly stages.
	var int stage = 0;
	var int len = 1;
	while (len < n) {
		var int wr0 = cosTab[stage + 1];
		var int wi0 = sinTab[stage + 1];
		var int start;
		for (start = 0; start < n; start = start + (len << 1)) {
			var int wr = 16384;
			var int wi = 0;
			var int k;
			for (k = 0; k < len; k = k + 1) {
				var int a = start + k;
				var int b = a + len;
				var int br = (wr * re[b] - wi * im[b]) >> 14;
				var int bi = (wr * im[b] + wi * re[b]) >> 14;
				re[b] = re[a] - br;
				im[b] = im[a] - bi;
				re[a] = re[a] + br;
				im[a] = im[a] + bi;
				// Rotate the twiddle.
				var int nwr = (wr * wr0 - wi * wi0) >> 14;
				wi = (wr * wi0 + wi * wr0) >> 14;
				wr = nwr;
			}
		}
		stage = stage + 1;
		len = len << 1;
	}
}

func main() {
	rngState = 99;
	setupTwiddles();
	var int n = %[1]d;
	var int i;
	for (i = 0; i < n; i = i + 1) {
		re[i] = (rng() %% 4096) - 2048;
		im[i] = 0;
	}
	fft(n);
	var int cs = 0;
	for (i = 0; i < n; i = i + 1) {
		cs = (cs + re[i] * 31 + im[i] * 17) & 2147483647;
	}
	out(cs);
	out(re[0] & 2147483647);
	out(im[n/2] & 2147483647);
	out(re[n-1] & 2147483647);
}`, n)
	}
	return Benchmark{
		Name: "fft", Source: src, DefaultSize: 128, TestSize: 32,
		Traits: "multiply-dense butterflies, strided access, little optimization response",
	}
}

// SHA mirrors MiBench sha: an SHA-1-style compression over generated
// message blocks; long dependence chains of logical operations, heavy
// 32-bit masking, very regular control flow.
func SHA() Benchmark {
	src := func(blocks int) string {
		return fmt.Sprintf(`
// sha: SHA-1-style digest over %[1]d 16-word blocks.
global int w[80];
global int h[5];
`+lcgHelpers+`
// Logical shift right for 32-bit values on either word width.
func lsr(int x, int s) int {
	if (s == 0) { return x & 0xffffffff; }
	return ((x & 0xffffffff) >> s) & (0x7fffffff >> (s - 1));
}

func rotl(int x, int s) int {
	return ((x << s) | lsr(x, 32 - s)) & 0xffffffff;
}

func compress() {
	var int t;
	for (t = 16; t < 80; t = t + 1) {
		w[t] = rotl(w[t-3] ^ w[t-8] ^ w[t-14] ^ w[t-16], 1);
	}
	var int a = h[0]; var int b = h[1]; var int c = h[2];
	var int d = h[3]; var int e = h[4];
	for (t = 0; t < 80; t = t + 1) {
		var int f; var int k;
		if (t < 20) {
			f = (b & c) | ((~b) & d);
			k = 0x5a827999;
		} else if (t < 40) {
			f = b ^ c ^ d;
			k = 0x6ed9eba1;
		} else if (t < 60) {
			f = (b & c) | (b & d) | (c & d);
			k = 0x8f1bbcdc;
		} else {
			f = b ^ c ^ d;
			k = 0xca62c1d6;
		}
		var int tmp = (rotl(a, 5) + f + e + k + w[t]) & 0xffffffff;
		e = d;
		d = c;
		c = rotl(b, 30);
		b = a;
		a = tmp;
	}
	h[0] = (h[0] + a) & 0xffffffff;
	h[1] = (h[1] + b) & 0xffffffff;
	h[2] = (h[2] + c) & 0xffffffff;
	h[3] = (h[3] + d) & 0xffffffff;
	h[4] = (h[4] + e) & 0xffffffff;
}

func main() {
	rngState = 1234;
	h[0] = 0x67452301; h[1] = 0xefcdab89; h[2] = 0x98badcfe;
	h[3] = 0x10325476; h[4] = 0xc3d2e1f0;
	var int blk;
	for (blk = 0; blk < %[1]d; blk = blk + 1) {
		var int i;
		for (i = 0; i < 16; i = i + 1) {
			w[i] = rng();
		}
		compress();
	}
	out(h[0]); out(h[1]); out(h[2]); out(h[3]); out(h[4]);
}`, blocks)
	}
	return Benchmark{
		Name: "sha", Source: src, DefaultSize: 10, TestSize: 3,
		Traits: "long logical dependence chains, regular control flow, explicit 32-bit masking",
	}
}

// Blowfish mirrors MiBench blowfish: a 16-round Feistel cipher with
// table lookups per round; lookup-dominated with wrapping adds.
func Blowfish() Benchmark {
	src := func(blocks int) string {
		return fmt.Sprintf(`
// blowfish: 16-round Feistel ECB encryption of %[1]d 64-bit blocks.
global int sbox[1024];
global int parr[18];
`+lcgHelpers+`
func feistel(int x) int {
	var int a = (x >> 24) & 255;
	var int b = (x >> 16) & 255;
	var int c = (x >> 8) & 255;
	var int d = x & 255;
	var int y = (sbox[a] + sbox[256 + b]) & 0xffffffff;
	y = y ^ sbox[512 + c];
	y = (y + sbox[768 + d]) & 0xffffffff;
	return y;
}

func main() {
	rngState = 5;
	var int i;
	for (i = 0; i < 1024; i = i + 1) {
		sbox[i] = rng();
	}
	for (i = 0; i < 18; i = i + 1) {
		parr[i] = rng();
	}
	var int cs = 0;
	var int blk;
	for (blk = 0; blk < %[1]d; blk = blk + 1) {
		var int l = rng();
		var int r = rng();
		var int round;
		for (round = 0; round < 16; round = round + 1) {
			l = (l ^ parr[round]) & 0xffffffff;
			r = (r ^ feistel(l)) & 0xffffffff;
			var int t = l;
			l = r;
			r = t;
		}
		var int t2 = l;
		l = (r ^ parr[17]) & 0xffffffff;
		r = (t2 ^ parr[16]) & 0xffffffff;
		cs = (cs + (l ^ (r >> 7))) & 2147483647;
	}
	out(cs);
}`, blocks)
	}
	return Benchmark{
		Name: "blowfish", Source: src, DefaultSize: 80, TestSize: 12,
		Traits: "S-box lookups, xor/add rounds, tight loop with calls",
	}
}

// GSM mirrors MiBench gsm (full-rate codec flavor): per-frame
// autocorrelation, reflection coefficients via integer division, and
// quantization; division-heavy with nested loops and good optimization
// response.
func GSM() Benchmark {
	src := func(frames int) string {
		return fmt.Sprintf(`
// gsm: LPC-style analysis of %[1]d frames of 160 samples.
global int frame[160];
global int acf[9];
global int refl[8];
`+lcgHelpers+`
func autocorrelate() {
	var int lag;
	for (lag = 0; lag < 9; lag = lag + 1) {
		var int sum = 0;
		var int i;
		for (i = lag; i < 160; i = i + 1) {
			sum = (sum + ((frame[i] * frame[i - lag]) >> 8)) & 0x3fffffff;
		}
		acf[lag] = sum;
	}
}

func reflection() {
	var int k;
	for (k = 0; k < 8; k = k + 1) {
		if (acf[0] == 0) {
			refl[k] = 0;
		} else {
			refl[k] = (acf[k + 1] << 10) / (acf[0] + k + 1);
		}
	}
}

func quantize(int v) int {
	if (v < 0 - 512) { return 0 - 8; }
	if (v > 511) { return 7; }
	return v / 64;
}

func main() {
	rngState = 77;
	var int cs = 0;
	var int f;
	for (f = 0; f < %[1]d; f = f + 1) {
		var int i;
		var int prev = 0;
		for (i = 0; i < 160; i = i + 1) {
			// Correlated samples resemble voiced speech.
			var int noise = (rng() %% 257) - 128;
			prev = (prev * 3) / 4 + noise;
			frame[i] = prev;
		}
		autocorrelate();
		reflection();
		var int q = 0;
		for (i = 0; i < 8; i = i + 1) {
			q = (q * 16 + quantize(refl[i]) + 8) & 2147483647;
		}
		cs = (cs + q + acf[0]) & 2147483647;
		out(q);
	}
	out(cs);
}`, frames)
	}
	return Benchmark{
		Name: "gsm", Source: src, DefaultSize: 3, TestSize: 2,
		Traits: "nested multiply-accumulate loops, integer division, highly optimizable",
	}
}

// Patricia mirrors MiBench patricia: a bit-trie over 32-bit keys backed
// by index-linked node pools; pointer-chasing lookups with unpredictable
// branches and little optimization headroom.
func Patricia() Benchmark {
	src := func(keys int) string {
		nodes := 2*keys + 2
		return fmt.Sprintf(`
// patricia: bit-trie insert/lookup of %[1]d random 31-bit keys.
global int left[%[2]d];
global int right[%[2]d];
global int keys[%[2]d];
global int used;
`+lcgHelpers+`
func newNode(int key) int {
	var int n = used;
	used = used + 1;
	left[n] = 0 - 1;
	right[n] = 0 - 1;
	keys[n] = key;
	return n;
}

func insert(int key) {
	var int cur = 0;
	var int bit = 30;
	while (bit >= 0) {
		if (keys[cur] == key) { return; }
		var int goRight = (key >> bit) & 1;
		if (goRight) {
			if (right[cur] < 0) {
				right[cur] = newNode(key);
				return;
			}
			cur = right[cur];
		} else {
			if (left[cur] < 0) {
				left[cur] = newNode(key);
				return;
			}
			cur = left[cur];
		}
		bit = bit - 1;
	}
}

func lookup(int key) int {
	var int cur = 0;
	var int bit = 30;
	while (bit >= 0) {
		if (keys[cur] == key) { return 1; }
		var int goRight = (key >> bit) & 1;
		if (goRight) {
			if (right[cur] < 0) { return 0; }
			cur = right[cur];
		} else {
			if (left[cur] < 0) { return 0; }
			cur = left[cur];
		}
		bit = bit - 1;
	}
	return 0;
}

func main() {
	rngState = 2024;
	used = 0;
	var int root = newNode(0);
	var int i;
	var int n = %[1]d;
	for (i = 0; i < n; i = i + 1) {
		insert(rng());
	}
	// Replay the generator: every inserted key must be found.
	rngState = 2024;
	var int hits = 0;
	for (i = 0; i < n; i = i + 1) {
		hits = hits + lookup(rng());
	}
	// A perturbed stream mostly misses.
	for (i = 0; i < n; i = i + 1) {
		hits = hits + lookup(rng() ^ 0x2a2a2a);
	}
	out(root);
	out(used);
	out(hits);
}`, keys, nodes)
	}
	return Benchmark{
		Name: "patricia", Source: src, DefaultSize: 200, TestSize: 40,
		Traits: "bit-trie chasing, unpredictable branches, resistant to optimization",
	}
}

// Rijndael mirrors MiBench rijndael: an AES-like substitution-
// permutation network (generated S-box, rotating shift rows, xor-based
// column mixing) with chained blocks; table lookups plus dense logical
// operations.
func Rijndael() Benchmark {
	src := func(blocks int) string {
		return fmt.Sprintf(`
// rijndael: 10-round SPN encryption of %[1]d 16-byte blocks (CBC-style).
global int sbox[256];
global int rkey[176];
global int state[16];
`+lcgHelpers+`
func genSbox() {
	var int i;
	for (i = 0; i < 256; i = i + 1) {
		sbox[i] = i;
	}
	for (i = 255; i > 0; i = i - 1) {
		var int j = rng() %% (i + 1);
		var int t = sbox[i];
		sbox[i] = sbox[j];
		sbox[j] = t;
	}
}

func expandKey() {
	var int i;
	for (i = 0; i < 176; i = i + 1) {
		rkey[i] = rng() & 255;
	}
}

func encryptBlock() {
	var int round;
	for (round = 0; round < 10; round = round + 1) {
		var int i;
		// SubBytes + AddRoundKey.
		for (i = 0; i < 16; i = i + 1) {
			state[i] = sbox[state[i]] ^ rkey[round * 16 + i];
		}
		// ShiftRows: rotate row r left by r.
		var int r;
		for (r = 1; r < 4; r = r + 1) {
			var int s;
			for (s = 0; s < r; s = s + 1) {
				var int t = state[r];
				state[r] = state[r + 4];
				state[r + 4] = state[r + 8];
				state[r + 8] = state[r + 12];
				state[r + 12] = t;
			}
		}
		// MixColumns-like xor diffusion.
		for (i = 0; i < 4; i = i + 1) {
			var int c = i * 4;
			var int a0 = state[c]; var int a1 = state[c+1];
			var int a2 = state[c+2]; var int a3 = state[c+3];
			var int all = a0 ^ a1 ^ a2 ^ a3;
			state[c]   = (a0 ^ all ^ ((a0 << 1) & 255)) & 255;
			state[c+1] = (a1 ^ all ^ ((a1 << 1) & 255)) & 255;
			state[c+2] = (a2 ^ all ^ ((a2 << 1) & 255)) & 255;
			state[c+3] = (a3 ^ all ^ ((a3 << 1) & 255)) & 255;
		}
	}
}

func main() {
	rngState = 31337;
	genSbox();
	expandKey();
	var int iv[16];
	var int i;
	for (i = 0; i < 16; i = i + 1) {
		iv[i] = rng() & 255;
	}
	var int cs = 0;
	var int blk;
	for (blk = 0; blk < %[1]d; blk = blk + 1) {
		for (i = 0; i < 16; i = i + 1) {
			state[i] = (rng() & 255) ^ iv[i];
		}
		encryptBlock();
		for (i = 0; i < 16; i = i + 1) {
			iv[i] = state[i];
			cs = (cs * 31 + state[i]) & 2147483647;
		}
	}
	out(cs);
	out(state[0]);
	out(state[15]);
}`, blocks)
	}
	return Benchmark{
		Name: "rijndael", Source: src, DefaultSize: 16, TestSize: 4,
		Traits: "S-box substitution, xor diffusion, block-chained dependences",
	}
}
