package workloads

import (
	"testing"

	"sevsim/internal/compiler"
	"sevsim/internal/interp"
	"sevsim/internal/machine"
)

func TestAllBenchmarksParse(t *testing.T) {
	for _, b := range All() {
		for _, size := range []int{b.TestSize, b.DefaultSize} {
			if _, err := b.Parse(size); err != nil {
				t.Errorf("%s size %d: %v", b.Name, size, err)
			}
		}
	}
}

func TestByName(t *testing.T) {
	b, err := ByName("fft")
	if err != nil || b.Name != "fft" {
		t.Fatalf("ByName(fft) = %v, %v", b.Name, err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("expected error for unknown benchmark")
	}
}

func TestEightBenchmarks(t *testing.T) {
	if n := len(All()); n != 8 {
		t.Fatalf("expected 8 benchmarks, got %d", n)
	}
	names := map[string]bool{}
	for _, b := range All() {
		if names[b.Name] {
			t.Errorf("duplicate benchmark %s", b.Name)
		}
		names[b.Name] = true
	}
}

// TestDifferentialAllLevels compiles every benchmark (test scale) at
// every optimization level for both microarchitectures and checks the
// output stream against the reference interpreter.
func TestDifferentialAllLevels(t *testing.T) {
	configs := []struct {
		tgt compiler.Target
		cfg machine.Config
	}{
		{compiler.Target{XLEN: 32, NumArchRegs: 16}, machine.CortexA15Like()},
		{compiler.Target{XLEN: 64, NumArchRegs: 32}, machine.CortexA72Like()},
	}
	for _, b := range All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			t.Parallel()
			for _, tc := range configs {
				ast, err := b.Parse(b.TestSize)
				if err != nil {
					t.Fatal(err)
				}
				want, err := interp.Run(ast, tc.tgt.XLEN, 200_000_000)
				if err != nil {
					t.Fatalf("interp xlen=%d: %v", tc.tgt.XLEN, err)
				}
				if len(want) == 0 {
					t.Fatal("benchmark emits no output")
				}
				for _, level := range compiler.Levels {
					src := b.Source(b.TestSize)
					prog, err := compiler.Compile(src, b.Name, level, tc.tgt)
					if err != nil {
						t.Fatalf("%v: compile: %v", level, err)
					}
					res := machine.New(tc.cfg, prog).Run(500_000_000)
					if res.Outcome != machine.OutcomeOK {
						t.Fatalf("%v %s: outcome %v (%s) after %d cycles",
							level, tc.cfg.Name, res.Outcome, res.Reason, res.Cycles)
					}
					if len(res.Output) != len(want) {
						t.Fatalf("%v %s: %d outputs, want %d", level, tc.cfg.Name, len(res.Output), len(want))
					}
					for i := range want {
						if res.Output[i] != want[i] {
							t.Fatalf("%v %s: output[%d] = %#x, want %#x",
								level, tc.cfg.Name, i, res.Output[i], want[i])
						}
					}
				}
			}
		})
	}
}

// TestQsortActuallySorts spot-checks benchmark semantics beyond
// checksums.
func TestQsortActuallySorts(t *testing.T) {
	ast, err := Qsort().Parse(100)
	if err != nil {
		t.Fatal(err)
	}
	out, err := interp.Run(ast, 32, 100_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != 1 {
		t.Error("qsort sorted flag not set")
	}
	if out[2] > out[3] || out[3] > out[4] {
		t.Errorf("qsort order samples wrong: %v", out[2:5])
	}
}

func TestPatriciaHitCounts(t *testing.T) {
	ast, err := Patricia().Parse(50)
	if err != nil {
		t.Fatal(err)
	}
	out, err := interp.Run(ast, 32, 100_000_000)
	if err != nil {
		t.Fatal(err)
	}
	hits := out[2]
	// Every inserted key must be found; the perturbed probes mostly miss.
	if hits < 50 || hits > 75 {
		t.Errorf("patricia hits = %d, expected in [50, 75]", hits)
	}
}
